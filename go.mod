module gavel

go 1.24
