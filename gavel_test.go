package gavel

import (
	"math"
	"testing"
)

// The facade must be usable exactly as the README shows.
func TestFacadeQuickstart(t *testing.T) {
	trace := NewTrace(TraceOptions{NumJobs: 10, LambdaPerHour: 4, Seed: 1,
		DurationMinMinutes: 20, DurationMaxMinutes: 100})
	res, err := Simulate(SimulationConfig{
		Cluster:      Simulated108(),
		Policy:       MaxMinFairnessPolicy(),
		Trace:        trace,
		RoundSeconds: 360,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if avg := res.AvgJCT(0); math.IsNaN(avg) || avg <= 0 {
		t.Fatalf("bad avg JCT %v", avg)
	}
}

// Every facade policy constructor must produce a policy that survives a
// tiny simulation.
func TestFacadePolicyCatalog(t *testing.T) {
	trace := NewTrace(TraceOptions{NumJobs: 6, Seed: 2,
		DurationMinMinutes: 20, DurationMaxMinutes: 60})
	pols := map[string]Policy{
		"max_min":        MaxMinFairnessPolicy(),
		"max_min_pri":    MaxMinFairnessWithPriorities(),
		"fifo":           FIFOPolicy(),
		"sjf":            ShortestJobFirstPolicy(),
		"makespan":       MakespanPolicy(),
		"ftf":            FinishTimeFairnessPolicy(),
		"min_cost":       MinCostPolicy(false),
		"min_cost_slo":   MinCostPolicy(true),
		"max_throughput": MaxTotalThroughputPolicy(),
		"hierarchical":   HierarchicalPolicy(map[int]float64{0: 1}, nil),
		"agnostic_las":   HeterogeneityAgnostic(MaxMinFairnessPolicy()),
		"allox":          AlloXPolicy(),
		"gandiva":        GandivaPolicy(3),
	}
	for name, p := range pols {
		res, err := Simulate(SimulationConfig{
			Cluster:      Small12(),
			Policy:       p,
			Trace:        trace,
			RoundSeconds: 360,
			SpaceSharing: name == "gandiva",
		})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Unfinished != 0 {
			t.Errorf("%s: %d unfinished", name, res.Unfinished)
		}
	}
}

func TestFacadeEstimatorProvider(t *testing.T) {
	trace := NewTrace(TraceOptions{NumJobs: 8, LambdaPerHour: 1, Seed: 3,
		DurationMinMinutes: 20, DurationMaxMinutes: 60})
	res, err := Simulate(SimulationConfig{
		Cluster:      Small12(),
		Policy:       MaxMinFairnessPolicy(),
		Trace:        trace,
		RoundSeconds: 360,
		SpaceSharing: true,
		Provider:     NewThroughputEstimator(5, 3),
	})
	if err != nil {
		t.Fatalf("Simulate with estimator: %v", err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
}
