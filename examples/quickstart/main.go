// Quickstart: simulate a heterogeneity-aware fairness policy against its
// heterogeneity-agnostic baseline on the paper's 108-GPU cluster, using
// nothing but the public gavel API.
package main

import (
	"fmt"
	"log"

	"gavel"
)

func main() {
	// A continuous trace: 60 jobs sampled from the paper's 26-model zoo,
	// Poisson arrivals at 4 jobs/hour.
	trace := gavel.NewTrace(gavel.TraceOptions{
		NumJobs:       60,
		LambdaPerHour: 4,
		Seed:          1,
	})

	run := func(label string, pol gavel.Policy, spaceSharing bool) {
		res, err := gavel.Simulate(gavel.SimulationConfig{
			Cluster:      gavel.Simulated108(),
			Policy:       pol,
			Trace:        trace,
			RoundSeconds: 360, // 6-minute scheduling rounds
			SpaceSharing: spaceSharing,
		})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s avg JCT %6.2f h   makespan %7.1f h   cost $%.0f\n",
			label, res.AvgJCT(5), res.Makespan/3600, res.TotalCost)
	}

	fmt.Println("LAS (least attained service) on 36x V100 + 36x P100 + 36x K80:")
	run("heterogeneity-agnostic", gavel.HeterogeneityAgnostic(gavel.MaxMinFairnessPolicy()), false)
	run("heterogeneity-aware", gavel.MaxMinFairnessPolicy(), false)
	run("heterogeneity-aware + SS", gavel.MaxMinFairnessPolicy(), true)
}
