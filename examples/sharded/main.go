// Sharded: run the same trace through the monolithic scheduler and the
// sharded scheduler service (SimulationConfig.NumShards), comparing policy
// wall-clock and per-shard LP solve buckets. With K shards, each shard owns
// its own solve context, throughput cache, and round mechanism over a slice
// of the cluster; a coordinator routes arrivals, rebalances by migrating
// jobs between shards — carrying their warm LP bases along, so migrations
// cost remapped solves instead of cold ones — and merges every round under
// the global per-type worker budget.
package main

import (
	"fmt"
	"log"

	"gavel"
)

func main() {
	trace := gavel.NewTrace(gavel.TraceOptions{
		NumJobs:       96,
		LambdaPerHour: 12,
		Seed:          3,
	})

	run := func(shards int) *gavel.SimulationResult {
		res, err := gavel.Simulate(gavel.SimulationConfig{
			Cluster:              gavel.Simulated108(),
			Policy:               gavel.MaxMinFairnessPolicy(),
			Trace:                trace,
			SpaceSharing:         true,
			NumShards:            shards, // 0 = monolithic loop
			RebalanceEveryRounds: 10,
			ShardRoute:           gavel.RouteLeastLoaded,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	mono := run(0)
	fmt.Printf("monolithic:  avg JCT %5.2f h   policy time %8v   solves %d (%d warm, %d remapped)\n",
		mono.AvgJCT(5), mono.PolicyTime.Round(1e6), mono.LPSolves, mono.WarmSolves, mono.RemappedSolves)

	sharded := run(4)
	fmt.Printf("K=4 shards:  avg JCT %5.2f h   policy time %8v   solves %d (%d warm, %d remapped)\n",
		sharded.AvgJCT(5), sharded.PolicyTime.Round(1e6), sharded.LPSolves, sharded.WarmSolves, sharded.RemappedSolves)
	fmt.Printf("             %d migrations across %d rebalances\n\n", sharded.Migrations, sharded.Rebalances)

	fmt.Println("per-shard LP accounting:")
	for _, st := range sharded.ShardStats {
		fmt.Printf("  shard %d: %3d admitted  %2d in / %2d out migrated   solves %3d = %d warm + %d remapped + %d cold\n",
			st.Shard, st.JobsAdmitted, st.MigratedIn, st.MigratedOut,
			st.LPSolves, st.WarmSolves, st.RemappedSolves, st.ColdSolves)
	}
}
