// Space sharing with estimated throughputs: the Figure 14 scenario. The
// SS-aware fairness policy needs colocated throughputs it has never
// measured; Gavel's estimator profiles each new job against a few
// reference jobs, completes the sparse measurement matrix with low-rank
// matrix completion, and adopts the closest reference job's space-sharing
// profile. Measurements observed as pairs actually run override estimates.
package main

import (
	"fmt"
	"log"

	"gavel"
)

func main() {
	trace := gavel.NewTrace(gavel.TraceOptions{
		NumJobs:            30,
		LambdaPerHour:      0.7,
		Seed:               41,
		DurationMinMinutes: 60,
		DurationMaxMinutes: 900,
	})

	run := func(label string, ss bool, provider any) {
		cfg := gavel.SimulationConfig{
			Cluster:      gavel.Small12(), // 4x V100, 4x P100, 4x K80
			Policy:       gavel.MaxMinFairnessPolicy(),
			Trace:        trace,
			RoundSeconds: 360,
			SpaceSharing: ss,
		}
		if provider != nil {
			cfg.Provider = gavel.NewThroughputEstimator(6, 41)
		}
		res, err := gavel.Simulate(cfg)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-28s avg JCT %6.2f h\n", label, res.AvgJCT(3))
	}

	fmt.Println("SS-aware LAS on a 12-GPU cluster (Figure 14):")
	run("Gavel w/ SS (oracle)", true, nil)
	run("Gavel w/ SS (estimated)", true, "estimator")
	run("Gavel (no space sharing)", false, nil)
}
