// Cloud cost with SLOs: the §7.3 scenario. A batch of ResNet-50 and A3C
// jobs with completion deadlines runs on elastic cloud GPUs (V100 $2.48/h,
// P100 $1.46/h, K80 $0.45/h). Three policies are compared: maximize
// throughput (spends freely), minimize cost (cheap but violates SLOs by
// parking A3C jobs on K80s), and minimize cost subject to SLOs (moves
// deadline-tight jobs onto faster GPUs).
package main

import (
	"fmt"
	"log"

	"gavel"
	"gavel/internal/workload"
)

func main() {
	// The cost workload: ResNet-50 + A3C jobs with SLOs of 1.2x, 2x, or
	// 10x their dedicated-V100 duration, scaled down 20x so the example
	// finishes in seconds.
	trace := workload.CostTrace(40, 3)
	for i := range trace {
		trace[i].TotalSteps /= 20
		trace[i].RefDuration /= 20
		trace[i].SLO /= 20
	}

	run := func(label string, pol gavel.Policy) {
		res, err := gavel.Simulate(gavel.SimulationConfig{
			Cluster:      gavel.Simulated108(),
			Policy:       pol,
			Trace:        trace,
			RoundSeconds: 360,
		})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-22s total cost $%7.0f   SLO violations %2d/%d   makespan %6.1f h\n",
			label, res.TotalCost, res.SLOViolations, len(trace), res.Makespan/3600)
	}

	run("maximize throughput", gavel.MaxTotalThroughputPolicy())
	run("minimize cost", gavel.MinCostPolicy(false))
	run("minimize cost w/ SLOs", gavel.MinCostPolicy(true))
}
