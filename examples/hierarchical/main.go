// Hierarchical scheduling: a product team and a research team share one
// physical cluster (the paper's Figure 5 scenario). The organization level
// uses weighted fairness; the product team shares fairly among its jobs
// while the research team runs FIFO. The example prints each job's share
// of cluster throughput as jobs arrive (the Figure 11/21 timelines).
package main

import (
	"fmt"
	"log"

	"gavel"
)

func main() {
	const (
		productTeam  = 0 // weight 2, fair sharing inside
		researchTeam = 1 // weight 1, FIFO inside
	)
	pol := gavel.HierarchicalPolicy(
		map[int]float64{productTeam: 2, researchTeam: 1},
		map[int]gavel.EntityPolicy{
			productTeam:  gavel.EntityFairness,
			researchTeam: gavel.EntityFIFO,
		},
	)

	// Six long-running jobs, alternating teams, staggered arrivals.
	trace := gavel.NewTrace(gavel.TraceOptions{
		NumJobs:            6,
		LambdaPerHour:      2,
		Entities:           2,
		Seed:               7,
		DurationMinMinutes: 300,
		DurationMaxMinutes: 600,
	})

	res, err := gavel.Simulate(gavel.SimulationConfig{
		Cluster:      gavel.Small9(), // 3x V100, 3x P100, 3x K80
		Policy:       pol,
		Trace:        trace,
		RoundSeconds: 360,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("job outcomes (product team weight 2 / fair; research team weight 1 / FIFO):")
	for _, j := range res.Jobs {
		team := "product "
		if j.ID%2 == researchTeam {
			team = "research"
		}
		fmt.Printf("  job %d [%s]  JCT %6.2f h   finish-time fairness rho %.2f\n",
			j.ID, team, j.JCT/3600, j.Rho)
	}
	fmt.Printf("makespan: %.2f h, total cost: $%.0f\n", res.Makespan/3600, res.TotalCost)
}
