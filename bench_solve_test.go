// Repeated-solve benchmarks for the incremental allocation pipeline: how
// fast can a policy re-solve after a reset event, cold vs warm-started, in
// two scenarios — "perturb" (observed-throughput updates, problem shape
// unchanged) and "churn" (25% of resets are a job departure + arrival, so
// the LP's variable set changes and the warm path must remap the cached
// basis across shapes). Run with:
//
//	go test -bench BenchmarkPolicySolveReset -run '^$'
//
// TestWriteSolveBenchJSON (gated by GAVEL_WRITE_BENCH=1) records the same
// measurements into BENCH_solve.json to track the perf trajectory across
// PRs.
package gavel

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

// solveResetInput builds an n-job policy input on an n/4-per-type cluster
// (the paper's scaling shape), with distinct weights so optima are unique.
func solveResetInput(n int) *policy.Input {
	per := float64(n / 4)
	if per < 1 {
		per = 1
	}
	zoo := workload.Zoo()
	in := &policy.Input{
		Workers: []float64{per, per, per},
		Prices:  []float64{3.06, 1.46, 0.9},
	}
	for m := 0; m < n; m++ {
		cfg := zoo[m%len(zoo)]
		tput := make([]float64, 3)
		for t := range tput {
			if workload.Fits(cfg, t) {
				tput[t] = workload.Throughput(cfg, t)
			}
		}
		in.Jobs = append(in.Jobs, policy.JobInfo{
			ID: m, Weight: 1 + 0.01*float64(m), Priority: 1, ScaleFactor: 1,
			Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
			Elapsed: 3600, ArrivalSeq: m, NumActiveJobs: n,
		})
		// Unit shares the Tput slice so in-place perturbation stays
		// consistent between the job row and its unit row. Keyed by job ID
		// so warm starts survive the churn scenario's job-set changes.
		in.Units = append(in.Units, core.Single(m, tput).Keyed(core.JobKey(m)))
	}
	return in
}

// perturbInput jitters every throughput by up to +-frac in place, modeling a
// reset event where observed throughputs moved but the job set did not.
func perturbInput(in *policy.Input, rng *rand.Rand, frac float64) {
	for m := range in.Jobs {
		for t, v := range in.Jobs[m].Tput {
			if v > 0 {
				in.Jobs[m].Tput[t] = v * (1 + frac*(2*rng.Float64()-1))
			}
		}
	}
}

// driftWorkers jitters the per-type worker capacities by up to +-frac in
// place, modeling machines joining or leaving between resets while the job
// set and observed throughputs hold still. Capacities only appear on the
// LP's right-hand side, so this is the dual simplex's home scenario: the
// cached basis stays dual feasible and the warm solve should finish in a
// handful of dual pivots (visible as dual_iterations in the bench records).
func driftWorkers(in *policy.Input, rng *rand.Rand, frac float64) {
	for t, w := range in.Workers {
		in.Workers[t] = w * (1 + frac*(2*rng.Float64()-1))
	}
}

// churnInput applies a job departure + arrival to the input in place: the
// oldest job leaves, a new job with a fresh ID (and a fresh unit key) enters
// at the back, and every position shifts — exactly what a reset event that
// changes the job set does to a policy's LP. nextID supplies the arrival's
// external ID; the returned value is the next fresh ID.
func churnInput(in *policy.Input, nextID int) int {
	zoo := workload.Zoo()
	n := len(in.Jobs)
	copy(in.Jobs, in.Jobs[1:])
	copy(in.Units, in.Units[1:])
	cfg := zoo[nextID%len(zoo)]
	tput := make([]float64, 3)
	for t := range tput {
		if workload.Fits(cfg, t) {
			tput[t] = workload.Throughput(cfg, t)
		}
	}
	in.Jobs[n-1] = policy.JobInfo{
		ID: nextID, Weight: 1 + 0.01*float64(nextID), Priority: 1, ScaleFactor: 1,
		Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
		Elapsed: 3600, ArrivalSeq: nextID, NumActiveJobs: n,
	}
	in.Units[n-1] = core.Single(n-1, tput).Keyed(core.JobKey(nextID))
	// Positions shifted: re-point every surviving single unit at its new
	// position (units built here are singles whose Jobs hold positions).
	for m := 0; m < n; m++ {
		in.Units[m].Jobs = []int{m}
	}
	return nextID + 1
}

var solveResetPolicies = []struct {
	name string
	make func() policy.Policy
}{
	{"maxmin", func() policy.Policy { return &policy.MaxMinFairness{} }},
	{"ftf", func() policy.Policy { return &policy.FinishTimeFairness{} }},
	{"cost", func() policy.Policy { return &policy.MinCost{} }},
}

// BenchmarkPolicySolveReset measures repeated-solve latency after reset
// events, cold (no basis reuse) vs warm (basis reuse across resets), at
// 2^7..2^10 jobs. The "perturb" scenario keeps the job set fixed and jitters
// observed throughputs (shape-preserving warm starts); the "churn" scenario
// additionally changes the job set on 25% of resets (a departure + an
// arrival), which forces the warm path through the cross-shape basis remap.
// The LP engine follows lp.DefaultEngine (GAVEL_LP_ENGINE), so the CI
// bench-smoke job runs the matrix once per engine and diffs the outputs;
// the 1024-job cells run only on the sparse revised engine — a dense cold
// solve at that size costs minutes per reset, which is exactly the scaling
// wall the revised core removes.
func BenchmarkPolicySolveReset(b *testing.B) {
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256, 512, 1024} {
			for _, scenario := range []string{"perturb", "churn"} {
				for _, mode := range []string{"cold", "warm"} {
					b.Run(fmt.Sprintf("%s/jobs=%d/%s/%s", pol.name, n, scenario, mode), func(b *testing.B) {
						if n >= 1024 && (lp.DefaultEngine != lp.Revised || pol.name == "ftf") {
							b.Skip("1024 jobs is only feasible with the sparse revised engine (and ftf's binary search is out of budget even there)")
						}
						in := solveResetInput(n)
						p := pol.make()
						ctx := policy.NewSolveContext()
						ctx.NoWarm = mode == "cold"
						// GAVEL_OBS_BENCH=1 attaches the live telemetry
						// bundle to every solve, so CI can diff ns/op
						// against an uninstrumented run and gate the
						// instrumentation overhead.
						if os.Getenv("GAVEL_OBS_BENCH") == "1" {
							ctx.Metrics = obs.NewLPMetrics(obs.NewRegistry())
						}
						rng := rand.New(rand.NewSource(99))
						nextID := n
						// Prime the context so the first measured solve of
						// the warm mode has a basis to start from, as it
						// would mid-simulation.
						if _, err := p.Allocate(in, ctx); err != nil {
							b.Fatal(err)
						}
						b.ReportAllocs()
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							perturbInput(in, rng, 0.01)
							if scenario == "churn" && i%4 == 1 {
								nextID = churnInput(in, nextID)
							}
							if _, err := p.Allocate(in, ctx); err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(float64(ctx.Stats.Iterations)/float64(ctx.Stats.Solves), "simplex-iters/solve")
					})
				}
			}
		}
	}
}

// shardedResetHarness drives repeated reset events through the sharded
// scheduler service (internal/cluster): n jobs and an n/4-per-type cluster
// partitioned across K shards, each reset jittering every observed
// throughput by ±1% and, on every 4th reset, churning the job set (the
// oldest resident departs, a newcomer arrives through the router). Every
// shard re-solves its own LP per reset — concurrently over the worker pool
// — so K=1 reproduces the monolithic solve path through the same API and
// larger K measures how sharding cuts the superlinear LP cost.
type shardedResetHarness struct {
	coord  *cluster.Coordinator
	pol    policy.Policy
	info   cluster.JobInfoFn
	rng    *rand.Rand
	fifo   []int // residents in admission order (churn removes the head)
	nextID int
}

func shardedResetTput(id int) []float64 {
	zoo := workload.Zoo()
	cfg := zoo[id%len(zoo)]
	tput := make([]float64, 3)
	for t := range tput {
		if workload.Fits(cfg, t) {
			tput[t] = workload.Throughput(cfg, t)
		}
	}
	return tput
}

// newShardedResetHarness admits n jobs and primes every shard's context with
// one (cold) allocation, so the first measured reset runs warm — mirroring
// the unsharded measureSolveResets.
func newShardedResetHarness(n, shards int, engine lp.Engine) (*shardedResetHarness, error) {
	per := n / 4
	if per < 1 {
		per = 1
	}
	spec := cluster.Spec{Types: []cluster.AcceleratorType{
		{Name: "v100", Count: per, PricePerHour: cluster.PriceV100, PerServer: 8},
		{Name: "p100", Count: per, PricePerHour: cluster.PriceP100, PerServer: 8},
		{Name: "k80", Count: per, PricePerHour: cluster.PriceK80, PerServer: 8},
	}}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		NumShards: shards,
		Cluster:   spec,
		Engine:    engine,
		Route:     cluster.RouteLeastLoaded,
	})
	if err != nil {
		return nil, err
	}
	h := &shardedResetHarness{
		coord: coord,
		pol:   &policy.MaxMinFairness{},
		info: func(id int) policy.JobInfo {
			return policy.JobInfo{
				Weight: 1 + 0.01*float64(id%997), Priority: 1,
				RemainingSteps: 1e6, TotalSteps: 2e6, Elapsed: 3600, ArrivalSeq: id,
			}
		},
		rng:    rand.New(rand.NewSource(99)),
		nextID: n,
	}
	for id := 0; id < n; id++ {
		coord.Admit(id, 1, shardedResetTput(id))
		h.fifo = append(h.fifo, id)
	}
	if err := coord.AllocateAll(h.pol, h.info, true); err != nil {
		return nil, err
	}
	return h, nil
}

// reset applies one reset event and re-solves every shard.
func (h *shardedResetHarness) reset(i int) error {
	for _, s := range h.coord.Shards() {
		for _, id := range s.Jobs() {
			row := append([]float64(nil), s.Cache.JobTput(id)...)
			for t := range row {
				if row[t] > 0 {
					row[t] *= 1 + 0.01*(2*h.rng.Float64()-1)
				}
			}
			s.Cache.ObserveJob(id, row)
		}
	}
	if i%4 == 1 {
		h.coord.Remove(h.fifo[0])
		h.fifo = h.fifo[1:]
		h.coord.Admit(h.nextID, 1, shardedResetTput(h.nextID))
		h.fifo = append(h.fifo, h.nextID)
		h.nextID++
	}
	return h.coord.AllocateAll(h.pol, h.info, true)
}

// BenchmarkShardedSolveReset measures the 1024-job reset scenario on the
// sharded service at K=1 vs K=4: per-shard LPs are superlinearly cheaper
// than the monolithic one and solve concurrently, so K=4 should beat K=1 by
// well over the core-count-independent algorithmic factor. Revised engine
// only, like every 1024-job cell.
func BenchmarkShardedSolveReset(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs=1024/shards=%d", shards), func(b *testing.B) {
			if lp.DefaultEngine != lp.Revised {
				b.Skip("1024 jobs is only feasible with the sparse revised engine")
			}
			h, err := newShardedResetHarness(1024, shards, lp.EngineAuto)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.reset(i); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var warm, remapped, solves int
			for _, st := range h.coord.Stats() {
				warm += st.Solve.WarmHits
				remapped += st.Solve.RemapHits
				solves += st.Solve.Solves
			}
			b.ReportMetric(float64(warm)/float64(b.N), "warm/reset")
			b.ReportMetric(float64(remapped)/float64(b.N), "remap/reset")
		})
	}
}

// shardedShardRecord is one shard's solve buckets within a sharded bench
// record (prime solve excluded).
type shardedShardRecord struct {
	Shard             int `json:"shard"`
	LPSolves          int `json:"lp_solves"`
	WarmSolves        int `json:"warm_solves"`
	RemappedSolves    int `json:"remapped_solves"`
	ColdSolves        int `json:"cold_solves"`
	SimplexIterations int `json:"simplex_iterations"`
	// PresolveReductions sums rows/columns/bounds the LP presolve removed or
	// tightened; DualIterations counts dual-simplex repair pivots (a subset
	// of SimplexIterations).
	PresolveReductions int `json:"presolve_reductions"`
	DualIterations     int `json:"dual_iterations"`
}

type shardedBenchRecord struct {
	Jobs   int    `json:"jobs"`
	Shards int    `json:"shards"`
	Engine string `json:"engine"`
	Resets int    `json:"resets"`
	// MaxProcs records GOMAXPROCS at measurement time: per-shard solves run
	// concurrently, so wall-clock improves with min(shards, cores) on top
	// of the algorithmic saving from smaller LPs.
	MaxProcs   int                  `json:"maxprocs"`
	NsPerReset float64              `json:"ns_per_reset"`
	PerShard   []shardedShardRecord `json:"per_shard"`
}

// measureShardedResets runs the sharded reset scenario for a fixed number of
// resets and returns wall-clock plus per-shard warm/remap/cold buckets.
func measureShardedResets(n, shards, resets int, engine lp.Engine) (shardedBenchRecord, error) {
	h, err := newShardedResetHarness(n, shards, engine)
	if err != nil {
		return shardedBenchRecord{}, err
	}
	prime := make([]policy.SolveStats, shards)
	for k, st := range h.coord.Stats() {
		prime[k] = st.Solve
	}
	start := time.Now()
	for i := 0; i < resets; i++ {
		if err := h.reset(i); err != nil {
			return shardedBenchRecord{}, err
		}
	}
	elapsed := time.Since(start)
	engName := engine.String()
	if engine == lp.EngineAuto {
		engName = lp.DefaultEngine.String()
	}
	rec := shardedBenchRecord{
		Jobs: n, Shards: shards, Engine: engName, Resets: resets,
		MaxProcs:   runtime.GOMAXPROCS(0),
		NsPerReset: float64(elapsed.Nanoseconds()) / float64(resets),
	}
	for k, st := range h.coord.Stats() {
		d := st.Solve
		d.Solves -= prime[k].Solves
		d.WarmHits -= prime[k].WarmHits
		d.RemapHits -= prime[k].RemapHits
		d.Iterations -= prime[k].Iterations
		d.PresolveReductions -= prime[k].PresolveReductions
		d.DualIterations -= prime[k].DualIterations
		rec.PerShard = append(rec.PerShard, shardedShardRecord{
			Shard:             k,
			LPSolves:          d.Solves,
			WarmSolves:        d.WarmHits,
			RemappedSolves:    d.RemapHits,
			ColdSolves:        d.Solves - d.WarmHits - d.RemapHits,
			SimplexIterations: d.Iterations,

			PresolveReductions: d.PresolveReductions,
			DualIterations:     d.DualIterations,
		})
	}
	return rec, nil
}

// TestWriteShardStats writes the per-shard solve buckets of a small sharded
// reset run (K in {1, 4}) to the path in GAVEL_SHARD_STATS — the CI
// bench-smoke artifact showing where each shard's solves landed.
func TestWriteShardStats(t *testing.T) {
	path := os.Getenv("GAVEL_SHARD_STATS")
	if path == "" {
		t.Skip("set GAVEL_SHARD_STATS=<path> to write the per-shard stats artifact")
	}
	var records []shardedBenchRecord
	for _, shards := range []int{1, 4} {
		rec, err := measureShardedResets(256, shards, 8, lp.EngineAuto)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	out, err := json.MarshalIndent(map[string]any{
		"benchmark": "ShardedSolveReset/smoke",
		"unit_note": "256-job sharded reset smoke; per_shard buckets exclude the cold prime solve; churn on every 4th reset exercises the remap path per shard",
		"records":   records,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

type solveBenchRecord struct {
	Policy   string `json:"policy"`
	Jobs     int    `json:"jobs"`
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Engine   string `json:"engine"`
	// Pricing is the entering-column rule the revised engine used ("devex"
	// or "partial"; the dense tableau ignores it).
	Pricing           string `json:"pricing"`
	Resets            int    `json:"resets"`
	LPSolves          int    `json:"lp_solves"`
	WarmSolves        int    `json:"warm_solves"`
	RemappedSolves    int    `json:"remapped_solves"`
	SimplexIterations int    `json:"simplex_iterations"`
	// PresolveReductions sums rows/columns/bounds the LP presolve removed or
	// tightened across the measured resets; DualIterations counts the
	// dual-simplex repair pivots warm starts took (subset of
	// SimplexIterations — nonzero only when the warm path found a seed it
	// could repair on the dual side).
	PresolveReductions int     `json:"presolve_reductions"`
	DualIterations     int     `json:"dual_iterations"`
	NsPerReset         float64 `json:"ns_per_reset"`
}

// measureSolveResets runs a fixed number of re-solves under the given
// scenario ("perturb" jitters throughputs; "churn" additionally changes the
// job set on every 4th reset; "drift" jitters only the worker capacities —
// a pure rhs drift that keeps cached bases dual feasible), engine, and
// pricing rule, and returns the record. Iteration counts are deterministic;
// timings are hardware-local.
func measureSolveResets(polName string, p policy.Policy, n, resets int, scenario string, warm bool, engine lp.Engine, pricing lp.Pricing) solveBenchRecord {
	in := solveResetInput(n)
	ctx := policy.NewSolveContext()
	ctx.NoWarm = !warm
	ctx.Engine = engine
	ctx.Pricing = pricing
	rng := rand.New(rand.NewSource(99))
	nextID := n
	if _, err := p.Allocate(in, ctx); err != nil {
		panic(err)
	}
	prime := ctx.Stats
	start := time.Now()
	for i := 0; i < resets; i++ {
		if scenario == "drift" {
			driftWorkers(in, rng, 0.05)
		} else {
			perturbInput(in, rng, 0.01)
			if scenario == "churn" && i%4 == 1 {
				nextID = churnInput(in, nextID)
			}
		}
		if _, err := p.Allocate(in, ctx); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	mode := "cold"
	if warm {
		mode = "warm"
	}
	engName := engine.String()
	if engine == lp.EngineAuto {
		engName = lp.DefaultEngine.String()
	}
	prName := pricing.String()
	if pricing == lp.PricingAuto {
		prName = lp.DefaultPricing.String()
	}
	return solveBenchRecord{
		Policy: polName, Jobs: n, Scenario: scenario, Mode: mode, Engine: engName, Pricing: prName, Resets: resets,
		LPSolves:           ctx.Stats.Solves - prime.Solves,
		WarmSolves:         ctx.Stats.WarmHits - prime.WarmHits,
		RemappedSolves:     ctx.Stats.RemapHits - prime.RemapHits,
		SimplexIterations:  ctx.Stats.Iterations - prime.Iterations,
		PresolveReductions: ctx.Stats.PresolveReductions - prime.PresolveReductions,
		DualIterations:     ctx.Stats.DualIterations - prime.DualIterations,
		NsPerReset:         float64(elapsed.Nanoseconds()) / float64(resets),
	}
}

// TestWriteSolveBenchJSON regenerates BENCH_solve.json. Gated behind an env
// var so routine test runs stay fast:
//
//	GAVEL_WRITE_BENCH=1 go test -run TestWriteSolveBenchJSON        # full regeneration
//	GAVEL_WRITE_BENCH=sharded go test -run TestWriteSolveBenchJSON  # refresh only sharded_records
//
// The "sharded" mode preserves the existing per-policy records (whose dense
// 512-job cells take minutes to re-measure) and re-measures only the sharded
// reset scenario.
func TestWriteSolveBenchJSON(t *testing.T) {
	mode := os.Getenv("GAVEL_WRITE_BENCH")
	if mode == "" {
		t.Skip("set GAVEL_WRITE_BENCH=1 to (re)generate BENCH_solve.json")
	}
	doc := map[string]any{}
	if mode == "sharded" {
		data, err := os.ReadFile("BENCH_solve.json")
		if err != nil {
			t.Fatalf("sharded mode refreshes an existing file: %v", err)
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatal(err)
		}
	} else {
		var records []solveBenchRecord
		for _, pol := range solveResetPolicies {
			for _, engine := range []lp.Engine{lp.Dense, lp.Revised} {
				sizes := []int{128, 256, 512}
				if engine == lp.Revised && pol.name != "ftf" {
					// The 1024-job tier exists only on the sparse revised
					// core: the dense tableau needs minutes per cold reset at
					// that size (and ftf's binary search multiplies that by
					// ~20 solves per reset).
					sizes = append(sizes, 1024)
				}
				if engine == lp.Revised && pol.name == "cost" {
					// The 4096-job tier is cost-only for now: presolve
					// collapses the Charnes-Cooper program to a few dozen
					// effective rows, so its cold reset lands well under a
					// second, while maxmin's two-rows-per-job LP still costs
					// ~10s cold at this size (the remaining open item on the
					// LP-core roadmap).
					sizes = append(sizes, 4096)
				}
				scenarios := []string{"perturb", "churn"}
				if engine == lp.Revised {
					// The rhs-only drift scenario showcases the dual-simplex
					// warm path; the dense tableau has no dual path, so the
					// cells would be noise there.
					scenarios = append(scenarios, "drift")
				}
				for _, n := range sizes {
					resets := 10
					if engine == lp.Dense && n >= 512 {
						// The dense oracle's 512-job cells take minutes each;
						// fewer resets keep regeneration tractable while the
						// per-reset numbers stay comparable.
						resets = 4
					}
					if n >= 4096 {
						resets = 4
					}
					for _, scenario := range scenarios {
						for _, warm := range []bool{false, true} {
							records = append(records, measureSolveResets(pol.name, pol.make(), n, resets, scenario, warm, engine, lp.PricingAuto))
						}
					}
				}
			}
		}
		doc["benchmark"] = "PolicySolveReset"
		doc["unit_note"] = "resets perturb throughputs by 1%; the churn scenario additionally changes the job set (departure+arrival) on 25% of resets; the drift scenario (revised only) jitters worker capacities — a pure rhs drift repaired by the dual simplex; ns_per_reset is hardware-local, iteration counts are deterministic; engine selects the simplex core (the 1024/4096-job cells exist only on the sparse revised engine — dense needs minutes per reset at those sizes)"
		doc["records"] = records
	}

	// The sharded reset scenario: the same 1024-job reset stream through the
	// sharded scheduler service at K=1 vs K=4 (revised engine only).
	var sharded []shardedBenchRecord
	for _, shards := range []int{1, 4} {
		rec, err := measureShardedResets(1024, shards, 20, lp.Revised)
		if err != nil {
			t.Fatal(err)
		}
		sharded = append(sharded, rec)
	}
	doc["sharded_records"] = sharded
	doc["sharded_note"] = "1024-job resets through the sharded scheduler service (internal/cluster): per-shard warm/remap/cold solve buckets exclude the cold prime; every 4th reset churns the job set through the router, so shard-level remaps are exercised; ns_per_reset is hardware-local and maxprocs records the measurement's GOMAXPROCS — at maxprocs=1 the K=4 speedup is the algorithmic floor alone (smaller LPs are superlinearly cheaper, ~2x); on >= 4 cores the shards' solves also run concurrently, multiplying the floor by up to min(shards, cores)"

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_solve.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWarmSolveResetSavings is the shape-preserving acceptance gate:
// warm-started repeated solves must cut simplex iterations by at least 30%
// vs cold at every benchmarked size for the flagship fairness policy, and in
// aggregate for the others.
func TestWarmSolveResetSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("solve-reset savings measurement is not -short")
	}
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256} {
			cold := measureSolveResets(pol.name, pol.make(), n, 6, "perturb", false, lp.EngineAuto, lp.PricingAuto)
			warm := measureSolveResets(pol.name, pol.make(), n, 6, "perturb", true, lp.EngineAuto, lp.PricingAuto)
			if warm.WarmSolves == 0 {
				t.Fatalf("%s jobs=%d: no warm solves", pol.name, n)
			}
			saving := 1 - float64(warm.SimplexIterations)/float64(cold.SimplexIterations)
			t.Logf("%s jobs=%d: cold iters=%d warm iters=%d (%.0f%% saved, %d/%d solves warm)",
				pol.name, n, cold.SimplexIterations, warm.SimplexIterations,
				100*saving, warm.WarmSolves, warm.LPSolves)
			if saving < 0.30 {
				t.Errorf("%s jobs=%d: warm start saved only %.0f%% of simplex iterations (need >= 30%%)",
					pol.name, n, 100*saving)
			}
		}
	}
}

// TestRemappedSolveChurnSavings is the cross-shape acceptance gate: with 25%
// of resets changing the job set (a departure + an arrival), the warm
// pipeline — positional warm starts on shape-preserving resets, remapped
// bases on churn resets — must cut simplex iterations by at least 50% vs
// cold at every benchmarked size, while actually exercising the remap. FTF's
// 512-job cold baseline alone costs minutes of binary-search solves, so that
// one cell is measured only by the BENCH_solve.json writer (where it showed
// 82% saved); the gate stops FTF at 256.
func TestRemappedSolveChurnSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("churn savings measurement is not -short")
	}
	for _, pol := range solveResetPolicies {
		sizes := []int{128, 256, 512}
		if pol.name == "ftf" {
			sizes = []int{128, 256}
		}
		for _, n := range sizes {
			cold := measureSolveResets(pol.name, pol.make(), n, 8, "churn", false, lp.EngineAuto, lp.PricingAuto)
			warm := measureSolveResets(pol.name, pol.make(), n, 8, "churn", true, lp.EngineAuto, lp.PricingAuto)
			if warm.RemappedSolves == 0 {
				t.Fatalf("%s jobs=%d: churn resets never took the remapped path", pol.name, n)
			}
			saving := 1 - float64(warm.SimplexIterations)/float64(cold.SimplexIterations)
			t.Logf("%s jobs=%d: cold iters=%d warm iters=%d (%.0f%% saved, %d warm + %d remapped of %d solves)",
				pol.name, n, cold.SimplexIterations, warm.SimplexIterations,
				100*saving, warm.WarmSolves, warm.RemappedSolves, warm.LPSolves)
			if saving < 0.50 {
				t.Errorf("%s jobs=%d: churned warm pipeline saved only %.0f%% of simplex iterations (need >= 50%%)",
					pol.name, n, 100*saving)
			}
		}
	}
}

// TestPresolveReductionsNonzero asserts the LP presolve actually fires on
// every policy's allocation program — the per-solve reduction count surfaced
// through SolveStats (and from there the bench records) must be nonzero.
// Allocation LPs always give it material: maxmin and ftf rows carry implied
// upper bounds (per-job shares bounded by effective throughput), and the
// cost policy's Charnes-Cooper normalization row bounds every transformed
// column.
func TestPresolveReductionsNonzero(t *testing.T) {
	for _, pol := range solveResetPolicies {
		in := solveResetInput(64)
		ctx := policy.NewSolveContext()
		if _, err := pol.make().Allocate(in, ctx); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d presolve reductions over %d solves", pol.name, ctx.Stats.PresolveReductions, ctx.Stats.Solves)
		if ctx.Stats.PresolveReductions == 0 {
			t.Errorf("%s: presolve removed nothing on a 64-job allocation LP", pol.name)
		}
	}
}

// TestDualIterationsOnDrift asserts the dual-simplex warm path is live: on
// the rhs-only drift scenario a warm context must take at least one dual
// repair pivot.
func TestDualIterationsOnDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("drift measurement is not -short")
	}
	if lp.DefaultEngine != lp.Revised {
		t.Skip("the dual path exists only on the revised engine")
	}
	totalDual := 0
	for _, pol := range solveResetPolicies {
		warm := measureSolveResets(pol.name, pol.make(), 128, 6, "drift", true, lp.EngineAuto, lp.PricingAuto)
		t.Logf("%s: %d dual iterations of %d simplex iterations over %d warm solves",
			pol.name, warm.DualIterations, warm.SimplexIterations, warm.WarmSolves)
		totalDual += warm.DualIterations
	}
	if totalDual == 0 {
		t.Errorf("no policy took a single dual-simplex pivot on rhs-only drift")
	}
}

// TestWritePricingMatrix writes the pricing-rule matrix artifact for the CI
// bench-smoke job (gated by GAVEL_PRICING_MATRIX=<path>): the same cold
// reset scenario measured under Devex and rotating partial pricing. On the
// revised engine it runs the 1024-job tier, where Devex's iteration
// advantage over partial pricing is the tentpole claim; the dense tableau
// ignores pricing, so under GAVEL_LP_ENGINE=dense it runs a small tier just
// to prove the knob is inert there.
func TestWritePricingMatrix(t *testing.T) {
	path := os.Getenv("GAVEL_PRICING_MATRIX")
	if path == "" {
		t.Skip("set GAVEL_PRICING_MATRIX=<path> to write the pricing-matrix artifact")
	}
	n, resets := 1024, 4
	if lp.DefaultEngine != lp.Revised {
		n, resets = 128, 6
	}
	var records []solveBenchRecord
	for _, pol := range solveResetPolicies {
		if pol.name == "ftf" {
			continue // ~20 binary-search solves per reset; out of smoke budget
		}
		for _, pr := range []lp.Pricing{lp.PricingDevex, lp.PricingPartial} {
			rec := measureSolveResets(pol.name, pol.make(), n, resets, "perturb", false, lp.EngineAuto, pr)
			t.Logf("%s pricing=%s: %d simplex iterations, %.0f ns/reset", pol.name, rec.Pricing, rec.SimplexIterations, rec.NsPerReset)
			records = append(records, rec)
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"benchmark": "PolicySolveReset/pricing-matrix",
		"unit_note": "cold resets per policy x pricing rule; on the revised engine devex needs fewer simplex iterations than partial — modestly on the maxmin LP (whose optimum needs ~1 pivot per job under any rule), and by well over the 30% acceptance bar on the cost policy's Charnes-Cooper LPs, where Dantzig-style pricing is blind to the normalization row's column geometry",
		"records":   records,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
