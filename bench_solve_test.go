// Repeated-solve benchmarks for the incremental allocation pipeline: how
// fast can a policy re-solve after a reset event, cold vs warm-started, in
// two scenarios — "perturb" (observed-throughput updates, problem shape
// unchanged) and "churn" (25% of resets are a job departure + arrival, so
// the LP's variable set changes and the warm path must remap the cached
// basis across shapes). Run with:
//
//	go test -bench BenchmarkPolicySolveReset -run '^$'
//
// TestWriteSolveBenchJSON (gated by GAVEL_WRITE_BENCH=1) records the same
// measurements into BENCH_solve.json to track the perf trajectory across
// PRs.
package gavel

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

// solveResetInput builds an n-job policy input on an n/4-per-type cluster
// (the paper's scaling shape), with distinct weights so optima are unique.
func solveResetInput(n int) *policy.Input {
	per := float64(n / 4)
	if per < 1 {
		per = 1
	}
	zoo := workload.Zoo()
	in := &policy.Input{
		Workers: []float64{per, per, per},
		Prices:  []float64{3.06, 1.46, 0.9},
	}
	for m := 0; m < n; m++ {
		cfg := zoo[m%len(zoo)]
		tput := make([]float64, 3)
		for t := range tput {
			if workload.Fits(cfg, t) {
				tput[t] = workload.Throughput(cfg, t)
			}
		}
		in.Jobs = append(in.Jobs, policy.JobInfo{
			ID: m, Weight: 1 + 0.01*float64(m), Priority: 1, ScaleFactor: 1,
			Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
			Elapsed: 3600, ArrivalSeq: m, NumActiveJobs: n,
		})
		// Unit shares the Tput slice so in-place perturbation stays
		// consistent between the job row and its unit row. Keyed by job ID
		// so warm starts survive the churn scenario's job-set changes.
		in.Units = append(in.Units, core.Single(m, tput).Keyed(core.JobKey(m)))
	}
	return in
}

// perturbInput jitters every throughput by up to +-frac in place, modeling a
// reset event where observed throughputs moved but the job set did not.
func perturbInput(in *policy.Input, rng *rand.Rand, frac float64) {
	for m := range in.Jobs {
		for t, v := range in.Jobs[m].Tput {
			if v > 0 {
				in.Jobs[m].Tput[t] = v * (1 + frac*(2*rng.Float64()-1))
			}
		}
	}
}

// churnInput applies a job departure + arrival to the input in place: the
// oldest job leaves, a new job with a fresh ID (and a fresh unit key) enters
// at the back, and every position shifts — exactly what a reset event that
// changes the job set does to a policy's LP. nextID supplies the arrival's
// external ID; the returned value is the next fresh ID.
func churnInput(in *policy.Input, nextID int) int {
	zoo := workload.Zoo()
	n := len(in.Jobs)
	copy(in.Jobs, in.Jobs[1:])
	copy(in.Units, in.Units[1:])
	cfg := zoo[nextID%len(zoo)]
	tput := make([]float64, 3)
	for t := range tput {
		if workload.Fits(cfg, t) {
			tput[t] = workload.Throughput(cfg, t)
		}
	}
	in.Jobs[n-1] = policy.JobInfo{
		ID: nextID, Weight: 1 + 0.01*float64(nextID), Priority: 1, ScaleFactor: 1,
		Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
		Elapsed: 3600, ArrivalSeq: nextID, NumActiveJobs: n,
	}
	in.Units[n-1] = core.Single(n-1, tput).Keyed(core.JobKey(nextID))
	// Positions shifted: re-point every surviving single unit at its new
	// position (units built here are singles whose Jobs hold positions).
	for m := 0; m < n; m++ {
		in.Units[m].Jobs = []int{m}
	}
	return nextID + 1
}

var solveResetPolicies = []struct {
	name string
	make func() policy.Policy
}{
	{"maxmin", func() policy.Policy { return &policy.MaxMinFairness{} }},
	{"ftf", func() policy.Policy { return &policy.FinishTimeFairness{} }},
	{"cost", func() policy.Policy { return &policy.MinCost{} }},
}

// BenchmarkPolicySolveReset measures repeated-solve latency after reset
// events, cold (no basis reuse) vs warm (basis reuse across resets), at
// 2^7..2^10 jobs. The "perturb" scenario keeps the job set fixed and jitters
// observed throughputs (shape-preserving warm starts); the "churn" scenario
// additionally changes the job set on 25% of resets (a departure + an
// arrival), which forces the warm path through the cross-shape basis remap.
// The LP engine follows lp.DefaultEngine (GAVEL_LP_ENGINE), so the CI
// bench-smoke job runs the matrix once per engine and diffs the outputs;
// the 1024-job cells run only on the sparse revised engine — a dense cold
// solve at that size costs minutes per reset, which is exactly the scaling
// wall the revised core removes.
func BenchmarkPolicySolveReset(b *testing.B) {
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256, 512, 1024} {
			for _, scenario := range []string{"perturb", "churn"} {
				for _, mode := range []string{"cold", "warm"} {
					b.Run(fmt.Sprintf("%s/jobs=%d/%s/%s", pol.name, n, scenario, mode), func(b *testing.B) {
						if n >= 1024 && (lp.DefaultEngine != lp.Revised || pol.name == "ftf") {
							b.Skip("1024 jobs is only feasible with the sparse revised engine (and ftf's binary search is out of budget even there)")
						}
						in := solveResetInput(n)
						p := pol.make()
						ctx := policy.NewSolveContext()
						ctx.NoWarm = mode == "cold"
						rng := rand.New(rand.NewSource(99))
						nextID := n
						// Prime the context so the first measured solve of
						// the warm mode has a basis to start from, as it
						// would mid-simulation.
						if _, err := p.Allocate(in, ctx); err != nil {
							b.Fatal(err)
						}
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							perturbInput(in, rng, 0.01)
							if scenario == "churn" && i%4 == 1 {
								nextID = churnInput(in, nextID)
							}
							if _, err := p.Allocate(in, ctx); err != nil {
								b.Fatal(err)
							}
						}
						b.ReportMetric(float64(ctx.Stats.Iterations)/float64(ctx.Stats.Solves), "simplex-iters/solve")
					})
				}
			}
		}
	}
}

type solveBenchRecord struct {
	Policy            string  `json:"policy"`
	Jobs              int     `json:"jobs"`
	Scenario          string  `json:"scenario"`
	Mode              string  `json:"mode"`
	Engine            string  `json:"engine"`
	Resets            int     `json:"resets"`
	LPSolves          int     `json:"lp_solves"`
	WarmSolves        int     `json:"warm_solves"`
	RemappedSolves    int     `json:"remapped_solves"`
	SimplexIterations int     `json:"simplex_iterations"`
	NsPerReset        float64 `json:"ns_per_reset"`
}

// measureSolveResets runs a fixed number of re-solves under the given
// scenario ("perturb" jitters throughputs; "churn" additionally changes the
// job set on every 4th reset) and engine, and returns the record. Iteration
// counts are deterministic; timings are hardware-local.
func measureSolveResets(polName string, p policy.Policy, n, resets int, scenario string, warm bool, engine lp.Engine) solveBenchRecord {
	in := solveResetInput(n)
	ctx := policy.NewSolveContext()
	ctx.NoWarm = !warm
	ctx.Engine = engine
	rng := rand.New(rand.NewSource(99))
	nextID := n
	if _, err := p.Allocate(in, ctx); err != nil {
		panic(err)
	}
	prime := ctx.Stats
	start := time.Now()
	for i := 0; i < resets; i++ {
		perturbInput(in, rng, 0.01)
		if scenario == "churn" && i%4 == 1 {
			nextID = churnInput(in, nextID)
		}
		if _, err := p.Allocate(in, ctx); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	mode := "cold"
	if warm {
		mode = "warm"
	}
	engName := engine.String()
	if engine == lp.EngineAuto {
		engName = lp.DefaultEngine.String()
	}
	return solveBenchRecord{
		Policy: polName, Jobs: n, Scenario: scenario, Mode: mode, Engine: engName, Resets: resets,
		LPSolves:          ctx.Stats.Solves - prime.Solves,
		WarmSolves:        ctx.Stats.WarmHits - prime.WarmHits,
		RemappedSolves:    ctx.Stats.RemapHits - prime.RemapHits,
		SimplexIterations: ctx.Stats.Iterations - prime.Iterations,
		NsPerReset:        float64(elapsed.Nanoseconds()) / float64(resets),
	}
}

// TestWriteSolveBenchJSON regenerates BENCH_solve.json. Gated behind an env
// var so routine test runs stay fast:
//
//	GAVEL_WRITE_BENCH=1 go test -run TestWriteSolveBenchJSON
func TestWriteSolveBenchJSON(t *testing.T) {
	if os.Getenv("GAVEL_WRITE_BENCH") == "" {
		t.Skip("set GAVEL_WRITE_BENCH=1 to (re)generate BENCH_solve.json")
	}
	var records []solveBenchRecord
	for _, pol := range solveResetPolicies {
		for _, engine := range []lp.Engine{lp.Dense, lp.Revised} {
			sizes := []int{128, 256, 512}
			if engine == lp.Revised && pol.name != "ftf" {
				// The 1024-job scenario exists only on the sparse revised
				// core: the dense tableau needs minutes per cold reset at
				// that size (and ftf's binary search multiplies that by
				// ~20 solves per reset).
				sizes = append(sizes, 1024)
			}
			for _, n := range sizes {
				resets := 10
				if engine == lp.Dense && n >= 512 {
					// The dense oracle's 512-job cells take minutes each;
					// fewer resets keep regeneration tractable while the
					// per-reset numbers stay comparable.
					resets = 4
				}
				for _, scenario := range []string{"perturb", "churn"} {
					for _, warm := range []bool{false, true} {
						records = append(records, measureSolveResets(pol.name, pol.make(), n, resets, scenario, warm, engine))
					}
				}
			}
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"benchmark": "PolicySolveReset",
		"unit_note": "resets perturb throughputs by 1%; the churn scenario additionally changes the job set (departure+arrival) on 25% of resets; ns_per_reset is hardware-local, iteration counts are deterministic; engine selects the simplex core (the 1024-job cells exist only on the sparse revised engine — dense needs minutes per reset at that size)",
		"records":   records,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_solve.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWarmSolveResetSavings is the shape-preserving acceptance gate:
// warm-started repeated solves must cut simplex iterations by at least 30%
// vs cold at every benchmarked size for the flagship fairness policy, and in
// aggregate for the others.
func TestWarmSolveResetSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("solve-reset savings measurement is not -short")
	}
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256} {
			cold := measureSolveResets(pol.name, pol.make(), n, 6, "perturb", false, lp.EngineAuto)
			warm := measureSolveResets(pol.name, pol.make(), n, 6, "perturb", true, lp.EngineAuto)
			if warm.WarmSolves == 0 {
				t.Fatalf("%s jobs=%d: no warm solves", pol.name, n)
			}
			saving := 1 - float64(warm.SimplexIterations)/float64(cold.SimplexIterations)
			t.Logf("%s jobs=%d: cold iters=%d warm iters=%d (%.0f%% saved, %d/%d solves warm)",
				pol.name, n, cold.SimplexIterations, warm.SimplexIterations,
				100*saving, warm.WarmSolves, warm.LPSolves)
			if saving < 0.30 {
				t.Errorf("%s jobs=%d: warm start saved only %.0f%% of simplex iterations (need >= 30%%)",
					pol.name, n, 100*saving)
			}
		}
	}
}

// TestRemappedSolveChurnSavings is the cross-shape acceptance gate: with 25%
// of resets changing the job set (a departure + an arrival), the warm
// pipeline — positional warm starts on shape-preserving resets, remapped
// bases on churn resets — must cut simplex iterations by at least 50% vs
// cold at every benchmarked size, while actually exercising the remap. FTF's
// 512-job cold baseline alone costs minutes of binary-search solves, so that
// one cell is measured only by the BENCH_solve.json writer (where it showed
// 82% saved); the gate stops FTF at 256.
func TestRemappedSolveChurnSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("churn savings measurement is not -short")
	}
	for _, pol := range solveResetPolicies {
		sizes := []int{128, 256, 512}
		if pol.name == "ftf" {
			sizes = []int{128, 256}
		}
		for _, n := range sizes {
			cold := measureSolveResets(pol.name, pol.make(), n, 8, "churn", false, lp.EngineAuto)
			warm := measureSolveResets(pol.name, pol.make(), n, 8, "churn", true, lp.EngineAuto)
			if warm.RemappedSolves == 0 {
				t.Fatalf("%s jobs=%d: churn resets never took the remapped path", pol.name, n)
			}
			saving := 1 - float64(warm.SimplexIterations)/float64(cold.SimplexIterations)
			t.Logf("%s jobs=%d: cold iters=%d warm iters=%d (%.0f%% saved, %d warm + %d remapped of %d solves)",
				pol.name, n, cold.SimplexIterations, warm.SimplexIterations,
				100*saving, warm.WarmSolves, warm.RemappedSolves, warm.LPSolves)
			if saving < 0.50 {
				t.Errorf("%s jobs=%d: churned warm pipeline saved only %.0f%% of simplex iterations (need >= 50%%)",
					pol.name, n, 100*saving)
			}
		}
	}
}
