// Repeated-solve benchmarks for the incremental allocation pipeline: how
// fast can a policy re-solve after a reset event when the problem shape is
// unchanged (observed-throughput updates), cold vs warm-started. Run with:
//
//	go test -bench BenchmarkPolicySolveReset -run '^$'
//
// TestWriteSolveBenchJSON (gated by GAVEL_WRITE_BENCH=1) records the same
// measurements into BENCH_solve.json to track the perf trajectory across
// PRs.
package gavel

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

// solveResetInput builds an n-job policy input on an n/4-per-type cluster
// (the paper's scaling shape), with distinct weights so optima are unique.
func solveResetInput(n int) *policy.Input {
	per := float64(n / 4)
	if per < 1 {
		per = 1
	}
	zoo := workload.Zoo()
	in := &policy.Input{
		Workers: []float64{per, per, per},
		Prices:  []float64{3.06, 1.46, 0.9},
	}
	for m := 0; m < n; m++ {
		cfg := zoo[m%len(zoo)]
		tput := make([]float64, 3)
		for t := range tput {
			if workload.Fits(cfg, t) {
				tput[t] = workload.Throughput(cfg, t)
			}
		}
		in.Jobs = append(in.Jobs, policy.JobInfo{
			ID: m, Weight: 1 + 0.01*float64(m), Priority: 1, ScaleFactor: 1,
			Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
			Elapsed: 3600, ArrivalSeq: m, NumActiveJobs: n,
		})
		// Unit shares the Tput slice so in-place perturbation stays
		// consistent between the job row and its unit row.
		in.Units = append(in.Units, core.Single(m, tput))
	}
	return in
}

// perturbInput jitters every throughput by up to +-frac in place, modeling a
// reset event where observed throughputs moved but the job set did not.
func perturbInput(in *policy.Input, rng *rand.Rand, frac float64) {
	for m := range in.Jobs {
		for t, v := range in.Jobs[m].Tput {
			if v > 0 {
				in.Jobs[m].Tput[t] = v * (1 + frac*(2*rng.Float64()-1))
			}
		}
	}
}

var solveResetPolicies = []struct {
	name string
	make func() policy.Policy
}{
	{"maxmin", func() policy.Policy { return &policy.MaxMinFairness{} }},
	{"ftf", func() policy.Policy { return &policy.FinishTimeFairness{} }},
	{"cost", func() policy.Policy { return &policy.MinCost{} }},
}

// BenchmarkPolicySolveReset measures repeated-solve latency after
// shape-preserving reset events, cold (no persistent context) vs warm
// (basis reuse across resets) at 2^7..2^9 jobs.
func BenchmarkPolicySolveReset(b *testing.B) {
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256, 512} {
			for _, mode := range []string{"cold", "warm"} {
				b.Run(fmt.Sprintf("%s/jobs=%d/%s", pol.name, n, mode), func(b *testing.B) {
					in := solveResetInput(n)
					p := pol.make()
					ctx := policy.NewSolveContext()
					ctx.NoWarm = mode == "cold"
					rng := rand.New(rand.NewSource(99))
					// Prime the context so the first measured solve of the
					// warm mode has a basis to start from, as it would
					// mid-simulation.
					if _, err := p.Allocate(in, ctx); err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						perturbInput(in, rng, 0.01)
						if _, err := p.Allocate(in, ctx); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(ctx.Stats.Iterations)/float64(ctx.Stats.Solves), "simplex-iters/solve")
				})
			}
		}
	}
}

type solveBenchRecord struct {
	Policy            string  `json:"policy"`
	Jobs              int     `json:"jobs"`
	Mode              string  `json:"mode"`
	Resets            int     `json:"resets"`
	LPSolves          int     `json:"lp_solves"`
	WarmSolves        int     `json:"warm_solves"`
	SimplexIterations int     `json:"simplex_iterations"`
	NsPerReset        float64 `json:"ns_per_reset"`
}

// measureSolveResets runs a fixed number of perturbed re-solves and returns
// the record. Iteration counts are deterministic; timings are hardware-local.
func measureSolveResets(polName string, p policy.Policy, n, resets int, warm bool) solveBenchRecord {
	in := solveResetInput(n)
	ctx := policy.NewSolveContext()
	ctx.NoWarm = !warm
	rng := rand.New(rand.NewSource(99))
	if _, err := p.Allocate(in, ctx); err != nil {
		panic(err)
	}
	prime := ctx.Stats
	start := time.Now()
	for i := 0; i < resets; i++ {
		perturbInput(in, rng, 0.01)
		if _, err := p.Allocate(in, ctx); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	mode := "cold"
	if warm {
		mode = "warm"
	}
	return solveBenchRecord{
		Policy: polName, Jobs: n, Mode: mode, Resets: resets,
		LPSolves:          ctx.Stats.Solves - prime.Solves,
		WarmSolves:        ctx.Stats.WarmHits - prime.WarmHits,
		SimplexIterations: ctx.Stats.Iterations - prime.Iterations,
		NsPerReset:        float64(elapsed.Nanoseconds()) / float64(resets),
	}
}

// TestWriteSolveBenchJSON regenerates BENCH_solve.json. Gated behind an env
// var so routine test runs stay fast:
//
//	GAVEL_WRITE_BENCH=1 go test -run TestWriteSolveBenchJSON
func TestWriteSolveBenchJSON(t *testing.T) {
	if os.Getenv("GAVEL_WRITE_BENCH") == "" {
		t.Skip("set GAVEL_WRITE_BENCH=1 to (re)generate BENCH_solve.json")
	}
	var records []solveBenchRecord
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256, 512} {
			for _, warm := range []bool{false, true} {
				records = append(records, measureSolveResets(pol.name, pol.make(), n, 10, warm))
			}
		}
	}
	out, err := json.MarshalIndent(map[string]any{
		"benchmark": "PolicySolveReset",
		"unit_note": "resets are shape-preserving throughput perturbations (1%); ns_per_reset is hardware-local, iteration counts are deterministic",
		"records":   records,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_solve.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestWarmSolveResetSavings is the acceptance gate: warm-started repeated
// solves must cut simplex iterations by at least 30% vs cold at every
// benchmarked size for the flagship fairness policy, and in aggregate for
// the others.
func TestWarmSolveResetSavings(t *testing.T) {
	if testing.Short() {
		t.Skip("solve-reset savings measurement is not -short")
	}
	for _, pol := range solveResetPolicies {
		for _, n := range []int{128, 256} {
			cold := measureSolveResets(pol.name, pol.make(), n, 6, false)
			warm := measureSolveResets(pol.name, pol.make(), n, 6, true)
			if warm.WarmSolves == 0 {
				t.Fatalf("%s jobs=%d: no warm solves", pol.name, n)
			}
			saving := 1 - float64(warm.SimplexIterations)/float64(cold.SimplexIterations)
			t.Logf("%s jobs=%d: cold iters=%d warm iters=%d (%.0f%% saved, %d/%d solves warm)",
				pol.name, n, cold.SimplexIterations, warm.SimplexIterations,
				100*saving, warm.WarmSolves, warm.LPSolves)
			if saving < 0.30 {
				t.Errorf("%s jobs=%d: warm start saved only %.0f%% of simplex iterations (need >= 30%%)",
					pol.name, n, 100*saving)
			}
		}
	}
}
