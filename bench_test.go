// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7 + Appendix A.2). Each benchmark runs the corresponding experiment at
// harness scale and reports the same rows/series the paper plots; absolute
// numbers differ from the paper (synthetic simulator, not the authors'
// testbed) but the shape — who wins and by roughly what factor — should
// hold. Run with:
//
//	go test -bench=. -benchmem
//
// Reports are printed once per benchmark (on the first iteration).
package gavel

import (
	"fmt"
	"sync"
	"testing"

	"gavel/internal/experiments"
)

// benchOpt keeps the full bench suite tractable; cmd/gavel-sim -full runs
// paper-scale sweeps.
var benchOpt = experiments.Options{Jobs: 100, Seeds: 1, Warmup: 10}

var printOnce sync.Map

func report(b *testing.B, key, rep string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, rep)
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure1()
		report(b, "Figure 1", rep)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table2()
		report(b, "Table 2", rep)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Table3(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Table 3", out.Report)
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 8", out.Report)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure9(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 9", out.Report)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure10(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 10", out.Report)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 11", out.Report)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure12([]int{32, 128, 512})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 12", out.Report)
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure13(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 13", out.Report)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure14(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 14", out.Report)
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure15()
		report(b, "Figure 15", rep)
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure16(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 16", out.Report)
	}
}

func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure17(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 17", out.Report)
	}
}

func BenchmarkFigure18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure18(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 18", out.Report)
	}
}

func BenchmarkFigure19(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure19(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 19", out.Report)
	}
}

func BenchmarkFigure20(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure20(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 20", out.Report)
	}
}

func BenchmarkFigure21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Figure21()
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Figure 21", out.Report)
	}
}

func BenchmarkCostPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.CostPolicies(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		report(b, "Cost policies (§7.3)", out.Report)
	}
}
