// Package gavel is a Go reproduction of Gavel, the heterogeneity-aware
// cluster scheduler for deep learning workloads from "Heterogeneity-Aware
// Cluster Scheduling Policies for Deep Learning Workloads" (Narayanan et
// al., OSDI 2020).
//
// Gavel expresses cluster scheduling policies — fairness, FIFO, makespan,
// cost, finish-time fairness, hierarchical multi-level policies — as
// optimization problems over each job's *effective throughput*: the
// time-weighted average throughput across the heterogeneous accelerators
// (and space-sharing combinations) in its allocation. A preemptive
// round-based scheduling mechanism then realizes the computed allocation.
//
// This package is the public facade: it re-exports the policy catalog, the
// simulator used for evaluation, and helpers to assemble clusters and
// workloads. The implementation lives in internal/ packages:
//
//   - internal/lp, internal/milp: simplex LP solver and branch-and-bound
//     MILP (Go has no standard LP ecosystem, so Gavel's optimization
//     substrate is built from scratch here);
//   - internal/core: allocation matrices, effective throughput, the shared
//     constraint structure (§3.1 of the paper);
//   - internal/policy: every policy in the paper's Table 1 plus the
//     baselines it evaluates against (heterogeneity-agnostic LAS/FIFO/FTF,
//     Gandiva ad-hoc packing, AlloX);
//   - internal/scheduler: the round-based mechanism (§5, Algorithm 1);
//   - internal/cluster: cluster specs, plus the sharded scheduler service —
//     jobs and devices partitioned across K shards, each with its own solve
//     context, throughput cache, and mechanism, driven concurrently by a
//     coordinator that routes arrivals, rebalances via warm-basis job
//     migration, and merges rounds under the global worker budget
//     (SimulationConfig.NumShards);
//   - internal/simulator: the discrete-event evaluation substrate;
//   - internal/estimator: the matrix-completion throughput estimator
//     (§3.3);
//   - internal/experiments: regenerates every table and figure in §7.
//
// # Quick start
//
//	trace := gavel.NewTrace(gavel.TraceOptions{NumJobs: 50, LambdaPerHour: 3, Seed: 1})
//	res, err := gavel.Simulate(gavel.SimulationConfig{
//		Cluster: gavel.Simulated108(),
//		Policy:  gavel.MaxMinFairnessPolicy(),
//		Trace:   trace,
//	})
//	fmt.Printf("average JCT: %.2f hours\n", res.AvgJCT(0))
package gavel

import (
	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/estimator"
	"gavel/internal/lp"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// Re-exported domain types. Downstream code builds traces and clusters with
// these and hands them to Simulate.
type (
	// Cluster describes a heterogeneous accelerator cluster.
	Cluster = cluster.Spec
	// AcceleratorType is one device class in a Cluster.
	AcceleratorType = cluster.AcceleratorType
	// Job is a single trace entry.
	Job = workload.Job
	// TraceOptions parameterizes synthetic trace generation.
	TraceOptions = workload.TraceOptions
	// Policy computes heterogeneity-aware allocations.
	Policy = policy.Policy
	// SimulationConfig parameterizes a simulation run.
	SimulationConfig = simulator.Config
	// SimulationResult is a completed simulation.
	SimulationResult = simulator.Result
	// JobResult is one job's outcome within a SimulationResult.
	JobResult = simulator.JobResult
	// EntityPolicy selects the intra-entity policy for hierarchical
	// scheduling.
	EntityPolicy = policy.EntityPolicy
	// SolveContext carries per-policy incremental solve state (cached
	// simplex bases, previous allocation, solve statistics) across
	// Policy.Allocate calls. Pass nil to Allocate for the stateless cold
	// path; the simulator manages one automatically unless
	// SimulationConfig.ColdSolves is set.
	SolveContext = policy.SolveContext
	// SolveStats is the accounting a SolveContext accumulates.
	SolveStats = policy.SolveStats
	// ThroughputCache maintains job/pair throughput matrices incrementally
	// under add/remove/observe, for callers driving policies directly.
	ThroughputCache = core.ThroughputCache
	// LPEngine selects the simplex implementation
	// (SimulationConfig.LPEngine, SolveContext.Engine).
	LPEngine = lp.Engine
	// ShardStat is one shard's solve/migration accounting within a sharded
	// SimulationResult (SimulationConfig.NumShards > 0).
	ShardStat = simulator.ShardStat
	// ShardRoutePolicy selects how the sharded engine routes arriving jobs
	// (SimulationConfig.ShardRoute).
	ShardRoutePolicy = cluster.RoutePolicy
	// LPOptions bundles every LP solver knob (engine, pricing, presolve,
	// dual warm starts), resolved once at startup and threaded through
	// SimulationConfig.LPOptions, the cluster service, and the daemons.
	LPOptions = lp.Options
	// ShardClient is the coordinator-side handle on one shard daemon —
	// in-memory (NewLocalShard) or remote (DialShard); both drive the
	// identical engine code path.
	ShardClient = rpc.ShardClient
	// ShardServer is the shard daemon engine behind a ShardClient.
	ShardServer = rpc.ShardServer
	// ClusterService drives shard daemons through the versioned control
	// plane: routed admission, round-synchronized allocation, warm-basis
	// rebalance migrations, snapshot-based crash recovery.
	ClusterService = rpc.Service
	// ClusterServiceConfig parameterizes a ClusterService.
	ClusterServiceConfig = rpc.ServiceConfig
)

// Shard routing policies for the sharded engine: RouteHash assigns jobs by
// ID modulo the shard count, RouteLeastLoaded to the shard with the
// smallest device demand.
const (
	RouteHash        = cluster.RouteHash
	RouteLeastLoaded = cluster.RouteLeastLoaded
)

// NewSolveContext returns an empty per-policy solve context for callers that
// invoke policies directly across reset events.
func NewSolveContext() *SolveContext { return policy.NewSolveContext() }

// NewThroughputCache returns an empty throughput cache over numTypes
// accelerator types.
func NewThroughputCache(numTypes int) *ThroughputCache { return core.NewThroughputCache(numTypes) }

// Intra-entity policies for hierarchical scheduling.
const (
	EntityFairness = policy.EntityFairness
	EntityFIFO     = policy.EntityFIFO
)

// Simplex engine selectors. LPEngineRevised — the sparse revised simplex
// core — is the default; LPEngineDense is the reference tableau oracle
// (also reachable fleet-wide via GAVEL_LP_ENGINE=dense); LPEngineAuto
// follows the package default.
const (
	LPEngineAuto    = lp.EngineAuto
	LPEngineDense   = lp.Dense
	LPEngineRevised = lp.Revised
)

// Cluster constructors matching the paper's testbeds.
var (
	// Physical48 is the paper's physical cluster: 8 V100, 16 P100, 24 K80.
	Physical48 = cluster.Physical48
	// Simulated108 is the paper's simulated cluster: 36 of each type.
	Simulated108 = cluster.Simulated108
	// Small9 is the 3/3/3 cluster of the hierarchical timelines.
	Small9 = cluster.Small9
	// Small12 is the 4/4/4 cluster of the estimator experiment.
	Small12 = cluster.Small12
)

// NewTrace generates a synthetic trace (§7.1: Poisson arrivals, log-uniform
// durations, the 26-configuration model zoo of Table 2).
func NewTrace(opt TraceOptions) []Job { return workload.GenerateTrace(opt) }

// Simulate runs a trace through a policy on a simulated cluster.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) { return simulator.Run(cfg) }

// LPOptionsFromEnv reads the GAVEL_LP_* environment knobs into an LPOptions,
// the one sanctioned env read — resolve it at startup and thread the value
// through configs instead of re-reading the environment.
func LPOptionsFromEnv() LPOptions { return lp.OptionsFromEnv() }

// ParseLPOptions parses textual solver knobs ("dense"/"revised",
// "dantzig"/"devex", "on"/"off" twice; empty strings mean auto), the form
// daemon flags use.
func ParseLPOptions(engine, pricing, presolve, dual string) (LPOptions, error) {
	return lp.ParseOptions(engine, pricing, presolve, dual)
}

// NewLocalShard returns a shard daemon engine and an in-memory client on it,
// so tests and simulations drive the exact service code path without
// sockets (SimulationConfig.ShardClients).
func NewLocalShard() (*ShardServer, ShardClient) { return rpc.NewLocalShard() }

// DialShard connects to a gavel-shard daemon, performing the protocol
// handshake.
func DialShard(addr string) (ShardClient, error) { return rpc.DialShard(addr) }

// NewClusterService assembles the coordinator over the given shard clients:
// it pushes each daemon's configuration and then drives admission,
// allocation, rounds, rebalancing, and recovery through the control plane.
func NewClusterService(cfg ClusterServiceConfig, shards []ShardClient) (*ClusterService, error) {
	return rpc.NewService(cfg, shards)
}

// MaxMinFairnessPolicy returns the heterogeneity-aware Least Attained
// Service policy (§4.1), the paper's flagship fairness policy. Enable
// space sharing via SimulationConfig.SpaceSharing.
func MaxMinFairnessPolicy() Policy { return &policy.MaxMinFairness{} }

// MaxMinFairnessWithPriorities folds job priorities into the fairness
// weights.
func MaxMinFairnessWithPriorities() Policy { return &policy.MaxMinFairness{UsePriorities: true} }

// FIFOPolicy returns the heterogeneity-aware first-in-first-out policy.
func FIFOPolicy() Policy { return policy.FIFO{} }

// ShortestJobFirstPolicy returns the heterogeneity-aware SJF policy.
func ShortestJobFirstPolicy() Policy { return policy.ShortestJobFirst{} }

// MakespanPolicy returns the heterogeneity-aware minimum-makespan policy.
func MakespanPolicy() Policy { return policy.Makespan{} }

// FinishTimeFairnessPolicy returns the heterogeneity-aware Themis policy.
func FinishTimeFairnessPolicy() Policy { return &policy.FinishTimeFairness{} }

// MinCostPolicy returns the throughput-per-dollar cost policy; with
// enforceSLOs it adds per-job deadline constraints.
func MinCostPolicy(enforceSLOs bool) Policy { return &policy.MinCost{EnforceSLOs: enforceSLOs} }

// MaxTotalThroughputPolicy returns the total-normalized-throughput policy.
func MaxTotalThroughputPolicy() Policy { return policy.MaxTotalThroughput{} }

// HierarchicalPolicy returns a multi-level policy: weighted fairness across
// entities, with the given per-entity intra policies (§4.3).
func HierarchicalPolicy(entityWeights map[int]float64, entityPolicies map[int]EntityPolicy) Policy {
	return &policy.Hierarchical{EntityWeight: entityWeights, EntityPolicyOf: entityPolicies}
}

// PlacementAwareMaxMinPolicy returns the §3.1 placement-sensitivity
// transformation of max-min fairness: consolidated and unconsolidated
// placements become separate virtual worker types sharing each physical
// type's capacity. unconsolidatedTput maps job index -> per-type
// spread-placement throughputs (nil entries use a conservative default).
func PlacementAwareMaxMinPolicy(unconsolidatedTput map[int][]float64) Policy {
	return &policy.PlacementAwareMaxMin{UnconsolidatedTput: unconsolidatedTput}
}

// HeterogeneityAgnostic wraps a policy into its heterogeneity-agnostic
// baseline (how the paper's "LAS"/"FIFO"/"FTF" baselines behave).
func HeterogeneityAgnostic(inner Policy) Policy { return &policy.Agnostic{Inner: inner} }

// AlloXPolicy returns the AlloX (min average JCT) related-work baseline.
func AlloXPolicy() Policy { return &policy.AlloX{} }

// GandivaPolicy returns the Gandiva ad-hoc space-sharing baseline.
func GandivaPolicy(seed int64) Policy { return policy.NewGandivaSpaceSharing(seed) }

// NewThroughputEstimator builds the matrix-completion throughput estimator
// (§3.3) over the model zoo, profiling new jobs against profilesPerJob
// references on the P100. Pass it as SimulationConfig.Provider.
func NewThroughputEstimator(profilesPerJob int, seed int64) simulator.ThroughputProvider {
	return estimator.New(workload.Zoo(), workload.P100, profilesPerJob, seed)
}
