// gavel-sim drives the experiment harness: it regenerates any table or
// figure from the paper's evaluation on the simulator substrate.
//
// Usage:
//
//	gavel-sim -exp fig8            # one experiment at default scale
//	gavel-sim -exp all -jobs 400   # bigger traces
//	gavel-sim -exp table3 -full    # paper-scale run
//	gavel-sim -list                # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gavel/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig1, table2, table3, fig8..fig21, cost, sharded, all)")
		jobs  = flag.Int("jobs", 120, "jobs per trace")
		seeds = flag.Int("seeds", 1, "seeds per data point")
		full  = flag.Bool("full", false, "paper-scale runs (long): 600 jobs, 3 seeds")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	opt := experiments.Options{Jobs: *jobs, Seeds: *seeds, Warmup: 10}
	if *full {
		opt.Jobs, opt.Seeds = 600, 3
	}

	runners := map[string]func() (string, error){
		"fig1":   func() (string, error) { return experiments.Figure1(), nil },
		"table2": func() (string, error) { return experiments.Table2(), nil },
		"table3": func() (string, error) {
			o, err := experiments.Table3(opt)
			return reportOf(o, err)
		},
		"fig8": func() (string, error) {
			o, err := experiments.Figure8(opt)
			return reportOf(o, err)
		},
		"fig9": func() (string, error) {
			o, err := experiments.Figure9(opt)
			return reportOf(o, err)
		},
		"fig10": func() (string, error) {
			o, err := experiments.Figure10(opt)
			return reportOf(o, err)
		},
		"fig11": func() (string, error) {
			o, err := experiments.Figure11()
			return reportOf(o, err)
		},
		"fig12": func() (string, error) {
			sizes := []int{32, 128, 512}
			if *full {
				sizes = append(sizes, 1024, 2048)
			}
			o, err := experiments.Figure12(sizes)
			return reportOf(o, err)
		},
		"fig13": func() (string, error) {
			o, err := experiments.Figure13(opt)
			return reportOf(o, err)
		},
		"fig14": func() (string, error) {
			o, err := experiments.Figure14(opt)
			return reportOf(o, err)
		},
		"fig15": func() (string, error) { return experiments.Figure15(), nil },
		"fig16": func() (string, error) {
			o, err := experiments.Figure16(opt)
			return reportOf(o, err)
		},
		"fig17": func() (string, error) {
			o, err := experiments.Figure17(opt)
			return reportOf(o, err)
		},
		"fig18": func() (string, error) {
			o, err := experiments.Figure18(opt)
			return reportOf(o, err)
		},
		"fig19": func() (string, error) {
			o, err := experiments.Figure19(opt)
			return reportOf(o, err)
		},
		"fig20": func() (string, error) {
			o, err := experiments.Figure20(opt)
			return reportOf(o, err)
		},
		"fig21": func() (string, error) {
			o, err := experiments.Figure21()
			return reportOf(o, err)
		},
		"cost": func() (string, error) {
			o, err := experiments.CostPolicies(opt)
			return reportOf(o, err)
		},
		"sharded": func() (string, error) {
			o, err := experiments.Sharded(opt, []int{1, 4})
			return reportOf(o, err)
		},
	}

	ids := make([]string, 0, len(runners))
	for id := range runners {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		fmt.Println(strings.Join(ids, "\n"))
		return
	}

	var selected []string
	if *exp == "all" {
		selected = ids
	} else {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "gavel-sim: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		selected = []string{*exp}
	}
	for _, id := range selected {
		rep, err := runners[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "gavel-sim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("===== %s =====\n%s\n", id, rep)
	}
}

// reportOf extracts the Report field shared by all experiment outcomes.
func reportOf(o fmt.Stringer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return o.String(), nil
}
