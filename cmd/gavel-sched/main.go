// gavel-sched is the scheduler daemon for physical deployments. It serves
// the worker lease plane (internal/rpc) on a TCP port and runs in one of two
// modes:
//
//   - Coordinator (-shards addr,addr): the daemon drives remote gavel-shard
//     processes through the versioned coordinator <-> shard control plane —
//     round-synchronized allocation, warm-basis rebalance migrations,
//     periodic recovery snapshots — and leases the merged round assignments
//     to workers. This is the paper's scheduler architecture as separate
//     processes: policy on the shards, mechanism merged at the coordinator.
//   - Standalone (no -shards): the seed's single-process scheduler, leasing
//     by least attained service.
//
// With -submit-listen, the coordinator also serves the client submission
// plane (protocol v3): tenants stream jobs through gavel-submit, admission is
// rationed by the GAVEL_SUBMIT_* quotas, and the declared-vs-measured trust
// review runs between rounds; shed/quarantine decisions are logged and, with
// -decision-log, rewritten to a file each round.
//
// Usage:
//
//	gavel-sched -listen :8642 -jobs 8 -round 10
//	gavel-sched -listen :8642 -shards 127.0.0.1:8650,127.0.0.1:8651 -policy max_min_fairness
//	gavel-sched -listen :8642 -shards ... -submit-listen :8643 -decision-log decisions.log
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/cluster"
	"gavel/internal/lp"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/workload"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8642", "address to serve the worker lease plane on")
		shards = flag.String("shards", "", "comma-separated gavel-shard addresses (empty = standalone mode)")
		jobs   = flag.Int("jobs", 4, "number of synthetic jobs to run")
		round  = flag.Float64("round", 10, "round duration in seconds")
		steps  = flag.Float64("steps", 2000, "training steps per job")

		policyName = flag.String("policy", "max_min_fairness", "allocation policy (coordinator mode)")
		gpus       = flag.String("gpus", "v100:4,p100:4,k80:8", "cluster spec: name:count[:perServer],...")
		rebalance  = flag.Int("rebalance-every", 10, "rounds between shard rebalances (0 = off)")
		realloc    = flag.Int("realloc-every", 4, "rounds between forced reallocations (0 = off)")
		snapshot   = flag.Int("snapshot-every", 1, "rounds between recovery snapshots")

		lpEngine   = flag.String("lp-engine", "", "LP engine: dense|revised (default auto)")
		lpPricing  = flag.String("lp-pricing", "", "LP pricing: dantzig|devex (default auto)")
		lpPresolve = flag.String("lp-presolve", "", "LP presolve: on|off (default auto)")
		lpDual     = flag.String("lp-dual", "", "LP dual warm starts: on|off (default auto)")

		submitListen = flag.String("submit-listen", "", "address to serve the client submission plane on (coordinator mode; empty = off)")
		decisionLog  = flag.String("decision-log", "", "file rewritten each round with the admission decision log (shed/quarantine/abandon)")
		drainRounds  = flag.Int("drain-rounds", 3, "with -submit-listen, idle rounds with no resident or queued submissions before exiting")

		obsDefaults = obs.OptionsFromEnv()
		obsListen   = flag.String("obs-listen", obsDefaults.Listen, "address to serve /metrics, /statusz, /debug/trace, and pprof on (default GAVEL_OBS_LISTEN; empty = off)")
		obsTrace    = flag.String("obs-trace", obsDefaults.TracePath, "JSONL span-log path (default GAVEL_OBS_TRACE; empty = ring buffer only)")

		journal    = flag.String("journal", "", "coordinator write-ahead-log path (empty = not durable; an existing journal resumes the run)")
		chaosSpec  = flag.String("chaos", "", "fault-injection spec, e.g. seed=42,drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,partition=40+10,crash=200")
		rpcTimeout = flag.Duration("rpc-timeout", 0, "per-call shard RPC deadline (0 = GAVEL_RPC_TIMEOUT or default)")
		rpcRetries = flag.Int("rpc-retries", -1, "transient-failure retries per shard call (-1 = GAVEL_RPC_RETRIES or default)")
		rpcBackoff = flag.Duration("rpc-backoff", 0, "base retry backoff (0 = GAVEL_RPC_BACKOFF or default)")
	)
	flag.Parse()

	telemetry := obsDefaults
	telemetry.Listen = *obsListen
	telemetry.TracePath = *obsTrace

	if *shards == "" {
		if *submitListen != "" {
			log.Fatalf("gavel-sched: -submit-listen requires coordinator mode (-shards)")
		}
		runStandalone(*listen, *jobs, *round, *steps, telemetry)
		return
	}
	opts, err := lp.ParseOptions(*lpEngine, *lpPricing, *lpPresolve, *lpDual)
	if err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
	faults, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
	pol := rpc.CallPolicyFromEnv()
	if *rpcTimeout > 0 {
		pol.Timeout = *rpcTimeout
	}
	if *rpcRetries >= 0 {
		pol.Retries = *rpcRetries
	}
	if *rpcBackoff > 0 {
		pol.Backoff = *rpcBackoff
	}
	cfg := coordinatorConfig{
		listen:       *listen,
		shardAddrs:   strings.Split(*shards, ","),
		jobs:         *jobs,
		round:        *round,
		steps:        *steps,
		policy:       *policyName,
		gpus:         *gpus,
		rebalance:    *rebalance,
		realloc:      *realloc,
		snapshot:     *snapshot,
		lp:           opts,
		journal:      *journal,
		chaos:        faults,
		rpcPolicy:    pol,
		submitListen: *submitListen,
		decisionLog:  *decisionLog,
		drainRounds:  *drainRounds,
		telemetry:    telemetry,
	}
	if err := runCoordinator(cfg); err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
}

// parseCluster reads "name:count[:perServer],..." into a cluster spec, with
// on-demand prices filled from the standard price table.
func parseCluster(s string) (cluster.Spec, error) {
	prices := map[string]float64{
		"v100": cluster.PriceV100, "p100": cluster.PriceP100, "k80": cluster.PriceK80,
	}
	var spec cluster.Spec
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 {
			return spec, fmt.Errorf("bad -gpus entry %q (want name:count[:perServer])", entry)
		}
		count, err := strconv.Atoi(parts[1])
		if err != nil || count <= 0 {
			return spec, fmt.Errorf("bad device count in -gpus entry %q", entry)
		}
		perServer := count
		if len(parts) > 2 {
			if perServer, err = strconv.Atoi(parts[2]); err != nil || perServer <= 0 {
				return spec, fmt.Errorf("bad per-server count in -gpus entry %q", entry)
			}
		}
		spec.Types = append(spec.Types, cluster.AcceleratorType{
			Name: parts[0], Count: count, PricePerHour: prices[parts[0]], PerServer: perServer,
		})
	}
	return spec, nil
}

// planSource leases the coordinator's merged round assignments to workers:
// one queue of job IDs per accelerator type, refilled each round, popped per
// lease request. It implements rpc.LeaseSource (called under the scheduler's
// lock; it only takes its own).
type planSource struct {
	mu    sync.Mutex
	queue map[string][]int
}

func (p *planSource) NextLease(_ int, accType, _ string) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queue[accType]
	if len(q) == 0 {
		return nil
	}
	p.queue[accType] = q[1:]
	return []int{q[0]}
}

func (p *planSource) set(plan map[string][]int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.queue = plan
}

type coordinatorConfig struct {
	listen     string
	shardAddrs []string
	jobs       int
	round      float64
	steps      float64
	policy     string
	gpus       string
	rebalance  int
	realloc    int
	snapshot   int
	lp         lp.Options
	journal    string
	chaos      chaos.Config
	rpcPolicy  rpc.CallPolicy

	submitListen string
	decisionLog  string
	drainRounds  int

	telemetry obs.Options
}

// runCoordinator drives remote shard daemons through the control plane and
// leases the merged assignments to workers, round by round, until the
// synthetic batch completes.
func runCoordinator(cfg coordinatorConfig) error {
	spec, err := parseCluster(cfg.gpus)
	if err != nil {
		return err
	}
	// Map spec types onto the model zoo's oracle indices for throughput hints.
	wIdx := make([]int, len(spec.Types))
	for i, t := range spec.Types {
		wIdx[i] = -1
		for j, name := range workload.TypeNames {
			if name == t.Name {
				wIdx[i] = j
			}
		}
		if wIdx[i] < 0 {
			return fmt.Errorf("accelerator type %q has no oracle throughputs (known: %v)", t.Name, workload.TypeNames)
		}
	}

	// The telemetry plane: one registry + trace ring shared by everything in
	// this process — the coordinator, the lease plane, the retry layer, and
	// the chaos transports. Nil when -obs-listen and -obs-trace are both off.
	plane, obsSrv, traceFile, err := cfg.telemetry.Build()
	if err != nil {
		return err
	}
	if obsSrv != nil {
		defer obsSrv.Close()
		log.Printf("gavel-sched: telemetry on %s (/metrics /statusz /debug/trace /debug/pprof)", obsSrv.Addr())
	}
	if traceFile != nil {
		defer traceFile.Close()
	}
	cfg.rpcPolicy.Obs = plane

	clients := make([]rpc.ShardClient, len(cfg.shardAddrs))
	var transports []*chaos.Transport
	for i, addr := range cfg.shardAddrs {
		if cfg.chaos.Enabled() {
			// Chaos sits between the transport and the retry layer: dial with
			// retries off (the deadline stays on the socket), inject faults,
			// then re-layer the retry policy on top so injected transients
			// exercise the production retry/degrade/recover path.
			noRetry := cfg.rpcPolicy
			noRetry.Retries = 0
			// Only the outer retry layer observes calls — instrumenting the
			// dial-time layer too would double-count every call.
			noRetry.Obs = nil
			c, err := rpc.DialShardWith(strings.TrimSpace(addr), noRetry)
			if err != nil {
				return fmt.Errorf("shard %s: %w", addr, err)
			}
			tr := chaos.Wrap(c, cfg.chaos, i).(*chaos.Transport)
			tr.SetObs(plane)
			transports = append(transports, tr)
			clients[i] = rpc.WithRetry(tr, cfg.rpcPolicy)
			continue
		}
		c, err := rpc.DialShardWith(strings.TrimSpace(addr), cfg.rpcPolicy)
		if err != nil {
			return fmt.Errorf("shard %s: %w", addr, err)
		}
		clients[i] = c
	}
	svcCfg := rpc.ServiceConfig{
		Cluster: spec,
		Policy:  rpc.PolicySpec{Name: cfg.policy},
		LP:      cfg.lp,
		Journal: cfg.journal,
		Obs:     plane,
	}
	submission := cfg.submitListen != ""
	if submission {
		adm := rpc.AdmissionConfigFromEnv()
		svcCfg.Admission = &adm
	}
	svc, err := rpc.NewService(svcCfg, clients)
	if err != nil {
		return err
	}
	defer svc.Close()
	startRound := 0
	if svc.Resumed() {
		startRound = int(svc.Round()) + 1
		log.Printf("gavel-sched: resumed from journal (round %d, %d jobs resident, %d recoveries so far)",
			svc.Round(), svc.NumJobs(), svc.Recoveries())
	}

	sched := rpc.NewScheduler(cfg.round)
	sched.SetObs(plane)
	plan := &planSource{}
	sched.SetLeaseSource(plan)
	addr, err := sched.Serve(cfg.listen)
	if err != nil {
		return err
	}
	defer sched.Close()
	if obsSrv != nil {
		obsSrv.AddStatus("coordinator", svc.StatusText)
		obsSrv.AddStatus("leases", sched.StatusText)
		if submission {
			obsSrv.AddStatus("tenants", svc.TenantStatusText)
		}
	}
	log.Printf("gavel-sched: coordinator mode, protocol v%d, lease plane on %s, %d shards, policy %s, lp[%s]",
		rpc.ProtocolVersion, addr, len(clients), cfg.policy, cfg.lp.Resolve())

	// jobSteps is every lease-plane job's training length — the synthetic
	// batch at cfg.steps plus each streamed submission at its declared length.
	jobSteps := map[int]float64{}
	if submission {
		sub := rpc.NewSubmitServer(svc)
		subAddr, err := sub.Serve(cfg.submitListen)
		if err != nil {
			return err
		}
		defer sub.Close()
		log.Printf("gavel-sched: submission plane on %s", subAddr)
		// A resumed journal replays the ingress too: re-install lease specs
		// for every submission that was admitted when the coordinator died.
		// Queued submissions stay queued and re-enter through AdmitPending.
		for _, si := range svc.Submissions() {
			if si.State != rpc.SubmissionAdmitted {
				continue
			}
			sched.Submit(rpc.JobSpec{
				JobID: si.JobID, Name: si.Name, TotalSteps: si.TotalSteps,
				ThroughputHint: hintFor(spec, si.Tput),
			})
			jobSteps[si.JobID] = si.TotalSteps
			log.Printf("gavel-sched: submission job %d (%s/%s) resumed on shard %d (journal)",
				si.JobID, si.Tenant, si.Key, si.Shard)
		}
	}

	// Submit the synthetic batch to both planes: leases need specs, shards
	// need throughput rows over the spec's accelerator types.
	zoo := workload.Zoo()
	submitted := time.Now()
	resident := map[int]bool{}
	for i := 0; i < cfg.jobs; i++ {
		model := zoo[(i*7)%len(zoo)]
		hint := map[string]float64{}
		tput := make([]float64, len(spec.Types))
		for t, at := range spec.Types {
			if workload.Fits(model, wIdx[t]) {
				hint[at.Name] = workload.Throughput(model, wIdx[t])
				tput[t] = hint[at.Name]
			}
		}
		sched.Submit(rpc.JobSpec{JobID: i, Name: model.Name(), TotalSteps: cfg.steps, ThroughputHint: hint})
		jobSteps[i] = cfg.steps
		if svc.HasJob(i) {
			// Already resident from the replayed journal; the lease plane's
			// progress restarts (leases are in-memory) but the placement and
			// the shard's warm state carry over.
			resident[i] = true
			log.Printf("gavel-sched: job %d (%s) already on shard %d (journal)", i, model.Name(), svc.JobShards()[i])
			continue
		}
		shard, err := svc.Admit(i, 1, tput)
		if err != nil {
			return fmt.Errorf("admit job %d: %w", i, err)
		}
		resident[i] = true
		log.Printf("gavel-sched: job %d (%s) -> shard %d", i, model.Name(), shard)
	}

	info := func(id int) policy.JobInfo {
		total := jobSteps[id]
		return policy.JobInfo{
			Weight:         1,
			RemainingSteps: total - sched.Steps(id),
			TotalSteps:     total,
			Elapsed:        time.Since(submitted).Seconds(),
			ArrivalSeq:     id,
		}
	}
	done := func(id int) bool { return sched.JobDone(id) }

	// drained counts consecutive rounds the submission plane was idle (no
	// queued or resident submissions); the coordinator exits once the
	// synthetic batch is complete and the plane has stayed idle -drain-rounds
	// rounds. loggedDecisions marks how much of the decision log has been
	// printed already.
	drained, loggedDecisions := 0, 0

	for r := startRound; ; r++ {
		// Retire completed jobs from the shards.
		completed := 0
		for id := range resident {
			if !sched.JobDone(id) {
				continue
			}
			if err := svc.Remove(id); err != nil {
				return err
			}
			delete(resident, id)
		}
		for i := 0; i < cfg.jobs; i++ {
			if sched.JobDone(i) {
				completed++
			}
		}
		log.Printf("gavel-sched: round %d, %d/%d jobs complete", r, completed, cfg.jobs)
		if completed == cfg.jobs && (!submission || drained >= cfg.drainRounds) {
			break
		}

		if submission {
			// Retire completed streamed jobs, sweep abandoned tenants, then
			// admit from the ingress queue under the round's quota budget.
			// Newly admitted submissions enter the lease plane here — the
			// journal already holds them, so a crash between admit and
			// EndRound replays to the same placement.
			for _, si := range svc.Submissions() {
				if si.State == rpc.SubmissionAdmitted && sched.JobDone(si.JobID) {
					if err := svc.Remove(si.JobID); err != nil {
						return err
					}
					log.Printf("gavel-sched: submission job %d (%s/%s) complete", si.JobID, si.Tenant, si.Key)
				}
			}
			if err := svc.ExpireAbandoned(int64(r)); err != nil {
				return err
			}
			admitted, err := svc.AdmitPending(int64(r))
			if err != nil {
				return err
			}
			if len(admitted) > 0 {
				byID := map[int]rpc.SubmissionInfo{}
				for _, si := range svc.Submissions() {
					byID[si.JobID] = si
				}
				for _, id := range admitted {
					si := byID[id]
					sched.Submit(rpc.JobSpec{
						JobID: id, Name: si.Name, TotalSteps: si.TotalSteps,
						ThroughputHint: hintFor(spec, si.Tput),
					})
					jobSteps[id] = si.TotalSteps
					log.Printf("gavel-sched: admitted submission job %d (%s/%s) -> shard %d",
						id, si.Tenant, si.Key, si.Shard)
				}
			}
		}

		if cfg.rebalance > 0 && r > 0 && r%cfg.rebalance == 0 {
			migs, err := svc.Rebalance()
			if err != nil {
				return err
			}
			for _, m := range migs {
				log.Printf("gavel-sched: rebalanced job %d: shard %d -> %d (warm basis shipped)", m.Job, m.From, m.To)
			}
		}
		if cfg.realloc > 0 && r > 0 && r%cfg.realloc == 0 {
			for k := 0; k < svc.NumShards(); k++ {
				if err := svc.MarkDirty(k); err != nil {
					return err
				}
			}
		}

		if err := svc.AllocateAll(int64(r), info, false); err != nil {
			return err
		}
		perShard, err := svc.AssignRound(int64(r), cfg.round, done)
		if err != nil {
			return err
		}
		// Merge the shards' assignments into per-type lease queues.
		queues := map[string][]int{}
		for k, assigns := range perShard {
			alloc, ids := svc.Alloc(k)
			if alloc == nil {
				continue
			}
			for _, a := range assigns {
				name := spec.Types[a.Type].Name
				for _, local := range alloc.Units[a.UnitIdx].Jobs {
					queues[name] = append(queues[name], ids[local])
				}
			}
		}
		plan.set(queues)

		if cfg.snapshot > 0 && r%cfg.snapshot == 0 {
			if err := svc.SnapshotAll(); err != nil {
				return err
			}
		}
		if svc.AnyDown() {
			migs, err := svc.Recover()
			if err != nil {
				return err
			}
			log.Printf("gavel-sched: shard daemon lost; recovered %d jobs onto survivors (warm from last snapshot)", len(migs))
			for _, m := range migs {
				log.Printf("gavel-sched: recovered job %d: shard %d -> %d", m.Job, m.From, m.To)
			}
		}
		if submission {
			// Feed the workers' measured throughputs into the trust review:
			// what each streamed job actually achieved this round, keyed back
			// to the cluster's accelerator-type indices.
			outstanding := 0
			for _, si := range svc.Submissions() {
				switch si.State {
				case rpc.SubmissionQueued:
					outstanding++
					continue
				case rpc.SubmissionAdmitted:
					outstanding++
				default:
					continue
				}
				measured := sched.Measured(si.JobID)
				for t, at := range spec.Types {
					if rate, ok := measured[at.Name]; ok && rate > 0 {
						if err := svc.ObserveMeasured(si.JobID, t, rate); err != nil {
							return err
						}
					}
				}
			}
			if outstanding == 0 {
				drained++
			} else {
				drained = 0
			}
		}

		// Seal the round: with -journal this fsyncs the round's records, the
		// point a killed coordinator replays back to.
		if err := svc.EndRound(int64(r)); err != nil {
			return err
		}

		if submission {
			decisions := svc.Decisions()
			for _, d := range decisions[loggedDecisions:] {
				log.Printf("gavel-sched: admission decision round=%d action=%s tenant=%s key=%s detail=%q",
					d.Round, d.Action, d.Tenant, d.Key, d.Detail)
			}
			loggedDecisions = len(decisions)
			if cfg.decisionLog != "" {
				if err := writeDecisionLog(cfg.decisionLog, decisions); err != nil {
					return err
				}
			}
		}

		time.Sleep(time.Duration(cfg.round * float64(time.Second)))
	}

	stats, err := svc.Stats()
	if err != nil {
		return err
	}
	for _, st := range stats {
		cold := st.Solve.Solves - st.Solve.WarmHits - st.Solve.RemapHits
		log.Printf("gavel-sched: shard %d: %d admitted, %d in, %d out, solves %d (%d warm, %d remapped, %d cold)",
			st.Index, st.Admitted, st.MigratedIn, st.MigratedOut,
			st.Solve.Solves, st.Solve.WarmHits, st.Solve.RemapHits, cold)
	}
	if submission {
		for _, ts := range svc.TenantStats() {
			log.Printf("gavel-sched: tenant %s: submitted=%d admitted=%d done=%d refused=%d shed=%d withdrawn=%d quarantined=%v clamp=%.3f",
				ts.Tenant, ts.Submitted, ts.Admitted, ts.Done, ts.Refused, ts.Shed, ts.Withdrawn, ts.Quarantined, ts.ClampRatio)
		}
		if cfg.decisionLog != "" {
			if err := writeDecisionLog(cfg.decisionLog, svc.Decisions()); err != nil {
				return err
			}
		}
	}
	// The injected-fault schedule: every fault the seeded chaos plane fired,
	// all masked by retry / degradation / recovery if the batch got here.
	for k, tr := range transports {
		counts := map[chaos.FaultKind]int{}
		for _, e := range tr.Schedule() {
			counts[e.Kind]++
		}
		log.Printf("gavel-sched: chaos schedule shard %d: %d faults injected %v", k, len(tr.Schedule()), counts)
	}
	log.Printf("gavel-sched: batch complete (%d migrations, %d rebalance passes, %d recoveries, %d degraded rounds)",
		svc.Migrations(), svc.Rebalances(), svc.Recoveries(), svc.DegradedRounds())
	return nil
}

// hintFor maps a submission's throughput row (indexed by cluster type) into
// the lease plane's name-keyed hint.
func hintFor(spec cluster.Spec, tput []float64) map[string]float64 {
	hint := map[string]float64{}
	for t, at := range spec.Types {
		if t < len(tput) && tput[t] > 0 {
			hint[at.Name] = tput[t]
		}
	}
	return hint
}

// writeDecisionLog rewrites the admission decision log, one decision per
// line in the same key=value form the daemon logs — the artifact CI uploads
// to show what the shed ladder and quarantine validator actually did.
func writeDecisionLog(path string, decisions []rpc.AdmissionDecision) error {
	var b strings.Builder
	for _, d := range decisions {
		fmt.Fprintf(&b, "round=%d action=%s tenant=%s key=%s detail=%q\n",
			d.Round, d.Action, d.Tenant, d.Key, d.Detail)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// runStandalone is the single-process mode: the lease plane alone, leasing
// by least attained service.
func runStandalone(listen string, jobs int, round, steps float64, telemetry obs.Options) {
	sched := rpc.NewScheduler(round)
	plane, obsSrv, traceFile, err := telemetry.Build()
	if err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
	sched.SetObs(plane)
	if obsSrv != nil {
		obsSrv.AddStatus("leases", sched.StatusText)
		defer obsSrv.Close()
		log.Printf("gavel-sched: telemetry on %s", obsSrv.Addr())
	}
	if traceFile != nil {
		defer traceFile.Close()
	}
	addr, err := sched.Serve(listen)
	if err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
	defer sched.Close()
	log.Printf("gavel-sched: standalone mode, protocol v%d, serving on %s, %d jobs, %gs rounds",
		rpc.ProtocolVersion, addr, jobs, round)

	zoo := workload.Zoo()
	for i := 0; i < jobs; i++ {
		cfg := zoo[(i*7)%len(zoo)]
		hint := map[string]float64{}
		for t, name := range workload.TypeNames {
			if workload.Fits(cfg, t) {
				hint[name] = workload.Throughput(cfg, t)
			}
		}
		sched.Submit(rpc.JobSpec{
			JobID:          i,
			Name:           cfg.Name(),
			TotalSteps:     steps,
			ThroughputHint: hint,
		})
		log.Printf("gavel-sched: submitted job %d (%s, %.0f steps)", i, cfg.Name(), steps)
	}

	for {
		done := 0
		for i := 0; i < jobs; i++ {
			if sched.JobDone(i) {
				done++
			}
		}
		fmt.Printf("gavel-sched: %d/%d jobs complete\n", done, jobs)
		if done == jobs {
			log.Printf("gavel-sched: batch complete")
			return
		}
		time.Sleep(time.Duration(round) * time.Second / 2)
	}
}
