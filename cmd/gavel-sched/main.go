// gavel-sched is the scheduler daemon for physical deployments: it serves
// the Gavel control plane (internal/rpc) on a TCP port, accepts a synthetic
// batch of jobs from the model zoo, and hands out round-based micro-task
// leases to gavel-worker processes until the batch completes.
//
// Usage:
//
//	gavel-sched -listen :8642 -jobs 8 -round 10
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"gavel/internal/rpc"
	"gavel/internal/workload"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:8642", "address to serve the control plane on")
		jobs   = flag.Int("jobs", 4, "number of synthetic jobs to run")
		round  = flag.Float64("round", 10, "round duration in seconds")
		steps  = flag.Float64("steps", 2000, "training steps per job")
	)
	flag.Parse()

	sched := rpc.NewScheduler(*round)
	addr, err := sched.Serve(*listen)
	if err != nil {
		log.Fatalf("gavel-sched: %v", err)
	}
	defer sched.Close()
	log.Printf("gavel-sched: serving on %s, %d jobs, %gs rounds", addr, *jobs, *round)

	zoo := workload.Zoo()
	for i := 0; i < *jobs; i++ {
		cfg := zoo[(i*7)%len(zoo)]
		hint := map[string]float64{}
		for t, name := range workload.TypeNames {
			if workload.Fits(cfg, t) {
				hint[name] = workload.Throughput(cfg, t)
			}
		}
		sched.Submit(rpc.JobSpec{
			JobID:          i,
			Name:           cfg.Name(),
			TotalSteps:     *steps,
			ThroughputHint: hint,
		})
		log.Printf("gavel-sched: submitted job %d (%s, %.0f steps)", i, cfg.Name(), *steps)
	}

	for {
		done := 0
		for i := 0; i < *jobs; i++ {
			if sched.JobDone(i) {
				done++
			}
		}
		fmt.Printf("gavel-sched: %d/%d jobs complete\n", done, *jobs)
		if done == *jobs {
			log.Printf("gavel-sched: batch complete")
			return
		}
		time.Sleep(time.Duration(*round) * time.Second / 2)
	}
}
