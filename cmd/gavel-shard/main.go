// gavel-shard is the shard daemon of the multi-process cluster service: it
// serves the coordinator <-> shard control plane (internal/rpc) on a TCP
// port and runs one partition of the cluster — its own solve context, warm
// LP bases, throughput cache, and round mechanism. Daemons start bare (OPA
// bundle-style) and receive their identity from the coordinator's Configure
// push, so the same binary serves any shard.
//
// Usage:
//
//	gavel-shard -listen 127.0.0.1:8650
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gavel/internal/rpc"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8650", "address to serve the shard control plane on")
	flag.Parse()

	srv := rpc.NewShardServer()
	addr, err := srv.Serve(*listen)
	if err != nil {
		log.Fatalf("gavel-shard: %v", err)
	}
	log.Printf("gavel-shard: protocol v%d, serving on %s, awaiting Configure", rpc.ProtocolVersion, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("gavel-shard: shutting down")
	srv.Close()
}
