// gavel-shard is the shard daemon of the multi-process cluster service: it
// serves the coordinator <-> shard control plane (internal/rpc) on a TCP
// port and runs one partition of the cluster — its own solve context, warm
// LP bases, throughput cache, and round mechanism. Daemons start bare (OPA
// bundle-style) and receive their identity from the coordinator's Configure
// push, so the same binary serves any shard.
//
// Usage:
//
//	gavel-shard -listen 127.0.0.1:8650
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gavel/internal/obs"
	"gavel/internal/rpc"
)

func main() {
	obsDefaults := obs.OptionsFromEnv()
	listen := flag.String("listen", "127.0.0.1:8650", "address to serve the shard control plane on")
	obsListen := flag.String("obs-listen", obsDefaults.Listen, "address to serve /metrics, /statusz, /debug/trace, and pprof on (default GAVEL_OBS_LISTEN; empty = off)")
	obsTrace := flag.String("obs-trace", obsDefaults.TracePath, "JSONL span-log path (default GAVEL_OBS_TRACE; empty = ring buffer only)")
	flag.Parse()

	telemetry := obsDefaults
	telemetry.Listen = *obsListen
	telemetry.TracePath = *obsTrace
	plane, obsSrv, traceFile, err := telemetry.Build()
	if err != nil {
		log.Fatalf("gavel-shard: %v", err)
	}
	if traceFile != nil {
		defer traceFile.Close()
	}

	srv := rpc.NewShardServer()
	srv.SetObs(plane)
	if obsSrv != nil {
		obsSrv.AddStatus("shard", srv.StatusText)
		defer obsSrv.Close()
		log.Printf("gavel-shard: telemetry on %s (/metrics /statusz /debug/trace /debug/pprof)", obsSrv.Addr())
	}
	addr, err := srv.Serve(*listen)
	if err != nil {
		log.Fatalf("gavel-shard: %v", err)
	}
	log.Printf("gavel-shard: protocol v%d, serving on %s, awaiting Configure", rpc.ProtocolVersion, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("gavel-shard: shutting down")
	srv.Close()
}
