// gavel-submit is the tenant-side client of the coordinator's submission
// plane. It streams jobs into a running gavel-sched (-submit-listen), honors
// backpressure (a CodeOverload refusal carries a retry-after hint in rounds,
// which the client sleeps out before retrying), and polls every submission to
// a terminal state — polling doubles as the liveness signal that keeps the
// tenant clear of the abandoned-client TTL.
//
// Two input forms:
//
//   - -client "tenant=flood,jobs=12,seed=7,lie=3,steps=0.01": a seeded
//     synthetic tenant (internal/chaos.ClientSpec) expanded into its
//     deterministic submission stream — what the chaos-smoke CI job uses for
//     its flooding and misreporting tenants.
//   - -submit "tenant=acme,key=job-7,name=resnet50,steps=5000,tput=120;80;30":
//     one explicit submission (rpc.ParseSubmitSpec).
//   - -withdraw "tenant=acme,key=job-7": withdraw a submission and exit.
//
// The final summary line is machine-greppable:
//
//	gavel-submit: tenant=flood summary submitted=12 done=9 rejected=3 withdrawn=0 backpressured=5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/rpc"
)

func main() {
	var (
		scheduler  = flag.String("scheduler", "127.0.0.1:8643", "coordinator submission-plane address (gavel-sched -submit-listen)")
		clientSpec = flag.String("client", "", "synthetic tenant spec, e.g. tenant=flood,jobs=12,seed=7,lie=3,steps=0.01")
		submitSpec = flag.String("submit", "", "one submission, e.g. tenant=acme,key=job-7,name=resnet50,steps=5000,tput=120;80;30")
		withdraw   = flag.String("withdraw", "", "withdraw a submission by tenant=...,key=... and exit")
		roundHint  = flag.Duration("round", time.Second, "what one round of a retry-after hint is worth in wall time")
		pollEvery  = flag.Duration("poll-every", time.Second, "poll interval while waiting for terminal states")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall deadline for the stream to reach terminal states")
		noWait     = flag.Bool("no-wait", false, "exit after submitting instead of polling to terminal states")
	)
	flag.Parse()

	modes := 0
	for _, s := range []string{*clientSpec, *submitSpec, *withdraw} {
		if s != "" {
			modes++
		}
	}
	if modes != 1 {
		log.Fatalf("gavel-submit: exactly one of -client, -submit, or -withdraw is required")
	}

	c, err := rpc.DialSubmit(*scheduler)
	if err != nil {
		log.Fatalf("gavel-submit: %v", err)
	}
	defer c.Close()

	if *withdraw != "" {
		args, err := rpc.ParseSubmitSpec(*withdraw)
		if err != nil {
			log.Fatalf("gavel-submit: %v", err)
		}
		rep, err := c.Withdraw(rpc.WithdrawArgs{Tenant: args.Tenant, Key: args.Key})
		if err != nil {
			log.Fatalf("gavel-submit: withdraw %s/%s: %v", args.Tenant, args.Key, err)
		}
		log.Printf("gavel-submit: withdrew %s/%s (state %s)", args.Tenant, args.Key, rep.State)
		return
	}

	var stream []rpc.SubmitArgs
	if *clientSpec != "" {
		cs, err := chaos.ParseClientSpec(*clientSpec)
		if err != nil {
			log.Fatalf("gavel-submit: %v", err)
		}
		stream = cs.Submissions()
		log.Printf("gavel-submit: tenant=%s expanding spec %q into %d submissions", cs.Tenant, cs.String(), len(stream))
	} else {
		args, err := rpc.ParseSubmitSpec(*submitSpec)
		if err != nil {
			log.Fatalf("gavel-submit: %v", err)
		}
		stream = []rpc.SubmitArgs{args}
	}
	tenant := stream[0].Tenant

	deadline := time.Now().Add(*timeout)
	backpressured := 0
	for _, a := range stream {
		for {
			rep, err := c.Submit(a)
			if err == nil {
				log.Printf("gavel-submit: %s/%s -> job %d (%s)", a.Tenant, a.Key, rep.JobID, rep.State)
				break
			}
			// Backpressure is ours to honor: sleep out the hint and retry the
			// same key — the server dedupes, so a refusal-then-accept cannot
			// double-submit.
			if ra := rpc.RetryAfter(err); ra > 0 {
				backpressured++
				log.Printf("gavel-submit: %s/%s refused (retry-after=%d rounds): %v", a.Tenant, a.Key, ra, err)
				if time.Now().After(deadline) {
					log.Fatalf("gavel-submit: gave up on %s/%s: still refused at deadline", a.Tenant, a.Key)
				}
				time.Sleep(time.Duration(ra) * *roundHint)
				continue
			}
			log.Fatalf("gavel-submit: submit %s/%s: %v", a.Tenant, a.Key, err)
		}
	}
	log.Printf("gavel-submit: tenant=%s streamed %d submissions (%d backpressure refusals honored)",
		tenant, len(stream), backpressured)
	if *noWait {
		return
	}

	// Poll every key until the whole stream is terminal. Each poll refreshes
	// the tenant's liveness clock server-side.
	counts := map[rpc.SubmissionState]int{}
	for {
		counts = map[rpc.SubmissionState]int{}
		pending := 0
		for _, a := range stream {
			rep, err := c.Poll(rpc.PollArgs{Tenant: a.Tenant, Key: a.Key})
			if err != nil {
				log.Fatalf("gavel-submit: poll %s/%s: %v", a.Tenant, a.Key, err)
			}
			counts[rep.State]++
			switch rep.State {
			case rpc.SubmissionQueued, rpc.SubmissionAdmitted:
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			log.Printf("gavel-submit: tenant=%s timed out with %d submissions still pending", tenant, pending)
			summarize(tenant, len(stream), counts, backpressured)
			os.Exit(1)
		}
		time.Sleep(*pollEvery)
	}
	summarize(tenant, len(stream), counts, backpressured)
}

func summarize(tenant string, n int, counts map[rpc.SubmissionState]int, backpressured int) {
	fmt.Printf("gavel-submit: tenant=%s summary submitted=%d done=%d rejected=%d withdrawn=%d backpressured=%d\n",
		tenant, n, counts[rpc.SubmissionDone], counts[rpc.SubmissionRejected],
		counts[rpc.SubmissionWithdrawn], backpressured)
}
