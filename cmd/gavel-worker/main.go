// gavel-worker is the worker daemon for physical deployments: it registers
// with gavel-sched, leases micro-tasks round by round, and runs a synthetic
// training loop through the GavelIterator analog (internal/iterator),
// checkpointing to a local file when its lease is not renewed — the §6
// deployment model with the GPU replaced by a calibrated busy-loop.
//
// Usage:
//
//	gavel-worker -scheduler 127.0.0.1:8642 -type v100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"gavel/internal/iterator"
	"gavel/internal/obs"
	"gavel/internal/rpc"
)

func main() {
	obsDefaults := obs.OptionsFromEnv()
	var (
		schedAddr = flag.String("scheduler", "127.0.0.1:8642", "scheduler control-plane address")
		accType   = flag.String("type", "v100", "accelerator type this worker exposes (v100|p100|k80)")
		server    = flag.String("server", "srv0", "physical server id (consolidation unit)")
		ckptDir   = flag.String("ckpt", os.TempDir(), "checkpoint directory")
		stepsSec  = flag.Float64("steps-per-sec", 50, "synthetic training speed on this device")
		obsListen = flag.String("obs-listen", obsDefaults.Listen, "address to serve /metrics, /statusz, and pprof on (default GAVEL_OBS_LISTEN; empty = off)")
		obsTrace  = flag.String("obs-trace", obsDefaults.TracePath, "JSONL span-log path (default GAVEL_OBS_TRACE; empty = ring buffer only)")
	)
	flag.Parse()

	telemetry := obsDefaults
	telemetry.Listen = *obsListen
	telemetry.TracePath = *obsTrace
	plane, obsSrv, traceFile, err := telemetry.Build()
	if err != nil {
		log.Fatalf("gavel-worker: %v", err)
	}
	if obsSrv != nil {
		defer obsSrv.Close()
		log.Printf("gavel-worker: telemetry on %s", obsSrv.Addr())
	}
	if traceFile != nil {
		defer traceFile.Close()
	}
	reg := plane.Registry()
	leasesRun := reg.CounterVec("gavel_worker_leases_total", "Micro-task leases by outcome.", "outcome")
	ckpts := reg.Counter("gavel_worker_checkpoints_total", "Checkpoints written when a lease was not renewed.")
	for _, o := range []string{"run", "empty", "error"} {
		leasesRun.With(o)
	}

	client, err := rpc.Dial(*schedAddr, rpc.RegisterArgs{
		AcceleratorType: *accType,
		Server:          *server,
	})
	if err != nil {
		log.Fatalf("gavel-worker: %v", err)
	}
	defer client.Close()
	log.Printf("gavel-worker: protocol v%d, registered as worker %d (%s), %s rounds",
		rpc.ProtocolVersion, client.WorkerID, *accType, client.Round)

	idle := 0
	for {
		lease, err := client.Lease()
		if err != nil {
			log.Fatalf("gavel-worker: lease: %v", err)
		}
		if lease.Empty {
			leasesRun.With("empty").Inc()
			idle++
			if idle > 20 {
				log.Printf("gavel-worker: no work for %d rounds, exiting", idle)
				return
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		idle = 0
		jobID := lease.JobIDs[0]
		if err := runLease(client, lease, jobID, *ckptDir, *stepsSec, ckpts); err != nil {
			leasesRun.With("error").Inc()
			log.Printf("gavel-worker: job %d: %v", jobID, err)
		} else {
			leasesRun.With("run").Inc()
		}
	}
}

// runLease executes one micro-task: a synthetic training loop under the
// iterator, bounded by a scaled-down wall-clock round.
func runLease(client *rpc.Client, lease *rpc.Lease, jobID int, ckptDir string, stepsPerSec float64, ckpts *obs.Counter) error {
	ckptPath := fmt.Sprintf("%s/gavel-job-%d.ckpt", ckptDir, jobID)
	ck := iterator.Funcs{
		Load: func() (int64, error) {
			b, err := os.ReadFile(ckptPath)
			if errors.Is(err, os.ErrNotExist) {
				return 0, nil
			}
			if err != nil {
				return 0, err
			}
			return strconv.ParseInt(strings.TrimSpace(string(b)), 10, 64)
		},
		Save: func(step int64) error {
			return os.WriteFile(ckptPath, []byte(strconv.FormatInt(step, 10)), 0o644)
		},
	}
	// Cap each micro-task at a short wall-clock slice so the demo loop
	// stays responsive regardless of the configured round length.
	budget := time.Duration(lease.RoundSeconds * float64(time.Second))
	if budget > 3*time.Second {
		budget = 3 * time.Second
	}
	deadline := time.Now().Add(budget)
	stepDur := time.Duration(float64(time.Second) / stepsPerSec)
	fake := &leaseAdapter{client: client, jobID: jobID, deadline: deadline, renewed: lease.Renewed}
	it := iterator.New(ck, fake, func(step int64) error {
		time.Sleep(stepDur) // the "GPU"
		return nil
	})
	err := it.RunRound(context.Background())
	if errors.Is(err, iterator.ErrLeaseExpired) {
		ckpts.Inc()
		log.Printf("gavel-worker: job %d checkpointed at step %d", jobID, it.CurrentStep())
		return nil
	}
	return err
}

// leaseAdapter bridges the rpc client to the iterator's Lease interface.
type leaseAdapter struct {
	client   *rpc.Client
	jobID    int
	deadline time.Time
	renewed  bool
}

func (l *leaseAdapter) Renewed() bool { return l.renewed }

func (l *leaseAdapter) RoundRemaining() time.Duration {
	return time.Until(l.deadline)
}

func (l *leaseAdapter) ReportThroughput(t float64) error {
	return l.client.Report(l.jobID, t)
}
