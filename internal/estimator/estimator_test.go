package estimator

import (
	"math"
	"testing"

	"gavel/internal/workload"
)

func zooJob(id int, family workload.ModelFamily, batch int) *workload.Job {
	for _, c := range workload.Zoo() {
		if c.Family == family && c.BatchSize == batch {
			return &workload.Job{ID: id, Config: c, ScaleFactor: 1, Weight: 1, TotalSteps: 1000}
		}
	}
	panic("config not in zoo")
}

func TestFingerprintFindsExactReference(t *testing.T) {
	// When the new job IS one of the references, matrix completion over
	// its profiled row must match it (or an identically-behaving config).
	e := New(workload.Zoo(), workload.P100, 8, 1)
	j := zooJob(0, workload.A3C, 4)
	ref := e.ClosestReference(j)
	// A3C has a unique colocation profile (tiny compute footprint); the
	// closest reference must behave like it: similar retained fraction
	// when colocated with itself.
	got := retained(ref, j.Config, workload.P100)
	want := retained(j.Config, j.Config, workload.P100)
	if math.Abs(got-want) > 0.1 {
		t.Errorf("fingerprint matched %s (retained %.2f), want behaviour like A3C (%.2f)", ref.Name(), got, want)
	}
}

func TestEstimatesWithinReason(t *testing.T) {
	e := New(workload.Zoo(), workload.P100, 6, 2)
	a := zooJob(1, workload.ResNet18, 16)
	b := zooJob(2, workload.A3C, 4)
	ta, tb, ok := e.Colocated(a, b, workload.P100)
	if !ok {
		t.Fatal("feasible pair reported infeasible")
	}
	trueTa, trueTb, _ := workload.Colocated(a.Config, b.Config, workload.P100)
	if relErr(ta, trueTa) > 0.5 || relErr(tb, trueTb) > 0.5 {
		t.Errorf("estimates (%.2f, %.2f) far from truth (%.2f, %.2f)", ta, tb, trueTa, trueTb)
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / b
}

func TestObserveOverridesEstimate(t *testing.T) {
	e := New(workload.Zoo(), workload.P100, 4, 3)
	a := zooJob(1, workload.LSTM, 5)
	b := zooJob(2, workload.Recoder, 512)
	// Feed a deliberately odd measurement and check it is returned.
	e.Observe(a, b, workload.V100, 1.23, 4.56)
	ta, tb, ok := e.Colocated(a, b, workload.V100)
	if !ok {
		t.Fatal("pair infeasible")
	}
	if math.Abs(ta-1.23) > 1e-9 || math.Abs(tb-4.56) > 1e-9 {
		t.Errorf("measured values not returned: got (%.2f, %.2f)", ta, tb)
	}
}

func TestInfeasiblePairsStayInfeasible(t *testing.T) {
	e := New(workload.Zoo(), workload.P100, 4, 4)
	// Two memory-heavy configs on the K80.
	a := zooJob(1, workload.CycleGAN, 1)
	b := zooJob(2, workload.Transformer, 256)
	if _, _, ok := e.Colocated(a, b, workload.K80); ok {
		t.Error("memory-infeasible pair reported feasible")
	}
}

func TestIsolatedPassthrough(t *testing.T) {
	e := New(workload.Zoo(), workload.P100, 4, 5)
	j := zooJob(1, workload.ResNet50, 64)
	for typ := 0; typ < workload.NumTypes; typ++ {
		want := 0.0
		if workload.Fits(j.Config, typ) {
			want = workload.ScaledThroughput(j.Config, typ, 1, true)
		}
		if got := e.Isolated(j, typ); got != want {
			t.Errorf("type %d: isolated = %v, want %v", typ, got, want)
		}
	}
}

// Aggregate accuracy: across many random pairs from the zoo, median
// relative estimation error should be small — the Figure 14 prerequisite
// ("accurately enough to observe a very small decrease in average JCT").
func TestAggregateEstimationError(t *testing.T) {
	e := New(workload.Zoo(), workload.P100, 6, 7)
	zoo := workload.Zoo()
	var errs []float64
	id := 100
	for i := 0; i < len(zoo); i += 3 {
		for k := 1; k < len(zoo); k += 5 {
			a := &workload.Job{ID: id, Config: zoo[i], ScaleFactor: 1}
			id++
			b := &workload.Job{ID: id, Config: zoo[(i+k)%len(zoo)], ScaleFactor: 1}
			id++
			ta, _, ok := e.Colocated(a, b, workload.P100)
			trueTa, _, okTrue := workload.Colocated(a.Config, b.Config, workload.P100)
			if !ok || !okTrue {
				continue
			}
			errs = append(errs, relErr(ta, trueTa))
		}
	}
	if len(errs) == 0 {
		t.Fatal("no feasible pairs sampled")
	}
	// Median error.
	med := median(errs)
	if med > 0.25 {
		t.Errorf("median relative estimation error %.2f, want <= 0.25", med)
	}
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
