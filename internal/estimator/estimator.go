// Package estimator implements Gavel's throughput estimator (§3.3, §6,
// Figure 7): colocated throughputs for new jobs are predicted by profiling
// the job against a few reference jobs, completing the sparse measurement
// matrix with low-rank matrix completion (Quasar-style), and copying the
// space-sharing profile of the closest pre-profiled reference job. Actual
// measurements observed by the scheduler as pairs run are fed back and
// override estimates.
package estimator

import (
	"math"
	"math/rand"
	"sync"

	"gavel/internal/linalg"
	"gavel/internal/matcomp"
	"gavel/internal/workload"
)

// Estimator predicts colocated throughputs. It implements the simulator's
// ThroughputProvider interface: isolated throughputs are passed through
// from the oracle (they are measured on the fly as jobs run on each type
// over rounds, §3.3), while colocated throughputs are estimated.
type Estimator struct {
	mu sync.Mutex

	refs []workload.Config // reference job set (profiled offline)
	// refProfile[r][p] = normalized retained throughput of reference r
	// colocated with reference p on the profiling type.
	refProfile *linalg.Matrix
	profType   int

	// per new-job state, keyed by job ID
	jobs map[int]*jobEstimate

	profilesPerJob int
	rng            *rand.Rand
}

type jobEstimate struct {
	closestRef int
	// measured overrides: (partner configIndex, type) -> retained fraction
	measured map[[2]int]float64
}

// New builds an estimator with the given reference set (typically the full
// model zoo) profiled offline on the profiling type (the paper profiles on
// a P100; Figure 15). profilesPerJob is how many reference colocations each
// new job is measured against before matrix completion fills in the rest.
func New(refs []workload.Config, profType, profilesPerJob int, seed int64) *Estimator {
	e := &Estimator{
		refs:           refs,
		profType:       profType,
		jobs:           map[int]*jobEstimate{},
		profilesPerJob: profilesPerJob,
		rng:            rand.New(rand.NewSource(seed)),
	}
	n := len(refs)
	e.refProfile = linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			e.refProfile.Set(i, j, retained(refs[i], refs[j], profType))
		}
	}
	return e
}

// retained is the fraction of isolated throughput config a keeps when
// colocated with b on type t (0 when the pair cannot colocate).
func retained(a, b workload.Config, t int) float64 {
	ta, _, ok := workload.Colocated(a, b, t)
	if !ok {
		return 0
	}
	iso := workload.Throughput(a, t)
	if iso <= 0 {
		return 0
	}
	return ta / iso
}

// fingerprint profiles a new job against profilesPerJob random references,
// completes the augmented matrix, and returns the closest reference row.
func (e *Estimator) fingerprint(cfg workload.Config) int {
	n := len(e.refs)
	obs := linalg.NewMatrix(n+1, n)
	observed := make([][]bool, n+1)
	for i := 0; i < n; i++ {
		observed[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			obs.Set(i, j, e.refProfile.At(i, j))
			observed[i][j] = true
		}
	}
	observed[n] = make([]bool, n)
	k := e.profilesPerJob
	if k > n {
		k = n
	}
	for _, p := range e.rng.Perm(n)[:k] {
		obs.Set(n, p, retained(cfg, e.refs[p], e.profType))
		observed[n][p] = true
	}
	completed, err := matcomp.Complete(obs, observed, matcomp.Options{Rank: 4, Seed: 17})
	row := make([]float64, n)
	if err == nil {
		copy(row, completed.Row(n))
	} else {
		// Degenerate profiling: fall back to the observed entries only.
		copy(row, obs.Row(n))
	}
	best, bestDist := 0, math.Inf(1)
	for r := 0; r < n; r++ {
		var d float64
		for j := 0; j < n; j++ {
			diff := row[j] - e.refProfile.At(r, j)
			d += diff * diff
		}
		if d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}

func (e *Estimator) stateFor(j *workload.Job) *jobEstimate {
	st := e.jobs[j.ID]
	if st == nil {
		st = &jobEstimate{
			closestRef: e.fingerprint(j.Config),
			measured:   map[[2]int]float64{},
		}
		e.jobs[j.ID] = st
	}
	return st
}

// Isolated implements simulator.ThroughputProvider: measured on the fly,
// so pass the oracle value through.
func (e *Estimator) Isolated(j *workload.Job, t int) float64 {
	if !workload.Fits(j.Config, t) {
		return 0
	}
	return workload.ScaledThroughput(j.Config, t, j.ScaleFactor, true)
}

// Colocated implements simulator.ThroughputProvider: returns measured
// values when available, otherwise the closest reference job's retained
// fraction applied to each job's isolated throughput.
func (e *Estimator) Colocated(a, b *workload.Job, t int) (float64, float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Memory feasibility is known from job metadata without profiling.
	if workload.MemFraction(a.Config, t)+workload.MemFraction(b.Config, t) > 1 {
		return 0, 0, false
	}
	ta := e.estimateOne(a, b, t)
	tb := e.estimateOne(b, a, t)
	return ta, tb, true
}

func (e *Estimator) estimateOne(j, partner *workload.Job, t int) float64 {
	st := e.stateFor(j)
	key := [2]int{partner.Config.Index, t}
	if f, ok := st.measured[key]; ok {
		return f * e.Isolated(j, t)
	}
	ref := e.refs[st.closestRef]
	frac := retained(ref, partner.Config, e.profType)
	return frac * e.Isolated(j, t)
}

// Observe implements simulator.ThroughputProvider: records a measurement
// that overrides the estimate from now on.
func (e *Estimator) Observe(a, b *workload.Job, t int, ta, tb float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	isoA, isoB := e.Isolated(a, t), e.Isolated(b, t)
	if isoA > 0 {
		e.stateFor(a).measured[[2]int{b.Config.Index, t}] = ta / isoA
	}
	if isoB > 0 {
		e.stateFor(b).measured[[2]int{a.Config.Index, t}] = tb / isoB
	}
}

// ClosestReference exposes the fingerprint match for tests.
func (e *Estimator) ClosestReference(j *workload.Job) workload.Config {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.refs[e.stateFor(j).closestRef]
}
