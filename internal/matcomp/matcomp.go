// Package matcomp implements low-rank matrix completion via regularized
// alternating least squares (ALS). Gavel's throughput estimator (§3.3, §6,
// Figure 7) profiles a new job against a few reference jobs, completes the
// sparse measurement matrix, and matches the completed row ("fingerprint")
// to the closest pre-profiled reference job.
package matcomp

import (
	"fmt"
	"math"
	"math/rand"

	"gavel/internal/linalg"
)

// Options configures a completion run. Zero values select defaults.
type Options struct {
	Rank       int     // latent dimension (default 4)
	Lambda     float64 // L2 regularization (default 0.05)
	Iters      int     // ALS sweeps (default 50)
	Seed       int64   // factor initialization seed
	MinObserve int     // minimum observed entries required (default 1)
}

func (o Options) withDefaults() Options {
	if o.Rank <= 0 {
		o.Rank = 4
	}
	if o.Lambda <= 0 {
		o.Lambda = 0.05
	}
	if o.Iters <= 0 {
		o.Iters = 50
	}
	if o.MinObserve <= 0 {
		o.MinObserve = 1
	}
	return o
}

// Complete fills in the missing entries of obs. observed[i][j] marks which
// entries of obs are measurements; unobserved entries of obs are ignored.
// The returned matrix has every entry populated with the low-rank model's
// prediction (observed entries are returned as-measured).
func Complete(obs *linalg.Matrix, observed [][]bool, opt Options) (*linalg.Matrix, error) {
	opt = opt.withDefaults()
	nr, nc := obs.Rows, obs.Cols
	if len(observed) != nr {
		return nil, fmt.Errorf("matcomp: observed mask has %d rows, want %d", len(observed), nr)
	}
	count := 0
	for i, row := range observed {
		if len(row) != nc {
			return nil, fmt.Errorf("matcomp: observed mask row %d has %d cols, want %d", i, len(row), nc)
		}
		for _, b := range row {
			if b {
				count++
			}
		}
	}
	if count < opt.MinObserve {
		return nil, fmt.Errorf("matcomp: %d observed entries, need at least %d", count, opt.MinObserve)
	}

	k := opt.Rank
	if k > nr {
		k = nr
	}
	if k > nc {
		k = nc
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Factor matrices U (nr x k) and V (nc x k); prediction = U V^T.
	U := linalg.NewMatrix(nr, k)
	V := linalg.NewMatrix(nc, k)
	// Initialize near the mean observed value so early iterations predict
	// sensible magnitudes.
	mean := 0.0
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if observed[i][j] {
				mean += obs.At(i, j)
			}
		}
	}
	mean /= float64(count)
	scale := math.Sqrt(math.Abs(mean)/float64(k)) + 0.1
	for i := range U.Data {
		U.Data[i] = scale * (0.5 + rng.Float64())
	}
	for i := range V.Data {
		V.Data[i] = scale * (0.5 + rng.Float64())
	}

	// Alternating least squares: fix V, solve ridge regression per row of U;
	// then fix U, solve per row of V.
	solveSide := func(target *linalg.Matrix, other *linalg.Matrix, rowObserved func(i int) []int, val func(i, j int) float64) error {
		for i := 0; i < target.Rows; i++ {
			idx := rowObserved(i)
			if len(idx) == 0 {
				continue
			}
			// A = sum_j v_j v_j^T + lambda I ; b = sum_j val * v_j
			A := linalg.NewMatrix(k, k)
			b := make([]float64, k)
			for _, j := range idx {
				vj := other.Row(j)
				y := val(i, j)
				for a := 0; a < k; a++ {
					b[a] += y * vj[a]
					for c := 0; c < k; c++ {
						A.Set(a, c, A.At(a, c)+vj[a]*vj[c])
					}
				}
			}
			for a := 0; a < k; a++ {
				A.Set(a, a, A.At(a, a)+opt.Lambda)
			}
			x, err := linalg.SolveLinear(A, b)
			if err != nil {
				return fmt.Errorf("matcomp: ALS row %d: %w", i, err)
			}
			copy(target.Row(i), x)
		}
		return nil
	}

	rowIdx := make([][]int, nr)
	colIdx := make([][]int, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if observed[i][j] {
				rowIdx[i] = append(rowIdx[i], j)
				colIdx[j] = append(colIdx[j], i)
			}
		}
	}

	for it := 0; it < opt.Iters; it++ {
		if err := solveSide(U, V, func(i int) []int { return rowIdx[i] }, func(i, j int) float64 { return obs.At(i, j) }); err != nil {
			return nil, err
		}
		if err := solveSide(V, U, func(j int) []int { return colIdx[j] }, func(j, i int) float64 { return obs.At(i, j) }); err != nil {
			return nil, err
		}
	}

	out := linalg.NewMatrix(nr, nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			if observed[i][j] {
				out.Set(i, j, obs.At(i, j))
			} else {
				v := linalg.Dot(U.Row(i), V.Row(j))
				if v < 0 {
					v = 0 // throughputs are non-negative
				}
				out.Set(i, j, v)
			}
		}
	}
	return out, nil
}

// RMSE returns the root-mean-squared error between pred and truth over the
// entries selected by mask (typically the *unobserved* entries, to measure
// generalization).
func RMSE(pred, truth *linalg.Matrix, mask [][]bool) float64 {
	var sum float64
	n := 0
	for i := 0; i < pred.Rows; i++ {
		for j := 0; j < pred.Cols; j++ {
			if mask[i][j] {
				d := pred.At(i, j) - truth.At(i, j)
				sum += d * d
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}
