package matcomp

import (
	"math/rand"
	"testing"

	"gavel/internal/linalg"
)

// lowRankMatrix builds truth = U V^T with the given rank plus optional noise.
func lowRankMatrix(rng *rand.Rand, rows, cols, rank int, noise float64) *linalg.Matrix {
	u := linalg.NewMatrix(rows, rank)
	v := linalg.NewMatrix(cols, rank)
	for i := range u.Data {
		u.Data[i] = 0.5 + rng.Float64()
	}
	for i := range v.Data {
		v.Data[i] = 0.5 + rng.Float64()
	}
	m := u.Mul(v.T())
	for i := range m.Data {
		m.Data[i] += noise * rng.NormFloat64()
	}
	return m
}

func TestCompleteRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	truth := lowRankMatrix(rng, 12, 8, 2, 0)
	obs := truth.Clone()
	observed := make([][]bool, 12)
	hidden := make([][]bool, 12)
	for i := range observed {
		observed[i] = make([]bool, 8)
		hidden[i] = make([]bool, 8)
		for j := range observed[i] {
			if rng.Float64() < 0.6 {
				observed[i][j] = true
			} else {
				hidden[i][j] = true
				obs.Set(i, j, 0)
			}
		}
	}
	pred, err := Complete(obs, observed, Options{Rank: 2, Seed: 1, Iters: 80})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	// Entries average ~2.0; ALS with random init recovers held-out entries
	// to ~15% relative error on matrices this small, which is enough for
	// the estimator's nearest-reference matching. Guard against regression
	// past 20%.
	if rmse := RMSE(pred, truth, hidden); rmse > 0.4 {
		t.Fatalf("held-out RMSE = %v, want < 0.4 (~20%% relative)", rmse)
	}
}

func TestCompletePreservesObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := lowRankMatrix(rng, 6, 6, 2, 0)
	observed := make([][]bool, 6)
	for i := range observed {
		observed[i] = make([]bool, 6)
		observed[i][i] = true
	}
	pred, err := Complete(truth, observed, Options{Rank: 2})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	for i := 0; i < 6; i++ {
		if pred.At(i, i) != truth.At(i, i) {
			t.Fatalf("observed entry (%d,%d) changed: %v != %v", i, i, pred.At(i, i), truth.At(i, i))
		}
	}
}

func TestCompleteNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	truth := lowRankMatrix(rng, 10, 6, 3, 0.1)
	observed := make([][]bool, 10)
	for i := range observed {
		observed[i] = make([]bool, 6)
		for j := range observed[i] {
			observed[i][j] = rng.Float64() < 0.4
		}
	}
	pred, err := Complete(truth, observed, Options{Rank: 3, Seed: 2})
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	for _, v := range pred.Data {
		if v < 0 {
			t.Fatalf("negative predicted throughput %v", v)
		}
	}
}

func TestCompleteErrors(t *testing.T) {
	m := linalg.NewMatrix(2, 2)
	if _, err := Complete(m, [][]bool{{false, false}}, Options{}); err == nil {
		t.Fatal("want mask-shape error")
	}
	mask := [][]bool{{false, false}, {false, false}}
	if _, err := Complete(m, mask, Options{}); err == nil {
		t.Fatal("want min-observations error")
	}
}
