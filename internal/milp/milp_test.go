package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// 0/1 knapsack: values {60,100,120}, weights {10,20,30}, cap 50 -> 220.
	p := NewProblem(lp.Maximize)
	vals := []float64{60, 100, 120}
	wts := []float64{10, 20, 30}
	vars := make([]int, 3)
	terms := make([]lp.Term, 3)
	for i := range vals {
		vars[i] = p.AddBinaryVar(vals[i], "")
		terms[i] = lp.Term{Var: vars[i], Coeff: wts[i]}
	}
	p.AddConstraint(terms, lp.LE, 50)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.Optimal || math.Abs(res.Objective-220) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 220", res.Status, res.Objective)
	}
	if res.X[vars[0]] > 0.5 {
		t.Fatalf("item 0 should be excluded: %v", res.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2z + x s.t. x <= 1.5, z binary, x + z <= 2 -> z=1, x=1 -> 3.
	p := NewProblem(lp.Maximize)
	z := p.AddBinaryVar(2, "z")
	x := p.AddVar(1, "x")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}}, lp.LE, 1.5)
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: z, Coeff: 1}}, lp.LE, 2)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(res.Objective-3) > 1e-6 {
		t.Fatalf("obj = %v, want 3", res.Objective)
	}
	if math.Abs(res.X[z]-1) > 1e-6 {
		t.Fatalf("z = %v, want 1", res.X[z])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	p := NewProblem(lp.Maximize)
	z := p.AddBinaryVar(1, "z")
	p.AddConstraint([]lp.Term{{Var: z, Coeff: 1}}, lp.GE, 2)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

// Property: branch & bound matches brute force on random small knapsacks.
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		vals := make([]float64, n)
		wts := make([]float64, n)
		for i := 0; i < n; i++ {
			vals[i] = 1 + rng.Float64()*9
			wts[i] = 1 + rng.Float64()*9
		}
		capacity := rng.Float64() * 5 * float64(n)

		p := NewProblem(lp.Maximize)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			v := p.AddBinaryVar(vals[i], "")
			terms[i] = lp.Term{Var: v, Coeff: wts[i]}
		}
		p.AddConstraint(terms, lp.LE, capacity)
		res, err := p.Solve()
		if err != nil || res.Status != lp.Optimal {
			return false
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += wts[i]
					v += vals[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		return math.Abs(res.Objective-best) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCap(t *testing.T) {
	p := NewProblem(lp.Maximize)
	p.MaxNodes = 1
	terms := make([]lp.Term, 0, 6)
	for i := 0; i < 6; i++ {
		v := p.AddBinaryVar(1+0.1*float64(i), "")
		terms = append(terms, lp.Term{Var: v, Coeff: 1})
	}
	p.AddConstraint(terms, lp.LE, 3)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// With a single node we either find nothing (Infeasible reported) or a
	// capped incumbent; both are acceptable, but never a panic.
	if res.Status == lp.Optimal && res.Nodes > 1 {
		t.Fatalf("node cap ignored: %d nodes", res.Nodes)
	}
}
