// Package milp implements a small mixed-integer linear-program solver:
// branch and bound on binary variables over the internal/lp simplex solver.
// Gavel needs exactly one MILP — the bottleneck-job identification step of
// the water-filling procedure for max-min and hierarchical fairness policies
// (Appendix A.1 of the paper) — so only binary integrality is supported.
package milp

import (
	"fmt"
	"math"

	"gavel/internal/lp"
)

// Problem is a mixed-integer LP: continuous non-negative variables plus
// binary variables restricted to {0, 1}.
type Problem struct {
	sense  lp.Sense
	obj    []float64
	names  []string
	binary []bool
	cons   []con
	// MaxNodes caps the branch-and-bound tree; 0 means DefaultMaxNodes.
	MaxNodes int
}

type con struct {
	terms []lp.Term
	op    lp.Op
	rhs   float64
}

// DefaultMaxNodes bounds the search when MaxNodes is unset.
const DefaultMaxNodes = 20000

// NewProblem returns an empty MILP with the given objective sense.
func NewProblem(sense lp.Sense) *Problem {
	return &Problem{sense: sense}
}

// AddVar adds a continuous non-negative variable.
func (p *Problem) AddVar(objCoeff float64, name string) int {
	p.obj = append(p.obj, objCoeff)
	p.names = append(p.names, name)
	p.binary = append(p.binary, false)
	return len(p.obj) - 1
}

// AddBinaryVar adds a variable restricted to {0, 1}.
func (p *Problem) AddBinaryVar(objCoeff float64, name string) int {
	v := p.AddVar(objCoeff, name)
	p.binary[v] = true
	return v
}

// AddConstraint adds sum(terms) op rhs.
func (p *Problem) AddConstraint(terms []lp.Term, op lp.Op, rhs float64) {
	c := con{terms: make([]lp.Term, len(terms)), op: op, rhs: rhs}
	copy(c.terms, terms)
	p.cons = append(p.cons, c)
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    lp.Status
	X         []float64
	Objective float64
	Nodes     int
}

const intTol = 1e-6

// Solve runs depth-first branch and bound and returns the best integral
// solution found. Status is Optimal when the tree was fully explored,
// IterationLimit when the node cap was hit but an incumbent exists,
// Infeasible when no integral solution exists.
func (p *Problem) Solve() (*Result, error) {
	maxNodes := p.MaxNodes
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}

	type node struct {
		fixed map[int]float64 // binary var -> 0 or 1
	}
	stack := []node{{fixed: map[int]float64{}}}

	var best *lp.Result
	nodes := 0
	capped := false

	better := func(obj float64) bool {
		if best == nil {
			return true
		}
		if p.sense == lp.Maximize {
			return obj > best.Objective+1e-9
		}
		return obj < best.Objective-1e-9
	}

	for len(stack) > 0 {
		if nodes >= maxNodes {
			capped = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++

		relax := p.buildRelaxation(nd.fixed)
		res, err := relax.Solve()
		if err != nil {
			return nil, fmt.Errorf("milp: relaxation: %w", err)
		}
		if res.Status != lp.Optimal {
			continue // infeasible or unbounded branch: prune
		}
		if best != nil && !better(res.Objective) {
			continue // bound prune
		}
		// Find most fractional binary.
		branch := -1
		worst := intTol
		for j, isBin := range p.binary {
			if !isBin {
				continue
			}
			if _, ok := nd.fixed[j]; ok {
				continue
			}
			f := math.Abs(res.X[j] - math.Round(res.X[j]))
			if f > worst {
				worst, branch = f, j
			}
		}
		if branch == -1 {
			// Integral (within tolerance): candidate incumbent.
			if better(res.Objective) {
				cp := *res
				cp.X = append([]float64(nil), res.X...)
				for j, isBin := range p.binary {
					if isBin {
						cp.X[j] = math.Round(cp.X[j])
					}
				}
				best = &cp
			}
			continue
		}
		// Depth-first: explore the rounding of the relaxation first.
		first, second := 1.0, 0.0
		if res.X[branch] < 0.5 {
			first, second = 0.0, 1.0
		}
		f1 := cloneFixed(nd.fixed)
		f1[branch] = second
		f2 := cloneFixed(nd.fixed)
		f2[branch] = first
		stack = append(stack, node{fixed: f1}, node{fixed: f2})
	}

	if best == nil {
		return &Result{Status: lp.Infeasible, Nodes: nodes}, nil
	}
	status := lp.Optimal
	if capped {
		status = lp.IterationLimit
	}
	return &Result{Status: status, X: best.X, Objective: best.Objective, Nodes: nodes}, nil
}

func cloneFixed(m map[int]float64) map[int]float64 {
	c := make(map[int]float64, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// buildRelaxation constructs the LP relaxation with binaries bounded in
// [0, 1] and branched binaries fixed by equality constraints.
func (p *Problem) buildRelaxation(fixed map[int]float64) *lp.Problem {
	rp := lp.NewProblem(p.sense)
	for j, c := range p.obj {
		rp.AddVar(c, p.names[j])
	}
	for _, c := range p.cons {
		rp.AddConstraint(c.terms, c.op, c.rhs)
	}
	for j, isBin := range p.binary {
		if !isBin {
			continue
		}
		if v, ok := fixed[j]; ok {
			rp.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.EQ, v)
		} else {
			rp.AddConstraint([]lp.Term{{Var: j, Coeff: 1}}, lp.LE, 1)
		}
	}
	return rp
}
