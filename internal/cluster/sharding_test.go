package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"gavel/internal/policy"
)

// testSpec builds a uniform 3-type cluster with n devices per type.
func testSpec(n int) Spec {
	return Spec{Types: []AcceleratorType{
		{Name: "v100", Count: n, PricePerHour: PriceV100, PerServer: 4},
		{Name: "p100", Count: n, PricePerHour: PriceP100, PerServer: 4},
		{Name: "k80", Count: n, PricePerHour: PriceK80, PerServer: 4},
	}}
}

// testTput gives job id a strict best type (id mod 3) so the refined max-min
// optimum is unique: with capacity slack every job runs full-time on its
// best type, which is what makes the sharded and monolithic solves land on
// the same allocation.
func testTput(id int) []float64 {
	t := make([]float64, 3)
	for j := range t {
		t[j] = 1 + 0.1*float64(j)
	}
	t[id%3] = 4 + 0.01*float64(id%7)
	return t
}

// basicInfo is the simplest JobInfoFn: unit weight, steady remaining work.
func basicInfo(id int) policy.JobInfo {
	return policy.JobInfo{
		Weight: 1 + 0.01*float64(id), Priority: 1,
		RemainingSteps: 1e6, TotalSteps: 2e6, Elapsed: 3600, ArrivalSeq: id,
	}
}

func newTestCoordinator(t *testing.T, k, devicesPerType int, route RoutePolicy) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(CoordinatorConfig{
		NumShards: k,
		Cluster:   testSpec(devicesPerType),
		Route:     route,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSplitWorkerCountsPartition(t *testing.T) {
	counts := []int{10, 7, 3}
	for _, k := range []int{1, 2, 3, 4, 5} {
		split := SplitWorkerCounts(counts, k)
		for j := range counts {
			sum := 0
			for _, row := range split {
				sum += row[j]
				if row[j] < 0 {
					t.Fatalf("k=%d: negative slice", k)
				}
			}
			if sum != counts[j] {
				t.Fatalf("k=%d type %d: slices sum to %d, want %d", k, j, sum, counts[j])
			}
		}
		// Slices differ by at most one device per type.
		for j := range counts {
			lo, hi := split[0][j], split[0][j]
			for _, row := range split {
				if row[j] < lo {
					lo = row[j]
				}
				if row[j] > hi {
					hi = row[j]
				}
			}
			if hi-lo > 1 {
				t.Fatalf("k=%d type %d: uneven split %v", k, j, split)
			}
		}
	}
}

// TestShardedMatchesMonolithicAllocation is the partition-respecting
// equivalence acceptance: on a scenario whose optimum is unique and
// separable (strict per-job best types, capacity slack in every shard, no
// cross-shard pairs — pairs cannot cross shards by construction), K=1 and
// K=4 must produce the same per-job allocation within 1e-6.
func TestShardedMatchesMonolithicAllocation(t *testing.T) {
	const jobs = 32
	pol := &policy.MaxMinFairness{}

	allocs := map[int]map[int][]float64{}
	for _, k := range []int{1, 4} {
		c := newTestCoordinator(t, k, 2*jobs, RouteHash)
		for id := 0; id < jobs; id++ {
			c.Admit(id, 1, testTput(id))
		}
		if err := c.AllocateAll(pol, basicInfo, false); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		allocs[k] = c.JobAllocations()
	}

	for id := 0; id < jobs; id++ {
		a1, a4 := allocs[1][id], allocs[4][id]
		if a1 == nil || a4 == nil {
			t.Fatalf("job %d missing from an allocation (K=1: %v, K=4: %v)", id, a1, a4)
		}
		for j := range a1 {
			if d := math.Abs(a1[j] - a4[j]); d > 1e-6 {
				t.Errorf("job %d type %d: K=1 gives %v, K=4 gives %v (diff %v)", id, j, a1[j], a4[j], d)
			}
		}
	}
}

// TestRebalanceMigrationsAreRemappedNotCold is the migration-accounting
// acceptance: jobs moved by a rebalance must warm-start both sides' next
// solves via the cross-shape remap — RemappedSolves grows, cold solves do
// not — including a destination shard that has never solved (it adopts the
// source's seeds).
func TestRebalanceMigrationsAreRemappedNotCold(t *testing.T) {
	c := newTestCoordinator(t, 2, 16, RouteHash)
	pol := &policy.MaxMinFairness{}
	// Even IDs only: hash routing piles everything onto shard 0, leaving
	// shard 1 empty (and its context seedless).
	for i := 0; i < 8; i++ {
		c.Admit(2*i, 1, testTput(2*i))
	}
	if err := c.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	if got := c.Shard(0).NumJobs(); got != 8 {
		t.Fatalf("expected all 8 jobs on shard 0, got %d", got)
	}

	before := c.Stats()
	coldBefore := make([]int, 2)
	for k, st := range before {
		coldBefore[k] = st.Solve.Solves - st.Solve.WarmHits - st.Solve.RemapHits
	}

	migs := c.Rebalance()
	if len(migs) == 0 {
		t.Fatal("rebalance moved nothing despite an 8-vs-0 imbalance")
	}
	if c.Migrations() != len(migs) || c.Rebalances() != 1 {
		t.Fatalf("migration accounting: %d/%d", c.Migrations(), c.Rebalances())
	}
	if got := c.Shard(0).NumJobs() - c.Shard(1).NumJobs(); got < -1 || got > 1 {
		t.Fatalf("rebalance left shards at %d vs %d jobs", c.Shard(0).NumJobs(), c.Shard(1).NumJobs())
	}
	for _, m := range migs {
		if c.ShardOf(m.Job) != m.To {
			t.Fatalf("job %d recorded at shard %d, registry says %d", m.Job, m.To, c.ShardOf(m.Job))
		}
	}

	if err := c.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	for k := range after {
		cold := after[k].Solve.Solves - after[k].Solve.WarmHits - after[k].Solve.RemapHits
		if cold != coldBefore[k] {
			t.Errorf("shard %d: migration forced %d cold solves", k, cold-coldBefore[k])
		}
		if after[k].Solve.RemapHits <= before[k].Solve.RemapHits {
			t.Errorf("shard %d: post-migration solve did not take the remapped path (%d -> %d)",
				k, before[k].Solve.RemapHits, after[k].Solve.RemapHits)
		}
	}
	if after[1].MigratedIn == 0 || after[0].MigratedOut == 0 {
		t.Errorf("per-shard migration counters not updated: %+v", after)
	}
}

// TestEmptyShardEdges exercises both empty-shard directions: a shard drained
// of every job must allocate (empty) without panicking and keep serving
// rounds, and a seedless shard receiving its first jobs must fall back to a
// cold solve without panicking.
func TestEmptyShardEdges(t *testing.T) {
	c := newTestCoordinator(t, 2, 8, RouteHash)
	pol := &policy.MaxMinFairness{}
	for i := 0; i < 4; i++ {
		c.Admit(2*i+1, 1, testTput(2*i+1)) // odd IDs: all on shard 1
	}
	if err := c.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	if c.Shard(0).NumJobs() != 0 {
		t.Fatal("shard 0 should be empty")
	}
	// Empty shard: allocation exists, assigns nothing, no panic.
	assigns, err := c.AssignRound(360, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assigns {
		if a.Shard == 0 {
			t.Fatal("empty shard produced an assignment")
		}
	}

	// Drain shard 1 completely: remove all jobs, reallocate, assign.
	for _, id := range c.Shard(1).Jobs() {
		c.Remove(id)
	}
	if err := c.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatalf("drained-shard allocation: %v", err)
	}
	if got, err := c.AssignRound(360, nil); err != nil || len(got) != 0 {
		t.Fatalf("drained coordinator assigned %d units (err %v)", len(got), err)
	}

	// Jobs into a never-solved coordinator context: cold solve, no panic.
	c2 := newTestCoordinator(t, 2, 8, RouteHash)
	c2.Admit(0, 1, testTput(0))
	c2.Admit(1, 1, testTput(1))
	if err := c2.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	for k := range st {
		if st[k].Solve.RemapHits != 0 || st[k].Solve.WarmHits != 0 {
			t.Errorf("shard %d: first-ever solve claimed a warm start: %+v", k, st[k].Solve)
		}
	}
}

// TestRoutingPolicies checks both routers' determinism and balance.
func TestRoutingPolicies(t *testing.T) {
	hash := newTestCoordinator(t, 3, 9, RouteHash)
	for id := 0; id < 12; id++ {
		s := hash.Admit(id, 1, testTput(id))
		if s.Index != id%3 {
			t.Fatalf("hash route sent job %d to shard %d", id, s.Index)
		}
	}

	ll := newTestCoordinator(t, 3, 9, RouteLeastLoaded)
	// Scale factors force the balancer's hand: each arrival lands on the
	// currently lightest shard.
	ll.Admit(100, 4, testTput(100)) // shard 0, load 4
	if s := ll.Admit(101, 1, testTput(101)); s.Index != 1 {
		t.Fatalf("least-loaded sent job 101 to shard %d", s.Index)
	}
	if s := ll.Admit(102, 1, testTput(102)); s.Index != 2 {
		t.Fatalf("least-loaded sent job 102 to shard %d", s.Index)
	}
	if s := ll.Admit(103, 1, testTput(103)); s.Index != 1 {
		t.Fatalf("least-loaded tie should break to shard 1, got %d", s.Index)
	}
}

// TestMergeRoundBudget checks the merged-round invariant plumbing: a
// well-formed round passes, and a forged over-budget set is rejected.
func TestMergeRoundBudget(t *testing.T) {
	c := newTestCoordinator(t, 2, 4, RouteHash)
	pol := &policy.MaxMinFairness{}
	for id := 0; id < 8; id++ {
		c.Admit(id, 1, testTput(id))
	}
	if err := c.AllocateAll(pol, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	merged, err := c.AssignRound(360, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 {
		t.Fatal("no assignments in a populated round")
	}
	// Sanity: merged rows stay tagged with valid shards and types.
	for _, a := range merged {
		if a.Shard < 0 || a.Shard >= 2 || a.Type < 0 || a.Type >= 3 {
			t.Fatalf("malformed merged assignment %+v", a)
		}
	}
}

// TestShardJobOrderSurvivesChurn guards the determinism backbone: the
// shard-local admission order is stable under interleaved removals, so unit
// construction (and therefore LP column order) is reproducible.
func TestShardJobOrderSurvivesChurn(t *testing.T) {
	c := newTestCoordinator(t, 1, 8, RouteHash)
	for id := 0; id < 6; id++ {
		c.Admit(id, 1, testTput(id))
	}
	c.Remove(2)
	c.Remove(4)
	c.Admit(9, 1, testTput(9))
	want := []int{0, 1, 3, 5, 9}
	got := c.Shard(0).Jobs()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("job order %v, want %v", got, want)
	}
	// JobAllocations covers exactly the resident set after allocation.
	if err := c.AllocateAll(&policy.MaxMinFairness{}, basicInfo, false); err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, 5)
	for id := range c.JobAllocations() {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("allocated jobs %v, want %v", ids, want)
	}
}
