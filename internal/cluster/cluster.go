// Package cluster models a heterogeneous accelerator cluster: accelerator
// types with counts, per-server consolidation units, and on-demand prices.
// It is the physical substrate Gavel's policies allocate over and the
// round-based mechanism places jobs onto.
package cluster

import "fmt"

// AcceleratorType describes one class of device in the cluster.
type AcceleratorType struct {
	Name         string
	Count        int     // number of devices of this type
	PricePerHour float64 // on-demand price, dollars/hour (GCP-style)
	PerServer    int     // devices per physical server (consolidation unit)
}

// Spec is a full cluster description.
type Spec struct {
	Types []AcceleratorType
}

// NumTypes returns the number of accelerator types.
func (s *Spec) NumTypes() int { return len(s.Types) }

// TotalDevices returns the total device count across all types.
func (s *Spec) TotalDevices() int {
	n := 0
	for _, t := range s.Types {
		n += t.Count
	}
	return n
}

// Workers returns per-type device counts as float64s, the form the policy
// LPs consume.
func (s *Spec) Workers() []float64 {
	w := make([]float64, len(s.Types))
	for i, t := range s.Types {
		w[i] = float64(t.Count)
	}
	return w
}

// Prices returns per-type dollar-per-hour prices.
func (s *Spec) Prices() []float64 {
	p := make([]float64, len(s.Types))
	for i, t := range s.Types {
		p[i] = t.PricePerHour
	}
	return p
}

// TypeIndex returns the index of the named type, or -1.
func (s *Spec) TypeIndex(name string) int {
	for i, t := range s.Types {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks structural sanity.
func (s *Spec) Validate() error {
	if len(s.Types) == 0 {
		return fmt.Errorf("cluster: no accelerator types")
	}
	seen := map[string]bool{}
	for _, t := range s.Types {
		if t.Name == "" {
			return fmt.Errorf("cluster: unnamed accelerator type")
		}
		if seen[t.Name] {
			return fmt.Errorf("cluster: duplicate type %q", t.Name)
		}
		seen[t.Name] = true
		if t.Count <= 0 {
			return fmt.Errorf("cluster: type %q has count %d", t.Name, t.Count)
		}
		if t.PerServer <= 0 {
			return fmt.Errorf("cluster: type %q has %d devices per server", t.Name, t.PerServer)
		}
		if t.PricePerHour < 0 {
			return fmt.Errorf("cluster: type %q has negative price", t.Name)
		}
	}
	return nil
}

// GCP-style on-demand prices used throughout the paper's cost experiments.
const (
	PriceV100 = 2.48
	PriceP100 = 1.46
	PriceK80  = 0.45
)

// Physical48 is the paper's physical testbed: 8 V100s, 16 P100s, 24 K80s
// (§7.1), with 8-GPU servers.
func Physical48() Spec {
	return Spec{Types: []AcceleratorType{
		{Name: "v100", Count: 8, PricePerHour: PriceV100, PerServer: 8},
		{Name: "p100", Count: 16, PricePerHour: PriceP100, PerServer: 8},
		{Name: "k80", Count: 24, PricePerHour: PriceK80, PerServer: 8},
	}}
}

// Simulated108 is the paper's larger simulated cluster: 36 of each type.
func Simulated108() Spec {
	return Spec{Types: []AcceleratorType{
		{Name: "v100", Count: 36, PricePerHour: PriceV100, PerServer: 8},
		{Name: "p100", Count: 36, PricePerHour: PriceP100, PerServer: 8},
		{Name: "k80", Count: 36, PricePerHour: PriceK80, PerServer: 8},
	}}
}

// Small9 is the 3 V100 / 3 P100 / 3 K80 cluster used by the multi-level
// fairness timelines (Figures 11 and 21).
func Small9() Spec {
	return Spec{Types: []AcceleratorType{
		{Name: "v100", Count: 3, PricePerHour: PriceV100, PerServer: 4},
		{Name: "p100", Count: 3, PricePerHour: PriceP100, PerServer: 4},
		{Name: "k80", Count: 3, PricePerHour: PriceK80, PerServer: 4},
	}}
}

// Small12 is the 12-GPU cluster used in the throughput-estimator experiment
// (Figure 14).
func Small12() Spec {
	return Spec{Types: []AcceleratorType{
		{Name: "v100", Count: 4, PricePerHour: PriceV100, PerServer: 4},
		{Name: "p100", Count: 4, PricePerHour: PriceP100, PerServer: 4},
		{Name: "k80", Count: 4, PricePerHour: PriceK80, PerServer: 4},
	}}
}

// Scaled returns a copy of s with every type count multiplied by factor
// (used by the policy-scaling experiment, Figure 12, where cluster size
// grows with the number of active jobs).
func (s Spec) Scaled(factor int) Spec {
	out := Spec{Types: make([]AcceleratorType, len(s.Types))}
	copy(out.Types, s.Types)
	for i := range out.Types {
		out.Types[i].Count *= factor
	}
	return out
}
