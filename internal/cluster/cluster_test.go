package cluster

import "testing"

func TestStandardClusters(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		total int
	}{
		{"Physical48", Physical48(), 48},
		{"Simulated108", Simulated108(), 108},
		{"Small9", Small9(), 9},
		{"Small12", Small12(), 12},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.name, err)
		}
		if got := c.spec.TotalDevices(); got != c.total {
			t.Errorf("%s has %d devices, want %d", c.name, got, c.total)
		}
		if c.spec.NumTypes() != 3 {
			t.Errorf("%s: want 3 types", c.name)
		}
	}
}

func TestWorkersAndPrices(t *testing.T) {
	s := Physical48()
	w := s.Workers()
	if w[0] != 8 || w[1] != 16 || w[2] != 24 {
		t.Fatalf("workers = %v", w)
	}
	p := s.Prices()
	if p[0] != PriceV100 || p[2] != PriceK80 {
		t.Fatalf("prices = %v", p)
	}
}

func TestTypeIndex(t *testing.T) {
	s := Simulated108()
	if s.TypeIndex("p100") != 1 {
		t.Fatal("p100 index")
	}
	if s.TypeIndex("tpu") != -1 {
		t.Fatal("unknown type should be -1")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Types: []AcceleratorType{{Name: "", Count: 1, PerServer: 1}}},
		{Types: []AcceleratorType{{Name: "a", Count: 0, PerServer: 1}}},
		{Types: []AcceleratorType{{Name: "a", Count: 1, PerServer: 0}}},
		{Types: []AcceleratorType{{Name: "a", Count: 1, PerServer: 1, PricePerHour: -1}}},
		{Types: []AcceleratorType{
			{Name: "a", Count: 1, PerServer: 1},
			{Name: "a", Count: 1, PerServer: 1},
		}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestScaled(t *testing.T) {
	s := Small9().Scaled(4)
	if s.TotalDevices() != 36 {
		t.Fatalf("scaled total = %d, want 36", s.TotalDevices())
	}
	// Original untouched.
	orig := Small9()
	if orig.TotalDevices() != 9 {
		t.Fatal("Scaled mutated the receiver")
	}
}
