package cluster

import (
	"fmt"
	"time"

	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// Shard is one partition of a sharded scheduling service: it owns a disjoint
// subset of the cluster's jobs and a per-type slice of its devices, and runs
// Gavel's full per-cluster machinery — a policy solve context with cached
// simplex bases, an incrementally maintained throughput cache, and a
// round-based mechanism — over just that subset. Shards never share mutable
// state, so a Coordinator can drive allocation and round assignment on all
// of them concurrently; the only cross-shard traffic is job migration, which
// moves a job's throughput rows and (via SolveContext.AdoptSeedsFrom) warm
// LP seeds between shards.
type Shard struct {
	// Index is the shard's position within the coordinator, fixed at
	// construction. Routing, merging, and stats all iterate shards in index
	// order, which is what keeps sharded runs deterministic.
	Index int

	// Workers is this shard's per-type device slice; WorkerInts the same as
	// integers; PerServer the per-type devices-per-server (shared with every
	// shard); Prices the per-type dollar rates.
	Workers    []float64
	WorkerInts []int
	PerServer  []int
	Prices     []float64

	// Ctx carries the shard's warm-start state across solves. Nil selects
	// cold solves (the coordinator's ColdSolves mode).
	Ctx *policy.SolveContext
	// Cache holds the shard's job/pair throughput matrices.
	Cache *core.ThroughputCache
	// Mech is the shard's round-based mechanism over its worker slice.
	Mech *scheduler.Mechanism

	// Dirty marks the allocation stale: a job arrived, departed, or
	// migrated since it was computed.
	Dirty bool
	// Alloc is the current allocation (nil before the first Allocate);
	// AllocIDs the external job IDs it was computed over, in unit order for
	// the single-job prefix.
	Alloc    *core.Allocation
	AllocIDs []int

	// Admitted counts jobs routed here by Admit; MigratedIn/MigratedOut
	// count rebalance moves; PolicyTime/PolicyCalls account Allocate work.
	Admitted    int
	MigratedIn  int
	MigratedOut int
	PolicyTime  time.Duration
	PolicyCalls int

	jobs   []int // resident job IDs in admission order (deterministic)
	jobPos map[int]int
	load   int // total device demand (sum of scale factors)
}

// NewShard builds an empty standalone shard over the given per-type worker
// slice. It is the entry point for a shard *daemon* — a process that owns
// exactly one partition of the cluster and is driven over the control plane
// (internal/rpc) by a remote coordinator, which computed the worker split
// with SplitWorkerCounts. In-process coordinators construct their shards
// through NewCoordinator instead.
func NewShard(index int, workerInts, perServer []int, prices []float64, ctx *policy.SolveContext) *Shard {
	return newShard(index, len(workerInts), workerInts, perServer, prices, ctx)
}

// Add inserts a job with its isolated throughput row: an admission or the
// receiving half of a migration. Exported for the shard daemon; the
// in-process coordinator books its own accounting around the unexported
// form.
func (s *Shard) Add(id, scaleFactor int, tput []float64) { s.add(id, scaleFactor, tput) }

// Remove drops a resident job: a completion or the sending half of a
// migration. Unknown IDs are no-ops.
func (s *Shard) Remove(id int) { s.remove(id) }

// SetPairIfAbsent installs a space-sharing pair's throughput rows unless the
// pair is already cached. The HasPair gate lives shard-side so a remote
// coordinator can send candidate rows unconditionally and still leave the
// cache byte-identical to an in-process run, which skips cached pairs at the
// source.
func (s *Shard) SetPairIfAbsent(a, b int, ta, tb []float64) {
	if s.Cache.HasPair(a, b) {
		return
	}
	s.Cache.SetPair(a, b, ta, tb)
}

// Observe feeds one measured pair throughput into the shard's cache.
func (s *Shard) Observe(a, b, typ int, ta, tb float64) {
	s.Cache.ObservePair(a, b, typ, ta, tb)
}

// ObserveJob overwrites one resident job's isolated throughput row with
// measured values and marks the shard dirty so the next allocation uses
// them. Non-resident IDs are ignored (the cache no-ops them too), keeping
// the update idempotent against departures.
func (s *Shard) ObserveJob(id int, tput []float64) {
	if !s.Has(id) {
		return
	}
	s.Cache.ObserveJob(id, tput)
	s.Dirty = true
}

// newShard builds an empty shard over the given worker slice.
func newShard(index, numTypes int, workerInts, perServer []int, prices []float64, ctx *policy.SolveContext) *Shard {
	workers := make([]float64, numTypes)
	for j, w := range workerInts {
		workers[j] = float64(w)
	}
	return &Shard{
		Index:      index,
		Workers:    workers,
		WorkerInts: append([]int(nil), workerInts...),
		PerServer:  append([]int(nil), perServer...),
		Prices:     append([]float64(nil), prices...),
		Ctx:        ctx,
		Cache:      core.NewThroughputCache(numTypes),
		Mech:       scheduler.New(numTypes, perServer),
		jobPos:     map[int]int{},
	}
}

// add inserts a job (admission or migration target).
func (s *Shard) add(id, scaleFactor int, tput []float64) {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	s.Cache.AddJob(id, scaleFactor, tput)
	s.jobPos[id] = len(s.jobs)
	s.jobs = append(s.jobs, id)
	s.load += scaleFactor
	s.Dirty = true
}

// remove drops a job (completion or migration source), preserving the
// admission order of the remainder.
func (s *Shard) remove(id int) {
	pos, ok := s.jobPos[id]
	if !ok {
		return
	}
	s.load -= s.Cache.ScaleFactor(id)
	s.Cache.RemoveJob(id)
	s.jobs = append(s.jobs[:pos], s.jobs[pos+1:]...)
	delete(s.jobPos, id)
	for i := pos; i < len(s.jobs); i++ {
		s.jobPos[s.jobs[i]] = i
	}
	s.Dirty = true
}

// Has reports whether the job is resident.
func (s *Shard) Has(id int) bool { _, ok := s.jobPos[id]; return ok }

// Jobs returns the resident job IDs in admission order (copy).
func (s *Shard) Jobs() []int { return append([]int(nil), s.jobs...) }

// NumJobs returns the resident job count.
func (s *Shard) NumJobs() int { return len(s.jobs) }

// Load returns the shard's total device demand (sum of scale factors), the
// balance metric routing and rebalancing use.
func (s *Shard) Load() int { return s.load }

// JobInfoFn supplies the caller-side view of one job when a shard builds a
// policy input: weights, remaining work, elapsed time, SLOs. The shard
// overwrites ID, Tput, ScaleFactor, and NumActiveJobs from its own state
// (NumActiveJobs becomes the shard-local active count — the job's fairness
// baseline is its shard's slice of the cluster).
type JobInfoFn func(id int) policy.JobInfo

// Allocate recomputes the shard's allocation: it assembles the policy input
// from the throughput cache (single units in admission order, then pair
// candidates above minGain, capped at maxPairs per job), solves through the
// shard's context — warm, remapped, or cold, per the context's usual seed
// selection — and resets the mechanism's received-time accounting. An empty
// shard gets an empty allocation without invoking the policy.
func (s *Shard) Allocate(pol policy.Policy, minGain float64, maxPairs int, info JobInfoFn) error {
	if len(s.jobs) == 0 {
		s.Alloc = &core.Allocation{}
		s.AllocIDs = nil
		s.Mech.ResetReceived()
		s.Dirty = false
		return nil
	}
	ids := append([]int(nil), s.jobs...)
	in := &policy.Input{
		Workers: s.Workers,
		Prices:  s.Prices,
		Units:   s.Cache.Units(ids, minGain, maxPairs),
	}
	for _, id := range ids {
		ji := info(id)
		ji.ID = id
		ji.Tput = s.Cache.JobTput(id)
		ji.ScaleFactor = s.Cache.ScaleFactor(id)
		ji.NumActiveJobs = len(ids)
		in.Jobs = append(in.Jobs, ji)
	}
	start := time.Now()
	alloc, err := pol.Allocate(in, s.Ctx)
	s.PolicyTime += time.Since(start)
	s.PolicyCalls++
	if err != nil {
		return fmt.Errorf("shard %d: %w", s.Index, err)
	}
	s.Alloc = alloc
	s.AllocIDs = ids
	s.Mech.ResetReceived()
	s.Dirty = false
	return nil
}

// unitJobIDs maps unit u's member positions to external job IDs.
func (s *Shard) unitJobIDs(u int) []int {
	members := s.Alloc.Units[u].Jobs
	ids := make([]int, len(members))
	for k, local := range members {
		ids[k] = s.AllocIDs[local]
	}
	return ids
}

// unitScaleFactor is the max member scale factor of unit u.
func (s *Shard) unitScaleFactor(u int) int {
	sf := 1
	for _, local := range s.Alloc.Units[u].Jobs {
		if v := s.Cache.ScaleFactor(s.AllocIDs[local]); v > sf {
			sf = v
		}
	}
	return sf
}

// AssignRound runs one mechanism round over the shard's current allocation
// and records the received time. skip, when non-nil, masks units any of
// whose member jobs must not run this round (e.g. finished since the
// allocation was computed). Returned assignments index into s.Alloc.Units.
func (s *Shard) AssignRound(roundSeconds float64, skip func(id int) bool) ([]scheduler.Assignment, error) {
	if s.Alloc == nil || len(s.Alloc.Units) == 0 {
		return nil, nil
	}
	alloc := s.Alloc
	if skip != nil {
		filtered := &core.Allocation{Units: alloc.Units, X: make([][]float64, len(alloc.X))}
		numTypes := len(s.WorkerInts)
		for u := range alloc.X {
			masked := false
			for _, local := range alloc.Units[u].Jobs {
				if skip(s.AllocIDs[local]) {
					masked = true
					break
				}
			}
			if masked {
				filtered.X[u] = make([]float64, numTypes)
			} else {
				filtered.X[u] = alloc.X[u]
			}
		}
		alloc = filtered
	}
	assigns, err := s.Mech.Assign(alloc, scheduler.Workers{Free: s.WorkerInts}, s.unitScaleFactor, s.unitJobIDs)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", s.Index, err)
	}
	s.Mech.RecordRound(alloc, assigns, roundSeconds, s.unitJobIDs)
	return assigns, nil
}
