package cluster

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gavel/internal/lp"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// RoutePolicy selects how the coordinator assigns arriving jobs to shards.
type RoutePolicy int

const (
	// RouteHash routes job ID modulo the shard count: stateless,
	// deterministic, and stable under churn.
	RouteHash RoutePolicy = iota
	// RouteLeastLoaded routes to the shard with the smallest device demand,
	// ties broken by lowest shard index.
	RouteLeastLoaded
)

// String implements fmt.Stringer.
func (r RoutePolicy) String() string {
	switch r {
	case RouteLeastLoaded:
		return "least-loaded"
	default:
		return "hash"
	}
}

// CoordinatorConfig parameterizes a sharded scheduling service.
type CoordinatorConfig struct {
	// NumShards is the partition count K (>= 1).
	NumShards int
	// Cluster is the global cluster; its per-type device counts are split
	// across shards (the first count%K shards get one extra device).
	Cluster Spec
	// Engine selects the simplex implementation of every shard's context.
	// Retained for compatibility; LP is the full knob set (Engine, when set,
	// overrides LP.Engine).
	Engine lp.Engine
	// LP bundles all solver knobs for every shard's context; Auto fields
	// follow the lp package defaults.
	LP lp.Options
	// ColdSolves disables per-shard solve contexts: every allocation then
	// solves its LPs from scratch (benchmark baseline).
	ColdSolves bool
	// Route selects arrival routing (default RouteHash).
	Route RoutePolicy
	// PairGainThreshold is the minimum combined normalized throughput for a
	// space-sharing pair to become a candidate unit; MaxPairsPerJob caps
	// candidates per job (0 disables pair units). Pairs only ever form
	// within a shard — partitioning the job set partitions the pair set.
	PairGainThreshold float64
	MaxPairsPerJob    int
	// Obs, when non-nil, wires every shard context's LP solve accounting
	// (solves by kind, iterations, refactorizations, solve latency) into the
	// plane's live series. Metrics never influence a solve, so enabling them
	// cannot perturb allocations.
	Obs *obs.Plane
}

// Migration records one job moved between shards by a rebalance.
type Migration struct {
	Job  int
	From int
	To   int
}

// RoundAssignment tags a shard-local assignment with its shard, the merged
// form of one global round.
type RoundAssignment struct {
	Shard int
	scheduler.Assignment
}

// ShardStats is one shard's accounting snapshot.
type ShardStats struct {
	Shard       int
	Jobs        int // currently resident
	Admitted    int // routed here on arrival
	MigratedIn  int
	MigratedOut int
	// Solve is the shard context's LP accounting (zero under ColdSolves).
	Solve policy.SolveStats
}

// Coordinator drives a sharded scheduling service: it partitions jobs and
// devices across K shards, routes arrivals, periodically rebalances by
// migrating jobs (carrying warm LP seeds across so migration never forces a
// cold solve while any seed exists), fans allocation and round assignment
// out over a bounded worker pool, and merges per-shard rounds under the
// global per-type worker budget. All mutating entry points are
// single-threaded by design — the concurrency lives inside ForEachShard,
// where shards touch only their own state — so a fixed call order yields a
// byte-identical outcome regardless of GOMAXPROCS.
type Coordinator struct {
	cfg        CoordinatorConfig
	numTypes   int
	globalInts []int
	shards     []*Shard
	shardOf    map[int]int
	migrations int
	rebalances int
}

// NewCoordinator validates the config and builds K empty shards over a
// per-type split of the cluster's devices.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.NumShards < 1 {
		return nil, fmt.Errorf("cluster: NumShards %d < 1", cfg.NumShards)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	numTypes := cfg.Cluster.NumTypes()
	counts := make([]int, numTypes)
	perServer := make([]int, numTypes)
	for j, t := range cfg.Cluster.Types {
		counts[j] = t.Count
		perServer[j] = t.PerServer
	}
	prices := cfg.Cluster.Prices()
	split := SplitWorkerCounts(counts, cfg.NumShards)
	c := &Coordinator{
		cfg:        cfg,
		numTypes:   numTypes,
		globalInts: counts,
		shardOf:    map[int]int{},
	}
	// One shared LPMetrics across the shard contexts: the series are
	// aggregates, and the instruments are atomics, so concurrent shard solves
	// accumulate deterministically. Nil plane -> nil metrics -> no-ops.
	lpm := obs.NewLPMetrics(cfg.Obs.Registry())
	for k := 0; k < cfg.NumShards; k++ {
		var ctx *policy.SolveContext
		if !cfg.ColdSolves {
			ctx = policy.NewSolveContextWith(cfg.LP)
			if cfg.Engine != lp.EngineAuto {
				ctx.Engine = cfg.Engine
			}
			ctx.Metrics = lpm
		}
		c.shards = append(c.shards, newShard(k, numTypes, split[k], perServer, prices, ctx))
	}
	return c, nil
}

// SplitWorkerCounts partitions per-type device counts across numShards:
// shard k receives counts[j]/numShards devices of type j, with the first
// counts[j]%numShards shards taking one extra. The slices always sum back to
// the global counts — the invariant that lets per-shard rounds merge without
// ever exceeding the cluster's budget.
func SplitWorkerCounts(counts []int, numShards int) [][]int {
	out := make([][]int, numShards)
	for k := range out {
		out[k] = make([]int, len(counts))
	}
	for j, n := range counts {
		base, extra := n/numShards, n%numShards
		for k := 0; k < numShards; k++ {
			out[k][j] = base
			if k < extra {
				out[k][j]++
			}
		}
	}
	return out
}

// NumShards returns the partition count.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// Shards returns the shard slice (callers must not reorder it).
func (c *Coordinator) Shards() []*Shard { return c.shards }

// Shard returns shard k.
func (c *Coordinator) Shard(k int) *Shard { return c.shards[k] }

// ShardOf returns the index of the shard holding the job, or -1.
func (c *Coordinator) ShardOf(id int) int {
	if k, ok := c.shardOf[id]; ok {
		return k
	}
	return -1
}

// NumJobs returns the total resident job count across shards.
func (c *Coordinator) NumJobs() int { return len(c.shardOf) }

// Migrations returns the total jobs moved between shards by rebalancing.
func (c *Coordinator) Migrations() int { return c.migrations }

// Rebalances returns how many Rebalance calls actually moved jobs.
func (c *Coordinator) Rebalances() int { return c.rebalances }

// route picks the destination shard for an arriving job.
func (c *Coordinator) route(id int) *Shard {
	switch c.cfg.Route {
	case RouteLeastLoaded:
		best := c.shards[0]
		for _, s := range c.shards[1:] {
			if s.load < best.load {
				best = s
			}
		}
		return best
	default:
		k := id % len(c.shards)
		if k < 0 {
			k += len(c.shards)
		}
		return c.shards[k]
	}
}

// Admit routes an arriving job to a shard and installs its isolated
// throughput row, returning the destination shard.
func (c *Coordinator) Admit(id, scaleFactor int, tput []float64) *Shard {
	s := c.route(id)
	s.add(id, scaleFactor, tput)
	s.Admitted++
	c.shardOf[id] = s.Index
	return s
}

// Remove drops a departed (completed) job from its shard.
func (c *Coordinator) Remove(id int) {
	k, ok := c.shardOf[id]
	if !ok {
		return
	}
	c.shards[k].remove(id)
	delete(c.shardOf, id)
}

// migrate moves one resident job between shards, carrying warm LP seeds to a
// destination that has none: the adopted basis remaps across the job-set
// change on the destination's next solve exactly like any arrival, and the
// source's own basis remaps the departure — so migration costs two remapped
// solves, never a cold one, as long as either side has ever solved.
func (c *Coordinator) migrate(id int, from, to *Shard) {
	sf := from.Cache.ScaleFactor(id)
	tput := append([]float64(nil), from.Cache.JobTput(id)...)
	from.remove(id)
	to.add(id, sf, tput)
	from.MigratedOut++
	to.MigratedIn++
	if !to.Ctx.HasSeeds() {
		to.Ctx.AdoptSeedsFrom(from.Ctx)
	}
	c.shardOf[id] = to.Index
	c.migrations++
}

// Rebalance evens device demand across shards by migrating the most
// recently admitted movable job from the most loaded shard to the least
// loaded one until the gap stops shrinking. Ties always break to the lowest
// shard index and candidates are scanned in reverse admission order, so the
// migration set is a pure function of the coordinator's state.
func (c *Coordinator) Rebalance() []Migration {
	if len(c.shards) < 2 {
		return nil
	}
	var migs []Migration
	for moves := 0; moves <= len(c.shardOf); moves++ {
		hi, lo := c.shards[0], c.shards[0]
		for _, s := range c.shards[1:] {
			if s.load > hi.load {
				hi = s
			}
			if s.load < lo.load {
				lo = s
			}
		}
		gap := hi.load - lo.load
		if gap <= 1 {
			break
		}
		// Most recent admission whose demand strictly shrinks the gap:
		// moving demand d turns the gap into |gap - 2d|, an improvement
		// exactly when d < gap.
		pick := -1
		for i := len(hi.jobs) - 1; i >= 0; i-- {
			if hi.Cache.ScaleFactor(hi.jobs[i]) < gap {
				pick = hi.jobs[i]
				break
			}
		}
		if pick < 0 {
			break
		}
		c.migrate(pick, hi, lo)
		migs = append(migs, Migration{Job: pick, From: hi.Index, To: lo.Index})
	}
	if len(migs) > 0 {
		c.rebalances++
	}
	return migs
}

// ForEachShard runs fn on every shard concurrently over a worker pool
// bounded by GOMAXPROCS. Each invocation may mutate only its own shard;
// outputs land in per-shard state or caller-owned slots indexed by
// Shard.Index, so results are deterministic regardless of goroutine
// scheduling. The returned error is the lowest-index failure.
func (c *Coordinator) ForEachShard(fn func(s *Shard) error) error {
	n := len(c.shards)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for _, s := range c.shards {
			if err := fn(s); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(c.shards[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// AllocateAll recomputes every stale shard's allocation concurrently. force
// recomputes clean shards too (periodic refresh).
func (c *Coordinator) AllocateAll(pol policy.Policy, info JobInfoFn, force bool) error {
	return c.ForEachShard(func(s *Shard) error {
		if !force && !s.Dirty && s.Alloc != nil {
			return nil
		}
		return s.Allocate(pol, c.cfg.PairGainThreshold, c.cfg.MaxPairsPerJob, info)
	})
}

// AssignRound runs one mechanism round on every shard concurrently and
// merges the result under the global budget. skip masks jobs that must not
// run (may be nil).
func (c *Coordinator) AssignRound(roundSeconds float64, skip func(id int) bool) ([]RoundAssignment, error) {
	perShard := make([][]scheduler.Assignment, len(c.shards))
	err := c.ForEachShard(func(s *Shard) error {
		assigns, err := s.AssignRound(roundSeconds, skip)
		perShard[s.Index] = assigns
		return err
	})
	if err != nil {
		return nil, err
	}
	return c.MergeRound(perShard)
}

// ValidateRound verifies one global round's budget invariants without
// materializing the merged assignment list: every shard must stay within
// its own worker slice and the union within the global per-type budget. The
// shards' slices partition the cluster, so a violation is an invariant
// breach. This is the per-round check the sharded simulator runs.
func (c *Coordinator) ValidateRound(perShard [][]scheduler.Assignment) error {
	if len(perShard) != len(c.shards) {
		return fmt.Errorf("cluster: %d assignment sets for %d shards", len(perShard), len(c.shards))
	}
	total := make([]int, c.numTypes)
	for k, assigns := range perShard {
		s := c.shards[k]
		used := scheduler.UsedWorkers(assigns, s.unitScaleFactor, c.numTypes)
		if err := scheduler.WithinBudget(used, s.WorkerInts); err != nil {
			return fmt.Errorf("cluster: shard %d: %w", k, err)
		}
		for j := range used {
			total[j] += used[j]
		}
	}
	if err := scheduler.WithinBudget(total, c.globalInts); err != nil {
		return fmt.Errorf("cluster: merged round: %w", err)
	}
	return nil
}

// MergeRound validates per-shard assignments (indexed by shard) and
// flattens them into one shard-tagged global round.
func (c *Coordinator) MergeRound(perShard [][]scheduler.Assignment) ([]RoundAssignment, error) {
	if err := c.ValidateRound(perShard); err != nil {
		return nil, err
	}
	var out []RoundAssignment
	for k, assigns := range perShard {
		for _, a := range assigns {
			out = append(out, RoundAssignment{Shard: k, Assignment: a})
		}
	}
	return out, nil
}

// JobAllocations merges the shards' current allocations into per-job
// per-type time fractions: each job's row sums X over every unit containing
// it in its shard's allocation. This is the partition-respecting view used
// to compare sharded and monolithic solves.
func (c *Coordinator) JobAllocations() map[int][]float64 {
	out := map[int][]float64{}
	for _, s := range c.shards {
		if s.Alloc == nil {
			continue
		}
		for u := range s.Alloc.Units {
			for _, local := range s.Alloc.Units[u].Jobs {
				id := s.AllocIDs[local]
				row := out[id]
				if row == nil {
					row = make([]float64, c.numTypes)
					out[id] = row
				}
				for j, x := range s.Alloc.X[u] {
					row[j] += x
				}
			}
		}
	}
	return out
}

// Stats snapshots per-shard accounting in shard order.
func (c *Coordinator) Stats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for k, s := range c.shards {
		st := ShardStats{
			Shard:       k,
			Jobs:        len(s.jobs),
			Admitted:    s.Admitted,
			MigratedIn:  s.MigratedIn,
			MigratedOut: s.MigratedOut,
		}
		if s.Ctx != nil {
			st.Solve = s.Ctx.Stats
		}
		out[k] = st
	}
	return out
}
