package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) over a worker pool bounded by
// GOMAXPROCS. Each fn writes its output into a caller-owned slot i, so
// result ordering is deterministic regardless of goroutine scheduling; the
// returned error is the lowest-index failure. Simulation cells are
// independent (fresh policy, trace, and RNG per cell, seeded by index), so
// running them concurrently cannot change any cell's result — only the
// wall-clock time of the whole sweep.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true) // stop claiming new cells; the rest stay nil
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
