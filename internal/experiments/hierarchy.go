package experiments

import (
	"fmt"
	"strings"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

// HierarchyOutcome reports the multi-level fairness timeline experiments.
type HierarchyOutcome struct {
	Report string
	// Timeline[t][m] is job m's fraction of total effective throughput at
	// timestep t (jobs not yet arrived have 0).
	Timeline [][]float64
	// EntityShare[t][e] aggregates the timeline per entity.
	EntityShare [][]float64
	// TotalGainOverStatic is the final-timestep total effective throughput
	// of the heterogeneity-aware hierarchical policy over a static
	// heterogeneity-agnostic partition (the paper reports ~17%).
	TotalGainOverStatic float64
}

// Figure11 reproduces the multi-level fairness timeline: 18 jobs arriving
// every 4 timesteps into 3 entities (weights 1, 2, 3) on a 3x3 GPU
// cluster, fairness at both levels (paper Figure 11).
func Figure11() (*HierarchyOutcome, error) {
	return hierarchyTimeline(policy.EntityFairness, "Figure 11: multi-level fairness (fairness within entities)")
}

// Figure21 is the same timeline with FIFO as the intra-entity policy
// (paper Figure 21).
func Figure21() (*HierarchyOutcome, error) {
	return hierarchyTimeline(policy.EntityFIFO, "Figure 21: hierarchical policy (FIFO within entities)")
}

func hierarchyTimeline(intra policy.EntityPolicy, title string) (*HierarchyOutcome, error) {
	const (
		numJobs   = 18
		perEntity = 6
		timesteps = 80
		arriveGap = 4
	)
	spec := cluster.Small9()
	workers := spec.Workers()
	zoo := workload.Zoo()

	pol := &policy.Hierarchical{
		EntityWeight:   map[int]float64{0: 1, 1: 2, 2: 3},
		EntityPolicyOf: map[int]policy.EntityPolicy{0: intra, 1: intra, 2: intra},
	}

	out := &HierarchyOutcome{}
	// One persistent solve context across the whole timeline: between
	// arrival boundaries the water-filling LPs keep their shape, so each
	// timestep warm-starts from the previous optimum.
	ctx := policy.NewSolveContext()
	var lastAlloc *core.Allocation
	var lastIn *policy.Input
	for ts := 0; ts < timesteps; ts++ {
		arrived := ts/arriveGap + 1
		if arrived > numJobs {
			arrived = numJobs
		}
		in := &policy.Input{Workers: workers, Prices: spec.Prices()}
		for m := 0; m < arrived; m++ {
			cfg := zoo[(m*5)%len(zoo)]
			tput := make([]float64, len(workers))
			for t := range tput {
				if workload.Fits(cfg, t) {
					tput[t] = workload.Throughput(cfg, t)
				}
			}
			in.Jobs = append(in.Jobs, policy.JobInfo{
				ID: m, Weight: 1, Priority: 1, ScaleFactor: 1, Tput: tput,
				RemainingSteps: 1e9, TotalSteps: 1e9, ArrivalSeq: m,
				Entity: m / perEntity, NumActiveJobs: arrived,
			})
			in.Units = append(in.Units, core.Single(m, tput))
		}
		alloc, err := pol.Allocate(in, ctx)
		if err != nil {
			return nil, fmt.Errorf("timestep %d: %w", ts, err)
		}
		lastAlloc, lastIn = alloc, in

		// Normalized per-job share of total effective throughput.
		shares := make([]float64, numJobs)
		total := 0.0
		norm := make([]float64, arrived)
		for m := 0; m < arrived; m++ {
			norm[m] = alloc.EffectiveThroughput(m) / core.EqualShareThroughput(in.Jobs[m].Tput, workers)
			total += norm[m]
		}
		if total > 0 {
			for m := 0; m < arrived; m++ {
				shares[m] = norm[m] / total
			}
		}
		out.Timeline = append(out.Timeline, shares)
		es := make([]float64, 3)
		for m := 0; m < arrived; m++ {
			es[m/perEntity] += shares[m]
		}
		out.EntityShare = append(out.EntityShare, es)
	}

	// Static heterogeneity-agnostic partition: each entity statically owns
	// weight-proportional slices of every type, split evenly among its
	// jobs — then total effective normalized throughput is compared.
	staticTotal := 0.0
	awareTotal := 0.0
	for m := range lastIn.Jobs {
		e := lastIn.Jobs[m].Entity
		entW := []float64{1, 2, 3}[e] / 6.0
		perJob := entW / perEntity // this job's time fraction of every device
		tp := 0.0
		for t, w := range workers {
			tp += lastIn.Jobs[m].Tput[t] * perJob * w
		}
		norm := core.EqualShareThroughput(lastIn.Jobs[m].Tput, workers)
		staticTotal += tp / norm
		awareTotal += lastAlloc.EffectiveThroughput(m) / norm
	}
	out.TotalGainOverStatic = awareTotal / staticTotal

	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("entity shares of total normalized throughput over time:\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "timestep", "entity0", "entity1", "entity2")
	for ts := 0; ts < len(out.EntityShare); ts += 8 {
		es := out.EntityShare[ts]
		fmt.Fprintf(&b, "%-10d %10.3f %10.3f %10.3f\n", ts, es[0], es[1], es[2])
	}
	es := out.EntityShare[len(out.EntityShare)-1]
	fmt.Fprintf(&b, "final entity shares: %.3f / %.3f / %.3f (weights 1/2/3)\n", es[0], es[1], es[2])
	fmt.Fprintf(&b, "total throughput vs static agnostic partition: %.2fx\n", out.TotalGainOverStatic)
	out.Report = b.String()
	return out, nil
}
