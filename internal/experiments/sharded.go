package experiments

import (
	"fmt"
	"strings"
	"time"

	"gavel/internal/cluster"
	"gavel/internal/policy"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// ShardedOutcome reports the sharded scheduler service against the
// monolithic loop: end-to-end policy wall-clock and solve buckets per shard
// count, on the same trace.
type ShardedOutcome struct {
	Report string
	Shards []int
	// PolicySeconds[i] is total Policy.Allocate wall-clock under Shards[i]
	// (0 = monolithic); AvgJCTHours[i] the corresponding mean JCT.
	PolicySeconds []float64
	AvgJCTHours   []float64
}

// String implements fmt.Stringer.
func (o *ShardedOutcome) String() string { return o.Report }

// Sharded compares the monolithic scheduler (K=0) against the sharded
// service at the given shard counts on one trace: jobs and devices are
// partitioned per shard, allocations and rounds run concurrently, and the
// coordinator rebalances every 10 rounds with warm-basis job migration. The
// interesting outputs are the policy wall-clock (per-shard LPs are
// superlinearly cheaper than the monolithic one, and they solve in
// parallel) and the solve buckets (migrations land in the remapped bucket,
// not the cold one).
func Sharded(opt Options, shardCounts []int) (*ShardedOutcome, error) {
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 4}
	}
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = 120
	}
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: jobs, LambdaPerHour: 12, Seed: 1,
	})
	out := &ShardedOutcome{}
	var b strings.Builder
	b.WriteString("Sharded scheduler service: monolithic vs K-shard runs (same trace)\n")
	fmt.Fprintf(&b, "%-12s %12s %10s %10s %10s %10s %12s\n",
		"engine", "policy time", "avg JCT", "solves", "remapped", "cold", "migrations")
	runs := append([]int{0}, shardCounts...)
	for _, k := range runs {
		cfg := simulator.Config{
			Cluster:      cluster.Simulated108(),
			Policy:       &policy.MaxMinFairness{},
			Trace:        trace,
			SpaceSharing: true,
			NumShards:    k,
		}
		if k > 0 {
			cfg.RebalanceEveryRounds = 10
			cfg.ShardRoute = cluster.RouteLeastLoaded
		}
		res, err := simulator.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("sharded k=%d: %w", k, err)
		}
		label := "monolithic"
		if k > 0 {
			label = fmt.Sprintf("K=%d", k)
		}
		cold := res.LPSolves - res.WarmSolves - res.RemappedSolves
		fmt.Fprintf(&b, "%-12s %12v %9.2fh %10d %10d %10d %12d\n",
			label, res.PolicyTime.Round(time.Millisecond), res.AvgJCT(5),
			res.LPSolves, res.RemappedSolves, cold, res.Migrations)
		out.Shards = append(out.Shards, k)
		out.PolicySeconds = append(out.PolicySeconds, res.PolicyTime.Seconds())
		out.AvgJCTHours = append(out.AvgJCTHours, res.AvgJCT(5))
	}
	out.Report = b.String()
	return out, nil
}
