// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and Appendix A.2) on the simulator substrate. Each
// Figure*/Table* function returns a formatted text report (the same rows or
// series the paper plots) plus structured results the tests and benchmarks
// assert shape properties on (who wins, by roughly what factor).
//
// Experiments run at a configurable scale: the defaults keep a full
// `go test -bench=.` pass tractable; `cmd/gavel-sim -full` runs
// paper-scale sweeps.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"gavel/internal/cluster"
	metrics "gavel/internal/obs/stats"
	"gavel/internal/policy"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// Options scales the experiment harness.
type Options struct {
	// Jobs is the trace length per run (default 120; paper-scale ~1000).
	Jobs int
	// Seeds is the number of random seeds averaged per point (default 1;
	// the paper uses 3).
	Seeds int
	// Warmup finished jobs dropped from steady-state JCT averages.
	Warmup int
	// RoundSeconds for the mechanism (default 360).
	RoundSeconds float64
}

func (o Options) withDefaults() Options {
	if o.Jobs <= 0 {
		o.Jobs = 120
	}
	if o.Seeds <= 0 {
		o.Seeds = 1
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 10
	}
	if o.RoundSeconds <= 0 {
		o.RoundSeconds = 360
	}
	return o
}

// namedPolicy pairs a display label with a policy constructor (fresh state
// per run, since some baselines are stateful).
type namedPolicy struct {
	label string
	make  func(seed int64) policy.Policy
	ss    bool
}

// runOnce simulates one (policy, trace) cell and returns the result.
func runOnce(opt Options, np namedPolicy, spec cluster.Spec, trace []workload.Job, seed int64) (*simulator.Result, error) {
	return simulator.Run(simulator.Config{
		Cluster:      spec,
		Policy:       np.make(seed),
		Trace:        trace,
		RoundSeconds: opt.RoundSeconds,
		SpaceSharing: np.ss,
		Seed:         seed,
	})
}

// sweep runs a set of policies over a list of input job rates and reports
// the mean steady-state JCT (hours) per policy per rate, averaged over
// seeds. traceOpt is a template; NumJobs/Lambda/Seed are overridden.
type sweepResult struct {
	rates    []float64
	labels   []string
	avgJCT   map[string][]float64 // label -> per-rate mean JCT hours
	jctsAt   map[string][]float64 // label -> raw JCTs (hours) at the highest stable rate
	shortCut float64              // short/long job split (hours of RefDuration)
}

func sweep(opt Options, spec cluster.Spec, pols []namedPolicy, rates []float64, traceOpt workload.TraceOptions) (*sweepResult, error) {
	opt = opt.withDefaults()
	res := &sweepResult{
		rates:    rates,
		avgJCT:   map[string][]float64{},
		jctsAt:   map[string][]float64{},
		shortCut: 2, // jobs under 2 reference-hours count as "short"
	}
	for _, np := range pols {
		res.labels = append(res.labels, np.label)
	}

	// Every (policy, rate, seed) cell is independent: run them all over the
	// bounded worker pool, then aggregate in index order so the report is
	// identical to a serial sweep.
	nR, nS := len(rates), opt.Seeds
	results := make([]*simulator.Result, len(pols)*nR*nS)
	err := parallelFor(len(results), func(i int) error {
		pi := i / (nR * nS)
		ri := (i / nS) % nR
		s := i % nS
		to := traceOpt
		to.NumJobs = opt.Jobs
		to.LambdaPerHour = rates[ri]
		to.Seed = int64(1000*ri + 17*s + 3)
		trace := workload.GenerateTrace(to)
		r, err := runOnce(opt, pols[pi], spec, trace, to.Seed)
		if err != nil {
			return fmt.Errorf("%s @ %.1f jobs/hr: %w", pols[pi].label, rates[ri], err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	for pi, np := range pols {
		perRate := make([]float64, nR)
		for ri := range rates {
			var vals []float64
			for s := 0; s < nS; s++ {
				r := results[(pi*nR+ri)*nS+s]
				vals = append(vals, r.AvgJCT(opt.Warmup))
				if ri == nR-1 && s == 0 {
					for _, j := range r.Jobs {
						if !math.IsNaN(j.JCT) {
							res.jctsAt[np.label] = append(res.jctsAt[np.label], j.JCT/3600)
						}
					}
				}
			}
			perRate[ri] = metrics.Mean(vals)
		}
		res.avgJCT[np.label] = perRate
	}
	return res, nil
}

// format renders the sweep as the paper's "average JCT vs input job rate"
// series.
func (s *sweepResult) format(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s", "input rate (jobs/hr):")
	for _, r := range s.rates {
		fmt.Fprintf(&b, "%10.2f", r)
	}
	b.WriteByte('\n')
	for _, l := range s.labels {
		fmt.Fprintf(&b, "%-24s", l)
		for _, v := range s.avgJCT[l] {
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// formatCDF renders short-jobs / long-jobs JCT CDFs at the highest rate
// (the paper's companion CDF panels).
func (s *sweepResult) formatCDF() string {
	var b strings.Builder
	qs := []float64{25, 50, 75, 90, 99}
	fmt.Fprintf(&b, "JCT percentiles at rate %.2f jobs/hr (hours)\n", s.rates[len(s.rates)-1])
	fmt.Fprintf(&b, "%-24s", "policy")
	for _, q := range qs {
		fmt.Fprintf(&b, "%9.0fth", q)
	}
	b.WriteByte('\n')
	for _, l := range s.labels {
		fmt.Fprintf(&b, "%-24s", l)
		for _, q := range qs {
			fmt.Fprintf(&b, "%11.2f", metrics.Percentile(s.jctsAt[l], q))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// gain returns avgJCT[base]/avgJCT[better] at the given rate index
// (improvement factor; >1 means `better` wins).
func (s *sweepResult) gain(base, better string, rateIdx int) float64 {
	return s.avgJCT[base][rateIdx] / s.avgJCT[better][rateIdx]
}

// Standard policy constructors used across experiments.
func lasAgnostic() namedPolicy {
	return namedPolicy{label: "LAS", make: func(int64) policy.Policy {
		return &policy.Agnostic{Inner: &policy.MaxMinFairness{}}
	}}
}
func gavelLAS() namedPolicy {
	return namedPolicy{label: "Gavel", make: func(int64) policy.Policy { return &policy.MaxMinFairness{} }}
}
func gavelLASSS() namedPolicy {
	return namedPolicy{label: "Gavel w/ SS", ss: true, make: func(int64) policy.Policy { return &policy.MaxMinFairness{} }}
}
func gandivaSS() namedPolicy {
	return namedPolicy{label: "LAS w/ Gandiva SS", ss: true, make: func(seed int64) policy.Policy {
		return policy.NewGandivaSpaceSharing(seed)
	}}
}
func alloxPolicy() namedPolicy {
	return namedPolicy{label: "AlloX", make: func(int64) policy.Policy { return &policy.AlloX{} }}
}
func fifoAgnostic() namedPolicy {
	return namedPolicy{label: "FIFO", make: func(int64) policy.Policy {
		return &policy.Agnostic{Inner: policy.FIFO{}}
	}}
}
func gavelFIFO() namedPolicy {
	return namedPolicy{label: "Gavel", make: func(int64) policy.Policy { return policy.FIFO{} }}
}
func gavelFIFOSS() namedPolicy {
	return namedPolicy{label: "Gavel w/ SS", ss: true, make: func(int64) policy.Policy { return policy.FIFO{} }}
}
func ftfAgnostic() namedPolicy {
	return namedPolicy{label: "FTF", make: func(int64) policy.Policy {
		return &policy.Agnostic{Inner: &policy.FinishTimeFairness{}}
	}}
}
func gavelFTF() namedPolicy {
	return namedPolicy{label: "Gavel", make: func(int64) policy.Policy { return &policy.FinishTimeFairness{} }}
}

// String implements fmt.Stringer for every experiment outcome type so
// drivers can print them uniformly.
func (o *SweepOutcome) String() string     { return o.Report }
func (o *Figure19Outcome) String() string  { return o.Report }
func (o *Figure20Outcome) String() string  { return o.Report }
func (o *CostOutcome) String() string      { return o.Report }
func (o *Table3Outcome) String() string    { return o.Report }
func (o *Figure12Outcome) String() string  { return o.Report }
func (o *Figure13Outcome) String() string  { return o.Report }
func (o *Figure14Outcome) String() string  { return o.Report }
func (o *HierarchyOutcome) String() string { return o.Report }
