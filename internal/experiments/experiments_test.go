package experiments

import (
	"strings"
	"testing"
)

// Small options keep the experiment tests fast; shape assertions mirror the
// paper's qualitative claims.
var testOpt = Options{Jobs: 60, Seeds: 1, Warmup: 5}

func TestFigure1Report(t *testing.T) {
	rep := Figure1()
	if !strings.Contains(rep, "ResNet-50") || !strings.Contains(rep, "A3C") {
		t.Fatalf("missing models:\n%s", rep)
	}
	// A3C must be best per-dollar on the K80 (the paper's headline). Only
	// the Figure 1b section carries the "best" column.
	_, section1b, ok := strings.Cut(rep, "Figure 1b")
	if !ok {
		t.Fatal("missing Figure 1b section")
	}
	for _, line := range strings.Split(section1b, "\n") {
		if strings.HasPrefix(line, "A3C") && !strings.HasSuffix(strings.TrimSpace(line), "k80") {
			t.Errorf("A3C per-dollar winner not K80: %q", line)
		}
	}
}

func TestTable2Report(t *testing.T) {
	rep := Table2()
	if !strings.Contains(rep, "total configurations: 26") {
		t.Fatalf("zoo mis-sized:\n%s", rep)
	}
}

func TestFigure15Report(t *testing.T) {
	rep := Figure15()
	if !strings.Contains(rep, "space-sharing") {
		t.Fatal("missing title")
	}
	if !strings.Contains(rep, "-") {
		t.Fatal("expected at least one infeasible pairing in the heat map")
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := Figure8(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if g := out.GainAtHighLoad["LAS->Gavel w/ SS"]; g < 1.05 {
		t.Errorf("Gavel w/ SS gain over LAS = %.2fx, want > 1.05 (paper: up to 3.5x)\n%s", g, out.Report)
	}
	if g := out.GainAtHighLoad["LAS w/ Gandiva SS->Gavel w/ SS"]; g < 1.05 {
		t.Errorf("Gavel w/ SS gain over Gandiva = %.2fx, want > 1.05 (paper: ~2.2x)\n%s", g, out.Report)
	}
}

func TestFigure11Shape(t *testing.T) {
	out, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	// Final entity shares must be ordered by weight (1 < 2 < 3).
	es := out.EntityShare[len(out.EntityShare)-1]
	if !(es[0] < es[1] && es[1] < es[2]) {
		t.Errorf("entity shares %v not ordered by weights 1/2/3\n%s", es, out.Report)
	}
	if out.TotalGainOverStatic < 1.02 {
		t.Errorf("gain over static partition = %.2fx, want > 1 (paper: ~1.17x)", out.TotalGainOverStatic)
	}
}

func TestFigure21Shape(t *testing.T) {
	out, err := Figure21()
	if err != nil {
		t.Fatal(err)
	}
	// FIFO within entities: at the end, within entity 0 the earliest job
	// should hold (nearly) all of the entity's share.
	last := out.Timeline[len(out.Timeline)-1]
	e0 := out.EntityShare[len(out.EntityShare)-1][0]
	if e0 > 0 && last[0] < 0.6*e0 {
		t.Errorf("FIFO head job holds %.3f of entity share %.3f, want majority\n%s", last[0], e0, out.Report)
	}
}

func TestFigure12Scales(t *testing.T) {
	out, err := Figure12([]int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for label, secs := range out.Seconds {
		if len(secs) != 2 {
			t.Fatalf("%s: wrong number of points", label)
		}
		if secs[1] <= 0 {
			t.Fatalf("%s: non-positive solve time", label)
		}
	}
}

func TestFigure13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := Figure13(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Longer rounds should not dramatically beat short rounds (they track
	// allocations more loosely); mechanism should be close to ideal.
	if out.Mechanism < out.Ideal*0.95 {
		t.Errorf("mechanism (%.2fh) should not beat ideal (%.2fh) by >5%%", out.Mechanism, out.Ideal)
	}
	if out.Mechanism > out.Ideal*1.5 {
		t.Errorf("mechanism (%.2fh) much worse than ideal (%.2fh); paper: nearly identical", out.Mechanism, out.Ideal)
	}
}

func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := Figure14(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Estimated should be within a modest factor of oracle (paper: very
	// small decrease at high load).
	if out.Estimated > out.Oracle*1.35 {
		t.Errorf("estimator JCT %.2fh vs oracle %.2fh: degradation too large\n%s", out.Estimated, out.Oracle, out.Report)
	}
}

func TestCostPoliciesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := CostPolicies(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if out.CostReduction < 1.05 {
		t.Errorf("min-cost reduction %.2fx, want > 1.05 (paper: ~1.4x)\n%s", out.CostReduction, out.Report)
	}
	if out.SLOViolations["min-cost-slo"] > out.SLOViolations["min-cost"] {
		t.Errorf("SLO-aware policy violates more SLOs than min-cost\n%s", out.Report)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := Table3(testOpt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Gap > 0.15 {
		t.Errorf("physical/simulated gap %.1f%%, want < 15%% (paper: <5%%)\n%s", 100*out.Gap, out.Report)
	}
	if out.FairnessGain < 1.0 {
		t.Errorf("het-aware JCT gain %.2fx, want >= 1\n%s", out.FairnessGain, out.Report)
	}
}
