package experiments

import (
	"fmt"
	"strings"

	"gavel/internal/cluster"
	"gavel/internal/workload"
)

// SweepOutcome carries the shape facts the benchmarks assert on.
type SweepOutcome struct {
	Report string
	// GainAtHighLoad maps "base->better" to the JCT improvement factor at
	// the highest swept rate.
	GainAtHighLoad map[string]float64
}

// Figure8 compares LAS baselines against heterogeneity-aware LAS (with and
// without space sharing), Gandiva ad-hoc packing, and AlloX on the
// continuous-single trace (paper Figure 8).
func Figure8(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{2, 4, 5.5}
	pols := []namedPolicy{lasAgnostic(), gavelLAS(), gavelLASSS(), gandivaSS(), alloxPolicy()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{})
	if err != nil {
		return nil, err
	}
	return sweepOutcome(s, "Figure 8: LAS policies, continuous-single trace",
		[][2]string{{"LAS", "Gavel"}, {"LAS", "Gavel w/ SS"}, {"LAS w/ Gandiva SS", "Gavel w/ SS"}}), nil
}

// Figure9 is Figure 8 on the continuous-multiple trace (70/25/5% scale
// factors; AlloX omitted since it handles only single-worker jobs, as in
// the paper's Figure 9).
func Figure9(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{1, 2, 2.8}
	pols := []namedPolicy{lasAgnostic(), gavelLAS(), gavelLASSS(), gandivaSS()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{MultiWorker: true})
	if err != nil {
		return nil, err
	}
	return sweepOutcome(s, "Figure 9: LAS policies, continuous-multiple trace",
		[][2]string{{"LAS", "Gavel"}, {"LAS", "Gavel w/ SS"}, {"LAS w/ Gandiva SS", "Gavel w/ SS"}}), nil
}

// Figure10 compares finish-time fairness (Themis) against its
// heterogeneity-aware counterpart on the continuous-multiple trace,
// reporting both JCT and the FTF rho CDF (paper Figure 10).
func Figure10(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{1, 2, 2.8}
	pols := []namedPolicy{ftfAgnostic(), gavelFTF()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{MultiWorker: true})
	if err != nil {
		return nil, err
	}
	out := sweepOutcome(s, "Figure 10: finish-time fairness, continuous-multiple trace",
		[][2]string{{"FTF", "Gavel"}})
	return out, nil
}

// Figure16 is the FIFO comparison on the continuous-single trace.
func Figure16(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{2, 4, 5.5}
	pols := []namedPolicy{fifoAgnostic(), gavelFIFO(), gavelFIFOSS()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{})
	if err != nil {
		return nil, err
	}
	return sweepOutcome(s, "Figure 16: FIFO policies, continuous-single trace",
		[][2]string{{"FIFO", "Gavel"}, {"FIFO", "Gavel w/ SS"}}), nil
}

// Figure17 is the FTF comparison (with AlloX) on the continuous-single
// trace.
func Figure17(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{2, 4, 5.5}
	pols := []namedPolicy{ftfAgnostic(), gavelFTF(), alloxPolicy()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{})
	if err != nil {
		return nil, err
	}
	return sweepOutcome(s, "Figure 17: FTF policies, continuous-single trace",
		[][2]string{{"FTF", "Gavel"}}), nil
}

// Figure18 is the FIFO comparison on the continuous-multiple trace.
func Figure18(opt Options) (*SweepOutcome, error) {
	opt = opt.withDefaults()
	rates := []float64{1, 2, 2.5}
	pols := []namedPolicy{fifoAgnostic(), gavelFIFO(), gavelFIFOSS()}
	s, err := sweep(opt, cluster.Simulated108(), pols, rates, workload.TraceOptions{MultiWorker: true})
	if err != nil {
		return nil, err
	}
	return sweepOutcome(s, "Figure 18: FIFO policies, continuous-multiple trace",
		[][2]string{{"FIFO", "Gavel"}, {"FIFO", "Gavel w/ SS"}}), nil
}

func sweepOutcome(s *sweepResult, title string, gains [][2]string) *SweepOutcome {
	out := &SweepOutcome{GainAtHighLoad: map[string]float64{}}
	var b strings.Builder
	b.WriteString(s.format(title))
	b.WriteByte('\n')
	b.WriteString(s.formatCDF())
	last := len(s.rates) - 1
	b.WriteByte('\n')
	for _, g := range gains {
		f := s.gain(g[0], g[1], last)
		out.GainAtHighLoad[g[0]+"->"+g[1]] = f
		fmt.Fprintf(&b, "improvement %s -> %s at %.1f jobs/hr: %.2fx\n", g[0], g[1], s.rates[last], f)
	}
	out.Report = b.String()
	return out
}
