package experiments

import (
	"fmt"
	"strings"
	"time"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/estimator"
	"gavel/internal/policy"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// Figure12Outcome reports policy solve time versus number of active jobs.
type Figure12Outcome struct {
	Report  string
	Sizes   []int
	Seconds map[string][]float64
}

// Figure12 measures how the LAS and hierarchical policy solve times scale
// with the number of active jobs, with and without space sharing, growing
// the cluster with the job count as in the paper (Figure 12).
func Figure12(sizes []int) (*Figure12Outcome, error) {
	if len(sizes) == 0 {
		sizes = []int{32, 128, 512}
	}
	out := &Figure12Outcome{Sizes: sizes, Seconds: map[string][]float64{}}
	kinds := []struct {
		label string
		make  func() policy.Policy
		ss    bool
	}{
		{"LAS", func() policy.Policy { return &policy.MaxMinFairness{} }, false},
		{"LAS w/ SS", func() policy.Policy { return &policy.MaxMinFairness{} }, true},
		{"Hierarchical", func() policy.Policy {
			return &policy.Hierarchical{EntityWeight: map[int]float64{0: 1, 1: 2, 2: 3}, MaxIterations: 6}
		}, false},
		{"Hierarchical w/ SS", func() policy.Policy {
			return &policy.Hierarchical{EntityWeight: map[int]float64{0: 1, 1: 2, 2: 3}, MaxIterations: 6}
		}, true},
	}
	for _, k := range kinds {
		for _, n := range sizes {
			in := scalingInput(n, k.ss)
			start := time.Now()
			if _, err := k.make().Allocate(in, nil); err != nil {
				return nil, fmt.Errorf("fig12 %s n=%d: %w", k.label, n, err)
			}
			out.Seconds[k.label] = append(out.Seconds[k.label], time.Since(start).Seconds())
		}
	}
	var b strings.Builder
	b.WriteString("Figure 12: policy solve time vs active jobs (cluster grows with jobs)\n")
	fmt.Fprintf(&b, "%-20s", "jobs:")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	for _, k := range kinds {
		fmt.Fprintf(&b, "%-20s", k.label)
		for _, v := range out.Seconds[k.label] {
			fmt.Fprintf(&b, "%9.3fs", v)
		}
		b.WriteByte('\n')
	}
	out.Report = b.String()
	return out, nil
}

// scalingInput builds a policy input with n jobs on a cluster with n/4
// devices of each type (matching the paper's setup where cluster size
// scales with job count), plus capped pair units when ss is set.
func scalingInput(n int, ss bool) *policy.Input {
	per := n / 4
	if per < 1 {
		per = 1
	}
	zoo := workload.Zoo()
	in := &policy.Input{
		Workers: []float64{float64(per), float64(per), float64(per)},
		Prices:  []float64{cluster.PriceV100, cluster.PriceP100, cluster.PriceK80},
	}
	jobs := make([]workload.Job, n)
	for m := 0; m < n; m++ {
		cfg := zoo[m%len(zoo)]
		jobs[m] = workload.Job{ID: m, Config: cfg, ScaleFactor: 1, Weight: 1, TotalSteps: 1e6}
		tput := make([]float64, 3)
		for t := range tput {
			if workload.Fits(cfg, t) {
				tput[t] = workload.Throughput(cfg, t)
			}
		}
		in.Jobs = append(in.Jobs, policy.JobInfo{
			ID: m, Weight: 1, Priority: 1, ScaleFactor: 1, Tput: tput,
			RemainingSteps: 1e6, TotalSteps: 1e6, ArrivalSeq: m,
			Entity: m % 3, NumActiveJobs: n,
		})
		in.Units = append(in.Units, core.Single(m, tput))
	}
	if ss {
		// Cap pairs at 2 per job, scanning neighbours (the simulator prunes
		// similarly; what matters here is that units grow linearly with n).
		count := make([]int, n)
		for a := 0; a < n; a++ {
			for d := 1; d <= 8 && count[a] < 2; d++ {
				b := (a + d) % n
				if a == b || count[b] >= 2 {
					continue
				}
				ta := make([]float64, 3)
				tb := make([]float64, 3)
				good := 0.0
				for t := 0; t < 3; t++ {
					ca, cb, ok := workload.Colocated(jobs[a].Config, jobs[b].Config, t)
					if !ok {
						continue
					}
					ta[t], tb[t] = ca, cb
					if ia, ib := in.Jobs[a].Tput[t], in.Jobs[b].Tput[t]; ia > 0 && ib > 0 {
						if g := ca/ia + cb/ib; g > good {
							good = g
						}
					}
				}
				if good > 1.05 {
					in.Units = append(in.Units, core.Pair(a, b, ta, tb))
					count[a]++
					count[b]++
				}
			}
		}
	}
	return in
}

// Figure13Outcome reports the round-length sweep and mechanism-vs-ideal
// comparison.
type Figure13Outcome struct {
	Report       string
	RoundLengths []float64
	JCTByRound   []float64 // hours, same order as RoundLengths
	Mechanism    float64   // hours at the default round length
	Ideal        float64   // hours with exact allocation execution
}

// Figure13 runs (a) the round-length sensitivity sweep and (b) the
// mechanism-vs-ideal comparison for heterogeneity-aware LAS (paper
// Figure 13).
func Figure13(opt Options) (*Figure13Outcome, error) {
	opt = opt.withDefaults()
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs, LambdaPerHour: 4.5, Seed: 31,
	})
	out := &Figure13Outcome{RoundLengths: []float64{360, 720, 1440, 2880}}
	out.JCTByRound = make([]float64, len(out.RoundLengths))
	err := parallelFor(len(out.RoundLengths), func(i int) error {
		rl := out.RoundLengths[i]
		r, err := simulator.Run(simulator.Config{
			Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
			Trace: trace, RoundSeconds: rl, Seed: 31,
		})
		if err != nil {
			return fmt.Errorf("fig13a round=%v: %w", rl, err)
		}
		out.JCTByRound[i] = r.AvgJCT(opt.Warmup)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Mechanism = out.JCTByRound[0]
	rIdeal, err := simulator.Run(simulator.Config{
		Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, IdealExecution: true, Seed: 31,
	})
	if err != nil {
		return nil, fmt.Errorf("fig13b ideal: %w", err)
	}
	out.Ideal = rIdeal.AvgJCT(opt.Warmup)

	var b strings.Builder
	b.WriteString("Figure 13a: average JCT vs round length (het-aware LAS)\n")
	for i, rl := range out.RoundLengths {
		fmt.Fprintf(&b, "  round %4.0fs: %.2f h\n", rl, out.JCTByRound[i])
	}
	b.WriteString("Figure 13b: mechanism vs ideal execution (360s rounds)\n")
	fmt.Fprintf(&b, "  mechanism: %.2f h   ideal: %.2f h   overhead: %.1f%%\n",
		out.Mechanism, out.Ideal, 100*(out.Mechanism/out.Ideal-1))
	out.Report = b.String()
	return out, nil
}

// Figure14Outcome reports the estimator's impact on the SS-aware LAS.
type Figure14Outcome struct {
	Report                  string
	Oracle, Estimated, NoSS float64 // avg JCT hours
}

// Figure14 compares the SS-aware LAS policy with oracle colocated
// throughputs, with estimated throughputs (matrix-completion fingerprint),
// and LAS without space sharing, on a 12-GPU cluster (paper Figure 14).
func Figure14(opt Options) (*Figure14Outcome, error) {
	opt = opt.withDefaults()
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs / 2, LambdaPerHour: 0.7, Seed: 41,
	})
	run := func(ss bool, prov simulator.ThroughputProvider) (float64, error) {
		r, err := simulator.Run(simulator.Config{
			Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
			Trace: trace, RoundSeconds: 360, SpaceSharing: ss,
			Provider: prov, Seed: 41,
		})
		if err != nil {
			return 0, err
		}
		return r.AvgJCT(opt.Warmup), nil
	}
	oracle, err := run(true, nil)
	if err != nil {
		return nil, fmt.Errorf("fig14 oracle: %w", err)
	}
	est, err := run(true, estimator.New(workload.Zoo(), workload.P100, 6, 41))
	if err != nil {
		return nil, fmt.Errorf("fig14 estimator: %w", err)
	}
	noSS, err := run(false, nil)
	if err != nil {
		return nil, fmt.Errorf("fig14 no-ss: %w", err)
	}
	out := &Figure14Outcome{Oracle: oracle, Estimated: est, NoSS: noSS}
	var b strings.Builder
	b.WriteString("Figure 14: throughput estimator impact (SS-aware LAS, 12-GPU cluster)\n")
	fmt.Fprintf(&b, "  Gavel w/ SS (oracle):    %.2f h\n", oracle)
	fmt.Fprintf(&b, "  Gavel w/ SS (estimated): %.2f h\n", est)
	fmt.Fprintf(&b, "  Gavel (no SS):           %.2f h\n", noSS)
	fmt.Fprintf(&b, "  estimator penalty vs oracle: %.1f%%\n", 100*(est/oracle-1))
	out.Report = b.String()
	return out, nil
}
