package experiments

import (
	"fmt"
	"strings"

	"gavel/internal/cluster"
	metrics "gavel/internal/obs/stats"
	"gavel/internal/policy"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// Figure19Outcome reports makespans (hours) per policy per trace size.
type Figure19Outcome struct {
	Report   string
	Sizes    []int
	Makespan map[string][]float64
}

// Figure19 compares makespan policies on static multi-worker traces of
// increasing size: agnostic FIFO, Gandiva packing, heterogeneity-aware
// makespan with and without space sharing (paper Figure 19).
func Figure19(opt Options) (*Figure19Outcome, error) {
	opt = opt.withDefaults()
	sizes := []int{opt.Jobs / 2, opt.Jobs}
	pols := []namedPolicy{
		{label: "FIFO", make: func(int64) policy.Policy { return &policy.Agnostic{Inner: policy.FIFO{}} }},
		{label: "Gandiva", ss: true, make: func(seed int64) policy.Policy { return policy.NewGandivaSpaceSharing(seed) }},
		{label: "Gavel", make: func(int64) policy.Policy { return policy.Makespan{} }},
		{label: "Gavel w/ SS", ss: true, make: func(int64) policy.Policy { return policy.Makespan{} }},
	}
	out := &Figure19Outcome{Sizes: sizes, Makespan: map[string][]float64{}}
	results := make([]*simulator.Result, len(pols)*len(sizes))
	err := parallelFor(len(results), func(i int) error {
		np, n := pols[i/len(sizes)], sizes[i%len(sizes)]
		trace := workload.GenerateTrace(workload.TraceOptions{NumJobs: n, MultiWorker: true, Seed: 11})
		r, err := runOnce(opt, np, cluster.Simulated108(), trace, 11)
		if err != nil {
			return fmt.Errorf("fig19 %s n=%d: %w", np.label, n, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		out.Makespan[pols[i/len(sizes)].label] = append(out.Makespan[pols[i/len(sizes)].label], r.Makespan/3600)
	}
	var b strings.Builder
	b.WriteString("Figure 19: makespan vs number of jobs, static-multiple trace\n")
	fmt.Fprintf(&b, "%-14s", "jobs:")
	for _, n := range sizes {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteByte('\n')
	for _, np := range pols {
		fmt.Fprintf(&b, "%-14s", np.label)
		for _, v := range out.Makespan[np.label] {
			fmt.Fprintf(&b, "%10.1f", v)
		}
		b.WriteByte('\n')
	}
	last := len(sizes) - 1
	fmt.Fprintf(&b, "improvement FIFO -> Gavel: %.2fx\n", out.Makespan["FIFO"][last]/out.Makespan["Gavel"][last])
	fmt.Fprintf(&b, "improvement Gandiva -> Gavel w/ SS: %.2fx\n", out.Makespan["Gandiva"][last]/out.Makespan["Gavel w/ SS"][last])
	out.Report = b.String()
	return out, nil
}

// Figure20Outcome reports average JCTs for high- and low-priority jobs.
type Figure20Outcome struct {
	Report                  string
	GainHighPri, GainLowPri float64
}

// Figure20 runs the LAS-with-priorities experiment: 20% of jobs are
// high-priority; heterogeneity-aware LAS should improve both classes
// (paper Figure 20).
func Figure20(opt Options) (*Figure20Outcome, error) {
	opt = opt.withDefaults()
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs, LambdaPerHour: 2.2, MultiWorker: true,
		HighPriorityFraction: 0.2, Seed: 5,
	})
	run := func(np namedPolicy) (hi, lo float64, err error) {
		r, err := runOnce(opt, np, cluster.Simulated108(), trace, 5)
		if err != nil {
			return 0, 0, err
		}
		var his, los []float64
		for _, j := range r.Jobs {
			if j.JCT != j.JCT { // NaN
				continue
			}
			if j.Priority > 1 {
				his = append(his, j.JCT/3600)
			} else {
				los = append(los, j.JCT/3600)
			}
		}
		return metrics.Mean(his), metrics.Mean(los), nil
	}
	basHi, basLo, err := run(namedPolicy{label: "LAS", make: func(int64) policy.Policy {
		return &policy.Agnostic{Inner: &policy.MaxMinFairness{UsePriorities: true}}
	}})
	if err != nil {
		return nil, err
	}
	gavHi, gavLo, err := run(namedPolicy{label: "Gavel", make: func(int64) policy.Policy {
		return &policy.MaxMinFairness{UsePriorities: true}
	}})
	if err != nil {
		return nil, err
	}
	out := &Figure20Outcome{GainHighPri: basHi / gavHi, GainLowPri: basLo / gavLo}
	var b strings.Builder
	b.WriteString("Figure 20: LAS with 20% high-priority jobs, continuous-multiple trace\n")
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "policy", "JCT high (h)", "JCT low (h)")
	fmt.Fprintf(&b, "%-12s %14.2f %14.2f\n", "LAS", basHi, basLo)
	fmt.Fprintf(&b, "%-12s %14.2f %14.2f\n", "Gavel", gavHi, gavLo)
	fmt.Fprintf(&b, "improvement: high-priority %.2fx, low-priority %.2fx\n", out.GainHighPri, out.GainLowPri)
	out.Report = b.String()
	return out, nil
}

// CostOutcome reports the §7.3 cost-policy comparison.
type CostOutcome struct {
	Report         string
	Cost           map[string]float64 // dollars
	SLOViolations  map[string]int
	CostReduction  float64 // max-throughput cost / min-cost cost
	SLOCostPenalty float64 // min-cost-slo cost / min-cost cost
}

// CostPolicies runs the cost experiment: a ResNet-50 + A3C workload with
// per-job SLOs, under max-total-throughput, min-cost, and min-cost-w/-SLOs
// policies. The paper reports the min-cost policy cutting cost ~1.4x while
// violating ~35% of SLOs, and the SLO-aware variant eliminating violations
// for a small cost increase.
func CostPolicies(opt Options) (*CostOutcome, error) {
	opt = opt.withDefaults()
	// Scaled-down cost trace: same family/SLO structure, durations scaled
	// so the batch completes in a tractable number of rounds.
	trace := workload.CostTrace(opt.Jobs, 3)
	for i := range trace {
		trace[i].TotalSteps /= 10
		trace[i].RefDuration /= 10
		trace[i].SLO /= 10
	}
	pols := []namedPolicy{
		{label: "max-throughput", make: func(int64) policy.Policy { return policy.MaxTotalThroughput{} }},
		{label: "min-cost", make: func(int64) policy.Policy { return &policy.MinCost{} }},
		{label: "min-cost-slo", make: func(int64) policy.Policy { return &policy.MinCost{EnforceSLOs: true} }},
	}
	out := &CostOutcome{Cost: map[string]float64{}, SLOViolations: map[string]int{}}
	results := make([]*simulator.Result, len(pols))
	err := parallelFor(len(pols), func(i int) error {
		r, err := runOnce(opt, pols[i], cluster.Simulated108(), trace, 3)
		if err != nil {
			return fmt.Errorf("cost %s: %w", pols[i].label, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("Cost policies (§7.3): ResNet-50 + A3C workload with SLOs\n")
	fmt.Fprintf(&b, "%-16s %12s %14s %12s\n", "policy", "cost ($)", "SLO violations", "unfinished")
	for i, np := range pols {
		r := results[i]
		out.Cost[np.label] = r.TotalCost
		out.SLOViolations[np.label] = r.SLOViolations
		fmt.Fprintf(&b, "%-16s %12.0f %14d %12d\n", np.label, r.TotalCost, r.SLOViolations, r.Unfinished)
	}
	out.CostReduction = out.Cost["max-throughput"] / out.Cost["min-cost"]
	out.SLOCostPenalty = out.Cost["min-cost-slo"] / out.Cost["min-cost"]
	fmt.Fprintf(&b, "cost reduction (max-throughput -> min-cost): %.2fx\n", out.CostReduction)
	fmt.Fprintf(&b, "SLO-aware cost premium over min-cost: %.2fx\n", out.SLOCostPenalty)
	out.Report = b.String()
	return out, nil
}

// Table3Outcome reports physical-vs-simulation agreement.
type Table3Outcome struct {
	Report string
	// Gap is the max relative |physical - simulated| across rows.
	Gap float64
	// FairnessGain and MakespanGain are the het-aware improvements on the
	// physical-mode cluster.
	FairnessGain, MakespanGain float64
}

// Table3 reproduces the end-to-end physical-cluster comparison: a
// continuous trace under LAS vs heterogeneity-aware LAS (average JCT) and
// a static trace under Gandiva vs heterogeneity-aware makespan. "Physical"
// runs use testbed mode (throughput noise + checkpoint overhead) on the
// 48-GPU cluster shape; "simulation" runs are noise-free. The paper reports
// het-aware gains up to 1.4x and a physical/simulated gap under 5%.
func Table3(opt Options) (*Table3Outcome, error) {
	opt = opt.withDefaults()
	spec := cluster.Physical48()
	continuous := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs / 2, LambdaPerHour: 2.2, Seed: 21,
	})
	static := workload.GenerateTrace(workload.TraceOptions{NumJobs: opt.Jobs, Seed: 22})

	type row struct {
		trace, system, objective string
		physical, simulated      float64
	}
	// Eight independent runs (4 systems x physical/simulation): run them
	// over the worker pool, read values back by fixed index.
	mkGavel := namedPolicy{label: "Gavel", make: func(int64) policy.Policy { return policy.Makespan{} }}
	type cell struct {
		np       namedPolicy
		trace    []workload.Job
		physical bool
	}
	cells := []cell{
		{gavelLAS(), continuous, true}, {gavelLAS(), continuous, false},
		{lasAgnostic(), continuous, true}, {lasAgnostic(), continuous, false},
		{mkGavel, static, true}, {mkGavel, static, false},
		{gandivaSS(), static, true}, {gandivaSS(), static, false},
	}
	rs := make([]*simulator.Result, len(cells))
	err := parallelFor(len(cells), func(i int) error {
		c := cells[i]
		cfg := simulator.Config{
			Cluster: spec, Policy: c.np.make(9), Trace: c.trace,
			RoundSeconds: 1200, SpaceSharing: c.np.ss, Seed: 9,
		}
		if c.physical {
			cfg.TestbedNoise = 0.04
			cfg.CheckpointSeconds = 5
		}
		var runErr error
		rs[i], runErr = simulator.Run(cfg)
		return runErr
	})
	if err != nil {
		return nil, err
	}
	gavelJCTp, gavelJCTs := rs[0].AvgJCT(opt.Warmup), rs[1].AvgJCT(opt.Warmup)
	lasJCTp, lasJCTs := rs[2].AvgJCT(opt.Warmup), rs[3].AvgJCT(opt.Warmup)
	gavelMKp, gavelMKs := rs[4].Makespan/3600, rs[5].Makespan/3600
	gandivaMKp, gandivaMKs := rs[6].Makespan/3600, rs[7].Makespan/3600

	rows := []row{
		{"continuous", "Gavel", "Average JCT (h)", gavelJCTp, gavelJCTs},
		{"continuous", "Baseline LAS", "Average JCT (h)", lasJCTp, lasJCTs},
		{"static", "Gavel", "Makespan (h)", gavelMKp, gavelMKs},
		{"static", "Gandiva", "Makespan (h)", gandivaMKp, gandivaMKs},
	}
	out := &Table3Outcome{
		FairnessGain: lasJCTp / gavelJCTp,
		MakespanGain: gandivaMKp / gavelMKp,
	}
	var b strings.Builder
	b.WriteString("Table 3: physical (testbed-mode) vs simulation\n")
	fmt.Fprintf(&b, "%-12s %-14s %-18s %10s %10s %6s\n", "trace", "system", "objective", "physical", "simulated", "gap")
	for _, r := range rows {
		gap := rel(r.physical, r.simulated)
		if gap > out.Gap {
			out.Gap = gap
		}
		fmt.Fprintf(&b, "%-12s %-14s %-18s %10.2f %10.2f %5.1f%%\n",
			r.trace, r.system, r.objective, r.physical, r.simulated, 100*gap)
	}
	fmt.Fprintf(&b, "het-aware JCT gain (physical): %.2fx; makespan gain vs Gandiva: %.2fx; max phys/sim gap: %.1f%%\n",
		out.FairnessGain, out.MakespanGain, 100*out.Gap)
	out.Report = b.String()
	return out, nil
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}
