package experiments

import "testing"

func TestAblationRefinementPass(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := AblationRefinementPass(Options{Jobs: 50, Warmup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.JCT["max-min (refined)"] > out.JCT["max-min (floor only)"]*1.001 {
		t.Errorf("refinement made JCT worse: %v", out.JCT)
	}
}

func TestAblationPairCap(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	out, err := AblationPairCap(Options{Jobs: 40, Warmup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.JCT) != 3 {
		t.Fatalf("want 3 cap points, got %v", out.JCT)
	}
}
