package experiments

import (
	"fmt"
	"strings"

	"gavel/internal/cluster"
	"gavel/internal/workload"
)

// Figure1 reproduces the paper's Figure 1: per-model throughput (normalized
// to K80) and dollar-normalized throughput across accelerator types, one
// representative configuration per model family.
func Figure1() string {
	var b strings.Builder
	prices := []float64{cluster.PriceV100, cluster.PriceP100, cluster.PriceK80}
	reps := representativeConfigs()

	b.WriteString("Figure 1a: throughput relative to K80\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s\n", "model", "V100", "P100", "K80")
	for _, c := range reps {
		k := workload.Throughput(c, workload.K80)
		fmt.Fprintf(&b, "%-22s %8.2f %8.2f %8.2f\n", c.Name(),
			workload.Throughput(c, workload.V100)/k,
			workload.Throughput(c, workload.P100)/k, 1.0)
	}
	b.WriteString("\nFigure 1b: dollar-normalized throughput (iters/$, relative to K80)\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %s\n", "model", "V100", "P100", "K80", "best")
	for _, c := range reps {
		base := workload.DollarNormalized(c, workload.K80, prices[workload.K80])
		vals := []float64{
			workload.DollarNormalized(c, workload.V100, prices[workload.V100]) / base,
			workload.DollarNormalized(c, workload.P100, prices[workload.P100]) / base,
			1.0,
		}
		best := workload.TypeNames[argmax(vals)]
		fmt.Fprintf(&b, "%-22s %8.2f %8.2f %8.2f %s\n", c.Name(), vals[0], vals[1], vals[2], best)
	}
	return b.String()
}

func argmax(v []float64) int {
	bi := 0
	for i, x := range v {
		if x > v[bi] {
			bi = i
		}
	}
	return bi
}

func representativeConfigs() []workload.Config {
	seen := map[workload.ModelFamily]bool{}
	var reps []workload.Config
	for _, c := range workload.Zoo() {
		if !seen[c.Family] {
			seen[c.Family] = true
			reps = append(reps, c)
		}
	}
	return reps
}

// Table2 lists the model zoo (the paper's Table 2).
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: models used in evaluation\n")
	fmt.Fprintf(&b, "%-22s %-42s %s\n", "model", "task", "batch size")
	for _, c := range workload.Zoo() {
		fmt.Fprintf(&b, "%-22s %-42s %d\n", c.Family.String(), c.Task, c.BatchSize)
	}
	fmt.Fprintf(&b, "total configurations: %d\n", len(workload.Zoo()))
	return b.String()
}

// Figure15 renders the colocation heat map: combined normalized throughput
// of every model pair space-sharing a P100 (0 = cannot colocate).
func Figure15() string {
	reps := workload.Zoo()
	var b strings.Builder
	b.WriteString("Figure 15: space-sharing performance on a P100\n")
	b.WriteString("cell = combined normalized throughput (a/iso_a + b/iso_b); '-' = does not fit\n")
	fmt.Fprintf(&b, "%-20s", "")
	for i := range reps {
		fmt.Fprintf(&b, "%5d", i)
	}
	b.WriteByte('\n')
	for i, a := range reps {
		fmt.Fprintf(&b, "%3d %-16s", i, truncate(a.Name(), 16))
		for _, bcfg := range reps {
			g := workload.ColocationGain(a, bcfg, workload.P100)
			if g == 0 {
				fmt.Fprintf(&b, "%5s", "-")
			} else {
				fmt.Fprintf(&b, "%5.2f", g)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
