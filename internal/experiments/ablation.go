package experiments

import (
	"fmt"
	"strings"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

// AblationOutcome reports a design-choice ablation.
type AblationOutcome struct {
	Report string
	// JCT maps variant label -> average JCT hours.
	JCT map[string]float64
}

// maxMinNoRefine is MaxMinFairness with the second ("soak up leftovers")
// LP pass disabled: it returns the raw max-min solution. Used only by the
// ablation to quantify what the refinement buys.
type maxMinNoRefine struct{}

func (maxMinNoRefine) Name() string { return "max_min_no_refine" }

func (maxMinNoRefine) Allocate(in *policy.Input, ctx *policy.SolveContext) (*core.Allocation, error) {
	// Reimplement the single-pass LP via the exported building blocks so
	// the ablation cannot drift from the real policy's constraint set.
	full := &policy.MaxMinFairness{}
	alloc, err := full.Allocate(in, ctx)
	if err != nil {
		return nil, err
	}
	// Degrade: rescale every unit row so each job receives exactly its
	// fairness floor (the minimum normalized throughput across jobs),
	// mimicking a solver that stops at the max-min optimum without the
	// Pareto-improving pass.
	minNorm := -1.0
	norms := make([]float64, len(in.Jobs))
	for m := range in.Jobs {
		eq := core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
		if eq <= 0 {
			continue
		}
		norms[m] = alloc.EffectiveThroughput(m) / eq
		if minNorm < 0 || norms[m] < minNorm {
			minNorm = norms[m]
		}
	}
	if minNorm <= 0 {
		return alloc, nil
	}
	for ui := range alloc.Units {
		u := &alloc.Units[ui]
		worst := 1.0
		for _, m := range u.Jobs {
			if norms[m] > 0 {
				if f := minNorm / norms[m]; f < worst {
					worst = f
				}
			}
		}
		for j := range alloc.X[ui] {
			alloc.X[ui][j] *= worst
		}
	}
	return alloc, nil
}

// AblationRefinementPass quantifies the second LP pass of MaxMinFairness
// (fix the fairness floor, then maximize total normalized throughput).
// Without it the allocation satisfies max-min fairness but strands the
// capacity that non-bottlenecked jobs could use; the paper's water-filling
// discussion (§4.3) motivates exactly this.
func AblationRefinementPass(opt Options) (*AblationOutcome, error) {
	opt = opt.withDefaults()
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs, LambdaPerHour: 4.0, Seed: 51,
	})
	out := &AblationOutcome{JCT: map[string]float64{}}
	for _, v := range []namedPolicy{
		{label: "max-min (refined)", make: func(int64) policy.Policy { return &policy.MaxMinFairness{} }},
		{label: "max-min (floor only)", make: func(int64) policy.Policy { return maxMinNoRefine{} }},
	} {
		r, err := runOnce(opt, v, cluster.Simulated108(), trace, 51)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.label, err)
		}
		out.JCT[v.label] = r.AvgJCT(opt.Warmup)
	}
	var b strings.Builder
	b.WriteString("Ablation: max-min refinement pass (soak up leftover capacity)\n")
	for _, l := range []string{"max-min (refined)", "max-min (floor only)"} {
		fmt.Fprintf(&b, "  %-22s %.2f h\n", l, out.JCT[l])
	}
	fmt.Fprintf(&b, "  refinement gain: %.2fx\n", out.JCT["max-min (floor only)"]/out.JCT["max-min (refined)"])
	out.Report = b.String()
	return out, nil
}

// AblationPairCap quantifies the space-sharing candidate cap
// (Config.MaxPairsPerJob): the paper notes (§3.1) that although the
// throughput matrix grows quadratically with jobs, "in practice we only
// need to consider combinations that actually perform well".
func AblationPairCap(opt Options) (*AblationOutcome, error) {
	opt = opt.withDefaults()
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: opt.Jobs / 2, LambdaPerHour: 0.7, Seed: 52,
	})
	out := &AblationOutcome{JCT: map[string]float64{}}
	var b strings.Builder
	b.WriteString("Ablation: space-sharing candidate cap (MaxPairsPerJob)\n")
	for _, pairCap := range []int{1, 4, 12} {
		r, err := simulator.Run(simulator.Config{
			Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
			Trace: trace, RoundSeconds: 360, SpaceSharing: true,
			MaxPairsPerJob: pairCap, Seed: 52,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation cap=%d: %w", pairCap, err)
		}
		label := fmt.Sprintf("cap=%d", pairCap)
		out.JCT[label] = r.AvgJCT(opt.Warmup)
		fmt.Fprintf(&b, "  %-8s avg JCT %.2f h   policy time %v\n", label, out.JCT[label], r.PolicyTime.Round(1e6))
	}
	out.Report = b.String()
	return out, nil
}

// String implements fmt.Stringer.
func (o *AblationOutcome) String() string { return o.Report }
