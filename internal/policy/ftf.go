package policy

import (
	"fmt"
	"math"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// FinishTimeFairness is the heterogeneity-aware Themis policy (§4.2):
// minimize the maximum finish-time-fairness ratio
//
//	rho(m, X) = (elapsed_m + steps_m / throughput(m, X)) /
//	            (elapsed_m + steps_m / throughput(m, X^isolated))
//
// where X^isolated gives each of the n active jobs a 1/n share of every
// accelerator. rho <= 1 means sharing made the job no slower than its
// isolated share would have.
//
// The program min_X max_m rho is not linear (throughput appears in a
// denominator), so we binary-search the optimal rho r*: for fixed r the
// constraint rho(m, X) <= r rewrites to the linear
//
//	throughput(m, X) >= steps_m / (r * d_m - elapsed_m)
//
// with d_m the (constant) isolated denominator, and feasibility is one LP.
type FinishTimeFairness struct {
	// Tol is the relative binary-search tolerance (default 1e-3).
	Tol float64
}

// Name implements Policy.
func (p *FinishTimeFairness) Name() string { return "finish_time_fairness" }

// Allocate implements Policy.
func (p *FinishTimeFairness) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	tol := p.Tol
	if tol <= 0 {
		tol = 1e-3
	}

	// Isolated denominators d_m.
	d := make([]float64, len(in.Jobs))
	active := 0
	for m := range in.Jobs {
		j := &in.Jobs[m]
		n := float64(j.NumActiveJobs)
		if n < 1 {
			n = float64(len(in.Jobs))
		}
		iso := core.EqualShareThroughput(j.Tput, in.Workers) / n
		if !core.Finite(iso) || j.RemainingSteps <= 0 {
			d[m] = 0
			continue
		}
		d[m] = j.Elapsed + j.RemainingSteps/iso
		active++
	}
	if active == 0 {
		return emptyAllocation(in), nil
	}

	feasible := func(r float64) (*core.Allocation, bool) {
		pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
		for m := range in.Jobs {
			if d[m] == 0 {
				continue
			}
			budget := r*d[m] - in.Jobs[m].Elapsed
			if budget <= 0 {
				return nil, false // job cannot meet ratio r no matter what
			}
			need := in.Jobs[m].RemainingSteps / budget
			terms := pr.ThroughputTerms(m, 1)
			// Also reward throughput so the feasible point is not lazy.
			fastest := core.MaxThroughput(in.Jobs[m].Tput)
			if core.Finite(fastest) {
				for _, tm := range terms {
					pr.P.AddObj(tm.Var, tm.Coeff/fastest)
				}
			}
			pr.AddRow(terms, lp.GE, need, fmt.Sprintf("r:%d", in.Jobs[m].ID))
		}
		res, err := ctx.Solve("ftf/feas", pr.P, pr.ColumnIDs())
		if err != nil || res.Status != lp.Optimal {
			return nil, false
		}
		return pr.Extract(res.X), true
	}

	lo, hi := 0.0, 1.0
	var best *core.Allocation
	// Grow hi until feasible (rho can exceed 1 under heavy load).
	for i := 0; i < 40; i++ {
		if a, ok := feasible(hi); ok {
			best = a
			break
		}
		lo = hi
		hi *= 2
	}
	if best == nil {
		return nil, fmt.Errorf("ftf: no feasible rho up to %v", hi)
	}
	for hi-lo > tol*hi {
		mid := (lo + hi) / 2
		if a, ok := feasible(mid); ok {
			best, hi = a, mid
		} else {
			lo = mid
		}
	}
	return best, nil
}

// RhoValue returns the finish-time-fairness ratio of job m under alloc,
// using the same isolated-share denominator as the policy. Infinite when
// the job receives no throughput.
func RhoValue(in *Input, alloc *core.Allocation, m int) float64 {
	j := &in.Jobs[m]
	n := float64(j.NumActiveJobs)
	if n < 1 {
		n = float64(len(in.Jobs))
	}
	iso := core.EqualShareThroughput(j.Tput, in.Workers) / n
	if !core.Finite(iso) || j.RemainingSteps <= 0 {
		return 1
	}
	den := j.Elapsed + j.RemainingSteps/iso
	tp := alloc.EffectiveThroughput(m)
	if tp <= 0 {
		return math.Inf(1)
	}
	return (j.Elapsed + j.RemainingSteps/tp) / den
}
