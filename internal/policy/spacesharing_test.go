package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/core"
)

// withPairs appends space-sharing pair units to an input: each pair keeps
// ~85% of both members' isolated throughput (a profitable packing).
func withPairs(in *Input, pairs [][2]int) *Input {
	for _, p := range pairs {
		a, b := p[0], p[1]
		ta := make([]float64, len(in.Workers))
		tb := make([]float64, len(in.Workers))
		for j := range in.Workers {
			ta[j] = in.Jobs[a].Tput[j] * 0.85
			tb[j] = in.Jobs[b].Tput[j] * 0.85
		}
		in.Units = append(in.Units, core.Pair(a, b, ta, tb))
	}
	return in
}

// TestSSAwareMaxMinUsesPairsUnderContention verifies §3.1's colocation
// property: with space sharing available, the max-min objective is at
// least as good as without it, and under contention the allocation
// actually uses pair units.
func TestSSAwareMaxMinUsesPairsUnderContention(t *testing.T) {
	// 3 jobs, 1 device of each of 2 types: heavy contention.
	base := paperExampleInput()
	plain, err := (&MaxMinFairness{}).Allocate(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := withPairs(paperExampleInput(), [][2]int{{0, 1}, {1, 2}, {0, 2}})
	packed, err := (&MaxMinFairness{}).Allocate(ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := packed.Validate(ss.scaleFactors(), ss.Workers); err != nil {
		t.Fatalf("invalid SS allocation: %v", err)
	}
	minNorm := func(in *Input, a *core.Allocation) float64 {
		worst := 1e18
		for m := range in.Jobs {
			n := a.EffectiveThroughput(m) / core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
			if n < worst {
				worst = n
			}
		}
		return worst
	}
	if minNorm(ss, packed) < minNorm(base, plain)-1e-6 {
		t.Errorf("space sharing reduced the max-min objective: %v < %v",
			minNorm(ss, packed), minNorm(base, plain))
	}
	pairTime := 0.0
	for ui := len(ss.Jobs); ui < len(ss.Units); ui++ {
		for _, x := range packed.X[ui] {
			pairTime += x
		}
	}
	if pairTime <= 1e-6 {
		t.Error("profitable pairs never used under contention")
	}
}

// Property: with profitable pairs available, no policy's allocation ever
// violates the "each job in at most one running combination" budget
// (sum over C_m of X <= 1, §3.1).
func TestPropertySSAllocationsValid(t *testing.T) {
	pols := []Policy{&MaxMinFairness{}, FIFO{}, Makespan{}, MaxTotalThroughput{}, &MinCost{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 2+rng.Intn(5), 2)
		var pairs [][2]int
		for k := 0; k < 3; k++ {
			a, b := rng.Intn(len(in.Jobs)), rng.Intn(len(in.Jobs))
			if a != b {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		in = withPairs(in, pairs)
		for _, p := range pols {
			alloc, err := p.Allocate(in, nil)
			if err != nil {
				return false
			}
			if alloc.Validate(in.scaleFactors(), in.Workers) != nil {
				return false
			}
			for m := range in.Jobs {
				if alloc.JobTimeFraction(m) > 1+1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Colocation property from §4.4: "solutions with colocation are always at
// least as good as without colocation" — checked for the makespan policy.
func TestColocationNeverHurtsMakespan(t *testing.T) {
	base := paperExampleInput()
	plain, err := (Makespan{}).Allocate(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := withPairs(paperExampleInput(), [][2]int{{0, 1}})
	packed, err := (Makespan{}).Allocate(ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if MakespanValue(ss, packed) > MakespanValue(base, plain)*(1+1e-6) {
		t.Errorf("colocation worsened makespan: %v > %v",
			MakespanValue(ss, packed), MakespanValue(base, plain))
	}
}
