package policy

import (
	"fmt"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// PlacementAwareMaxMin is the §3.1 "Placement Sensitivity" transformation
// applied to the max-min fairness policy: every accelerator type is split
// into a consolidated and an unconsolidated virtual worker type with
// distinct throughputs (the two extreme points of the placement space),
// and the two columns share the physical type's capacity. Distributed jobs
// whose models are communication-bound then receive consolidated time in
// the optimum, while compact-weight models absorb the fragmented capacity.
//
// Input contract: JobInfo.Tput carries the *consolidated* throughputs (as
// elsewhere); UnconsolidatedTput supplies the spread-placement values per
// job. Jobs absent from UnconsolidatedTput fall back to their consolidated
// values scaled by DefaultSpreadFactor (1 for single-worker jobs, which
// are placement-insensitive).
type PlacementAwareMaxMin struct {
	// UnconsolidatedTput[jobIndex][type] gives spread-placement
	// throughputs; may be nil for single-worker-only inputs.
	UnconsolidatedTput map[int][]float64
}

// Name implements Policy.
func (p *PlacementAwareMaxMin) Name() string { return "max_min_fairness_placement" }

// Allocate implements Policy. Pair units are not supported in combination
// with placement splitting (the paper evaluates SS for single-worker jobs,
// which are placement-insensitive); pairs in the input are ignored.
func (p *PlacementAwareMaxMin) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	numTypes := len(in.Workers)

	// Virtual universe: columns [0, numTypes) consolidated, [numTypes,
	// 2*numTypes) unconsolidated.
	virtWorkers := make([]float64, 2*numTypes)
	for j, w := range in.Workers {
		virtWorkers[j] = w
		virtWorkers[numTypes+j] = w
	}
	virtUnits := make([]core.Unit, len(in.Jobs))
	for m := range in.Jobs {
		cons := in.Jobs[m].Tput
		uncons := p.unconsolidated(in, m)
		vt := make([]float64, 2*numTypes)
		copy(vt, cons)
		copy(vt[numTypes:], uncons)
		// Keyed by the external job ID so the placement LP's basis survives
		// job churn like every other policy's.
		virtUnits[m] = core.Single(m, vt).Keyed(core.JobKey(in.Jobs[m].ID))
	}

	pr := core.NewProgram(lp.Maximize, virtUnits, in.scaleFactors(), virtWorkers)
	// The consolidated and unconsolidated columns of a physical type share
	// its devices: sum over both halves <= count.
	for j := 0; j < numTypes; j++ {
		var terms []lp.Term
		for ui := range virtUnits {
			sf := float64(in.Jobs[ui].ScaleFactor)
			if sf < 1 {
				sf = 1
			}
			for _, col := range []int{j, numTypes + j} {
				if v := pr.XVar[ui][col]; v >= 0 {
					terms = append(terms, lp.Term{Var: v, Coeff: sf})
				}
			}
		}
		if len(terms) > 0 {
			pr.AddRow(terms, lp.LE, in.Workers[j], fmt.Sprintf("pc:%d", j))
		}
	}

	t := pr.AddVar(1, "t")
	any := false
	for m := range in.Jobs {
		w := in.Jobs[m].Weight
		if w <= 0 {
			continue
		}
		// Normalize by the consolidated equal-share throughput so the
		// objective stays comparable with the plain policy.
		norm := core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
		if !core.Finite(norm) {
			continue
		}
		sf := float64(in.Jobs[m].ScaleFactor)
		if sf < 1 {
			sf = 1
		}
		terms := pr.ThroughputTerms(m, sf/(w*norm))
		terms = append(terms, lp.Term{Var: t, Coeff: -1})
		pr.AddRow(terms, lp.GE, 0, fmt.Sprintf("r:%d", in.Jobs[m].ID))
		any = true
	}
	if !any {
		return emptyAllocation(in), nil
	}
	res, err := ctx.Solve("placement", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("placement max-min LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("placement max-min LP: %v", res.Status)
	}
	virt := pr.Extract(res.X)

	// Fold the virtual columns back onto the physical types for the
	// mechanism; the consolidated/unconsolidated preference is recovered
	// by the mechanism's best-fit server placement.
	X := make([][]float64, len(in.Units))
	for ui := range in.Units {
		X[ui] = make([]float64, numTypes)
	}
	for m := range in.Jobs {
		for j := 0; j < numTypes; j++ {
			X[m][j] = virt.X[m][j] + virt.X[m][numTypes+j]
			if X[m][j] > 1 {
				X[m][j] = 1
			}
		}
	}
	return &core.Allocation{Units: in.Units, X: X}, nil
}

// VirtualAllocation exposes the raw consolidated/unconsolidated split for
// introspection and tests: it re-solves and returns the 2*numTypes-column
// allocation.
func (p *PlacementAwareMaxMin) unconsolidated(in *Input, m int) []float64 {
	if u, ok := p.UnconsolidatedTput[m]; ok && len(u) == len(in.Workers) {
		return u
	}
	// Single-worker jobs are placement-insensitive; multi-worker jobs
	// without data default to a conservative 60% of consolidated.
	out := make([]float64, len(in.Workers))
	factor := 1.0
	if in.Jobs[m].ScaleFactor > 1 {
		factor = 0.6
	}
	for j, v := range in.Jobs[m].Tput {
		out[j] = v * factor
	}
	return out
}
