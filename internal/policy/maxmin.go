package policy

import (
	"fmt"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// MaxMinFairness is the heterogeneity-aware Least Attained Service policy
// (§4.1): it maximizes the minimum weighted normalized effective throughput
//
//	max_X min_m (scale_m / w_m) * throughput(m, X) / throughput(m, X^equal)
//
// over valid allocations. With space-sharing pair units in the input it is
// the paper's "Gavel w/ SS" policy. After the max-min LP it runs a second
// LP that maximizes the total normalized throughput subject to the computed
// minimum, so non-bottlenecked jobs soak up leftover capacity (a one-step
// approximation of water filling; see WaterFilledMaxMin for the full
// iterative procedure used by the hierarchical experiments).
type MaxMinFairness struct {
	// UsePriorities folds JobInfo.Priority into the weights (the
	// LAS-with-priorities experiment, Figure 20).
	UsePriorities bool
}

// Name implements Policy.
func (p *MaxMinFairness) Name() string { return "max_min_fairness" }

// Allocate implements Policy.
func (p *MaxMinFairness) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	coeff, ok := p.normalizers(in)
	if !ok {
		return emptyAllocation(in), nil
	}

	// Pass 1: maximize the minimum normalized throughput t.
	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	t := pr.AddVar(1, "t")
	for m := range in.Jobs {
		if coeff[m] == 0 {
			continue
		}
		terms := pr.ThroughputTerms(m, coeff[m])
		terms = append(terms, lp.Term{Var: t, Coeff: -1})
		pr.AddRow(terms, lp.GE, 0, fmt.Sprintf("r:%d", in.Jobs[m].ID))
	}
	res, err := ctx.Solve("maxmin/minmax", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("max-min LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("max-min LP: %v", res.Status)
	}
	tStar := res.X[t]

	// Pass 2: fix the fairness floor slightly below t*, maximize total
	// normalized throughput so leftover capacity is not wasted.
	pr2 := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	for m := range in.Jobs {
		if coeff[m] == 0 {
			continue
		}
		terms := pr2.ThroughputTerms(m, coeff[m])
		for _, tm := range terms {
			pr2.P.AddObj(tm.Var, tm.Coeff)
		}
		pr2.AddRow(terms, lp.GE, tStar*(1-1e-6), fmt.Sprintf("r:%d", in.Jobs[m].ID))
	}
	res2, err := ctx.Solve("maxmin/refine", pr2.P, pr2.ColumnIDs())
	if err != nil || res2.Status != lp.Optimal {
		// The floor should always be feasible; fall back to pass 1 if the
		// refinement hits numerical trouble.
		return pr.Extract(res.X), nil
	}
	return pr2.Extract(res2.X), nil
}

// normalizers computes scale_m / (w_m * throughput(m, X^equal)) per job;
// ok is false when no job is schedulable.
func (p *MaxMinFairness) normalizers(in *Input) ([]float64, bool) {
	coeff := make([]float64, len(in.Jobs))
	any := false
	for m := range in.Jobs {
		j := &in.Jobs[m]
		w := j.Weight
		if p.UsePriorities {
			w = effectiveWeight(j)
		}
		if w <= 0 {
			continue
		}
		norm := core.EqualShareThroughput(j.Tput, in.Workers)
		if !core.Finite(norm) {
			continue
		}
		sf := float64(j.ScaleFactor)
		if sf < 1 {
			sf = 1
		}
		coeff[m] = sf / (w * norm)
		any = true
	}
	return coeff, any
}
