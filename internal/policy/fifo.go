package policy

import (
	"fmt"
	"sort"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// FIFO is the heterogeneity-aware first-in-first-out policy (§4.2): earlier
// jobs are placed on the fastest accelerators they can use, expressed as
//
//	max_X sum_m (M - m) * throughput(m, X) / throughput(m, X^fastest)
//
// where jobs are enumerated in arrival order. With pair units in the input
// this becomes the paper's SS-aware FIFO.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Allocate implements Policy.
func (FIFO) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	// Rank jobs by arrival: rank 0 = earliest.
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Jobs[order[a]].ArrivalSeq < in.Jobs[order[b]].ArrivalSeq
	})
	M := float64(len(in.Jobs))

	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	for rank, m := range order {
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if !core.Finite(fastest) {
			continue
		}
		weight := M - float64(rank)
		for _, tm := range pr.ThroughputTerms(m, weight/fastest) {
			pr.P.AddObj(tm.Var, tm.Coeff)
		}
	}
	res, err := ctx.Solve("fifo", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("fifo LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("fifo LP: %v", res.Status)
	}
	return pr.Extract(res.X), nil
}

// ShortestJobFirst minimizes the completion time of the job that can finish
// soonest (§4.2), then fills remaining capacity FIFO-style. The "shortest"
// job is the one with minimum remaining_steps / fastest_throughput.
type ShortestJobFirst struct{}

// Name implements Policy.
func (ShortestJobFirst) Name() string { return "shortest_job_first" }

// Allocate implements Policy.
func (ShortestJobFirst) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	shortest, best := -1, 0.0
	for m := range in.Jobs {
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if !core.Finite(fastest) || in.Jobs[m].RemainingSteps <= 0 {
			continue
		}
		d := in.Jobs[m].RemainingSteps / fastest
		if shortest == -1 || d < best {
			shortest, best = m, d
		}
	}
	if shortest == -1 {
		return emptyAllocation(in), nil
	}

	// Maximize the shortest job's throughput with a large primary weight,
	// breaking ties by total normalized throughput so the rest of the
	// cluster stays busy. A single LP keeps this policy cheap.
	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	const primary = 1e6
	for m := range in.Jobs {
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if !core.Finite(fastest) {
			continue
		}
		w := 1.0
		if m == shortest {
			w = primary
		}
		for _, tm := range pr.ThroughputTerms(m, w/fastest) {
			pr.P.AddObj(tm.Var, tm.Coeff)
		}
	}
	res, err := ctx.Solve("sjf", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("sjf LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("sjf LP: %v", res.Status)
	}
	return pr.Extract(res.X), nil
}
