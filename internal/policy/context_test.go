package policy

import (
	"math"
	"testing"

	"gavel/internal/core"
	"gavel/internal/workload"
)

// churnInput builds a policy input for the given external job IDs with
// stable, keyed units — the shape the simulator produces via
// ThroughputCache.Units.
func churnInput(ids []int, workers []float64) *Input {
	zoo := workload.Zoo()
	in := &Input{Workers: workers, Prices: []float64{3.06, 1.46, 0.9}}
	for m, id := range ids {
		cfg := zoo[id%len(zoo)]
		tput := make([]float64, len(workers))
		for t := range tput {
			if workload.Fits(cfg, t) {
				tput[t] = workload.Throughput(cfg, t)
			}
		}
		in.Jobs = append(in.Jobs, JobInfo{
			ID: id, Weight: 1 + 0.01*float64(id), Priority: 1, ScaleFactor: 1,
			Tput: tput, RemainingSteps: 1e6, TotalSteps: 2e6,
			Elapsed: 3600, ArrivalSeq: id, NumActiveJobs: len(ids),
		})
		in.Units = append(in.Units, core.Single(m, tput).Keyed(core.JobKey(id)))
	}
	return in
}

// TestSolveContextRemapsAcrossJobChurn drives policies through a sequence of
// job arrivals and departures (including a simultaneous arrival+departure
// that preserves the variable count) and checks that (a) the context takes
// the remapped path, and (b) every allocation matches the stateless cold
// path within 1e-6.
func TestSolveContextRemapsAcrossJobChurn(t *testing.T) {
	workers := []float64{8, 8, 8}
	steps := [][]int{
		{1, 2, 3, 4, 5, 6, 7, 8},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},    // arrival
		{1, 2, 4, 5, 6, 7, 8, 9},       // departure
		{1, 2, 4, 5, 6, 7, 8, 10},      // simultaneous arrival + departure
		{2, 4, 5, 6, 7, 8, 10, 11, 12}, // departure + two arrivals
	}
	// compare checks warm-vs-cold agreement on the policy's own objective.
	// Exact per-job throughputs are compared where distinct weights make the
	// optimum unique (max-min, makespan's refinement); MinCost's per-job
	// throughputs are not unique (time can shift between jobs with equal
	// normalized throughput per dollar), so the invariant there is the
	// objective ratio; FTF's feasibility LPs likewise have alternate optima,
	// so the invariant is the finish-time-fairness ratio within the binary
	// search tolerance.
	policies := []struct {
		pol     Policy
		compare func(t *testing.T, si int, in *Input, warm, cold *core.Allocation)
	}{
		{&MaxMinFairness{}, compareThroughputs},
		{Makespan{}, compareThroughputs},
		{&MinCost{}, func(t *testing.T, si int, in *Input, warm, cold *core.Allocation) {
			t.Helper()
			w, c := costRatio(in, warm), costRatio(in, cold)
			if d := math.Abs(w - c); d > 1e-6*(1+math.Abs(c)) {
				t.Fatalf("step %d: warm throughput/dollar %v, cold %v", si, w, c)
			}
		}},
		{&FinishTimeFairness{}, func(t *testing.T, si int, in *Input, warm, cold *core.Allocation) {
			t.Helper()
			w, c := maxRho(in, warm), maxRho(in, cold)
			if d := math.Abs(w - c); d > 2e-3*(1+math.Abs(c)) {
				t.Fatalf("step %d: warm max rho %v, cold %v", si, w, c)
			}
		}},
	}
	for _, pc := range policies {
		t.Run(pc.pol.Name(), func(t *testing.T) {
			ctx := NewSolveContext()
			for si, ids := range steps {
				in := churnInput(ids, workers)
				warm, err := pc.pol.Allocate(in, ctx)
				if err != nil {
					t.Fatalf("step %d warm: %v", si, err)
				}
				cold, err := pc.pol.Allocate(churnInput(ids, workers), nil)
				if err != nil {
					t.Fatalf("step %d cold: %v", si, err)
				}
				pc.compare(t, si, in, warm, cold)
			}
			if ctx.Stats.RemapHits == 0 {
				t.Fatalf("no remapped solves across churn steps: %+v", ctx.Stats)
			}
			t.Logf("stats: %+v", ctx.Stats)
		})
	}
}

func compareThroughputs(t *testing.T, si int, in *Input, warm, cold *core.Allocation) {
	t.Helper()
	for m := range in.Jobs {
		w, c := warm.EffectiveThroughput(m), cold.EffectiveThroughput(m)
		if d := math.Abs(w - c); d > 1e-6*(1+math.Abs(c)) {
			t.Fatalf("step %d job %d: warm throughput %v, cold %v", si, in.Jobs[m].ID, w, c)
		}
	}
}

// costRatio recomputes MinCost's objective — total normalized throughput
// per dollar — for an allocation.
func costRatio(in *Input, alloc *core.Allocation) float64 {
	num, den := 0.0, 0.0
	for m := range in.Jobs {
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if core.Finite(fastest) {
			num += alloc.EffectiveThroughput(m) / fastest
		}
	}
	for ui := range alloc.Units {
		for j, x := range alloc.X[ui] {
			den += x * in.Prices[j]
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func maxRho(in *Input, alloc *core.Allocation) float64 {
	worst := 0.0
	for m := range in.Jobs {
		if r := RhoValue(in, alloc, m); r > worst {
			worst = r
		}
	}
	return worst
}

// TestSolveContextEmptyToNonempty covers the empty-to-nonempty job set edge
// at the policy layer: an Allocate over zero jobs (no LP at all) followed by
// a populated one must run cold then start caching normally.
func TestSolveContextEmptyToNonempty(t *testing.T) {
	workers := []float64{4, 4, 4}
	ctx := NewSolveContext()
	pol := &MaxMinFairness{}

	empty, err := pol.Allocate(churnInput(nil, workers), ctx)
	if err != nil {
		t.Fatalf("empty allocate: %v", err)
	}
	for u := range empty.X {
		for _, x := range empty.X[u] {
			if x != 0 {
				t.Fatal("empty job set produced a nonzero allocation")
			}
		}
	}
	if ctx.Stats.Solves != 0 {
		t.Fatalf("empty job set issued %d LP solves", ctx.Stats.Solves)
	}

	if _, err := pol.Allocate(churnInput([]int{1, 2, 3}, workers), ctx); err != nil {
		t.Fatalf("first real allocate: %v", err)
	}
	if ctx.Stats.WarmHits+ctx.Stats.RemapHits != 0 {
		t.Fatalf("first populated solve cannot be warm: %+v", ctx.Stats)
	}
	if _, err := pol.Allocate(churnInput([]int{1, 2, 3, 4}, workers), ctx); err != nil {
		t.Fatalf("arrival allocate: %v", err)
	}
	if ctx.Stats.RemapHits == 0 {
		t.Fatalf("arrival after first solve did not remap: %+v", ctx.Stats)
	}
}

// TestSolveContextAllJobsDepart checks the all-departing edge: the whole job
// set is replaced at once, so no allocation column survives the remap — only
// the policy's job-independent scalar (max-min's floor t) can carry over —
// and the solves must still match the stateless cold path exactly.
func TestSolveContextAllJobsDepart(t *testing.T) {
	workers := []float64{4, 4, 4}
	ctx := NewSolveContext()
	pol := &MaxMinFairness{}
	if _, err := pol.Allocate(churnInput([]int{1, 2, 3}, workers), ctx); err != nil {
		t.Fatal(err)
	}
	before := ctx.Stats

	fresh := []int{21, 22, 23}
	warm, err := pol.Allocate(churnInput(fresh, workers), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if attempts := ctx.Stats.RemapAttempts - before.RemapAttempts; attempts == 0 {
		t.Fatalf("disjoint job set never attempted a remap: %+v", ctx.Stats)
	}
	cold, err := pol.Allocate(churnInput(fresh, workers), nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := range fresh {
		w, c := warm.EffectiveThroughput(m), cold.EffectiveThroughput(m)
		if d := math.Abs(w - c); d > 1e-6*(1+math.Abs(c)) {
			t.Fatalf("job %d: context throughput %v, cold %v", fresh[m], w, c)
		}
	}
}

// TestSolveContextIterationSavingsUnderChurn measures the point of the
// remap: a churned sequence (25% of resets change the job set) must spend
// materially fewer simplex iterations with the context than cold.
func TestSolveContextIterationSavingsUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn savings measurement is not -short")
	}
	workers := []float64{16, 16, 16}
	ids := make([]int, 64)
	for i := range ids {
		ids[i] = i
	}
	nextID := len(ids)
	run := func(noWarm bool) SolveStats {
		ctx := NewSolveContext()
		ctx.NoWarm = noWarm
		pol := &MaxMinFairness{}
		cur := append([]int(nil), ids...)
		next := nextID
		for step := 0; step < 16; step++ {
			if step%4 == 1 { // 25% of resets change the job set
				cur = append(cur[1:len(cur):len(cur)], next)
				next++
			}
			if _, err := pol.Allocate(churnInput(cur, workers), ctx); err != nil {
				t.Fatal(err)
			}
		}
		return ctx.Stats
	}
	warm := run(false)
	cold := run(true)
	if warm.RemapHits == 0 {
		t.Fatalf("churn run never remapped: %+v", warm)
	}
	saving := 1 - float64(warm.Iterations)/float64(cold.Iterations)
	t.Logf("iterations warm=%d cold=%d (%.0f%% saved; %+v)", warm.Iterations, cold.Iterations, 100*saving, warm)
	if saving < 0.5 {
		t.Errorf("churned warm pipeline saved only %.0f%% of iterations (want >= 50%%)", 100*saving)
	}
}
