package policy

import (
	"sort"
	"time"

	"gavel/internal/lp"
	"gavel/internal/obs"
)

// SolveContext carries per-policy state across Allocate calls so a reset
// event (job arrival/completion, throughput update) does incremental work
// instead of a cold rebuild. For every LP a policy solves (keyed by a
// policy-chosen label) it caches the optimal simplex basis together with the
// column identities the basis was built over, the previous allocation, and
// solve statistics. On the next solve under the same label it picks the
// cheapest usable seed:
//
//   - identical column IDs and row count: positional warm start (SolveFrom);
//   - anything else — arrivals, departures, simultaneous churn, or a changed
//     constraint structure: remap the basis across shapes (Basis.Remap +
//     SolveFromMapped), dropping departed columns and entering newcomers
//     nonbasic;
//   - no cached entry, or an unusable seed: the cold two-phase path.
//
// A nil *SolveContext is valid everywhere and selects the cold path, so
// callers that do not persist state pass nil.
//
// Contexts are not safe for concurrent use; each simulation or scheduler
// instance owns one.
type SolveContext struct {
	bases map[string]*cachedBasis
	// Stats accumulates solve accounting across the context's lifetime.
	Stats SolveStats
	// NoWarm disables warm starting while keeping the accounting: every
	// solve runs the cold two-phase path. Used to measure the cold
	// baseline's iteration counts in benchmarks.
	NoWarm bool
	// Engine selects the simplex implementation for every LP issued
	// through this context: lp.Revised (the sparse revised engine),
	// lp.Dense (the tableau oracle), or lp.EngineAuto (the default) to
	// follow lp.DefaultEngine.
	Engine lp.Engine
	// Pricing selects the entering-column rule for every LP issued through
	// this context: lp.Devex, lp.PartialPricing, or lp.PricingAuto (the
	// default) to follow lp.DefaultPricing (GAVEL_LP_PRICING).
	Pricing lp.Pricing
	// Dual selects whether seeded solves may repair primal infeasibility
	// with the dual simplex: lp.DualOn, lp.DualOff, or lp.DualAuto (the
	// default) to follow lp.DefaultDual (GAVEL_LP_DUAL).
	Dual lp.DualMode
	// Presolve selects whether solves run the LP presolve pass:
	// lp.PresolveOn, lp.PresolveOff, or lp.PresolveAuto (the default) to
	// follow lp.DefaultPresolve (GAVEL_LP_PRESOLVE).
	Presolve lp.PresolveMode
	// Metrics, when non-nil, receives every solve as live telemetry series
	// (obs.LPMetrics) in addition to the Stats aggregates. The bundle's
	// instruments are atomic, so shard contexts running in parallel
	// goroutines may share one.
	Metrics *obs.LPMetrics

	// ws is the lazily created scratch arena shared by every revised-engine
	// solve issued through this context, eliminating per-solve allocation of
	// the engine's working vectors. Solves through a context are serial, so
	// one arena suffices.
	ws *lp.Workspace
}

// cachedBasis pairs a cached simplex basis with the column identities of the
// problem that produced it, which is what makes the basis portable across
// job-set changes.
type cachedBasis struct {
	basis *lp.Basis
	ids   []lp.ColumnID
}

// SolveStats counts LP work issued through a SolveContext.
type SolveStats struct {
	Solves        int // LP solves issued (including fractional programs)
	WarmAttempts  int // solves seeded positionally from a same-shape basis
	WarmHits      int // positional seeds that actually ran warm
	RemapAttempts int // solves seeded from a basis remapped across shapes
	RemapHits     int // remapped seeds that actually ran warm
	Iterations    int // simplex iterations across all solves
	Pivots        int // tableau pivots across all solves
	RevisedSolves int // solves completed by the sparse revised engine
	DenseSolves   int // solves completed by the dense tableau
	Fallbacks     int // revised-engine solves that fell back to dense

	PresolveReductions int // presolve row/column/bound reductions across all solves
	DualIterations     int // dual-simplex repair iterations across all solves
	Refactorizations   int // revised-engine basis LU refactorizations across all solves

	// Labels breaks Iterations/DualIterations/PresolveReductions down by the
	// policy-chosen solve label, so multi-LP policies (e.g. the fairness
	// binary search plus its refine pass) can be attributed separately. Keys
	// are the labels passed to Solve/SolveFractional.
	Labels map[string]LabelStats
}

// LabelStats is the per-label slice of SolveStats.
type LabelStats struct {
	Solves             int
	Iterations         int
	DualIterations     int
	PresolveReductions int
}

// NewSolveContext returns an empty context.
func NewSolveContext() *SolveContext {
	return &SolveContext{bases: map[string]*cachedBasis{}}
}

// NewSolveContextWith returns an empty context carrying the given solver
// options (the typed replacement for setting Engine/Pricing/Dual/Presolve
// individually).
func NewSolveContextWith(opts lp.Options) *SolveContext {
	c := NewSolveContext()
	c.SetOptions(opts)
	return c
}

// SetOptions installs all four solver knobs from one lp.Options value.
func (c *SolveContext) SetOptions(opts lp.Options) {
	c.Engine = opts.Engine
	c.Pricing = opts.Pricing
	c.Presolve = opts.Presolve
	c.Dual = opts.Dual
}

// Options returns the context's solver knobs as one lp.Options value.
func (c *SolveContext) Options() lp.Options {
	return lp.Options{Engine: c.Engine, Pricing: c.Pricing, Presolve: c.Presolve, Dual: c.Dual}
}

// Seed is one exported warm-start entry: a cached simplex basis together
// with the column identities it was built over, keyed by the solve label it
// caches under. It is the unit of warm-start state the cluster service
// ships between processes — periodic shard snapshots, and the
// basis-carrying half of a job migration between shard daemons. Basis
// serializes through gob (lp.Basis implements GobEncoder), so a Seed can
// ride in any control-plane message as-is.
type Seed struct {
	Label string
	IDs   []lp.ColumnID
	Basis *lp.Basis
}

// ExportSeeds snapshots every cached (label, basis, column-identity) entry,
// cloning the bases so the snapshot shares no mutable state with the
// context. Entries come out in label order, so a snapshot is deterministic.
// Nil contexts export nil.
func (c *SolveContext) ExportSeeds() []Seed {
	if c == nil || len(c.bases) == 0 {
		return nil
	}
	labels := make([]string, 0, len(c.bases))
	for k := range c.bases {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	out := make([]Seed, 0, len(labels))
	for _, k := range labels {
		ent := c.bases[k]
		if ent == nil || ent.basis == nil {
			continue
		}
		out = append(out, Seed{
			Label: k,
			IDs:   append([]lp.ColumnID(nil), ent.ids...),
			Basis: ent.basis.Clone(),
		})
	}
	return out
}

// ImportSeeds installs exported seeds for every label the context has no
// entry for, cloning the bases (the caller may reuse the slice). It is
// ExportSeeds' other half, with AdoptSeedsFrom's keep-local-entries
// semantics: a label the receiver already caches is never overwritten — the
// local basis covers more of the local column universe than a shipped one
// could. The next Solve under an imported label remaps the basis across
// whatever job-set difference exists (lp.Basis.Remap), so recovery from a
// snapshot lands in the remapped bucket, never the cold one. Nil receivers
// are no-ops.
func (c *SolveContext) ImportSeeds(seeds []Seed) {
	if c == nil {
		return
	}
	for _, s := range seeds {
		if s.Basis == nil {
			continue
		}
		if _, ok := c.bases[s.Label]; ok {
			continue
		}
		c.bases[s.Label] = &cachedBasis{
			basis: s.Basis.Clone(),
			ids:   append([]lp.ColumnID(nil), s.IDs...),
		}
	}
}

// seed selects the warm-start strategy for a problem with the given column
// IDs and row count against the cached entry, returning the positional basis
// to use (may be nil) and the mapped basis to use (may be nil); at most one
// is non-nil.
func (c *SolveContext) seed(key string, ids []lp.ColumnID, numRows int) (*lp.Basis, *lp.MappedBasis) {
	ent := c.bases[key]
	if ent == nil || c.NoWarm {
		return nil, nil
	}
	if ids == nil || ent.ids == nil {
		// No identities to compare: legacy positional behavior, where
		// SolveFrom itself rejects shape mismatches.
		return ent.basis, nil
	}
	if sameIDs(ent.ids, ids) && ent.basis.NumRows() == numRows {
		return ent.basis, nil
	}
	return nil, ent.basis.Remap(ent.ids, ids)
}

// HasSeeds reports whether the context holds any cached basis. A context
// that has never completed a solve has nothing to warm-start from; the
// sharded coordinator uses this to decide whether a migration destination
// should adopt the source's seeds.
func (c *SolveContext) HasSeeds() bool {
	return c != nil && len(c.bases) > 0
}

// AdoptSeedsFrom copies every cached (basis, column-identity) entry of src
// whose label the receiver has no entry for, cloning the bases so the two
// contexts never share mutable state across goroutines. It is the warm-basis
// half of job migration between shards: when a job moves into a shard whose
// context has never solved under some label, the source shard's basis —
// remapped across the job-set change by the next Solve, which drops the
// columns of jobs that stayed behind and enters the migrated jobs' columns
// nonbasic — replaces what would otherwise be a cold two-phase solve.
// Labels the receiver already caches are kept: the local basis covers more
// of the destination's surviving columns than the source's ever could.
// Nil receivers and nil sources are no-ops.
func (c *SolveContext) AdoptSeedsFrom(src *SolveContext) {
	if c == nil || src == nil {
		return
	}
	for key, ent := range src.bases {
		if _, ok := c.bases[key]; ok || ent == nil {
			continue
		}
		c.bases[key] = &cachedBasis{
			basis: ent.basis.Clone(),
			ids:   append([]lp.ColumnID(nil), ent.ids...),
		}
	}
}

func sameIDs(a, b []lp.ColumnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// record folds a solve's outcome into the stats and caches its basis.
func (c *SolveContext) record(key string, ids []lp.ColumnID, res *lp.Result) {
	switch {
	case res.Remapped:
		c.Stats.RemapHits++
	case res.WarmStarted:
		c.Stats.WarmHits++
	}
	c.Stats.Iterations += res.Iterations
	c.Stats.Pivots += res.Pivots
	c.recordCounters(key, res)
	c.recordEngine(res)
	if res.Status == lp.Optimal && res.Basis != nil {
		c.bases[key] = &cachedBasis{basis: res.Basis, ids: ids}
	}
}

// solveKind classifies a result for the live-series kind label.
func solveKind(res *lp.Result) string {
	switch {
	case res.Remapped:
		return "remap"
	case res.WarmStarted:
		return "warm"
	}
	return "cold"
}

// emit feeds one completed solve into the live metrics bundle (no-op when
// Metrics is nil). Dense fallbacks additionally count under kind=fallback.
func (c *SolveContext) emit(key string, res *lp.Result, start time.Time) {
	if c.Metrics == nil || res == nil {
		return
	}
	c.Metrics.RecordSolve(solveKind(res), key, res.Iterations, res.DualIterations,
		res.PresolveReductions, res.Refactorizations, start)
	if res.Engine == lp.Dense {
		selected := c.Engine
		if selected == lp.EngineAuto {
			selected = lp.DefaultEngine
		}
		if selected == lp.Revised {
			c.Metrics.Solves.With("fallback").Inc()
		}
	}
}

// recordCounters folds the presolve/dual accounting of one result into the
// aggregate and per-label stats.
func (c *SolveContext) recordCounters(key string, res *lp.Result) {
	c.Stats.PresolveReductions += res.PresolveReductions
	c.Stats.DualIterations += res.DualIterations
	c.Stats.Refactorizations += res.Refactorizations
	if c.Stats.Labels == nil {
		c.Stats.Labels = map[string]LabelStats{}
	}
	ls := c.Stats.Labels[key]
	ls.Solves++
	ls.Iterations += res.Iterations
	ls.DualIterations += res.DualIterations
	ls.PresolveReductions += res.PresolveReductions
	c.Stats.Labels[key] = ls
}

// apply pushes the context's engine/pricing/dual knobs and scratch arena
// onto a problem about to be solved.
func (c *SolveContext) apply(p *lp.Problem) {
	p.SetEngine(c.Engine)
	p.SetPricing(c.Pricing)
	p.SetPresolve(c.Presolve)
	p.SetDual(c.Dual)
	if c.ws == nil {
		c.ws = &lp.Workspace{}
	}
	p.SetWorkspace(c.ws)
}

// recordEngine buckets a solve by the engine that completed it, counting
// revised-to-dense fallbacks separately.
func (c *SolveContext) recordEngine(res *lp.Result) {
	if res.Engine == lp.Dense {
		c.Stats.DenseSolves++
		selected := c.Engine
		if selected == lp.EngineAuto {
			selected = lp.DefaultEngine
		}
		if selected == lp.Revised {
			c.Stats.Fallbacks++
		}
		return
	}
	c.Stats.RevisedSolves++
}

// Solve solves p, seeding from the basis cached under key — positionally
// when the column IDs and row count match, remapped across shapes otherwise
// — and caches the new optimal basis (with ids) for the next call with the
// same key. ids names p's variables in order (e.g. Program.ColumnIDs); nil
// disables cross-shape reuse but keeps same-shape warm starts. With a nil
// receiver it is exactly p.Solve().
func (c *SolveContext) Solve(key string, p *lp.Problem, ids []lp.ColumnID) (*lp.Result, error) {
	if c == nil {
		return p.Solve()
	}
	c.Stats.Solves++
	c.apply(p)
	prev, mapped := c.seed(key, ids, p.NumConstraints())
	start := c.Metrics.Start()
	var res *lp.Result
	var err error
	switch {
	case prev != nil:
		c.Stats.WarmAttempts++
		res, err = p.SolveFrom(prev)
	case mapped != nil:
		c.Stats.RemapAttempts++
		res, err = p.SolveFromMapped(mapped)
	default:
		res, err = p.Solve()
	}
	if err != nil {
		return res, err
	}
	c.record(key, ids, res)
	c.emit(key, res, start)
	return res, nil
}

// SolveCold solves p on the cold two-phase path unconditionally, keeping
// only the accounting. It exists for procedures whose *result* depends on
// which optimal vertex the solver lands on, where a seeded solve could
// change the outcome rather than just the cost. Hierarchical water filling
// — the original user — no longer needs it: its iteration LPs pin
// zero-weight jobs' incidental throughput with explicit rows, making the
// optimum vertex-insensitive, and warm-start like every other policy's.
// The method is retained deliberately for callers building procedures with
// that vertex-sensitivity outside this package.
func (c *SolveContext) SolveCold(p *lp.Problem) (*lp.Result, error) {
	if c == nil {
		return p.Solve()
	}
	c.Stats.Solves++
	c.apply(p)
	start := c.Metrics.Start()
	res, err := p.Solve()
	if err != nil {
		return res, err
	}
	c.Stats.Iterations += res.Iterations
	c.Stats.Pivots += res.Pivots
	c.recordCounters("cold", res)
	c.recordEngine(res)
	c.emit("cold", res, start)
	return res, nil
}

// SolveFractional solves the linear-fractional program with the same basis
// caching and cross-shape remapping as Solve. ids names f's variables (len
// f.NumVars); the Charnes-Cooper homogenizing column is accounted for
// internally.
func (c *SolveContext) SolveFractional(key string, f *lp.Fractional, ids []lp.ColumnID) ([]float64, float64, error) {
	if c == nil {
		x, ratio, err := lp.SolveFractional(f)
		return x, ratio, err
	}
	c.Stats.Solves++
	f.Engine = c.Engine
	f.Pricing = c.Pricing
	f.Presolve = c.Presolve
	f.Dual = c.Dual
	if c.ws == nil {
		c.ws = &lp.Workspace{}
	}
	f.Workspace = c.ws
	var tids []lp.ColumnID
	if ids != nil {
		tids = make([]lp.ColumnID, 0, len(ids)+1)
		tids = append(tids, ids...)
		tids = append(tids, lp.CharnesCooperID)
	}
	// The transformed LP has one row per constraint plus the denominator
	// normalization row.
	prev, mapped := c.seed(key, tids, len(f.Cons)+1)
	start := c.Metrics.Start()
	var x []float64
	var ratio float64
	var res *lp.Result
	var err error
	switch {
	case prev != nil:
		c.Stats.WarmAttempts++
		x, ratio, res, err = lp.SolveFractionalFrom(f, prev)
	case mapped != nil:
		c.Stats.RemapAttempts++
		x, ratio, res, err = lp.SolveFractionalFromMapped(f, mapped)
	default:
		x, ratio, res, err = lp.SolveFractionalFrom(f, nil)
	}
	if res != nil {
		c.record(key, tids, res)
		c.emit(key, res, start)
	}
	return x, ratio, err
}
