package policy

import (
	"gavel/internal/core"
	"gavel/internal/lp"
)

// SolveContext carries per-policy state across Allocate calls so a reset
// event (job arrival/completion, throughput update) does incremental work
// instead of a cold rebuild. It caches the optimal simplex basis of every LP
// a policy solves (keyed by a policy-chosen label), the previous allocation,
// and solve statistics. A nil *SolveContext is valid everywhere and selects
// the cold path, so callers that do not persist state pass nil.
//
// Contexts are not safe for concurrent use; each simulation or scheduler
// instance owns one.
type SolveContext struct {
	bases map[string]*lp.Basis
	// Prev is the allocation returned by the previous Allocate call, and
	// PrevJobIDs the job IDs (in input order) it was computed for; both are
	// set by the driver (e.g. the simulator). No policy consumes them yet:
	// they are the inputs the planned cross-reset basis remapping needs to
	// interpret a cached basis after the job set changes (see ROADMAP.md),
	// recorded now so drivers already maintain the invariant.
	Prev       *core.Allocation
	PrevJobIDs []int
	// Stats accumulates solve accounting across the context's lifetime.
	Stats SolveStats
	// NoWarm disables warm starting while keeping the accounting: every
	// solve runs the cold two-phase path. Used to measure the cold
	// baseline's iteration counts in benchmarks.
	NoWarm bool
}

// SolveStats counts LP work issued through a SolveContext.
type SolveStats struct {
	Solves       int // LP solves issued (including fractional programs)
	WarmAttempts int // solves that had a cached basis to seed from
	WarmHits     int // solves that actually ran warm (no cold fallback)
	Iterations   int // simplex iterations across all solves
	Pivots       int // tableau pivots across all solves
}

// NewSolveContext returns an empty context.
func NewSolveContext() *SolveContext {
	return &SolveContext{bases: map[string]*lp.Basis{}}
}

// Solve solves p, warm-starting from the basis cached under key when the
// shapes match, and caches the new optimal basis for the next call with the
// same key. With a nil receiver it is exactly p.Solve().
func (c *SolveContext) Solve(key string, p *lp.Problem) (*lp.Result, error) {
	if c == nil {
		return p.Solve()
	}
	c.Stats.Solves++
	prev := c.bases[key]
	if c.NoWarm {
		prev = nil
	}
	if prev != nil {
		c.Stats.WarmAttempts++
	}
	res, err := p.SolveFrom(prev)
	if err != nil {
		return res, err
	}
	if res.WarmStarted {
		c.Stats.WarmHits++
	}
	c.Stats.Iterations += res.Iterations
	c.Stats.Pivots += res.Pivots
	if res.Status == lp.Optimal && res.Basis != nil {
		c.bases[key] = res.Basis
	}
	return res, nil
}

// SolveFractional solves the linear-fractional program with the same basis
// caching as Solve, keyed on the transformed LP's shape.
func (c *SolveContext) SolveFractional(key string, f *lp.Fractional) ([]float64, float64, error) {
	if c == nil {
		x, ratio, err := lp.SolveFractional(f)
		return x, ratio, err
	}
	c.Stats.Solves++
	prev := c.bases[key]
	if c.NoWarm {
		prev = nil
	}
	if prev != nil {
		c.Stats.WarmAttempts++
	}
	x, ratio, res, err := lp.SolveFractionalFrom(f, prev)
	if res != nil {
		if res.WarmStarted {
			c.Stats.WarmHits++
		}
		c.Stats.Iterations += res.Iterations
		c.Stats.Pivots += res.Pivots
		if res.Status == lp.Optimal && res.Basis != nil {
			c.bases[key] = res.Basis
		}
	}
	return x, ratio, err
}
