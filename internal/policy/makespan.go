package policy

import (
	"fmt"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// Makespan is the heterogeneity-aware minimum-makespan policy (§4.2):
//
//	min_X max_m num_steps_m / throughput(m, X)
//
// The paper formulates this as a binary search over linear feasibility
// programs (Appendix A.1); we use the equivalent exact single-LP form with
// z = 1/makespan:
//
//	max z  s.t.  throughput(m, X) >= num_steps_m * z  for all m
//
// followed by a refinement LP that fixes the optimal makespan and maximizes
// total normalized throughput so jobs off the critical path also finish
// early (tightening the average JCT without hurting the makespan).
type Makespan struct{}

// Name implements Policy.
func (Makespan) Name() string { return "min_makespan" }

// Allocate implements Policy.
func (Makespan) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}

	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	z := pr.AddVar(1, "z")
	nConstrained := 0
	for m := range in.Jobs {
		steps := in.Jobs[m].RemainingSteps
		if steps <= 0 || !core.Finite(core.MaxThroughput(in.Jobs[m].Tput)) {
			continue
		}
		terms := pr.ThroughputTerms(m, 1)
		terms = append(terms, lp.Term{Var: z, Coeff: -steps})
		pr.AddRow(terms, lp.GE, 0, fmt.Sprintf("r:%d", in.Jobs[m].ID))
		nConstrained++
	}
	if nConstrained == 0 {
		return emptyAllocation(in), nil
	}
	res, err := ctx.Solve("makespan/z", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("makespan LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("makespan LP: %v", res.Status)
	}
	zStar := res.X[z]
	if zStar <= 0 {
		return pr.Extract(res.X), nil
	}

	// Refinement: keep every job on pace for the optimal makespan, then
	// maximize total normalized throughput.
	pr2 := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	for m := range in.Jobs {
		steps := in.Jobs[m].RemainingSteps
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if !core.Finite(fastest) {
			continue
		}
		terms := pr2.ThroughputTerms(m, 1)
		for _, tm := range terms {
			pr2.P.AddObj(tm.Var, tm.Coeff/fastest)
		}
		if steps > 0 {
			pr2.AddRow(terms, lp.GE, steps*zStar*(1-1e-6), fmt.Sprintf("r:%d", in.Jobs[m].ID))
		}
	}
	res2, err := ctx.Solve("makespan/refine", pr2.P, pr2.ColumnIDs())
	if err != nil || res2.Status != lp.Optimal {
		return pr.Extract(res.X), nil
	}
	return pr2.Extract(res2.X), nil
}

// MakespanValue returns the makespan the allocation achieves on the given
// input: max_m remaining_steps / throughput(m, X).
func MakespanValue(in *Input, alloc *core.Allocation) float64 {
	worst := 0.0
	for m := range in.Jobs {
		steps := in.Jobs[m].RemainingSteps
		if steps <= 0 {
			continue
		}
		tp := alloc.EffectiveThroughput(m)
		if tp <= 0 {
			return inf()
		}
		if d := steps / tp; d > worst {
			worst = d
		}
	}
	return worst
}

func inf() float64 { return 1e308 }
