package policy

import (
	"testing"

	"gavel/internal/core"
	"gavel/internal/workload"
)

// placementInput builds two distributed jobs on a 2-type cluster: one
// communication-bound (huge unconsolidated penalty) and one with compact
// weights (placement-insensitive).
func placementInput() (*Input, *PlacementAwareMaxMin) {
	in := &Input{Workers: []float64{8, 8}, Prices: []float64{2.48, 0.45}}
	// Consolidated throughputs.
	commBound := []float64{40, 10}
	compact := []float64{38, 9.5}
	for m, tp := range [][]float64{commBound, compact} {
		in.Jobs = append(in.Jobs, JobInfo{
			ID: m, Weight: 1, Priority: 1, ScaleFactor: 8, Tput: tp,
			RemainingSteps: 1e6, TotalSteps: 1e6, ArrivalSeq: m,
			Entity: -1, NumActiveJobs: 2,
		})
		in.Units = append(in.Units, core.Single(m, tp))
	}
	pol := &PlacementAwareMaxMin{UnconsolidatedTput: map[int][]float64{
		0: {8, 7},      // communication-bound: collapses when spread
		1: {36.5, 9.2}, // compact: barely cares
	}}
	return in, pol
}

func TestPlacementAwareAllocationValid(t *testing.T) {
	in, pol := placementInput()
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for m := range in.Jobs {
		if alloc.EffectiveThroughput(m) <= 0 {
			t.Errorf("job %d starved", m)
		}
	}
}

func TestPlacementAwareBeatsConservativeDefault(t *testing.T) {
	// With explicit unconsolidated data the policy should achieve at
	// least the objective of the plain (consolidated-only) policy — the
	// virtual columns only add options.
	in, pol := placementInput()
	placed, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (&MaxMinFairness{}).Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	minNorm := func(a *core.Allocation) float64 {
		worst := 1e18
		for m := range in.Jobs {
			n := a.EffectiveThroughput(m) / core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
			if n < worst {
				worst = n
			}
		}
		return worst
	}
	// The placement-aware optimum can use unconsolidated slots the plain
	// policy's model does not distinguish, so it is allowed to be lower in
	// *modelled* throughput but must stay within the plain bound (the
	// plain policy assumes every slot is consolidated, an upper bound).
	if minNorm(placed) > minNorm(plain)*1.0001 {
		t.Errorf("placement-aware modelled objective %v exceeds the consolidated upper bound %v",
			minNorm(placed), minNorm(plain))
	}
}

func TestPlacementAwareSingleWorkerMatchesPlain(t *testing.T) {
	// Single-worker jobs are placement-insensitive: the placement-aware
	// policy must reach the same objective as the plain one.
	in := paperExampleInput()
	pol := &PlacementAwareMaxMin{}
	placed, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := (&MaxMinFairness{}).Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	for m := range in.Jobs {
		p1 := placed.EffectiveThroughput(m)
		p2 := plain.EffectiveThroughput(m)
		if p1 < p2*0.9 {
			t.Errorf("job %d: placement-aware %.3f far below plain %.3f", m, p1, p2)
		}
	}
}

func TestPlacementAwareDefaultSpreadFactor(t *testing.T) {
	// Without explicit unconsolidated data, multi-worker jobs get the
	// conservative default and the policy still produces valid output.
	in, _ := placementInput()
	pol := &PlacementAwareMaxMin{} // no data
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestPlacementAwareWithOracleData(t *testing.T) {
	// End-to-end with the workload oracle's consolidated/unconsolidated
	// model: a Transformer (comm-heavy) and a Recoder (compact) at scale 8.
	var transformer, recoder workload.Config
	for _, c := range workload.Zoo() {
		if c.Family == workload.Transformer && c.BatchSize == 16 {
			transformer = c
		}
		if c.Family == workload.Recoder && c.BatchSize == 512 {
			recoder = c
		}
	}
	in := &Input{Workers: []float64{8, 8, 8}, Prices: []float64{2.48, 1.46, 0.45}}
	uncons := map[int][]float64{}
	for m, cfg := range []workload.Config{transformer, recoder} {
		cons := make([]float64, 3)
		un := make([]float64, 3)
		for j := 0; j < 3; j++ {
			if workload.Fits(cfg, j) {
				cons[j] = workload.ScaledThroughput(cfg, j, 8, true)
				un[j] = workload.ScaledThroughput(cfg, j, 8, false)
			}
		}
		in.Jobs = append(in.Jobs, JobInfo{
			ID: m, Weight: 1, Priority: 1, ScaleFactor: 8, Tput: cons,
			RemainingSteps: 1e6, TotalSteps: 1e6, ArrivalSeq: m,
			Entity: -1, NumActiveJobs: 2,
		})
		in.Units = append(in.Units, core.Single(m, cons))
		uncons[m] = un
	}
	pol := &PlacementAwareMaxMin{UnconsolidatedTput: uncons}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}
