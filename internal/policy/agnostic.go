package policy

import (
	"gavel/internal/core"
)

// Agnostic wraps a heterogeneity-aware policy to produce its
// heterogeneity-agnostic baseline, matching how the paper's "LAS", "FIFO",
// and "FTF" baselines behave: the wrapped policy sees a throughput matrix
// of ones (every accelerator looks identical), so it divides *time*, not
// effective throughput. Space-sharing pair units are dropped — agnostic
// baselines do not reason about colocation.
//
// The returned allocation is re-expressed over the original input's units
// so the scheduling mechanism can execute it unchanged.
type Agnostic struct {
	Inner Policy
}

// Name implements Policy.
func (p *Agnostic) Name() string { return p.Inner.Name() + "_agnostic" }

// Allocate implements Policy.
func (p *Agnostic) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	flat := &Input{
		Jobs:    make([]JobInfo, len(in.Jobs)),
		Units:   make([]core.Unit, len(in.Jobs)),
		Workers: in.Workers,
		Prices:  in.Prices,
	}
	for m := range in.Jobs {
		j := in.Jobs[m] // copy
		ones := make([]float64, len(in.Workers))
		for t := range ones {
			if j.Tput[t] > 0 { // preserve infeasible placements
				ones[t] = 1
			}
		}
		j.Tput = ones
		flat.Jobs[m] = j
		// Keyed by the external job ID so the inner policy's cached bases
		// remap correctly across arrivals/departures instead of matching
		// columns by position.
		flat.Units[m] = core.Single(m, ones).Keyed(core.JobKey(j.ID))
	}
	alloc, err := p.Inner.Allocate(flat, ctx)
	if err != nil {
		return nil, err
	}
	// The inner policy decided each job's total time share; a
	// heterogeneity-agnostic scheduler hands that time out on whatever
	// device is free, i.e. spread across types in proportion to capacity
	// (the paper's "1/n of the time on each accelerator" isolated shape) —
	// not concentrated on the type a solver happened to pick first.
	totalW := 0.0
	for _, w := range in.Workers {
		totalW += w
	}
	X := make([][]float64, len(in.Units))
	for ui := range in.Units {
		X[ui] = make([]float64, len(in.Workers))
	}
	for m := range in.Jobs {
		share := 0.0
		for _, x := range alloc.X[m] {
			share += x
		}
		if share <= 0 || totalW <= 0 {
			continue
		}
		usable := 0.0
		for t := range in.Workers {
			if in.Jobs[m].Tput[t] > 0 {
				usable += in.Workers[t]
			}
		}
		if usable <= 0 {
			continue
		}
		for t := range in.Workers {
			if in.Jobs[m].Tput[t] > 0 {
				X[m][t] = share * in.Workers[t] / usable
			}
		}
	}
	// Jobs that cannot use every type concentrate their share on the rest,
	// which can oversubscribe a type; rescale overloaded columns (shrinking
	// a job's budget is always feasible).
	for t := range in.Workers {
		used := 0.0
		for m := range in.Jobs {
			sf := float64(in.Jobs[m].ScaleFactor)
			if sf < 1 {
				sf = 1
			}
			used += X[m][t] * sf
		}
		if used > in.Workers[t] {
			f := in.Workers[t] / used
			for m := range in.Jobs {
				X[m][t] *= f
			}
		}
	}
	return &core.Allocation{Units: in.Units, X: X}, nil
}
