package policy

import (
	"math/rand"
	"testing"
)

func TestAlloXScarceTypeRegression(t *testing.T) {
	// Seed that previously made the minimal queue depth infeasible: two
	// jobs runnable only on the single v100.
	rng := rand.New(rand.NewSource(8848339008565410143))
	in := randomInput(rng, 1+rng.Intn(7), 2+rng.Intn(2))
	alloc, err := (&AlloX{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}
