// Package policy implements Gavel's scheduling policies (Table 1 of the
// paper) as optimization problems over effective throughput, plus the
// heterogeneity-agnostic and related-work baselines the paper evaluates
// against (vanilla LAS/FIFO/FTF, Gandiva ad-hoc space sharing, AlloX).
//
// Every heterogeneity-aware policy builds on internal/core's Program: an LP
// skeleton with the standard allocation-validity constraints, to which the
// policy adds its objective. Policies that cannot be expressed as a single
// LP use a sequence of LPs (makespan, finish-time fairness via a scalar
// search; hierarchical fairness via water filling with a MILP bottleneck
// test, Appendix A.1).
package policy

import (
	"fmt"

	"gavel/internal/core"
)

// JobInfo is the per-job state a policy consumes.
type JobInfo struct {
	ID          int
	Weight      float64 // fair-share weight (>= 0; 0 excludes the job from fairness objectives)
	Priority    float64 // multiplies Weight in the LAS-with-priorities experiment
	ScaleFactor int     // number of workers the job occupies when scheduled
	// Tput[j] is the job's isolated effective throughput on accelerator
	// type j (iterations/sec, already aggregated over ScaleFactor workers
	// with the placement model applied). Zero means the job cannot run on
	// that type.
	Tput []float64
	// RemainingSteps is the number of training iterations left.
	RemainingSteps float64
	// TotalSteps is the job's full training length (used by FTF).
	TotalSteps float64
	// Elapsed is wall-clock seconds since the job arrived.
	Elapsed float64
	// SLORemaining is seconds until the job's deadline (0 = no SLO).
	SLORemaining float64
	// ArrivalSeq orders jobs for FIFO (smaller = earlier).
	ArrivalSeq int
	// Entity groups jobs for hierarchical policies (-1 = none).
	Entity int
	// NumActiveJobs is the number of runnable jobs when the allocation is
	// computed; FTF's isolated share is 1/NumActiveJobs of the cluster.
	NumActiveJobs int
}

// Input is a complete policy invocation: the runnable jobs, the scheduling
// units the mechanism may run (all single-job units, plus candidate
// space-sharing pairs when the policy is SS-aware), and the cluster shape.
type Input struct {
	Jobs []JobInfo
	// Units must contain the single-job unit for job m at index m,
	// followed by any pair units.
	Units   []core.Unit
	Workers []float64 // per-type device counts
	Prices  []float64 // per-type dollar/hour (cost policies)
}

// Policy computes an allocation over in.Units for a cluster-wide objective.
//
// ctx, when non-nil, carries persistent per-policy state across calls —
// cached simplex bases, the previous allocation, solve statistics — so a
// reset event (job arrival/completion, throughput update) does incremental
// work instead of a cold rebuild. A nil ctx always selects the stateless
// cold path and is valid for every policy.
type Policy interface {
	Name() string
	Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error)
}

// SerialPolicy marks a policy whose Allocate mutates unsynchronized
// internal state (random exploration streams, learned pairings) and must
// therefore never be invoked from multiple goroutines at once. The sharded
// engine, which solves its shards concurrently, rejects such policies.
type SerialPolicy interface {
	SerialOnly()
}

// ConcurrentSafe reports whether p's Allocate may run concurrently,
// unwrapping the heterogeneity-agnostic baseline wrapper to inspect the
// policy that actually does the work.
func ConcurrentSafe(p Policy) bool {
	switch v := p.(type) {
	case SerialPolicy:
		return false
	case *Agnostic:
		return ConcurrentSafe(v.Inner)
	}
	return true
}

// scaleFactors extracts the per-job scale-factor slice the core constraint
// builder consumes.
func (in *Input) scaleFactors() []int {
	sf := make([]int, len(in.Jobs))
	for i, j := range in.Jobs {
		if j.ScaleFactor <= 0 {
			sf[i] = 1
		} else {
			sf[i] = j.ScaleFactor
		}
	}
	return sf
}

// singlesOnly returns the prefix of in.Units holding only single-job units.
func (in *Input) singlesOnly() []core.Unit {
	n := 0
	for n < len(in.Units) && !in.Units[n].IsPair() {
		n++
	}
	return in.Units[:n]
}

// validate checks the structural contract documented on Input.
func (in *Input) validate() error {
	if len(in.Units) < len(in.Jobs) {
		return fmt.Errorf("policy: %d units for %d jobs; singles must come first", len(in.Units), len(in.Jobs))
	}
	for m := range in.Jobs {
		u := &in.Units[m]
		if u.IsPair() || u.Jobs[0] != m {
			return fmt.Errorf("policy: unit %d is not the single unit of job %d", m, m)
		}
	}
	for m, j := range in.Jobs {
		if len(j.Tput) != len(in.Workers) {
			return fmt.Errorf("policy: job %d has %d throughputs for %d types", m, len(j.Tput), len(in.Workers))
		}
	}
	return nil
}

// effectiveWeight is the job's fair-share weight including its priority
// multiplier.
func effectiveWeight(j *JobInfo) float64 {
	w := j.Weight
	if w <= 0 {
		return 0
	}
	if j.Priority > 0 {
		w *= j.Priority
	}
	return w
}

// emptyAllocation is returned when there is nothing to schedule.
func emptyAllocation(in *Input) *core.Allocation {
	X := make([][]float64, len(in.Units))
	for i := range X {
		X[i] = make([]float64, len(in.Workers))
	}
	return &core.Allocation{Units: in.Units, X: X}
}
