package policy

import (
	"fmt"
	"sort"

	"gavel/internal/core"
	"gavel/internal/lp"
)

// MinCost is the paper's cloud cost policy (§4.2): maximize time-averaged
// normalized throughput per dollar,
//
//	max_X  sum_m throughput(m, X) / throughput(m, X^fastest)
//	       --------------------------------------------------
//	       sum_u sum_j cost_j * X_uj
//
// a linear-fractional program solved exactly with the Charnes-Cooper
// transformation (internal/lp.SolveFractional). Pair units are charged
// once, so space sharing is not double-billed. With EnforceSLOs set, the
// constraint throughput(m, X) >= steps_m / SLO_remaining_m is added for
// every job with an SLO ("minimize cost w/ SLOs").
type MinCost struct {
	EnforceSLOs bool
}

// Name implements Policy.
func (p *MinCost) Name() string {
	if p.EnforceSLOs {
		return "min_cost_slo"
	}
	return "min_cost"
}

// Allocate implements Policy.
func (p *MinCost) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	if len(in.Prices) != len(in.Workers) {
		return nil, fmt.Errorf("min_cost: %d prices for %d types", len(in.Prices), len(in.Workers))
	}
	numTypes := len(in.Workers)
	sf := in.scaleFactors()

	// Flatten usable (unit, type) pairs into fractional-program variables,
	// naming each by the unit's stable key so the transformed LP's basis
	// can be remapped across job arrivals and departures.
	varOf := make([][]int, len(in.Units))
	var colIDs []lp.ColumnID
	nv := 0
	for ui := range in.Units {
		varOf[ui] = make([]int, numTypes)
		key := in.Units[ui].Key
		if key == "" {
			key = fmt.Sprintf("u%d", ui)
		}
		for j := 0; j < numTypes; j++ {
			usable := false
			for k := range in.Units[ui].Jobs {
				if in.Units[ui].Tput[k][j] > 0 {
					usable = true
					break
				}
			}
			if usable {
				varOf[ui][j] = nv
				colIDs = append(colIDs, lp.ColumnID(fmt.Sprintf("%s@%d", key, j)))
				nv++
			} else {
				varOf[ui][j] = -1
			}
		}
	}

	f := &lp.Fractional{
		NumVars: nv,
		Num:     make([]float64, nv),
		Den:     make([]float64, nv),
	}
	// Numerator: normalized throughput. Denominator: dollar rate.
	for ui := range in.Units {
		u := &in.Units[ui]
		for j := 0; j < numTypes; j++ {
			v := varOf[ui][j]
			if v < 0 {
				continue
			}
			for k, m := range u.Jobs {
				fastest := core.MaxThroughput(in.Jobs[m].Tput)
				if core.Finite(fastest) && u.Tput[k][j] > 0 {
					f.Num[v] += u.Tput[k][j] / fastest
				}
			}
			nWorkers := float64(1)
			for _, m := range u.Jobs {
				if s := float64(sf[m]); s > nWorkers {
					nWorkers = s
				}
			}
			f.Den[v] += in.Prices[j] * nWorkers
		}
	}

	throughputTerms := func(m int) []lp.Term {
		var terms []lp.Term
		for ui := range in.Units {
			u := &in.Units[ui]
			for k, jm := range u.Jobs {
				if jm != m {
					continue
				}
				for j := 0; j < numTypes; j++ {
					if v := varOf[ui][j]; v >= 0 && u.Tput[k][j] > 0 {
						terms = append(terms, lp.Term{Var: v, Coeff: u.Tput[k][j]})
					}
				}
			}
		}
		return terms
	}

	// Per-job time budget.
	for m := range in.Jobs {
		var terms []lp.Term
		for ui := range in.Units {
			if in.Units[ui].Contains(m) {
				for j := 0; j < numTypes; j++ {
					if v := varOf[ui][j]; v >= 0 {
						terms = append(terms, lp.Term{Var: v, Coeff: 1})
					}
				}
			}
		}
		if len(terms) > 0 {
			f.Cons = append(f.Cons, lp.FractionalConstraint{
				Terms: terms, Op: lp.LE, RHS: 1, ID: fmt.Sprintf("b:%d", in.Jobs[m].ID),
			})
		}
	}
	// Per-type capacity.
	for j := 0; j < numTypes; j++ {
		var terms []lp.Term
		for ui := range in.Units {
			if v := varOf[ui][j]; v >= 0 {
				nWorkers := float64(1)
				for _, m := range in.Units[ui].Jobs {
					if s := float64(sf[m]); s > nWorkers {
						nWorkers = s
					}
				}
				terms = append(terms, lp.Term{Var: v, Coeff: nWorkers})
			}
		}
		if len(terms) > 0 {
			f.Cons = append(f.Cons, lp.FractionalConstraint{
				Terms: terms, Op: lp.LE, RHS: in.Workers[j], ID: fmt.Sprintf("c:%d", j),
			})
		}
	}
	// SLO floor constraints. An SLO that cannot be met even on the job's
	// fastest accelerator running full time is hopeless — adding it would
	// make the whole program infeasible, so it is skipped (the violation
	// is already inevitable). If the aggregate set is still infeasible
	// (cluster oversubscribed), the tightest constraints are relaxed batch
	// by batch: those jobs will violate regardless, and the rest keep
	// their guarantees.
	type sloCon struct {
		job       int
		need      float64
		tightness float64 // need / fastest; higher = harder
	}
	var slos []sloCon
	if p.EnforceSLOs {
		for m := range in.Jobs {
			j := &in.Jobs[m]
			if j.SLORemaining <= 0 || j.RemainingSteps <= 0 {
				continue
			}
			need := j.RemainingSteps / j.SLORemaining
			fastest := core.MaxThroughput(j.Tput)
			if !core.Finite(fastest) || need > fastest {
				continue // hopeless SLO
			}
			slos = append(slos, sloCon{job: m, need: need, tightness: need / fastest})
		}
		sort.Slice(slos, func(a, b int) bool { return slos[a].tightness < slos[b].tightness })
	}

	baseCons := f.Cons
	solve := func(nSLO int) ([]float64, error) {
		f.Cons = append([]lp.FractionalConstraint(nil), baseCons...)
		for _, s := range slos[:nSLO] {
			f.Cons = append(f.Cons, lp.FractionalConstraint{
				Terms: throughputTerms(s.job), Op: lp.GE, RHS: s.need,
				ID: fmt.Sprintf("slo:%d", in.Jobs[s.job].ID),
			})
		}
		x, _, err := ctx.SolveFractional("mincost", f, colIDs)
		return x, err
	}
	nSLO := len(slos)
	x, err := solve(nSLO)
	for err != nil && nSLO > 0 {
		// Drop the tightest quarter (at least one) and retry.
		drop := (nSLO + 3) / 4
		nSLO -= drop
		x, err = solve(nSLO)
	}
	if err != nil {
		return nil, fmt.Errorf("min_cost: %w", err)
	}
	X := make([][]float64, len(in.Units))
	for ui := range in.Units {
		X[ui] = make([]float64, numTypes)
		for j := 0; j < numTypes; j++ {
			if v := varOf[ui][j]; v >= 0 {
				val := x[v]
				if val < 0 {
					val = 0
				}
				if val > 1 {
					val = 1
				}
				X[ui][j] = val
			}
		}
	}
	return &core.Allocation{Units: in.Units, X: X}, nil
}

// MaxTotalThroughput maximizes total normalized effective throughput: the
// cost experiment's "maximize throughput" baseline.
type MaxTotalThroughput struct{}

// Name implements Policy.
func (MaxTotalThroughput) Name() string { return "max_total_throughput" }

// Allocate implements Policy.
func (MaxTotalThroughput) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}
	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	for m := range in.Jobs {
		fastest := core.MaxThroughput(in.Jobs[m].Tput)
		if !core.Finite(fastest) {
			continue
		}
		for _, tm := range pr.ThroughputTerms(m, 1/fastest) {
			pr.P.AddObj(tm.Var, tm.Coeff)
		}
	}
	res, err := ctx.Solve("maxtput", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, fmt.Errorf("max_total_throughput LP: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("max_total_throughput LP: %v", res.Status)
	}
	return pr.Extract(res.X), nil
}
