package policy

import (
	"fmt"
	"math"
	"sort"

	"gavel/internal/assignment"
	"gavel/internal/core"
)

// AlloX is the related-work baseline of Le et al. (EuroSys 2020): minimize
// average job completion time on a heterogeneous cluster by solving a
// min-cost bipartite matching of jobs to (device, position-from-the-end)
// slots, where a job in position k from the end of a device's queue
// contributes k times its processing time to the sum of completion times.
// It handles single-worker jobs only (as in the paper's evaluation, which
// compares against AlloX on the continuous-single trace).
//
// The matching yields an ordered queue per device; the allocation returned
// runs each queue's head at full rate on its device type.
type AlloX struct {
	// MaxQueued caps how many jobs (by shortest processing time) enter the
	// matching; beyond this the matching cost dominates and jobs past the
	// cap would not run this round anyway. Default 4x the device count.
	MaxQueued int
}

// Name implements Policy.
func (p *AlloX) Name() string { return "allox" }

// Allocate implements Policy.
func (p *AlloX) Allocate(in *Input, _ *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}

	// Device list: one machine per physical device.
	type device struct{ typ int }
	var devices []device
	for j, w := range in.Workers {
		for k := 0; k < int(w); k++ {
			devices = append(devices, device{typ: j})
		}
	}
	if len(devices) == 0 {
		return emptyAllocation(in), nil
	}

	// Candidate jobs: single-worker, runnable; shortest first under the cap.
	var cand []int
	for m := range in.Jobs {
		if in.Jobs[m].ScaleFactor > 1 || in.Jobs[m].RemainingSteps <= 0 {
			continue
		}
		if core.Finite(core.MaxThroughput(in.Jobs[m].Tput)) {
			cand = append(cand, m)
		}
	}
	if len(cand) == 0 {
		return emptyAllocation(in), nil
	}
	minProc := func(m int) float64 {
		best := math.Inf(1)
		for j, t := range in.Jobs[m].Tput {
			if t > 0 && float64(j) >= 0 {
				if d := in.Jobs[m].RemainingSteps / t; d < best {
					best = d
				}
			}
		}
		return best
	}
	sort.Slice(cand, func(a, b int) bool { return minProc(cand[a]) < minProc(cand[b]) })
	maxQ := p.MaxQueued
	if maxQ <= 0 {
		maxQ = 4 * len(devices)
	}
	if len(cand) > maxQ {
		cand = cand[:maxQ]
	}

	// Slots: (device, position 1..P) with P = ceil(len(cand)/len(devices)).
	// When some jobs are memory-constrained to a scarce device type, the
	// minimal queue depth can leave such a job with no feasible slot;
	// deepen the queues and retry (rare, so the retry loop is cheap).
	positions := (len(cand) + len(devices) - 1) / len(devices)
	if positions < 1 {
		positions = 1
	}
	var assign []int
	for {
		nSlots := len(devices) * positions
		cost := make([][]float64, len(cand))
		for ci, m := range cand {
			cost[ci] = make([]float64, nSlots)
			for di, dev := range devices {
				t := in.Jobs[m].Tput[dev.typ]
				for k := 0; k < positions; k++ {
					slot := di*positions + k
					if t <= 0 {
						cost[ci][slot] = assignment.Inf
						continue
					}
					proc := in.Jobs[m].RemainingSteps / t
					cost[ci][slot] = float64(k+1) * proc
				}
			}
		}
		var err error
		assign, _, err = assignment.Solve(cost)
		if err == nil {
			break
		}
		if positions >= len(cand) {
			return nil, fmt.Errorf("allox matching: %w", err)
		}
		positions *= 2
		if positions > len(cand) {
			positions = len(cand)
		}
	}

	// Per device, the job with the largest position-from-the-end runs now.
	head := make([]int, len(devices)) // candidate index + 1, 0 = none
	headPos := make([]int, len(devices))
	for ci, slot := range assign {
		di := slot / positions
		k := slot%positions + 1
		if head[di] == 0 || k > headPos[di] {
			head[di] = ci + 1
			headPos[di] = k
		}
	}

	X := make([][]float64, len(in.Units))
	for ui := range in.Units {
		X[ui] = make([]float64, len(in.Workers))
	}
	for di, h := range head {
		if h == 0 {
			continue
		}
		m := cand[h-1]
		X[m][devices[di].typ] += 1
	}
	// A job can head at most one device queue (each row matched once), so
	// X rows stay within the per-job budget; clamp for safety.
	for ui := range X {
		total := 0.0
		for j := range X[ui] {
			total += X[ui][j]
		}
		if total > 1 {
			for j := range X[ui] {
				X[ui][j] /= total
			}
		}
	}
	return &core.Allocation{Units: in.Units, X: X}, nil
}
