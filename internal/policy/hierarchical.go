package policy

import (
	"fmt"
	"sort"

	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/milp"
)

// EntityPolicy selects how an entity divides its share among its own jobs
// in a hierarchical policy (§4.3).
type EntityPolicy int

const (
	// EntityFairness shares the entity's weight across its jobs in
	// proportion to their individual weights.
	EntityFairness EntityPolicy = iota
	// EntityFIFO gives the entity's entire weight to its earliest-arrived
	// unfinished job, then the next, and so on.
	EntityFIFO
)

// Hierarchical implements the multi-level policy of §4.3: a weighted
// max-min fairness policy across entities, with per-entity fairness or FIFO
// below, solved by water filling. Each iteration solves one max-min LP and
// then identifies bottlenecked jobs — jobs whose normalized throughput
// cannot rise without lowering another job's — which are frozen at their
// achieved throughput before the next iteration.
//
// Bottleneck identification uses the Appendix A.1 MILP when UseMILP is set;
// otherwise the classic water-filling heuristic (freeze the jobs pinned at
// the iteration's minimum) is used, which is far cheaper and agrees with
// the MILP on all but adversarial instances (see the package tests).
type Hierarchical struct {
	// EntityWeight maps entity id -> weight; missing entities get 1.
	EntityWeight map[int]float64
	// EntityPolicyOf maps entity id -> intra-entity policy; default
	// EntityFairness.
	EntityPolicyOf map[int]EntityPolicy
	// UseMILP selects exact bottleneck detection.
	UseMILP bool
	// MaxIterations bounds water-filling rounds (default: #entities + 4).
	MaxIterations int
}

// Name implements Policy.
func (p *Hierarchical) Name() string { return "hierarchical" }

// WaterFilledMaxMin returns a single-level weighted max-min fairness policy
// solved with full water filling (all jobs in one entity). The paper notes
// (§4.3) the same procedure sharpens single-level LAS.
func WaterFilledMaxMin() *Hierarchical {
	return &Hierarchical{}
}

// Allocate implements Policy.
func (p *Hierarchical) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if len(in.Jobs) == 0 {
		return emptyAllocation(in), nil
	}

	norm := make([]float64, len(in.Jobs)) // throughput(m, X^equal)
	valid := make([]bool, len(in.Jobs))
	for m := range in.Jobs {
		norm[m] = core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
		valid[m] = core.Finite(norm[m]) && in.Jobs[m].Weight > 0
	}

	entities := p.groupEntities(in, valid)
	if len(entities) == 0 {
		return emptyAllocation(in), nil
	}

	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = len(in.Jobs) + 4
	}

	frozen := make([]bool, len(in.Jobs))   // bottlenecked jobs
	floor := make([]float64, len(in.Jobs)) // frozen normalized throughput
	prev := make([]float64, len(in.Jobs))  // previous iteration's achieved levels
	var lastAlloc *core.Allocation

	for iter := 0; iter < maxIter; iter++ {
		wjob := p.jobWeights(in, entities, frozen)
		anyActive := false
		for m := range wjob {
			if wjob[m] > 0 {
				anyActive = true
			}
		}
		if !anyActive {
			break
		}

		alloc, achieved, err := p.solveIteration(in, ctx, wjob, norm, frozen, floor, prev)
		if err != nil {
			return nil, fmt.Errorf("hierarchical iteration %d: %w", iter, err)
		}
		lastAlloc = alloc
		prev = achieved

		newlyFrozen := p.findBottlenecks(in, ctx, wjob, norm, frozen, floor, achieved)
		if len(newlyFrozen) == 0 {
			// Nothing else can be distinguished: freeze everything active.
			for m := range wjob {
				if wjob[m] > 0 && !frozen[m] {
					frozen[m] = true
					floor[m] = achieved[m]
				}
			}
			break
		}
		for _, m := range newlyFrozen {
			frozen[m] = true
			floor[m] = achieved[m]
		}
		allFrozen := true
		for m := range in.Jobs {
			if valid[m] && !frozen[m] {
				allFrozen = false
				break
			}
		}
		if allFrozen {
			break
		}
	}
	if lastAlloc == nil {
		return emptyAllocation(in), nil
	}
	return lastAlloc, nil
}

type entityGroup struct {
	id     int
	weight float64
	jobs   []int // sorted by arrival for FIFO entities
	policy EntityPolicy
}

func (p *Hierarchical) groupEntities(in *Input, valid []bool) []entityGroup {
	byID := map[int][]int{}
	for m := range in.Jobs {
		if !valid[m] {
			continue
		}
		e := in.Jobs[m].Entity
		byID[e] = append(byID[e], m)
	}
	ids := make([]int, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	groups := make([]entityGroup, 0, len(ids))
	for _, id := range ids {
		g := entityGroup{id: id, weight: 1, policy: EntityFairness, jobs: byID[id]}
		if w, ok := p.EntityWeight[id]; ok {
			g.weight = w
		}
		if ep, ok := p.EntityPolicyOf[id]; ok {
			g.policy = ep
		}
		sort.Slice(g.jobs, func(a, b int) bool {
			return in.Jobs[g.jobs[a]].ArrivalSeq < in.Jobs[g.jobs[b]].ArrivalSeq
		})
		groups = append(groups, g)
	}
	return groups
}

// jobWeights assigns w^job_m per §4.3: fairness entities split their weight
// over unfrozen jobs in proportion to job weights; FIFO entities give the
// whole weight to the earliest unfrozen job.
func (p *Hierarchical) jobWeights(in *Input, entities []entityGroup, frozen []bool) []float64 {
	w := make([]float64, len(in.Jobs))
	for _, g := range entities {
		switch g.policy {
		case EntityFIFO:
			for _, m := range g.jobs {
				if !frozen[m] {
					w[m] = g.weight
					break
				}
			}
		default: // EntityFairness
			total := 0.0
			for _, m := range g.jobs {
				if !frozen[m] {
					total += in.Jobs[m].Weight
				}
			}
			if total == 0 {
				continue
			}
			for _, m := range g.jobs {
				if !frozen[m] {
					w[m] = g.weight * in.Jobs[m].Weight / total
				}
			}
		}
	}
	return w
}

// solveIteration runs one water-filling LP, the §4.3 incremental max-min:
// maximize the minimum over weighted jobs of (normThpt(m) - prev_m)/wjob_m,
// holding frozen jobs at their floors and never letting any job drop below
// its previous level. The incremental form is what keeps each entity's
// cumulative share proportional to its weight: every iteration distributes
// the remaining capacity across entities in weight ratio. Returns the
// allocation and every job's achieved normalized throughput.
//
// Jobs carrying no weight this iteration (e.g. non-head jobs of a FIFO
// entity) are *pinned* at their previous level with an explicit pair of
// rows rather than just floored: historically they soaked up whatever
// incidental throughput the solver's optimal vertex happened to hand them,
// which made the procedure's outcome vertex-sensitive and forced every
// hierarchical LP onto the cold path. With the pin, every optimal vertex
// assigns zero-weight jobs the same level, so seeded solves (positional or
// remapped) are safe and the LPs warm-start like every other policy's.
func (p *Hierarchical) solveIteration(in *Input, ctx *SolveContext, wjob, norm []float64, frozen []bool, floor, prev []float64) (*core.Allocation, []float64, error) {
	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	t := pr.AddVar(1, "t")
	for m := range in.Jobs {
		if norm[m] <= 0 {
			continue
		}
		id := in.Jobs[m].ID
		sf := float64(in.Jobs[m].ScaleFactor)
		if sf < 1 {
			sf = 1
		}
		switch {
		case frozen[m]:
			// Do not degrade a bottlenecked job below its frozen level.
			terms := pr.ThroughputTerms(m, sf/norm[m])
			pr.AddRow(terms, lp.GE, floor[m]*(1-1e-6), fmt.Sprintf("wf:%d", id))
		case wjob[m] > 0:
			// (normThpt - prev)/wjob >= t, plus non-degradation.
			terms := pr.ThroughputTerms(m, sf/(wjob[m]*norm[m]))
			terms = append(terms, lp.Term{Var: t, Coeff: -1})
			pr.AddRow(terms, lp.GE, prev[m]/wjob[m]*(1-1e-6), fmt.Sprintf("wf:%d", id))
		default:
			// Zero-weight this iteration: pin the incidental throughput to
			// the previous level from both sides so the optimum is
			// vertex-insensitive (for prev = 0 the job simply gets nothing
			// until it carries weight).
			terms := pr.ThroughputTerms(m, sf/norm[m])
			if prev[m] > 0 {
				pr.AddRow(terms, lp.GE, prev[m]*(1-1e-6), fmt.Sprintf("wf:%d", id))
			}
			pr.AddRow(terms, lp.LE, prev[m]*(1+1e-6), fmt.Sprintf("wfc:%d", id))
		}
	}
	res, err := ctx.Solve("hier/wf", pr.P, pr.ColumnIDs())
	if err != nil {
		return nil, nil, err
	}
	if res.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("LP %v", res.Status)
	}
	alloc := pr.Extract(res.X)
	achieved := make([]float64, len(in.Jobs))
	for m := range in.Jobs {
		if norm[m] > 0 {
			sf := float64(in.Jobs[m].ScaleFactor)
			if sf < 1 {
				sf = 1
			}
			achieved[m] = alloc.EffectiveThroughput(m) * sf / norm[m]
		}
	}
	return alloc, achieved, nil
}

// findBottlenecks returns the active jobs to freeze after an iteration.
func (p *Hierarchical) findBottlenecks(in *Input, ctx *SolveContext, wjob, norm []float64, frozen []bool, floor, achieved []float64) []int {
	if p.UseMILP {
		if out, ok := p.milpBottlenecks(in, wjob, norm, frozen, floor, achieved); ok {
			return out
		}
		// Fall through to the LP test on MILP trouble.
	}
	// LP improvement test (a linear relaxation of the Appendix A.1 MILP):
	// give each active job a slack s_m in [0, eps_m] with the constraint
	// normThpt(m) >= achieved_m + s_m, keep everyone else at their level,
	// and maximize sum s_m. With eps small the per-job improvements are
	// (near-)independent, so s_m stuck at 0 marks a bottlenecked job.
	pr := core.NewProgram(lp.Maximize, in.Units, in.scaleFactors(), in.Workers)
	slack := make([]int, len(in.Jobs))
	for m := range slack {
		slack[m] = -1
	}
	for m := range in.Jobs {
		if norm[m] <= 0 {
			continue
		}
		id := in.Jobs[m].ID
		sf := float64(in.Jobs[m].ScaleFactor)
		if sf < 1 {
			sf = 1
		}
		terms := pr.ThroughputTerms(m, sf/norm[m])
		switch {
		case frozen[m]:
			pr.AddRow(terms, lp.GE, floor[m]*(1-1e-6), fmt.Sprintf("bn:%d", id))
		case wjob[m] > 0:
			eps := 1e-3 * (achieved[m] + 1)
			s := pr.AddVar(1, fmt.Sprintf("s:%d", id))
			slack[m] = s
			pr.AddRow([]lp.Term{{Var: s, Coeff: 1}}, lp.LE, eps, fmt.Sprintf("bs:%d", id))
			terms = append(terms, lp.Term{Var: s, Coeff: -1})
			pr.AddRow(terms, lp.GE, achieved[m]*(1-1e-6), fmt.Sprintf("bn:%d", id))
		}
	}
	// The bottleneck test reads only which slacks are stuck at zero, a
	// property of the optimum rather than the vertex, so it warm-starts
	// under its own label (the LP's shape tracks the freezing progress, so
	// successive iterations reuse the basis via the cross-shape remap).
	res, err := ctx.Solve("hier/bn", pr.P, pr.ColumnIDs())
	if err != nil || res.Status != lp.Optimal {
		// Numerical trouble: freeze everything so the caller terminates.
		var out []int
		for m := range in.Jobs {
			if !frozen[m] && wjob[m] > 0 {
				out = append(out, m)
			}
		}
		return out
	}
	var out []int
	for m := range in.Jobs {
		if frozen[m] || wjob[m] <= 0 || slack[m] < 0 {
			continue
		}
		eps := 1e-3 * (achieved[m] + 1)
		if res.X[slack[m]] < eps/2 {
			out = append(out, m)
		}
	}
	return out
}

// milpBottlenecks runs the Appendix A.1 MILP: maximize the number of jobs
// whose scaled throughput can strictly improve while no job drops below its
// current level; jobs with z_m = 0 are bottlenecked.
func (p *Hierarchical) milpBottlenecks(in *Input, wjob, norm []float64, frozen []bool, floor, achieved []float64) ([]int, bool) {
	mp := milp.NewProblem(lp.Maximize)
	numTypes := len(in.Workers)
	sfJob := in.scaleFactors()

	// Allocation variables mirror core.NewProgram.
	xv := make([][]int, len(in.Units))
	for ui := range in.Units {
		xv[ui] = make([]int, numTypes)
		for j := 0; j < numTypes; j++ {
			usable := false
			for k := range in.Units[ui].Jobs {
				if in.Units[ui].Tput[k][j] > 0 {
					usable = true
					break
				}
			}
			if usable {
				xv[ui][j] = mp.AddVar(0, "")
			} else {
				xv[ui][j] = -1
			}
		}
	}
	tputTerms := func(m int, factor float64) []lp.Term {
		var terms []lp.Term
		for ui := range in.Units {
			u := &in.Units[ui]
			for k, jm := range u.Jobs {
				if jm != m {
					continue
				}
				for j := 0; j < numTypes; j++ {
					if v := xv[ui][j]; v >= 0 && u.Tput[k][j] > 0 {
						terms = append(terms, lp.Term{Var: v, Coeff: factor * u.Tput[k][j]})
					}
				}
			}
		}
		return terms
	}
	// Validity constraints.
	for m := range in.Jobs {
		var terms []lp.Term
		for ui := range in.Units {
			if in.Units[ui].Contains(m) {
				for j := 0; j < numTypes; j++ {
					if v := xv[ui][j]; v >= 0 {
						terms = append(terms, lp.Term{Var: v, Coeff: 1})
					}
				}
			}
		}
		if len(terms) > 0 {
			mp.AddConstraint(terms, lp.LE, 1)
		}
	}
	for j := 0; j < numTypes; j++ {
		var terms []lp.Term
		for ui := range in.Units {
			if v := xv[ui][j]; v >= 0 {
				sf := 1.0
				for _, m := range in.Units[ui].Jobs {
					if s := float64(sfJob[m]); s > sf {
						sf = s
					}
				}
				terms = append(terms, lp.Term{Var: v, Coeff: sf})
			}
		}
		if len(terms) > 0 {
			mp.AddConstraint(terms, lp.LE, in.Workers[j])
		}
	}
	// No job's normalized throughput drops.
	level := make([]float64, len(in.Jobs))
	for m := range in.Jobs {
		if norm[m] <= 0 {
			continue
		}
		sf := float64(sfJob[m])
		level[m] = achieved[m]
		if frozen[m] {
			level[m] = floor[m]
		}
		mp.AddConstraint(tputTerms(m, sf/norm[m]), lp.GE, level[m]*(1-1e-6))
	}
	// z_m = 1 requires a strict improvement.
	var zs []int
	var zjobs []int
	const improve = 1e-3
	for m := range in.Jobs {
		if frozen[m] || wjob[m] <= 0 || norm[m] <= 0 {
			continue
		}
		z := mp.AddBinaryVar(1, "")
		zs = append(zs, z)
		zjobs = append(zjobs, m)
		sf := float64(sfJob[m])
		// throughput >= L - Y*(1-z), i.e. throughput - Y*z >= L - Y,
		// with L the strictly-improved level and Y a big-M constant.
		L := level[m]*(1+improve) + improve
		bigY := 10.0 + L
		terms := tputTerms(m, sf/norm[m])
		terms = append(terms, lp.Term{Var: z, Coeff: -bigY})
		mp.AddConstraint(terms, lp.GE, L-bigY)
	}
	mp.MaxNodes = 2000
	res, err := mp.Solve()
	if err != nil || (res.Status != lp.Optimal && res.Status != lp.IterationLimit) {
		return nil, false
	}
	var out []int
	for i, z := range zs {
		if res.X[z] < 0.5 {
			out = append(out, zjobs[i])
		}
	}
	return out, true
}
