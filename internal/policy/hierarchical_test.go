package policy

import (
	"math"
	"testing"

	"gavel/internal/core"
)

// identicalJobsInput builds n identical single-type jobs on a homogeneous
// cluster of k devices.
func identicalJobsInput(n, k int, weights []float64) *Input {
	in := &Input{Workers: []float64{float64(k)}, Prices: []float64{1}}
	for m := 0; m < n; m++ {
		w := 1.0
		if m < len(weights) {
			w = weights[m]
		}
		tp := []float64{1.0}
		in.Jobs = append(in.Jobs, JobInfo{
			ID: m, Weight: w, Priority: 1, ScaleFactor: 1, Tput: tp,
			RemainingSteps: 1000, TotalSteps: 1000,
			ArrivalSeq: m, Entity: 0, NumActiveJobs: n,
		})
		in.Units = append(in.Units, core.Single(m, tp))
	}
	return in
}

// TestWaterFillingPaperExample reproduces the §4.3 worked example: 4
// identical jobs on 4 identical GPUs, job 1 with weight 3, jobs 2-4 with
// weight 1. First iteration pins job 1 at throughput 1.0 and jobs 2-4 at
// 0.33 ("to respect weights"); water filling then raises jobs 2-4 to full
// GPUs.
func TestWaterFillingPaperExample(t *testing.T) {
	in := identicalJobsInput(4, 4, []float64{3, 1, 1, 1})
	alloc, err := WaterFilledMaxMin().Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for m := 0; m < 4; m++ {
		tp := alloc.EffectiveThroughput(m)
		if math.Abs(tp-1.0) > 1e-4 {
			t.Errorf("job %d throughput = %.4f, want 1.0 after water filling", m, tp)
		}
	}
}

// Without water filling the same example leaves jobs 2-4 at 1/3 throughput;
// with it they reach 1.0 — this is the §4.3 claim that water filling
// improves non-bottlenecked jobs.
func TestWaterFillingImprovesOverSingleShot(t *testing.T) {
	in := identicalJobsInput(4, 4, []float64{3, 1, 1, 1})
	wf, err := WaterFilledMaxMin().Allocate(in, nil)
	if err != nil {
		t.Fatalf("water-filled: %v", err)
	}
	sumWF := 0.0
	for m := range in.Jobs {
		sumWF += wf.EffectiveThroughput(m)
	}
	if sumWF < 3.9 {
		t.Errorf("water filling total throughput %.3f, want ~4 (all GPUs busy)", sumWF)
	}
}

func TestHierarchicalEntityWeights(t *testing.T) {
	// Two entities, weights 1 and 2, each with 2 identical jobs; 6 GPUs so
	// nothing saturates per-job budgets... use 2 GPUs so shares matter.
	in := identicalJobsInput(4, 2, nil)
	for m := range in.Jobs {
		in.Jobs[m].Entity = m % 2
	}
	pol := &Hierarchical{EntityWeight: map[int]float64{0: 1, 1: 2}}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	e0 := alloc.EffectiveThroughput(0) + alloc.EffectiveThroughput(2)
	e1 := alloc.EffectiveThroughput(1) + alloc.EffectiveThroughput(3)
	if e1 < 1.8*e0 {
		t.Errorf("entity shares e0=%.3f e1=%.3f, want ~1:2", e0, e1)
	}
}

func TestHierarchicalFIFOEntity(t *testing.T) {
	// One FIFO entity with 3 jobs on 1 GPU: the earliest job should get
	// (nearly) the whole device.
	in := identicalJobsInput(3, 1, nil)
	pol := &Hierarchical{EntityPolicyOf: map[int]EntityPolicy{0: EntityFIFO}}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if tp := alloc.EffectiveThroughput(0); tp < 0.99 {
		t.Errorf("FIFO head throughput = %.3f, want ~1", tp)
	}
}

func TestHierarchicalMILPMatchesHeuristic(t *testing.T) {
	// On the paper's worked example the MILP bottleneck test and the
	// freeze-at-minimum heuristic must produce the same final allocation.
	for _, useMILP := range []bool{false, true} {
		in := identicalJobsInput(4, 4, []float64{3, 1, 1, 1})
		pol := &Hierarchical{UseMILP: useMILP}
		alloc, err := pol.Allocate(in, nil)
		if err != nil {
			t.Fatalf("UseMILP=%v: %v", useMILP, err)
		}
		for m := 0; m < 4; m++ {
			if tp := alloc.EffectiveThroughput(m); math.Abs(tp-1.0) > 1e-3 {
				t.Errorf("UseMILP=%v job %d throughput %.4f, want 1.0", useMILP, m, tp)
			}
		}
	}
}

func TestHierarchicalHeterogeneousEntities(t *testing.T) {
	// Jobs with different speedups split among 2 fairness entities on the
	// paper's 1 V100 + 1 K80 example; allocation must stay valid and give
	// both entities non-trivial throughput.
	in := paperExampleInput()
	in.Jobs[0].Entity = 0
	in.Jobs[1].Entity = 1
	in.Jobs[2].Entity = 1
	pol := &Hierarchical{EntityWeight: map[int]float64{0: 1, 1: 1}}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for m := range in.Jobs {
		if alloc.EffectiveThroughput(m) <= 0 {
			t.Errorf("job %d starved by hierarchical policy", m)
		}
	}
}

// TestHierarchicalWarmMatchesCold is the seed-safety guard for water
// filling: with zero-weight jobs' incidental throughput pinned by explicit
// rows, the LP optimum is vertex-insensitive, so solving the hierarchical
// LPs from cached bases (positional or remapped across the churn steps)
// must reproduce the cold pipeline's shares exactly — warm starts change
// only cost, never outcome. This is what let the policy drop its SolveCold
// exception.
func TestHierarchicalWarmMatchesCold(t *testing.T) {
	workers := []float64{6, 6, 6}
	steps := [][]int{
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 5, 6, 7},  // arrival
		{1, 3, 4, 5, 6, 7},     // departure
		{1, 3, 4, 5, 6, 8},     // simultaneous arrival + departure
		{3, 4, 5, 6, 8, 9, 10}, // departure + two arrivals
	}
	pol := &Hierarchical{
		EntityWeight:   map[int]float64{0: 1, 1: 2},
		EntityPolicyOf: map[int]EntityPolicy{1: EntityFIFO},
	}
	ctx := NewSolveContext()
	for si, ids := range steps {
		in := churnInput(ids, workers)
		for m := range in.Jobs {
			in.Jobs[m].Entity = in.Jobs[m].ID % 2
		}
		warm, err := pol.Allocate(in, ctx)
		if err != nil {
			t.Fatalf("step %d warm: %v", si, err)
		}
		inCold := churnInput(ids, workers)
		for m := range inCold.Jobs {
			inCold.Jobs[m].Entity = inCold.Jobs[m].ID % 2
		}
		cold, err := pol.Allocate(inCold, nil)
		if err != nil {
			t.Fatalf("step %d cold: %v", si, err)
		}
		for m := range in.Jobs {
			w, c := warm.EffectiveThroughput(m), cold.EffectiveThroughput(m)
			if d := math.Abs(w - c); d > 1e-6*(1+math.Abs(c)) {
				t.Errorf("step %d job %d: warm throughput %v, cold %v", si, in.Jobs[m].ID, w, c)
			}
		}
	}
	if ctx.Stats.WarmHits+ctx.Stats.RemapHits == 0 {
		t.Fatalf("hierarchical solves never warm-started: %+v", ctx.Stats)
	}
	t.Logf("stats: %+v", ctx.Stats)
}

// Pareto efficiency (§4.4): after water filling, no job's throughput can be
// raised without another dropping — verified by checking all devices are
// fully allocated when every job still wants time.
func TestWaterFilledAllocationIsWorkConserving(t *testing.T) {
	in := paperExampleInput()
	alloc, err := WaterFilledMaxMin().Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	for j := range in.Workers {
		used := 0.0
		for u := range alloc.X {
			used += alloc.X[u][j]
		}
		if used < in.Workers[j]-1e-4 {
			t.Errorf("type %d only %.3f/%.0f allocated after water filling", j, used, in.Workers[j])
		}
	}
}
