package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/core"
)

// paperExampleInput is the §4.1 worked example: 3 jobs with V100/K80
// speedups 4/3/2 vs 1, on a cluster with 1 V100 and 1 K80.
func paperExampleInput() *Input {
	tputs := [][]float64{{4, 1}, {3, 1}, {2, 1}}
	in := &Input{Workers: []float64{1, 1}, Prices: []float64{2.48, 0.45}}
	for m, tp := range tputs {
		in.Jobs = append(in.Jobs, JobInfo{
			ID: m, Weight: 1, Priority: 1, ScaleFactor: 1,
			Tput: tp, RemainingSteps: 1000, TotalSteps: 1000,
			ArrivalSeq: m, Entity: -1, NumActiveJobs: 3,
		})
		in.Units = append(in.Units, core.Single(m, tp))
	}
	return in
}

func randomInput(rng *rand.Rand, nJobs, nTypes int) *Input {
	in := &Input{
		Workers: make([]float64, nTypes),
		Prices:  make([]float64, nTypes),
	}
	for j := range in.Workers {
		in.Workers[j] = float64(1 + rng.Intn(5))
		in.Prices[j] = 0.4 + rng.Float64()*2
	}
	for m := 0; m < nJobs; m++ {
		tput := make([]float64, nTypes)
		for j := range tput {
			if rng.Float64() < 0.9 {
				tput[j] = 0.5 + rng.Float64()*8
			}
		}
		in.Jobs = append(in.Jobs, JobInfo{
			ID: m, Weight: 1, Priority: 1, ScaleFactor: 1,
			Tput: tput, RemainingSteps: 100 + rng.Float64()*1e5,
			TotalSteps: 2e5, Elapsed: rng.Float64() * 1e4,
			ArrivalSeq: m, Entity: m % 2, NumActiveJobs: nJobs,
		})
		in.Units = append(in.Units, core.Single(m, tput))
	}
	return in
}

func TestMaxMinPaperExample(t *testing.T) {
	in := paperExampleInput()
	alloc, err := (&MaxMinFairness{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid allocation: %v", err)
	}
	// The paper reports ~10% improvement over the isolated (1/3 share)
	// allocation for every job.
	for m := range in.Jobs {
		norm := core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
		rel := alloc.EffectiveThroughput(m) * 3 / norm // vs 1/3 share
		if rel < 1.05 {
			t.Errorf("job %d normalized throughput %.3f, want >= 1.05 (paper: ~1.1)", m, rel)
		}
	}
}

func TestMaxMinSharingIncentive(t *testing.T) {
	// Property from §4.4: the optimal max-min objective is at least the
	// isolated allocation's, i.e. every job's normalized throughput >= 1/n.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		in := randomInput(rng, n, 2+rng.Intn(2))
		alloc, err := (&MaxMinFairness{}).Allocate(in, nil)
		if err != nil {
			return false
		}
		if alloc.Validate(in.scaleFactors(), in.Workers) != nil {
			return false
		}
		total := 0.0
		for _, w := range in.Workers {
			total += w
		}
		for m := range in.Jobs {
			norm := core.EqualShareThroughput(in.Jobs[m].Tput, in.Workers)
			if norm == 0 {
				continue
			}
			// Isolated share: min(1, total/n) of the time on each type.
			share := math.Min(1, total/float64(n))
			if alloc.EffectiveThroughput(m)/norm < share-1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinRespectsWeights(t *testing.T) {
	in := paperExampleInput()
	in.Jobs[0].Weight = 3 // job 0 deserves 3x the normalized throughput
	alloc, err := (&MaxMinFairness{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n0 := alloc.EffectiveThroughput(0) / core.EqualShareThroughput(in.Jobs[0].Tput, in.Workers)
	n1 := alloc.EffectiveThroughput(1) / core.EqualShareThroughput(in.Jobs[1].Tput, in.Workers)
	if n0 < 1.5*n1 {
		t.Errorf("weighted job got %.3f vs %.3f; want ~3x", n0, n1)
	}
}

func TestMaxMinPriorities(t *testing.T) {
	in := paperExampleInput()
	in.Jobs[2].Priority = 5
	pol := &MaxMinFairness{UsePriorities: true}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	n2 := alloc.EffectiveThroughput(2) / core.EqualShareThroughput(in.Jobs[2].Tput, in.Workers)
	n1 := alloc.EffectiveThroughput(1) / core.EqualShareThroughput(in.Jobs[1].Tput, in.Workers)
	if n2 <= n1 {
		t.Errorf("high-priority job normalized %.3f <= %.3f", n2, n1)
	}
}

func TestFIFOPrefersEarlierJobs(t *testing.T) {
	in := paperExampleInput()
	alloc, err := (FIFO{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Job 0 arrived first: it must get its fastest type (V100) fully.
	if alloc.X[0][0] < 0.99 {
		t.Errorf("job 0 V100 share = %v, want ~1 (FIFO head on fastest)", alloc.X[0][0])
	}
}

func TestMakespanBeatsAgnosticOnExample(t *testing.T) {
	in := paperExampleInput()
	aware, err := (Makespan{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := aware.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	mkAware := MakespanValue(in, aware)

	agn, err := (&Agnostic{Inner: Makespan{}}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("agnostic: %v", err)
	}
	mkAgn := MakespanValue(in, agn)
	if mkAware > mkAgn*1.0001 {
		t.Errorf("aware makespan %.1f > agnostic %.1f", mkAware, mkAgn)
	}
	// And the allocation must be work-conserving enough to finish at all.
	if mkAware <= 0 || math.IsInf(mkAware, 0) {
		t.Fatalf("bad makespan %v", mkAware)
	}
}

// Property: the makespan policy's value is optimal among a set of random
// valid allocations (it is a minimizer).
func TestPropertyMakespanOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 1+rng.Intn(5), 2)
		alloc, err := (Makespan{}).Allocate(in, nil)
		if err != nil {
			return false
		}
		opt := MakespanValue(in, alloc)
		// Random feasible competitor: every job splits its time budget
		// uniformly over types scaled to respect capacity.
		comp := &core.Allocation{Units: in.Units, X: make([][]float64, len(in.Units))}
		used := make([]float64, len(in.Workers))
		for m := range in.Units {
			comp.X[m] = make([]float64, len(in.Workers))
			for j := range in.Workers {
				if in.Jobs[m].Tput[j] <= 0 {
					continue
				}
				x := rng.Float64() / float64(len(in.Workers))
				if used[j]+x > in.Workers[j] {
					x = in.Workers[j] - used[j]
				}
				if x < 0 {
					x = 0
				}
				comp.X[m][j] = x
				used[j] += x
			}
		}
		return MakespanValue(in, comp) >= opt*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFinishTimeFairness(t *testing.T) {
	in := paperExampleInput()
	pol := &FinishTimeFairness{}
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// With 3 jobs sharing 2 GPUs, the max-min rho should beat the isolated
	// 1/3 share (rho < 1) because the het-aware allocation is better.
	worst := 0.0
	for m := range in.Jobs {
		if r := RhoValue(in, alloc, m); r > worst {
			worst = r
		}
	}
	if worst > 1.0+1e-6 {
		t.Errorf("max rho = %.3f, want <= 1 (should beat isolated share)", worst)
	}
}

func TestShortestJobFirst(t *testing.T) {
	in := paperExampleInput()
	in.Jobs[2].RemainingSteps = 10 // job 2 is now by far the shortest
	alloc, err := (ShortestJobFirst{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Job 2's fastest type is V100; SJF must give it full V100 time.
	if alloc.X[2][0] < 0.99 {
		t.Errorf("shortest job V100 share = %v, want ~1", alloc.X[2][0])
	}
}

func TestMaxTotalThroughput(t *testing.T) {
	in := paperExampleInput()
	alloc, err := (MaxTotalThroughput{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Both devices should be fully used (work conservation).
	usedV, usedK := 0.0, 0.0
	for m := range in.Units {
		usedV += alloc.X[m][0]
		usedK += alloc.X[m][1]
	}
	if usedV < 0.99 || usedK < 0.99 {
		t.Errorf("devices not fully used: V100 %.2f K80 %.2f", usedV, usedK)
	}
}

func TestMinCostPrefersCheapEfficientPlacement(t *testing.T) {
	// A job with flat throughput across types should land on the cheap
	// type under the cost objective.
	in := &Input{Workers: []float64{1, 1}, Prices: []float64{2.48, 0.45}}
	tp := []float64{1.1, 1.0} // barely faster on the expensive GPU
	in.Jobs = append(in.Jobs, JobInfo{ID: 0, Weight: 1, ScaleFactor: 1, Tput: tp,
		RemainingSteps: 1000, TotalSteps: 1000, NumActiveJobs: 1})
	in.Units = append(in.Units, core.Single(0, tp))
	alloc, err := (&MinCost{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if alloc.X[0][1] < alloc.X[0][0] {
		t.Errorf("cost policy chose expensive GPU: X=%v", alloc.X[0])
	}
}

func TestMinCostSLOForcesFastGPU(t *testing.T) {
	// Same job but with an SLO only the expensive GPU can meet.
	in := &Input{Workers: []float64{1, 1}, Prices: []float64{2.48, 0.45}}
	tp := []float64{2.0, 1.0}
	in.Jobs = append(in.Jobs, JobInfo{ID: 0, Weight: 1, ScaleFactor: 1, Tput: tp,
		RemainingSteps: 1000, TotalSteps: 1000, SLORemaining: 600, NumActiveJobs: 1})
	in.Units = append(in.Units, core.Single(0, tp))
	alloc, err := (&MinCost{EnforceSLOs: true}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Needs 1000/600 = 1.67 steps/s; only reachable with mostly-V100 time.
	if got := alloc.EffectiveThroughput(0); got < 1000.0/600-1e-6 {
		t.Errorf("SLO-constrained throughput %.3f < needed %.3f (X=%v)", got, 1000.0/600, alloc.X[0])
	}
}

func TestAgnosticSpreadsAcrossTypes(t *testing.T) {
	in := paperExampleInput()
	alloc, err := (&Agnostic{Inner: &MaxMinFairness{}}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Heterogeneity-agnostic: each job's time is split across types in
	// proportion to capacity (1 V100, 1 K80 -> 50/50).
	for m := range in.Jobs {
		if math.Abs(alloc.X[m][0]-alloc.X[m][1]) > 1e-6 {
			t.Errorf("job %d agnostic split %v, want equal", m, alloc.X[m])
		}
	}
}

func TestAlloXSchedulesShortJobsFirst(t *testing.T) {
	in := paperExampleInput()
	in.Jobs[1].RemainingSteps = 10 // very short
	alloc, err := (&AlloX{}).Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// With 2 devices and 3 jobs, the two queue heads run; the short job
	// must be one of them.
	if alloc.JobTimeFraction(1) < 0.99 {
		t.Errorf("short job not scheduled: X=%v", alloc.X[1])
	}
	if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestGandivaKeepsProfitablePairs(t *testing.T) {
	in := paperExampleInput()
	// Add a profitable pair (0,1) and an unprofitable pair (1,2).
	in.Units = append(in.Units,
		core.Pair(0, 1, []float64{3.8, 0.9}, []float64{2.9, 0.9}), // ~1.9x gain
		core.Pair(1, 2, []float64{1.0, 0.3}, []float64{0.7, 0.3}), // <1x
	)
	pol := NewGandivaSpaceSharing(7)
	pol.TriesPerRound = 64
	alloc, err := pol.Allocate(in, nil)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// The profitable pair should have been adopted: its unit carries time.
	pairTime := 0.0
	for j := range in.Workers {
		pairTime += alloc.X[3][j]
	}
	if pairTime <= 0 {
		t.Error("profitable pair never adopted")
	}
	badTime := 0.0
	for j := range in.Workers {
		badTime += alloc.X[4][j]
	}
	if badTime > 0 {
		t.Error("unprofitable pair adopted")
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := &Input{Workers: []float64{1, 1}, Prices: []float64{1, 1}}
	pols := []Policy{
		&MaxMinFairness{}, FIFO{}, ShortestJobFirst{}, Makespan{},
		&FinishTimeFairness{}, &MinCost{}, MaxTotalThroughput{},
		&Agnostic{Inner: &MaxMinFairness{}}, &AlloX{}, &Hierarchical{},
		NewGandivaSpaceSharing(1),
	}
	for _, p := range pols {
		alloc, err := p.Allocate(empty, nil)
		if err != nil {
			t.Fatalf("%s on empty input: %v", p.Name(), err)
		}
		if len(alloc.X) != 0 {
			t.Fatalf("%s returned non-empty allocation", p.Name())
		}
	}
}

// TestPropertyAllPoliciesProduceValidAllocations fuzzes every policy with
// random inputs and checks allocation validity — the paper's constraint
// set (§3.1) is a hard invariant.
func TestPropertyAllPoliciesProduceValidAllocations(t *testing.T) {
	pols := []Policy{
		&MaxMinFairness{}, FIFO{}, ShortestJobFirst{}, Makespan{},
		&FinishTimeFairness{}, &MinCost{}, &MinCost{EnforceSLOs: false},
		MaxTotalThroughput{}, &Agnostic{Inner: &MaxMinFairness{}},
		&Agnostic{Inner: FIFO{}}, &AlloX{}, &Hierarchical{},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInput(rng, 1+rng.Intn(7), 2+rng.Intn(2))
		for _, p := range pols {
			alloc, err := p.Allocate(in, nil)
			if err != nil {
				t.Logf("%s: %v", p.Name(), err)
				return false
			}
			if err := alloc.Validate(in.scaleFactors(), in.Workers); err != nil {
				t.Logf("%s invalid: %v", p.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMalformedInput(t *testing.T) {
	in := paperExampleInput()
	in.Units = in.Units[:1] // fewer units than jobs
	if _, err := (&MaxMinFairness{}).Allocate(in, nil); err == nil {
		t.Fatal("want validation error")
	}
}
