package policy

import (
	"math/rand"

	"gavel/internal/core"
)

// GandivaSpaceSharing is the paper's "LAS w/ Gandiva SS" baseline: a
// heterogeneity-agnostic least-attained-service allocation, plus Gandiva's
// ad-hoc space sharing — random exploration of job pairings that are kept
// when the observed combined throughput beats time sharing (§8, "resorting
// to random exploration of job combinations until a combination that
// improves performance is found"). Unlike Gavel's SS-aware LP, pairing is
// not optimized against the global objective.
type GandivaSpaceSharing struct {
	// TriesPerRound bounds random pair exploration per allocation call.
	TriesPerRound int
	// Seed makes exploration deterministic.
	Seed int64

	base    Agnostic
	rng     *rand.Rand
	matched map[[2]int]bool // persistent good pairings, by job IDs
}

// NewGandivaSpaceSharing constructs the baseline with a deterministic
// exploration stream.
func NewGandivaSpaceSharing(seed int64) *GandivaSpaceSharing {
	return &GandivaSpaceSharing{
		TriesPerRound: 16,
		Seed:          seed,
		base:          Agnostic{Inner: &MaxMinFairness{}},
		matched:       map[[2]int]bool{},
	}
}

// Name implements Policy.
func (p *GandivaSpaceSharing) Name() string { return "gandiva_ss" }

// SerialOnly implements SerialPolicy: Allocate advances the exploration rng
// and mutates the matched-pair set without synchronization.
func (p *GandivaSpaceSharing) SerialOnly() {}

// Allocate implements Policy.
func (p *GandivaSpaceSharing) Allocate(in *Input, ctx *SolveContext) (*core.Allocation, error) {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.Seed))
	}
	if p.matched == nil {
		p.matched = map[[2]int]bool{}
	}
	alloc, err := p.base.Allocate(in, ctx)
	if err != nil {
		return nil, err
	}
	pairs := in.Units[len(in.Jobs):]
	if len(pairs) == 0 {
		return alloc, nil
	}

	// Random exploration: sample candidate pair units; keep a pairing when
	// the pair's combined normalized throughput on some type beats running
	// the two jobs alternately (i.e. > 1). Gandiva would measure this
	// online; the pair units carry the measured/estimated values.
	tries := p.TriesPerRound
	if tries <= 0 {
		tries = 16
	}
	inPair := map[int]bool{} // job index -> already committed this call
	type chosen struct {
		unitIdx int
	}
	var kept []chosen
	for t := 0; t < tries && len(pairs) > 0; t++ {
		pi := p.rng.Intn(len(pairs))
		u := &pairs[pi]
		a, b := u.Jobs[0], u.Jobs[1]
		if inPair[a] || inPair[b] {
			continue
		}
		key := pairKey(in.Jobs[a].ID, in.Jobs[b].ID)
		if !p.matched[key] {
			// "Measure" the pairing once: keep it if profitable anywhere.
			profitable := false
			for j := range in.Workers {
				ta, tb := u.Tput[0][j], u.Tput[1][j]
				ia, ib := in.Jobs[a].Tput[j], in.Jobs[b].Tput[j]
				if ia > 0 && ib > 0 && ta/ia+tb/ib > 1.05 {
					profitable = true
					break
				}
			}
			if !profitable {
				continue
			}
			p.matched[key] = true
		}
		inPair[a], inPair[b] = true, true
		kept = append(kept, chosen{unitIdx: len(in.Jobs) + pi})
	}

	// Move each kept pair's members' single-job allocations onto the pair
	// unit: the pair runs whenever either member would have.
	for _, c := range kept {
		u := &in.Units[c.unitIdx]
		a, b := u.Jobs[0], u.Jobs[1]
		for j := range in.Workers {
			if u.Tput[0][j] <= 0 && u.Tput[1][j] <= 0 {
				continue
			}
			combined := alloc.X[a][j] + alloc.X[b][j]
			if combined > 1 {
				combined = 1
			}
			alloc.X[c.unitIdx][j] = combined
			alloc.X[a][j] = 0
			alloc.X[b][j] = 0
		}
	}
	return alloc, nil
}

func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
