package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 4, 2, 3}
	if Percentile(v, 0) != 1 || Percentile(v, 100) != 5 {
		t.Fatal("extremes")
	}
	if Median(v) != 3 {
		t.Fatalf("median = %v", Median(v))
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated (sorted copy).
	if v[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{2, 2, 2}) != 0 {
		t.Fatal("constant stddev")
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("stddev = %v, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{4, 1, 3, 2}, 4)
	if len(pts) != 4 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[3].Value != 4 || pts[3].Fraction != 1 {
		t.Fatalf("last point %+v", pts[3])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty CDF")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(v []float64) bool {
		if len(v) == 0 {
			return true
		}
		for _, x := range v {
			if math.IsNaN(x) {
				return true
			}
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := Percentile(v, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
