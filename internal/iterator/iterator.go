// Package iterator is the Go analog of the paper's GavelIterator (§6): a
// wrapper around a training loop that runs in scheduler-granted rounds,
// checkpoints at round boundaries unless the lease is renewed, and reports
// measured throughput back to the scheduler. User code supplies
// LoadCheckpoint/SaveCheckpoint functions (the paper's ~10-LOC contract)
// and a Step function that performs one training iteration.
package iterator

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Checkpointer is the user-implemented checkpoint contract.
type Checkpointer interface {
	// LoadCheckpoint restores state and returns the step to resume from.
	LoadCheckpoint() (step int64, err error)
	// SaveCheckpoint persists state at the given step.
	SaveCheckpoint(step int64) error
}

// Funcs adapts plain functions to Checkpointer.
type Funcs struct {
	Load func() (int64, error)
	Save func(int64) error
}

// LoadCheckpoint implements Checkpointer.
func (f Funcs) LoadCheckpoint() (int64, error) { return f.Load() }

// SaveCheckpoint implements Checkpointer.
func (f Funcs) SaveCheckpoint(step int64) error { return f.Save(step) }

// Lease abstracts the scheduler connection the iterator runs under
// (implemented by internal/rpc.Client in physical deployments and by fakes
// in tests).
type Lease interface {
	// Renewed reports whether the current job keeps this worker for the
	// next round.
	Renewed() bool
	// RoundRemaining is the time left in the current round.
	RoundRemaining() time.Duration
	// ReportThroughput sends the measured steps/sec for the round.
	ReportThroughput(stepsPerSecond float64) error
}

// Iterator drives a training loop for one scheduling round at a time.
type Iterator struct {
	ckpt  Checkpointer
	lease Lease
	// Step runs one training iteration at the given step index.
	Step func(step int64) error

	step    int64
	started bool
}

// New constructs an iterator; step is the per-iteration training function.
func New(ckpt Checkpointer, lease Lease, step func(int64) error) *Iterator {
	return &Iterator{ckpt: ckpt, lease: lease, Step: step}
}

// ErrLeaseExpired is returned by RunRound when the round ends and the
// lease was not renewed: the caller must return control to the scheduler.
var ErrLeaseExpired = errors.New("iterator: lease expired; checkpoint saved")

// CurrentStep returns the training step reached so far.
func (it *Iterator) CurrentStep() int64 { return it.step }

// RunRound executes training iterations until the round's time budget is
// exhausted, then either continues (lease renewed) or checkpoints and
// returns ErrLeaseExpired. It reports the measured throughput for the
// round before returning. A cancelled context checkpoints and returns the
// context error.
func (it *Iterator) RunRound(ctx context.Context) error {
	if !it.started {
		step, err := it.ckpt.LoadCheckpoint()
		if err != nil {
			return fmt.Errorf("iterator: load checkpoint: %w", err)
		}
		it.step = step
		it.started = true
	}
	start := time.Now()
	startStep := it.step
	for {
		select {
		case <-ctx.Done():
			if err := it.ckpt.SaveCheckpoint(it.step); err != nil {
				return fmt.Errorf("iterator: save checkpoint: %w", err)
			}
			return ctx.Err()
		default:
		}
		if it.lease.RoundRemaining() <= 0 {
			break
		}
		if err := it.Step(it.step); err != nil {
			return fmt.Errorf("iterator: training step %d: %w", it.step, err)
		}
		it.step++
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		tput := float64(it.step-startStep) / elapsed
		if err := it.lease.ReportThroughput(tput); err != nil {
			return fmt.Errorf("iterator: report throughput: %w", err)
		}
	}
	if it.lease.Renewed() {
		return nil
	}
	if err := it.ckpt.SaveCheckpoint(it.step); err != nil {
		return fmt.Errorf("iterator: save checkpoint: %w", err)
	}
	return ErrLeaseExpired
}
