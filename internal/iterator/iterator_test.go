package iterator

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeLease grants a fixed number of steps worth of round time and renews
// a configurable number of times.
type fakeLease struct {
	stepsLeft int
	renewals  int
	reported  []float64
}

func (f *fakeLease) Renewed() bool {
	if f.renewals > 0 {
		f.renewals--
		f.stepsLeft = 5
		return true
	}
	return false
}

func (f *fakeLease) RoundRemaining() time.Duration {
	if f.stepsLeft <= 0 {
		return 0
	}
	f.stepsLeft--
	return time.Second
}

func (f *fakeLease) ReportThroughput(t float64) error {
	f.reported = append(f.reported, t)
	return nil
}

type memCkpt struct {
	step  int64
	saves int
	loads int
}

func (m *memCkpt) LoadCheckpoint() (int64, error) { m.loads++; return m.step, nil }
func (m *memCkpt) SaveCheckpoint(s int64) error   { m.saves++; m.step = s; return nil }

func TestRunRoundStepsAndExpires(t *testing.T) {
	ck := &memCkpt{step: 10}
	lease := &fakeLease{stepsLeft: 5}
	var ran []int64
	it := New(ck, lease, func(s int64) error { ran = append(ran, s); return nil })

	err := it.RunRound(context.Background())
	if !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("err = %v, want ErrLeaseExpired", err)
	}
	if len(ran) != 5 || ran[0] != 10 || ran[4] != 14 {
		t.Fatalf("ran steps %v, want 10..14", ran)
	}
	if ck.saves != 1 || ck.step != 15 {
		t.Fatalf("checkpoint saves=%d step=%d, want 1 save at 15", ck.saves, ck.step)
	}
	if len(lease.reported) != 1 {
		t.Fatalf("throughput reports = %v, want 1", lease.reported)
	}
}

func TestRunRoundRenewalSkipsCheckpoint(t *testing.T) {
	ck := &memCkpt{}
	lease := &fakeLease{stepsLeft: 3, renewals: 1}
	it := New(ck, lease, func(int64) error { return nil })

	if err := it.RunRound(context.Background()); err != nil {
		t.Fatalf("renewed round should not error: %v", err)
	}
	if ck.saves != 0 {
		t.Fatal("renewed lease must not checkpoint")
	}
	// Next round expires.
	if err := it.RunRound(context.Background()); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("err = %v, want ErrLeaseExpired", err)
	}
	if ck.saves != 1 {
		t.Fatal("expired lease must checkpoint")
	}
}

func TestRunRoundResumesFromCheckpoint(t *testing.T) {
	ck := &memCkpt{step: 42}
	lease := &fakeLease{stepsLeft: 1}
	var first int64 = -1
	it := New(ck, lease, func(s int64) error {
		if first == -1 {
			first = s
		}
		return nil
	})
	_ = it.RunRound(context.Background())
	if first != 42 {
		t.Fatalf("resumed at step %d, want 42", first)
	}
	if ck.loads != 1 {
		t.Fatalf("loads = %d, want 1", ck.loads)
	}
}

func TestRunRoundContextCancel(t *testing.T) {
	ck := &memCkpt{}
	lease := &fakeLease{stepsLeft: 1000}
	ctx, cancel := context.WithCancel(context.Background())
	it := New(ck, lease, func(s int64) error {
		if s == 3 {
			cancel()
		}
		return nil
	})
	err := it.RunRound(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ck.saves != 1 {
		t.Fatal("cancel must checkpoint")
	}
}

func TestRunRoundStepError(t *testing.T) {
	ck := &memCkpt{}
	lease := &fakeLease{stepsLeft: 5}
	boom := errors.New("loss is NaN")
	it := New(ck, lease, func(int64) error { return boom })
	if err := it.RunRound(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want training error", err)
	}
}
