package simulator

// Submission-plane acceptance: trace jobs streamed through Submit /
// AdmitPending instead of direct admission, per-tenant quotas isolating a
// flooding tenant from a well-behaved one, and the declared-vs-measured
// trust review quarantining a misreporting tenant and clamping its rows to
// measured values.

import (
	"math"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/workload"
)

// shortJobs are 2-6 minute jobs (one round or so each); mediumJobs run long
// enough to sit through several trust reviews.
var (
	shortJobs  = workload.TraceOptions{DurationMinMinutes: 2, DurationMaxMinutes: 6}
	mediumJobs = workload.TraceOptions{DurationMinMinutes: 30, DurationMaxMinutes: 60}
)

func submissionTestConfig(trace []workload.Job, adm *rpc.AdmissionConfig) Config {
	_, c0 := rpc.NewLocalShard()
	_, c1 := rpc.NewLocalShard()
	return Config{
		Cluster:      cluster.Simulated108(),
		Policy:       &policy.MaxMinFairness{},
		Trace:        trace,
		ShardClients: []rpc.ShardClient{c0, c1},
		Admission:    adm,
		Seed:         7,
	}
}

func tenantStat(t *testing.T, res *Result, name string) rpc.TenantStatus {
	t.Helper()
	for _, ts := range res.Tenants {
		if ts.Tenant == name {
			return ts
		}
	}
	t.Fatalf("no tenant %q in result (have %v)", name, res.Tenants)
	return rpc.TenantStatus{}
}

// TestSubmissionPlaneCompletes streams one honest tenant's jobs through the
// submission plane and checks the full lifecycle: every submission is
// accepted, admitted, and resolved Done, with the queue drained.
func TestSubmissionPlaneCompletes(t *testing.T) {
	trace := workload.GenerateTenantTrace(3, []workload.TenantSpec{
		{Name: "alice", NumJobs: 8, LambdaPerHour: 60, Trace: shortJobs},
	})
	res, err := Run(submissionTestConfig(trace, &rpc.AdmissionConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs unfinished", res.Unfinished)
	}
	ts := tenantStat(t, res, "alice")
	if ts.Submitted != 8 || ts.Admitted != 8 || ts.Done != 8 {
		t.Fatalf("lifecycle accounting off: %+v", ts)
	}
	if ts.Queued != 0 || ts.Resident != 0 || ts.Quarantined {
		t.Fatalf("terminal state not clean: %+v", ts)
	}
}

// TestSubmissionPlaneDeterminism runs the same multi-tenant submission
// config twice and requires byte-identical results — including the tenant
// accounting and the decision log, which ride the fingerprint's JSON.
func TestSubmissionPlaneDeterminism(t *testing.T) {
	run := func() string {
		trace := workload.GenerateTenantTrace(11, []workload.TenantSpec{
			{Name: "a", NumJobs: 6, LambdaPerHour: 120, Trace: shortJobs},
			{Name: "b", NumJobs: 6, LambdaPerHour: 120, DeclareFactor: 3, Trace: shortJobs},
		})
		adm := &rpc.AdmissionConfig{MaxQueuePerTenant: 3, RatePerRound: 1}
		cfg := submissionTestConfig(trace, adm)
		cfg.MaxSimulatedSeconds = 100 * 360
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(t, res)
	}
	if run() != run() {
		t.Fatal("submission-plane run is not deterministic")
	}
}

// TestFloodedTenantCannotStarveWellBehaved is the isolation acceptance: a
// tenant flooding the coordinator with a seeded burst is held to its queue
// and rate quotas, and the well-behaved tenant's jobs are all admitted and
// finished exactly as they would be without the flood.
func TestFloodedTenantCannotStarveWellBehaved(t *testing.T) {
	adm := func() *rpc.AdmissionConfig {
		return &rpc.AdmissionConfig{
			MaxQueuePerTenant:    4,
			RatePerRound:         1,
			Burst:                2,
			MaxResidentPerTenant: 6,
		}
	}
	steady := workload.TenantSpec{Name: "steady", NumJobs: 6, LambdaPerHour: 30, Trace: shortJobs}
	flood := workload.TenantSpec{Name: "flood", NumJobs: 30, LambdaPerHour: 100000, Trace: shortJobs}

	solo := submissionTestConfig(workload.GenerateTenantTrace(5, []workload.TenantSpec{steady}), adm())
	solo.MaxSimulatedSeconds = 300 * 360
	soloRes, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	soloSteady := tenantStat(t, soloRes, "steady")

	both := submissionTestConfig(workload.GenerateTenantTrace(5, []workload.TenantSpec{flood, steady}), adm())
	both.MaxSimulatedSeconds = 300 * 360
	bothRes, err := Run(both)
	if err != nil {
		t.Fatal(err)
	}
	bothSteady := tenantStat(t, bothRes, "steady")
	bothFlood := tenantStat(t, bothRes, "flood")

	if soloSteady.Admitted != 6 || soloSteady.Done != 6 {
		t.Fatalf("baseline steady tenant did not complete: %+v", soloSteady)
	}
	if bothSteady.Admitted < soloSteady.Admitted {
		t.Fatalf("flood reduced the well-behaved tenant's admissions: %d < %d",
			bothSteady.Admitted, soloSteady.Admitted)
	}
	if bothSteady.Done < soloSteady.Done {
		t.Fatalf("flood stranded the well-behaved tenant's jobs: %d done < %d",
			bothSteady.Done, soloSteady.Done)
	}
	if bothFlood.Refused == 0 {
		t.Fatal("the flood never hit backpressure — quotas did not engage")
	}
}

// TestMisreportingTenantQuarantined is the trust-review acceptance: a tenant
// declaring 3x its true throughput is quarantined within a bounded number of
// rounds, its clamp ratio converges to measured/declared, and the decision
// is logged; the honest tenant sharing the cluster is untouched.
func TestMisreportingTenantQuarantined(t *testing.T) {
	trace := workload.GenerateTenantTrace(9, []workload.TenantSpec{
		{Name: "honest", NumJobs: 4, LambdaPerHour: 600, Trace: mediumJobs},
		{Name: "liar", NumJobs: 4, LambdaPerHour: 600, DeclareFactor: 3, Trace: mediumJobs},
	})
	res, err := Run(submissionTestConfig(trace, &rpc.AdmissionConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs unfinished (clamping must slow, not strand)", res.Unfinished)
	}
	liar := tenantStat(t, res, "liar")
	if !liar.Quarantined {
		t.Fatalf("misreporting tenant was not quarantined: %+v", liar)
	}
	if math.Abs(liar.ClampRatio-1.0/3.0) > 0.05 {
		t.Fatalf("clamp ratio %.4f did not converge to measured/declared 1/3", liar.ClampRatio)
	}
	if honest := tenantStat(t, res, "honest"); honest.Quarantined {
		t.Fatal("honest tenant was quarantined")
	}
	quarantinedAt := int64(-1)
	for _, d := range res.Decisions {
		if d.Action == "quarantine" && d.Tenant == "liar" {
			quarantinedAt = d.Round
			break
		}
	}
	if quarantinedAt < 0 {
		t.Fatal("no quarantine decision was logged")
	}
	if quarantinedAt > 10 {
		t.Fatalf("quarantine took %d rounds; convergence is not bounded", quarantinedAt)
	}
}
