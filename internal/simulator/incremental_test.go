package simulator

import (
	"math"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
	"gavel/internal/workload"
)

// roundTrace records the allocation in force at every executed round.
type roundTrace struct {
	units [][]int     // per round: flattened unit member lists
	x     [][]float64 // per round: flattened X matrix
}

func captureRounds(tr *roundTrace) func(float64, *core.Allocation, []int, []scheduler.Assignment) {
	return func(now float64, alloc *core.Allocation, active []int, assigns []scheduler.Assignment) {
		var units []int
		var x []float64
		for ui := range alloc.Units {
			units = append(units, alloc.Units[ui].Jobs...)
			units = append(units, -1) // separator
			x = append(x, alloc.X[ui]...)
		}
		tr.units = append(tr.units, units)
		tr.x = append(tr.x, x)
	}
}

// TestIncrementalMatchesColdSolves is the end-to-end equivalence check for
// the incremental allocation pipeline: a simulation using the persistent
// solve context (warm-started LPs, cached throughput matrices) must produce
// the same per-round allocations as the stateless cold pipeline, within
// 1e-6, while actually exercising warm starts.
func TestIncrementalMatchesColdSolves(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{NumJobs: 40, LambdaPerHour: 3, Seed: 7})
	// Distinct weights break allocation symmetry between identically
	// configured jobs, so the LP optimum each round is unique and the warm
	// and cold pivot paths must land on the same vertex.
	for i := range trace {
		trace[i].Weight = 1 + 0.01*float64(i)
	}

	base := Config{
		Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, Seed: 7,
		// Periodic reallocs create consecutive same-shaped solves, which
		// warm-start positionally; the event-driven reallocs in between
		// change the LP shape and exercise the remapped path.
		ReallocEveryRounds: 2,
	}

	var warm, cold roundTrace
	warmCfg := base
	warmCfg.OnRound = captureRounds(&warm)
	warmRes, err := Run(warmCfg)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldCfg := base
	coldCfg.ColdSolves = true
	coldCfg.OnRound = captureRounds(&cold)
	coldRes, err := Run(coldCfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	if warmRes.WarmSolves == 0 {
		t.Fatal("incremental run never warm-started a solve")
	}
	if warmRes.Rounds != coldRes.Rounds {
		t.Fatalf("round counts diverged: warm %d cold %d", warmRes.Rounds, coldRes.Rounds)
	}
	if len(warm.x) != len(cold.x) {
		t.Fatalf("captured %d warm rounds, %d cold", len(warm.x), len(cold.x))
	}
	for r := range warm.x {
		if len(warm.units[r]) != len(cold.units[r]) {
			t.Fatalf("round %d: unit structure diverged", r)
		}
		for k := range warm.units[r] {
			if warm.units[r][k] != cold.units[r][k] {
				t.Fatalf("round %d: unit members diverged at %d", r, k)
			}
		}
		for k := range warm.x[r] {
			if d := math.Abs(warm.x[r][k] - cold.x[r][k]); d > 1e-6 {
				t.Fatalf("round %d: allocation diverged by %v at entry %d (warm %v, cold %v)",
					r, d, k, warm.x[r][k], cold.x[r][k])
			}
		}
	}

	// Identical outcomes all the way down.
	for i := range warmRes.Jobs {
		wj, cj := warmRes.Jobs[i], coldRes.Jobs[i]
		if math.Abs(wj.JCT-cj.JCT) > 1e-6 && !(math.IsNaN(wj.JCT) && math.IsNaN(cj.JCT)) {
			t.Fatalf("job %d JCT diverged: warm %v cold %v", wj.ID, wj.JCT, cj.JCT)
		}
	}
	t.Logf("rounds=%d policyCalls=%d lpSolves=%d warmSolves=%d iterations=%d",
		warmRes.Rounds, warmRes.PolicyCalls, warmRes.LPSolves, warmRes.WarmSolves, warmRes.SimplexIterations)
}

// TestIncrementalSpaceSharingMatches runs the equivalence check with space
// sharing on, which exercises the pair rows of the throughput cache and the
// pair-keyed LP columns of the remap. Space-sharing LPs have alternate
// optimal vertices — a job's throughput can be composed from its single and
// pair units in equally-optimal splits, and at degenerate resets even the
// per-job throughput vector can tie — so warm and cold runs may take
// different (both optimal) trajectories. The run uses ideal execution
// (progress equals effective throughput exactly, removing mechanism
// round-off) and checks that end-to-end outcomes stay within a tight band:
// most jobs identical, every job's completion within 0.5% relative, while
// the remapped path actually engages. Per-solve objective parity, the exact
// guarantee, is enforced by internal/lp's warmstart/remap tests and the
// policy-level churn tests.
func TestIncrementalSpaceSharingMatches(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{NumJobs: 24, LambdaPerHour: 1.2, Seed: 9})
	for i := range trace {
		trace[i].Weight = 1 + 0.01*float64(i)
	}
	base := Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, Seed: 9,
		SpaceSharing: true, ReallocEveryRounds: 3,
		IdealExecution: true,
	}
	warmRes, err := Run(base)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldCfg := base
	coldCfg.ColdSolves = true
	coldRes, err := Run(coldCfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	exact := 0
	for i := range warmRes.Jobs {
		wj, cj := warmRes.Jobs[i], coldRes.Jobs[i]
		if math.IsNaN(wj.JCT) || math.IsNaN(cj.JCT) {
			if math.IsNaN(wj.JCT) != math.IsNaN(cj.JCT) {
				t.Fatalf("job %d finished in one pipeline only: warm %v cold %v", wj.ID, wj.JCT, cj.JCT)
			}
			continue
		}
		d := math.Abs(wj.JCT - cj.JCT)
		if d <= 1e-6 {
			exact++
		} else if d > 0.005*cj.JCT {
			t.Fatalf("job %d JCT diverged beyond band: warm %v cold %v", wj.ID, wj.JCT, cj.JCT)
		}
	}
	if exact < len(warmRes.Jobs)*2/3 {
		t.Fatalf("only %d/%d jobs matched cold exactly", exact, len(warmRes.Jobs))
	}
	if d := math.Abs(warmRes.Makespan - coldRes.Makespan); d > 0.005*coldRes.Makespan {
		t.Fatalf("makespan diverged: warm %v cold %v", warmRes.Makespan, coldRes.Makespan)
	}
	if warmRes.WarmSolves == 0 {
		t.Fatal("space-sharing incremental run never warm-started")
	}
	if warmRes.RemappedSolves == 0 {
		t.Fatal("space-sharing run with arrivals/completions never remapped a basis")
	}
	t.Logf("rounds=%d lpSolves=%d warm=%d remapped=%d iterations=%d exact=%d/%d",
		warmRes.Rounds, warmRes.LPSolves, warmRes.WarmSolves, warmRes.RemappedSolves,
		warmRes.SimplexIterations, exact, len(warmRes.Jobs))
}

// TestEventDrivenChurnMatchesColdSolves is the cross-shape equivalence
// check: with no periodic refresh, every reallocation is triggered by a job
// arrival or completion, so every cross-reset solve faces a changed LP
// shape. The remapped warm pipeline must produce the same per-round
// allocations as the stateless cold pipeline within 1e-6 while actually
// taking the remapped path on a substantial share of solves.
func TestEventDrivenChurnMatchesColdSolves(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{NumJobs: 40, LambdaPerHour: 3, Seed: 17})
	for i := range trace {
		trace[i].Weight = 1 + 0.01*float64(i)
	}
	base := Config{
		Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, Seed: 17,
		// No ReallocEveryRounds: resets come only from arrivals and
		// completions, i.e. 100% of resets change the job set.
	}

	var warm, cold roundTrace
	warmCfg := base
	warmCfg.OnRound = captureRounds(&warm)
	warmRes, err := Run(warmCfg)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldCfg := base
	coldCfg.ColdSolves = true
	coldCfg.OnRound = captureRounds(&cold)
	coldRes, err := Run(coldCfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}

	if warmRes.RemappedSolves == 0 {
		t.Fatal("event-driven churn run never took the remapped path")
	}
	// With every reset changing the job set, remapped solves should carry
	// the bulk of the cross-reset reuse (the first solve of each label is
	// necessarily cold).
	if warmRes.RemappedSolves < warmRes.LPSolves/2 {
		t.Fatalf("only %d/%d solves remapped under pure churn (warm=%d)",
			warmRes.RemappedSolves, warmRes.LPSolves, warmRes.WarmSolves)
	}
	if warmRes.Rounds != coldRes.Rounds {
		t.Fatalf("round counts diverged: warm %d cold %d", warmRes.Rounds, coldRes.Rounds)
	}
	if len(warm.x) != len(cold.x) {
		t.Fatalf("captured %d warm rounds, %d cold", len(warm.x), len(cold.x))
	}
	for r := range warm.x {
		if len(warm.units[r]) != len(cold.units[r]) {
			t.Fatalf("round %d: unit structure diverged", r)
		}
		for k := range warm.units[r] {
			if warm.units[r][k] != cold.units[r][k] {
				t.Fatalf("round %d: unit members diverged at %d", r, k)
			}
		}
		for k := range warm.x[r] {
			if d := math.Abs(warm.x[r][k] - cold.x[r][k]); d > 1e-6 {
				t.Fatalf("round %d: allocation diverged by %v at entry %d (warm %v, cold %v)",
					r, d, k, warm.x[r][k], cold.x[r][k])
			}
		}
	}
	for i := range warmRes.Jobs {
		wj, cj := warmRes.Jobs[i], coldRes.Jobs[i]
		if math.Abs(wj.JCT-cj.JCT) > 1e-6 && !(math.IsNaN(wj.JCT) && math.IsNaN(cj.JCT)) {
			t.Fatalf("job %d JCT diverged: warm %v cold %v", wj.ID, wj.JCT, cj.JCT)
		}
	}
	t.Logf("rounds=%d lpSolves=%d warm=%d remapped=%d iterations=%d",
		warmRes.Rounds, warmRes.LPSolves, warmRes.WarmSolves, warmRes.RemappedSolves, warmRes.SimplexIterations)
}

// TestPeriodicReallocAccounting checks the reset accounting: periodic
// refreshes increase PolicyCalls and LPSolves but, with a stable provider
// and unchanged job set, the warm-started refreshes cost ~zero simplex
// iterations relative to the event-driven run.
func TestPeriodicReallocAccounting(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{NumJobs: 30, LambdaPerHour: 3, Seed: 13})
	base := Config{
		Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, Seed: 13,
	}
	eventOnly, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	periodic := base
	periodic.ReallocEveryRounds = 1
	per, err := Run(periodic)
	if err != nil {
		t.Fatal(err)
	}
	if per.PolicyCalls <= eventOnly.PolicyCalls {
		t.Fatalf("periodic reallocs did not add policy calls: %d vs %d", per.PolicyCalls, eventOnly.PolicyCalls)
	}
	if per.LPSolves <= eventOnly.LPSolves {
		t.Fatalf("periodic reallocs did not add LP solves: %d vs %d", per.LPSolves, eventOnly.LPSolves)
	}
	if per.WarmSolves == 0 {
		t.Fatal("periodic refreshes should warm start")
	}
	// The refreshed solves re-solve unchanged problems from their own
	// optimal bases; allow a small slack for boundary rounds.
	if per.SimplexIterations > eventOnly.SimplexIterations+eventOnly.SimplexIterations/10 {
		t.Fatalf("periodic refreshes were not ~free: %d iterations vs %d",
			per.SimplexIterations, eventOnly.SimplexIterations)
	}
}
