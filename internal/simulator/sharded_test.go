package simulator

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

func shardedTestConfig(numShards int, jobs int) Config {
	return Config{
		Cluster: cluster.Simulated108(),
		Policy:  &policy.MaxMinFairness{},
		Trace: workload.GenerateTrace(workload.TraceOptions{
			NumJobs: jobs, LambdaPerHour: 12, Seed: 7,
		}),
		NumShards:            numShards,
		RebalanceEveryRounds: 5,
		SpaceSharing:         true,
		Seed:                 7,
	}
}

// fingerprint serializes everything deterministic about a Result. PolicyTime
// is wall-clock and inherently run-local (the monolithic engine's is too),
// so it is zeroed; every other field — per-job outcomes, float cost sums,
// solve buckets, per-shard stats — must be byte-identical.
func fingerprint(t *testing.T, r *Result) string {
	t.Helper()
	c := *r
	c.PolicyTime = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestShardedDeterminism is the no-ordering-leak acceptance: the same trace
// and shard count produce byte-identical results across runs and across
// GOMAXPROCS values, so neither map iteration nor goroutine scheduling can
// reach the merged allocations, assignments, or stats.
func TestShardedDeterminism(t *testing.T) {
	cfg := shardedTestConfig(3, 24)
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, base)

	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, again); got != want {
		t.Fatal("sharded run is not reproducible across runs")
	}

	prev := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		r, err := Run(cfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if got := fingerprint(t, r); got != want {
			t.Fatalf("sharded run differs at GOMAXPROCS=%d", procs)
		}
	}
}

// TestShardedRunCompletes sanity-checks the sharded engine end to end: all
// jobs finish, stats land in the sharded buckets, per-shard buckets sum to
// the global ones, and rebalancing actually migrated jobs warm.
func TestShardedRunCompletes(t *testing.T) {
	res, err := Run(shardedTestConfig(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs unfinished", res.Unfinished)
	}
	if res.NumShards != 4 || len(res.ShardStats) != 4 {
		t.Fatalf("shard stats missing: NumShards=%d len=%d", res.NumShards, len(res.ShardStats))
	}
	var solves, warm, remapped, iters, admitted int
	for _, st := range res.ShardStats {
		solves += st.LPSolves
		warm += st.WarmSolves
		remapped += st.RemappedSolves
		iters += st.SimplexIterations
		admitted += st.JobsAdmitted
		if st.ColdSolves != st.LPSolves-st.WarmSolves-st.RemappedSolves {
			t.Fatalf("shard %d: inconsistent solve buckets %+v", st.Shard, st)
		}
	}
	if solves != res.LPSolves || warm != res.WarmSolves || remapped != res.RemappedSolves || iters != res.SimplexIterations {
		t.Fatalf("per-shard buckets do not sum to the merged stats: %+v", res.ShardStats)
	}
	if admitted != len(res.Jobs) {
		t.Fatalf("admitted %d jobs across shards, trace has %d", admitted, len(res.Jobs))
	}
	if res.LPSolves == 0 || res.WarmSolves+res.RemappedSolves == 0 {
		t.Fatalf("sharded run never warm-started: %+v", res)
	}
}

// TestShardedMigrationsAreWarm checks the simulator-level half of the
// migration acceptance: a run with rebalancing enabled migrates jobs, and
// those migrations show up as remapped solves — the post-rebalance solve
// count stays consistent with at most one cold solve per shard (its first).
func TestShardedMigrationsAreWarm(t *testing.T) {
	res, err := Run(shardedTestConfig(3, 32))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 || res.Rebalances == 0 {
		t.Skipf("trace produced no migrations (%d/%d)", res.Migrations, res.Rebalances)
	}
	if res.RemappedSolves == 0 {
		t.Fatal("migrations happened but no solve took the remapped path")
	}
	for _, st := range res.ShardStats {
		if st.MigratedIn == 0 || st.LPSolves == 0 {
			continue
		}
		// A shard that received migrants cold-solves only its genuinely
		// first LPs (before any seed exists) and the rare churn event where
		// no basis column survives; migrations must not push the cold
		// bucket beyond that floor. maxmin solves two labeled LPs per
		// allocation, so the floor is 2 plus a small no-survivor allowance.
		if limit := 2 + st.LPSolves/10; st.ColdSolves > limit {
			t.Errorf("shard %d: %d cold solves (> %d) despite warm migration (stats %+v)",
				st.Shard, st.ColdSolves, limit, st)
		}
		if st.RemappedSolves == 0 {
			t.Errorf("shard %d received migrants but never remapped: %+v", st.Shard, st)
		}
	}
}

// TestShardedK1MatchesMonolithicOutcomes pins the K=1 sharded engine to the
// monolithic loop: one shard owns the whole cluster and the whole job set,
// so every job must complete at the same time with the same cost in both
// engines (the engines share the allocation, mechanism, and progress code).
func TestShardedK1MatchesMonolithicOutcomes(t *testing.T) {
	cfg := shardedTestConfig(1, 24)
	cfg.RebalanceEveryRounds = 0
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NumShards = 0
	mono, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded.Jobs) != len(mono.Jobs) {
		t.Fatal("job count mismatch")
	}
	for i := range mono.Jobs {
		a, b := sharded.Jobs[i], mono.Jobs[i]
		if a.ID != b.ID {
			t.Fatalf("job order diverged at %d", i)
		}
		if math.Abs(a.Completion-b.Completion) > 1e-6 || math.Abs(a.CostDollars-b.CostDollars) > 1e-6 {
			t.Errorf("job %d: sharded (%.3f, $%.4f) vs monolithic (%.3f, $%.4f)",
				a.ID, a.Completion, a.CostDollars, b.Completion, b.CostDollars)
		}
	}
	if sharded.Makespan != mono.Makespan {
		t.Errorf("makespan %v vs %v", sharded.Makespan, mono.Makespan)
	}
}

// TestShardedRejectsUnstableProvider pins the documented restriction: a
// provider with cross-pair learning cannot back per-shard caches.
func TestShardedRejectsUnstableProvider(t *testing.T) {
	cfg := shardedTestConfig(2, 4)
	cfg.Provider = unstableProvider{}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for a non-stable provider")
	}
}

// unstableProvider is an Oracle that refuses the StableProvider contract.
type unstableProvider struct{ Oracle }

func (unstableProvider) StableEstimates() bool { return false }

// TestShardedRejectsSerialPolicy pins the concurrency guard: policies that
// mutate unsynchronized state in Allocate (Gandiva's random exploration)
// must be rejected rather than raced across shards — including when hidden
// behind the heterogeneity-agnostic wrapper.
func TestShardedRejectsSerialPolicy(t *testing.T) {
	cfg := shardedTestConfig(2, 4)
	cfg.Policy = policy.NewGandivaSpaceSharing(1)
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for a serial-only policy")
	}
	cfg.Policy = &policy.Agnostic{Inner: policy.NewGandivaSpaceSharing(1)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error for a wrapped serial-only policy")
	}
}
