package simulator

// Telemetry-plane acceptance tests: observability must be a pure read-only
// overlay. (1) Turning the plane on cannot change a seeded chaos run's
// results by a single byte. (2) Under a stub clock, the deterministic metric
// dump is a pure function of the seeded workload — two same-seed runs agree
// exactly. (3) Trace IDs minted by the coordinator survive the chaos
// transport into the shard daemons, and duplicated deliveries absorbed by
// the reply cache do not double-count server-side spans.

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/cluster"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/rpc"
)

// obsChaosConfig is the seeded fault mix shared by the on/off and
// snapshot-reproducibility tests — drops (exercising retries), duplicates
// (exercising the reply cache), and delays.
func obsChaosConfig() chaos.Config {
	return chaos.Config{
		Seed: 11, Drop: 0.04, Dup: 0.04, Delay: 0.05, MaxDelay: 100 * time.Microsecond,
	}
}

// obsServiceRun executes one service-engine chaos run with an optional
// telemetry plane attached and returns the result fingerprint.
func obsServiceRun(t *testing.T, plane *obs.Plane) string {
	t.Helper()
	clients := make([]rpc.ShardClient, 2)
	for k := range clients {
		_, clients[k] = rpc.NewLocalShard()
	}
	cfg := serviceTestConfig(16, clients)
	cfg.Chaos = obsChaosConfig()
	cfg.RPC = rpc.CallPolicy{Retries: 5, Backoff: time.Millisecond, JitterSeed: 1}
	cfg.Obs = plane
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	return fingerprint(t, res)
}

// stubPlane returns a plane whose clock is pinned, so every duration
// observation is exactly zero and the deterministic dump cannot depend on
// wall-clock scheduling.
func stubPlane() *obs.Plane {
	p := obs.NewPlane()
	t0 := time.Unix(1700000000, 0)
	p.SetClock(func() time.Time { return t0 })
	return p
}

// TestObsOffOnByteIdentical is the observer-effect acceptance: the same
// seeded chaos workload lands byte-identical results with the telemetry
// plane off and on. Metrics and spans may observe every decision; they may
// influence none.
func TestObsOffOnByteIdentical(t *testing.T) {
	off := obsServiceRun(t, nil)
	on := obsServiceRun(t, stubPlane())
	if off != on {
		t.Fatal("attaching the telemetry plane changed a seeded chaos run's results")
	}
}

// TestObsSnapshotReproducible is the metrics-determinism acceptance: two
// same-seed chaos runs, each with a fresh stub-clock plane, produce equal
// deterministic dumps — counter for counter, bucket for bucket.
func TestObsSnapshotReproducible(t *testing.T) {
	p1, p2 := stubPlane(), stubPlane()
	obsServiceRun(t, p1)
	obsServiceRun(t, p2)
	d1 := p1.Registry().DumpDeterministic()
	d2 := p2.Registry().DumpDeterministic()
	if d1 == "" {
		t.Fatal("deterministic dump is empty after an instrumented run")
	}
	for _, series := range []string{
		"gavel_rounds_total",
		"gavel_rpc_calls_total",
		"gavel_chaos_faults_total",
	} {
		if !strings.Contains(d1, series) {
			t.Fatalf("deterministic dump is missing %s:\n%s", series, d1)
		}
	}
	if d1 != d2 {
		t.Fatalf("same seed produced different metric snapshots:\n--- run 1\n%s--- run 2\n%s", d1, d2)
	}
}

// TestObsTracePropagationUnderDup drives a journaled Service over chaos
// transports that duplicate every idempotent call. Coordinator-minted round
// trace IDs must arrive in the shard daemons' spans, and the duplicated
// deliveries — absorbed by the idempotent surface and the per-round reply
// cache — must not create extra server-side spans.
func TestObsTracePropagationUnderDup(t *testing.T) {
	const shards, rounds, jobs = 2, 3, 4

	coordPlane := stubPlane()
	shardPlanes := make([]*obs.Plane, shards)
	clients := make([]rpc.ShardClient, shards)
	for k := range clients {
		srv, inner := rpc.NewLocalShard()
		shardPlanes[k] = stubPlane()
		srv.SetObs(shardPlanes[k])
		tr := chaos.Wrap(inner, chaos.Config{Seed: 7, Dup: 1.0}, k).(*chaos.Transport)
		tr.SetObs(coordPlane)
		pol := rpc.CallPolicy{Retries: 3, Backoff: time.Microsecond, JitterSeed: 1, Obs: coordPlane}
		clients[k] = rpc.WithRetry(tr, pol)
	}

	svc, err := rpc.NewService(rpc.ServiceConfig{
		Cluster: cluster.Spec{Types: []cluster.AcceleratorType{
			{Name: "v100", Count: 4, PricePerHour: cluster.PriceV100, PerServer: 4},
			{Name: "k80", Count: 4, PricePerHour: cluster.PriceK80, PerServer: 4},
		}},
		Policy:  rpc.PolicySpec{Name: "max_min_fairness"},
		Journal: t.TempDir() + "/obs.wal",
		Obs:     coordPlane,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	info := func(id int) policy.JobInfo {
		return policy.JobInfo{Weight: 1, RemainingSteps: 1000, TotalSteps: 2000, ArrivalSeq: id}
	}
	for r := 0; r < rounds; r++ {
		if r == 0 {
			for id := 0; id < jobs; id++ {
				if _, err := svc.Admit(id, 1, []float64{1 + float64(id)*0.25, 0.5}); err != nil {
					t.Fatalf("admit %d: %v", id, err)
				}
			}
		}
		// force=true re-solves every shard every round, so the expected span
		// counts below are exact rather than dependent on dirty tracking.
		if err := svc.AllocateAll(int64(r), info, true); err != nil {
			t.Fatalf("round %d: AllocateAll: %v", r, err)
		}
		if _, err := svc.AssignRound(int64(r), 10, nil); err != nil {
			t.Fatalf("round %d: AssignRound: %v", r, err)
		}
		if err := svc.EndRound(int64(r)); err != nil {
			t.Fatalf("round %d: EndRound: %v", r, err)
		}
	}

	// The duplicator must actually have fired, or the test proves nothing.
	dups := coordPlane.Registry().
		CounterVec("gavel_chaos_faults_total", "", "kind").With("dup").Value()
	if dups == 0 {
		t.Fatal("chaos transport injected no duplicates at Dup=1.0")
	}

	coordCounts := coordPlane.Tracer().CountSpans()
	if got := coordCounts["coord.allocate"]; got != rounds*shards {
		t.Fatalf("coord.allocate spans = %d, want %d", got, rounds*shards)
	}
	if got := coordCounts["coord.assign"]; got != rounds*shards {
		t.Fatalf("coord.assign spans = %d, want %d", got, rounds*shards)
	}
	if got := coordCounts["journal.commit"]; got != rounds {
		t.Fatalf("journal.commit spans = %d, want %d", got, rounds)
	}

	installs, cached := 0, int64(0)
	traceRe := regexp.MustCompile(`^round-\d{6}$`)
	for k, p := range shardPlanes {
		counts := p.Tracer().CountSpans()
		installs += counts["shard.install"]
		// Every AllocateAll and AssignRound was delivered twice; the reply
		// cache must hold server-side spans to one per round.
		if got := counts["shard.allocate"]; got != rounds {
			t.Fatalf("shard %d: shard.allocate spans = %d, want %d (dup double-counted?)", k, got, rounds)
		}
		if got := counts["shard.assign"]; got != rounds {
			t.Fatalf("shard %d: shard.assign spans = %d, want %d (dup double-counted?)", k, got, rounds)
		}
		for _, m := range []string{"Allocate", "AssignRound", "Install"} {
			cached += p.Registry().
				CounterVec("gavel_shard_cached_replies_total", "", "method").With(m).Value()
		}
		for _, sp := range p.Tracer().Spans() {
			if !traceRe.MatchString(sp.Trace) {
				t.Fatalf("shard %d: span %q carries trace %q, want round-NNNNNN (propagation broken)", k, sp.Name, sp.Trace)
			}
		}
	}
	if installs != jobs {
		t.Fatalf("shard.install spans across shards = %d, want %d (one per unique job)", installs, jobs)
	}
	if cached == 0 {
		t.Fatal("no duplicated deliveries were answered from the reply cache")
	}
}
