package simulator

import (
	"strings"
	"testing"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/rpc"
)

// chaosRun executes one service-engine run with every shard client wrapped in
// a seeded chaos transport under the production retry policy, returning the
// result fingerprint and the concatenated per-shard fault schedule. Wrapping
// is done here (not via cfg.Chaos) so the test keeps handles to the
// *chaos.Transport values and can read their schedules back.
func chaosRun(t *testing.T, ccfg chaos.Config) (string, string) {
	t.Helper()
	pol := rpc.CallPolicy{Retries: 5, Backoff: time.Millisecond, JitterSeed: 1}
	var transports []*chaos.Transport
	clients := make([]rpc.ShardClient, 2)
	for k := range clients {
		_, inner := rpc.NewLocalShard()
		tr := chaos.Wrap(inner, ccfg, k).(*chaos.Transport)
		transports = append(transports, tr)
		clients[k] = rpc.WithRetry(tr, pol)
	}
	res, err := Run(serviceTestConfig(16, clients))
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs stranded under chaos (drops are transient and retried)", res.Unfinished)
	}
	var sched strings.Builder
	for k, tr := range transports {
		sched.WriteString("shard ")
		sched.WriteString(string(rune('0' + k)))
		sched.WriteString("\n")
		sched.WriteString(tr.ScheduleString())
	}
	return fingerprint(t, res), sched.String()
}

// TestChaosScheduleReproducible is the fault-plane acceptance: two runs under
// the same chaos seed inject the identical fault schedule (same calls, same
// methods, same faults) and land byte-identical results — drops masked by
// retry, duplicates absorbed by the daemons' idempotent surface, delays
// invisible to the simulated clock.
func TestChaosScheduleReproducible(t *testing.T) {
	ccfg := chaos.Config{
		Seed: 11, Drop: 0.04, Dup: 0.04, Delay: 0.05, MaxDelay: 100 * time.Microsecond,
	}
	fp1, sched1 := chaosRun(t, ccfg)
	fp2, sched2 := chaosRun(t, ccfg)
	if sched1 == "" || !strings.Contains(sched1, "drop") {
		t.Fatalf("chaos injected no drops over a full run:\n%s", sched1)
	}
	if sched1 != sched2 {
		t.Fatalf("same seed produced different fault schedules:\n--- run 1\n%s--- run 2\n%s", sched1, sched2)
	}
	if fp1 != fp2 {
		t.Fatal("same fault schedule produced different results")
	}
}
