package simulator

import (
	"math"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
	"gavel/internal/workload"
)

func TestRunValidation(t *testing.T) {
	trace := smallTrace(2, 0, 1)
	if _, err := Run(Config{Policy: &policy.MaxMinFairness{}, Trace: trace}); err == nil {
		t.Fatal("want error for empty cluster")
	}
	if _, err := Run(Config{Cluster: cluster.Small12(), Trace: trace}); err == nil {
		t.Fatal("want error for missing policy")
	}
	bad := cluster.Spec{Types: []cluster.AcceleratorType{{Name: "tpu", Count: 4, PerServer: 4}}}
	if _, err := Run(Config{Cluster: bad, Policy: &policy.MaxMinFairness{}, Trace: trace}); err == nil {
		t.Fatal("want error for non-standard type universe")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: smallTrace(10, 3, 4), RoundSeconds: 360, SpaceSharing: true, Seed: 4,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].JCT != b.Jobs[i].JCT {
			t.Fatalf("job %d JCT differs across identical runs: %v vs %v", i, a.Jobs[i].JCT, b.Jobs[i].JCT)
		}
	}
	if a.TotalCost != b.TotalCost {
		t.Fatalf("cost differs: %v vs %v", a.TotalCost, b.TotalCost)
	}
}

func TestCheckpointOverheadSlowsJobs(t *testing.T) {
	trace := smallTrace(8, 0, 2)
	base, err := Run(Config{
		Cluster: cluster.Small9(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(Config{
		Cluster: cluster.Small9(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, CheckpointSeconds: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Makespan < base.Makespan {
		t.Errorf("checkpoint overhead should not shrink makespan: %v < %v", slow.Makespan, base.Makespan)
	}
}

func TestTestbedNoiseStaysClose(t *testing.T) {
	trace := smallTrace(8, 0, 3)
	run := func(noise float64) float64 {
		r, err := Run(Config{
			Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
			Trace: trace, RoundSeconds: 360, TestbedNoise: noise, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.AvgJCT(0)
	}
	clean, noisy := run(0), run(0.04)
	if rel := math.Abs(noisy-clean) / clean; rel > 0.15 {
		t.Errorf("4%% throughput noise moved avg JCT by %.0f%%", rel*100)
	}
}

func TestCostAccounting(t *testing.T) {
	// One job on a dedicated cluster: cost ~= price x busy time.
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: 1, Seed: 9, DurationMinMinutes: 60, DurationMaxMinutes: 60,
	})
	res, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCost <= 0 {
		t.Fatal("no cost accrued")
	}
	// The job runs ~1h on a V100 at $2.48/h; rounds quantize upward.
	if res.TotalCost > 4*cluster.PriceV100 {
		t.Errorf("cost %v implausibly high for a ~1h single-GPU job", res.TotalCost)
	}
}

func TestSLOViolationDetection(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: 4, Seed: 10, DurationMinMinutes: 120, DurationMaxMinutes: 240,
		SLOFactors: []float64{0.0001}, // impossible deadlines
	})
	res, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolations != len(trace) {
		t.Errorf("violations = %d, want %d (impossible SLOs)", res.SLOViolations, len(trace))
	}
}

func TestMaxSimulatedSecondsCap(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: 4, Seed: 11, DurationMinMinutes: 10000, DurationMaxMinutes: 10000,
	})
	res, err := Run(Config{
		Cluster: cluster.Small9(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, MaxSimulatedSeconds: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished == 0 {
		t.Fatal("cap should leave long jobs unfinished")
	}
	for _, j := range res.Jobs {
		if !math.IsNaN(j.JCT) && j.Completion > 3600+360 {
			t.Fatalf("completion %v beyond cap", j.Completion)
		}
	}
}

func TestMultiWorkerJobsComplete(t *testing.T) {
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: 12, LambdaPerHour: 2, MultiWorker: true, Seed: 12,
		DurationMinMinutes: 30, DurationMaxMinutes: 120,
	})
	res, err := Run(Config{
		Cluster: cluster.Simulated108(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d multi-worker jobs unfinished", res.Unfinished)
	}
}

func TestOnRoundHookSeesAssignments(t *testing.T) {
	seen := 0
	_, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: smallTrace(4, 0, 13), RoundSeconds: 360,
		OnRound: func(now float64, alloc *core.Allocation, active []int, assigns []scheduler.Assignment) {
			seen += len(assigns)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("hook never observed an assignment")
	}
}

func TestIdealExecutionMatchesAllocation(t *testing.T) {
	// Ideal mode and mechanism mode should produce similar makespans for a
	// light workload (Figure 13b's premise).
	trace := smallTrace(6, 0, 14)
	mech, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: trace, RoundSeconds: 360, IdealExecution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mech.Makespan < ideal.Makespan*0.8 {
		t.Errorf("mechanism makespan %v much better than ideal %v", mech.Makespan, ideal.Makespan)
	}
	if mech.Makespan > ideal.Makespan*2.0 {
		t.Errorf("mechanism makespan %v much worse than ideal %v", mech.Makespan, ideal.Makespan)
	}
}

func TestRhoComputedOnCompletion(t *testing.T) {
	res, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: smallTrace(5, 1, 15), RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if math.IsNaN(j.JCT) {
			continue
		}
		if j.Rho <= 0 {
			t.Errorf("job %d has rho %v, want > 0", j.ID, j.Rho)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	res, err := Run(Config{
		Cluster: cluster.Small12(), Policy: &policy.MaxMinFairness{},
		Trace: nil, RoundSeconds: 360,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 0 || res.Rounds != 0 {
		t.Fatalf("empty trace produced %+v", res)
	}
}
