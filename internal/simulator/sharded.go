package simulator

import (
	"fmt"
	"math"
	"time"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
	"gavel/internal/workload"
)

// shardObserver feeds measured pair throughputs back into one shard's cache.
type shardObserver struct{ cache *core.ThroughputCache }

func (o shardObserver) observePair(aID, bID, typ int, ta, tb float64) {
	o.cache.ObservePair(aID, bID, typ, ta, tb)
}

// runSharded executes the simulation on the sharded engine: a
// cluster.Coordinator partitions jobs and devices across Config.NumShards
// shards, each owning its own solve context, throughput cache, and round
// mechanism. Per round, every stale shard recomputes its allocation and
// every shard runs its mechanism concurrently over a bounded worker pool;
// arrivals, departures, rebalancing migrations, and progress application are
// serialized in deterministic (trace and shard) order, so the merged Result
// is a pure function of the config — independent of GOMAXPROCS and
// goroutine scheduling.
func runSharded(cfg Config) (*Result, error) {
	e, err := newRunEnv(cfg)
	if err != nil {
		return nil, err
	}
	if s, ok := e.provider.(StableProvider); !ok || !s.StableEstimates() {
		return nil, fmt.Errorf("simulator: the sharded engine requires a stable throughput provider (per-shard caches cannot track cross-pair learning)")
	}
	if !policy.ConcurrentSafe(cfg.Policy) {
		return nil, fmt.Errorf("simulator: policy %s mutates internal state in Allocate and cannot run sharded (shards solve concurrently)", cfg.Policy.Name())
	}
	pairCap := 0
	if cfg.SpaceSharing {
		pairCap = e.maxPairs
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		NumShards:         cfg.NumShards,
		Cluster:           cfg.Cluster,
		LP:                cfg.lpOptions(),
		ColdSolves:        cfg.ColdSolves,
		Route:             cfg.ShardRoute,
		PairGainThreshold: pairGainThreshold,
		MaxPairsPerJob:    pairCap,
		Obs:               cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	trace, states, res := e.trace, e.states, e.res
	numShards := coord.NumShards()

	stateOf := make(map[int]int, len(trace)) // job ID -> state index
	allocStates := make([][]int, numShards)  // per shard: state indices parallel to AllocIDs
	shardRounds := make([]int, numShards)    // rounds since the shard's last allocation
	reallocated := make([]bool, numShards)

	// syncPairs queries the provider for every uncached single-worker
	// pairing of job j within shard s (arrival or migration destination).
	// Pairs never cross shards: partitioning the jobs partitions the pairs.
	syncPairs := func(s *cluster.Shard, j *workload.Job) {
		if !cfg.SpaceSharing || j.ScaleFactor > 1 {
			return
		}
		for _, otherID := range s.Jobs() {
			if otherID == j.ID {
				continue
			}
			other := states[stateOf[otherID]].job
			if other.ScaleFactor > 1 || s.Cache.HasPair(j.ID, otherID) {
				continue
			}
			ta := make([]float64, len(e.workers))
			tb := make([]float64, len(e.workers))
			for t := range ta {
				if ca, cb, ok := e.provider.Colocated(j, other, t); ok {
					ta[t], tb[t] = ca, cb
				}
			}
			s.Cache.SetPair(j.ID, otherID, ta, tb)
		}
	}

	now := 0.0
	completed := 0
	nextArrival := 0

	for completed < len(trace) && now < e.maxSec {
		// Retire finished jobs. Only stale shards can hold one: a finishing
		// job marks its shard dirty.
		for _, s := range coord.Shards() {
			if !s.Dirty {
				continue
			}
			for _, id := range s.Jobs() {
				if states[stateOf[id]].done {
					coord.Remove(id)
				}
			}
		}
		// Admit arrivals up to now, routed by the coordinator.
		for nextArrival < len(trace) && trace[nextArrival].Arrival <= now {
			st := states[nextArrival]
			j := st.job
			st.arrivalN = coord.NumJobs() + 1
			tput := make([]float64, len(e.workers))
			for t := range tput {
				tput[t] = e.provider.Isolated(j, t)
			}
			stateOf[j.ID] = nextArrival
			dest := coord.Admit(j.ID, j.ScaleFactor, tput)
			syncPairs(dest, j)
			nextArrival++
		}
		if coord.NumJobs() == 0 {
			// Fast-forward to the next arrival boundary.
			if nextArrival >= len(trace) {
				break
			}
			steps := math.Ceil((trace[nextArrival].Arrival - now) / e.round)
			if steps < 1 {
				steps = 1
			}
			now += steps * e.round
			continue
		}

		// Periodic rebalance: migrate jobs from the most to the least
		// loaded shard; their warm LP bases travel with them.
		if cfg.RebalanceEveryRounds > 0 && res.Rounds > 0 && res.Rounds%cfg.RebalanceEveryRounds == 0 {
			for _, m := range coord.Rebalance() {
				st := states[stateOf[m.Job]]
				// A migration is a physical placement change: server
				// indices are shard-local, so the old coordinates must not
				// suppress the checkpoint penalty or preemption count when
				// the destination shard happens to reuse the same numbers.
				st.lastType, st.lastServer, st.lastPartner = -1, -1, -1
				syncPairs(coord.Shard(m.To), st.job)
			}
		}

		// Recompute every stale shard's allocation concurrently.
		info := func(id int) policy.JobInfo {
			st := states[stateOf[id]]
			j := st.job
			ji := policy.JobInfo{
				Weight:         j.Weight,
				Priority:       j.Priority,
				RemainingSteps: j.TotalSteps - st.steps,
				TotalSteps:     j.TotalSteps,
				Elapsed:        now - j.Arrival,
				ArrivalSeq:     st.seq,
				Entity:         j.Entity,
			}
			if j.SLO > 0 {
				ji.SLORemaining = j.Arrival + j.SLO - now
				if ji.SLORemaining < 1 {
					ji.SLORemaining = 1
				}
			}
			return ji
		}
		anyStale := false
		for k := range reallocated {
			s := coord.Shard(k)
			reallocated[k] = s.Dirty || s.Alloc == nil
			anyStale = anyStale || reallocated[k]
		}
		// PolicyTime is the wall-clock of the concurrent allocation phase —
		// what a caller actually waits for — not the sum of per-shard solve
		// times, which would overstate it by up to min(K, cores).
		allocStart := time.Now()
		if err := coord.AllocateAll(cfg.Policy, info, false); err != nil {
			return nil, fmt.Errorf("policy %s: %w", cfg.Policy.Name(), err)
		}
		if anyStale {
			res.PolicyTime += time.Since(allocStart)
		}
		for k, did := range reallocated {
			if !did {
				continue
			}
			s := coord.Shard(k)
			shardRounds[k] = 0
			allocStates[k] = allocStates[k][:0]
			for _, id := range s.AllocIDs {
				allocStates[k] = append(allocStates[k], stateOf[id])
			}
		}

		if cfg.IdealExecution {
			for k, s := range coord.Shards() {
				if s.Alloc == nil || len(s.Alloc.Units) == 0 {
					continue
				}
				advanceIdeal(cfg, states, allocStates[k], s.Alloc, e.round, now, e.prices, e.noise, &s.Dirty, &completed, res)
			}
		} else {
			// Round assignment runs concurrently per shard; the merge
			// validates the global budget invariant.
			skip := func(id int) bool { return states[stateOf[id]].done }
			perShard := make([][]scheduler.Assignment, numShards)
			err := coord.ForEachShard(func(s *cluster.Shard) error {
				assigns, err := s.AssignRound(e.round, skip)
				perShard[s.Index] = assigns
				return err
			})
			if err != nil {
				return nil, err
			}
			if err := coord.ValidateRound(perShard); err != nil {
				return nil, err
			}
			// Progress, cost, and completion apply serially in shard order.
			for k, s := range coord.Shards() {
				if s.Alloc == nil || len(s.Alloc.Units) == 0 {
					continue
				}
				if cfg.OnRound != nil {
					cfg.OnRound(now, s.Alloc, allocStates[k], perShard[k])
				}
				applyAssignments(cfg, shardObserver{s.Cache}, states, allocStates[k], s.Alloc, perShard[k], e.round, now, e.prices, e.noise, &s.Dirty, &completed, res)
			}
		}

		now += e.round
		res.Rounds++
		for k := range shardRounds {
			shardRounds[k]++
			if cfg.ReallocEveryRounds > 0 && shardRounds[k] >= cfg.ReallocEveryRounds {
				coord.Shard(k).Dirty = true
			}
		}
	}

	// Merge per-shard accounting into the Result.
	res.NumShards = numShards
	res.Migrations = coord.Migrations()
	res.Rebalances = coord.Rebalances()
	for _, st := range coord.Stats() {
		s := coord.Shard(st.Shard)
		res.PolicyCalls += s.PolicyCalls
		cold := st.Solve.Solves - st.Solve.WarmHits - st.Solve.RemapHits
		res.ShardStats = append(res.ShardStats, ShardStat{
			Shard:             st.Shard,
			JobsAdmitted:      st.Admitted,
			MigratedIn:        st.MigratedIn,
			MigratedOut:       st.MigratedOut,
			LPSolves:          st.Solve.Solves,
			WarmSolves:        st.Solve.WarmHits,
			RemappedSolves:    st.Solve.RemapHits,
			ColdSolves:        cold,
			SimplexIterations: st.Solve.Iterations,

			PresolveReductions: st.Solve.PresolveReductions,
			DualIterations:     st.Solve.DualIterations,
		})
		res.LPSolves += st.Solve.Solves
		res.WarmSolves += st.Solve.WarmHits
		res.RemappedSolves += st.Solve.RemapHits
		res.SimplexIterations += st.Solve.Iterations
		res.RevisedSolves += st.Solve.RevisedSolves
		res.DenseSolves += st.Solve.DenseSolves
		res.EngineFallbacks += st.Solve.Fallbacks
		res.PresolveReductions += st.Solve.PresolveReductions
		res.DualIterations += st.Solve.DualIterations
	}

	for _, st := range states {
		if !st.done {
			res.Unfinished++
		}
	}
	for i := range res.Jobs {
		if res.Jobs[i].SLOViolated {
			res.SLOViolations++
		}
	}
	return res, nil
}
