package simulator

import (
	"math"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

func smallTrace(n int, lambda float64, seed int64) []workload.Job {
	return workload.GenerateTrace(workload.TraceOptions{
		NumJobs:            n,
		LambdaPerHour:      lambda,
		Seed:               seed,
		DurationMinMinutes: 20,
		DurationMaxMinutes: 200,
	})
}

func TestRunCompletesStaticTrace(t *testing.T) {
	res, err := Run(Config{
		Cluster:      cluster.Small12(),
		Policy:       &policy.MaxMinFairness{},
		Trace:        smallTrace(12, 0, 1),
		RoundSeconds: 360,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs unfinished", res.Unfinished)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	for _, j := range res.Jobs {
		if math.IsNaN(j.JCT) || j.JCT <= 0 {
			t.Fatalf("job %d has bad JCT %v", j.ID, j.JCT)
		}
	}
}

func TestRunContinuousTrace(t *testing.T) {
	res, err := Run(Config{
		Cluster:      cluster.Small12(),
		Policy:       &policy.MaxMinFairness{},
		Trace:        smallTrace(20, 6, 2),
		RoundSeconds: 360,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if avg := res.AvgJCT(0); math.IsNaN(avg) || avg <= 0 {
		t.Fatalf("bad avg JCT %v", avg)
	}
}
