package simulator

import (
	"testing"

	"gavel/internal/core"
	"gavel/internal/rpc"
	"gavel/internal/scheduler"
)

// serviceTestConfig is shardedTestConfig driven through the cluster-service
// engine instead of the in-process coordinator.
func serviceTestConfig(jobs int, clients []rpc.ShardClient) Config {
	cfg := shardedTestConfig(0, jobs)
	cfg.ShardClients = clients
	return cfg
}

// TestServiceLocalTransportMatchesInProcess is the engine-equivalence
// acceptance: a run over the rpc.Service with in-memory shard clients must be
// byte-identical to an in-process run with the same shard count — same
// allocations, same costs, same solve buckets, same per-shard stats.
func TestServiceLocalTransportMatchesInProcess(t *testing.T) {
	ref, err := Run(shardedTestConfig(2, 24))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, ref)

	_, c0 := rpc.NewLocalShard()
	_, c1 := rpc.NewLocalShard()
	got, err := Run(serviceTestConfig(24, []rpc.ShardClient{c0, c1}))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, got) != want {
		t.Fatal("service engine (local transport) differs from in-process sharded engine")
	}
	if got.Recoveries != 0 {
		t.Fatalf("no shard died, but Recoveries = %d", got.Recoveries)
	}
}

// startShardDaemon runs a ShardServer on a loopback socket and dials it,
// returning the server (so tests can kill it) and the connected client.
func startShardDaemon(t *testing.T) (*rpc.ShardServer, rpc.ShardClient) {
	t.Helper()
	srv := rpc.NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := rpc.DialShard(addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestServiceTCPTransportMatchesInProcess runs the same equivalence over real
// loopback sockets: every message gob-encoded, floats bit-exact, so the wire
// adds nothing and removes nothing.
func TestServiceTCPTransportMatchesInProcess(t *testing.T) {
	ref, err := Run(shardedTestConfig(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, ref)

	_, c0 := startShardDaemon(t)
	_, c1 := startShardDaemon(t)
	got, err := Run(serviceTestConfig(16, []rpc.ShardClient{c0, c1}))
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, got) != want {
		t.Fatal("service engine (TCP transport) differs from in-process sharded engine")
	}
}

// TestServiceShardCrashRecovers kills one shard daemon mid-run and asserts
// the coordinator recovers warm: the dead shard's jobs re-route onto the
// survivor with the last snapshot's seeds, every job still finishes, and the
// recovery does not introduce cold solves — the survivor repairs its basis
// for the enlarged job set via remap.
func TestServiceShardCrashRecovers(t *testing.T) {
	cfg := serviceTestConfig(24, nil)
	srvA, cA := startShardDaemon(t)
	_, cB := startShardDaemon(t)
	cfg.ShardClients = []rpc.ShardClient{cA, cB}
	cfg.SnapshotEveryRounds = 1

	killed := false
	cfg.OnRound = func(now float64, _ *core.Allocation, _ []int, _ []scheduler.Assignment) {
		if !killed && now >= 5*360 {
			killed = true
			srvA.Close()
		}
	}

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill hook never fired; run too short to exercise recovery")
	}
	if res.Recoveries == 0 {
		t.Fatal("shard daemon died but no recovery was recorded")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs stranded after shard crash", res.Unfinished)
	}
	if res.RemappedSolves == 0 {
		t.Fatal("recovery produced no remapped solves; recovered jobs solved cold or not at all")
	}
	// Max-min fairness solves two labeled LPs, so each shard's first
	// allocation costs two cold solves. Recovery must not add to that floor:
	// the survivor's enlarged problems repair via remap, and the dead shard's
	// snapshot accounting is frozen at its own floor.
	for _, st := range res.ShardStats {
		if limit := 2 + st.LPSolves/10; st.ColdSolves > limit {
			t.Fatalf("shard %d: %d cold solves (limit %d) — recovery was not warm",
				st.Shard, st.ColdSolves, limit)
		}
	}
}
