// Package simulator is the paper's evaluation substrate: a discrete-event
// simulator of a heterogeneous GPU cluster driven by Gavel's policies and
// round-based scheduling mechanism. Jobs arrive per the trace, allocations
// are recomputed on reset events (arrivals, completions), and jobs make
// progress each round according to the throughput model of the units they
// were scheduled into. A "testbed mode" (throughput noise + checkpoint
// overhead) stands in for the paper's physical 48-GPU cluster (Table 3);
// see DESIGN.md for the substitution rationale.
package simulator

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/obs"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/scheduler"
	"gavel/internal/workload"
)

// ThroughputProvider supplies the throughput estimates policies see. The
// simulator always uses the ground-truth oracle for actual progress; a
// provider that differs from the oracle models estimation error (Figure 14).
type ThroughputProvider interface {
	// Isolated returns the policy-visible throughput of job on type j.
	Isolated(job *workload.Job, j int) float64
	// Colocated returns the policy-visible pair throughputs on type j.
	Colocated(a, b *workload.Job, j int) (ta, tb float64, ok bool)
	// Observe feeds back a measured pair throughput after a round runs.
	Observe(a, b *workload.Job, j int, ta, tb float64)
}

// StableProvider is an optional ThroughputProvider extension. A provider
// returning true guarantees its Isolated answers never change and its
// Colocated answer for a given (pair, type) changes only through an Observe
// call for that exact pair and type. The simulator then builds policy inputs
// incrementally from a persistent core.ThroughputCache instead of re-querying
// every value on each reset. Providers with cross-pair learning (e.g. the
// matrix-completion estimator, whose one observation updates estimates for
// every job sharing the partner's model config) must not implement this, and
// keep the from-scratch input path.
type StableProvider interface {
	StableEstimates() bool
}

// Oracle is the ground-truth provider: the workload package's synthetic
// measurement model, scaled for multi-worker jobs assuming consolidated
// placement (the optimistic bound the policies plan with).
type Oracle struct{}

// StableEstimates implements StableProvider: the oracle never changes its
// mind.
func (Oracle) StableEstimates() bool { return true }

// Isolated implements ThroughputProvider.
func (Oracle) Isolated(job *workload.Job, j int) float64 {
	if !workload.Fits(job.Config, j) {
		return 0
	}
	return workload.ScaledThroughput(job.Config, j, job.ScaleFactor, true)
}

// Colocated implements ThroughputProvider.
func (Oracle) Colocated(a, b *workload.Job, j int) (float64, float64, bool) {
	return workload.Colocated(a.Config, b.Config, j)
}

// Observe implements ThroughputProvider (no-op: the oracle already knows).
func (Oracle) Observe(a, b *workload.Job, j int, ta, tb float64) {}

// Config parameterizes one simulation.
type Config struct {
	Cluster cluster.Spec
	Policy  policy.Policy
	Trace   []workload.Job

	// RoundSeconds is the scheduling round length (default 360 = 6 min).
	RoundSeconds float64
	// SpaceSharing enables pair scheduling units.
	SpaceSharing bool
	// MaxPairsPerJob caps candidate pairs per job (default 4).
	MaxPairsPerJob int
	// Provider overrides the policy-visible throughputs (default Oracle).
	Provider ThroughputProvider
	// TestbedNoise adds +-noise fraction multiplicative error to realized
	// round throughputs (physical-cluster surrogate).
	TestbedNoise float64
	// CheckpointSeconds is lost each time a job's placement changes
	// (suspend/resume overhead; §7.5 measured < 5s).
	CheckpointSeconds float64
	// IdealExecution bypasses the round mechanism and advances jobs
	// exactly per the computed allocation (Figure 13b's ideal baseline).
	IdealExecution bool
	// MaxSimulatedSeconds caps the simulation (0 = 10 years).
	MaxSimulatedSeconds float64
	Seed                int64
	// ColdSolves disables the persistent per-policy solve context: every
	// reset then rebuilds and solves its LPs from scratch, as the original
	// Gavel does. Used for benchmarking and equivalence testing against the
	// incremental pipeline.
	ColdSolves bool
	// LPEngine selects the simplex implementation for the run's solve
	// context: lp.Revised, lp.Dense, or lp.EngineAuto (default) to follow
	// lp.DefaultEngine. Ignored under ColdSolves (no context). Retained for
	// compatibility; LPOptions is the full knob set and wins when its Engine
	// is set.
	LPEngine lp.Engine
	// LPOptions bundles every solver knob — engine, pricing, presolve, dual
	// repair — resolved once at startup (lp.OptionsFromEnv, flags) instead of
	// per-solve getenv reads. Auto fields follow the lp package defaults, so
	// the zero value preserves the environment-driven behavior.
	LPOptions lp.Options
	// ReallocEveryRounds, when > 0, recomputes the allocation every k
	// rounds even without an arrival or completion (modeling Gavel's
	// periodic refresh as observed throughputs stream in). 0 recomputes
	// only on reset events. In the sharded engine the counter is per shard:
	// each shard refreshes k rounds after its own last allocation.
	ReallocEveryRounds int
	// NumShards > 0 runs the sharded engine: jobs and devices are
	// partitioned across K shards, each owning its own solve context,
	// throughput cache, and round mechanism; allocations and round
	// assignments run concurrently across shards and a coordinator routes
	// arrivals, rebalances by migrating jobs (warm-basis carry), and merges
	// per-shard rounds into this Result under the global worker budget.
	// 0 (the default) runs the single monolithic loop. The sharded engine
	// requires a StableProvider (the default Oracle is one) and a Policy
	// whose Allocate is safe for concurrent use from multiple goroutines
	// (every LP-based catalog policy is; Gandiva's random packer is not).
	NumShards int
	// RebalanceEveryRounds > 0 rebalances shard load every k rounds by
	// migrating jobs from the most to the least loaded shard. Migrated
	// jobs' warm LP bases travel with them (SolveContext.AdoptSeedsFrom +
	// lp.Basis.Remap), so migrations cost remapped solves, not cold ones.
	// Sharded engine only.
	RebalanceEveryRounds int
	// ShardRoute selects arrival routing across shards (hash of the job ID
	// by default, or least-loaded). Sharded engine only.
	ShardRoute cluster.RoutePolicy
	// ShardClients, when non-empty, runs the cluster-service engine: the
	// same round loop as the sharded engine, but driven through an
	// rpc.Service over the given shard clients — in-memory transports
	// (rpc.NewLocalShard) or TCP connections to real shard daemons
	// (rpc.DialShard). The service run is byte-identical to an in-process
	// run with NumShards == len(ShardClients): gob moves floats bit-exactly
	// and the coordinator mirrors every routing and rebalance decision.
	// Requires a policy registered in the rpc catalog (rpc.SpecForPolicy), a
	// StableProvider, and real (non-Ideal) execution.
	ShardClients []rpc.ShardClient
	// SnapshotEveryRounds is the service engine's basis/throughput snapshot
	// cadence (default 10): every k rounds the coordinator pulls each shard
	// daemon's warm seeds and accounting, the state it recovers from if the
	// daemon dies. Snapshots never perturb shard state, so the cadence does
	// not affect results — only how warm a recovery starts.
	SnapshotEveryRounds int
	// Journal, when non-empty, makes the cluster-service coordinator durable:
	// every mirror mutation is journaled to this write-ahead-log path and
	// fsynced at round boundaries, and a run started over an existing journal
	// resumes from the pre-crash state instead of starting fresh. Service
	// engine only. Journal-enabled runs close the shard clients on return
	// (the journal's lifetime is tied to the service).
	Journal string
	// Chaos injects seeded transport faults (drops, delays, duplicates,
	// partitions, crashes) between the coordinator and every shard daemon.
	// The zero value injects nothing. Service engine only.
	Chaos chaos.Config
	// RPC is the per-call fault policy (deadline, retries, backoff) layered
	// over the shard clients. The zero value adds no retry layer — callers
	// that built their clients with rpc.DialShard already have the
	// environment's policy on the transport. Service engine only.
	RPC rpc.CallPolicy
	// StaleAfterRounds bounds graceful degradation: a shard whose Allocate
	// keeps failing transiently serves its stale allocation for this many
	// consecutive rounds before being declared down (default 3). Service
	// engine only.
	StaleAfterRounds int
	// Admission, when non-nil, routes arrivals through the streaming
	// submission plane instead of direct Admit calls: each trace job is
	// Submitted under its Tenant with an idempotency key, waits in the
	// bounded ingress queue under the per-tenant quotas, and is admitted by
	// the round loop's AdmitPending pass. Worker-measured throughputs (the
	// realized isolated rates, noise included) are fed back via
	// ObserveMeasured each round, so tenants whose declarations diverge from
	// measurements (Job.DeclareFactor > 1) are quarantined and clamped by
	// the trust review. Service engine only.
	Admission *rpc.AdmissionConfig
	// OnRound, if set, is invoked after every executed round with the
	// current time, the allocation in force, the active job state indices,
	// and the round's assignments (testing/observability hook).
	OnRound func(now float64, alloc *core.Allocation, active []int, assigns []scheduler.Assignment)
	// Obs, when non-nil, wires the run into the telemetry plane: LP solve
	// series from every solve context, coordinator/journal/admission
	// instruments and per-round traces in the cluster-service engine, retry
	// and chaos-fault counters on the wrapped shard clients. Metrics never
	// influence a scheduling decision — a run with Obs set produces
	// byte-identical Results to one without.
	Obs *obs.Plane
}

// lpOptions folds the legacy LPEngine knob into the typed option set: the
// run's solve contexts are configured from one resolved value.
func (c Config) lpOptions() lp.Options {
	o := c.LPOptions
	if o.Engine == lp.EngineAuto {
		o.Engine = c.LPEngine
	}
	return o
}

// Validate checks the configuration without running it: the cluster shape,
// the policy, and the cross-field constraints of the sharded and service
// engines. Run performs the same checks; Validate exists so daemons and
// tools can reject a bad configuration before spawning processes.
func (c Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("simulator: no policy")
	}
	if len(c.Cluster.Types) != workload.NumTypes {
		return fmt.Errorf("simulator: cluster must use the %v universe", workload.TypeNames)
	}
	if len(c.ShardClients) > 0 {
		if c.NumShards > 0 && c.NumShards != len(c.ShardClients) {
			return fmt.Errorf("simulator: NumShards %d != %d shard clients (set one or make them agree)",
				c.NumShards, len(c.ShardClients))
		}
		if c.IdealExecution {
			return fmt.Errorf("simulator: the cluster-service engine schedules through the round mechanism; IdealExecution is not supported")
		}
		if _, ok := rpc.SpecForPolicy(c.Policy); !ok {
			return fmt.Errorf("simulator: policy %s is not in the rpc catalog and cannot be configured on shard daemons", c.Policy.Name())
		}
	}
	if c.Admission != nil && len(c.ShardClients) == 0 {
		return fmt.Errorf("simulator: the streaming submission plane (Admission) requires the cluster-service engine (ShardClients)")
	}
	return nil
}

// JobResult records one job's outcome.
type JobResult struct {
	ID          int
	Arrival     float64
	Completion  float64 // seconds; NaN if unfinished at cap
	JCT         float64 // seconds; NaN if unfinished
	Rho         float64 // finish-time-fairness ratio
	SLOViolated bool
	Preemptions int
	CostDollars float64
	Priority    float64
	RefDuration float64
}

// Result is a full simulation outcome.
type Result struct {
	Jobs          []JobResult
	Makespan      float64 // completion of the last job (seconds)
	TotalCost     float64 // dollars across all busy devices
	SLOViolations int
	Rounds        int
	// PolicyTime is total wall time inside Policy.Allocate (in a sharded
	// run: the wall-clock of the concurrent per-shard allocation phases —
	// what the round loop actually waits for, not the sum of per-shard
	// solve times); PolicyCalls the number of Allocate invocations (one per
	// reset event or periodic refresh; per shard when sharded). One call
	// may solve several LPs — binary-search and
	// water-filling policies routinely solve a dozen — so per-solve
	// accounting lives in LPSolves/WarmSolves/SimplexIterations below
	// rather than being inferred as "one cold solve per reset".
	PolicyTime  time.Duration
	PolicyCalls int
	// LPSolves counts individual LP solves across all policy calls. Every
	// solve lands in exactly one of three buckets, regardless of what kind
	// of reset triggered it — shape-preserving refreshes and job
	// arrival/departure resets are no longer distinguished in the
	// accounting: WarmSolves ran seeded positionally from a same-shape
	// cached basis, RemappedSolves ran seeded from a basis remapped across
	// a job-set change, and the remainder (LPSolves - WarmSolves -
	// RemappedSolves) ran the cold two-phase path. SimplexIterations sums
	// simplex iterations over all solves. All zero when ColdSolves is set
	// (the stateless path has no context to account through).
	LPSolves          int
	WarmSolves        int
	RemappedSolves    int
	SimplexIterations int
	// Per-engine accounting: RevisedSolves ran on the sparse revised
	// simplex engine, DenseSolves on the dense tableau (either selected
	// explicitly via Config.LPEngine or as a fallback from a revised solve
	// that could not be certified, counted in EngineFallbacks).
	RevisedSolves   int
	DenseSolves     int
	EngineFallbacks int
	// PresolveReductions sums rows/columns/bounds removed or tightened by
	// the LP presolve across all solves; DualIterations counts simplex
	// pivots taken by the dual-simplex warm-start repair (a subset of
	// SimplexIterations).
	PresolveReductions int
	DualIterations     int
	Unfinished         int
	// Sharded-engine accounting (zero values under the monolithic loop):
	// NumShards echoes the partition count the run used, Migrations counts
	// jobs moved between shards by rebalancing, Rebalances the rebalance
	// passes that moved at least one job, and ShardStats holds per-shard
	// solve buckets in shard order. The global LPSolves/WarmSolves/
	// RemappedSolves/SimplexIterations fields are the sums over ShardStats.
	NumShards  int
	Migrations int
	Rebalances int
	// Recoveries counts jobs re-routed off crashed shard daemons by the
	// cluster-service engine (always zero in-process, where shards cannot
	// die independently).
	Recoveries int
	// DegradedRounds counts rounds the cluster-service coordinator completed
	// with at least one shard degraded — a stale allocation served after a
	// transient Allocate failure, or a missed round-plane call (always zero
	// in-process).
	DegradedRounds int
	ShardStats     []ShardStat
	// Submission-plane accounting (service engine with Config.Admission):
	// per-tenant admission counters in first-contact order, and the
	// shed/quarantine/abandon decision log in decision order.
	Tenants   []rpc.TenantStatus
	Decisions []rpc.AdmissionDecision
}

// ShardStat is one shard's accounting within a sharded run.
type ShardStat struct {
	Shard        int
	JobsAdmitted int // arrivals routed to this shard
	MigratedIn   int // jobs received from rebalancing
	MigratedOut  int // jobs handed off by rebalancing
	// Per-shard LP solve buckets: every solve is warm (positional seed),
	// remapped (cross-shape seed, including migrations), or cold.
	LPSolves          int
	WarmSolves        int
	RemappedSolves    int
	ColdSolves        int
	SimplexIterations int
	// Presolve/dual accounting for this shard's solves (see the Result
	// fields of the same names).
	PresolveReductions int
	DualIterations     int
	// StaleAllocs counts rounds this shard served a stale allocation because
	// its Allocate failed transiently (cluster-service engine under faults;
	// always zero otherwise).
	StaleAllocs int
	// QuarantinedJobs counts this shard's resident jobs owned by quarantined
	// tenants at run end (submission plane only; always zero otherwise).
	QuarantinedJobs int
}

// AvgJCT returns the mean JCT in hours over finished jobs, optionally
// skipping the first warmup finished jobs (steady-state measurement).
func (r *Result) AvgJCT(warmup int) float64 {
	var done []float64
	for _, j := range r.Jobs {
		if !math.IsNaN(j.JCT) {
			done = append(done, j.JCT)
		}
	}
	if len(done) <= warmup {
		return math.NaN()
	}
	done = done[warmup:]
	s := 0.0
	for _, v := range done {
		s += v
	}
	return s / float64(len(done)) / 3600.0
}

type jobState struct {
	job      *workload.Job
	steps    float64
	arrivalN int // active jobs at arrival (FTF isolated share)
	done     bool
	finishAt float64
	// last placement for preemption accounting: type, server, pair partner
	lastType    int
	lastServer  int
	lastPartner int
	wasRunning  bool
	preemptions int
	cost        float64
	seq         int
}

// runEnv is the setup shared by the monolithic and sharded run loops:
// validated config knobs, the sorted trace with per-job state, the cluster
// shape, and the Result skeleton.
type runEnv struct {
	round    float64
	maxPairs int
	provider ThroughputProvider
	maxSec   float64

	trace      []workload.Job
	states     []*jobState
	workers    []float64
	workerInts []int
	perServer  []int
	prices     []float64
	res        *Result
	noise      func(jobID, typ int) float64
}

// newRunEnv validates cfg and assembles the shared run state.
func newRunEnv(cfg Config) (*runEnv, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &runEnv{
		round:    cfg.RoundSeconds,
		maxPairs: cfg.MaxPairsPerJob,
		provider: cfg.Provider,
		maxSec:   cfg.MaxSimulatedSeconds,
	}
	if e.round <= 0 {
		e.round = 360
	}
	if e.maxPairs <= 0 {
		e.maxPairs = 4
	}
	if e.provider == nil {
		e.provider = Oracle{}
	}
	if e.maxSec <= 0 {
		e.maxSec = 10 * 365 * 24 * 3600
	}

	e.trace = append([]workload.Job(nil), cfg.Trace...)
	sort.SliceStable(e.trace, func(a, b int) bool { return e.trace[a].Arrival < e.trace[b].Arrival })
	e.states = make([]*jobState, len(e.trace))
	for i := range e.trace {
		e.states[i] = &jobState{job: &e.trace[i], lastType: -1, lastPartner: -1, seq: i}
	}

	e.workers = cfg.Cluster.Workers()
	e.workerInts = make([]int, len(e.workers))
	e.perServer = make([]int, len(e.workers))
	for j, t := range cfg.Cluster.Types {
		e.workerInts[j] = t.Count
		e.perServer[j] = t.PerServer
	}
	e.prices = cfg.Cluster.Prices()

	e.res = &Result{Jobs: make([]JobResult, len(e.trace))}
	for i := range e.res.Jobs {
		e.res.Jobs[i] = JobResult{
			ID: e.trace[i].ID, Arrival: e.trace[i].Arrival,
			Completion: math.NaN(), JCT: math.NaN(),
			Priority: e.trace[i].Priority, RefDuration: e.trace[i].RefDuration,
		}
	}

	// testbed noise: a deterministic per-(job,type) jitter factor.
	e.noise = func(jobID, typ int) float64 {
		if cfg.TestbedNoise <= 0 {
			return 1
		}
		h := rand.New(rand.NewSource(cfg.Seed ^ int64(jobID)*1000003 ^ int64(typ)*7919))
		return 1 + cfg.TestbedNoise*(2*h.Float64()-1)
	}
	return e, nil
}

// Run executes the simulation: the monolithic loop by default, the sharded
// engine when Config.NumShards > 0, or the cluster-service engine when
// Config.ShardClients is set.
func Run(cfg Config) (*Result, error) {
	if len(cfg.ShardClients) > 0 {
		return runService(cfg)
	}
	if cfg.NumShards > 0 {
		return runSharded(cfg)
	}
	e, err := newRunEnv(cfg)
	if err != nil {
		return nil, err
	}
	round, maxPairs, provider, maxSec := e.round, e.maxPairs, e.provider, e.maxSec
	trace, states := e.trace, e.states
	workers, workerInts, perServer, prices := e.workers, e.workerInts, e.perServer, e.prices
	res, noise := e.res, e.noise

	mech := scheduler.New(len(workers), perServer)
	builder := newInputBuilder(provider, len(workers))
	var ctx *policy.SolveContext
	if !cfg.ColdSolves {
		ctx = policy.NewSolveContextWith(cfg.lpOptions())
		ctx.Metrics = obs.NewLPMetrics(cfg.Obs.Registry())
	}

	var active []int // indices into states
	nextArrival := 0
	needRealloc := true
	var alloc *core.Allocation
	var allocJobs []int // active snapshot the allocation was computed for
	var input *policy.Input
	now := 0.0
	completed := 0
	roundsSinceAlloc := 0

	for completed < len(trace) && now < maxSec {
		// Retire finished jobs from the active set.
		if needRealloc {
			kept := active[:0]
			for _, si := range active {
				if !states[si].done {
					kept = append(kept, si)
				}
			}
			active = kept
		}
		// Admit arrivals up to now.
		for nextArrival < len(trace) && trace[nextArrival].Arrival <= now {
			st := states[nextArrival]
			st.arrivalN = len(active) + 1
			active = append(active, nextArrival)
			nextArrival++
			needRealloc = true
		}
		if len(active) == 0 {
			// Fast-forward to the next arrival boundary.
			if nextArrival >= len(trace) {
				break
			}
			steps := math.Ceil((trace[nextArrival].Arrival - now) / round)
			if steps < 1 {
				steps = 1
			}
			now += steps * round
			continue
		}

		if needRealloc || alloc == nil {
			var err error
			input, alloc, allocJobs, err = computeAllocation(cfg, builder, ctx, states, active, workers, prices, maxPairs, now, res)
			if err != nil {
				return nil, err
			}
			mech.ResetReceived()
			needRealloc = false
			roundsSinceAlloc = 0
		}
		_ = input

		if cfg.IdealExecution {
			advanceIdeal(cfg, states, allocJobs, alloc, round, now, prices, noise, &needRealloc, &completed, res)
		} else {
			if err := advanceRound(cfg, mech, builder, states, allocJobs, alloc, workerInts, round, now, prices, noise, &needRealloc, &completed, res); err != nil {
				return nil, err
			}
		}
		now += round
		res.Rounds++
		roundsSinceAlloc++
		if cfg.ReallocEveryRounds > 0 && roundsSinceAlloc >= cfg.ReallocEveryRounds {
			needRealloc = true
		}
	}

	if ctx != nil {
		res.LPSolves = ctx.Stats.Solves
		res.WarmSolves = ctx.Stats.WarmHits
		res.RemappedSolves = ctx.Stats.RemapHits
		res.SimplexIterations = ctx.Stats.Iterations
		res.RevisedSolves = ctx.Stats.RevisedSolves
		res.DenseSolves = ctx.Stats.DenseSolves
		res.EngineFallbacks = ctx.Stats.Fallbacks
		res.PresolveReductions = ctx.Stats.PresolveReductions
		res.DualIterations = ctx.Stats.DualIterations
	}

	for _, st := range states {
		if !st.done {
			res.Unfinished++
		}
	}
	res.SLOViolations = 0
	for i := range res.Jobs {
		if res.Jobs[i].SLOViolated {
			res.SLOViolations++
		}
	}
	return res, nil
}

// pairGainThreshold is the minimum combined normalized throughput for a
// space-sharing pair to enter the LP as a candidate unit.
const pairGainThreshold = 1.05

// inputBuilder assembles policy inputs from a core.ThroughputCache. With a
// StableProvider the cache persists across resets, so a reset only queries
// the provider for newly arrived jobs (and their pairs) instead of
// re-deriving the full job x unit throughput matrix; otherwise a fresh cache
// is populated per reset, which reproduces the original from-scratch
// behavior through the same assembly code.
type inputBuilder struct {
	provider   ThroughputProvider
	numTypes   int
	persistent bool
	cache      *core.ThroughputCache
}

func newInputBuilder(provider ThroughputProvider, numTypes int) *inputBuilder {
	b := &inputBuilder{provider: provider, numTypes: numTypes}
	if s, ok := provider.(StableProvider); ok && s.StableEstimates() {
		b.persistent = true
		b.cache = core.NewThroughputCache(numTypes)
	}
	return b
}

// sync brings the cache in line with the active set: departed jobs are
// dropped, new jobs get their isolated rows, and (with space sharing) every
// uncached single-worker pairing among active jobs gets its colocated rows.
func (b *inputBuilder) sync(states []*jobState, allocJobs []int, spaceSharing bool) *core.ThroughputCache {
	cache := b.cache
	if !b.persistent {
		cache = core.NewThroughputCache(b.numTypes)
	}
	activeSet := make(map[int]bool, len(allocJobs))
	for _, si := range allocJobs {
		activeSet[states[si].job.ID] = true
	}
	if b.persistent {
		for _, id := range cache.IDs() {
			if !activeSet[id] {
				cache.RemoveJob(id)
			}
		}
	}
	for _, si := range allocJobs {
		j := states[si].job
		if cache.Has(j.ID) {
			continue
		}
		tput := make([]float64, b.numTypes)
		for t := range tput {
			tput[t] = b.provider.Isolated(j, t)
		}
		cache.AddJob(j.ID, j.ScaleFactor, tput)
	}
	if spaceSharing {
		for ai, sa := range allocJobs {
			ja := states[sa].job
			if ja.ScaleFactor > 1 {
				continue
			}
			for _, sb := range allocJobs[ai+1:] {
				jb := states[sb].job
				if jb.ScaleFactor > 1 || cache.HasPair(ja.ID, jb.ID) {
					continue
				}
				ta := make([]float64, b.numTypes)
				tb := make([]float64, b.numTypes)
				for t := 0; t < b.numTypes; t++ {
					if ca, cb, ok := b.provider.Colocated(ja, jb, t); ok {
						ta[t], tb[t] = ca, cb
					}
				}
				cache.SetPair(ja.ID, jb.ID, ta, tb)
			}
		}
	}
	return cache
}

// observePair feeds a measured pair throughput back into the persistent
// cache, mirroring what the provider itself would now report.
func (b *inputBuilder) observePair(aID, bID, typ int, ta, tb float64) {
	if b.persistent {
		b.cache.ObservePair(aID, bID, typ, ta, tb)
	}
}

// computeAllocation builds the policy input from the active set and solves.
func computeAllocation(cfg Config, builder *inputBuilder, ctx *policy.SolveContext, states []*jobState, active []int, workers, prices []float64, maxPairs int, now float64, res *Result) (*policy.Input, *core.Allocation, []int, error) {
	allocJobs := append([]int(nil), active...)
	cache := builder.sync(states, allocJobs, cfg.SpaceSharing)

	in := &policy.Input{Workers: workers, Prices: prices}
	ids := make([]int, len(allocJobs))
	for i, si := range allocJobs {
		st := states[si]
		j := st.job
		ids[i] = j.ID
		info := policy.JobInfo{
			ID:             j.ID,
			Weight:         j.Weight,
			Priority:       j.Priority,
			ScaleFactor:    j.ScaleFactor,
			Tput:           cache.JobTput(j.ID),
			RemainingSteps: j.TotalSteps - st.steps,
			TotalSteps:     j.TotalSteps,
			Elapsed:        now - j.Arrival,
			ArrivalSeq:     st.seq,
			Entity:         j.Entity,
			NumActiveJobs:  len(allocJobs),
		}
		if j.SLO > 0 {
			info.SLORemaining = j.Arrival + j.SLO - now
			if info.SLORemaining < 1 {
				info.SLORemaining = 1
			}
		}
		in.Jobs = append(in.Jobs, info)
	}
	pairCap := 0
	if cfg.SpaceSharing {
		pairCap = maxPairs
	}
	in.Units = cache.Units(ids, pairGainThreshold, pairCap)

	start := time.Now()
	alloc, err := cfg.Policy.Allocate(in, ctx)
	res.PolicyTime += time.Since(start)
	res.PolicyCalls++
	if err != nil {
		return nil, nil, nil, fmt.Errorf("policy %s: %w", cfg.Policy.Name(), err)
	}
	return in, alloc, allocJobs, nil
}

// roundClosures builds the member-ID and scale-factor views of alloc's units
// the mechanism consumes, mapping unit-local positions through allocJobs to
// job states.
func roundClosures(states []*jobState, allocJobs []int, alloc *core.Allocation) (jobIDs func(u int) []int, scaleFactor func(u int) int) {
	jobIDs = func(u int) []int {
		ids := make([]int, len(alloc.Units[u].Jobs))
		for k, local := range alloc.Units[u].Jobs {
			ids[k] = states[allocJobs[local]].job.ID
		}
		return ids
	}
	scaleFactor = func(u int) int {
		sf := 1
		for _, local := range alloc.Units[u].Jobs {
			if s := states[allocJobs[local]].job.ScaleFactor; s > sf {
				sf = s
			}
		}
		return sf
	}
	return jobIDs, scaleFactor
}

// filterFinished zeroes the allocation rows of units with finished members,
// so the mechanism only schedules units that can still run.
func filterFinished(states []*jobState, allocJobs []int, alloc *core.Allocation, numTypes int) *core.Allocation {
	filtered := &core.Allocation{Units: alloc.Units, X: make([][]float64, len(alloc.X))}
	for u := range alloc.X {
		ok := true
		for _, local := range alloc.Units[u].Jobs {
			if states[allocJobs[local]].done {
				ok = false
				break
			}
		}
		if ok {
			filtered.X[u] = alloc.X[u]
		} else {
			filtered.X[u] = make([]float64, numTypes)
		}
	}
	return filtered
}

// pairObserver receives measured pair throughputs after a round runs so the
// backing cache mirrors what the provider would now report. The monolithic
// loop's inputBuilder and the sharded engine's per-shard caches both
// implement it.
type pairObserver interface {
	observePair(aID, bID, typ int, ta, tb float64)
}

// jobObserver optionally extends a pairObserver with per-job isolated
// measurements: the realized rate (noise included) of every non-pair
// assignment — the worker reports the submission plane's trust review
// cross-checks against declared rows. Pair assignments are excluded: their
// realized rates measure colocation, not the isolated row the declaration
// claims.
type jobObserver interface {
	observeJob(id, typ int, rate float64)
}

// advanceRound runs one mechanism round and advances job progress with the
// ground-truth oracle.
func advanceRound(cfg Config, mech *scheduler.Mechanism, obs pairObserver, states []*jobState, allocJobs []int, alloc *core.Allocation, workerInts []int, round, now float64, prices []float64, noise func(int, int) float64, needRealloc *bool, completed *int, res *Result) error {
	jobIDs, scaleFactor := roundClosures(states, allocJobs, alloc)
	filtered := filterFinished(states, allocJobs, alloc, len(workerInts))
	assigns, err := mech.Assign(filtered, scheduler.Workers{Free: workerInts}, scaleFactor, jobIDs)
	if err != nil {
		return err
	}
	mech.RecordRound(filtered, assigns, round, jobIDs)
	if cfg.OnRound != nil {
		cfg.OnRound(now, alloc, allocJobs, assigns)
	}
	applyAssignments(cfg, obs, states, allocJobs, alloc, assigns, round, now, prices, noise, needRealloc, completed, res)
	return nil
}

// applyAssignments advances progress, cost, preemption, and completion
// accounting for one executed round. It touches only the job states reachable
// through allocJobs, so the sharded engine can apply per-shard rounds in
// shard order without any cross-shard interference.
func applyAssignments(cfg Config, obs pairObserver, states []*jobState, allocJobs []int, alloc *core.Allocation, assigns []scheduler.Assignment, round, now float64, prices []float64, noise func(int, int) float64, needRealloc *bool, completed *int, res *Result) {
	running := map[int]bool{}
	for _, a := range assigns {
		u := &alloc.Units[a.UnitIdx]
		partner := func(k int) int {
			if len(u.Jobs) < 2 {
				return -1
			}
			return states[allocJobs[u.Jobs[1-k]]].job.ID
		}
		// Pair throughputs come from the ground-truth oracle; feed the
		// observation back to the provider (estimator learning loop).
		var pairTa, pairTb float64
		if u.IsPair() {
			ja := states[allocJobs[u.Jobs[0]]].job
			jb := states[allocJobs[u.Jobs[1]]].job
			pairTa, pairTb, _ = workload.Colocated(ja.Config, jb.Config, a.Type)
			if cfg.Provider != nil {
				cfg.Provider.Observe(ja, jb, a.Type, pairTa, pairTb)
			}
			obs.observePair(ja.ID, jb.ID, a.Type, pairTa, pairTb)
		}
		for k, local := range u.Jobs {
			st := states[allocJobs[local]]
			running[st.job.ID] = true
			eff := round
			moved := !st.wasRunning || st.lastType != a.Type || st.lastServer != a.Server || st.lastPartner != partner(k)
			if moved && cfg.CheckpointSeconds > 0 {
				eff -= cfg.CheckpointSeconds
				if eff < 0 {
					eff = 0
				}
			}
			if moved && st.wasRunning {
				st.preemptions++
			}
			var tp float64
			if u.IsPair() {
				if k == 0 {
					tp = pairTa
				} else {
					tp = pairTb
				}
			} else {
				if !workload.Fits(st.job.Config, a.Type) {
					tp = 0
				} else {
					tp = workload.ScaledThroughput(st.job.Config, a.Type, st.job.ScaleFactor, a.Consolidated)
				}
			}
			tp *= noise(st.job.ID, a.Type)
			if !u.IsPair() && tp > 0 {
				if jo, ok := obs.(jobObserver); ok {
					jo.observeJob(st.job.ID, a.Type, tp)
				}
			}
			before := st.steps
			st.steps += tp * eff
			sf := float64(st.job.ScaleFactor)
			if sf < 1 {
				sf = 1
			}
			costShare := prices[a.Type] * sf * round / 3600.0
			if u.IsPair() {
				costShare /= 2 // both members share the device's bill
			}
			st.cost += costShare
			res.TotalCost += costShare
			st.lastType, st.lastServer, st.lastPartner = a.Type, a.Server, partner(k)

			if !st.done && st.steps >= st.job.TotalSteps {
				frac := 1.0
				if tp > 0 {
					frac = (st.job.TotalSteps - before) / (tp * eff)
				}
				finishJob(st, now+frac*round, res, completed, needRealloc)
			}
		}
	}
	for _, si := range allocJobs {
		st := states[si]
		st.wasRunning = running[st.job.ID]
	}
}

// advanceIdeal advances every job exactly per its allocated fractions
// (Figure 13b's "ideal" execution, no round mechanism).
func advanceIdeal(cfg Config, states []*jobState, allocJobs []int, alloc *core.Allocation, round, now float64, prices []float64, noise func(int, int) float64, needRealloc *bool, completed *int, res *Result) {
	for u := range alloc.Units {
		unit := &alloc.Units[u]
		skip := false
		for _, local := range unit.Jobs {
			if states[allocJobs[local]].done {
				skip = true
			}
		}
		if skip {
			continue
		}
		for k, local := range unit.Jobs {
			st := states[allocJobs[local]]
			before := st.steps
			var gained float64
			for t, x := range alloc.X[u] {
				if x <= 0 {
					continue
				}
				tp := unit.Tput[k][t] * noise(st.job.ID, t)
				gained += tp * x * round
				sf := float64(st.job.ScaleFactor)
				if sf < 1 {
					sf = 1
				}
				share := prices[t] * sf * x * round / 3600.0
				if unit.IsPair() {
					share /= 2
				}
				st.cost += share
				res.TotalCost += share
			}
			st.steps += gained
			if !st.done && st.steps >= st.job.TotalSteps {
				frac := 1.0
				if gained > 0 {
					frac = (st.job.TotalSteps - before) / gained
				}
				finishJob(st, now+frac*round, res, completed, needRealloc)
			}
		}
	}
}

func finishJob(st *jobState, finish float64, res *Result, completed *int, needRealloc *bool) {
	st.done = true
	st.finishAt = finish
	*completed++
	*needRealloc = true
	jr := &res.Jobs[st.seq]
	jr.Completion = finish
	jr.JCT = finish - st.job.Arrival
	jr.Preemptions = st.preemptions
	jr.CostDollars = st.cost
	if st.job.SLO > 0 && jr.JCT > st.job.SLO {
		jr.SLOViolated = true
	}
	// Finish-time fairness: actual JCT over the JCT the job would have had
	// with a 1/n static share of the whole cluster.
	isoTp := isolatedThroughput(st.job, st.arrivalN)
	if isoTp > 0 {
		jr.Rho = jr.JCT / (st.job.TotalSteps / isoTp)
	}
	if finish > res.Makespan {
		res.Makespan = finish
	}
}

// isolatedThroughput is throughput(m, X^isolated): the job's effective
// throughput given 1/n of every device in the standard universe.
func isolatedThroughput(j *workload.Job, n int) float64 {
	if n < 1 {
		n = 1
	}
	var tput [workload.NumTypes]float64
	for t := 0; t < workload.NumTypes; t++ {
		if workload.Fits(j.Config, t) {
			tput[t] = workload.ScaledThroughput(j.Config, t, j.ScaleFactor, true)
		}
	}
	// Equal share over the universe weighted uniformly.
	s := 0.0
	for _, v := range tput {
		s += v
	}
	return s / float64(workload.NumTypes) / float64(n)
}
