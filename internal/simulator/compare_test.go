package simulator

import (
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/policy"
	"gavel/internal/workload"
)

// TestHeterogeneityAwareBeatsAgnostic is the headline-result integration
// test (Figures 8/9 shape): under load, heterogeneity-aware LAS improves
// average JCT over the agnostic baseline, and SS-aware LAS improves it
// further; Gavel's principled packing beats Gandiva's ad-hoc packing.
func TestHeterogeneityAwareBeatsAgnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	trace := workload.GenerateTrace(workload.TraceOptions{
		NumJobs: 120, LambdaPerHour: 5.0, Seed: 42,
	})
	run := func(pol policy.Policy, ss bool) float64 {
		t.Helper()
		res, err := Run(Config{
			Cluster: cluster.Simulated108(), Policy: pol, Trace: trace,
			RoundSeconds: 360, SpaceSharing: ss,
		})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("%s: %d unfinished", pol.Name(), res.Unfinished)
		}
		return res.AvgJCT(10)
	}

	las := run(&policy.Agnostic{Inner: &policy.MaxMinFairness{}}, false)
	gavel := run(&policy.MaxMinFairness{}, false)
	gavelSS := run(&policy.MaxMinFairness{}, true)
	gandiva := run(policy.NewGandivaSpaceSharing(1), true)

	if gavel >= las {
		t.Errorf("heterogeneity-aware LAS (%.2fh) should beat agnostic LAS (%.2fh)", gavel, las)
	}
	if gavelSS >= gavel {
		t.Errorf("SS-aware LAS (%.2fh) should beat plain heterogeneity-aware LAS (%.2fh)", gavelSS, gavel)
	}
	if gavelSS >= gandiva {
		t.Errorf("Gavel w/ SS (%.2fh) should beat Gandiva ad-hoc packing (%.2fh)", gavelSS, gandiva)
	}
}
