package simulator

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gavel/internal/chaos"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/workload"
)

// batchObserver collects one shard's measured pair throughputs in
// observation order, for a single Observe flush to the shard daemon after
// the round's progress is applied. Observations only feed the shard's
// throughput cache — nothing reads the cache again before the next
// allocation — so flushing a round's batch at once leaves the daemon's cache
// byte-identical to the in-process engine's interleaved writes.
//
// Under the submission plane the coordinator assigns wire job IDs distinct
// from trace IDs, so every observation is translated through wire; and the
// realized isolated rates (jobObserver) are collected as the worker-measured
// samples the trust review cross-checks against declarations.
type batchObserver struct {
	wire    func(int) int // trace job ID -> coordinator job ID
	measure bool
	obs     []rpc.PairObservation
	meas    []measuredSample
}

type measuredSample struct {
	id, typ int
	rate    float64
}

func (b *batchObserver) observePair(aID, bID, typ int, ta, tb float64) {
	b.obs = append(b.obs, rpc.PairObservation{A: b.wire(aID), B: b.wire(bID), Type: typ, Ta: ta, Tb: tb})
}

func (b *batchObserver) observeJob(id, typ int, rate float64) {
	if b.measure {
		b.meas = append(b.meas, measuredSample{id: b.wire(id), typ: typ, rate: rate})
	}
}

// runService executes the simulation on the cluster-service engine: the
// sharded round loop of runSharded, driven through an rpc.Service over
// Config.ShardClients instead of an in-process cluster.Coordinator. The two
// engines are mirrors — same routing, same rebalance, same staleness and
// retirement rules, applied in the same order — and gob moves floats
// bit-exactly, so a service run over K clients produces a byte-identical
// Result to an in-process run with NumShards = K. Unlike the in-process
// engine, shard daemons can die mid-run: the coordinator detects the loss on
// the next call, re-routes the dead shard's jobs onto the survivors with its
// last snapshot's warm seeds, and the recovered jobs' next solves land
// remapped, not cold.
func runService(cfg Config) (*Result, error) {
	e, err := newRunEnv(cfg)
	if err != nil {
		return nil, err
	}
	if s, ok := e.provider.(StableProvider); !ok || !s.StableEstimates() {
		return nil, fmt.Errorf("simulator: the cluster-service engine requires a stable throughput provider (per-shard caches cannot track cross-pair learning)")
	}
	if !policy.ConcurrentSafe(cfg.Policy) {
		return nil, fmt.Errorf("simulator: policy %s mutates internal state in Allocate and cannot run sharded (shards solve concurrently)", cfg.Policy.Name())
	}
	spec, ok := rpc.SpecForPolicy(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("simulator: policy %s is not in the rpc catalog", cfg.Policy.Name())
	}
	pairCap := 0
	if cfg.SpaceSharing {
		pairCap = e.maxPairs
	}
	snapEvery := cfg.SnapshotEveryRounds
	if snapEvery <= 0 {
		snapEvery = 10
	}

	trace, states, res := e.trace, e.states, e.res
	numShards := len(cfg.ShardClients)
	stateOf := make(map[int]int, len(trace)) // coordinator job ID -> state index

	// Under the submission plane the coordinator assigns its own job IDs;
	// wireOf maps each trace job to the coordinator's ID (identity when
	// arrivals are admitted directly).
	admission := cfg.Admission != nil
	wireOf := make(map[int]int, len(trace))
	wire := func(id int) int { return id }
	if admission {
		wire = func(id int) int { return wireOf[id] }
	}

	// The service ships pair candidates with every job placement; rows come
	// from the provider exactly as syncPairs builds them in-process. The
	// shard daemons apply them HasPair-gated, so answering for an
	// already-cached pair is harmless.
	var pairs rpc.PairSource
	if cfg.SpaceSharing {
		pairs = func(aID, bID int) ([]float64, []float64) {
			a, b := states[stateOf[aID]].job, states[stateOf[bID]].job
			ta := make([]float64, len(e.workers))
			tb := make([]float64, len(e.workers))
			for t := range ta {
				if ca, cb, ok := e.provider.Colocated(a, b, t); ok {
					ta[t], tb[t] = ca, cb
				}
			}
			return ta, tb
		}
	}

	// The fault plane layers per client: the chaos transport injects seeded
	// faults below the retry policy, so every injected transient exercises
	// the production retry/degrade/recover path. The telemetry plane rides
	// both layers — retry outcome counters above, injected-fault counters
	// below — without touching either one's rand stream.
	clients := cfg.ShardClients
	pol := cfg.RPC
	pol.Obs = cfg.Obs
	if cfg.Chaos.Enabled() || !pol.IsZero() || pol.Obs != nil {
		clients = make([]rpc.ShardClient, len(cfg.ShardClients))
		for k, c := range cfg.ShardClients {
			wrapped := chaos.Wrap(c, cfg.Chaos, k)
			if tr, ok := wrapped.(*chaos.Transport); ok {
				tr.SetObs(cfg.Obs)
			}
			clients[k] = rpc.WithRetry(wrapped, pol)
		}
	}

	svc, err := rpc.NewService(rpc.ServiceConfig{
		Cluster:           cfg.Cluster,
		Policy:            spec,
		LP:                cfg.lpOptions(),
		ColdSolves:        cfg.ColdSolves,
		Route:             cfg.ShardRoute,
		PairGainThreshold: pairGainThreshold,
		MaxPairsPerJob:    pairCap,
		Pairs:             pairs,
		Journal:           cfg.Journal,
		StaleAfterRounds:  cfg.StaleAfterRounds,
		Admission:         cfg.Admission,
		Obs:               cfg.Obs,
	}, clients)
	if err != nil {
		return nil, err
	}
	if cfg.Journal != "" {
		// The journal's lifetime is tied to the service: commit and release
		// it (and the wrapped clients) when the run ends.
		defer svc.Close()
	}

	allocStates := make([][]int, numShards) // per shard: state indices parallel to AllocIDs
	shardRounds := make([]int, numShards)   // rounds since the shard's last allocation
	reallocated := make([]bool, numShards)

	// Submission-plane bookkeeping: trace jobs submitted but not yet
	// admitted (keyed by coordinator job ID), and submissions refused with
	// CodeOverload, resubmitted next round — the simulator's stand-in for a
	// client honoring backpressure.
	pending := map[int]int{}
	var deferred []int
	tenantName := func(j *workload.Job) string {
		if j.Tenant == "" {
			return "tenant-0"
		}
		return j.Tenant
	}
	submitKey := func(j *workload.Job) string { return fmt.Sprintf("job-%d", j.ID) }
	submit := func(si int) error {
		st := states[si]
		j := st.job
		truth := make([]float64, len(e.workers))
		for t := range truth {
			truth[t] = e.provider.Isolated(j, t)
		}
		// The tenant declares truth x DeclareFactor; the trust review learns
		// the truth back from the workers' measured rates.
		df := j.DeclareFactor
		if df <= 0 {
			df = 1
		}
		decl := make([]float64, len(truth))
		for t, v := range truth {
			decl[t] = v * df
		}
		rep, err := svc.Submit(rpc.SubmitArgs{
			Tenant:      tenantName(j),
			Key:         submitKey(j),
			Name:        j.Config.Name(),
			TotalSteps:  j.TotalSteps,
			ScaleFactor: j.ScaleFactor,
			Tput:        decl,
			SLOClass:    j.SLOClass,
		})
		if err != nil {
			if rpc.CodeOf(err) == rpc.CodeOverload {
				deferred = append(deferred, si)
				return nil
			}
			return err
		}
		wireOf[j.ID] = rep.JobID
		stateOf[rep.JobID] = si
		if rep.State == rpc.SubmissionQueued {
			pending[rep.JobID] = si
		}
		return nil
	}

	now := 0.0
	completed := 0
	nextArrival := 0

	for completed < len(trace) && now < e.maxSec {
		// Retire finished jobs. Only stale shards can hold one: a finishing
		// job marks its shard dirty.
		for k := 0; k < numShards; k++ {
			if !svc.IsDirty(k) {
				continue
			}
			for _, id := range svc.ShardJobs(k) {
				if states[stateOf[id]].done {
					if err := svc.Remove(id); err != nil {
						return nil, err
					}
				}
			}
		}
		// Admit arrivals up to now: directly through the coordinator's
		// router, or — under the submission plane — streamed as tenant
		// submissions that the AdmitPending pass below admits under the
		// per-tenant quotas.
		if admission {
			retry := deferred
			deferred = nil
			for _, si := range retry {
				if err := submit(si); err != nil {
					return nil, err
				}
			}
			for nextArrival < len(trace) && trace[nextArrival].Arrival <= now {
				if err := submit(nextArrival); err != nil {
					return nil, err
				}
				nextArrival++
			}
			if err := svc.ExpireAbandoned(int64(res.Rounds)); err != nil {
				return nil, err
			}
			admitted, err := svc.AdmitPending(int64(res.Rounds))
			if err != nil {
				return nil, err
			}
			base := svc.NumJobs() - len(admitted)
			for i, id := range admitted {
				states[stateOf[id]].arrivalN = base + i + 1
				delete(pending, id)
			}
			// Submissions shed by the overload ladder (or withdrawn by the
			// abandoned-client TTL) will never be admitted: stop waiting on
			// them. Poll doubles as the tenants' liveness heartbeat.
			waiting := make([]int, 0, len(pending))
			for id := range pending {
				waiting = append(waiting, id)
			}
			sort.Ints(waiting)
			for _, id := range waiting {
				j := states[pending[id]].job
				rep, err := svc.Poll(rpc.PollArgs{Tenant: tenantName(j), Key: submitKey(j)})
				if err != nil {
					return nil, err
				}
				if rep.State == rpc.SubmissionRejected || rep.State == rpc.SubmissionWithdrawn {
					delete(pending, id)
				}
			}
		} else {
			for nextArrival < len(trace) && trace[nextArrival].Arrival <= now {
				st := states[nextArrival]
				j := st.job
				st.arrivalN = svc.NumJobs() + 1
				tput := make([]float64, len(e.workers))
				for t := range tput {
					tput[t] = e.provider.Isolated(j, t)
				}
				stateOf[j.ID] = nextArrival
				if _, err := svc.Admit(j.ID, j.ScaleFactor, tput); err != nil {
					return nil, err
				}
				nextArrival++
			}
		}
		if svc.NumJobs() == 0 {
			if len(pending) == 0 && len(deferred) == 0 {
				// Fast-forward to the next arrival boundary.
				if nextArrival >= len(trace) {
					break
				}
				steps := math.Ceil((trace[nextArrival].Arrival - now) / e.round)
				if steps < 1 {
					steps = 1
				}
				now += steps * e.round
				continue
			}
			// Nothing resident but submissions are waiting on quota or
			// backpressure: advance one full round so tokens refill and the
			// deferred resubmissions fire.
			now += e.round
			res.Rounds++
			if err := svc.EndRound(int64(res.Rounds)); err != nil {
				return nil, err
			}
			continue
		}

		// Periodic rebalance: migrate jobs from the most to the least
		// loaded shard; their warm LP bases travel in the Extract/Install
		// payloads.
		if cfg.RebalanceEveryRounds > 0 && res.Rounds > 0 && res.Rounds%cfg.RebalanceEveryRounds == 0 {
			migs, err := svc.Rebalance()
			if err != nil {
				return nil, err
			}
			for _, m := range migs {
				st := states[stateOf[m.Job]]
				// A migration is a physical placement change: server
				// indices are shard-local, so the old coordinates must not
				// suppress the checkpoint penalty or preemption count when
				// the destination shard happens to reuse the same numbers.
				st.lastType, st.lastServer, st.lastPartner = -1, -1, -1
			}
		}

		// Recompute every stale shard's allocation concurrently across the
		// daemons.
		info := func(id int) policy.JobInfo {
			st := states[stateOf[id]]
			j := st.job
			ji := policy.JobInfo{
				Weight:         j.Weight,
				Priority:       j.Priority,
				RemainingSteps: j.TotalSteps - st.steps,
				TotalSteps:     j.TotalSteps,
				Elapsed:        now - j.Arrival,
				ArrivalSeq:     st.seq,
				Entity:         j.Entity,
			}
			if j.SLO > 0 {
				ji.SLORemaining = j.Arrival + j.SLO - now
				if ji.SLORemaining < 1 {
					ji.SLORemaining = 1
				}
			}
			return ji
		}
		anyStale := false
		for k := range reallocated {
			alloc, _ := svc.Alloc(k)
			reallocated[k] = svc.IsDirty(k) || alloc == nil
			anyStale = anyStale || reallocated[k]
		}
		allocStart := time.Now()
		if err := svc.AllocateAll(int64(res.Rounds), info, false); err != nil {
			return nil, fmt.Errorf("policy %s: %w", cfg.Policy.Name(), err)
		}
		if anyStale {
			res.PolicyTime += time.Since(allocStart)
		}
		for k, did := range reallocated {
			if !did {
				continue
			}
			_, ids := svc.Alloc(k)
			shardRounds[k] = 0
			allocStates[k] = allocStates[k][:0]
			for _, id := range ids {
				allocStates[k] = append(allocStates[k], stateOf[id])
			}
		}

		// Round assignment fans out to the daemons; the merge validates the
		// per-shard and global budget invariants on the mirror. Progress,
		// cost, and completion apply serially in shard order, with each
		// shard's pair observations flushed back before the next shard.
		skip := func(id int) bool { return states[stateOf[id]].done }
		perShard, err := svc.AssignRound(int64(res.Rounds), e.round, skip)
		if err != nil {
			return nil, err
		}
		for k := 0; k < numShards; k++ {
			alloc, _ := svc.Alloc(k)
			if alloc == nil || len(alloc.Units) == 0 {
				continue
			}
			if cfg.OnRound != nil {
				cfg.OnRound(now, alloc, allocStates[k], perShard[k])
			}
			batch := &batchObserver{wire: wire, measure: admission}
			var dirtied bool
			applyAssignments(cfg, batch, states, allocStates[k], alloc, perShard[k], e.round, now, e.prices, e.noise, &dirtied, &completed, res)
			if dirtied {
				if err := svc.MarkDirty(k); err != nil {
					return nil, err
				}
			}
			if err := svc.Observe(k, batch.obs); err != nil {
				return nil, err
			}
			// Worker-measured isolated rates flow back to the trust review,
			// journaled so a resumed coordinator re-derives the same EWMAs.
			for _, ms := range batch.meas {
				if err := svc.ObserveMeasured(ms.id, ms.typ, ms.rate); err != nil {
					return nil, err
				}
			}
		}

		now += e.round
		res.Rounds++
		for k := range shardRounds {
			shardRounds[k]++
			if cfg.ReallocEveryRounds > 0 && shardRounds[k] >= cfg.ReallocEveryRounds {
				if err := svc.MarkDirty(k); err != nil {
					return nil, err
				}
			}
		}
		// Periodic recovery snapshot: pull every daemon's warm seeds and
		// accounting. Read-only — results are unaffected by the cadence.
		if res.Rounds%snapEvery == 0 {
			if err := svc.SnapshotAll(); err != nil {
				return nil, err
			}
		}
		// A daemon died this round (any call above marks it down on a
		// transport failure): re-route its jobs onto the survivors with the
		// last snapshot's seeds. The destinations turn dirty and reallocate
		// next round — remapped solves, not cold ones.
		if svc.AnyDown() {
			migs, err := svc.Recover()
			if err != nil {
				return nil, err
			}
			for _, m := range migs {
				st := states[stateOf[m.Job]]
				st.lastType, st.lastServer, st.lastPartner = -1, -1, -1
			}
		}
		// Seal the round: the journal's fsync batch point. Without a journal
		// this only advances the service's round counter.
		if err := svc.EndRound(int64(res.Rounds)); err != nil {
			return nil, err
		}
	}

	// Final retire pass under the submission plane: the loop exits as the
	// last job completes, before the next iteration's retire would remove it
	// — resolve those submissions to Done so the tenant accounting is
	// terminal.
	if admission {
		for k := 0; k < numShards; k++ {
			for _, id := range svc.ShardJobs(k) {
				if states[stateOf[id]].done {
					if err := svc.Remove(id); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Merge per-shard accounting into the Result. Dead daemons contribute
	// their last snapshot's accounting.
	res.NumShards = numShards
	res.Migrations = svc.Migrations()
	res.Rebalances = svc.Rebalances()
	res.Recoveries = svc.Recoveries()
	res.DegradedRounds = svc.DegradedRounds()
	res.Tenants = svc.TenantStats()
	res.Decisions = svc.Decisions()
	stats, err := svc.Stats()
	if err != nil {
		return nil, err
	}
	for _, st := range stats {
		res.PolicyCalls += st.PolicyCalls
		cold := st.Solve.Solves - st.Solve.WarmHits - st.Solve.RemapHits
		res.ShardStats = append(res.ShardStats, ShardStat{
			Shard:             st.Index,
			JobsAdmitted:      st.Admitted,
			MigratedIn:        st.MigratedIn,
			MigratedOut:       st.MigratedOut,
			LPSolves:          st.Solve.Solves,
			WarmSolves:        st.Solve.WarmHits,
			RemappedSolves:    st.Solve.RemapHits,
			ColdSolves:        cold,
			SimplexIterations: st.Solve.Iterations,

			PresolveReductions: st.Solve.PresolveReductions,
			DualIterations:     st.Solve.DualIterations,
			StaleAllocs:        svc.StaleAllocs(st.Index),
			QuarantinedJobs:    svc.QuarantinedJobs(st.Index),
		})
		res.LPSolves += st.Solve.Solves
		res.WarmSolves += st.Solve.WarmHits
		res.RemappedSolves += st.Solve.RemapHits
		res.SimplexIterations += st.Solve.Iterations
		res.RevisedSolves += st.Solve.RevisedSolves
		res.DenseSolves += st.Solve.DenseSolves
		res.EngineFallbacks += st.Solve.Fallbacks
		res.PresolveReductions += st.Solve.PresolveReductions
		res.DualIterations += st.Solve.DualIterations
	}

	for _, st := range states {
		if !st.done {
			res.Unfinished++
		}
	}
	for i := range res.Jobs {
		if res.Jobs[i].SLOViolated {
			res.SLOViolations++
		}
	}
	return res, nil
}
