package workload

import (
	"fmt"
	"math"
)

// The oracle works in the paper's fixed accelerator universe. Cluster specs
// used with this package must use these type names in this order.
var TypeNames = []string{"v100", "p100", "k80"}

// Accelerator type indices, aligned with TypeNames and with the cluster
// constructors in internal/cluster.
const (
	V100 = 0
	P100 = 1
	K80  = 2
	// NumTypes is the size of the paper's accelerator universe.
	NumTypes = 3
)

// memCapacity is each type's usable memory relative to a V100 (16 GB);
// the K80's 12 GB board gates more colocations.
var memCapacity = [NumTypes]float64{1.0, 1.0, 0.75}

// mpsOverhead is the multiplicative throughput cost of running under a
// space-sharing runtime (MPS / CUDA streams).
const mpsOverhead = 0.95

// batchThroughputScale returns the iterations/second multiplier for the
// config's batch size relative to the family's smallest: bigger batches do
// more work per step, so steps/sec falls sub-linearly.
func batchThroughputScale(c Config) float64 {
	prof := familyProfiles[c.Family]
	smallest := float64(prof.batchSizes[0])
	return math.Pow(smallest/float64(c.BatchSize), 0.8)
}

// Throughput returns the isolated single-worker training throughput
// (iterations/second) of config c on accelerator type j. This is the
// synthetic stand-in for the paper's measured throughput matrix T.
func Throughput(c Config, j int) float64 {
	if j < 0 || j >= NumTypes {
		panic(fmt.Sprintf("workload: bad accelerator type %d", j))
	}
	prof := familyProfiles[c.Family]
	return prof.baseK80 * batchThroughputScale(c) * prof.speedup[j]
}

// MemFraction returns the fraction of accelerator j's memory config c
// needs. Batch size grows the activation footprint.
func MemFraction(c Config, j int) float64 {
	prof := familyProfiles[c.Family]
	smallest := float64(prof.batchSizes[0])
	grow := math.Pow(float64(c.BatchSize)/smallest, 0.5)
	return prof.memFrac * grow / memCapacity[j]
}

// Fits reports whether config c can run at all on type j (the paper's
// T_mj = -inf case for memory-constrained placements).
func Fits(c Config, j int) bool { return MemFraction(c, j) <= 1.0 }

// computeUtil returns the fraction of type j's compute c saturates. A model
// that uses 20% of a V100 saturates ~40% of a GPU half as fast.
func computeUtil(c Config, j int) float64 {
	prof := familyProfiles[c.Family]
	rel := prof.speedup[j] / prof.speedup[V100] // <= 1 for slower types
	u := prof.computeUtil / rel
	// Larger batches pack the device better.
	u *= math.Pow(float64(c.BatchSize)/float64(prof.batchSizes[0]), 0.15)
	if u > 1 {
		u = 1
	}
	return u
}

// Colocated returns the throughputs of configs a and b when space-sharing a
// single device of type j, and whether the pair fits in device memory at
// all. When the pair's combined compute demand is under the device's
// capacity both run near full speed (the win space sharing is after); when
// it exceeds capacity they split it proportionally, making the combination
// no better than time sharing. This reproduces the structure of the
// paper's Figure 15 heat map.
func Colocated(a, b Config, j int) (ta, tb float64, ok bool) {
	if MemFraction(a, j)+MemFraction(b, j) > 1.0 {
		return 0, 0, false
	}
	ua, ub := computeUtil(a, j), computeUtil(b, j)
	demand := ua + ub
	sa, sb := mpsOverhead, mpsOverhead
	if demand > 1 {
		sa = mpsOverhead / demand
		sb = mpsOverhead / demand
	}
	return Throughput(a, j) * sa, Throughput(b, j) * sb, true
}

// ColocationGain returns the combined normalized throughput of pairing a
// and b on type j: (ta/Ta + tb/Tb). Time sharing achieves 1.0; values
// meaningfully above 1 indicate a profitable packing. Returns 0 when the
// pair does not fit.
func ColocationGain(a, b Config, j int) float64 {
	ta, tb, ok := Colocated(a, b, j)
	if !ok {
		return 0
	}
	return ta/Throughput(a, j) + tb/Throughput(b, j)
}

// ScaledThroughput returns the aggregate throughput of a distributed job
// running config c over scaleFactor workers of type j, in a consolidated
// (same-server) or unconsolidated (spread) placement. Communication
// sensitivity scales with the model's commScale and with device speed:
// slower devices are compute-bound, so spreading them costs less (§3.1
// "Placement Sensitivity").
func ScaledThroughput(c Config, j, scaleFactor int, consolidated bool) float64 {
	if scaleFactor <= 1 {
		return Throughput(c, j)
	}
	prof := familyProfiles[c.Family]
	rel := prof.speedup[j] / prof.speedup[V100]
	comm := prof.commScale * rel
	penalty := 0.08
	if !consolidated {
		penalty = 0.45
	}
	eff := 1.0 / (1.0 + comm*penalty*math.Log2(float64(scaleFactor)))
	return Throughput(c, j) * float64(scaleFactor) * eff
}

// DollarNormalized returns iterations per dollar for config c on type j
// given the per-hour price (Figure 1b).
func DollarNormalized(c Config, j int, pricePerHour float64) float64 {
	return Throughput(c, j) / (pricePerHour / 3600.0)
}
