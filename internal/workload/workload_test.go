package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/cluster"
)

func TestZooHas26Configs(t *testing.T) {
	zoo := Zoo()
	if len(zoo) != 26 {
		t.Fatalf("zoo has %d configs, want 26 (Table 2)", len(zoo))
	}
	for i, c := range zoo {
		if c.Index != i {
			t.Fatalf("config %d has Index %d", i, c.Index)
		}
		if c.Name() == "" || c.Task == "" {
			t.Fatalf("config %d missing metadata: %+v", i, c)
		}
	}
}

// TestFigure1Shape checks the headline heterogeneity facts of Figure 1:
// ResNet-50 speeds up ~10x V100 vs K80 while A3C only ~2x; per-dollar the
// V100 wins for ResNet-50 but the K80 wins for A3C.
func TestFigure1Shape(t *testing.T) {
	var resnet50, a3c Config
	for _, c := range Zoo() {
		if c.Family == ResNet50 && c.BatchSize == 16 {
			resnet50 = c
		}
		if c.Family == A3C {
			a3c = c
		}
	}
	r50Speedup := Throughput(resnet50, V100) / Throughput(resnet50, K80)
	a3cSpeedup := Throughput(a3c, V100) / Throughput(a3c, K80)
	if r50Speedup < 8 || r50Speedup > 12 {
		t.Errorf("ResNet-50 V100/K80 speedup = %.1f, want ~10", r50Speedup)
	}
	if a3cSpeedup < 1.5 || a3cSpeedup > 2.5 {
		t.Errorf("A3C V100/K80 speedup = %.1f, want ~2", a3cSpeedup)
	}

	prices := []float64{cluster.PriceV100, cluster.PriceP100, cluster.PriceK80}
	best := func(c Config) int {
		bi, bv := -1, 0.0
		for j, p := range prices {
			if v := DollarNormalized(c, j, p); v > bv {
				bi, bv = j, v
			}
		}
		return bi
	}
	if best(resnet50) != V100 {
		t.Errorf("ResNet-50 best per-dollar type = %d, want V100", best(resnet50))
	}
	if best(a3c) != K80 {
		t.Errorf("A3C best per-dollar type = %d, want K80", best(a3c))
	}
}

func TestThroughputMonotoneAcrossTypes(t *testing.T) {
	for _, c := range Zoo() {
		if !(Throughput(c, V100) > Throughput(c, P100) && Throughput(c, P100) > Throughput(c, K80)) {
			t.Errorf("%s: throughputs not ordered V100 > P100 > K80: %v %v %v",
				c.Name(), Throughput(c, V100), Throughput(c, P100), Throughput(c, K80))
		}
	}
}

func TestEveryConfigFitsSomewhere(t *testing.T) {
	for _, c := range Zoo() {
		ok := false
		for j := 0; j < NumTypes; j++ {
			if Fits(c, j) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s fits on no accelerator", c.Name())
		}
	}
}

func TestColocationSymmetricFeasibility(t *testing.T) {
	zoo := Zoo()
	for _, a := range zoo {
		for _, b := range zoo {
			_, _, ok1 := Colocated(a, b, P100)
			_, _, ok2 := Colocated(b, a, P100)
			if ok1 != ok2 {
				t.Fatalf("colocation feasibility asymmetric for %s + %s", a.Name(), b.Name())
			}
		}
	}
}

// TestColocationShape reproduces the structure of Figure 15: small models
// pack profitably, two heavy models do not, and throughput never exceeds
// isolated.
func TestColocationShape(t *testing.T) {
	var a3c, r50 Config
	for _, c := range Zoo() {
		if c.Family == A3C {
			a3c = c
		}
		if c.Family == ResNet50 && c.BatchSize == 16 {
			r50 = c
		}
	}
	// Two light jobs: combined normalized throughput close to 2.
	if g := ColocationGain(a3c, a3c, P100); g < 1.5 {
		t.Errorf("A3C+A3C colocation gain = %.2f, want > 1.5", g)
	}
	// Two heavy jobs: no benefit over time sharing.
	if g := ColocationGain(r50, r50, K80); g > 1.05 {
		t.Errorf("ResNet50+ResNet50 on K80 gain = %.2f, want <= ~1", g)
	}
	// Never above isolated.
	for _, c := range Zoo() {
		ta, tb, ok := Colocated(c, a3c, V100)
		if !ok {
			continue
		}
		if ta > Throughput(c, V100)+1e-9 || tb > Throughput(a3c, V100)+1e-9 {
			t.Fatalf("colocated throughput exceeds isolated for %s", c.Name())
		}
	}
}

func TestScaledThroughputProperties(t *testing.T) {
	for _, c := range Zoo() {
		for _, sf := range []int{2, 4, 8} {
			cons := ScaledThroughput(c, V100, sf, true)
			uncons := ScaledThroughput(c, V100, sf, false)
			iso := Throughput(c, V100)
			if cons < uncons {
				t.Fatalf("%s sf=%d: consolidated (%v) slower than unconsolidated (%v)", c.Name(), sf, cons, uncons)
			}
			if cons > iso*float64(sf)+1e-9 {
				t.Fatalf("%s sf=%d: super-linear scaling", c.Name(), sf)
			}
			if cons < iso {
				t.Fatalf("%s sf=%d: scaling below single worker", c.Name(), sf)
			}
		}
		if ScaledThroughput(c, V100, 1, true) != Throughput(c, V100) {
			t.Fatalf("%s: sf=1 must equal isolated", c.Name())
		}
	}
}

// Placement sensitivity: the unconsolidated penalty must hurt more on fast
// accelerators (slower workers are less communication-bound, §3.1).
func TestPlacementPenaltySmallerOnSlowGPUs(t *testing.T) {
	var transformer Config
	for _, c := range Zoo() {
		if c.Family == Transformer && c.BatchSize == 16 {
			transformer = c
		}
	}
	ratioV := ScaledThroughput(transformer, V100, 8, false) / ScaledThroughput(transformer, V100, 8, true)
	ratioK := ScaledThroughput(transformer, K80, 8, false) / ScaledThroughput(transformer, K80, 8, true)
	if ratioV >= ratioK {
		t.Errorf("unconsolidated penalty on V100 (ratio %.2f) should exceed K80 (ratio %.2f)", ratioV, ratioK)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	opt := TraceOptions{NumJobs: 50, LambdaPerHour: 4, Seed: 9, MultiWorker: true}
	a := GenerateTrace(opt)
	b := GenerateTrace(opt)
	if len(a) != 50 || len(b) != 50 {
		t.Fatal("wrong length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateTraceArrivalsMonotone(t *testing.T) {
	jobs := GenerateTrace(TraceOptions{NumJobs: 100, LambdaPerHour: 2, Seed: 3})
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Arrival < jobs[i-1].Arrival {
			t.Fatal("arrivals not monotone")
		}
	}
}

func TestGenerateTraceStatic(t *testing.T) {
	jobs := GenerateTrace(TraceOptions{NumJobs: 30, Seed: 5})
	for _, j := range jobs {
		if j.Arrival != 0 {
			t.Fatal("static trace must have all arrivals at 0")
		}
		if j.ScaleFactor != 1 {
			t.Fatal("default trace must be single-worker")
		}
	}
}

// Property: sampled durations stay within the configured log-uniform range
// and TotalSteps is consistent with the V100 throughput.
func TestPropertyTraceDurations(t *testing.T) {
	f := func(seed int64) bool {
		jobs := GenerateTrace(TraceOptions{NumJobs: 20, Seed: seed})
		lo, hi := math.Pow(10, 1.5)*60, math.Pow(10, 4)*60
		for _, j := range jobs {
			if j.RefDuration < lo-1e-6 || j.RefDuration > hi+1e-6 {
				return false
			}
			want := j.RefDuration * Throughput(j.Config, V100)
			if math.Abs(want-j.TotalSteps) > 1e-6*want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiWorkerMix(t *testing.T) {
	jobs := GenerateTrace(TraceOptions{NumJobs: 2000, Seed: 7, MultiWorker: true})
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.ScaleFactor]++
	}
	frac1 := float64(counts[1]) / 2000
	frac8 := float64(counts[8]) / 2000
	if frac1 < 0.65 || frac1 > 0.75 {
		t.Errorf("single-worker fraction = %.2f, want ~0.70", frac1)
	}
	if frac8 < 0.03 || frac8 > 0.08 {
		t.Errorf("8-worker fraction = %.2f, want ~0.05", frac8)
	}
	if counts[2]+counts[4] == 0 {
		t.Error("no 2- or 4-worker jobs")
	}
}

func TestCostTrace(t *testing.T) {
	jobs := CostTrace(500, 1)
	if len(jobs) != 500 {
		t.Fatal("want 500 jobs")
	}
	rng := rand.New(rand.NewSource(0))
	_ = rng
	for _, j := range jobs {
		if j.Config.Family != ResNet50 && j.Config.Family != A3C {
			t.Fatalf("cost trace job family %v", j.Config.Family)
		}
		if j.SLO <= 0 {
			t.Fatal("cost trace jobs need SLOs")
		}
		ratio := j.SLO / j.RefDuration
		if ratio < 1.19 || ratio > 10.01 {
			t.Fatalf("SLO factor %v out of {1.2, 2, 10}", ratio)
		}
	}
}
