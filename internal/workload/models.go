// Package workload reproduces the paper's workload: the 26 job
// configurations of Table 2, a synthetic throughput oracle shaped to the
// measured behaviour in Figures 1 and 15 (isolated throughputs per
// accelerator type, pairwise space-sharing throughputs, distributed-scaling
// behaviour for consolidated vs. unconsolidated placement), and the trace
// generators of §7.1 (static and continuous, single- and multi-worker).
//
// The paper measured real models on real GPUs; this package substitutes a
// parametric model calibrated to the paper's reported shapes: ResNet-50 sees
// ~10x V100 vs K80 while A3C sees ~2x; per-dollar the P100/K80 win for
// several models; colocation benefit depends on each model's compute and
// memory footprint (Figure 15's heat map structure).
package workload

// ModelFamily identifies one of the seven DNN architectures in Table 2.
type ModelFamily int

const (
	ResNet50 ModelFamily = iota
	ResNet18
	A3C
	LSTM
	Transformer
	CycleGAN
	Recoder
	numFamilies
)

func (f ModelFamily) String() string {
	switch f {
	case ResNet50:
		return "ResNet-50"
	case ResNet18:
		return "ResNet-18"
	case A3C:
		return "A3C"
	case LSTM:
		return "LSTM"
	case Transformer:
		return "Transformer"
	case CycleGAN:
		return "CycleGAN"
	case Recoder:
		return "Recoder"
	}
	return "unknown"
}

// familyProfile captures the per-architecture parameters of the synthetic
// throughput oracle.
type familyProfile struct {
	task string
	// speedup of each accelerator type relative to K80, shaped to Figure 1a.
	// Order: v100, p100, k80.
	speedup [3]float64
	// baseK80 is iterations/second on a K80 at the family's smallest batch
	// size; throughput shrinks roughly linearly with batch size.
	baseK80 float64
	// computeUtil is the fraction of a V100's compute the model saturates
	// in steady state; small models leave room for space sharing.
	computeUtil float64
	// memFrac is the fraction of GPU memory used at the smallest batch
	// size; grows with batch size and gates colocation feasibility.
	memFrac float64
	// commScale in [0,1] captures distributed-scaling communication
	// sensitivity: 0 = compact weights (scales well even unconsolidated),
	// 1 = communication-bound (needs consolidation).
	commScale float64
	// batchSizes from Table 2.
	batchSizes []int
}

var familyProfiles = [numFamilies]familyProfile{
	ResNet50: {
		task:        "Image Classification (ImageNet)",
		speedup:     [3]float64{10.0, 3.3, 1.0},
		baseK80:     2.0,
		computeUtil: 0.90,
		memFrac:     0.35,
		commScale:   0.5,
		batchSizes:  []int{16, 32, 64, 128},
	},
	ResNet18: {
		task:        "Image Classification (CIFAR-10)",
		speedup:     [3]float64{6.0, 2.5, 1.0},
		baseK80:     12.0,
		computeUtil: 0.45,
		memFrac:     0.12,
		commScale:   0.3,
		batchSizes:  []int{16, 32, 64, 128, 256},
	},
	A3C: {
		task:        "Deep RL (Pong)",
		speedup:     [3]float64{2.0, 1.5, 1.0},
		baseK80:     8.0,
		computeUtil: 0.20,
		memFrac:     0.08,
		commScale:   0.1,
		batchSizes:  []int{4},
	},
	LSTM: {
		task:        "Language Modeling (Wikitext-2)",
		speedup:     [3]float64{4.0, 2.2, 1.0},
		baseK80:     10.0,
		computeUtil: 0.40,
		memFrac:     0.15,
		commScale:   0.6,
		batchSizes:  []int{5, 10, 20, 40, 80},
	},
	Transformer: {
		task:        "Language Translation (Multi30k de-en)",
		speedup:     [3]float64{5.5, 2.6, 1.0},
		baseK80:     6.0,
		computeUtil: 0.65,
		memFrac:     0.25,
		commScale:   0.8,
		batchSizes:  []int{16, 32, 64, 128, 256},
	},
	CycleGAN: {
		task:        "Image-to-Image Translation (monet2photo)",
		speedup:     [3]float64{8.0, 3.0, 1.0},
		baseK80:     1.5,
		computeUtil: 0.85,
		memFrac:     0.45,
		commScale:   0.4,
		batchSizes:  []int{1},
	},
	Recoder: {
		task:        "Recommendation (ML-20M, Autoencoder)",
		speedup:     [3]float64{5.0, 2.3, 1.0},
		baseK80:     15.0,
		computeUtil: 0.35,
		memFrac:     0.18,
		commScale:   0.2,
		batchSizes:  []int{512, 1024, 2048, 4096, 8192},
	},
}

// Config is one job configuration: a model family at a specific batch size.
// The zoo contains the paper's 26 configurations (Table 2).
type Config struct {
	Index      int
	Family     ModelFamily
	Task       string
	BatchSize  int
	batchLevel int // 0-based index of BatchSize within the family
}

// Name returns e.g. "ResNet-50 (bs=64)".
func (c Config) Name() string {
	if len(familyProfiles[c.Family].batchSizes) == 1 {
		return c.Family.String()
	}
	return c.Family.String() + " (bs=" + itoa(c.BatchSize) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Zoo returns the full list of 26 job configurations.
func Zoo() []Config {
	var zoo []Config
	for f := ModelFamily(0); f < numFamilies; f++ {
		for bi, bs := range familyProfiles[f].batchSizes {
			zoo = append(zoo, Config{
				Index:      len(zoo),
				Family:     f,
				Task:       familyProfiles[f].task,
				BatchSize:  bs,
				batchLevel: bi,
			})
		}
	}
	return zoo
}
