package workload

import (
	"math"
	"math/rand"
)

// Job is one entry of a trace: a model configuration plus the scheduling
// metadata Gavel's policies consume.
type Job struct {
	ID          int
	Config      Config
	TotalSteps  float64 // iterations to train
	Arrival     float64 // seconds since trace start
	ScaleFactor int     // number of workers requested
	Weight      float64 // fair-share weight (default 1)
	Priority    float64 // priority multiplier for the LAS-with-priorities experiment (default 1)
	SLO         float64 // completion deadline in seconds from arrival; 0 = none
	RefDuration float64 // sampled duration in seconds on a dedicated V100
	Entity      int     // hierarchical-policy entity; -1 = none

	// Submission-plane metadata (zero values preserve the classic
	// direct-admission behavior). Tenant names the submitting tenant;
	// SLOClass ranks the job for the overload shedding ladder (lower sheds
	// first); DeclareFactor scales the throughputs the tenant *declares*
	// relative to the truth (1 or 0 = honest; >1 models a tenant inflating
	// its rows to win allocation share).
	Tenant        string
	SLOClass      int
	DeclareFactor float64
}

// TraceOptions parameterizes GenerateTrace. Zero values select the paper's
// defaults (§7.1): log-uniform durations between 10^1.5 and 10^4 minutes,
// single-worker jobs, all weights 1.
type TraceOptions struct {
	NumJobs int
	// LambdaPerHour is the Poisson arrival rate. 0 generates a static trace
	// (all jobs available at time 0).
	LambdaPerHour float64
	// MultiWorker selects the continuous-multiple regime: ~70% of jobs use
	// 1 worker, ~25% use 2 or 4, ~5% use 8 (per the Microsoft trace).
	MultiWorker bool
	// HighPriorityFraction marks this fraction of jobs with Priority 5
	// (the LAS-with-priorities experiment uses 20%).
	HighPriorityFraction float64
	// Entities > 0 assigns jobs round-robin blocks to this many entities
	// for hierarchical policies.
	Entities int
	// DurationMinMinutes/DurationMaxMinutes bound the log-uniform duration
	// sample; defaults 10^1.5 and 10^4.
	DurationMinMinutes float64
	DurationMaxMinutes float64
	// Families restricts sampled model families (nil = whole zoo). The
	// cost experiment uses {ResNet50, A3C}.
	Families []ModelFamily
	// SLOFactors, if non-empty, assigns each job an SLO of factor x its
	// reference duration, sampled uniformly from this list.
	SLOFactors []float64
	Seed       int64
}

// GenerateTrace produces a deterministic trace for the given options.
func GenerateTrace(opt TraceOptions) []Job {
	rng := rand.New(rand.NewSource(opt.Seed))
	zoo := Zoo()
	pool := zoo
	if len(opt.Families) > 0 {
		pool = nil
		want := map[ModelFamily]bool{}
		for _, f := range opt.Families {
			want[f] = true
		}
		for _, c := range zoo {
			if want[c.Family] {
				pool = append(pool, c)
			}
		}
	}
	minMin := opt.DurationMinMinutes
	if minMin <= 0 {
		minMin = math.Pow(10, 1.5)
	}
	maxMin := opt.DurationMaxMinutes
	if maxMin <= 0 {
		maxMin = math.Pow(10, 4)
	}

	jobs := make([]Job, 0, opt.NumJobs)
	t := 0.0
	for i := 0; i < opt.NumJobs; i++ {
		if opt.LambdaPerHour > 0 {
			t += rng.ExpFloat64() / opt.LambdaPerHour * 3600.0
		}
		cfg := pool[rng.Intn(len(pool))]
		// Log-uniform duration in minutes, then seconds.
		logd := math.Log10(minMin) + rng.Float64()*(math.Log10(maxMin)-math.Log10(minMin))
		durSec := math.Pow(10, logd) * 60.0

		sf := 1
		if opt.MultiWorker {
			switch r := rng.Float64(); {
			case r < 0.70:
				sf = 1
			case r < 0.95:
				if rng.Float64() < 0.5 {
					sf = 2
				} else {
					sf = 4
				}
			default:
				sf = 8
			}
		}

		j := Job{
			ID:          i,
			Config:      cfg,
			TotalSteps:  durSec * Throughput(cfg, V100),
			Arrival:     t,
			ScaleFactor: sf,
			Weight:      1,
			Priority:    1,
			RefDuration: durSec,
			Entity:      -1,
		}
		if opt.HighPriorityFraction > 0 && rng.Float64() < opt.HighPriorityFraction {
			j.Priority = 5
		}
		if opt.Entities > 0 {
			j.Entity = i % opt.Entities
		}
		if len(opt.SLOFactors) > 0 {
			f := opt.SLOFactors[rng.Intn(len(opt.SLOFactors))]
			j.SLO = f * durSec
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// CostTrace builds the §7.3 cost-policy workload: jobs drawn from ResNet-50
// and A3C, durations in {0.5, 1, 2, 4, 8} days, SLOs in {1.2, 2, 10} x
// duration.
func CostTrace(numJobs int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	zoo := Zoo()
	var pool []Config
	for _, c := range zoo {
		if c.Family == ResNet50 || c.Family == A3C {
			pool = append(pool, c)
		}
	}
	daysChoices := []float64{0.5, 1, 2, 4, 8}
	sloChoices := []float64{1.2, 2, 10}
	jobs := make([]Job, numJobs)
	for i := range jobs {
		cfg := pool[rng.Intn(len(pool))]
		durSec := daysChoices[rng.Intn(len(daysChoices))] * 24 * 3600
		jobs[i] = Job{
			ID:          i,
			Config:      cfg,
			TotalSteps:  durSec * Throughput(cfg, V100),
			ScaleFactor: 1,
			Weight:      1,
			Priority:    1,
			SLO:         sloChoices[rng.Intn(len(sloChoices))] * durSec,
			RefDuration: durSec,
			Entity:      -1,
		}
	}
	return jobs
}
