package workload

import (
	"fmt"
	"sort"
)

// TenantSpec describes one tenant's stream within a multi-tenant trace: how
// many jobs it submits, how fast, what SLO class they carry, and how
// honestly it declares throughputs. The zero DeclareFactor means truthful.
type TenantSpec struct {
	Name          string
	NumJobs       int
	LambdaPerHour float64
	SLOClass      int
	DeclareFactor float64
	// Trace overrides the shared TraceOptions fields for this tenant's
	// sample (duration bounds, families, multi-worker mix). NumJobs,
	// LambdaPerHour, and Seed inside it are ignored — the spec and the
	// merge control those.
	Trace TraceOptions
}

// GenerateTenantTrace samples each tenant's stream independently —
// per-tenant seeds derived from the base seed, so adding or removing a
// tenant never reshuffles another's jobs — stamps the tenant metadata, and
// merges the streams into one arrival-ordered trace with globally unique
// IDs. A flooding tenant is just a spec with a high LambdaPerHour; a
// misreporting one a spec with DeclareFactor > 1.
func GenerateTenantTrace(seed int64, specs []TenantSpec) []Job {
	var merged []Job
	for i, sp := range specs {
		opt := sp.Trace
		opt.NumJobs = sp.NumJobs
		opt.LambdaPerHour = sp.LambdaPerHour
		opt.Seed = seed*31 + int64(i)
		df := sp.DeclareFactor
		if df <= 0 {
			df = 1
		}
		name := sp.Name
		if name == "" {
			name = fmt.Sprintf("tenant-%d", i)
		}
		jobs := GenerateTrace(opt)
		for j := range jobs {
			jobs[j].Tenant = name
			jobs[j].SLOClass = sp.SLOClass
			jobs[j].DeclareFactor = df
		}
		merged = append(merged, jobs...)
	}
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].Arrival < merged[b].Arrival })
	for i := range merged {
		merged[i].ID = i
	}
	return merged
}
