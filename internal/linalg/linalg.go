// Package linalg provides the small dense linear-algebra kernel used by the
// simplex LP solver and the matrix-completion estimator. It is deliberately
// minimal: dense row-major matrices, Gaussian elimination with partial
// pivoting, and a handful of vector helpers. No external dependencies.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m * b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns m * x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// ErrSingular is returned when a linear solve encounters a (numerically)
// singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveLinear solves A x = b in place of copies using Gaussian elimination
// with partial pivoting. A must be square.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear wants square system, got %dx%d with b of len %d", a.Rows, a.Cols, len(b))
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := w.Row(pivot), w.Row(col)
			for j := 0; j < n; j++ {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1.0 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := w.Row(r), w.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ri := w.Row(i)
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x, nil
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of v by f in place.
func Scale(v []float64, f float64) {
	for i := range v {
		v[i] *= f
	}
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, xv := range x {
		y[i] += a * xv
	}
}

// MaxAbsDiff returns max_i |a_i - b_i|.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: MaxAbsDiff length mismatch")
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
