// Sparse kernels for the revised simplex engine: compressed sparse columns,
// and an LU factorization with Markowitz-style pivot selection plus the
// FTRAN/BTRAN triangular solves the simplex engine runs every iteration.
//
// The factorization is a left-looking (Gilbert-Peierls) sparse LU: columns
// are processed in ascending-nonzero-count order — the static half of the
// Markowitz (r_i-1)(c_j-1) fill heuristic — and within each column the pivot
// row is chosen among the numerically acceptable candidates (threshold
// partial pivoting) as the one with the fewest original-matrix nonzeros —
// the dynamic half. On Gavel's basis matrices (allocation columns carry two
// nonzeros, slack columns one) this keeps fill-in near zero, so a
// factorization costs O(nnz) rather than the O(m^3) of dense elimination.
package linalg

import (
	"fmt"
	"sort"
)

// SparseCol is one column of a sparse matrix: parallel row-index and value
// slices. Rows need not be sorted; duplicate rows are not allowed.
type SparseCol struct {
	Rows []int
	Vals []float64
}

// SingularError reports a (numerically) rank-deficient basis: column Col of
// the input was linearly dependent on the columns pivoted before it.
// FreeRows lists the rows not yet pivoted when the dependency surfaced; a
// caller repairing the basis can re-cover any of them with a unit column.
type SingularError struct {
	Col      int
	FreeRows []int
}

func (e *SingularError) Error() string {
	return fmt.Sprintf("linalg: singular basis at column %d", e.Col)
}

// luEntry is one off-diagonal entry of an LU factor.
type luEntry struct {
	idx int // original row index (L) or pivot step index (U)
	val float64
}

// LU is a sparse LU factorization of a square matrix B with row and column
// permutations: processing columns q[0..n) in order, pivoting rows p[0..n).
// FTran and BTran are the simplex engine's forward and transpose solves.
type LU struct {
	n         int
	p         []int       // step -> pivot row
	q         []int       // step -> original column
	stepOfRow []int       // row -> step
	lcols     [][]luEntry // per step: (row, multiplier) below the diagonal
	ucols     [][]luEntry // per step k: (step s<k, u[s][k]) above the diagonal
	diag      []float64   // u[k][k]
	nnz       int
	z         []float64 // solve scratch, step-indexed
}

const (
	// luRelTol is the threshold-partial-pivoting factor: a pivot candidate
	// must be at least this fraction of the column's largest magnitude.
	luRelTol = 0.1
	// luAbsTol below which a column is treated as numerically empty.
	luAbsTol = 1e-11
)

// Scratch holds the transient workspaces of FactorizeSparseInto plus a pool
// of retired LU shells, so a caller that refactorizes the same-sized basis
// every few dozen pivots (the revised simplex engine) reuses the backing
// arrays instead of reallocating them per factorization. The zero value is
// ready to use; a Scratch is not safe for concurrent factorizations.
type Scratch struct {
	x       []float64
	seen    []int
	visited []int
	touched []int
	reach   []int
	order   []int
	rowCnt  []int
	spare   []*LU
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Recycle returns a retired factorization's arrays to the pool. The caller
// must not use lu after recycling it.
func (sc *Scratch) Recycle(lu *LU) {
	if sc == nil || lu == nil || len(sc.spare) >= 2 {
		return
	}
	sc.spare = append(sc.spare, lu)
}

// shell returns an LU whose top-level arrays are sized for n, reusing a
// recycled factorization's backing storage when one fits.
func (sc *Scratch) shell(n int) *LU {
	if sc != nil {
		for i, lu := range sc.spare {
			if cap(lu.p) >= n && cap(lu.lcols) >= n {
				sc.spare = append(sc.spare[:i], sc.spare[i+1:]...)
				lu.n = n
				lu.p, lu.q, lu.stepOfRow = lu.p[:n], lu.q[:n], lu.stepOfRow[:n]
				lu.diag, lu.z = lu.diag[:n], lu.z[:n]
				lu.lcols, lu.ucols = lu.lcols[:n], lu.ucols[:n]
				for k := 0; k < n; k++ {
					lu.lcols[k] = lu.lcols[k][:0]
					lu.ucols[k] = lu.ucols[k][:0]
				}
				lu.nnz = 0
				return lu
			}
		}
	}
	return &LU{
		n:         n,
		p:         make([]int, n),
		q:         make([]int, n),
		stepOfRow: make([]int, n),
		lcols:     make([][]luEntry, n),
		ucols:     make([][]luEntry, n),
		diag:      make([]float64, n),
		z:         make([]float64, n),
	}
}

// FactorizeSparse computes the LU factorization of the n x n matrix whose
// columns are cols. It returns a *SingularError when a column turns out
// linearly dependent on the columns already pivoted.
func FactorizeSparse(n int, cols []SparseCol) (*LU, error) {
	return FactorizeSparseInto(n, cols, nil)
}

// FactorizeSparseInto is FactorizeSparse with caller-owned scratch buffers:
// a non-nil sc supplies (and keeps) every transient workspace, so repeated
// factorizations allocate only the factor entries themselves. sc may be nil.
func FactorizeSparseInto(n int, cols []SparseCol, sc *Scratch) (*LU, error) {
	if len(cols) != n {
		return nil, fmt.Errorf("linalg: FactorizeSparse wants %d columns, got %d", n, len(cols))
	}
	var local Scratch
	if sc == nil {
		sc = &local
	}
	f := sc.shell(n)
	for i := range f.stepOfRow {
		f.stepOfRow[i] = -1
	}

	// Static Markowitz ordering: columns by ascending nonzero count; original
	// row counts for the dynamic row choice.
	sc.order = growI(sc.order, n)
	order := sc.order
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(cols[order[a]].Rows) < len(cols[order[b]].Rows)
	})
	sc.rowCnt = growI(sc.rowCnt, n)
	rowCount := sc.rowCnt
	for i := range rowCount {
		rowCount[i] = 0
	}
	for j := range cols {
		for _, r := range cols[j].Rows {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("linalg: column %d references row %d of %d", j, r, n)
			}
			rowCount[r]++
		}
	}

	sc.x = growF(sc.x, n)
	sc.seen = growI(sc.seen, n)
	sc.visited = growI(sc.visited, n)
	x := sc.x // dense numeric workspace, row-indexed
	seen := sc.seen
	visited := sc.visited
	for i := 0; i < n; i++ {
		x[i], seen[i], visited[i] = 0, 0, 0
	}
	touched := sc.touched[:0] // rows touched this column
	reach := sc.reach[:0]     // pivot steps reached this column
	defer func() { sc.touched, sc.reach = touched[:0], reach[:0] }()

	var dfs func(s int)
	dfs = func(s int) {
		visited[s] = 1
		for _, e := range f.lcols[s] {
			if s2 := f.stepOfRow[e.idx]; s2 >= 0 && visited[s2] == 0 {
				dfs(s2)
			}
		}
		reach = append(reach, s)
	}

	for k, c := range order {
		// Scatter column c and find the pivot steps its solve touches.
		touched = touched[:0]
		reach = reach[:0]
		for t, r := range cols[c].Rows {
			x[r] = cols[c].Vals[t]
			seen[r] = 1
			touched = append(touched, r)
			if s := f.stepOfRow[r]; s >= 0 && visited[s] == 0 {
				dfs(s)
			}
		}
		// Dependencies in L x = b only flow from earlier steps to later ones,
		// so ascending step order is a valid elimination order.
		sort.Ints(reach)
		for _, s := range reach {
			v := x[f.p[s]]
			if v == 0 {
				continue
			}
			// Any pivoted row fill lands in already has its step in reach:
			// the DFS visited it through this very edge.
			for _, e := range f.lcols[s] {
				if seen[e.idx] == 0 {
					seen[e.idx] = 1
					x[e.idx] = 0
					touched = append(touched, e.idx)
				}
				x[e.idx] -= e.val * v
			}
		}

		// Pivot choice: threshold partial pivoting, then fewest original
		// nonzeros (Markowitz row score) among the acceptable candidates.
		maxAbs := 0.0
		for _, r := range touched {
			if f.stepOfRow[r] < 0 {
				if a := abs(x[r]); a > maxAbs {
					maxAbs = a
				}
			}
		}
		if maxAbs < luAbsTol {
			se := &SingularError{Col: c}
			for r := 0; r < n; r++ {
				if f.stepOfRow[r] < 0 {
					se.FreeRows = append(se.FreeRows, r)
				}
			}
			return nil, se
		}
		piv, pivCount := -1, n+1
		for _, r := range touched {
			if f.stepOfRow[r] >= 0 {
				continue
			}
			if a := abs(x[r]); a >= luRelTol*maxAbs && (rowCount[r] < pivCount || (rowCount[r] == pivCount && (piv < 0 || r < piv))) {
				piv, pivCount = r, rowCount[r]
			}
		}
		pv := x[piv]
		f.p[k], f.q[k], f.diag[k] = piv, c, pv
		f.stepOfRow[piv] = k
		for _, r := range touched {
			v := x[r]
			x[r] = 0
			seen[r] = 0
			if r == piv || v == 0 {
				continue
			}
			if s := f.stepOfRow[r]; s >= 0 && s != k {
				f.ucols[k] = append(f.ucols[k], luEntry{idx: s, val: v})
			} else {
				f.lcols[k] = append(f.lcols[k], luEntry{idx: r, val: v / pv})
			}
		}
		f.nnz += len(f.ucols[k]) + len(f.lcols[k]) + 1
		for _, s := range reach {
			visited[s] = 0
		}
	}
	return f, nil
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.n }

// NNZ returns the number of stored factor entries (fill-in diagnostics).
func (f *LU) NNZ() int { return f.nnz }

// FTran solves B w = b. b is indexed by matrix row; the result is written to
// w indexed by matrix column (w[j] is the solution component of column j).
// b is consumed as scratch; w may alias b.
func (f *LU) FTran(b, w []float64) {
	// Forward eliminate: apply the stored row operations to b.
	for k := 0; k < f.n; k++ {
		v := b[f.p[k]]
		if v == 0 {
			continue
		}
		for _, e := range f.lcols[k] {
			b[e.idx] -= e.val * v
		}
	}
	// Backward substitution by columns of U.
	z := f.z
	for k := f.n - 1; k >= 0; k-- {
		zk := b[f.p[k]] / f.diag[k]
		z[k] = zk
		if zk == 0 {
			continue
		}
		for _, e := range f.ucols[k] {
			b[f.p[e.idx]] -= e.val * zk
		}
	}
	for k := 0; k < f.n; k++ {
		w[f.q[k]] = z[k]
	}
}

// BTran solves Bᵀ y = c. c is indexed by matrix column; the result is
// written to y indexed by matrix row. c is left untouched; y may alias c.
func (f *LU) BTran(c, y []float64) {
	// Forward substitution on Uᵀ (gather form: ucols[k] holds u[s][k], s<k).
	z := f.z
	for k := 0; k < f.n; k++ {
		s := c[f.q[k]]
		for _, e := range f.ucols[k] {
			s -= e.val * z[e.idx]
		}
		z[k] = s / f.diag[k]
	}
	for i := range y {
		y[i] = 0
	}
	for k := 0; k < f.n; k++ {
		y[f.p[k]] = z[k]
	}
	// Transposed row operations, in reverse order.
	for k := f.n - 1; k >= 0; k-- {
		s := y[f.p[k]]
		for _, e := range f.lcols[k] {
			s -= e.val * y[e.idx]
		}
		y[f.p[k]] = s
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
