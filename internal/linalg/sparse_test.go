package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randSparse builds a random nonsingular-ish n x n sparse matrix with the
// given density plus a guaranteed nonzero diagonal.
func randSparse(rng *rand.Rand, n int, density float64) []SparseCol {
	cols := make([]SparseCol, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			v := 0.0
			if i == j {
				v = 1 + rng.Float64()
			} else if rng.Float64() < density {
				v = 2*rng.Float64() - 1
			}
			if v != 0 {
				cols[j].Rows = append(cols[j].Rows, i)
				cols[j].Vals = append(cols[j].Vals, v)
			}
		}
	}
	return cols
}

func denseOf(n int, cols []SparseCol) *Matrix {
	m := NewMatrix(n, n)
	for j := range cols {
		for t, r := range cols[j].Rows {
			m.Set(r, j, cols[j].Vals[t])
		}
	}
	return m
}

func TestSparseLUSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		cols := randSparse(rng, n, 0.15)
		lu, err := FactorizeSparse(n, cols)
		if err != nil {
			t.Fatalf("trial %d: factorize: %v", trial, err)
		}
		dense := denseOf(n, cols)

		b := make([]float64, n)
		for i := range b {
			b[i] = 2*rng.Float64() - 1
		}
		want, err := SolveLinear(dense, b)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		got := make([]float64, n)
		bc := append([]float64(nil), b...)
		lu.FTran(bc, got)
		if d := MaxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("trial %d: FTran off by %g", trial, d)
		}

		c := make([]float64, n)
		for i := range c {
			c[i] = 2*rng.Float64() - 1
		}
		wantT, err := SolveLinear(dense.T(), c)
		if err != nil {
			t.Fatalf("trial %d: dense transpose solve: %v", trial, err)
		}
		gotT := make([]float64, n)
		lu.BTran(c, gotT)
		if d := MaxAbsDiff(gotT, wantT); d > 1e-8 {
			t.Fatalf("trial %d: BTran off by %g", trial, d)
		}
	}
}

func TestSparseLUAliasedSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 25
	cols := randSparse(rng, n, 0.2)
	lu, err := FactorizeSparse(n, cols)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 2*rng.Float64() - 1
	}
	sep := make([]float64, n)
	bc := append([]float64(nil), b...)
	lu.FTran(bc, sep)
	alias := append([]float64(nil), b...)
	lu.FTran(alias, alias)
	if d := MaxAbsDiff(sep, alias); d > 1e-12 {
		t.Fatalf("FTran aliasing changed the result by %g", d)
	}
	cv := make([]float64, n)
	for i := range cv {
		cv[i] = 2*rng.Float64() - 1
	}
	sepT := make([]float64, n)
	lu.BTran(cv, sepT)
	aliasT := append([]float64(nil), cv...)
	lu.BTran(aliasT, aliasT)
	if d := MaxAbsDiff(sepT, aliasT); d > 1e-12 {
		t.Fatalf("BTran aliasing changed the result by %g", d)
	}
}

func TestSparseLUSingular(t *testing.T) {
	// Column 2 = column 0 + column 1: rank deficient.
	cols := []SparseCol{
		{Rows: []int{0, 1}, Vals: []float64{1, 2}},
		{Rows: []int{1, 2}, Vals: []float64{1, 1}},
		{Rows: []int{0, 1, 2}, Vals: []float64{1, 3, 1}},
	}
	_, err := FactorizeSparse(3, cols)
	se, ok := err.(*SingularError)
	if !ok {
		t.Fatalf("want *SingularError, got %v", err)
	}
	if se.Col != 2 {
		// Any of the three dependent columns is an acceptable report, but
		// with ascending-count ordering the 3-entry column goes last.
		t.Fatalf("singular column = %d, want 2", se.Col)
	}
}

func TestSparseLUUnitBasis(t *testing.T) {
	// A permuted identity factorizes exactly and solves exactly.
	n := 6
	perm := []int{3, 1, 5, 0, 2, 4}
	cols := make([]SparseCol, n)
	for j := 0; j < n; j++ {
		cols[j] = SparseCol{Rows: []int{perm[j]}, Vals: []float64{1}}
	}
	lu, err := FactorizeSparse(n, cols)
	if err != nil {
		t.Fatalf("factorize: %v", err)
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	w := make([]float64, n)
	bc := append([]float64(nil), b...)
	lu.FTran(bc, w)
	for j := 0; j < n; j++ {
		if math.Abs(w[j]-b[perm[j]]) > 0 {
			t.Fatalf("w[%d] = %v, want %v", j, w[j], b[perm[j]])
		}
	}
}
