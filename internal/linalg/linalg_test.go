package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinearKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	want := []float64{2, 3, -1}
	if MaxAbsDiff(x, want) > 1e-9 {
		t.Fatalf("x = %v, want %v", x, want)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("want singular error")
	}
}

func TestSolveLinearDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("want dimension error")
	}
}

// Property: for random well-conditioned systems, A * Solve(A, b) == b.
func TestPropertySolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		return MaxAbsDiff(a.MulVec(x), b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(c.Data, want.Data) > 1e-12 {
		t.Fatalf("c = %v, want %v", c.Data, want.Data)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("bad transpose: %+v", at)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2")
	}
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatal("Scale")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AXPY")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}
