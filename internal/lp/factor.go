package lp

// This file holds the basis factorization for the revised simplex engine: a
// sparse LU of the basis matrix (internal/linalg) extended by product-form
// eta updates, so a pivot costs O(nnz) instead of a refactorization, with a
// periodic refresh that bounds both eta-file growth and numerical drift.

import "gavel/internal/linalg"

// etaVec is one product-form update: the entering column's basis-space image
// w = B⁻¹ a_enter, stored sparse, replacing basis position pos.
type etaVec struct {
	pos int
	wr  float64 // w[pos], the pivot element
	ind []int   // positions != pos with nonzero w
	val []float64
}

// basisFactor is a factorization of the current basis: an LU of the basis at
// the last refresh plus the etas accumulated since. FTRAN/BTRAN apply the LU
// solves and then the eta file (in opposite orders).
type basisFactor struct {
	lu     *linalg.LU
	etas   []etaVec
	etaNNZ int
}

const (
	// refactorEvery bounds the eta file length before a refresh.
	refactorEvery = 64
	// etaDropTol below which an eta component is not worth storing.
	etaDropTol = 1e-12
)

// reset installs a fresh LU and clears the eta file.
func (bf *basisFactor) reset(lu *linalg.LU) {
	bf.lu = lu
	bf.etas = bf.etas[:0]
	bf.etaNNZ = 0
}

// dirty reports whether any etas have accumulated since the last refresh.
func (bf *basisFactor) dirty() bool { return len(bf.etas) > 0 }

// needRefresh reports whether the eta file is long or dense enough that a
// refactorization is cheaper than carrying it further.
func (bf *basisFactor) needRefresh(m int) bool {
	return len(bf.etas) >= refactorEvery || bf.etaNNZ > 8*m+256
}

// push appends the eta for the pivot that replaced basis position pos with a
// column whose basis-space image is w (dense, position-indexed).
func (bf *basisFactor) push(pos int, w []float64) {
	e := etaVec{pos: pos, wr: w[pos]}
	for i, v := range w {
		if i != pos && (v > etaDropTol || v < -etaDropTol) {
			e.ind = append(e.ind, i)
			e.val = append(e.val, v)
		}
	}
	bf.etas = append(bf.etas, e)
	bf.etaNNZ += len(e.ind) + 1
}

// ftran solves B w = b in place: x enters indexed by constraint row and
// leaves indexed by basis position.
func (bf *basisFactor) ftran(x []float64) {
	bf.lu.FTran(x, x)
	for t := range bf.etas {
		e := &bf.etas[t]
		zr := x[e.pos] / e.wr
		x[e.pos] = zr
		if zr == 0 {
			continue
		}
		for i, idx := range e.ind {
			x[idx] -= e.val[i] * zr
		}
	}
}

// btran solves Bᵀ y = c in place: x enters indexed by basis position and
// leaves indexed by constraint row.
func (bf *basisFactor) btran(x []float64) {
	for t := len(bf.etas) - 1; t >= 0; t-- {
		e := &bf.etas[t]
		s := x[e.pos]
		for i, idx := range e.ind {
			s -= e.val[i] * x[idx]
		}
		x[e.pos] = s / e.wr
	}
	bf.lu.BTran(x, x)
}
