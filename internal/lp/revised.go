package lp

// This file implements the sparse revised simplex engine (lp.Revised), the
// default solve path. The constraint matrix is held in compressed
// sparse-column form built directly from the Problem's Term lists; the basis
// is factorized with a sparse LU (internal/linalg) and updated with
// product-form etas, refactorizing every few dozen pivots; pricing runs over
// sparse reduced costs with rotating partial pricing (Dantzig within the
// window, Bland after the stall threshold), and ratio tests work on
// FTRAN/BTRAN images of sparse vectors instead of full tableau rows. Gavel's
// allocation programs are structurally sparse (an allocation column touches
// exactly two rows), so per-iteration cost drops from the dense tableau's
// O(m·n) to O(nnz + m), and memory from O(m·n) to O(nnz).
//
// Seeding mirrors the dense paths in spirit: a same-shape Basis is
// factorized directly (SolveFrom), a MappedBasis is re-assembled from its
// row-pinned projection with unit-column repair for dependent columns
// (SolveFromMapped), and lost primal feasibility is restored by a composite
// phase 1 that minimizes the sum of infeasibilities from the seeded basis,
// so repair work scales with the damage. Any numerical trouble — a singular
// factorization that repair cannot fix, a stuck pivot, a verification loop
// that does not converge — abandons the engine and falls back to the dense
// tableau oracle, so the revised engine can change only speed, never
// correctness.

import (
	"math"
	"sort"

	"gavel/internal/linalg"
)

const (
	// feasTol is the primal feasibility tolerance on basic values.
	feasTol = 1e-7
	// pivotTol is the minimum acceptable pivot magnitude |w[leave]|; a
	// smaller pivot forces a refresh (and, if fresh, a bailout to dense).
	pivotTol = 1e-7
	// verifyRounds bounds the refresh-and-reverify loop at optimality.
	verifyRounds = 6
)

// colEntry is one nonzero of a CSC column.
type colEntry struct {
	row int
	val float64
}

// revEngine is the per-solve state of the revised simplex engine.
type revEngine struct {
	p      *Problem
	m      int // constraint rows
	n      int // structural variables
	nTotal int // structural + slack columns; >= nTotal means artificial e_i

	cols    [][]colEntry // CSC over the n structural + slack columns
	ops     []Op         // normalized (rhs >= 0) ops, dense-path compatible
	rhs     []float64
	obj     []float64 // minimize-sense structural costs; slacks 0
	slackOf []int     // row -> its slack column, -1 for EQ rows

	basis   []int // basic column per position (position == row slot)
	inBasis []bool
	xB      []float64
	factor  basisFactor

	iterations    int
	pivots        int
	priceStart    int
	polishedX     []float64 // canonical structural values from polishVertex
	polished      bool      // a vertex polish ran; basis factors may be stale
	seedCanonical bool      // the seed basis came from a polished snapshot
	snapPolished  bool      // this solve's snapshot reproduces the canonical vertex
	protectRow    int       // basis position the ratio test avoids evicting (-1 = none)

	wsY, wsW, wsZ []float64 // BTRAN / FTRAN / polish workspaces
}

// newRevEngine normalizes the problem into CSC form. ok=false hands the
// solve to the dense path (degenerate shapes the engine does not model).
func newRevEngine(p *Problem) (*revEngine, bool) {
	n := len(p.obj)
	m := len(p.cons)
	if m == 0 {
		return nil, false
	}
	e := &revEngine{
		p: p, m: m, n: n,
		ops:     make([]Op, m),
		rhs:     make([]float64, m),
		slackOf: make([]int, m),
	}
	scratch := make([]float64, n)
	var touched []int
	structural := make([][]colEntry, n)
	nSlack := 0
	var slackRows []int // row per slack column, in slack order
	var slackSign []float64
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.terms {
			if scratch[t.Var] == 0 && t.Coeff != 0 {
				touched = append(touched, t.Var)
			}
			scratch[t.Var] += t.Coeff
		}
		b, op, sign := c.rhs, c.op, 1.0
		if b < 0 {
			b, sign = -b, -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		for _, v := range touched {
			if val := scratch[v] * sign; val != 0 {
				structural[v] = append(structural[v], colEntry{row: i, val: val})
			}
			scratch[v] = 0
		}
		e.ops[i], e.rhs[i] = op, b
		e.slackOf[i] = -1
		switch op {
		case LE:
			e.slackOf[i] = n + nSlack
			slackRows = append(slackRows, i)
			slackSign = append(slackSign, 1)
			nSlack++
		case GE:
			e.slackOf[i] = n + nSlack
			slackRows = append(slackRows, i)
			slackSign = append(slackSign, -1)
			nSlack++
		}
	}
	e.nTotal = n + nSlack
	e.cols = make([][]colEntry, e.nTotal)
	copy(e.cols, structural)
	for s, row := range slackRows {
		e.cols[n+s] = []colEntry{{row: row, val: slackSign[s]}}
	}
	e.obj = make([]float64, e.nTotal)
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			e.obj[j] = -p.obj[j]
		} else {
			e.obj[j] = p.obj[j]
		}
	}
	e.basis = make([]int, m)
	e.inBasis = make([]bool, e.nTotal)
	e.xB = make([]float64, m)
	e.wsY = make([]float64, m)
	e.wsW = make([]float64, m)
	e.wsZ = make([]float64, m)
	e.protectRow = -1
	return e, true
}

// factorize rebuilds the LU from the current basis. With repair=true,
// columns the factorization finds linearly dependent are replaced by
// artificials on still-free rows until it succeeds (each replacement is a
// unit column, so the loop terminates); with repair=false a singular basis
// reports false.
func (e *revEngine) factorize(repair bool) bool {
	cols := make([]linalg.SparseCol, e.m)
	for attempt := 0; attempt <= e.m; attempt++ {
		for i, c := range e.basis {
			if c >= e.nTotal {
				cols[i] = linalg.SparseCol{Rows: []int{c - e.nTotal}, Vals: []float64{1}}
				continue
			}
			src := e.cols[c]
			rows := make([]int, len(src))
			vals := make([]float64, len(src))
			for t, en := range src {
				rows[t], vals[t] = en.row, en.val
			}
			cols[i] = linalg.SparseCol{Rows: rows, Vals: vals}
		}
		lu, err := linalg.FactorizeSparse(e.m, cols)
		if err == nil {
			e.factor.reset(lu)
			return true
		}
		se, ok := err.(*linalg.SingularError)
		if !ok || !repair || len(se.FreeRows) == 0 {
			return false
		}
		if old := e.basis[se.Col]; old < e.nTotal {
			e.inBasis[old] = false
		}
		e.basis[se.Col] = e.nTotal + se.FreeRows[0]
	}
	return false
}

// refresh refactorizes the current basis and recomputes the basic values
// from scratch, clearing accumulated eta drift.
func (e *revEngine) refresh() bool {
	if !e.factorize(false) {
		return false
	}
	copy(e.wsW, e.rhs)
	e.factor.ftran(e.wsW)
	copy(e.xB, e.wsW)
	return true
}

// ftranCol computes w = B⁻¹ a_j into wsW (position-indexed).
func (e *revEngine) ftranCol(j int) []float64 {
	w := e.wsW
	for i := range w {
		w[i] = 0
	}
	for _, en := range e.cols[j] {
		w[en.row] = en.val
	}
	e.factor.ftran(w)
	return w
}

// reducedCost returns d_j = c_j - y·a_j for a nonbasic column; phase-1
// structural costs are zero.
func (e *revEngine) reducedCost(j int, y []float64, phase1 bool) float64 {
	var d float64
	if !phase1 {
		d = e.obj[j]
	}
	for _, en := range e.cols[j] {
		d -= y[en.row] * en.val
	}
	return d
}

// priceEnter picks the entering column: rotating partial pricing with the
// Dantzig rule inside the window, or Bland's rule (first eligible in fixed
// order, required for anti-cycling) after the stall threshold.
func (e *revEngine) priceEnter(y []float64, bland, phase1 bool) int {
	total := e.nTotal
	if bland {
		for j := 0; j < total; j++ {
			if !e.inBasis[j] && e.reducedCost(j, y, phase1) < -eps {
				return j
			}
		}
		return -1
	}
	seg := total / 8
	if seg < 64 {
		seg = 64
	}
	best, bestJ := -eps, -1
	scanned := 0
	for scanned < total {
		stop := scanned + seg
		if stop > total {
			stop = total
		}
		for ; scanned < stop; scanned++ {
			j := e.priceStart + scanned
			if j >= total {
				j -= total
			}
			if e.inBasis[j] {
				continue
			}
			if d := e.reducedCost(j, y, phase1); d < best {
				best, bestJ = d, j
			}
		}
		if bestJ >= 0 {
			break
		}
	}
	if bestJ >= 0 {
		e.priceStart += scanned
		if e.priceStart >= total {
			e.priceStart -= total
		}
	}
	return bestJ
}

// applyPivot replaces basis position leave with column enter, moving the
// basic values along the entering direction w by step theta, and records the
// eta (refreshing factors when the eta file has grown enough).
func (e *revEngine) applyPivot(enter, leave int, theta float64, w []float64) bool {
	if theta != 0 {
		for i := range e.xB {
			e.xB[i] -= theta * w[i]
		}
	}
	e.xB[leave] = theta
	if old := e.basis[leave]; old < e.nTotal {
		e.inBasis[old] = false
	}
	e.basis[leave] = enter
	e.inBasis[enter] = true
	e.factor.push(leave, w)
	e.iterations++
	e.pivots++
	if e.factor.needRefresh(e.m) {
		return e.refresh()
	}
	return true
}

// maxInfeas returns the largest primal infeasibility: negative basic values,
// plus any artificial's distance from zero.
func (e *revEngine) maxInfeas() float64 {
	worst := 0.0
	for i, c := range e.basis {
		v := e.xB[i]
		if c >= e.nTotal {
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		} else if -v > worst {
			worst = -v
		}
	}
	return worst
}

// phase1 runs the composite phase 1: minimize the sum of infeasibilities
// (negative real basic values, nonzero artificials) from the current basis.
// The cost vector is rebuilt every iteration from the infeasible set, and the
// ratio test blocks at every sign change so the piecewise-linear objective
// stays consistent. Returns Optimal once feasible, Infeasible when no
// improving column remains, IterationLimit at the cap; ok=false means
// numerical trouble (caller falls back).
func (e *revEngine) phase1() (Status, bool) {
	total := e.nTotal
	stall := stallFactor * (e.m + total)
	hard := hardFactor * (e.m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		y := e.wsY
		any := false
		for i, c := range e.basis {
			v := e.xB[i]
			switch {
			case c >= e.nTotal && v > feasTol:
				y[i], any = 1, true
			case v < -feasTol:
				y[i], any = -1, true
			default:
				y[i] = 0
			}
		}
		if !any {
			return Optimal, true
		}
		e.factor.btran(y)
		enter := e.priceEnter(y, it >= stall, true)
		if enter < 0 {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return Infeasible, true
		}
		dEnter := e.reducedCost(enter, y, true)
		w := e.ftranCol(enter)
		leave, theta := e.phase1Ratio(w, dEnter, it >= stall)
		if leave < 0 {
			// A convex objective bounded below always has a breakpoint;
			// reaching here means the numerics went bad.
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		if a := math.Abs(w[leave]); a < pivotTol {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		if !e.applyPivot(enter, leave, theta, w) {
			return 0, false
		}
	}
	return IterationLimit, true
}

// phase1Bp is one breakpoint of the piecewise-linear phase-1 objective
// along the entering direction: basis position i crosses zero at step theta,
// increasing the directional derivative by delta.
type phase1Bp struct {
	i     int
	theta float64
	delta float64
}

// phase1Ratio runs the long-step (piecewise-linear) ratio test of the
// composite phase 1: starting from the entering column's reduced cost
// dEnter (the initial directional derivative, negative), it walks the
// breakpoints — infeasible basic values reaching zero, feasible ones going
// negative, artificials crossing or leaving zero — in step order,
// accumulating each crossing's slope contribution, and pivots at the
// breakpoint where the derivative turns nonnegative. Passing breakpoints
// instead of blocking at the first one is what makes repairing a heavily
// churned seed cost a handful of pivots rather than one per violated row.
// Under Bland's rule it degrades to the blocking short step for anti-cycling.
func (e *revEngine) phase1Ratio(w []float64, dEnter float64, bland bool) (int, float64) {
	bps := e.phase1Breakpoints(w)
	if len(bps) == 0 {
		return -1, 0
	}
	if bland {
		leave, best := -1, 0.0
		for _, b := range bps {
			if leave < 0 || b.theta < best-eps ||
				(b.theta < best+eps && e.basis[b.i] < e.basis[leave]) {
				leave, best = b.i, b.theta
			}
		}
		return leave, best
	}
	sortBreakpoints(bps)
	s := dEnter
	stop := len(bps) - 1
	for k, b := range bps {
		s += b.delta
		if s >= -1e-12 {
			stop = k
			break
		}
	}
	// Among breakpoints at (numerically) the same step, pivot on the
	// largest-magnitude entry for stability.
	leave, best := bps[stop].i, bps[stop].theta
	for _, b := range bps {
		if math.Abs(b.theta-best) <= eps && math.Abs(w[b.i]) > math.Abs(w[leave]) {
			leave = b.i
		}
	}
	return leave, best
}

// phase1Breakpoints collects the zero crossings of the basic values along
// the entering direction, with each crossing's slope increase.
func (e *revEngine) phase1Breakpoints(w []float64) []phase1Bp {
	var bps []phase1Bp
	for i, c := range e.basis {
		v, wi := e.xB[i], w[i]
		art := c >= e.nTotal
		switch {
		case art && v > feasTol:
			if wi > eps {
				bps = append(bps, phase1Bp{i, v / wi, 2 * wi})
			}
		case art && v < -feasTol:
			if wi < -eps {
				bps = append(bps, phase1Bp{i, v / wi, -2 * wi})
			}
		case art:
			if wi > eps {
				bps = append(bps, phase1Bp{i, 0, wi})
			} else if wi < -eps {
				bps = append(bps, phase1Bp{i, 0, -wi})
			}
		case v < -feasTol:
			if wi < -eps {
				bps = append(bps, phase1Bp{i, v / wi, -wi})
			}
		default:
			if wi > eps {
				if v < 0 {
					v = 0
				}
				bps = append(bps, phase1Bp{i, v / wi, wi})
			}
		}
	}
	return bps
}

func sortBreakpoints(bps []phase1Bp) {
	sort.Slice(bps, func(a, b int) bool { return bps[a].theta < bps[b].theta })
}

// better reports whether candidate row i at ratio theta beats the incumbent:
// strictly smaller ratio wins; near-ties prefer the larger pivot magnitude
// for stability, or the smaller basis column under Bland's rule.
func (e *revEngine) better(i int, theta float64, leave int, best float64, w []float64, bland bool) bool {
	if leave < 0 || theta < best-eps {
		return true
	}
	if theta > best+eps {
		return false
	}
	if bland {
		return e.basis[i] < e.basis[leave]
	}
	return math.Abs(w[i]) > math.Abs(w[leave])
}

// phase2 runs primal simplex on the real objective from the current
// (feasible) basis. Basic artificials are held at zero by the ratio test.
func (e *revEngine) phase2() (Status, bool) {
	total := e.nTotal
	stall := stallFactor * (e.m + total)
	hard := hardFactor * (e.m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		y := e.wsY
		for i, c := range e.basis {
			if c < e.nTotal {
				y[i] = e.obj[c]
			} else {
				y[i] = 0
			}
		}
		e.factor.btran(y)
		enter := e.priceEnter(y, it >= stall, false)
		if enter < 0 {
			return Optimal, true
		}
		w := e.ftranCol(enter)
		leave, theta := e.phase2Ratio(w, it >= stall)
		if leave < 0 {
			return Unbounded, true
		}
		if a := math.Abs(w[leave]); a < pivotTol {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		if !e.applyPivot(enter, leave, theta, w) {
			return 0, false
		}
	}
	return IterationLimit, true
}

// phase2Ratio is the standard primal ratio test, with basic artificials
// blocking at zero (they may pivot out on a degenerate step but never move).
func (e *revEngine) phase2Ratio(w []float64, bland bool) (int, float64) {
	leave, best := -1, 0.0
	for i, c := range e.basis {
		v, wi := e.xB[i], w[i]
		cand, theta := false, 0.0
		if c >= e.nTotal {
			if wi > eps || wi < -eps {
				cand, theta = true, 0
			}
		} else if wi > eps {
			if v < 0 {
				v = 0
			}
			cand, theta = true, v/wi
		}
		if cand && e.better(i, theta, leave, best, w, bland) {
			leave, best = i, theta
		}
	}
	if leave == e.protectRow && leave >= 0 {
		// The polish protects its face row's artificial so the polished
		// basis truncates to an exact original-shape basis; evict any
		// other candidate tied at the same step instead, when one exists.
		alt, altW := -1, 0.0
		for i, c := range e.basis {
			if i == e.protectRow {
				continue
			}
			wi := w[i]
			var ok bool
			if c >= e.nTotal {
				ok = wi > eps || wi < -eps
			} else if wi > eps {
				v := e.xB[i]
				if v < 0 {
					v = 0
				}
				ok = v/wi <= best+eps
			}
			if ok && math.Abs(wi) > altW {
				alt, altW = i, math.Abs(wi)
			}
		}
		if alt >= 0 {
			leave = alt
		}
	}
	return leave, best
}

// bestReducedCost returns the most negative phase-2 reduced cost under the
// current factors (used by the post-optimality verification).
func (e *revEngine) bestReducedCost() float64 {
	y := e.wsY
	for i, c := range e.basis {
		if c < e.nTotal {
			y[i] = e.obj[c]
		} else {
			y[i] = 0
		}
	}
	e.factor.btran(y)
	best := 0.0
	for j := 0; j < e.nTotal; j++ {
		if e.inBasis[j] {
			continue
		}
		if d := e.reducedCost(j, y, false); d < best {
			best = d
		}
	}
	return best
}

// optimize drives the current basis to a verified optimum: restore
// feasibility (composite phase 1) when needed, run phase 2, then refresh the
// factorization and re-verify feasibility and optimality — eta drift can
// make a stale optimum only look optimal. A verification failure loops;
// failure to converge in verifyRounds rounds reports ok=false.
func (e *revEngine) optimize() (Status, bool) {
	for round := 0; round < verifyRounds; round++ {
		if e.maxInfeas() > feasTol {
			st, ok := e.phase1()
			if !ok {
				return 0, false
			}
			if st != Optimal {
				return st, true
			}
		}
		st, ok := e.phase2()
		if !ok {
			return 0, false
		}
		if st != Optimal {
			return st, true
		}
		if e.factor.dirty() {
			if !e.refresh() {
				return 0, false
			}
		}
		if e.maxInfeas() <= feasTol && e.bestReducedCost() >= -eps {
			// A zero-pivot solve from a polished snapshot is sitting on
			// the canonical vertex already (the seed reproduced it and
			// nothing moved), so re-canonicalizing would be pure waste:
			// this is what makes periodic refreshes of an unchanged
			// problem cost zero iterations.
			if e.seedCanonical && e.iterations == 0 {
				e.snapPolished = true
				return Optimal, true
			}
			// Clean zero-valued artificials out of the basis first (their
			// snapshot entries would be -1, which seeding rejects), then
			// canonicalize the vertex: the polish works on a clone with
			// the optimal objective pinned as a row, so the engine's own
			// state stays certified regardless of its outcome.
			if !e.driveOutArtificials() {
				return 0, false
			}
			e.polishVertex()
			return Optimal, true
		}
	}
	return 0, false
}

// sigmaCost is the deterministic pseudo-random secondary objective used by
// polishVertex to pick a canonical vertex of a degenerate optimal face. It
// depends only on the column index, so cold, warm, and remapped solves of
// the same problem minimize the same tie-break and land on the same vertex.
// Slack columns carry no weight: bases differing only in slack arrangement
// report the same x.
func (e *revEngine) sigmaCost(j int) float64 {
	if j >= e.n {
		return 0
	}
	// Full splitmix64 mixing, and 52 bits of it in the mantissa: a weaker
	// hash (one multiply + xorshift) stays *linear* in j in its top bits,
	// making swap circuits with equal index sums near-ties below the
	// pricing tolerance — exactly the degeneracy the polish must break —
	// and truncated bits would re-tie distinct columns outright.
	h := uint64(j) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return 0.5 + float64(h>>12)/float64(1<<53)
}

// polishVertex canonicalizes which optimal vertex the solve reports. The
// simplex walk's endpoint on a degenerate optimal face depends on the seed
// (a cold start and a remapped basis legitimately stop at different, equally
// optimal vertices), which would make warm starts change results, not just
// speed. The face is imposed *explicitly* — a lexicographic second stage:
// clone the engine with one extra row, obj·x = obj*, whose artificial the
// ordinary ratio test already holds at zero, then minimize the fixed
// sigmaCost tie-break with plain phase-2 simplex. Filtering entering
// columns by one basis's reduced costs would NOT work here: under
// degeneracy the set {j : d_j = 0} is basis-dependent, and a walk so
// restricted can stall at a vertex that is not the face optimum, leaving
// the result path-dependent — the explicit row makes the restricted LP's
// unique optimum (generic sigma weights) reachable from every seed. On any
// numerical trouble the current (already optimal) vertex is kept.
func (e *revEngine) polishVertex() {
	objStar := 0.0
	for i, c := range e.basis {
		if c < e.nTotal {
			objStar += e.obj[c] * e.xB[i]
		}
	}
	m2 := e.m + 1
	e2 := &revEngine{p: e.p, m: m2, n: e.n, nTotal: e.nTotal}
	e2.cols = make([][]colEntry, e.nTotal)
	for j := 0; j < e.nTotal; j++ {
		col := e.cols[j]
		if j < e.n && e.obj[j] != 0 {
			ext := make([]colEntry, 0, len(col)+1)
			ext = append(ext, col...)
			ext = append(ext, colEntry{row: e.m, val: e.obj[j]})
			col = ext
		}
		e2.cols[j] = col
	}
	e2.ops = append(append(make([]Op, 0, m2), e.ops...), EQ)
	e2.rhs = append(append(make([]float64, 0, m2), e.rhs...), objStar)
	e2.slackOf = append(append(make([]int, 0, m2), e.slackOf...), -1)
	e2.obj = make([]float64, e.nTotal)
	for j := 0; j < e.n; j++ {
		e2.obj[j] = e.sigmaCost(j)
	}
	e2.basis = append(append(make([]int, 0, m2), e.basis...), e.nTotal+e.m)
	e2.inBasis = append([]bool(nil), e.inBasis...)
	e2.xB = make([]float64, m2)
	e2.wsY = make([]float64, m2)
	e2.wsW = make([]float64, m2)
	e2.wsZ = make([]float64, m2)
	e2.protectRow = e.m
	if !e2.refresh() {
		return
	}
	for round := 0; ; round++ {
		st, ok := e2.phase2()
		if !ok || st != Optimal {
			return
		}
		if e2.factor.dirty() && !e2.refresh() {
			return
		}
		if e2.maxInfeas() <= feasTol && e2.bestReducedCost() >= -eps {
			break
		}
		if round >= verifyRounds {
			return
		}
	}
	// Adopt the canonical vertex.
	e.iterations += e2.iterations
	e.pivots += e2.pivots
	e.polished = true
	if faceArt := e.nTotal + e.m; e2.basis[e.m] != faceArt && math.Abs(e2.xB[e.m]) <= feasTol {
		// Degenerate sigma pivots (dual-feasibility proof steps) evict the
		// face artificial while leaving x untouched; its value — the slack
		// of obj·x = obj* — is still zero, so pivot it straight back. This
		// restores the exact-basis case below, which is what lets the next
		// warm start skip the polish outright.
		w := e2.wsW
		for i := range w {
			w[i] = 0
		}
		w[e.m] = 1
		e2.factor.ftran(w)
		if math.Abs(w[e.m]) > pivotTol {
			if old := e2.basis[e.m]; old < e2.nTotal {
				e2.inBasis[old] = false
			}
			theta := e2.xB[e.m] / w[e.m]
			for i := range e2.xB {
				e2.xB[i] -= theta * w[i]
			}
			e2.xB[e.m] = theta
			e2.basis[e.m] = faceArt
			e2.factor.push(e.m, w)
			e2.pivots++
		}
	}
	if e2.basis[e.m] == e.nTotal+e.m {
		// The face row still hosts its (protected) artificial, so dropping
		// that row leaves an exact basis of the canonical vertex for the
		// original shape. The sigma walk's final basis need not be dual
		// feasible for the *true* objective, so run one more phase-2 pass:
		// at an optimum every improving column is blocked at step zero,
		// meaning the pass only swaps basis columns and never moves x —
		// and it is what lets the next warm start verify this snapshot in
		// zero pivots and skip the polish entirely.
		copy(e.basis, e2.basis[:e.m])
		copy(e.inBasis, e2.inBasis)
		copy(e.xB, e2.xB[:e.m])
		if !e.refresh() {
			return
		}
		if st, ok := e.phase2(); ok && st == Optimal {
			e.snapPolished = true
		}
		return
	}
	// A degenerate step evicted the artificial despite the protection: the
	// truncated basis is best-effort (it may not factorize for the original
	// shape, and the next seed attempt then falls back), but the x vector is
	// taken from the extended basis directly, so the reported allocation is
	// canonical regardless.
	x := make([]float64, e.n)
	for i, c := range e2.basis {
		if c < e.n {
			x[c] = e2.xB[i]
		}
	}
	e.polishedX = x
	copy(e.basis, e2.basis[:e.m])
	copy(e.xB, e2.xB[:e.m])
}

// driveOutArtificials pivots zero-valued basic artificials onto real columns
// where possible (a degenerate pivot), so the snapshot basis stays portable;
// rows whose artificial cannot move host a truly redundant constraint and
// snapshot as -1, exactly like the dense path's dropped rows.
func (e *revEngine) driveOutArtificials() bool {
	for i, c := range e.basis {
		if c < e.nTotal {
			continue
		}
		rho := e.wsY
		for k := range rho {
			rho[k] = 0
		}
		rho[i] = 1
		e.factor.btran(rho)
		enter := -1
		for j := 0; j < e.nTotal && enter < 0; j++ {
			if e.inBasis[j] {
				continue
			}
			var a float64
			for _, en := range e.cols[j] {
				a += rho[en.row] * en.val
			}
			if math.Abs(a) > 1e-7 {
				enter = j
			}
		}
		if enter < 0 {
			continue
		}
		w := e.ftranCol(enter)
		if math.Abs(w[i]) <= pivotTol {
			continue
		}
		if !e.applyPivot(enter, i, 0, w) {
			return false
		}
	}
	return true
}

// finish assembles the Result from an optimal basis.
func (e *revEngine) finish(warm, remapped bool) *Result {
	p := e.p
	x := make([]float64, e.n)
	if e.polishedX != nil {
		copy(x, e.polishedX)
		for j, v := range x {
			if v < 0 && v > -1e-9 {
				x[j] = 0
			}
		}
	} else {
		for i, c := range e.basis {
			if c < e.n {
				v := e.xB[i]
				if v < 0 && v > -1e-9 {
					v = 0
				}
				x[c] = v
			}
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	cols := make([]int, e.m)
	for i, c := range e.basis {
		if c < e.nTotal {
			cols[i] = c
		} else {
			cols[i] = -1 // redundant row, dense-path compatible
		}
	}
	snap := p.snapshotBasis(e.ops, cols)
	snap.polished = e.snapPolished
	return &Result{
		Status: Optimal, X: x, Objective: obj,
		Iterations: e.iterations, Pivots: e.pivots,
		Basis: snap, WarmStarted: warm, Remapped: remapped,
	}
}

// statusResult wraps a non-optimal terminal status.
func (e *revEngine) statusResult(st Status, warm, remapped bool) *Result {
	return &Result{Status: st, Iterations: e.iterations, Pivots: e.pivots, WarmStarted: warm, Remapped: remapped}
}

// solveCold runs the two-phase revised simplex from the slack/artificial
// starting basis. ok=false falls back to the dense path.
func (e *revEngine) solveCold() (*Result, bool) {
	for i := 0; i < e.m; i++ {
		col := e.slackOf[i]
		switch {
		case e.ops[i] == LE:
			// Slack basic at rhs >= 0: feasible.
		case e.ops[i] == GE && e.rhs[i] <= feasTol:
			// Surplus basic at -rhs ~ 0: feasible enough.
		default:
			col = e.nTotal + i // artificial
		}
		e.basis[i] = col
		if col < e.nTotal {
			e.inBasis[col] = true
		}
	}
	if !e.refresh() {
		return nil, false
	}
	st, ok := e.optimize()
	if !ok {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, false, false), true
	}
	return e.finish(false, false), true
}

// solveSeeded runs from a same-shape previous basis (the positional warm
// start). ok=false means the seed was unusable; the caller retries cold.
func (e *revEngine) solveSeeded(prev *Basis) (*Result, bool) {
	for _, c := range prev.cols {
		if c < 0 || c >= e.nTotal {
			return nil, false
		}
	}
	for i, c := range prev.cols {
		e.basis[i] = c
		e.inBasis[c] = true
	}
	e.seedCanonical = prev.polished
	if !e.factorize(false) {
		return nil, false
	}
	copy(e.wsW, e.rhs)
	e.factor.ftran(e.wsW)
	copy(e.xB, e.wsW)
	st, ok := e.optimize()
	if !ok || st == IterationLimit {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, true, false), true
	}
	return e.finish(true, false), true
}

// solveMapped runs from a basis remapped across a shape change: surviving
// slacks and structural columns are pinned to their old host rows, loose
// columns take any free row (the factorization orders pivots itself),
// uncovered rows take their own slack or an artificial, and dependent
// columns are repaired away during factorization. Feasibility lost to the
// churn is restored by the composite phase 1. ok=false retries cold.
func (e *revEngine) solveMapped(mb *MappedBasis) (*Result, bool) {
	rowAt := make(map[string]int, e.m)
	for i, c := range e.p.cons {
		if c.id != "" {
			rowAt[c.id] = i
		}
	}
	for i := range e.basis {
		e.basis[i] = -1
	}
	for _, id := range mb.slackRows {
		i, ok := rowAt[id]
		if !ok || e.basis[i] != -1 {
			continue
		}
		if col := e.slackOf[i]; col >= 0 && !e.inBasis[col] {
			e.basis[i] = col
			e.inBasis[col] = true
		}
	}
	var loose []int
	for k, col := range mb.cands {
		if col < 0 || col >= e.n {
			return nil, false
		}
		if e.inBasis[col] {
			continue
		}
		if i, ok := rowAt[mb.candRows[k]]; ok && e.basis[i] == -1 {
			e.basis[i] = col
			e.inBasis[col] = true
			continue
		}
		loose = append(loose, col)
	}
	free := 0
	place := func(col int) {
		for ; free < e.m; free++ {
			if e.basis[free] == -1 {
				e.basis[free] = col
				if col < e.nTotal {
					e.inBasis[col] = true
				}
				free++
				return
			}
		}
	}
	for _, col := range loose {
		place(col)
	}
	for i := 0; i < e.m; i++ {
		if e.basis[i] != -1 {
			continue
		}
		if col := e.slackOf[i]; col >= 0 && !e.inBasis[col] {
			e.basis[i] = col
			e.inBasis[col] = true
		} else {
			e.basis[i] = e.nTotal + i
		}
	}
	if !e.factorize(true) {
		return nil, false
	}
	copy(e.wsW, e.rhs)
	e.factor.ftran(e.wsW)
	copy(e.xB, e.wsW)
	st, ok := e.optimize()
	if !ok || st == IterationLimit {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, true, true), true
	}
	return e.finish(true, true), true
}

// solveRevised is the revised-engine entry point, mirroring the dense
// dispatch: try the positional seed, then the mapped seed, then cold.
// ok=false sends the whole solve to the dense tableau.
func (p *Problem) solveRevised(prev *Basis, mapped *MappedBasis) (*Result, bool) {
	e, ok := newRevEngine(p)
	if !ok {
		return nil, false
	}
	if prev.compatible(e.n, e.ops) {
		if res, ok := e.solveSeeded(prev); ok {
			return res, true
		}
		e, _ = newRevEngine(p)
	} else if mapped != nil && mapped.numVars == e.n && len(mapped.cands) > 0 {
		if res, ok := e.solveMapped(mapped); ok {
			return res, true
		}
		e, _ = newRevEngine(p)
	}
	return e.solveCold()
}
