package lp

// This file implements the sparse revised simplex engine (lp.Revised), the
// default solve path. The constraint matrix is held in compressed
// sparse-column form built directly from the Problem's Term lists; the basis
// is factorized with a sparse LU (internal/linalg) and updated with
// product-form etas, refactorizing every few dozen pivots; pricing runs over
// sparse reduced costs — Devex reference weights by default, rotating partial
// pricing as the cheap alternative, Bland's rule after a stall or a long
// degenerate streak — and ratio tests work on FTRAN/BTRAN images of sparse
// vectors instead of full tableau rows. Gavel's allocation programs are
// structurally sparse (an allocation column touches exactly two rows), so
// per-iteration cost drops from the dense tableau's O(m·n) to O(nnz + m),
// and memory from O(m·n) to O(nnz).
//
// The engine is a bounded-variable simplex: presolve extracts singleton cap
// rows (x_j <= u_j) into the per-column bound vector p.ub, and the engine
// enforces those bounds without rows. A nonbasic variable then rests at zero
// OR at its upper bound (e.atUpper), every ratio test also blocks where a
// basic value would cross its upper bound, and a step that hits the entering
// column's own opposite bound becomes a bound flip — no pivot, no basis
// change, strict objective progress.
//
// Seeding mirrors the dense paths in spirit: a same-shape Basis is
// factorized directly (SolveFrom), a MappedBasis is re-assembled from its
// row-pinned projection with unit-column repair for dependent columns
// (SolveFromMapped), and lost primal feasibility is restored either by the
// dual simplex (dual.go, when the seed is still dual feasible — the common
// shape-preserving drift case) or by a composite phase 1 that minimizes the
// sum of infeasibilities, so repair work scales with the damage. Any
// numerical trouble — a singular factorization that repair cannot fix, a
// stuck pivot, a verification loop that does not converge — abandons the
// engine and falls back to the dense tableau oracle, so the revised engine
// can change only speed, never correctness.

import (
	"math"
	"sort"

	"gavel/internal/linalg"
)

const (
	// feasTol is the primal feasibility tolerance on basic values.
	feasTol = 1e-7
	// pivotTol is the minimum acceptable pivot magnitude |w[leave]|; a
	// smaller pivot forces a refresh (and, if fresh, a bailout to dense).
	pivotTol = 1e-7
	// verifyRounds bounds the refresh-and-reverify loop at optimality.
	verifyRounds = 6
	// flipLeave is the ratio-test sentinel for "the entering column reaches
	// its own opposite bound before any basic variable blocks": the step is
	// a bound flip, not a pivot.
	flipLeave = -2
)

// colEntry is one nonzero of a CSC column.
type colEntry struct {
	row int
	val float64
}

// revEngine is the per-solve state of the revised simplex engine.
type revEngine struct {
	p      *Problem
	m      int // constraint rows
	n      int // structural variables
	nTotal int // structural + slack columns; >= nTotal means artificial e_i

	cols    [][]colEntry // CSC over the n structural + slack columns
	ops     []Op         // normalized (rhs >= 0) ops, dense-path compatible
	rhs     []float64
	obj     []float64 // minimize-sense structural costs; slacks 0
	slackOf []int     // row -> its slack column, -1 for EQ rows

	basis   []int // basic column per position (position == row slot)
	inBasis []bool
	xB      []float64
	factor  basisFactor

	hasUB   bool
	ub      []float64 // structural upper bounds (+Inf = none); nil without bounds
	atUpper []bool    // structural nonbasic-at-upper flags; nil without bounds

	devex  []float64 // Devex reference weights (nil under partial pricing)
	seeded bool      // solve started from a previous basis (warm or remapped)

	iterations    int
	pivots        int
	dualIters     int // dual-simplex pivots and flips (included in iterations)
	refactors     int // refresh() calls: LU refactorizations after the first
	degenStreak   int // consecutive zero-step pivots; triggers Bland early
	priceStart    int
	polishedX     []float64 // canonical structural values from polishVertex
	polished      bool      // a vertex polish ran; basis factors may be stale
	seedCanonical bool      // the seed basis came from a polished snapshot
	snapPolished  bool      // this solve's snapshot reproduces the canonical vertex
	protectRow    int       // basis position the ratio test avoids evicting (-1 = none)

	arena         *Workspace // shared scratch (nil = allocate plainly)
	wsY, wsW, wsZ []float64  // BTRAN / FTRAN / pivot-row workspaces
}

// newRevEngine normalizes the problem into CSC form. ok=false hands the
// solve to the dense path (degenerate shapes the engine does not model).
// With a Workspace attached to the problem, every per-solve array is carved
// from the arena; the CSC entries go into one slab sized by a counting pass.
func newRevEngine(p *Problem) (*revEngine, bool) {
	n := len(p.obj)
	m := len(p.cons)
	if m == 0 {
		return nil, false
	}
	e := &revEngine{p: p, m: m, n: n, arena: p.ws}
	ws := e.arena

	var scratch []float64
	var rawCnt []int
	if ws != nil {
		e.ops = ws.opsBuf(m)
		e.rhs = ws.floats(wsF64RHS, m)
		e.slackOf = ws.intsBuf(wsIntSlackOf, m)
		scratch = ws.floats(wsF64Scratch, n)
		rawCnt = ws.intsBuf(wsIntColCount, n)
		for j := 0; j < n; j++ {
			scratch[j], rawCnt[j] = 0, 0
		}
	} else {
		e.ops = make([]Op, m)
		e.rhs = make([]float64, m)
		e.slackOf = make([]int, m)
		scratch = make([]float64, n)
		rawCnt = make([]int, n)
	}

	// Counting pass: raw per-column term counts bound the deduplicated CSC
	// sizes, so one slab holds every column.
	rawNNZ, nSlack := 0, 0
	for _, c := range p.cons {
		for _, t := range c.terms {
			rawCnt[t.Var]++
			rawNNZ++
		}
		if c.op != EQ {
			nSlack++
		}
	}
	e.nTotal = n + nSlack
	var slab []colEntry
	if ws != nil {
		e.cols = ws.colHeaders(e.nTotal)
		slab = ws.colEntries(rawNNZ + nSlack)
	} else {
		e.cols = make([][]colEntry, e.nTotal)
		slab = make([]colEntry, 0, rawNNZ+nSlack)
	}
	pos := 0
	for j := 0; j < n; j++ {
		e.cols[j] = slab[pos : pos : pos+rawCnt[j]]
		pos += rawCnt[j]
	}

	var touched []int
	nS := 0
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.terms {
			if scratch[t.Var] == 0 && t.Coeff != 0 {
				touched = append(touched, t.Var)
			}
			scratch[t.Var] += t.Coeff
		}
		b, op, sgn := c.rhs, c.op, 1.0
		if b < 0 {
			b, sgn = -b, -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		for _, v := range touched {
			if val := scratch[v] * sgn; val != 0 {
				e.cols[v] = append(e.cols[v], colEntry{row: i, val: val})
			}
			scratch[v] = 0
		}
		e.ops[i], e.rhs[i] = op, b
		e.slackOf[i] = -1
		switch op {
		case LE:
			e.slackOf[i] = n + nS
			e.cols[n+nS] = append(slab[pos:pos:pos+1], colEntry{row: i, val: 1})
			pos++
			nS++
		case GE:
			e.slackOf[i] = n + nS
			e.cols[n+nS] = append(slab[pos:pos:pos+1], colEntry{row: i, val: -1})
			pos++
			nS++
		}
	}

	if ws != nil {
		e.obj = ws.floats(wsF64Obj, e.nTotal)
		e.basis = ws.intsBuf(wsIntBasis, m)
		e.inBasis = ws.boolsBuf(wsBoolInBasis, e.nTotal)
		e.xB = ws.floats(wsF64XB, m)
		e.wsY = ws.floats(wsF64Y, m)
		e.wsW = ws.floats(wsF64W, m)
		e.wsZ = ws.floats(wsF64Z, m)
		for j := range e.inBasis {
			e.inBasis[j] = false
		}
	} else {
		e.obj = make([]float64, e.nTotal)
		e.basis = make([]int, m)
		e.inBasis = make([]bool, e.nTotal)
		e.xB = make([]float64, m)
		e.wsY = make([]float64, m)
		e.wsW = make([]float64, m)
		e.wsZ = make([]float64, m)
	}
	for j := n; j < e.nTotal; j++ {
		e.obj[j] = 0
	}
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			e.obj[j] = -p.obj[j]
		} else {
			e.obj[j] = p.obj[j]
		}
	}
	if p.ub != nil {
		e.hasUB = true
		if ws != nil {
			e.ub = ws.floats(wsF64UB, n)
			e.atUpper = ws.boolsBuf(wsBoolAtUpper, n)
			for j := 0; j < n; j++ {
				e.atUpper[j] = false
			}
		} else {
			e.ub = make([]float64, n)
			e.atUpper = make([]bool, n)
		}
		copy(e.ub, p.ub)
	}
	if p.resolvePricing() == PricingDevex {
		if ws != nil {
			e.devex = ws.floats(wsF64Devex, e.nTotal)
		} else {
			e.devex = make([]float64, e.nTotal)
		}
		e.devexInit()
	}
	e.protectRow = -1
	return e, true
}

// nbAtUpper reports whether nonbasic column j currently rests at its upper
// bound. Only structural columns with finite bounds ever do.
func (e *revEngine) nbAtUpper(j int) bool {
	return e.hasUB && j < e.n && e.atUpper[j]
}

// colUB returns column j's upper bound (+Inf for slacks, artificials, and
// unbounded structurals).
func (e *revEngine) colUB(j int) float64 {
	if e.hasUB && j < e.n {
		return e.ub[j]
	}
	return math.Inf(1)
}

// factorize rebuilds the LU from the current basis. With repair=true,
// columns the factorization finds linearly dependent are replaced by
// artificials on still-free rows until it succeeds (each replacement is a
// unit column, so the loop terminates); with repair=false a singular basis
// reports false.
func (e *revEngine) factorize(repair bool) bool {
	for attempt := 0; attempt <= e.m; attempt++ {
		nnz := 0
		for _, c := range e.basis {
			if c >= e.nTotal {
				nnz++
			} else {
				nnz += len(e.cols[c])
			}
		}
		var cols []linalg.SparseCol
		var rows []int
		var vals []float64
		var sc *linalg.Scratch
		if e.arena != nil {
			cols, rows, vals = e.arena.sparseCols(e.m, nnz)
			sc = &e.arena.lin
		} else {
			cols = make([]linalg.SparseCol, e.m)
			rows = make([]int, nnz)
			vals = make([]float64, nnz)
		}
		pos := 0
		for i, c := range e.basis {
			start := pos
			if c >= e.nTotal {
				rows[pos], vals[pos] = c-e.nTotal, 1
				pos++
			} else {
				for _, en := range e.cols[c] {
					rows[pos], vals[pos] = en.row, en.val
					pos++
				}
			}
			cols[i] = linalg.SparseCol{Rows: rows[start:pos], Vals: vals[start:pos]}
		}
		lu, err := linalg.FactorizeSparseInto(e.m, cols, sc)
		if err == nil {
			if sc != nil && e.factor.lu != nil {
				sc.Recycle(e.factor.lu)
			}
			e.factor.reset(lu)
			return true
		}
		se, ok := err.(*linalg.SingularError)
		if !ok || !repair || len(se.FreeRows) == 0 {
			return false
		}
		if old := e.basis[se.Col]; old < e.nTotal {
			e.inBasis[old] = false
		}
		e.basis[se.Col] = e.nTotal + se.FreeRows[0]
	}
	return false
}

// computeXB recomputes the basic values from scratch under the current
// factors and nonbasic bound assignment: xB = B⁻¹(b − Σ_{j at upper} u_j a_j).
func (e *revEngine) computeXB() {
	w := e.wsW
	copy(w, e.rhs)
	if e.hasUB {
		for j := 0; j < e.n; j++ {
			if e.atUpper[j] && !e.inBasis[j] {
				u := e.ub[j]
				if u == 0 {
					continue
				}
				for _, en := range e.cols[j] {
					w[en.row] -= u * en.val
				}
			}
		}
	}
	e.factor.ftran(w)
	copy(e.xB, w)
}

// refresh refactorizes the current basis and recomputes the basic values
// from scratch, clearing accumulated eta drift.
func (e *revEngine) refresh() bool {
	if !e.factorize(false) {
		return false
	}
	e.refactors++
	e.computeXB()
	return true
}

// ftranCol computes w = B⁻¹ a_j into wsW (position-indexed).
func (e *revEngine) ftranCol(j int) []float64 {
	w := e.wsW
	for i := range w {
		w[i] = 0
	}
	for _, en := range e.cols[j] {
		w[en.row] = en.val
	}
	e.factor.ftran(w)
	return w
}

// reducedCost returns d_j = c_j - y·a_j for a nonbasic column; phase-1
// structural costs are zero.
func (e *revEngine) reducedCost(j int, y []float64, phase1 bool) float64 {
	var d float64
	if !phase1 {
		d = e.obj[j]
	}
	for _, en := range e.cols[j] {
		d -= y[en.row] * en.val
	}
	return d
}

// effCost is the reduced cost in the column's movement direction: a column
// at its lower bound improves by increasing (d_j < 0 eligible), one at its
// upper bound by decreasing (d_j > 0 eligible, so the effective cost is
// -d_j). Eligibility is uniformly effCost < -eps.
func (e *revEngine) effCost(j int, y []float64, phase1 bool) float64 {
	d := e.reducedCost(j, y, phase1)
	if e.nbAtUpper(j) {
		return -d
	}
	return d
}

// priceEnter picks the entering column. Under Devex (the default) every
// nonbasic column is scored d_j²/γ_j against the reference weights; under
// partial pricing the Dantzig rule runs inside a rotating window; Bland's
// rule (first eligible in fixed order, required for anti-cycling) takes over
// after the stall threshold or a long degenerate streak.
func (e *revEngine) priceEnter(y []float64, bland, phase1 bool) int {
	total := e.nTotal
	if bland {
		for j := 0; j < total; j++ {
			if !e.inBasis[j] && e.effCost(j, y, phase1) < -eps {
				return j
			}
		}
		return -1
	}
	if e.devex != nil {
		best, bestJ := 0.0, -1
		for j := 0; j < total; j++ {
			if e.inBasis[j] {
				continue
			}
			d := e.effCost(j, y, phase1)
			if d >= -eps {
				continue
			}
			if score := d * d / e.devex[j]; score > best {
				best, bestJ = score, j
			}
		}
		return bestJ
	}
	seg := total / 8
	if seg < 64 {
		seg = 64
	}
	best, bestJ := -eps, -1
	scanned := 0
	for scanned < total {
		stop := scanned + seg
		if stop > total {
			stop = total
		}
		for ; scanned < stop; scanned++ {
			j := e.priceStart + scanned
			if j >= total {
				j -= total
			}
			if e.inBasis[j] {
				continue
			}
			if d := e.effCost(j, y, phase1); d < best {
				best, bestJ = d, j
			}
		}
		if bestJ >= 0 {
			break
		}
	}
	if bestJ >= 0 {
		e.priceStart += scanned
		if e.priceStart >= total {
			e.priceStart -= total
		}
	}
	return bestJ
}

// boundFlip moves the entering column across to its opposite bound without a
// pivot: the basic values shift by the full bound range along the entering
// direction and the nonbasic state toggles. The objective strictly improves
// (|d|·u > 0), so flips can never cycle.
func (e *revEngine) boundFlip(enter int, s float64, w []float64) {
	delta := s * e.ub[enter]
	for i := range e.xB {
		e.xB[i] -= delta * w[i]
	}
	e.atUpper[enter] = !e.atUpper[enter]
	e.iterations++
	e.degenStreak = 0
}

// applyPivot is the bounds-oblivious pivot used where the entering column is
// known to move from zero and the leaving one lands at zero (artificial
// drive-out): step and value coincide.
func (e *revEngine) applyPivot(enter, leave int, theta float64, w []float64) bool {
	return e.applyPivotB(enter, leave, theta, theta, w, false)
}

// applyPivotB replaces basis position leave with column enter. delta is the
// entering column's signed displacement from its current bound (negative when
// it descends from its upper bound), enterVal its resulting value, and
// leaveToUpper tells which bound the leaving variable lands on. Devex weights
// absorb the pivot before the factors do, the eta is recorded, and the
// degenerate-streak counter feeds the early-Bland anti-cycling switch.
func (e *revEngine) applyPivotB(enter, leave int, delta, enterVal float64, w []float64, leaveToUpper bool) bool {
	e.devexUpdate(enter, leave, w)
	if delta != 0 {
		for i := range e.xB {
			e.xB[i] -= delta * w[i]
		}
	}
	e.xB[leave] = enterVal
	if old := e.basis[leave]; old < e.nTotal {
		e.inBasis[old] = false
		if e.hasUB && old < e.n {
			e.atUpper[old] = leaveToUpper
		}
	}
	e.basis[leave] = enter
	e.inBasis[enter] = true
	if e.hasUB && enter < e.n {
		e.atUpper[enter] = false
	}
	e.factor.push(leave, w)
	e.iterations++
	e.pivots++
	if delta > 1e-12 || delta < -1e-12 {
		e.degenStreak = 0
	} else {
		e.degenStreak++
	}
	if e.factor.needRefresh(e.m) {
		return e.refresh()
	}
	return true
}

// degenCap is the degenerate-streak length that switches pricing to Bland's
// rule even before the stall threshold: a streak this long is the signature
// of a cycling (or near-cycling) degenerate vertex.
func (e *revEngine) degenCap() int {
	return 500 + (e.m+e.nTotal)/2
}

// maxInfeas returns the largest primal infeasibility: negative basic values,
// basic values above their upper bound, plus any artificial's distance from
// zero.
func (e *revEngine) maxInfeas() float64 {
	worst := 0.0
	for i, c := range e.basis {
		v := e.xB[i]
		if c >= e.nTotal {
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
			continue
		}
		if -v > worst {
			worst = -v
		}
		if e.hasUB && c < e.n {
			if over := v - e.ub[c]; over > worst {
				worst = over
			}
		}
	}
	return worst
}

// dualRepairSlots is the largest number of violated basic slots for which a
// seeded solve tries the dual simplex even without dual feasibility.
const dualRepairSlots = 8

// dualRepairable reports whether the current seed's primal violations have
// the shape the dual simplex fixes well even from a dual-infeasible basis: a
// nonbasic column parked at its upper bound (the only way a mapped seed can
// overfill a row), and at most dualRepairSlots violated positions, every one
// a bound overshoot (a basic value below zero or above its upper bound). In
// that shape the repair is eviction-led — move each overshot basic to its
// bound — and the dual ratio test finds the compensating column (typically a
// slack freeing a mis-pinned variable) in one pivot per violation. An
// artificial sitting above zero means a row is missing structural mass
// instead; the entering column for that repair should be chosen by reduced
// cost (primal pricing), which a meaningless dual ratio test cannot do.
// Returns the violated-slot count when repairable, 0 otherwise.
func (e *revEngine) dualRepairable() int {
	if !e.hasUB {
		return 0
	}
	parked := false
	for j := 0; j < e.n && !parked; j++ {
		parked = e.atUpper[j] && !e.inBasis[j]
	}
	if !parked {
		return 0
	}
	bad := 0
	for i, c := range e.basis {
		v := e.xB[i]
		switch {
		case c >= e.nTotal && v > feasTol:
			return 0
		case v < -feasTol:
			bad++
		case c < e.n && e.hasUB && !math.IsInf(e.ub[c], 1) && v > e.ub[c]+feasTol:
			bad++
		}
	}
	if bad > dualRepairSlots {
		return 0
	}
	return bad
}

// phase1 runs the composite phase 1: minimize the sum of infeasibilities
// (negative real basic values, values above their upper bounds, nonzero
// artificials) from the current basis. The cost vector is rebuilt every
// iteration from the infeasible set, and the ratio test blocks at every sign
// change so the piecewise-linear objective stays consistent. Returns Optimal
// once feasible, Infeasible when no improving column remains, IterationLimit
// at the cap; ok=false means numerical trouble (caller falls back).
func (e *revEngine) phase1() (Status, bool) {
	total := e.nTotal
	stall := stallFactor * (e.m + total)
	hard := hardFactor * (e.m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		y := e.wsY
		any := false
		for i, c := range e.basis {
			v := e.xB[i]
			switch {
			case c >= e.nTotal && v > feasTol:
				y[i], any = 1, true
			case v < -feasTol:
				y[i], any = -1, true
			case c < e.n && e.hasUB && v > e.ub[c]+feasTol:
				y[i], any = 1, true
			default:
				y[i] = 0
			}
		}
		if !any {
			return Optimal, true
		}
		e.factor.btran(y)
		bland := it >= stall || e.degenStreak >= e.degenCap()
		enter := e.priceEnter(y, bland, true)
		if enter < 0 {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return Infeasible, true
		}
		dEnter := e.effCost(enter, y, true)
		s := 1.0
		if e.nbAtUpper(enter) {
			s = -1
		}
		w := e.ftranCol(enter)
		leave, theta, toUpper := e.phase1Ratio(w, s, dEnter, e.colUB(enter), bland)
		if leave == flipLeave {
			e.boundFlip(enter, s, w)
			continue
		}
		if leave < 0 {
			// A convex objective bounded below always has a breakpoint;
			// reaching here means the numerics went bad.
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		if a := math.Abs(w[leave]); a < pivotTol {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		base := 0.0
		if e.nbAtUpper(enter) {
			base = e.ub[enter]
		}
		delta := s * theta
		if !e.applyPivotB(enter, leave, delta, base+delta, w, toUpper) {
			return 0, false
		}
	}
	return IterationLimit, true
}

// phase1Bp is one breakpoint of the piecewise-linear phase-1 objective
// along the entering direction: basis position i crosses a bound at step
// theta, increasing the directional derivative by delta; up marks an
// upper-bound crossing (the leaving variable lands at its upper bound).
type phase1Bp struct {
	i     int
	theta float64
	delta float64
	up    bool
}

// phase1Ratio runs the long-step (piecewise-linear) ratio test of the
// composite phase 1: starting from the entering column's effective reduced
// cost dEnter (the initial directional derivative, negative), it walks the
// breakpoints — infeasible basic values reaching their violated bound,
// feasible ones going negative or crossing their upper bound, artificials
// crossing or leaving zero — in step order, accumulating each crossing's
// slope contribution, and pivots at the breakpoint where the derivative
// turns nonnegative. Passing breakpoints instead of blocking at the first
// one is what makes repairing a heavily churned seed cost a handful of
// pivots rather than one per violated row. A step that would pass the
// entering column's own bound range uEnter becomes a bound flip (flipLeave).
// Under Bland's rule it degrades to the blocking short step for
// anti-cycling.
func (e *revEngine) phase1Ratio(w []float64, s, dEnter, uEnter float64, bland bool) (int, float64, bool) {
	bps := e.phase1Breakpoints(w, s)
	if len(bps) == 0 {
		if !math.IsInf(uEnter, 1) {
			return flipLeave, uEnter, false
		}
		return -1, 0, false
	}
	if bland {
		best := -1
		for k, b := range bps {
			if best < 0 || b.theta < bps[best].theta-eps ||
				(b.theta < bps[best].theta+eps && e.basis[b.i] < e.basis[bps[best].i]) {
				best = k
			}
		}
		if !math.IsInf(uEnter, 1) && bps[best].theta > uEnter+eps {
			return flipLeave, uEnter, false
		}
		return bps[best].i, bps[best].theta, bps[best].up
	}
	sortBreakpoints(bps)
	sl := dEnter
	stop := len(bps) - 1
	for k, b := range bps {
		sl += b.delta
		if sl >= -1e-12 {
			stop = k
			break
		}
	}
	// Among breakpoints at (numerically) the same step, pivot on the
	// largest-magnitude entry for stability.
	best := bps[stop]
	for _, b := range bps {
		if math.Abs(b.theta-best.theta) <= eps && math.Abs(w[b.i]) > math.Abs(w[best.i]) {
			best = b
		}
	}
	if !math.IsInf(uEnter, 1) && best.theta > uEnter+eps {
		return flipLeave, uEnter, false
	}
	return best.i, best.theta, best.up
}

// phase1Breakpoints collects the bound crossings of the basic values along
// the entering direction (xB[i](t) = xB[i] - t·r_i with r_i = s·w[i]), with
// each crossing's slope increase. An infeasible value contributes two
// breakpoints when the direction carries it across the whole feasible band
// and out the other side.
func (e *revEngine) phase1Breakpoints(w []float64, s float64) []phase1Bp {
	var bps []phase1Bp
	for i, c := range e.basis {
		v, r := e.xB[i], s*w[i]
		if c >= e.nTotal {
			switch {
			case v > feasTol:
				if r > eps {
					bps = append(bps, phase1Bp{i, v / r, 2 * r, false})
				}
			case v < -feasTol:
				if r < -eps {
					bps = append(bps, phase1Bp{i, v / r, -2 * r, false})
				}
			default:
				if r > eps {
					bps = append(bps, phase1Bp{i, 0, r, false})
				} else if r < -eps {
					bps = append(bps, phase1Bp{i, 0, -r, false})
				}
			}
			continue
		}
		u := e.colUB(c)
		switch {
		case v < -feasTol:
			if r < -eps {
				bps = append(bps, phase1Bp{i, v / r, -r, false})
				if !math.IsInf(u, 1) {
					bps = append(bps, phase1Bp{i, (v - u) / r, -r, true})
				}
			}
		case !math.IsInf(u, 1) && v > u+feasTol:
			if r > eps {
				bps = append(bps, phase1Bp{i, (v - u) / r, r, true})
				bps = append(bps, phase1Bp{i, v / r, r, false})
			}
		default:
			if r > eps {
				vv := v
				if vv < 0 {
					vv = 0
				}
				bps = append(bps, phase1Bp{i, vv / r, r, false})
			} else if r < -eps && !math.IsInf(u, 1) {
				room := u - v
				if room < 0 {
					room = 0
				}
				bps = append(bps, phase1Bp{i, room / (-r), -r, true})
			}
		}
	}
	return bps
}

func sortBreakpoints(bps []phase1Bp) {
	sort.Slice(bps, func(a, b int) bool { return bps[a].theta < bps[b].theta })
}

// better reports whether candidate row i at ratio theta beats the incumbent:
// strictly smaller ratio wins; near-ties prefer the larger pivot magnitude
// for stability, or the smaller basis column under Bland's rule.
func (e *revEngine) better(i int, theta float64, leave int, best float64, w []float64, bland bool) bool {
	if leave < 0 || theta < best-eps {
		return true
	}
	if theta > best+eps {
		return false
	}
	if bland {
		return e.basis[i] < e.basis[leave]
	}
	return math.Abs(w[i]) > math.Abs(w[leave])
}

// phase2 runs primal simplex on the real objective from the current
// (feasible) basis. Basic artificials are held at zero by the ratio test;
// basic values block at both their bounds, and a step blocked first by the
// entering column's own bound becomes a flip.
func (e *revEngine) phase2() (Status, bool) {
	total := e.nTotal
	stall := stallFactor * (e.m + total)
	hard := hardFactor * (e.m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		y := e.wsY
		for i, c := range e.basis {
			if c < e.nTotal {
				y[i] = e.obj[c]
			} else {
				y[i] = 0
			}
		}
		e.factor.btran(y)
		bland := it >= stall || e.degenStreak >= e.degenCap()
		enter := e.priceEnter(y, bland, false)
		if enter < 0 {
			return Optimal, true
		}
		s := 1.0
		if e.nbAtUpper(enter) {
			s = -1
		}
		w := e.ftranCol(enter)
		leave, theta, toUpper := e.phase2Ratio(w, s, e.colUB(enter), bland)
		if leave == flipLeave {
			e.boundFlip(enter, s, w)
			continue
		}
		if leave < 0 {
			return Unbounded, true
		}
		if a := math.Abs(w[leave]); a < pivotTol {
			if e.factor.dirty() {
				if !e.refresh() {
					return 0, false
				}
				continue
			}
			return 0, false
		}
		base := 0.0
		if e.nbAtUpper(enter) {
			base = e.ub[enter]
		}
		delta := s * theta
		if !e.applyPivotB(enter, leave, delta, base+delta, w, toUpper) {
			return 0, false
		}
	}
	return IterationLimit, true
}

// phase2Ratio is the primal ratio test with bounds: basic artificials block
// at zero (they may pivot out on a degenerate step but never move), real
// basic values block where they would go negative or cross their upper
// bound, and the entering column's own bound range uEnter caps the step
// (flipLeave when it binds first).
func (e *revEngine) phase2Ratio(w []float64, s, uEnter float64, bland bool) (int, float64, bool) {
	leave, best := -1, 0.0
	var toUpper bool
	for i, c := range e.basis {
		v, r := e.xB[i], s*w[i]
		cand, theta, up := false, 0.0, false
		if c >= e.nTotal {
			if r > eps || r < -eps {
				cand, theta = true, 0
			}
		} else if r > eps {
			if v < 0 {
				v = 0
			}
			cand, theta = true, v/r
		} else if r < -eps {
			if u := e.colUB(c); !math.IsInf(u, 1) {
				room := u - v
				if room < 0 {
					room = 0
				}
				cand, theta, up = true, room/(-r), true
			}
		}
		if cand && e.better(i, theta, leave, best, w, bland) {
			leave, best, toUpper = i, theta, up
		}
	}
	if !math.IsInf(uEnter, 1) && (leave < 0 || uEnter < best-eps) {
		return flipLeave, uEnter, false
	}
	if leave == e.protectRow && leave >= 0 {
		// The polish protects its face row's artificial so the polished
		// basis truncates to an exact original-shape basis; evict any
		// other candidate tied at the same step instead, when one exists.
		alt, altW := -1, 0.0
		for i, c := range e.basis {
			if i == e.protectRow {
				continue
			}
			r := s * w[i]
			var ok bool
			if c >= e.nTotal {
				ok = r > eps || r < -eps
			} else if r > eps {
				v := e.xB[i]
				if v < 0 {
					v = 0
				}
				ok = v/r <= best+eps
			} else if r < -eps {
				if u := e.colUB(c); !math.IsInf(u, 1) {
					room := u - e.xB[i]
					if room < 0 {
						room = 0
					}
					ok = room/(-r) <= best+eps
				}
			}
			if ok && math.Abs(w[i]) > altW {
				alt, altW = i, math.Abs(w[i])
			}
		}
		if alt >= 0 {
			leave = alt
			c := e.basis[alt]
			toUpper = c < e.nTotal && s*w[alt] < -eps
		}
	}
	return leave, best, toUpper
}

// bestReducedCost returns the most negative phase-2 effective reduced cost
// under the current factors (used by the post-optimality verification).
func (e *revEngine) bestReducedCost() float64 {
	y := e.wsY
	for i, c := range e.basis {
		if c < e.nTotal {
			y[i] = e.obj[c]
		} else {
			y[i] = 0
		}
	}
	e.factor.btran(y)
	best := 0.0
	for j := 0; j < e.nTotal; j++ {
		if e.inBasis[j] {
			continue
		}
		if d := e.effCost(j, y, false); d < best {
			best = d
		}
	}
	return best
}

// optimize drives the current basis to a verified optimum: restore
// feasibility when needed — a seeded basis that kept dual feasibility is
// repaired by the dual simplex, anything else by the composite phase 1 —
// then run phase 2, refresh the factorization and re-verify feasibility and
// optimality (eta drift can make a stale optimum only look optimal). A
// verification failure loops; failure to converge in verifyRounds rounds
// reports ok=false.
func (e *revEngine) optimize() (Status, bool) {
	for round := 0; round < verifyRounds; round++ {
		if e.maxInfeas() > feasTol {
			repaired := false
			// The dual simplex is the preferred repair for seeded starts. With
			// a dual-feasible basis it is the textbook move; with only a
			// handful of violated basic slots it is attempted anyway — a
			// churned remap often needs exactly one eviction (e.g. the
			// homogenizing variable of a fractional objective pinned to the
			// wrong row), which the dual finds directly while the composite
			// phase 1's greedy pricing can wander across hundreds of columns.
			// Success is always followed by phase 2, so a dual-infeasible
			// start costs nothing in correctness, and the stall guard bounds
			// the damage when the repair goes nowhere.
			if round == 0 && e.seeded && e.p.resolveDual() == DualOn {
				budget := 0
				attempt := e.dualFeasible()
				if !attempt {
					if bad := e.dualRepairable(); bad > 0 {
						attempt, budget = true, 4*bad+8
					}
				}
				if attempt {
					repaired = e.dualSimplex(budget)
				}
				if repaired && e.factor.dirty() {
					if !e.refresh() {
						return 0, false
					}
					repaired = e.maxInfeas() <= feasTol
				}
			}
			if !repaired && e.maxInfeas() > feasTol {
				st, ok := e.phase1()
				if !ok {
					return 0, false
				}
				if st != Optimal {
					return st, true
				}
			}
		}
		st, ok := e.phase2()
		if !ok {
			return 0, false
		}
		if st != Optimal {
			return st, true
		}
		if e.factor.dirty() {
			if !e.refresh() {
				return 0, false
			}
		}
		if e.maxInfeas() <= feasTol && e.bestReducedCost() >= -eps {
			// A zero-pivot solve from a polished snapshot is sitting on
			// the canonical vertex already (the seed reproduced it and
			// nothing moved), so re-canonicalizing would be pure waste:
			// this is what makes periodic refreshes of an unchanged
			// problem cost zero iterations.
			if e.seedCanonical && e.iterations == 0 {
				e.snapPolished = true
				return Optimal, true
			}
			// Clean zero-valued artificials out of the basis first (their
			// snapshot entries would be -1, which seeding rejects), then
			// canonicalize the vertex: the polish works on a clone with
			// the optimal objective pinned as a row, so the engine's own
			// state stays certified regardless of its outcome.
			if !e.driveOutArtificials() {
				return 0, false
			}
			e.polishVertex()
			return Optimal, true
		}
	}
	return 0, false
}

// sigmaCost is the deterministic pseudo-random secondary objective used by
// polishVertex to pick a canonical vertex of a degenerate optimal face. It
// depends only on the column index, so cold, warm, and remapped solves of
// the same problem minimize the same tie-break and land on the same vertex.
// Slack columns carry no weight: bases differing only in slack arrangement
// report the same x.
func (e *revEngine) sigmaCost(j int) float64 {
	if j >= e.n {
		return 0
	}
	// Full splitmix64 mixing, and 52 bits of it in the mantissa: a weaker
	// hash (one multiply + xorshift) stays *linear* in j in its top bits,
	// making swap circuits with equal index sums near-ties below the
	// pricing tolerance — exactly the degeneracy the polish must break —
	// and truncated bits would re-tie distinct columns outright.
	h := uint64(j) + 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return 0.5 + float64(h>>12)/float64(1<<53)
}

// polishVertex canonicalizes which optimal vertex the solve reports. The
// simplex walk's endpoint on a degenerate optimal face depends on the seed
// (a cold start and a remapped basis legitimately stop at different, equally
// optimal vertices), which would make warm starts change results, not just
// speed. The face is imposed *explicitly* — a lexicographic second stage:
// clone the engine with one extra row, obj·x = obj*, whose artificial the
// ordinary ratio test already holds at zero, then minimize the fixed
// sigmaCost tie-break with plain phase-2 simplex. Filtering entering
// columns by one basis's reduced costs would NOT work here: under
// degeneracy the set {j : d_j = 0} is basis-dependent, and a walk so
// restricted can stall at a vertex that is not the face optimum, leaving
// the result path-dependent — the explicit row makes the restricted LP's
// unique optimum (generic sigma weights) reachable from every seed. The
// clone inherits the upper bounds and the nonbasic-at-upper state (a vertex
// of the bounded polytope is a basis plus a bound assignment, and sigma's
// positive weights pull flippable columns to their canonical bound). On any
// numerical trouble the current (already optimal) vertex is kept.
func (e *revEngine) polishVertex() {
	objStar := 0.0
	for i, c := range e.basis {
		if c < e.nTotal {
			objStar += e.obj[c] * e.xB[i]
		}
	}
	if e.hasUB {
		for j := 0; j < e.n; j++ {
			if e.atUpper[j] && !e.inBasis[j] {
				objStar += e.obj[j] * e.ub[j]
			}
		}
	}
	m2 := e.m + 1
	e2 := &revEngine{p: e.p, m: m2, n: e.n, nTotal: e.nTotal, arena: e.arena}
	e2.cols = make([][]colEntry, e.nTotal)
	for j := 0; j < e.nTotal; j++ {
		col := e.cols[j]
		if j < e.n && e.obj[j] != 0 {
			ext := make([]colEntry, 0, len(col)+1)
			ext = append(ext, col...)
			ext = append(ext, colEntry{row: e.m, val: e.obj[j]})
			col = ext
		}
		e2.cols[j] = col
	}
	e2.ops = append(append(make([]Op, 0, m2), e.ops...), EQ)
	e2.rhs = append(append(make([]float64, 0, m2), e.rhs...), objStar)
	e2.slackOf = append(append(make([]int, 0, m2), e.slackOf...), -1)
	e2.obj = make([]float64, e.nTotal)
	for j := 0; j < e.n; j++ {
		e2.obj[j] = e.sigmaCost(j)
	}
	e2.basis = append(append(make([]int, 0, m2), e.basis...), e.nTotal+e.m)
	e2.inBasis = append([]bool(nil), e.inBasis...)
	e2.xB = make([]float64, m2)
	e2.wsY = make([]float64, m2)
	e2.wsW = make([]float64, m2)
	e2.wsZ = make([]float64, m2)
	e2.hasUB = e.hasUB
	e2.ub = e.ub
	if e.hasUB {
		e2.atUpper = append([]bool(nil), e.atUpper...)
	}
	e2.protectRow = e.m
	if !e2.refresh() {
		return
	}
	for round := 0; ; round++ {
		st, ok := e2.phase2()
		if !ok || st != Optimal {
			return
		}
		if e2.factor.dirty() && !e2.refresh() {
			return
		}
		if e2.maxInfeas() <= feasTol && e2.bestReducedCost() >= -eps {
			break
		}
		if round >= verifyRounds {
			return
		}
	}
	// Adopt the canonical vertex.
	e.iterations += e2.iterations
	e.pivots += e2.pivots
	e.polished = true
	if faceArt := e.nTotal + e.m; e2.basis[e.m] != faceArt {
		// Degenerate sigma pivots (dual-feasibility proof steps) evict the
		// face artificial while leaving x untouched; its value — the slack
		// of obj·x = obj* — is still zero, so pivot it straight back. The
		// incumbent in the face slot need not be at zero (a bound-flipping
		// entry can park a column there at its upper bound), so scan every
		// slot whose incumbent rests at a bound: pivoting the artificial
		// onto any such slot k with w[k] != 0 keeps the basis invertible and
		// leaves x untouched, and a swap then moves it into the face slot.
		// This restores the exact-basis case below, which is what lets the
		// next warm start skip the polish outright.
		w := e2.wsW
		for i := range w {
			w[i] = 0
		}
		w[e.m] = 1
		e2.factor.ftran(w)
		k, kw, kUpper := -1, pivotTol, false
		for i, c := range e2.basis {
			aw := math.Abs(w[i])
			if aw <= kw {
				continue
			}
			switch {
			case math.Abs(e2.xB[i]) <= feasTol:
				k, kw, kUpper = i, aw, false
			case e2.hasUB && c < e2.n && !math.IsInf(e2.ub[c], 1) &&
				math.Abs(e2.ub[c]-e2.xB[i]) <= feasTol:
				k, kw, kUpper = i, aw, true
			}
		}
		if k >= 0 {
			old := e2.basis[k]
			target := 0.0
			if old < e2.nTotal {
				e2.inBasis[old] = false
				if kUpper {
					e2.atUpper[old] = true
					target = e2.ub[old]
				}
			}
			theta := (e2.xB[k] - target) / w[k]
			for i := range e2.xB {
				e2.xB[i] -= theta * w[i]
			}
			e2.xB[k] = theta
			e2.basis[k] = faceArt
			e2.pivots++
			if k != e.m {
				e2.basis[k], e2.basis[e.m] = e2.basis[e.m], e2.basis[k]
				e2.xB[k], e2.xB[e.m] = e2.xB[e.m], e2.xB[k]
			}
			// e2's factorization is stale after the swap; the adoption path
			// below refactorizes e from scratch before trusting anything.
		}
	}
	if e2.basis[e.m] == e.nTotal+e.m {
		// The face row still hosts its (protected) artificial, so dropping
		// that row leaves an exact basis of the canonical vertex for the
		// original shape. The sigma walk's final basis need not be dual
		// feasible for the *true* objective, so run one more phase-2 pass:
		// at an optimum every improving column is blocked at step zero,
		// meaning the pass only swaps basis columns and never moves x —
		// and it is what lets the next warm start verify this snapshot in
		// zero pivots and skip the polish entirely.
		copy(e.basis, e2.basis[:e.m])
		copy(e.inBasis, e2.inBasis)
		copy(e.xB, e2.xB[:e.m])
		if e.hasUB {
			copy(e.atUpper, e2.atUpper)
		}
		if !e.refresh() {
			return
		}
		if st, ok := e.phase2(); ok && st == Optimal {
			e.snapPolished = true
		}
		return
	}
	// A degenerate step evicted the artificial despite the protection: the
	// truncated basis is best-effort (it may not factorize for the original
	// shape, and the next seed attempt then falls back), but the x vector is
	// taken from the extended basis directly, so the reported allocation is
	// canonical regardless.
	x := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		if e2.nbAtUpper(j) {
			x[j] = e2.ub[j]
		}
	}
	for i, c := range e2.basis {
		if c < e.n {
			x[c] = e2.xB[i]
		}
	}
	e.polishedX = x
	copy(e.basis, e2.basis[:e.m])
	copy(e.inBasis, e2.inBasis)
	copy(e.xB, e2.xB[:e.m])
	if e.hasUB {
		copy(e.atUpper, e2.atUpper)
	}
}

// driveOutArtificials pivots zero-valued basic artificials onto real columns
// where possible (a degenerate pivot), so the snapshot basis stays portable;
// rows whose artificial cannot move host a truly redundant constraint and
// snapshot as -1, exactly like the dense path's dropped rows. Columns
// resting at their upper bound are not candidates: a zero-step entry would
// teleport them to zero.
func (e *revEngine) driveOutArtificials() bool {
	for i, c := range e.basis {
		if c < e.nTotal {
			continue
		}
		rho := e.wsY
		for k := range rho {
			rho[k] = 0
		}
		rho[i] = 1
		e.factor.btran(rho)
		enter := -1
		for j := 0; j < e.nTotal && enter < 0; j++ {
			if e.inBasis[j] || e.nbAtUpper(j) {
				continue
			}
			var a float64
			for _, en := range e.cols[j] {
				a += rho[en.row] * en.val
			}
			if math.Abs(a) > 1e-7 {
				enter = j
			}
		}
		if enter < 0 {
			continue
		}
		w := e.ftranCol(enter)
		if math.Abs(w[i]) <= pivotTol {
			continue
		}
		if !e.applyPivot(enter, i, 0, w) {
			return false
		}
	}
	return true
}

// finish assembles the Result from an optimal basis.
func (e *revEngine) finish(warm, remapped bool) *Result {
	p := e.p
	x := make([]float64, e.n)
	if e.polishedX != nil {
		copy(x, e.polishedX)
		for j, v := range x {
			if v < 0 && v > -1e-9 {
				x[j] = 0
			}
		}
	} else {
		for j := 0; j < e.n; j++ {
			if e.nbAtUpper(j) {
				x[j] = e.ub[j]
			}
		}
		for i, c := range e.basis {
			if c < e.n {
				v := e.xB[i]
				if v < 0 && v > -1e-9 {
					v = 0
				}
				x[c] = v
			}
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	cols := make([]int, e.m)
	for i, c := range e.basis {
		if c < e.nTotal {
			cols[i] = c
		} else {
			cols[i] = -1 // redundant row, dense-path compatible
		}
	}
	snap := p.snapshotBasis(e.ops, cols)
	snap.polished = e.snapPolished
	if e.hasUB {
		for j := 0; j < e.n; j++ {
			if e.atUpper[j] && !e.inBasis[j] {
				snap.atUpper = append(snap.atUpper, j)
			}
		}
	}
	return &Result{
		Status: Optimal, X: x, Objective: obj,
		Iterations: e.iterations, Pivots: e.pivots,
		DualIterations: e.dualIters, Refactorizations: e.refactors,
		Basis: snap, WarmStarted: warm, Remapped: remapped,
	}
}

// statusResult wraps a non-optimal terminal status.
func (e *revEngine) statusResult(st Status, warm, remapped bool) *Result {
	return &Result{
		Status: st, Iterations: e.iterations, Pivots: e.pivots,
		DualIterations: e.dualIters, Refactorizations: e.refactors,
		WarmStarted: warm, Remapped: remapped,
	}
}

// solveCold runs the two-phase revised simplex from the slack/artificial
// starting basis. ok=false falls back to the dense path.
func (e *revEngine) solveCold() (*Result, bool) {
	for i := 0; i < e.m; i++ {
		col := e.slackOf[i]
		switch {
		case e.ops[i] == LE:
			// Slack basic at rhs >= 0: feasible.
		case e.ops[i] == GE && e.rhs[i] <= feasTol:
			// Surplus basic at -rhs ~ 0: feasible enough.
		default:
			col = e.nTotal + i // artificial
		}
		e.basis[i] = col
		if col < e.nTotal {
			e.inBasis[col] = true
		}
	}
	if !e.refresh() {
		return nil, false
	}
	st, ok := e.optimize()
	if !ok {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, false, false), true
	}
	return e.finish(false, false), true
}

// solveSeeded runs from a same-shape previous basis (the positional warm
// start), restoring the seed's nonbasic-at-upper assignment where the bounds
// still allow it. ok=false means the seed was unusable; the caller retries
// cold.
func (e *revEngine) solveSeeded(prev *Basis) (*Result, bool) {
	for _, c := range prev.cols {
		if c < 0 || c >= e.nTotal {
			return nil, false
		}
	}
	for i, c := range prev.cols {
		e.basis[i] = c
		e.inBasis[c] = true
	}
	e.seedCanonical = prev.polished
	e.seeded = true
	if e.hasUB {
		for _, j := range prev.atUpper {
			if j >= 0 && j < e.n && !e.inBasis[j] && !math.IsInf(e.ub[j], 1) {
				e.atUpper[j] = true
			}
		}
	}
	if !e.factorize(false) {
		return nil, false
	}
	e.computeXB()
	st, ok := e.optimize()
	if !ok || st == IterationLimit {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, true, false), true
	}
	return e.finish(true, false), true
}

// solveMapped runs from a basis remapped across a shape change: surviving
// slacks and structural columns are pinned to their old host rows, loose
// columns take any free row (the factorization orders pivots itself),
// uncovered rows take their own slack or an artificial, and dependent
// columns are repaired away during factorization. Surviving at-upper
// assignments are restored before the basic values are computed.
// Feasibility lost to the churn is restored by the composite phase 1 (or
// the dual simplex when the seed stayed dual feasible). ok=false retries
// cold.
func (e *revEngine) solveMapped(mb *MappedBasis) (*Result, bool) {
	rowAt := make(map[string]int, e.m)
	for i, c := range e.p.cons {
		if c.id != "" {
			rowAt[c.id] = i
		}
	}
	for i := range e.basis {
		e.basis[i] = -1
	}
	for _, id := range mb.slackRows {
		i, ok := rowAt[id]
		if !ok || e.basis[i] != -1 {
			continue
		}
		if col := e.slackOf[i]; col >= 0 && !e.inBasis[col] {
			e.basis[i] = col
			e.inBasis[col] = true
		}
	}
	var loose []int
	for k, col := range mb.cands {
		if col < 0 || col >= e.n {
			return nil, false
		}
		if e.inBasis[col] {
			continue
		}
		if i, ok := rowAt[mb.candRows[k]]; ok && e.basis[i] == -1 {
			e.basis[i] = col
			e.inBasis[col] = true
			continue
		}
		loose = append(loose, col)
	}
	free := 0
	place := func(col int) {
		for ; free < e.m; free++ {
			if e.basis[free] == -1 {
				e.basis[free] = col
				if col < e.nTotal {
					e.inBasis[col] = true
				}
				free++
				return
			}
		}
	}
	for _, col := range loose {
		place(col)
	}
	for i := 0; i < e.m; i++ {
		if e.basis[i] != -1 {
			continue
		}
		if col := e.slackOf[i]; col >= 0 && !e.inBasis[col] {
			e.basis[i] = col
			e.inBasis[col] = true
		} else {
			e.basis[i] = e.nTotal + i
		}
	}
	e.seeded = true
	if !e.factorize(true) {
		return nil, false
	}
	if e.hasUB {
		for _, j := range mb.uppers {
			if j >= 0 && j < e.n && !e.inBasis[j] && !math.IsInf(e.ub[j], 1) {
				e.atUpper[j] = true
			}
		}
	}
	e.computeXB()
	st, ok := e.optimize()
	if !ok || st == IterationLimit {
		return nil, false
	}
	if st != Optimal {
		return e.statusResult(st, true, true), true
	}
	return e.finish(true, true), true
}

// solveRevised is the revised-engine entry point, mirroring the dense
// dispatch: try the positional seed, then the mapped seed, then cold.
// ok=false sends the whole solve to the dense tableau.
func (p *Problem) solveRevised(prev *Basis, mapped *MappedBasis) (*Result, bool) {
	e, ok := newRevEngine(p)
	if !ok {
		return nil, false
	}
	if prev.compatible(e.n, e.ops) {
		if res, ok := e.solveSeeded(prev); ok {
			return res, true
		}
		e, _ = newRevEngine(p)
	} else if mapped != nil && mapped.numVars == e.n && (len(mapped.cands) > 0 || len(mapped.uppers) > 0) {
		if res, ok := e.solveMapped(mapped); ok {
			return res, true
		}
		e, _ = newRevEngine(p)
	}
	return e.solveCold()
}
