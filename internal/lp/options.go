package lp

import (
	"fmt"
	"strings"
)

// Options bundles every solver knob a caller can set — the simplex engine,
// the pricing rule, the presolve pass, and the dual warm-repair path — into
// one typed value. It replaces ad-hoc GAVEL_LP_* getenv reads scattered
// through call sites: resolve an Options once at startup (OptionsFromEnv,
// then override from flags or a config file) and thread it through
// SolveContext, simulator.Config, and the daemons. The zero value is all
// Auto, which follows the package defaults (themselves env-initialized, so
// the environment remains the fallback of last resort).
type Options struct {
	Engine   Engine
	Pricing  Pricing
	Presolve PresolveMode
	Dual     DualMode
}

// OptionsFromEnv resolves the GAVEL_LP_ENGINE / GAVEL_LP_PRICING /
// GAVEL_LP_PRESOLVE / GAVEL_LP_DUAL environment knobs into concrete (non-Auto)
// options. This is the single startup-time read; the package-level Default*
// variables are initialized from the same parsers, so Auto-valued Options
// agree with it.
func OptionsFromEnv() Options {
	return Options{
		Engine:   engineFromEnv(),
		Pricing:  pricingFromEnv(),
		Presolve: presolveFromEnv(),
		Dual:     dualFromEnv(),
	}
}

// Resolve replaces every Auto field with the corresponding package default,
// yielding fully concrete options.
func (o Options) Resolve() Options {
	if o.Engine == EngineAuto {
		o.Engine = DefaultEngine
	}
	if o.Pricing == PricingAuto {
		o.Pricing = DefaultPricing
	}
	if o.Presolve == PresolveAuto {
		o.Presolve = DefaultPresolve
	}
	if o.Dual == DualAuto {
		o.Dual = DefaultDual
	}
	return o
}

// IsZero reports whether every field is Auto (the zero value).
func (o Options) IsZero() bool { return o == Options{} }

// Apply pushes the options onto a problem about to be solved.
func (o Options) Apply(p *Problem) {
	p.SetEngine(o.Engine)
	p.SetPricing(o.Pricing)
	p.SetPresolve(o.Presolve)
	p.SetDual(o.Dual)
}

// String renders the options in the flag syntax ParseOptions accepts.
func (o Options) String() string {
	return fmt.Sprintf("engine=%s,pricing=%s,presolve=%s,dual=%s",
		o.Engine, o.Pricing, presolveName(o.Presolve), dualName(o.Dual))
}

func presolveName(m PresolveMode) string {
	switch m {
	case PresolveOn:
		return "on"
	case PresolveOff:
		return "off"
	}
	return "auto"
}

func dualName(m DualMode) string {
	switch m {
	case DualOn:
		return "on"
	case DualOff:
		return "off"
	}
	return "auto"
}

// ParseOptions parses the four knobs from their flag/config-file string
// forms. Empty strings mean Auto (follow the package default, i.e. the
// environment fallback). Unknown values are an error — flags, unlike env
// vars, should not fail silently.
func ParseOptions(engine, pricing, presolve, dual string) (Options, error) {
	var o Options
	switch strings.ToLower(engine) {
	case "", "auto":
		o.Engine = EngineAuto
	case "dense":
		o.Engine = Dense
	case "revised":
		o.Engine = Revised
	default:
		return o, fmt.Errorf("lp: unknown engine %q (want dense or revised)", engine)
	}
	switch strings.ToLower(pricing) {
	case "", "auto":
		o.Pricing = PricingAuto
	case "partial":
		o.Pricing = PricingPartial
	case "devex", "steepest", "steepest-edge":
		o.Pricing = PricingDevex
	default:
		return o, fmt.Errorf("lp: unknown pricing %q (want partial or devex)", pricing)
	}
	var err error
	if o.Presolve, err = parseOnOff(presolve, "presolve", PresolveAuto, PresolveOn, PresolveOff); err != nil {
		return o, err
	}
	if o.Dual, err = parseOnOff(dual, "dual", DualAuto, DualOn, DualOff); err != nil {
		return o, err
	}
	return o, nil
}

func parseOnOff[T ~int](s, knob string, auto, on, off T) (T, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return auto, nil
	case "on", "1", "true":
		return on, nil
	case "off", "0", "false":
		return off, nil
	}
	return auto, fmt.Errorf("lp: unknown %s mode %q (want on or off)", knob, s)
}
