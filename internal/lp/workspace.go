package lp

import "gavel/internal/linalg"

// Workspace is a reusable scratch arena for the revised simplex engine.
// Attach one to a Problem with SetWorkspace; every per-solve vector — the
// FTRAN/BTRAN images, basic-value and pricing-weight arrays, the CSC column
// slabs, and the sparse-LU factorization scratch — is then carved from the
// arena instead of allocated, so a caller that solves in a loop (SolveContext,
// the simulator's reset path) performs near-zero allocation per solve.
//
// Buffers grow monotonically to the largest problem seen and are reused
// verbatim afterwards. A Workspace is not safe for concurrent solves; each
// solve context owns one.
type Workspace struct {
	lin linalg.Scratch

	f64   [][]float64 // named float64 buffers, by slot
	ints  [][]int
	bools [][]bool
	ops   []Op

	colSlab   []colEntry // CSC entries for structural + slack columns
	colHdr    [][]colEntry
	colCounts []int
	spCols    []linalg.SparseCol
	spRows    []int
	spVals    []float64
}

// Buffer slots. Each engine buffer has a fixed slot so two live engines never
// alias (the engine and its polish clone use disjoint arenas: the clone
// allocates plainly).
const (
	wsF64Y = iota
	wsF64W
	wsF64Z
	wsF64XB
	wsF64RHS
	wsF64Obj
	wsF64UB
	wsF64Devex
	wsF64Scratch
	wsF64Count
)

const (
	wsIntBasis = iota
	wsIntSlackOf
	wsIntColCount
	wsIntCount
)

const (
	wsBoolInBasis = iota
	wsBoolAtUpper
	wsBoolCount
)

func (ws *Workspace) floats(slot, n int) []float64 {
	if ws.f64 == nil {
		ws.f64 = make([][]float64, wsF64Count)
	}
	b := ws.f64[slot]
	if cap(b) < n {
		b = make([]float64, n)
	}
	b = b[:n]
	ws.f64[slot] = b
	return b
}

func (ws *Workspace) intsBuf(slot, n int) []int {
	if ws.ints == nil {
		ws.ints = make([][]int, wsIntCount)
	}
	b := ws.ints[slot]
	if cap(b) < n {
		b = make([]int, n)
	}
	b = b[:n]
	ws.ints[slot] = b
	return b
}

func (ws *Workspace) boolsBuf(slot, n int) []bool {
	if ws.bools == nil {
		ws.bools = make([][]bool, wsBoolCount)
	}
	b := ws.bools[slot]
	if cap(b) < n {
		b = make([]bool, n)
	}
	b = b[:n]
	ws.bools[slot] = b
	return b
}

func (ws *Workspace) opsBuf(n int) []Op {
	if cap(ws.ops) < n {
		ws.ops = make([]Op, n)
	}
	ws.ops = ws.ops[:n]
	return ws.ops
}

// colHeaders returns the CSC column-header slice (n column slots).
func (ws *Workspace) colHeaders(n int) [][]colEntry {
	if cap(ws.colHdr) < n {
		ws.colHdr = make([][]colEntry, n)
	}
	return ws.colHdr[:n]
}

// colEntries returns a slab with capacity for n CSC entries, length 0.
func (ws *Workspace) colEntries(n int) []colEntry {
	if cap(ws.colSlab) < n {
		ws.colSlab = make([]colEntry, 0, n)
	}
	return ws.colSlab[:0]
}

// sparseCols returns headers and row/val slabs for a basis factorization
// with m columns and at most nnz entries.
func (ws *Workspace) sparseCols(m, nnz int) ([]linalg.SparseCol, []int, []float64) {
	if cap(ws.spCols) < m {
		ws.spCols = make([]linalg.SparseCol, m)
	}
	if cap(ws.spRows) < nnz {
		ws.spRows = make([]int, nnz)
		ws.spVals = make([]float64, nnz)
	}
	return ws.spCols[:m], ws.spRows[:nnz], ws.spVals[:nnz]
}
