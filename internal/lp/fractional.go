package lp

import (
	"errors"
	"fmt"
)

// Fractional describes a linear-fractional program
//
//	maximize  (c.x + alpha) / (d.x + beta)
//	s.t.      a_i.x <= b_i   (Op per row)
//	          x >= 0,  d.x + beta > 0
//
// Gavel's cost policies ("maximize throughput per dollar", §4.2) have this
// form. SolveFractional reduces it to a single LP via the Charnes-Cooper
// transformation: with y = t*x and t = 1/(d.x + beta),
//
//	maximize  c.y + alpha*t
//	s.t.      a_i.y - b_i*t (op) 0
//	          d.y + beta*t = 1
//	          y, t >= 0
//
// and recovers x = y / t.
type Fractional struct {
	NumVars int
	Num     []float64 // c, len NumVars
	NumC    float64   // alpha
	Den     []float64 // d, len NumVars
	DenC    float64   // beta
	Cons    []FractionalConstraint
	// Engine selects the simplex implementation for the transformed LP;
	// EngineAuto follows DefaultEngine.
	Engine Engine
	// Pricing selects the entering-column rule for the transformed LP;
	// PricingAuto follows DefaultPricing.
	Pricing Pricing
	// Presolve selects whether the transformed LP runs the presolve pass;
	// PresolveAuto follows DefaultPresolve.
	Presolve PresolveMode
	// Dual selects whether seeded solves of the transformed LP may repair
	// with the dual simplex; DualAuto follows DefaultDual.
	Dual DualMode
	// Workspace, when set, supplies the reusable per-solve scratch arena to
	// the transformed LP (see Problem.SetWorkspace).
	Workspace *Workspace
}

// FractionalConstraint is one row a.x (op) b of a Fractional program. ID,
// when set, is the row's stable identity for cross-shape basis remapping
// (see Problem.AddConstraintRow).
type FractionalConstraint struct {
	Terms []Term
	Op    Op
	RHS   float64
	ID    string
}

// ErrDegenerateFraction is returned when the optimal transformed solution
// has t ~ 0, meaning the denominator is unbounded and the ratio degenerate.
var ErrDegenerateFraction = errors.New("lp: degenerate linear-fractional program (t = 0)")

// SolveFractional solves the linear-fractional program and returns the
// optimal x and objective ratio.
func SolveFractional(f *Fractional) (x []float64, ratio float64, err error) {
	x, ratio, _, err = SolveFractionalFrom(f, nil)
	return x, ratio, err
}

// CharnesCooperID is the ColumnID of the homogenizing variable t the
// Charnes-Cooper transformation appends after the y columns. Callers that
// remap transformed bases across shape changes (SolveFractionalFromMapped)
// append it to their per-variable IDs to name the transformed LP's columns.
const CharnesCooperID ColumnID = "cc:t"

// transform builds the Charnes-Cooper LP for f, returning the problem, the
// y variable indices, and the t variable index.
func (f *Fractional) transform() (*Problem, []int, int, error) {
	if len(f.Num) != f.NumVars || len(f.Den) != f.NumVars {
		return nil, nil, 0, fmt.Errorf("%w: coefficient vectors must have NumVars entries", ErrBadProblem)
	}
	p := NewProblem(Maximize)
	p.SetEngine(f.Engine)
	p.SetPricing(f.Pricing)
	p.SetPresolve(f.Presolve)
	p.SetDual(f.Dual)
	if f.Workspace != nil {
		p.SetWorkspace(f.Workspace)
	}
	y := make([]int, f.NumVars)
	for j := 0; j < f.NumVars; j++ {
		y[j] = p.AddVar(f.Num[j], fmt.Sprintf("y%d", j))
	}
	t := p.AddVar(f.NumC, "t")

	for _, c := range f.Cons {
		terms := make([]Term, 0, len(c.Terms)+1)
		for _, tm := range c.Terms {
			terms = append(terms, Term{Var: y[tm.Var], Coeff: tm.Coeff})
		}
		terms = append(terms, Term{Var: t, Coeff: -c.RHS})
		p.AddConstraintRow(terms, c.Op, 0, c.ID)
	}
	denTerms := make([]Term, 0, f.NumVars+1)
	for j, d := range f.Den {
		if d != 0 {
			denTerms = append(denTerms, Term{Var: y[j], Coeff: d})
		}
	}
	denTerms = append(denTerms, Term{Var: t, Coeff: f.DenC})
	p.AddConstraintRow(denTerms, EQ, 1, "cc:den")
	return p, y, t, nil
}

// recover converts the transformed LP's result back to the fractional
// program's solution x = y / t.
func (f *Fractional) recover(res *Result, y []int, t int) (x []float64, ratio float64, out *Result, err error) {
	if res.Status != Optimal {
		return nil, 0, res, fmt.Errorf("lp: fractional program not optimal: %v", res.Status)
	}
	tv := res.X[t]
	if tv < 1e-9 {
		return nil, 0, res, ErrDegenerateFraction
	}
	x = make([]float64, f.NumVars)
	for j := range x {
		x[j] = res.X[y[j]] / tv
	}
	return x, res.Objective, res, nil
}

// SolveFractionalFrom solves the linear-fractional program, seeding the
// transformed LP from a previous basis when one is supplied (the transformed
// problem's shape is a deterministic function of f's shape, so a basis from
// a same-shaped Fractional warm-starts its successor). It returns the raw
// result of the transformed LP, whose Basis seeds the next call.
func SolveFractionalFrom(f *Fractional, prev *Basis) (x []float64, ratio float64, res *Result, err error) {
	p, y, t, err := f.transform()
	if err != nil {
		return nil, 0, nil, err
	}
	res, err = p.SolveFrom(prev)
	if err != nil {
		return nil, 0, nil, err
	}
	return f.recover(res, y, t)
}

// SolveFractionalFromMapped solves the linear-fractional program seeding the
// transformed LP from a basis remapped across a shape change. The mapping
// must target the transformed column universe: the caller's per-variable IDs
// followed by CharnesCooperID (see policy.SolveContext.SolveFractional).
func SolveFractionalFromMapped(f *Fractional, mb *MappedBasis) (x []float64, ratio float64, res *Result, err error) {
	p, y, t, err := f.transform()
	if err != nil {
		return nil, 0, nil, err
	}
	res, err = p.SolveFromMapped(mb)
	if err != nil {
		return nil, 0, nil, err
	}
	return f.recover(res, y, t)
}
