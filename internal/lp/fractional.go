package lp

import (
	"errors"
	"fmt"
)

// Fractional describes a linear-fractional program
//
//	maximize  (c.x + alpha) / (d.x + beta)
//	s.t.      a_i.x <= b_i   (Op per row)
//	          x >= 0,  d.x + beta > 0
//
// Gavel's cost policies ("maximize throughput per dollar", §4.2) have this
// form. SolveFractional reduces it to a single LP via the Charnes-Cooper
// transformation: with y = t*x and t = 1/(d.x + beta),
//
//	maximize  c.y + alpha*t
//	s.t.      a_i.y - b_i*t (op) 0
//	          d.y + beta*t = 1
//	          y, t >= 0
//
// and recovers x = y / t.
type Fractional struct {
	NumVars int
	Num     []float64 // c, len NumVars
	NumC    float64   // alpha
	Den     []float64 // d, len NumVars
	DenC    float64   // beta
	Cons    []FractionalConstraint
}

// FractionalConstraint is one row a.x (op) b of a Fractional program.
type FractionalConstraint struct {
	Terms []Term
	Op    Op
	RHS   float64
}

// ErrDegenerateFraction is returned when the optimal transformed solution
// has t ~ 0, meaning the denominator is unbounded and the ratio degenerate.
var ErrDegenerateFraction = errors.New("lp: degenerate linear-fractional program (t = 0)")

// SolveFractional solves the linear-fractional program and returns the
// optimal x and objective ratio.
func SolveFractional(f *Fractional) (x []float64, ratio float64, err error) {
	x, ratio, _, err = SolveFractionalFrom(f, nil)
	return x, ratio, err
}

// SolveFractionalFrom solves the linear-fractional program, seeding the
// transformed LP from a previous basis when one is supplied (the transformed
// problem's shape is a deterministic function of f's shape, so a basis from
// a same-shaped Fractional warm-starts its successor). It returns the raw
// result of the transformed LP, whose Basis seeds the next call.
func SolveFractionalFrom(f *Fractional, prev *Basis) (x []float64, ratio float64, res *Result, err error) {
	if len(f.Num) != f.NumVars || len(f.Den) != f.NumVars {
		return nil, 0, nil, fmt.Errorf("%w: coefficient vectors must have NumVars entries", ErrBadProblem)
	}
	p := NewProblem(Maximize)
	y := make([]int, f.NumVars)
	for j := 0; j < f.NumVars; j++ {
		y[j] = p.AddVar(f.Num[j], fmt.Sprintf("y%d", j))
	}
	t := p.AddVar(f.NumC, "t")

	for _, c := range f.Cons {
		terms := make([]Term, 0, len(c.Terms)+1)
		for _, tm := range c.Terms {
			terms = append(terms, Term{Var: y[tm.Var], Coeff: tm.Coeff})
		}
		terms = append(terms, Term{Var: t, Coeff: -c.RHS})
		p.AddConstraint(terms, c.Op, 0)
	}
	denTerms := make([]Term, 0, f.NumVars+1)
	for j, d := range f.Den {
		if d != 0 {
			denTerms = append(denTerms, Term{Var: y[j], Coeff: d})
		}
	}
	denTerms = append(denTerms, Term{Var: t, Coeff: f.DenC})
	p.AddConstraint(denTerms, EQ, 1)

	res, err = p.SolveFrom(prev)
	if err != nil {
		return nil, 0, nil, err
	}
	if res.Status != Optimal {
		return nil, 0, res, fmt.Errorf("lp: fractional program not optimal: %v", res.Status)
	}
	tv := res.X[t]
	if tv < 1e-9 {
		return nil, 0, res, ErrDegenerateFraction
	}
	x = make([]float64, f.NumVars)
	for j := range x {
		x[j] = res.X[y[j]] / tv
	}
	return x, res.Objective, res, nil
}
