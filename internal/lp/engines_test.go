package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The engine equivalence harness: the sparse revised simplex engine must
// agree with the dense tableau oracle on status and objective (within 1e-9
// relative) across randomized problems — feasible, infeasible, unbounded,
// and degenerate — and across every seeding path: cold, positionally
// warm-started from a perturbed predecessor, and remapped across column
// churn. This is what licenses making Revised the default solve path.

// fuzzProblem is a randomly generated LP plus the scaffolding to rebuild,
// perturb, and churn it.
type fuzzProblem struct {
	sense Sense
	obj   []float64
	ids   []ColumnID
	rows  []fuzzRow
}

type fuzzRow struct {
	coeff []float64 // parallel to obj/ids
	op    Op
	rhs   float64
	id    string
}

func (fp *fuzzProblem) build(engine Engine) *Problem {
	p := NewProblem(fp.sense)
	p.SetEngine(engine)
	for j, c := range fp.obj {
		p.AddVar(c, string(fp.ids[j]))
	}
	for _, r := range fp.rows {
		var terms []Term
		for j, c := range r.coeff {
			if c != 0 {
				terms = append(terms, Term{Var: j, Coeff: c})
			}
		}
		p.AddConstraintRow(terms, r.op, r.rhs, r.id)
	}
	return p
}

// genFuzz generates a random LP. Feasibility is arranged by construction
// around a random interior point x0 (margins keep LE/GE rows comfortably
// satisfiable); flavor selects deliberate corruptions.
func genFuzz(rng *rand.Rand, nextID *int, flavor string) *fuzzProblem {
	n := 2 + rng.Intn(12)
	m := 1 + rng.Intn(8)
	fp := &fuzzProblem{sense: Sense(rng.Intn(2))}
	fp.obj = make([]float64, n)
	fp.ids = make([]ColumnID, n)
	for j := 0; j < n; j++ {
		fp.obj[j] = math.Round((4*rng.Float64()-2)*8) / 8
		fp.ids[j] = ColumnID(fmt.Sprintf("v%d", *nextID))
		*nextID++
	}
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = 2 * rng.Float64()
	}
	for i := 0; i < m; i++ {
		r := fuzzRow{coeff: make([]float64, n), id: fmt.Sprintf("r%d", i)}
		ax := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				r.coeff[j] = math.Round((4*rng.Float64()-2)*8) / 8
				ax += r.coeff[j] * x0[j]
			}
		}
		margin := 0.1 + rng.Float64()
		switch rng.Intn(3) {
		case 0:
			r.op, r.rhs = LE, ax+margin
		case 1:
			r.op, r.rhs = GE, ax-margin
		default:
			r.op, r.rhs = EQ, ax
		}
		fp.rows = append(fp.rows, r)
	}
	// Bound every variable so the feasible-by-construction flavor is also
	// bounded (maximization over free columns would otherwise race off).
	for j := 0; j < n; j++ {
		r := fuzzRow{coeff: make([]float64, n), op: LE, rhs: x0[j] + 1 + 2*rng.Float64(), id: fmt.Sprintf("b%d", j)}
		r.coeff[j] = 1
		fp.rows = append(fp.rows, r)
	}
	switch flavor {
	case "infeasible":
		// Contradictory pair on a fresh random row.
		r := fuzzRow{coeff: make([]float64, n), id: "x1"}
		for j := 0; j < n; j++ {
			r.coeff[j] = rng.Float64()
		}
		lo := fuzzRow{coeff: r.coeff, op: GE, rhs: 5, id: "x2"}
		hi := fuzzRow{coeff: r.coeff, op: LE, rhs: 4, id: "x3"}
		fp.rows = append(fp.rows, lo, hi)
	case "unbounded":
		// A column no row touches, pushed by the objective.
		fp.obj = append(fp.obj, 1)
		if fp.sense == Minimize {
			fp.obj[len(fp.obj)-1] = -1
		}
		fp.ids = append(fp.ids, ColumnID(fmt.Sprintf("v%d", *nextID)))
		*nextID++
		for i := range fp.rows {
			fp.rows[i].coeff = append(fp.rows[i].coeff, 0)
		}
	case "degenerate":
		// Duplicate a row, zero a rhs, and duplicate a column's coefficients
		// (exact objective ties): the classic cycling and tie-breaking traps.
		if len(fp.rows) > 0 {
			dup := fp.rows[rng.Intn(len(fp.rows))]
			dup.id = "dup"
			fp.rows = append(fp.rows, dup)
		}
		fp.rows[rng.Intn(len(fp.rows))].rhs = 0
		if len(fp.obj) >= 2 {
			fp.obj[1] = fp.obj[0]
			for i := range fp.rows {
				fp.rows[i].coeff[1] = fp.rows[i].coeff[0]
			}
		}
	}
	return fp
}

// checkEngines solves fp under both engines and enforces status and
// objective agreement. Returns the two results for seeding follow-ups.
func checkEngines(t *testing.T, label string, fp *fuzzProblem, solve func(*Problem) (*Result, error)) (*Result, *Result) {
	t.Helper()
	dense, err := solve(fp.build(Dense))
	if err != nil {
		t.Fatalf("%s: dense: %v", label, err)
	}
	revised, err := solve(fp.build(Revised))
	if err != nil {
		t.Fatalf("%s: revised: %v", label, err)
	}
	if dense.Status != revised.Status {
		t.Fatalf("%s: dense status %v, revised %v", label, dense.Status, revised.Status)
	}
	if dense.Status == Optimal {
		scale := 1 + math.Abs(dense.Objective)
		if d := math.Abs(dense.Objective - revised.Objective); d > 1e-9*scale {
			t.Fatalf("%s: dense objective %v, revised %v (diff %g)", label, dense.Objective, revised.Objective, d)
		}
	}
	return dense, revised
}

// TestEnginesAgreeCold fuzzes cold solves across all flavors.
func TestEnginesAgreeCold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nextID := 0
	flavors := []string{"feasible", "feasible", "infeasible", "unbounded", "degenerate"}
	for trial := 0; trial < 300; trial++ {
		flavor := flavors[trial%len(flavors)]
		fp := genFuzz(rng, &nextID, flavor)
		checkEngines(t, fmt.Sprintf("trial %d (%s)", trial, flavor), fp,
			func(p *Problem) (*Result, error) { return p.Solve() })
	}
}

// TestEnginesAgreeWarm fuzzes the positional warm path: solve, perturb the
// rhs and objective, then re-solve seeded from each engine's own basis —
// and cross-seeded from the other engine's basis, since Basis is engine
// portable by design.
func TestEnginesAgreeWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nextID := 0
	for trial := 0; trial < 150; trial++ {
		flavor := "feasible"
		if trial%5 == 4 {
			flavor = "degenerate"
		}
		fp := genFuzz(rng, &nextID, flavor)
		dense0, revised0, err := solveBoth(fp)
		if err != nil || dense0.Status != Optimal || revised0.Status != Optimal {
			continue // only optimal bases seed warm starts
		}
		// Perturb in place: rhs jitter plus objective jitter.
		for i := range fp.rows {
			fp.rows[i].rhs *= 1 + 0.02*(2*rng.Float64()-1)
		}
		for j := range fp.obj {
			fp.obj[j] *= 1 + 0.02*(2*rng.Float64()-1)
		}
		label := fmt.Sprintf("trial %d warm", trial)
		seeds := []*Basis{dense0.Basis, revised0.Basis}
		seed := seeds[trial%2]
		checkEngines(t, label, fp,
			func(p *Problem) (*Result, error) { return p.SolveFrom(seed) })
	}
}

func solveBoth(fp *fuzzProblem) (*Result, *Result, error) {
	dense, err := fp.build(Dense).Solve()
	if err != nil {
		return nil, nil, err
	}
	revised, err := fp.build(Revised).Solve()
	if err != nil {
		return nil, nil, err
	}
	return dense, revised, nil
}

// churn drops a random suffix of columns and appends fresh ones, the same
// reshaping a job departure + arrival applies to an allocation LP.
func churn(rng *rand.Rand, fp *fuzzProblem, nextID *int) *fuzzProblem {
	out := &fuzzProblem{sense: fp.sense}
	keep := 1 + rng.Intn(len(fp.obj))
	perm := rng.Perm(len(fp.obj))[:keep]
	for _, j := range perm {
		out.obj = append(out.obj, fp.obj[j])
		out.ids = append(out.ids, fp.ids[j])
	}
	for _, r := range fp.rows {
		nr := fuzzRow{op: r.op, rhs: r.rhs * (1 + 0.02*(2*rng.Float64()-1)), id: r.id}
		for _, j := range perm {
			nr.coeff = append(nr.coeff, r.coeff[j])
		}
		out.rows = append(out.rows, nr)
	}
	for a := rng.Intn(3); a > 0; a-- {
		out.obj = append(out.obj, math.Round((4*rng.Float64()-2)*8)/8)
		out.ids = append(out.ids, ColumnID(fmt.Sprintf("v%d", *nextID)))
		*nextID++
		for i := range out.rows {
			out.rows[i].coeff = append(out.rows[i].coeff, math.Round((4*rng.Float64()-2)*8)/8*float64(rng.Intn(2)))
		}
	}
	return out
}

// TestEnginesAgreeRemapped fuzzes the cross-shape path: churn the column
// set, remap each engine's basis onto the new problem, and require both
// engines to match their own cold solves and each other.
func TestEnginesAgreeRemapped(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nextID := 0
	engaged := 0
	for trial := 0; trial < 150; trial++ {
		fp := genFuzz(rng, &nextID, "feasible")
		dense0, revised0, err := solveBoth(fp)
		if err != nil || dense0.Status != Optimal || revised0.Status != Optimal {
			continue
		}
		next := churn(rng, fp, &nextID)
		seeds := []*Basis{dense0.Basis, revised0.Basis}
		mb := seeds[trial%2].Remap(fp.ids, next.ids)
		label := fmt.Sprintf("trial %d remap", trial)
		dense, revised := checkEngines(t, label, next,
			func(p *Problem) (*Result, error) { return p.SolveFromMapped(mb) })
		// The remapped solves must also match a cold solve of the same
		// problem: the mapping may only change speed, never the answer.
		coldD, coldR, err := solveBoth(next)
		if err != nil {
			t.Fatalf("%s: cold: %v", label, err)
		}
		checkParity(t, label+" dense-vs-cold", dense, coldD)
		checkParity(t, label+" revised-vs-cold", revised, coldR)
		if revised.Remapped {
			engaged++
		}
	}
	if engaged < 50 {
		t.Fatalf("remapped path engaged on only %d churned solves", engaged)
	}
}
