package lp

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// basisWire is the exported mirror of Basis used for gob encoding. Basis
// itself keeps its fields unexported (callers must not reach into a
// snapshot), so the wire form is an explicit, versioned projection: a new
// field added to Basis must be added here and bumped below, or it silently
// stops surviving the trip between shard daemons.
type basisWire struct {
	Version  int
	NumVars  int
	Ops      []Op
	Cols     []int
	RowIDs   []string
	AtUpper  []int
	Polished bool
}

// basisWireVersion stamps the serialized form. Decode rejects versions it
// does not understand rather than guessing: a stale basis is worthless (the
// receiver just solves cold), a misdecoded one is wrong.
const basisWireVersion = 1

// GobEncode implements gob.GobEncoder, letting a *Basis ride inside any gob
// message (the control plane's snapshot, migration, and warm-start
// payloads) without exposing its internals.
func (b *Basis) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	w := basisWire{
		Version:  basisWireVersion,
		NumVars:  b.numVars,
		Ops:      b.ops,
		Cols:     b.cols,
		RowIDs:   b.rowIDs,
		AtUpper:  b.atUpper,
		Polished: b.polished,
	}
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (b *Basis) GobDecode(data []byte) error {
	var w basisWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Version != basisWireVersion {
		return fmt.Errorf("lp: basis wire version %d, this build speaks %d", w.Version, basisWireVersion)
	}
	if len(w.Cols) != len(w.Ops) {
		return fmt.Errorf("lp: malformed basis wire: %d basic columns for %d rows", len(w.Cols), len(w.Ops))
	}
	b.numVars = w.NumVars
	b.ops = w.Ops
	b.cols = w.Cols
	b.rowIDs = w.RowIDs
	b.atUpper = w.AtUpper
	b.polished = w.Polished
	return nil
}
