package lp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// fakeJob models one Gavel job's LP footprint: an objective coefficient, a
// coefficient in every shared capacity row, and its own x <= 1 budget row.
// The identity is the ColumnID, so job churn (drop/add) reshapes the LP the
// same way arrivals and departures reshape an allocation program.
type fakeJob struct {
	id  ColumnID
	obj float64
	row []float64
}

func newFakeJob(rng *rand.Rand, id ColumnID, numRows int) fakeJob {
	j := fakeJob{id: id, obj: 0.1 + rng.Float64(), row: make([]float64, numRows)}
	for i := range j.row {
		j.row[i] = 0.1 + rng.Float64()
	}
	return j
}

// buildJobLP assembles: maximize sum obj_j x_j, subject to the shared
// capacity rows sum row_j[i] x_j <= rhs[i], one x_j <= 1 budget row per job,
// and a mild GE floor on the first job so remapped seeds also exercise the
// surplus-column path. Returns the problem and its column IDs.
func buildJobLP(jobs []fakeJob, rhs []float64) (*Problem, []ColumnID) {
	p := NewProblem(Maximize)
	ids := make([]ColumnID, len(jobs))
	for v, j := range jobs {
		p.AddVar(j.obj, string(j.id))
		ids[v] = j.id
	}
	for i, b := range rhs {
		terms := make([]Term, len(jobs))
		for v, j := range jobs {
			terms[v] = Term{Var: v, Coeff: j.row[i]}
		}
		p.AddConstraint(terms, LE, b)
	}
	for v := range jobs {
		p.AddConstraint([]Term{{Var: v, Coeff: 1}}, LE, 1)
	}
	if len(jobs) > 0 {
		p.AddConstraint([]Term{{Var: 0, Coeff: 1}}, GE, 0.01)
	}
	return p, ids
}

func jitterRHS(rng *rand.Rand, rhs []float64, frac float64) []float64 {
	out := make([]float64, len(rhs))
	for i, b := range rhs {
		out[i] = b * (1 + frac*(2*rng.Float64()-1))
	}
	return out
}

func checkParity(t *testing.T, label string, mapped, cold *Result) {
	t.Helper()
	if mapped.Status != cold.Status {
		t.Fatalf("%s: mapped status %v, cold %v", label, mapped.Status, cold.Status)
	}
	if cold.Status == Optimal {
		scale := 1 + math.Abs(cold.Objective)
		if diff := math.Abs(mapped.Objective - cold.Objective); diff > 1e-9*scale {
			t.Fatalf("%s: mapped objective %v, cold %v (diff %v)", label, mapped.Objective, cold.Objective, diff)
		}
	}
}

// TestRemapMatchesColdAcrossJobChurn is the remap correctness property:
// across randomized job arrivals and departures (which change both the
// variable count and the constraint-row count), SolveFromMapped and a cold
// Solve must agree on status and objective within 1e-9 relative, while the
// mapped path engages often enough, and cheaply enough, to matter.
func TestRemapMatchesColdAcrossJobChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	remapped, totalMappedIters, totalColdIters := 0, 0, 0
	nextID := 0
	for trial := 0; trial < 200; trial++ {
		numRows := 2 + rng.Intn(3)
		n := 4 + rng.Intn(10)
		jobs := make([]fakeJob, n)
		for v := range jobs {
			jobs[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("j%d", nextID)), numRows)
			nextID++
		}
		rhs := make([]float64, numRows)
		for i := range rhs {
			rhs[i] = 1 + float64(n)/4*rng.Float64()
		}
		base, baseIDs := buildJobLP(jobs, rhs)
		res0, err := base.Solve()
		if err != nil || res0.Status != Optimal {
			t.Fatalf("trial %d: base solve: %v %v", trial, err, res0.Status)
		}

		// Churn: depart 1..n/2 jobs, arrive 0..3 newcomers.
		departs := 1 + rng.Intn(n/2)
		next := append([]fakeJob(nil), jobs[departs:]...)
		for a := rng.Intn(4); a > 0; a-- {
			next = append(next, newFakeJob(rng, ColumnID(fmt.Sprintf("j%d", nextID)), numRows))
			nextID++
		}
		nextProblem, nextIDs := buildJobLP(next, jitterRHS(rng, rhs, 0.05))
		cold, err := nextProblem.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		mapped, err := nextProblem.SolveFromMapped(res0.Basis.Remap(baseIDs, nextIDs))
		if err != nil {
			t.Fatalf("trial %d: mapped solve: %v", trial, err)
		}
		checkParity(t, fmt.Sprintf("trial %d", trial), mapped, cold)
		if mapped.Remapped {
			remapped++
			totalMappedIters += mapped.Iterations
			totalColdIters += cold.Iterations
		}
	}
	if remapped < 150 {
		t.Fatalf("remapped warm start engaged on only %d/200 churned solves", remapped)
	}
	if totalMappedIters >= totalColdIters {
		t.Errorf("remapped starts used %d iterations vs %d cold — no saving", totalMappedIters, totalColdIters)
	}
	t.Logf("remapped %d/200; iterations mapped=%d cold=%d", remapped, totalMappedIters, totalColdIters)
}

// TestRemapNoSurvivorsFallsBackCold covers the all-jobs-departed and
// empty-to-nonempty edges: a mapping with no surviving columns (or no basis
// at all) must silently run the cold path and still reach the optimum.
func TestRemapNoSurvivorsFallsBackCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	numRows := 3
	jobs := make([]fakeJob, 6)
	for v := range jobs {
		jobs[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("old%d", v)), numRows)
	}
	rhs := []float64{2, 2, 2}
	base, baseIDs := buildJobLP(jobs, rhs)
	res0, err := base.Solve()
	if err != nil || res0.Status != Optimal {
		t.Fatalf("base: %v %v", err, res0.Status)
	}

	// Entire job set replaced: no ID survives.
	fresh := make([]fakeJob, 5)
	for v := range fresh {
		fresh[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("new%d", v)), numRows)
	}
	next, nextIDs := buildJobLP(fresh, rhs)
	cold, err := next.Solve()
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", err, cold.Status)
	}
	mapped, err := next.SolveFromMapped(res0.Basis.Remap(baseIDs, nextIDs))
	if err != nil {
		t.Fatalf("mapped: %v", err)
	}
	if mapped.Remapped || mapped.WarmStarted {
		t.Fatal("no-survivor mapping should fall back to the cold path")
	}
	checkParity(t, "no survivors", mapped, cold)

	// Empty-to-nonempty: no previous basis at all. Remap on a nil basis
	// yields nil, and SolveFromMapped(nil) must be exactly a cold solve.
	var nilBasis *Basis
	if mb := nilBasis.Remap(nil, nextIDs); mb != nil {
		t.Fatal("nil basis should remap to nil")
	}
	fromNil, err := next.SolveFromMapped(nil)
	if err != nil {
		t.Fatalf("mapped from nil: %v", err)
	}
	if fromNil.WarmStarted {
		t.Fatal("nil mapping warm-started")
	}
	checkParity(t, "empty to nonempty", fromNil, cold)
}

// TestRemapSimultaneousArrivalDeparture keeps the variable count fixed while
// swapping one job's identity — the case a positional (shape-only) check
// cannot detect. The remapped solve must drop the departed column, enter the
// newcomer nonbasic, and match cold.
func TestRemapSimultaneousArrivalDeparture(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 50; trial++ {
		numRows := 2 + rng.Intn(2)
		n := 5 + rng.Intn(6)
		jobs := make([]fakeJob, n)
		for v := range jobs {
			jobs[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("t%d-j%d", trial, v)), numRows)
		}
		rhs := make([]float64, numRows)
		for i := range rhs {
			rhs[i] = 1.5 + rng.Float64()
		}
		base, baseIDs := buildJobLP(jobs, rhs)
		res0, err := base.Solve()
		if err != nil || res0.Status != Optimal {
			t.Fatalf("trial %d base: %v %v", trial, err, res0.Status)
		}

		// One job departs, one arrives: same count, different identity.
		swapAt := rng.Intn(n)
		next := append([]fakeJob(nil), jobs...)
		next[swapAt] = newFakeJob(rng, ColumnID(fmt.Sprintf("t%d-new", trial)), numRows)
		nextProblem, nextIDs := buildJobLP(next, rhs)
		cold, err := nextProblem.Solve()
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		mb := res0.Basis.Remap(baseIDs, nextIDs)
		if mb == nil || mb.NumCandidates() == 0 {
			t.Fatalf("trial %d: remap produced no candidates", trial)
		}
		mapped, err := nextProblem.SolveFromMapped(mb)
		if err != nil {
			t.Fatalf("trial %d mapped: %v", trial, err)
		}
		checkParity(t, fmt.Sprintf("trial %d", trial), mapped, cold)
	}
}

// TestRemapRejectsMismatchedIDs checks the defensive edges of Remap itself:
// an oldCols vector that does not match the basis shape yields nil, and a
// mapping built for a different variable count is ignored by the solver.
func TestRemapRejectsMismatchedIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	jobs := []fakeJob{
		newFakeJob(rng, "a", 2), newFakeJob(rng, "b", 2), newFakeJob(rng, "c", 2),
	}
	rhs := []float64{2, 2}
	p, ids := buildJobLP(jobs, rhs)
	res, err := p.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("solve: %v %v", err, res.Status)
	}
	if mb := res.Basis.Remap(ids[:2], ids); mb != nil {
		t.Fatal("short oldCols should yield nil mapping")
	}

	// A mapping sized for a 3-var problem fed to a 4-var problem must be
	// ignored (cold path), not misapplied.
	bigger := append(jobs, newFakeJob(rng, "d", 2))
	q, _ := buildJobLP(bigger, rhs)
	mb := res.Basis.Remap(ids, ids) // numVars = 3, q has 4
	got, err := q.SolveFromMapped(mb)
	if err != nil {
		t.Fatalf("mismatched mapped solve: %v", err)
	}
	if got.WarmStarted {
		t.Fatal("size-mismatched mapping should not warm start")
	}
	if got.Status != Optimal {
		t.Fatalf("fallback status %v", got.Status)
	}
}
