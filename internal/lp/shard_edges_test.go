package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRemapIntoEmptyUniverse covers the shard-drained-by-migration edge: a
// basis remapped onto an empty column universe (every job migrated away) must
// yield a harmless mapping — no candidates, no panic — and a later remap of
// the same basis onto a fresh universe must still work.
func TestRemapIntoEmptyUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	jobs := make([]fakeJob, 5)
	for v := range jobs {
		jobs[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("m%d", v)), 2)
	}
	rhs := []float64{2, 2}
	p, ids := buildJobLP(jobs, rhs)
	res, err := p.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("solve: %v %v", err, res.Status)
	}

	mb := res.Basis.Remap(ids, nil)
	if mb == nil {
		t.Fatal("remap onto an empty universe should yield a (harmless) mapping, not nil")
	}
	if mb.NumCandidates() != 0 {
		t.Fatalf("empty universe kept %d candidates", mb.NumCandidates())
	}

	// The drained shard's basis stays usable: remapping it onto a later
	// nonempty universe (jobs migrated back in) must still carry survivors.
	mb2 := res.Basis.Remap(ids, []ColumnID{ids[2], "fresh", ids[0]})
	if mb2 == nil || mb2.NumCandidates() == 0 {
		t.Fatal("re-remap after drain lost all candidates")
	}
}

// TestRemapZeroCandidateMappingSolvesCold drives a zero-candidate mapping
// (the empty-shard-receives-jobs edge: the adopted basis shares no column
// with the new LP) through SolveFromMapped: it must fall back to the cold
// two-phase path, not panic and not claim a warm start.
func TestRemapZeroCandidateMappingSolvesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	old := []fakeJob{newFakeJob(rng, "gone0", 2), newFakeJob(rng, "gone1", 2)}
	rhs := []float64{2, 2}
	p, oldIDs := buildJobLP(old, rhs)
	res, err := p.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("solve: %v %v", err, res.Status)
	}

	fresh := []fakeJob{newFakeJob(rng, "new0", 2), newFakeJob(rng, "new1", 2), newFakeJob(rng, "new2", 2)}
	next, nextIDs := buildJobLP(fresh, rhs)
	cold, err := next.Solve()
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold: %v %v", err, cold.Status)
	}
	mapped, err := next.SolveFromMapped(res.Basis.Remap(oldIDs, nextIDs))
	if err != nil {
		t.Fatalf("mapped: %v", err)
	}
	if mapped.Remapped || mapped.WarmStarted {
		t.Fatal("zero-candidate mapping must run cold")
	}
	checkParity(t, "zero-candidate mapping", mapped, cold)
}

// TestBasisCloneIsIndependent checks the migration-sharing contract: a clone
// seeds solves exactly like the original, and the two share no backing
// arrays (a shard mutating nothing is the norm, but the contexts must not be
// entangled even in principle).
func TestBasisCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	jobs := make([]fakeJob, 4)
	for v := range jobs {
		jobs[v] = newFakeJob(rng, ColumnID(fmt.Sprintf("c%d", v)), 2)
	}
	rhs := []float64{2, 2}
	p, _ := buildJobLP(jobs, rhs)
	res, err := p.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("solve: %v %v", err, res.Status)
	}

	clone := res.Basis.Clone()
	if clone == res.Basis {
		t.Fatal("clone returned the same pointer")
	}
	if clone.NumVars() != res.Basis.NumVars() || clone.NumRows() != res.Basis.NumRows() {
		t.Fatal("clone changed shape")
	}
	// Seeding from the clone must warm-start identically to the original.
	q, _ := buildJobLP(jobs, jitterRHS(rng, rhs, 0.02))
	fromOrig, err := q.SolveFrom(res.Basis)
	if err != nil {
		t.Fatalf("from original: %v", err)
	}
	fromClone, err := q.SolveFrom(clone)
	if err != nil {
		t.Fatalf("from clone: %v", err)
	}
	if fromOrig.Status != fromClone.Status || fromOrig.WarmStarted != fromClone.WarmStarted {
		t.Fatalf("clone seeded differently: %v/%v vs %v/%v",
			fromOrig.Status, fromOrig.WarmStarted, fromClone.Status, fromClone.WarmStarted)
	}
	checkParity(t, "clone parity", fromClone, fromOrig)

	var nilBasis *Basis
	if nilBasis.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}
