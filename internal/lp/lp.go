// Package lp implements a dense two-phase primal simplex linear-program
// solver. It exists because Gavel expresses every scheduling policy as one or
// more linear programs, and the Go ecosystem has no standard-library LP
// solver; this package is the substrate for internal/policy and internal/milp.
//
// The solver handles problems of the form
//
//	minimize / maximize  c . x
//	subject to           a_i . x  (<= | >= | =)  b_i
//	                     x >= 0
//
// All variables are implicitly non-negative. Upper bounds (e.g. X_mj <= 1)
// should be expressed as explicit constraints when they are not already
// implied by aggregate constraints; Gavel's allocation programs imply them
// via the per-job time budget, so in practice few are needed.
//
// The implementation is a textbook tableau simplex: Dantzig (most negative
// reduced cost) pivoting with a switch to Bland's rule after a stall
// threshold to guarantee termination on degenerate programs, which the
// max-min fairness LPs frequently are.
package lp

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
)

// Engine selects the simplex implementation a Problem solves with.
type Engine int

const (
	// EngineAuto (the zero value) follows DefaultEngine.
	EngineAuto Engine = iota
	// Dense is the textbook two-phase tableau simplex: O(m·n) per pivot,
	// O(m·n) memory. It is kept as the reference oracle for the revised
	// engine and as the fallback when a factorization goes singular.
	Dense
	// Revised is the sparse revised simplex engine (revised.go): CSC
	// constraint storage, LU-factorized basis with eta updates, partial
	// pricing over sparse reduced costs. O(nnz + m) per pivot.
	Revised
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case Dense:
		return "dense"
	case Revised:
		return "revised"
	}
	return "unknown"
}

// DefaultEngine is the engine used by problems with no explicit engine set
// (SetEngine(EngineAuto)). It is initialized from GAVEL_LP_ENGINE ("dense"
// or "revised"); unset or unrecognized values select Revised.
var DefaultEngine = engineFromEnv()

func engineFromEnv() Engine {
	if strings.EqualFold(os.Getenv("GAVEL_LP_ENGINE"), "dense") {
		return Dense
	}
	return Revised
}

// Sense selects minimization or maximization of the objective.
type Sense int

const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint comparison operator.
type Op int

const (
	LE Op = iota // a.x <= b
	GE           // a.x >= b
	EQ           // a.x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is a single coefficient on a variable in a constraint or objective.
type Term struct {
	Var   int
	Coeff float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
	id    string // stable row identity for cross-shape basis remapping; "" = anonymous
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	sense   Sense
	obj     []float64
	names   []string
	cons    []constraint
	engine  Engine
	pricing Pricing
	presolv PresolveMode
	dual    DualMode
	ws      *Workspace
	// ub holds per-variable upper bounds on problems produced by presolve
	// (bound rows extracted into implicit bounds); nil on user-built
	// problems, whose bounds stay explicit rows. Entries are +Inf when
	// unbounded. Only the revised engine consumes it.
	ub []float64
	// noPresolve marks internally built reduced problems so the solve
	// dispatch never presolves a presolved problem.
	noPresolve bool
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// SetEngine selects the simplex implementation for this problem;
// EngineAuto (the default) follows the package-level DefaultEngine.
func (p *Problem) SetEngine(e Engine) { p.engine = e }

// SetPricing selects the revised engine's pricing rule for this problem;
// PricingAuto (the default) follows the package-level DefaultPricing.
func (p *Problem) SetPricing(r Pricing) { p.pricing = r }

// SetPresolve selects whether the solve runs the presolve pass;
// PresolveAuto (the default) follows the package-level DefaultPresolve.
func (p *Problem) SetPresolve(m PresolveMode) { p.presolv = m }

// SetDual selects whether seeded revised solves may repair primal
// infeasibility with the dual simplex; DualAuto (the default) follows the
// package-level DefaultDual.
func (p *Problem) SetDual(m DualMode) { p.dual = m }

// SetWorkspace attaches a reusable scratch arena. Solves through the revised
// engine draw every per-solve vector (FTRAN/BTRAN images, pricing weights,
// CSC slabs, factorization scratch) from it instead of allocating, so a
// caller solving in a loop — SolveContext, the simulator — pays near-zero
// allocation per solve. A Workspace is not safe for concurrent solves.
func (p *Problem) SetWorkspace(ws *Workspace) { p.ws = ws }

// resolveEngine returns the engine this problem will actually solve with.
func (p *Problem) resolveEngine() Engine {
	e := p.engine
	if e == EngineAuto {
		e = DefaultEngine
	}
	if e != Dense {
		e = Revised
	}
	return e
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar adds a non-negative variable with the given objective coefficient
// and returns its index.
func (p *Problem) AddVar(objCoeff float64, name string) int {
	p.obj = append(p.obj, objCoeff)
	p.names = append(p.names, name)
	return len(p.obj) - 1
}

// SetObj overrides the objective coefficient of variable v.
func (p *Problem) SetObj(v int, coeff float64) { p.obj[v] = coeff }

// AddObj accumulates delta into the objective coefficient of variable v.
func (p *Problem) AddObj(v int, delta float64) { p.obj[v] += delta }

// ObjCoeff returns the current objective coefficient of variable v.
func (p *Problem) ObjCoeff(v int) float64 { return p.obj[v] }

// AddConstraint adds the constraint sum(terms) op rhs. Terms referencing the
// same variable are accumulated.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	c := constraint{terms: make([]Term, len(terms)), op: op, rhs: rhs}
	copy(c.terms, terms)
	p.cons = append(p.cons, c)
}

// AddConstraintRow adds the constraint sum(terms) op rhs with a stable row
// identity. Row identities let Basis.Remap carry a row's state — which
// column its old counterpart hosted, and whether its slack was basic —
// across problems whose constraint sets differ (job arrival/departure), so
// the remapped seed reproduces the old vertex almost exactly instead of
// guessing. IDs must be unique within one problem; the empty ID is
// anonymous and never matches.
func (p *Problem) AddConstraintRow(terms []Term, op Op, rhs float64, id string) {
	p.AddConstraint(terms, op, rhs)
	p.cons[len(p.cons)-1].id = id
}

// Result holds the outcome of Solve.
type Result struct {
	Status     Status
	X          []float64
	Objective  float64
	Iterations int // simplex iterations across both phases
	Pivots     int // tableau pivot operations performed
	// Basis snapshots the optimal basis for warm-starting a subsequent
	// solve of a same-shaped problem via SolveFrom; nil unless Optimal.
	Basis *Basis
	// WarmStarted reports whether this solve was seeded from a previous
	// basis (false when SolveFrom fell back to the cold two-phase path).
	WarmStarted bool
	// Remapped reports whether the seed came from a basis remapped across a
	// shape change (SolveFromMapped); implies WarmStarted.
	Remapped bool
	// Engine reports which simplex implementation produced this result;
	// Dense when the revised engine was selected but fell back.
	Engine Engine
	// PresolveReductions counts the presolve pass's reductions on this
	// solve: rows removed, columns fixed, and bounds extracted or
	// tightened. Zero when presolve found nothing or was disabled.
	PresolveReductions int
	// DualIterations counts simplex iterations performed by the dual
	// simplex repair of a warm-started basis; those iterations are also
	// included in Iterations.
	DualIterations int
	// Refactorizations counts basis LU refactorizations the revised
	// engine performed after its initial factorization (eta-file resets
	// and post-polish refreshes). Always zero on the dense path.
	Refactorizations int
}

// Basis is an opaque snapshot of a simplex basis, tied to the shape of the
// problem that produced it: the structural variable count and the
// (normalized) constraint operator sequence, which together fix the
// slack-column layout. SolveFrom rejects a basis whose shape does not match
// the problem being solved and falls back to a cold solve.
type Basis struct {
	numVars int
	ops     []Op     // normalized (rhs >= 0) constraint ops, in order
	cols    []int    // basic column per row; -1 for dropped redundant rows
	rowIDs  []string // stable row identities ("" = anonymous), in order
	// atUpper lists structural variables that are nonbasic at their
	// presolve-derived upper bound (ascending). A bounded-variable vertex
	// is (basis, bound-status) jointly; without this list a seeded solve
	// would place every nonbasic variable at zero and have to repair the
	// difference. Engines without bound support ignore it.
	atUpper []int
	// polished marks a basis that reproduces the revised engine's
	// canonical (vertex-polished) optimum and is dual feasible, so a
	// seeded re-solve that needs no pivots can skip re-canonicalizing.
	polished bool
}

// NumVars returns the structural variable count the basis was built for.
func (b *Basis) NumVars() int { return b.numVars }

// NumRows returns the constraint-row count the basis was built for.
func (b *Basis) NumRows() int {
	if b == nil {
		return 0
	}
	return len(b.ops)
}

// Clone returns an independent deep copy of the basis. Solvers never mutate
// a snapshot they were seeded from, but a clone is what lets two solve
// contexts — e.g. the source and destination shards of a job migration —
// hold the same seed without sharing any state across goroutines. Cloning
// nil yields nil.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		numVars:  b.numVars,
		ops:      append([]Op(nil), b.ops...),
		cols:     append([]int(nil), b.cols...),
		rowIDs:   append([]string(nil), b.rowIDs...),
		atUpper:  append([]int(nil), b.atUpper...),
		polished: b.polished,
	}
}

// ColumnID is a stable, caller-chosen identity for a structural variable,
// used to carry a basis across problems whose variable sets differ (job
// arrival/departure in Gavel's allocation LPs). Callers must keep IDs unique
// within one problem; the empty ID never matches anything.
type ColumnID string

// MappedBasis is a shape-independent projection of a Basis onto a new
// column universe: the basic structural columns whose identities survive the
// job-set change (expressed as indices into the target problem, each with
// the identity of the row that hosted it), plus the identities of the rows
// whose slack column was basic. Build one with Basis.Remap and solve with
// Problem.SolveFromMapped. Departed structural columns are dropped; the
// mapped solve pins every surviving column and slack back to its old row
// where possible, completes the rest greedily, and repairs any lost primal
// feasibility with a phase-1-lite pass over just the violated rows — so a
// mapping can only change speed, never the solution.
type MappedBasis struct {
	numVars   int      // structural variable count of the target problem
	cands     []int    // surviving basic structural columns (target indices)
	candRows  []string // parallel: identity of the old host row ("" = greedy)
	slackRows []string // identities of rows whose own slack was basic
	uppers    []int    // surviving nonbasic-at-upper columns (target indices)
}

// NumCandidates returns how many columns survived the remap with their basis
// status intact: basic structural columns plus nonbasic-at-upper columns (a
// job pinned at its cap carries just as much warm-start information as a
// basic one).
func (mb *MappedBasis) NumCandidates() int {
	if mb == nil {
		return 0
	}
	return len(mb.cands) + len(mb.uppers)
}

// Remap projects the basis onto a problem with a different column set.
// oldCols names the structural variables of the problem that produced b (in
// variable order, len == b.NumVars()); newCols names the target problem's
// variables. Basic structural columns whose ID appears in newCols survive
// (departing jobs' columns are dropped); basic slacks are dropped — the
// mapped solve re-derives them from the target's own constraint rows.
// Returns nil when b is nil or oldCols does not match b's shape; a nil
// MappedBasis makes SolveFromMapped run the cold path.
func (b *Basis) Remap(oldCols, newCols []ColumnID) *MappedBasis {
	if b == nil || len(oldCols) != b.numVars {
		return nil
	}
	idx := make(map[ColumnID]int, len(newCols))
	for j, id := range newCols {
		if id != "" {
			idx[id] = j
		}
	}
	// Reconstruct which row each slack column belongs to (slack indices are
	// assigned in row order over the LE/GE rows).
	slackOwner := make(map[int]int)
	slackAt := b.numVars
	for i, op := range b.ops {
		if op == LE || op == GE {
			slackOwner[slackAt] = i
			slackAt++
		}
	}
	rowID := func(i int) string {
		if i < len(b.rowIDs) {
			return b.rowIDs[i]
		}
		return ""
	}
	seen := make(map[int]bool)
	mb := &MappedBasis{numVars: len(newCols)}
	for hostRow, c := range b.cols {
		switch {
		case c < 0:
			// Dropped redundant row: nothing to carry.
		case c < b.numVars:
			if j, ok := idx[oldCols[c]]; ok && !seen[j] {
				seen[j] = true
				mb.cands = append(mb.cands, j)
				mb.candRows = append(mb.candRows, rowID(hostRow))
			}
		default:
			// Basic slack: carry the identity of the row OWNING the slack
			// (the non-binding constraint), not the row hosting it — the
			// basic set, not the hosting assignment, determines the vertex.
			if owner, ok := slackOwner[c]; ok {
				if id := rowID(owner); id != "" {
					mb.slackRows = append(mb.slackRows, id)
				}
			}
		}
	}
	// Nonbasic-at-upper survivors keep their bound status so the mapped
	// vertex starts as close to the old one as the new bounds allow.
	for _, c := range b.atUpper {
		if c < 0 || c >= len(oldCols) {
			continue
		}
		if j, ok := idx[oldCols[c]]; ok && !seen[j] {
			mb.uppers = append(mb.uppers, j)
		}
	}
	return mb
}

// compatible reports whether the basis can seed a problem with the given
// structural variable count and normalized op sequence.
func (b *Basis) compatible(n int, ops []Op) bool {
	if b == nil || b.numVars != n || len(b.ops) != len(ops) {
		return false
	}
	for i, op := range ops {
		if b.ops[i] != op {
			return false
		}
	}
	return true
}

// ErrBadProblem reports a structurally invalid problem (e.g. a term
// referencing an unknown variable).
var ErrBadProblem = errors.New("lp: malformed problem")

const (
	eps = 1e-9
	// stallFactor * (rows+cols) Dantzig iterations before switching to
	// Bland's rule; hardFactor * (rows+cols) before giving up entirely.
	stallFactor = 20
	hardFactor  = 400
)

// Solve runs two-phase primal simplex and returns the result. The returned
// error is non-nil only for malformed problems; infeasibility and
// unboundedness are reported via Result.Status.
func (p *Problem) Solve() (*Result, error) { return p.solve(nil, nil) }

// SolveFrom solves the problem seeded from a previous optimal basis,
// skipping phase 1 entirely when the basis is still primal feasible. The
// basis must come from a problem of the same shape (variable count and
// constraint operator sequence); on a shape mismatch, a singular or
// primal-infeasible seed, or numerical trouble, it falls back to the cold
// two-phase path. Result.WarmStarted reports which path ran.
func (p *Problem) SolveFrom(prev *Basis) (*Result, error) { return p.solve(prev, nil) }

// SolveFromMapped solves the problem seeded from a basis remapped across a
// shape change (Basis.Remap): surviving structural columns are made basic
// first, every remaining row is completed with its own slack, and lost
// primal feasibility is repaired with dual simplex pivots before the primal
// cleanup. An unusable mapping (nil, no surviving columns, singular seed,
// unrepairable row, iteration cap) falls back to the cold two-phase path, so
// correctness never depends on the mapping. Result.Remapped reports whether
// the mapped seed was used.
func (p *Problem) SolveFromMapped(mb *MappedBasis) (*Result, error) { return p.solve(nil, mb) }

func (p *Problem) solve(prev *Basis, mapped *MappedBasis) (*Result, error) {
	n := len(p.obj)
	for _, c := range p.cons {
		for _, t := range c.terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("%w: term references variable %d of %d", ErrBadProblem, t.Var, n)
			}
		}
	}
	engine := p.resolveEngine()
	if !p.noPresolve && p.resolvePresolve() == PresolveOn {
		if ps := newPresolve(p, engine == Revised); ps != nil {
			if res, ok := ps.run(prev, mapped, engine); ok {
				return res, nil
			}
			// The presolved path could not certify its answer (the reduced
			// solve bailed); retry on the raw problem below — with explicit
			// bound rows back in place, so the dense oracle needs no bound
			// support.
		}
	}
	if engine == Revised {
		if res, ok := p.solveRevised(prev, mapped); ok {
			res.Engine = Revised
			return res, nil
		}
		// The revised engine hit something it cannot certify — a singular
		// factorization repair could not fix, a stuck pivot, a verification
		// loop that failed to converge. The dense tableau is the oracle of
		// last resort, so selecting Revised changes only speed, never
		// correctness.
	}
	res, err := p.solveDense(prev, mapped)
	if res != nil {
		res.Engine = Dense
	}
	return res, err
}

// solveDense is the original dense-tableau two-phase simplex path.
func (p *Problem) solveDense(prev *Basis, mapped *MappedBasis) (*Result, error) {
	n := len(p.obj)
	m := len(p.cons)

	// Normalize rows so rhs >= 0 and count auxiliary columns.
	rows := make([][]float64, m)
	ops := make([]Op, m)
	rhs := make([]float64, m)
	nSlack, nArt := 0, 0
	for i, c := range p.cons {
		row := make([]float64, n)
		for _, t := range c.terms {
			row[t.Var] += t.Coeff
		}
		b := c.rhs
		op := c.op
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i], ops[i], rhs[i] = row, op, b
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	if prev.compatible(n, ops) {
		if res, ok := p.warmSolve(rows, rhs, nSlack, prev); ok {
			return res, nil
		}
	} else if mapped != nil && mapped.numVars == n && len(mapped.cands) > 0 {
		if res, ok := p.mappedSolve(rows, ops, rhs, nSlack, mapped); ok {
			return res, nil
		}
	}

	total := n + nSlack + nArt
	// tab is the m x (total+1) tableau; last column is the rhs.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt, artAt := n, n+nSlack
	artCols := make([]int, 0, nArt)
	for i := 0; i < m; i++ {
		r := make([]float64, total+1)
		copy(r, rows[i])
		r[total] = rhs[i]
		switch ops[i] {
		case LE:
			r[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			r[slackAt] = -1
			slackAt++
			r[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			r[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		tab[i] = r
	}

	iterations := 0
	pivots := 0

	// Phase 1: drive artificials to zero.
	if nArt > 0 {
		cost := make([]float64, total+1)
		for _, j := range artCols {
			cost[j] = 1
		}
		canonicalize(cost, tab, basis)
		st, it := simplexIterate(tab, basis, cost, nil)
		iterations += it
		pivots += it
		if st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here
			// means numerical trouble. Treat as infeasible.
			return &Result{Status: Infeasible, Iterations: iterations, Pivots: pivots}, nil
		}
		if st == IterationLimit {
			return &Result{Status: IterationLimit, Iterations: iterations, Pivots: pivots}, nil
		}
		if -cost[total] > 1e-7 {
			return &Result{Status: Infeasible, Iterations: iterations, Pivots: pivots}, nil
		}
		// Drive remaining basic artificials out or drop their rows.
		isArt := make([]bool, total)
		for _, j := range artCols {
			isArt[j] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it never constrains again.
				for j := range tab[i] {
					tab[i][j] = 0
				}
				basis[i] = -1
			}
		}
		// Forbid artificial columns from ever re-entering.
		for i := range tab {
			for _, j := range artCols {
				tab[i][j] = 0
			}
		}
	}

	// Phase 2 cost vector (internally minimize).
	cost := make([]float64, total+1)
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			cost[j] = -p.obj[j]
		} else {
			cost[j] = p.obj[j]
		}
	}
	forbidden := make([]bool, total)
	for _, j := range artCols {
		forbidden[j] = true
	}
	canonicalize(cost, tab, basis)
	st, it := simplexIterate(tab, basis, cost, forbidden)
	iterations += it
	pivots += it
	if st != Optimal {
		return &Result{Status: st, Iterations: iterations, Pivots: pivots}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	return &Result{
		Status: Optimal, X: x, Objective: obj,
		Iterations: iterations, Pivots: pivots,
		Basis: p.snapshotBasis(ops, basis),
	}, nil
}

// snapshotBasis records the final basis for warm starts. Bases referencing
// artificial columns never occur here: phase 1 drives artificials out of the
// basis or drops their rows (basis entry -1).
func (p *Problem) snapshotBasis(ops []Op, basis []int) *Basis {
	ids := make([]string, len(p.cons))
	for i, c := range p.cons {
		ids[i] = c.id
	}
	return &Basis{
		numVars: len(p.obj),
		ops:     append([]Op(nil), ops...),
		cols:    append([]int(nil), basis...),
		rowIDs:  ids,
	}
}

// warmPivotTol is the minimum pivot magnitude accepted when re-factorizing a
// seeded basis; anything smaller is treated as singular.
const warmPivotTol = 1e-9

// warmSolve attempts a phase-2-only solve from the previous basis: rebuild
// the slack-form tableau, make the seeded columns basic by Gauss-Jordan
// elimination (with row swaps for stability), and — if the resulting basic
// solution is primal feasible — iterate to optimality from there. Returns
// ok=false when the seed is unusable and the caller must run cold.
func (p *Problem) warmSolve(rows [][]float64, rhs []float64, nSlack int, prev *Basis) (*Result, bool) {
	n := len(p.obj)
	m := len(rows)
	total := n + nSlack
	for _, c := range prev.cols {
		// -1 marks a row the previous solve dropped as redundant; its basis
		// carries no usable column for that row, so start over cold.
		if c < 0 || c >= total {
			return nil, false
		}
	}

	tab := make([][]float64, m)
	slackAt := n
	for i := range rows {
		r := make([]float64, total+1)
		copy(r, rows[i])
		r[total] = rhs[i]
		switch prev.ops[i] {
		case LE:
			r[slackAt] = 1
			slackAt++
		case GE:
			r[slackAt] = -1
			slackAt++
		}
		tab[i] = r
	}

	// Re-factorize: make prev.cols[i] basic in row i, swapping in the
	// largest-magnitude row each step. rowOrder tracks which original
	// constraint row ends up at each tableau position, so the snapshot can
	// pair basic columns with their true host rows (Remap pins by row
	// identity; recording against post-swap positions would pin survivors
	// to the wrong rows after the next job churn).
	basis := make([]int, m)
	rowOrder := make([]int, m)
	for i := range rowOrder {
		rowOrder[i] = i
	}
	pivots := 0
	for i, col := range prev.cols {
		best, bestAbs := -1, warmPivotTol
		for r := i; r < m; r++ {
			if a := math.Abs(tab[r][col]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return nil, false // singular under this problem's coefficients
		}
		tab[i], tab[best] = tab[best], tab[i]
		rowOrder[i], rowOrder[best] = rowOrder[best], rowOrder[i]
		pivot(tab, basis, i, col)
		pivots++
	}

	return p.finishSeeded(tab, basis, pivots, 0, total, nil, prev.ops, false, rowOrder)
}

// mappedSolve attempts a seeded solve from a basis remapped across a shape
// change: rebuild the slack-form tableau, pin the surviving basic slacks
// and structural columns back to the rows that hosted them (identified by
// stable row IDs; greedy placement for anything whose host departed),
// complete uncovered rows with their own slack or their largest remaining
// nonbasic column (EQ rows, dead pivots), repair the leftover primal
// infeasibility with a phase-1-lite pass over just the violated rows, and
// hand off to the shared primal-cleanup tail. Returns ok=false when the
// seed is unusable and the caller must run cold.
func (p *Problem) mappedSolve(rows [][]float64, ops []Op, rhs []float64, nSlack int, mb *MappedBasis) (*Result, bool) {
	n := len(p.obj)
	m := len(rows)
	total := n + nSlack

	tab := make([][]float64, m)
	slackOf := make([]int, m) // each row's own slack column; -1 for EQ rows
	slackAt := n
	for i := range rows {
		r := make([]float64, total+1)
		copy(r, rows[i])
		r[total] = rhs[i]
		slackOf[i] = -1
		switch ops[i] {
		case LE:
			r[slackAt] = 1
			slackOf[i] = slackAt
			slackAt++
		case GE:
			r[slackAt] = -1
			slackOf[i] = slackAt
			slackAt++
		}
		tab[i] = r
	}

	rowAt := make(map[string]int, m)
	for i, c := range p.cons {
		if c.id != "" {
			rowAt[c.id] = i
		}
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = -1
	}
	inBasis := make([]bool, total)
	pivots := 0

	// 1. Pin basic slacks to their own rows first: a slack column is
	// nonzero only in its own row until that row pivots, so these pivots
	// are exact (|entry| = 1) and cannot conflict with anything.
	for _, id := range mb.slackRows {
		i, ok := rowAt[id]
		if !ok || basis[i] != -1 {
			continue // the non-binding row departed with its job
		}
		col := slackOf[i]
		if col < 0 || inBasis[col] || math.Abs(tab[i][col]) <= warmPivotTol {
			continue
		}
		pivot(tab, basis, i, col)
		inBasis[col] = true
		pivots++
	}

	// 2. Pin surviving structural columns to the rows that hosted them in
	// the old basis; columns whose host row departed (or went numerically
	// dead under the new coefficients) fall back to the best remaining row.
	var loose []int
	for k, col := range mb.cands {
		if col < 0 || col >= n {
			return nil, false
		}
		if inBasis[col] {
			continue
		}
		if i, ok := rowAt[mb.candRows[k]]; ok && basis[i] == -1 && math.Abs(tab[i][col]) > warmPivotTol {
			pivot(tab, basis, i, col)
			inBasis[col] = true
			pivots++
			continue
		}
		loose = append(loose, col)
	}
	for _, col := range loose {
		best, bestAbs := -1, warmPivotTol
		for i := 0; i < m; i++ {
			if basis[i] != -1 {
				continue
			}
			if a := math.Abs(tab[i][col]); a > bestAbs {
				best, bestAbs = i, a
			}
		}
		if best < 0 {
			continue // column unusable under the new coefficients; skip it
		}
		pivot(tab, basis, best, col)
		inBasis[col] = true
		pivots++
	}

	// 3. Complete the basis: uncovered rows (arrived jobs' rows, dead
	// pins) take their own slack, or their largest remaining nonbasic
	// column (EQ rows, eliminated slacks).
	for i := 0; i < m; i++ {
		if basis[i] != -1 {
			continue
		}
		col := slackOf[i]
		if col < 0 || inBasis[col] || math.Abs(tab[i][col]) <= warmPivotTol {
			col = -1
			bestAbs := warmPivotTol
			for j := 0; j < total; j++ {
				if inBasis[j] {
					continue
				}
				if a := math.Abs(tab[i][j]); a > bestAbs {
					col, bestAbs = j, a
				}
			}
			if col < 0 {
				return nil, false // dead row: let the cold path sort it out
			}
		}
		pivot(tab, basis, i, col)
		inBasis[col] = true
		pivots++
	}

	// A remapped vertex can be materially primal infeasible — the job-set
	// change moves many binding rows at once, and dual simplex repair
	// zigzags badly on that (observed: 2x a cold solve at 512 jobs). Run a
	// phase-1-lite instead: artificial columns on just the violated rows,
	// minimized to zero starting from the seeded basis, so repair work
	// scales with the actual damage rather than the problem size. The
	// shape-preserving warm path keeps dual repair, whose violations are
	// small and local.
	var viol []int
	for i := range tab {
		if tab[i][total] < -1e-9 {
			viol = append(viol, i)
		}
	}
	var forbidden []bool
	repairIters := 0
	if len(viol) > 0 {
		wide := total + len(viol)
		for i := range tab {
			r := make([]float64, wide+1)
			copy(r, tab[i][:total])
			r[wide] = tab[i][total]
			tab[i] = r
		}
		for vi, i := range viol {
			// Flip the row (an equality in slack form, so the system is
			// unchanged) to make its new artificial basic at a positive
			// value, displacing whichever column was basic there.
			row := tab[i]
			for j := range row {
				row[j] = -row[j]
			}
			row[total+vi] = 1
			basis[i] = total + vi
		}
		cost1 := make([]float64, wide+1)
		for vi := range viol {
			cost1[total+vi] = 1
		}
		canonicalize(cost1, tab, basis)
		st, it := simplexIterate(tab, basis, cost1, nil)
		repairIters = it
		if st == Unbounded || st == IterationLimit {
			return nil, false
		}
		if -cost1[wide] > 1e-7 {
			// Phase 1 bottomed out above zero: the problem is infeasible,
			// the same verdict the cold path's full phase 1 would reach.
			return &Result{Status: Infeasible, Iterations: repairIters, Pivots: pivots + repairIters, WarmStarted: true, Remapped: true}, true
		}
		// Drive remaining basic artificials out or drop their rows, then
		// retire the artificial columns for phase 2.
		for i := 0; i < m; i++ {
			if basis[i] < total {
				continue
			}
			pivoted := false
			for j := 0; j < total; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				for j := range tab[i] {
					tab[i][j] = 0
				}
				basis[i] = -1
			}
		}
		for i := range tab {
			for vi := range viol {
				tab[i][total+vi] = 0
			}
		}
		forbidden = make([]bool, wide)
		for vi := range viol {
			forbidden[total+vi] = true
		}
		total = wide
	}

	return p.finishSeeded(tab, basis, pivots, repairIters, total, forbidden, ops, true, nil)
}

// finishSeeded completes a seeded solve once every row has a basic column:
// canonicalize the phase-2 cost row, repair any remaining primal
// infeasibility with dual simplex pivots — on the shape-preserving warm path
// a reset moves the binding constraints slightly, which is exactly the case
// dual simplex fixes cheaply; the mapped path arrives here already feasible
// after its phase-1-lite repair (preIters, with its artificial columns
// marked in forbidden) — and run primal iterations to optimality. rowOrder
// maps tableau positions to original constraint rows (nil = identity) so
// the snapshot records each basic column against its true host row.
// Returns ok=false when the seed must be abandoned for the cold path.
func (p *Problem) finishSeeded(tab [][]float64, basis []int, pivots, preIters, total int, forbidden []bool, ops []Op, remapped bool, rowOrder []int) (*Result, bool) {
	n := len(p.obj)
	cost := make([]float64, total+1)
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			cost[j] = -p.obj[j]
		} else {
			cost[j] = p.obj[j]
		}
	}
	canonicalize(cost, tab, basis)

	dualIters := 0
	if !primalFeasible(tab, total) {
		ok := false
		ok, dualIters = dualRestore(tab, basis, cost)
		if !ok {
			return nil, false
		}
	}
	for i := range tab {
		if tab[i][total] < 0 {
			tab[i][total] = 0 // clamp roundoff so the ratio test stays sane
		}
	}

	st, it := simplexIterate(tab, basis, cost, forbidden)
	if st == IterationLimit {
		// Let the cold path retry with fresh anti-cycling state.
		return nil, false
	}
	iters := preIters + dualIters + it
	res := &Result{Status: st, Iterations: iters, Pivots: pivots + iters, WarmStarted: true, Remapped: remapped}
	if st != Optimal {
		return res, true // genuinely unbounded from a feasible basis
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	res.X, res.Objective = x, obj
	snapBasis := basis
	if rowOrder != nil {
		snapBasis = make([]int, len(basis))
		for i, b := range basis {
			snapBasis[rowOrder[i]] = b
		}
	}
	res.Basis = p.snapshotBasis(ops, snapBasis)
	return res, true
}

// primalFeasible reports whether every rhs entry is non-negative (within
// tolerance).
func primalFeasible(tab [][]float64, total int) bool {
	for i := range tab {
		if tab[i][total] < -1e-9 {
			return false
		}
	}
	return true
}

// dualRestore runs dual simplex pivots until the basic solution is primal
// feasible again: each iteration drives out the most-negative-rhs row,
// entering the column that (approximately) least degrades the objective.
// Reduced costs may be slightly dual infeasible after an objective
// perturbation — negative entries are clamped to zero in the ratio test, and
// the primal cleanup pass that follows restores exact optimality, so this
// phase only needs to terminate, not to be optimal. Returns ok=false when a
// row cannot be repaired (primal infeasible) or the iteration cap is hit.
func dualRestore(tab [][]float64, basis []int, cost []float64) (bool, int) {
	m := len(tab)
	if m == 0 {
		return true, 0
	}
	total := len(cost) - 1
	cap := stallFactor * (m + total)
	if cap < 500 {
		cap = 500
	}
	for it := 0; it < cap; it++ {
		leave, worst := -1, -1e-9
		for i := 0; i < m; i++ {
			if b := tab[i][total]; b < worst {
				leave, worst = i, b
			}
		}
		if leave == -1 {
			return true, it
		}
		enter := -1
		var bestRatio float64
		row := tab[leave]
		for j := 0; j < total; j++ {
			a := row[j]
			if a >= -eps {
				continue
			}
			c := cost[j]
			if c < 0 {
				c = 0
			}
			r := c / -a
			if enter == -1 || r < bestRatio-eps || (r < bestRatio+eps && j < enter) {
				enter, bestRatio = j, r
			}
		}
		if enter == -1 {
			return false, it // row has no negative entry: primal infeasible
		}
		pivot(tab, basis, leave, enter)
		if f := cost[enter]; f != 0 {
			prow := tab[leave]
			for j := range cost {
				cost[j] -= f * prow[j]
			}
		}
	}
	return false, cap
}

// canonicalize subtracts multiples of the basic rows from cost so every
// basic column has zero reduced cost. cost[last] accumulates -objective.
func canonicalize(cost []float64, tab [][]float64, basis []int) {
	for i, b := range basis {
		if b < 0 {
			continue
		}
		f := cost[b]
		if f == 0 {
			continue
		}
		row := tab[i]
		for j := range cost {
			cost[j] -= f * row[j]
		}
	}
}

// simplexIterate runs primal simplex iterations on the canonical tableau
// until optimality, unboundedness, or the iteration cap. forbidden marks
// columns (artificials) that may never enter the basis.
func simplexIterate(tab [][]float64, basis []int, cost []float64, forbidden []bool) (Status, int) {
	m := len(tab)
	if m == 0 {
		return Optimal, 0
	}
	total := len(cost) - 1
	stall := stallFactor * (m + total)
	hard := hardFactor * (m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		bland := it >= stall
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if forbidden != nil && forbidden[j] {
				continue
			}
			if cost[j] < best {
				if bland {
					enter = j
					break
				}
				best = cost[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal, it
		}
		// Ratio test; break ties by smallest basis index (lexicographic-ish
		// anti-cycling support for the Bland phase).
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			r := tab[i][total] / a
			if leave == -1 || r < bestRatio-eps || (r < bestRatio+eps && basis[i] < basis[leave]) {
				leave, bestRatio = i, r
			}
		}
		if leave == -1 {
			return Unbounded, it
		}
		pivot(tab, basis, leave, enter)
		// Keep cost row canonical.
		f := cost[enter]
		if f != 0 {
			row := tab[leave]
			for j := range cost {
				cost[j] -= f * row[j]
			}
		}
	}
	return IterationLimit, hard
}

// pivot makes column col basic in row r.
func pivot(tab [][]float64, basis []int, r, col int) {
	prow := tab[r]
	inv := 1.0 / prow[col]
	for j := range prow {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		row := tab[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[col] = 0 // exact
	}
	basis[r] = col
}
