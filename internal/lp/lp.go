// Package lp implements a dense two-phase primal simplex linear-program
// solver. It exists because Gavel expresses every scheduling policy as one or
// more linear programs, and the Go ecosystem has no standard-library LP
// solver; this package is the substrate for internal/policy and internal/milp.
//
// The solver handles problems of the form
//
//	minimize / maximize  c . x
//	subject to           a_i . x  (<= | >= | =)  b_i
//	                     x >= 0
//
// All variables are implicitly non-negative. Upper bounds (e.g. X_mj <= 1)
// should be expressed as explicit constraints when they are not already
// implied by aggregate constraints; Gavel's allocation programs imply them
// via the per-job time budget, so in practice few are needed.
//
// The implementation is a textbook tableau simplex: Dantzig (most negative
// reduced cost) pivoting with a switch to Bland's rule after a stall
// threshold to guarantee termination on degenerate programs, which the
// max-min fairness LPs frequently are.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense selects minimization or maximization of the objective.
type Sense int

const (
	Minimize Sense = iota
	Maximize
)

// Op is a constraint comparison operator.
type Op int

const (
	LE Op = iota // a.x <= b
	GE           // a.x >= b
	EQ           // a.x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	}
	return "?"
}

// Status reports the outcome of a solve.
type Status int

const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Term is a single coefficient on a variable in a constraint or objective.
type Term struct {
	Var   int
	Coeff float64
}

type constraint struct {
	terms []Term
	op    Op
	rhs   float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create one with NewProblem.
type Problem struct {
	sense Sense
	obj   []float64
	names []string
	cons  []constraint
}

// NewProblem returns an empty problem with the given objective sense.
func NewProblem(sense Sense) *Problem {
	return &Problem{sense: sense}
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar adds a non-negative variable with the given objective coefficient
// and returns its index.
func (p *Problem) AddVar(objCoeff float64, name string) int {
	p.obj = append(p.obj, objCoeff)
	p.names = append(p.names, name)
	return len(p.obj) - 1
}

// SetObj overrides the objective coefficient of variable v.
func (p *Problem) SetObj(v int, coeff float64) { p.obj[v] = coeff }

// AddObj accumulates delta into the objective coefficient of variable v.
func (p *Problem) AddObj(v int, delta float64) { p.obj[v] += delta }

// ObjCoeff returns the current objective coefficient of variable v.
func (p *Problem) ObjCoeff(v int) float64 { return p.obj[v] }

// AddConstraint adds the constraint sum(terms) op rhs. Terms referencing the
// same variable are accumulated.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64) {
	c := constraint{terms: make([]Term, len(terms)), op: op, rhs: rhs}
	copy(c.terms, terms)
	p.cons = append(p.cons, c)
}

// Result holds the outcome of Solve.
type Result struct {
	Status     Status
	X          []float64
	Objective  float64
	Iterations int // simplex iterations across both phases
	Pivots     int // tableau pivot operations performed
	// Basis snapshots the optimal basis for warm-starting a subsequent
	// solve of a same-shaped problem via SolveFrom; nil unless Optimal.
	Basis *Basis
	// WarmStarted reports whether this solve was seeded from a previous
	// basis (false when SolveFrom fell back to the cold two-phase path).
	WarmStarted bool
}

// Basis is an opaque snapshot of a simplex basis, tied to the shape of the
// problem that produced it: the structural variable count and the
// (normalized) constraint operator sequence, which together fix the
// slack-column layout. SolveFrom rejects a basis whose shape does not match
// the problem being solved and falls back to a cold solve.
type Basis struct {
	numVars int
	ops     []Op  // normalized (rhs >= 0) constraint ops, in order
	cols    []int // basic column per row; -1 for dropped redundant rows
}

// NumVars returns the structural variable count the basis was built for.
func (b *Basis) NumVars() int { return b.numVars }

// compatible reports whether the basis can seed a problem with the given
// structural variable count and normalized op sequence.
func (b *Basis) compatible(n int, ops []Op) bool {
	if b == nil || b.numVars != n || len(b.ops) != len(ops) {
		return false
	}
	for i, op := range ops {
		if b.ops[i] != op {
			return false
		}
	}
	return true
}

// ErrBadProblem reports a structurally invalid problem (e.g. a term
// referencing an unknown variable).
var ErrBadProblem = errors.New("lp: malformed problem")

const (
	eps = 1e-9
	// stallFactor * (rows+cols) Dantzig iterations before switching to
	// Bland's rule; hardFactor * (rows+cols) before giving up entirely.
	stallFactor = 20
	hardFactor  = 400
)

// Solve runs two-phase primal simplex and returns the result. The returned
// error is non-nil only for malformed problems; infeasibility and
// unboundedness are reported via Result.Status.
func (p *Problem) Solve() (*Result, error) { return p.solve(nil) }

// SolveFrom solves the problem seeded from a previous optimal basis,
// skipping phase 1 entirely when the basis is still primal feasible. The
// basis must come from a problem of the same shape (variable count and
// constraint operator sequence); on a shape mismatch, a singular or
// primal-infeasible seed, or numerical trouble, it falls back to the cold
// two-phase path. Result.WarmStarted reports which path ran.
func (p *Problem) SolveFrom(prev *Basis) (*Result, error) { return p.solve(prev) }

func (p *Problem) solve(prev *Basis) (*Result, error) {
	n := len(p.obj)
	m := len(p.cons)
	for _, c := range p.cons {
		for _, t := range c.terms {
			if t.Var < 0 || t.Var >= n {
				return nil, fmt.Errorf("%w: term references variable %d of %d", ErrBadProblem, t.Var, n)
			}
		}
	}

	// Normalize rows so rhs >= 0 and count auxiliary columns.
	rows := make([][]float64, m)
	ops := make([]Op, m)
	rhs := make([]float64, m)
	nSlack, nArt := 0, 0
	for i, c := range p.cons {
		row := make([]float64, n)
		for _, t := range c.terms {
			row[t.Var] += t.Coeff
		}
		b := c.rhs
		op := c.op
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i], ops[i], rhs[i] = row, op, b
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}

	if prev.compatible(n, ops) {
		if res, ok := p.warmSolve(rows, rhs, nSlack, prev); ok {
			return res, nil
		}
	}

	total := n + nSlack + nArt
	// tab is the m x (total+1) tableau; last column is the rhs.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackAt, artAt := n, n+nSlack
	artCols := make([]int, 0, nArt)
	for i := 0; i < m; i++ {
		r := make([]float64, total+1)
		copy(r, rows[i])
		r[total] = rhs[i]
		switch ops[i] {
		case LE:
			r[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			r[slackAt] = -1
			slackAt++
			r[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		case EQ:
			r[artAt] = 1
			basis[i] = artAt
			artCols = append(artCols, artAt)
			artAt++
		}
		tab[i] = r
	}

	iterations := 0
	pivots := 0

	// Phase 1: drive artificials to zero.
	if nArt > 0 {
		cost := make([]float64, total+1)
		for _, j := range artCols {
			cost[j] = 1
		}
		canonicalize(cost, tab, basis)
		st, it := simplexIterate(tab, basis, cost, nil)
		iterations += it
		pivots += it
		if st == Unbounded {
			// Phase-1 objective is bounded below by 0; unbounded here
			// means numerical trouble. Treat as infeasible.
			return &Result{Status: Infeasible, Iterations: iterations, Pivots: pivots}, nil
		}
		if st == IterationLimit {
			return &Result{Status: IterationLimit, Iterations: iterations, Pivots: pivots}, nil
		}
		if -cost[total] > 1e-7 {
			return &Result{Status: Infeasible, Iterations: iterations, Pivots: pivots}, nil
		}
		// Drive remaining basic artificials out or drop their rows.
		isArt := make([]bool, total)
		for _, j := range artCols {
			isArt[j] = true
		}
		for i := 0; i < m; i++ {
			if !isArt[basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it never constrains again.
				for j := range tab[i] {
					tab[i][j] = 0
				}
				basis[i] = -1
			}
		}
		// Forbid artificial columns from ever re-entering.
		for i := range tab {
			for _, j := range artCols {
				tab[i][j] = 0
			}
		}
	}

	// Phase 2 cost vector (internally minimize).
	cost := make([]float64, total+1)
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			cost[j] = -p.obj[j]
		} else {
			cost[j] = p.obj[j]
		}
	}
	forbidden := make([]bool, total)
	for _, j := range artCols {
		forbidden[j] = true
	}
	canonicalize(cost, tab, basis)
	st, it := simplexIterate(tab, basis, cost, forbidden)
	iterations += it
	pivots += it
	if st != Optimal {
		return &Result{Status: st, Iterations: iterations, Pivots: pivots}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	return &Result{
		Status: Optimal, X: x, Objective: obj,
		Iterations: iterations, Pivots: pivots,
		Basis: p.snapshotBasis(ops, basis),
	}, nil
}

// snapshotBasis records the final basis for warm starts. Bases referencing
// artificial columns never occur here: phase 1 drives artificials out of the
// basis or drops their rows (basis entry -1).
func (p *Problem) snapshotBasis(ops []Op, basis []int) *Basis {
	return &Basis{
		numVars: len(p.obj),
		ops:     append([]Op(nil), ops...),
		cols:    append([]int(nil), basis...),
	}
}

// warmPivotTol is the minimum pivot magnitude accepted when re-factorizing a
// seeded basis; anything smaller is treated as singular.
const warmPivotTol = 1e-9

// warmSolve attempts a phase-2-only solve from the previous basis: rebuild
// the slack-form tableau, make the seeded columns basic by Gauss-Jordan
// elimination (with row swaps for stability), and — if the resulting basic
// solution is primal feasible — iterate to optimality from there. Returns
// ok=false when the seed is unusable and the caller must run cold.
func (p *Problem) warmSolve(rows [][]float64, rhs []float64, nSlack int, prev *Basis) (*Result, bool) {
	n := len(p.obj)
	m := len(rows)
	total := n + nSlack
	for _, c := range prev.cols {
		// -1 marks a row the previous solve dropped as redundant; its basis
		// carries no usable column for that row, so start over cold.
		if c < 0 || c >= total {
			return nil, false
		}
	}

	tab := make([][]float64, m)
	slackAt := n
	for i := range rows {
		r := make([]float64, total+1)
		copy(r, rows[i])
		r[total] = rhs[i]
		switch prev.ops[i] {
		case LE:
			r[slackAt] = 1
			slackAt++
		case GE:
			r[slackAt] = -1
			slackAt++
		}
		tab[i] = r
	}

	// Re-factorize: make prev.cols[i] basic in row i, swapping in the
	// largest-magnitude row each step.
	basis := make([]int, m)
	pivots := 0
	for i, col := range prev.cols {
		best, bestAbs := -1, warmPivotTol
		for r := i; r < m; r++ {
			if a := math.Abs(tab[r][col]); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if best < 0 {
			return nil, false // singular under this problem's coefficients
		}
		tab[i], tab[best] = tab[best], tab[i]
		pivot(tab, basis, i, col)
		pivots++
	}

	cost := make([]float64, total+1)
	for j := 0; j < n; j++ {
		if p.sense == Maximize {
			cost[j] = -p.obj[j]
		} else {
			cost[j] = p.obj[j]
		}
	}
	canonicalize(cost, tab, basis)

	// Reset events move the binding constraints, so the seeded vertex is
	// usually slightly primal infeasible; repair it with dual simplex
	// pivots (the textbook warm-start move) before the primal cleanup.
	dualIters := 0
	if !primalFeasible(tab, total) {
		ok := false
		ok, dualIters = dualRestore(tab, basis, cost)
		if !ok {
			return nil, false
		}
	}
	for i := range tab {
		if tab[i][total] < 0 {
			tab[i][total] = 0 // clamp roundoff so the ratio test stays sane
		}
	}

	st, it := simplexIterate(tab, basis, cost, nil)
	if st == IterationLimit {
		// Let the cold path retry with fresh anti-cycling state.
		return nil, false
	}
	iters := dualIters + it
	res := &Result{Status: st, Iterations: iters, Pivots: pivots + iters, WarmStarted: true}
	if st != Optimal {
		return res, true // genuinely unbounded from a feasible basis
	}
	x := make([]float64, n)
	for i, b := range basis {
		if b >= 0 && b < n {
			x[b] = tab[i][total]
		}
	}
	obj := 0.0
	for j, c := range p.obj {
		obj += c * x[j]
	}
	res.X, res.Objective = x, obj
	res.Basis = p.snapshotBasis(prev.ops, basis)
	return res, true
}

// primalFeasible reports whether every rhs entry is non-negative (within
// tolerance).
func primalFeasible(tab [][]float64, total int) bool {
	for i := range tab {
		if tab[i][total] < -1e-9 {
			return false
		}
	}
	return true
}

// dualRestore runs dual simplex pivots until the basic solution is primal
// feasible again: each iteration drives out the most-negative-rhs row,
// entering the column that (approximately) least degrades the objective.
// Reduced costs may be slightly dual infeasible after an objective
// perturbation — negative entries are clamped to zero in the ratio test, and
// the primal cleanup pass that follows restores exact optimality, so this
// phase only needs to terminate, not to be optimal. Returns ok=false when a
// row cannot be repaired (primal infeasible) or the iteration cap is hit.
func dualRestore(tab [][]float64, basis []int, cost []float64) (bool, int) {
	m := len(tab)
	if m == 0 {
		return true, 0
	}
	total := len(cost) - 1
	cap := stallFactor * (m + total)
	if cap < 500 {
		cap = 500
	}
	for it := 0; it < cap; it++ {
		leave, worst := -1, -1e-9
		for i := 0; i < m; i++ {
			if b := tab[i][total]; b < worst {
				leave, worst = i, b
			}
		}
		if leave == -1 {
			return true, it
		}
		enter := -1
		var bestRatio float64
		row := tab[leave]
		for j := 0; j < total; j++ {
			a := row[j]
			if a >= -eps {
				continue
			}
			c := cost[j]
			if c < 0 {
				c = 0
			}
			r := c / -a
			if enter == -1 || r < bestRatio-eps || (r < bestRatio+eps && j < enter) {
				enter, bestRatio = j, r
			}
		}
		if enter == -1 {
			return false, it // row has no negative entry: primal infeasible
		}
		pivot(tab, basis, leave, enter)
		if f := cost[enter]; f != 0 {
			prow := tab[leave]
			for j := range cost {
				cost[j] -= f * prow[j]
			}
		}
	}
	return false, cap
}

// canonicalize subtracts multiples of the basic rows from cost so every
// basic column has zero reduced cost. cost[last] accumulates -objective.
func canonicalize(cost []float64, tab [][]float64, basis []int) {
	for i, b := range basis {
		if b < 0 {
			continue
		}
		f := cost[b]
		if f == 0 {
			continue
		}
		row := tab[i]
		for j := range cost {
			cost[j] -= f * row[j]
		}
	}
}

// simplexIterate runs primal simplex iterations on the canonical tableau
// until optimality, unboundedness, or the iteration cap. forbidden marks
// columns (artificials) that may never enter the basis.
func simplexIterate(tab [][]float64, basis []int, cost []float64, forbidden []bool) (Status, int) {
	m := len(tab)
	if m == 0 {
		return Optimal, 0
	}
	total := len(cost) - 1
	stall := stallFactor * (m + total)
	hard := hardFactor * (m + total)
	if hard < 2000 {
		hard = 2000
	}
	for it := 0; it < hard; it++ {
		bland := it >= stall
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if forbidden != nil && forbidden[j] {
				continue
			}
			if cost[j] < best {
				if bland {
					enter = j
					break
				}
				best = cost[j]
				enter = j
			}
		}
		if enter == -1 {
			return Optimal, it
		}
		// Ratio test; break ties by smallest basis index (lexicographic-ish
		// anti-cycling support for the Bland phase).
		leave := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= eps {
				continue
			}
			r := tab[i][total] / a
			if leave == -1 || r < bestRatio-eps || (r < bestRatio+eps && basis[i] < basis[leave]) {
				leave, bestRatio = i, r
			}
		}
		if leave == -1 {
			return Unbounded, it
		}
		pivot(tab, basis, leave, enter)
		// Keep cost row canonical.
		f := cost[enter]
		if f != 0 {
			row := tab[leave]
			for j := range cost {
				cost[j] -= f * row[j]
			}
		}
	}
	return IterationLimit, hard
}

// pivot makes column col basic in row r.
func pivot(tab [][]float64, basis []int, r, col int) {
	prow := tab[r]
	inv := 1.0 / prow[col]
	for j := range prow {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := range tab {
		if i == r {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		row := tab[i]
		for j := range row {
			row[j] -= f * prow[j]
		}
		row[col] = 0 // exact
	}
	basis[r] = col
}
