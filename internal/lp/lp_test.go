package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustOptimal(t *testing.T, p *Problem) *Result {
	t.Helper()
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	return res
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	p := NewProblem(Maximize)
	x := p.AddVar(3, "x")
	y := p.AddVar(2, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4)
	p.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6)
	res := mustOptimal(t, p)
	if !near(res.Objective, 12, 1e-7) {
		t.Fatalf("objective = %v, want 12", res.Objective)
	}
	if !near(res.X[x], 4, 1e-7) || !near(res.X[y], 0, 1e-7) {
		t.Fatalf("x = %v, want [4 0]", res.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x <= 6 -> x=6, y=4, obj=24.
	p := NewProblem(Minimize)
	x := p.AddVar(2, "x")
	y := p.AddVar(3, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10)
	p.AddConstraint([]Term{{x, 1}}, LE, 6)
	res := mustOptimal(t, p)
	if !near(res.Objective, 24, 1e-7) {
		t.Fatalf("objective = %v, want 24", res.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// max x + y s.t. x + y = 5, x <= 2 -> obj 5.
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	y := p.AddVar(1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 2)
	res := mustOptimal(t, p)
	if !near(res.Objective, 5, 1e-7) {
		t.Fatalf("objective = %v, want 5", res.Objective)
	}
	if !near(res.X[x]+res.X[y], 5, 1e-7) {
		t.Fatalf("x+y = %v, want 5", res.X[x]+res.X[y])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	y := p.AddVar(0, "y")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 1)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with x,y>=0 means y >= x+2. max x + y with y <= 5:
	// x = 3, y = 5 -> obj 8.
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	y := p.AddVar(1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, -2)
	p.AddConstraint([]Term{{y, 1}}, LE, 5)
	res := mustOptimal(t, p)
	if !near(res.Objective, 8, 1e-7) {
		t.Fatalf("objective = %v, want 8", res.Objective)
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	// 0.5x + 0.5x <= 3 should behave as x <= 3.
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	p.AddConstraint([]Term{{x, 0.5}, {x, 0.5}}, LE, 3)
	res := mustOptimal(t, p)
	if !near(res.X[x], 3, 1e-7) {
		t.Fatalf("x = %v, want 3", res.X[x])
	}
}

func TestDegenerateMaxMin(t *testing.T) {
	// The paper's §4.1 example: 2 GPUs (1 V100, 1 K80), 3 jobs with
	// speedups 4/3/2 vs K80. Max-min over normalized throughput should
	// yield ~10% above the 1/3 isolated share.
	T := [][]float64{{4, 1}, {3, 1}, {2, 1}}
	// Normalizers: equal-time-share throughput = (T[m][0] + T[m][1]) / 3
	// is NOT the right isolated scale; the paper uses X^equal_m = 1/n per
	// type. throughput(m, X^equal) = sum_j T[m][j]/3.
	norm := make([]float64, 3)
	for m := range T {
		norm[m] = (T[m][0] + T[m][1]) / 3
	}
	p := NewProblem(Maximize)
	tv := p.AddVar(1, "t")
	xv := make([][]int, 3)
	for m := range T {
		xv[m] = []int{p.AddVar(0, ""), p.AddVar(0, "")}
	}
	for m := range T {
		// sum_j T[m][j]/norm[m] * X[m][j] >= t
		p.AddConstraint([]Term{
			{xv[m][0], T[m][0] / norm[m]},
			{xv[m][1], T[m][1] / norm[m]},
			{tv, -1},
		}, GE, 0)
		p.AddConstraint([]Term{{xv[m][0], 1}, {xv[m][1], 1}}, LE, 1)
	}
	for j := 0; j < 2; j++ {
		p.AddConstraint([]Term{{xv[0][j], 1}, {xv[1][j], 1}, {xv[2][j], 1}}, LE, 1)
	}
	res := mustOptimal(t, p)
	if res.X[tv] < 1.05 {
		t.Fatalf("max-min normalized throughput = %v, want >= 1.05 (10%% over isolated)", res.X[tv])
	}
	// Paper reports the heterogeneity-aware allocation gives ~10% gain;
	// check we're in that ballpark (not wildly above either).
	if res.X[tv] > 1.25 {
		t.Fatalf("max-min normalized throughput = %v, suspiciously high", res.X[tv])
	}
}

// TestPropertyFeasibleSolutionsRespectConstraints generates random feasible
// LPs (constraints sampled around a known feasible point) and verifies the
// returned optimum satisfies every constraint and beats the known point.
func TestPropertyFeasibleSolutionsRespectConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		// Known feasible point.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.Float64() * 5
		}
		p := NewProblem(Maximize)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = rng.Float64()*4 - 2
			p.AddVar(obj[i], "")
		}
		rows := make([][]float64, m)
		rhs := make([]float64, m)
		for c := 0; c < m; c++ {
			rows[c] = make([]float64, n)
			var terms []Term
			dot := 0.0
			for i := 0; i < n; i++ {
				co := rng.Float64() * 2 // non-negative rows keep it bounded
				rows[c][i] = co
				dot += co * x0[i]
				terms = append(terms, Term{i, co})
			}
			rhs[c] = dot + rng.Float64() // slack so x0 strictly feasible
			p.AddConstraint(terms, LE, rhs[c])
		}
		// Bound every variable so the program is never unbounded.
		for i := 0; i < n; i++ {
			p.AddConstraint([]Term{{i, 1}}, LE, 10+rng.Float64()*10)
		}
		res, err := p.Solve()
		if err != nil || res.Status != Optimal {
			return false
		}
		// Check feasibility of the reported solution.
		for c := 0; c < m; c++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += rows[c][i] * res.X[i]
			}
			if dot > rhs[c]+1e-6 {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if res.X[i] < -1e-9 {
				return false
			}
		}
		// Optimal must be at least as good as the known feasible point.
		want := 0.0
		for i := range obj {
			want += obj[i] * x0[i]
		}
		return res.Objective >= want-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLPDualityGap checks weak duality on random bounded programs:
// for max c.x s.t. Ax <= b, any feasible dual y (y >= 0, A^T y >= c) has
// b.y >= optimum. We build the dual from the same data and solve both.
func TestPropertyLPDualityGap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := n + rng.Intn(3) // enough rows to keep primal bounded
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 3
		}
		for r := 0; r < m; r++ {
			A[r] = make([]float64, n)
			for i := 0; i < n; i++ {
				A[r][i] = 0.2 + rng.Float64()*2 // strictly positive: bounded
			}
			b[r] = 1 + rng.Float64()*5
		}
		primal := NewProblem(Maximize)
		for i := 0; i < n; i++ {
			primal.AddVar(c[i], "")
		}
		for r := 0; r < m; r++ {
			terms := make([]Term, n)
			for i := 0; i < n; i++ {
				terms[i] = Term{i, A[r][i]}
			}
			primal.AddConstraint(terms, LE, b[r])
		}
		pres, err := primal.Solve()
		if err != nil || pres.Status != Optimal {
			return false
		}
		dual := NewProblem(Minimize)
		for r := 0; r < m; r++ {
			dual.AddVar(b[r], "")
		}
		for i := 0; i < n; i++ {
			terms := make([]Term, m)
			for r := 0; r < m; r++ {
				terms[r] = Term{r, A[r][i]}
			}
			dual.AddConstraint(terms, GE, c[i])
		}
		dres, err := dual.Solve()
		if err != nil || dres.Status != Optimal {
			return false
		}
		// Strong duality should hold to solver tolerance.
		return math.Abs(pres.Objective-dres.Objective) < 1e-5*(1+math.Abs(pres.Objective))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveFractional(t *testing.T) {
	// maximize (2x + y) / (x + y + 1) s.t. x + y <= 4.
	// At (4, 0): 8/5 = 1.6. Increasing x dominates, so optimum is 1.6.
	f := &Fractional{
		NumVars: 2,
		Num:     []float64{2, 1},
		Den:     []float64{1, 1},
		DenC:    1,
		Cons: []FractionalConstraint{
			{Terms: []Term{{0, 1}, {1, 1}}, Op: LE, RHS: 4},
		},
	}
	x, ratio, err := SolveFractional(f)
	if err != nil {
		t.Fatalf("SolveFractional: %v", err)
	}
	if !near(ratio, 1.6, 1e-6) {
		t.Fatalf("ratio = %v, want 1.6", ratio)
	}
	if !near(x[0], 4, 1e-6) {
		t.Fatalf("x = %v, want [4 0]", x)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(Maximize)
	res := mustOptimal(t, p)
	if res.Objective != 0 || len(res.X) != 0 {
		t.Fatalf("empty problem: %+v", res)
	}
}

func TestBadVarReference(t *testing.T) {
	p := NewProblem(Maximize)
	p.AddVar(1, "x")
	p.AddConstraint([]Term{{5, 1}}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("want error for out-of-range variable")
	}
}

func TestZeroObjectiveFeasibilityCheck(t *testing.T) {
	// Pure feasibility problems (all-zero objective) are how the makespan
	// and finish-time-fairness policies use the solver inside binary search.
	p := NewProblem(Maximize)
	x := p.AddVar(0, "x")
	y := p.AddVar(0, "y")
	p.AddConstraint([]Term{{x, 2}, {y, 1}}, GE, 3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 2)
	res := mustOptimal(t, p)
	if res.X[x]*2+res.X[y] < 3-1e-7 {
		t.Fatalf("feasibility point violates GE constraint: %v", res.X)
	}
}
