package lp

// The dual simplex driver for warm starts. A shape-preserving reset (same
// jobs, drifted rhs/objective) usually leaves the cached optimal basis dual
// feasible — every nonbasic reduced cost still has the optimal sign — while
// the drifted right-hand side makes a few basic values stray outside their
// bounds. The primal repair path (composite phase 1) fixes that by changing
// the basis until the point is feasible and then re-optimizing; the dual
// simplex instead walks the dual-feasible bases directly, evicting one
// out-of-bounds basic variable per pivot while keeping optimality-signed
// reduced costs, so it lands on the new optimum the moment feasibility is
// restored — no second optimization phase. optimize() auto-selects it for
// seeded solves; GAVEL_LP_DUAL=off (or SetDual(DualOff)) disables it.

import (
	"math"
	"os"
	"strings"
)

// DualMode selects whether seeded revised solves may use the dual simplex to
// repair primal infeasibility.
type DualMode int

const (
	// DualAuto (the zero value) follows DefaultDual.
	DualAuto DualMode = iota
	// DualOn repairs dual-feasible warm starts with the dual simplex.
	DualOn
	// DualOff always repairs with the primal composite phase 1.
	DualOff
)

// DefaultDual is the mode used by problems with no explicit mode set. It is
// initialized from GAVEL_LP_DUAL: "off" or "0" disable the dual path; unset
// or anything else enables it.
var DefaultDual = dualFromEnv()

func dualFromEnv() DualMode {
	switch strings.ToLower(os.Getenv("GAVEL_LP_DUAL")) {
	case "off", "0", "false":
		return DualOff
	}
	return DualOn
}

// resolveDual returns the dual-repair mode this problem will actually use.
func (p *Problem) resolveDual() DualMode {
	m := p.dual
	if m == DualAuto {
		m = DefaultDual
	}
	if m != DualOff {
		m = DualOn
	}
	return m
}

// dualTol is the reduced-cost tolerance for declaring a basis dual feasible.
const dualTol = 1e-7

// dualFeasible reports whether every nonbasic column's reduced cost has the
// optimal sign: >= -dualTol at its lower bound, <= dualTol at its upper.
// Nonzero-cost artificials never appear nonbasic, so only real columns are
// scanned.
func (e *revEngine) dualFeasible() bool {
	y := e.wsY
	for i, c := range e.basis {
		if c < e.nTotal {
			y[i] = e.obj[c]
		} else {
			y[i] = 0
		}
	}
	e.factor.btran(y)
	for j := 0; j < e.nTotal; j++ {
		if e.inBasis[j] {
			continue
		}
		d := e.reducedCost(j, y, false)
		if e.nbAtUpper(j) {
			if d > dualTol {
				return false
			}
		} else if d < -dualTol {
			return false
		}
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis: each
// iteration evicts the basic variable with the worst bound violation (below
// zero, or above its upper bound; artificials are bounded to [0,0]) and
// enters the nonbasic column whose reduced-cost-to-pivot ratio keeps every
// reduced cost optimality-signed. Entering steps that overshoot the entering
// column's own bound become bound flips. Returns ok=false on numerical
// trouble or the iteration cap, leaving a consistent (factorized) basis for
// the primal phase 1 to repair instead; dual pivots count in both
// e.iterations and e.dualIters.
// budget > 0 caps the pivots: a dual-infeasible repair attempt (see
// dualRepairable) is expected to need about one eviction per violated slot,
// so its caller leashes it tightly rather than letting a meaningless ratio
// test wander to the stall guard.
func (e *revEngine) dualSimplex(budget int) bool {
	cap := 4*(e.m+e.nTotal) + 100
	if budget > 0 && budget < cap {
		cap = budget
	}
	stallCap := 64 + e.m/2
	bestTotal := math.Inf(1)
	stall := 0
	for it := 0; it < cap; it++ {
		// Leaving row: worst bound violation. The total violation doubles as
		// the progress measure: a polished seed sits on a degenerate optimal
		// face where many reduced costs are zero, and the resulting
		// zero-ratio dual pivots can cycle — when the total stops improving
		// for stallCap iterations, hand the repair to the primal phase 1
		// instead of burning the full iteration cap.
		leave, worst, above := -1, feasTol, false
		total := 0.0
		for i, c := range e.basis {
			v := e.xB[i]
			lo, hi := 0.0, math.Inf(1)
			if c >= e.nTotal {
				hi = 0
			} else if e.hasUB && c < e.n {
				hi = e.ub[c]
			}
			if d := lo - v; d > worst {
				leave, worst, above = i, d, false
			}
			if d := v - hi; d > worst {
				leave, worst, above = i, d, true
			}
			if d := lo - v; d > feasTol {
				total += d
			}
			if d := v - hi; d > feasTol {
				total += d
			}
		}
		if leave < 0 {
			return true
		}
		if total < bestTotal-feasTol {
			bestTotal, stall = total, 0
		} else {
			stall++
			if stall > stallCap {
				return false
			}
		}
		// rho = B^-T e_leave gives the pivot row; alpha_j = rho . a_j.
		rho := e.wsZ
		for i := range rho {
			rho[i] = 0
		}
		rho[leave] = 1
		e.factor.btran(rho)
		// Current duals for the ratio test.
		y := e.wsY
		for i, c := range e.basis {
			if c < e.nTotal {
				y[i] = e.obj[c]
			} else {
				y[i] = 0
			}
		}
		e.factor.btran(y)

		// Entering column: among columns whose movement direction pushes
		// xB[leave] back toward its violated bound, the minimum |d|/|alpha|
		// ratio keeps dual feasibility; ties prefer the larger pivot, then
		// the smaller index (determinism).
		enter, alphaQ, bestRatio := -1, 0.0, 0.0
		for j := 0; j < e.nTotal; j++ {
			if e.inBasis[j] {
				continue
			}
			var a float64
			for _, en := range e.cols[j] {
				a += rho[en.row] * en.val
			}
			atUp := e.nbAtUpper(j)
			// Below its bound (v < 0): xB[leave] must increase, so the
			// entering change -alpha_j * dx_j must be positive; above its
			// upper: negative. dx_j >= 0 from lower, <= 0 from upper.
			var ok bool
			if above {
				ok = (!atUp && a > eps) || (atUp && a < -eps)
			} else {
				ok = (!atUp && a < -eps) || (atUp && a > eps)
			}
			if !ok {
				continue
			}
			d := e.reducedCost(j, y, false)
			r := math.Abs(d) / math.Abs(a)
			if enter < 0 || r < bestRatio-eps ||
				(r < bestRatio+eps && (math.Abs(a) > math.Abs(alphaQ)+eps ||
					(math.Abs(a) >= math.Abs(alphaQ)-eps && j < enter))) {
				enter, alphaQ, bestRatio = j, a, r
			}
		}
		if enter < 0 {
			// No column can push the row back: the primal phase 1 (or the
			// dense oracle behind it) settles infeasibility properly.
			return false
		}
		if math.Abs(alphaQ) < pivotTol {
			return false
		}
		v := e.xB[leave]
		target := 0.0
		var leaveToUpper bool
		if above {
			c := e.basis[leave]
			if c >= e.nTotal {
				target = 0
			} else {
				target = e.ub[c]
				leaveToUpper = true
			}
		}
		// x_enter moves by delta (signed from its current bound value).
		delta := (v - target) / alphaQ
		base := 0.0
		if e.nbAtUpper(enter) {
			base = e.ub[enter]
		}
		if u := e.colUB(enter); !math.IsInf(u, 1) && math.Abs(delta) > u+feasTol {
			// The entering column hits its own opposite bound first: flip it
			// across, update the basic values, and retry the same row.
			w := e.ftranCol(enter)
			step := u * float64(sign(delta))
			for i := range e.xB {
				e.xB[i] -= step * w[i]
			}
			e.atUpper[enter] = !e.atUpper[enter]
			e.iterations++
			e.dualIters++
			continue
		}
		w := e.ftranCol(enter)
		if math.Abs(w[leave]) < pivotTol {
			return false
		}
		enterVal := base + delta
		if !e.applyPivotB(enter, leave, delta, enterVal, w, leaveToUpper) {
			return false
		}
		e.dualIters++
	}
	return false
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}
