package lp

// Presolve: shrink the problem before the engine sees it, and lift the
// reduced solution (and its basis) back to the full shape afterwards.
//
// The pass iterates to a fixpoint over classical reductions:
//
//   - empty rows (consistency-checked, then dropped);
//   - singleton rows: an EQ singleton fixes its column, an LE/GE singleton
//     is either redundant or — on the revised-engine path — extracted into
//     an implicit upper bound the bounded-variable simplex enforces without
//     a row (this is what removes every `x <= 1`-style cap row);
//   - implied bound tightening from all-nonnegative LE/EQ rows (a job's
//     budget row sum_m x_jm <= 1 bounds each x_jm even when no explicit cap
//     row exists);
//   - fixed-column substitution into every row's rhs;
//   - empty columns (fixed at the favorable bound, or left to the engine
//     when genuinely unbounded).
//
// Postsolve must preserve the warm-start identities: Basis.Remap and
// SolveFromMapped work on the FULL shape (callers cache full-shape bases
// keyed by column IDs), so the lifted basis covers every original row —
// removed LE/GE rows host their own slack (degenerate-at-zero when the
// bound is tight), an EQ singleton row hosts the column it fixed, and the
// nonbasic-at-upper set rides along in Basis.atUpper. Seeding runs the
// mapping in reverse: a full-shape seed is projected onto the reduced
// problem (the reduction is deterministic, so a basis lifted by the previous
// solve projects back exactly), which is what keeps warm and remapped solves
// as effective with presolve as without it.
//
// The dense tableau has no bound support, so when the dense engine is
// selected presolve runs in bounds-off mode: rows that would become implicit
// bounds stay explicit, and only the unconditionally sound reductions run.

import (
	"math"
	"os"
	"strings"
)

// PresolveMode selects whether solves run the presolve pass.
type PresolveMode int

const (
	// PresolveAuto (the zero value) follows DefaultPresolve.
	PresolveAuto PresolveMode = iota
	// PresolveOn runs the presolve pass before every solve.
	PresolveOn
	// PresolveOff hands the raw problem to the engine.
	PresolveOff
)

// DefaultPresolve is the mode used by problems with no explicit mode set. It
// is initialized from GAVEL_LP_PRESOLVE: "off" or "0" disable the pass;
// unset or anything else enable it.
var DefaultPresolve = presolveFromEnv()

func presolveFromEnv() PresolveMode {
	switch strings.ToLower(os.Getenv("GAVEL_LP_PRESOLVE")) {
	case "off", "0", "false":
		return PresolveOff
	}
	return PresolveOn
}

// resolvePresolve returns the presolve mode this problem will actually use.
func (p *Problem) resolvePresolve() PresolveMode {
	m := p.presolv
	if m == PresolveAuto {
		m = DefaultPresolve
	}
	if m != PresolveOff {
		m = PresolveOn
	}
	return m
}

// presolveState is one solve's reduction record: what was removed, why, and
// every table needed to project seeds down and lift solutions back up.
type presolveState struct {
	p      *Problem
	bounds bool // extract bounds (revised engine) vs keep bound rows (dense)

	n, m       int
	reds       int // total reductions (rows removed + cols fixed + bounds)
	infeasible bool

	rowRemoved []bool
	rowHost    []int // removed row -> full basic column hosted there (-1 none)
	rowMap     []int // full row -> reduced row (-1 removed)
	keptRows   []int // reduced row -> full row

	colFixed []bool
	fixedVal []float64
	colMap   []int     // full col -> reduced col (-1 fixed)
	keptCols []int     // reduced col -> full col
	ub       []float64 // full-col upper bounds (+Inf), bounds mode only

	fullOps      []Op  // full normalized (rhs >= 0) ops
	fullSlackOrd []int // full row -> slack ordinal (-1 for EQ rows)

	red      *Problem
	redOps   []Op  // reduced normalized ops
	redSlack []int // reduced row -> reduced slack ordinal (-1 for EQ rows)
	redOwner []int // reduced slack ordinal -> reduced row
}

// minObj returns the objective coefficient of full column j in minimize
// sense.
func (ps *presolveState) minObj(j int) float64 {
	if ps.p.sense == Maximize {
		return -ps.p.obj[j]
	}
	return ps.p.obj[j]
}

// newPresolve runs the reduction fixpoint on p. bounds enables implicit
// upper-bound extraction (revised engine only). Returns nil when presolve
// found nothing to do — the caller then solves the raw problem directly.
func newPresolve(p *Problem, bounds bool) *presolveState {
	n := len(p.obj)
	m := len(p.cons)
	if m == 0 || n == 0 {
		return nil
	}
	ps := &presolveState{
		p: p, bounds: bounds, n: n, m: m,
		rowRemoved: make([]bool, m),
		rowHost:    make([]int, m),
		colFixed:   make([]bool, n),
		fixedVal:   make([]float64, n),
	}
	if bounds {
		ps.ub = make([]float64, n)
		for j := range ps.ub {
			ps.ub[j] = math.Inf(1)
		}
	}

	// Deduplicate each row's terms once (same accumulation newRevEngine
	// does), keeping raw orientation.
	rows := make([][]Term, m)
	ops := make([]Op, m)
	rhs := make([]float64, m)
	scratch := make([]float64, n)
	var touched []int
	for i, c := range p.cons {
		touched = touched[:0]
		for _, t := range c.terms {
			if scratch[t.Var] == 0 && t.Coeff != 0 {
				touched = append(touched, t.Var)
			}
			scratch[t.Var] += t.Coeff
		}
		terms := make([]Term, 0, len(touched))
		for _, v := range touched {
			if scratch[v] != 0 {
				terms = append(terms, Term{Var: v, Coeff: scratch[v]})
			}
			scratch[v] = 0
		}
		rows[i], ops[i], rhs[i] = terms, c.op, c.rhs
	}

	// Slack ordinals over the full shape. LE and GE rows each own exactly
	// one slack and rhs-normalization never turns an inequality into an
	// equality, so the ordinals are orientation-independent.
	ps.fullOps = make([]Op, m)
	ps.fullSlackOrd = make([]int, m)
	ord := 0
	for i := range ops {
		op := ops[i]
		if rhs[i] < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		ps.fullOps[i] = op
		ps.fullSlackOrd[i] = -1
		if ops[i] != EQ {
			ps.fullSlackOrd[i] = ord
			ord++
		}
	}

	fix := func(j int, v float64) {
		if v < 0 && v > -feasTol {
			v = 0
		}
		ps.colFixed[j] = true
		ps.fixedVal[j] = v
		ps.reds++
	}

	// rhsEff subtracts fixed columns' contributions; activeTerms filters
	// them out. Both read the live fix state, so substitution is implicit.
	for round := 1; ; round++ {
		changed := false

		if ps.bounds && round == 1 {
			// Implied bound tightening: a row with all-nonnegative
			// coefficients and op LE or EQ (or the sign-flipped GE mirror)
			// caps every variable it touches at rhs/a_j. One pass only —
			// bounds derived from bounds can chase tails.
			for i := range rows {
				if len(rows[i]) < 2 {
					continue // singletons are the row pass's business
				}
				allPos, allNeg := true, true
				for _, t := range rows[i] {
					if t.Coeff < 0 {
						allPos = false
					}
					if t.Coeff > 0 {
						allNeg = false
					}
				}
				b := rhs[i]
				switch {
				case allPos && (ops[i] == LE || ops[i] == EQ) && b >= 0:
					for _, t := range rows[i] {
						if t.Coeff > eps {
							if cand := b / t.Coeff; cand < ps.ub[t.Var]-1e-12 {
								ps.ub[t.Var] = cand
								ps.reds++
								changed = true
							}
						}
					}
				case allPos && (ops[i] == LE || ops[i] == EQ) && b < -feasTol:
					// Minimum activity 0 already exceeds the rhs.
					ps.infeasible = true
					return ps
				case allNeg && (ops[i] == GE || ops[i] == EQ) && b <= 0:
					for _, t := range rows[i] {
						if t.Coeff < -eps {
							if cand := b / t.Coeff; cand < ps.ub[t.Var]-1e-12 {
								ps.ub[t.Var] = cand
								ps.reds++
								changed = true
							}
						}
					}
				case allNeg && (ops[i] == GE || ops[i] == EQ) && b > feasTol:
					ps.infeasible = true
					return ps
				}
			}
		}

		// Row pass: empty and singleton rows.
		for i := range rows {
			if ps.rowRemoved[i] {
				continue
			}
			nAct := 0
			var aj float64
			var jAct int
			b := rhs[i]
			for _, t := range rows[i] {
				if ps.colFixed[t.Var] {
					b -= t.Coeff * ps.fixedVal[t.Var]
					continue
				}
				nAct++
				aj, jAct = t.Coeff, t.Var
				if nAct > 1 {
					break
				}
			}
			if nAct > 1 {
				continue
			}
			if nAct == 0 {
				switch {
				case ops[i] == LE && b < -feasTol,
					ops[i] == GE && b > feasTol,
					ops[i] == EQ && math.Abs(b) > feasTol:
					ps.infeasible = true
					return ps
				}
				ps.removeRow(i, -1)
				changed = true
				continue
			}
			// Singleton row: a*x_j op b, i.e. x_j op' b/a.
			v := b / aj
			switch {
			case ops[i] == EQ:
				if v < -feasTol || (ps.bounds && v > ps.ub[jAct]+feasTol) {
					ps.infeasible = true
					return ps
				}
				fix(jAct, v)
				ps.removeRow(i, jAct)
				changed = true
			case (ops[i] == LE && aj > 0) || (ops[i] == GE && aj < 0):
				// Upper bound x_j <= v.
				if v < -feasTol {
					ps.infeasible = true
					return ps
				}
				if ps.bounds {
					if v < ps.ub[jAct] {
						ps.ub[jAct] = v
					}
					ps.removeRow(i, -2) // host own slack
					changed = true
				}
				// bounds-off: the row stays; the engine enforces it.
			default:
				// Lower bound x_j >= v; redundant when v <= 0 (x >= 0).
				if v <= eps {
					ps.removeRow(i, -2)
					changed = true
				}
			}
		}

		// Column pass: bound-fixed and empty columns.
		colActive := make([]int, n)
		for i := range rows {
			if ps.rowRemoved[i] {
				continue
			}
			for _, t := range rows[i] {
				if !ps.colFixed[t.Var] {
					colActive[t.Var]++
				}
			}
		}
		for j := 0; j < n; j++ {
			if ps.colFixed[j] {
				continue
			}
			if ps.bounds {
				if ps.ub[j] < -feasTol {
					ps.infeasible = true
					return ps
				}
				if ps.ub[j] <= eps {
					fix(j, 0)
					changed = true
					continue
				}
			}
			if colActive[j] == 0 {
				c := ps.minObj(j)
				switch {
				case c >= -eps:
					// Zero or penalized: the canonical (sigma-polished)
					// optimum parks it at zero.
					fix(j, 0)
					changed = true
				case ps.bounds && !math.IsInf(ps.ub[j], 1):
					fix(j, ps.ub[j])
					changed = true
				default:
					// Favorable and unbounded: leave it; the engine
					// certifies unboundedness.
				}
			}
		}

		if !changed {
			break
		}
	}

	anyUB := false
	if ps.bounds {
		for j := range ps.ub {
			if !ps.colFixed[j] && !math.IsInf(ps.ub[j], 1) {
				anyUB = true
				break
			}
		}
	}
	if ps.reds == 0 && !anyUB {
		return nil
	}

	// Row and column maps.
	ps.rowMap = make([]int, m)
	for i := range ps.rowMap {
		if ps.rowRemoved[i] {
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = len(ps.keptRows)
		ps.keptRows = append(ps.keptRows, i)
	}
	ps.colMap = make([]int, n)
	for j := range ps.colMap {
		if ps.colFixed[j] {
			ps.colMap[j] = -1
			continue
		}
		ps.colMap[j] = len(ps.keptCols)
		ps.keptCols = append(ps.keptCols, j)
	}
	if len(ps.keptRows) == 0 {
		return ps // trivial: run() solves it without an engine
	}

	// Materialize the reduced problem. Row IDs and ops carry over verbatim;
	// only the rhs absorbs the fixed columns.
	red := NewProblem(p.sense)
	red.noPresolve = true
	red.pricing, red.dual, red.ws = p.pricing, p.dual, p.ws
	for _, j := range ps.keptCols {
		red.AddVar(p.obj[j], p.names[j])
	}
	for _, i := range ps.keptRows {
		b := rhs[i]
		terms := make([]Term, 0, len(rows[i]))
		for _, t := range rows[i] {
			if ps.colFixed[t.Var] {
				b -= t.Coeff * ps.fixedVal[t.Var]
				continue
			}
			terms = append(terms, Term{Var: ps.colMap[t.Var], Coeff: t.Coeff})
		}
		red.AddConstraintRow(terms, ops[i], b, p.cons[i].id)
	}
	if anyUB {
		red.ub = make([]float64, len(ps.keptCols))
		for jr, j := range ps.keptCols {
			red.ub[jr] = ps.ub[j]
		}
	}
	ps.red = red

	// Reduced normalized ops and slack ordinals.
	ps.redOps = make([]Op, len(red.cons))
	ps.redSlack = make([]int, len(red.cons))
	for ir, c := range red.cons {
		op := c.op
		if c.rhs < 0 {
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		ps.redOps[ir] = op
		ps.redSlack[ir] = -1
		if c.op != EQ {
			ps.redSlack[ir] = len(ps.redOwner)
			ps.redOwner = append(ps.redOwner, ir)
		}
	}
	return ps
}

// removeRow drops row i, recording which full basis column the lifted basis
// hosts there: -2 means the row's own slack, j >= 0 a structural column,
// -1 nothing (a dropped redundant/empty EQ row).
func (ps *presolveState) removeRow(i, host int) {
	ps.rowRemoved[i] = true
	ps.reds++
	switch {
	case host == -2:
		ps.rowHost[i] = ps.n + ps.fullSlackOrd[i]
	case host >= 0:
		ps.rowHost[i] = host
	default:
		if ps.fullSlackOrd[i] >= 0 {
			// An empty inequality row still has a slack of its own.
			ps.rowHost[i] = ps.n + ps.fullSlackOrd[i]
		} else {
			ps.rowHost[i] = -1
		}
	}
}

// run solves the reduced problem (or the trivial remnant) and lifts the
// result. ok=false sends the caller back to the raw problem — the reduced
// engine could not certify an answer.
func (ps *presolveState) run(prev *Basis, mapped *MappedBasis, engine Engine) (*Result, bool) {
	if ps.infeasible {
		return &Result{Status: Infeasible, Engine: engine, PresolveReductions: ps.reds}, true
	}
	if len(ps.keptRows) == 0 {
		return ps.trivial(engine)
	}
	rp := ps.mapPrev(prev)
	var rm *MappedBasis
	if rp == nil {
		rm = ps.mapMapped(mapped)
	}
	if engine == Revised {
		res, ok := ps.red.solveRevised(rp, rm)
		if !ok {
			return nil, false
		}
		res.Engine = Revised
		return ps.lift(res), true
	}
	res, err := ps.red.solveDense(rp, rm)
	if err != nil || res == nil || res.Status == IterationLimit {
		return nil, false
	}
	res.Engine = Dense
	return ps.lift(res), true
}

// trivial handles the every-row-removed remnant: each surviving column sits
// at whichever bound its cost favors; a favorable cost with no upper bound
// is unbounded.
func (ps *presolveState) trivial(engine Engine) (*Result, bool) {
	x := make([]float64, ps.n)
	var atUpper []int
	for j := 0; j < ps.n; j++ {
		if ps.colFixed[j] {
			x[j] = ps.fixedVal[j]
			continue
		}
		if c := ps.minObj(j); c < -eps {
			if ps.bounds && !math.IsInf(ps.ub[j], 1) {
				x[j] = ps.ub[j]
				atUpper = append(atUpper, j)
				continue
			}
			return &Result{Status: Unbounded, Engine: engine, PresolveReductions: ps.reds}, true
		}
	}
	obj := 0.0
	for j, c := range ps.p.obj {
		obj += c * x[j]
	}
	ids := make([]string, ps.m)
	for i, c := range ps.p.cons {
		ids[i] = c.id
	}
	return &Result{
		Status: Optimal, X: x, Objective: obj,
		Engine: engine, PresolveReductions: ps.reds,
		Basis: &Basis{
			numVars: ps.n,
			ops:     append([]Op(nil), ps.fullOps...),
			cols:    append([]int(nil), ps.rowHost...),
			rowIDs:  ids,
			atUpper: atUpper,
		},
	}, true
}

// mapPrev projects a full-shape positional seed onto the reduced problem.
// The projection must be exact or nothing: a basis the previous lifted solve
// produced projects back to precisely the reduced basis the engine
// snapshotted (the reduction is deterministic), anything else returns nil
// and the reduced solve runs cold.
func (ps *presolveState) mapPrev(prev *Basis) *Basis {
	if prev == nil || !prev.compatible(ps.n, ps.fullOps) {
		return nil
	}
	cols := make([]int, len(ps.keptRows))
	for ir, i := range ps.keptRows {
		c := prev.cols[i]
		switch {
		case c < 0:
			cols[ir] = -1
		case c < ps.n:
			cm := ps.colMap[c]
			if cm < 0 {
				return nil // a presolve-fixed column was basic here
			}
			cols[ir] = cm
		default:
			sOrd := c - ps.n
			owner := -1
			for i2, o := range ps.fullSlackOrd {
				if o == sOrd {
					owner = i2
					break
				}
			}
			if owner < 0 {
				return nil
			}
			ir2 := ps.rowMap[owner]
			if ir2 < 0 || ps.redSlack[ir2] < 0 {
				return nil // the slack's row was removed
			}
			cols[ir] = len(ps.keptCols) + ps.redSlack[ir2]
		}
	}
	var atUpper []int
	for _, j := range prev.atUpper {
		if j >= 0 && j < ps.n && ps.colMap[j] >= 0 {
			atUpper = append(atUpper, ps.colMap[j])
		}
	}
	ids := make([]string, len(ps.keptRows))
	for ir, i := range ps.keptRows {
		ids[ir] = ps.p.cons[i].id
	}
	return &Basis{
		numVars:  len(ps.keptCols),
		ops:      append([]Op(nil), ps.redOps...),
		cols:     cols,
		rowIDs:   ids,
		atUpper:  atUpper,
		polished: prev.polished,
	}
}

// mapMapped projects a cross-shape seed onto the reduced problem. Row IDs
// pass through verbatim — the reduced problem keeps every surviving row's
// identity, and IDs of removed rows simply fail to resolve, which the mapped
// solve already treats as a departed row.
func (ps *presolveState) mapMapped(mb *MappedBasis) *MappedBasis {
	if mb == nil || mb.numVars != ps.n {
		return nil
	}
	out := &MappedBasis{numVars: len(ps.keptCols)}
	for k, c := range mb.cands {
		if c < 0 || c >= ps.n {
			return nil
		}
		if cm := ps.colMap[c]; cm >= 0 {
			out.cands = append(out.cands, cm)
			out.candRows = append(out.candRows, mb.candRows[k])
		}
	}
	out.slackRows = mb.slackRows
	for _, c := range mb.uppers {
		if c >= 0 && c < ps.n {
			if cm := ps.colMap[c]; cm >= 0 {
				out.uppers = append(out.uppers, cm)
			}
		}
	}
	if len(out.cands) == 0 && len(out.uppers) == 0 {
		return nil
	}
	return out
}

// lift restores a reduced result to the full shape: fixed columns rejoin the
// solution at their values, the objective is recomputed against the full
// costs, and the basis is expanded so every removed row hosts a basic column
// again (its own slack, or the column an EQ singleton fixed) — keeping the
// snapshot usable by both the positional and the remap seeding paths.
func (ps *presolveState) lift(redRes *Result) *Result {
	res := &Result{
		Status:             redRes.Status,
		Iterations:         redRes.Iterations,
		Pivots:             redRes.Pivots,
		WarmStarted:        redRes.WarmStarted,
		Remapped:           redRes.Remapped,
		Engine:             redRes.Engine,
		DualIterations:     redRes.DualIterations,
		Refactorizations:   redRes.Refactorizations,
		PresolveReductions: ps.reds,
	}
	if redRes.Status != Optimal {
		return res
	}
	x := make([]float64, ps.n)
	for j := 0; j < ps.n; j++ {
		if ps.colFixed[j] {
			x[j] = ps.fixedVal[j]
		}
	}
	for jr, j := range ps.keptCols {
		x[j] = redRes.X[jr]
	}
	obj := 0.0
	for j, c := range ps.p.obj {
		obj += c * x[j]
	}
	res.X, res.Objective = x, obj

	rb := redRes.Basis
	if rb == nil {
		return res
	}
	cols := make([]int, ps.m)
	for i := 0; i < ps.m; i++ {
		ir := ps.rowMap[i]
		if ir < 0 {
			cols[i] = ps.rowHost[i]
			continue
		}
		c := rb.cols[ir]
		switch {
		case c < 0:
			cols[i] = -1
		case c < len(ps.keptCols):
			cols[i] = ps.keptCols[c]
		default:
			sOrd := c - len(ps.keptCols)
			if sOrd >= len(ps.redOwner) {
				cols[i] = -1
				continue
			}
			full := ps.keptRows[ps.redOwner[sOrd]]
			cols[i] = ps.n + ps.fullSlackOrd[full]
		}
	}
	ids := make([]string, ps.m)
	for i, c := range ps.p.cons {
		ids[i] = c.id
	}
	var atUpper []int
	for _, jr := range rb.atUpper {
		if jr >= 0 && jr < len(ps.keptCols) {
			atUpper = append(atUpper, ps.keptCols[jr])
		}
	}
	res.Basis = &Basis{
		numVars:  ps.n,
		ops:      append([]Op(nil), ps.fullOps...),
		cols:     cols,
		rowIDs:   ids,
		atUpper:  atUpper,
		polished: rb.polished,
	}
	return res
}
