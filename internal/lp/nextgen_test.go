package lp

// Tests for the next-gen solve path: presolve round-trips, pricing-rule
// equivalence, dual-vs-primal warm-start equivalence, remapping of
// nonbasic-at-upper columns, and the anti-cycling audit. They share the
// fuzz harness of engines_test.go.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// buildWith builds fp with the full knob set.
func (fp *fuzzProblem) buildWith(engine Engine, presolve PresolveMode, pricing Pricing, dual DualMode) *Problem {
	p := fp.build(engine)
	p.SetPresolve(presolve)
	p.SetPricing(pricing)
	p.SetDual(dual)
	return p
}

// TestPresolvedMatchesRawFuzz is the presolve round-trip gate: on fuzzed
// LPs of every flavor, solving with the presolve pass must agree with the
// raw solve — same status, objective within 1e-9 — on both engines, and the
// postsolved x must satisfy every original row. Presolve may only change
// speed, never the answer.
func TestPresolvedMatchesRawFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nextID := 0
	flavors := []string{"feasible", "feasible", "infeasible", "unbounded", "degenerate"}
	reductions := 0
	for trial := 0; trial < 300; trial++ {
		flavor := flavors[trial%len(flavors)]
		fp := genFuzz(rng, &nextID, flavor)
		for _, engine := range []Engine{Dense, Revised} {
			label := fmt.Sprintf("trial %d (%s) %v", trial, flavor, engine)
			raw, err := fp.buildWith(engine, PresolveOff, PricingAuto, DualAuto).Solve()
			if err != nil {
				t.Fatalf("%s: raw: %v", label, err)
			}
			pre, err := fp.buildWith(engine, PresolveOn, PricingAuto, DualAuto).Solve()
			if err != nil {
				t.Fatalf("%s: presolved: %v", label, err)
			}
			reductions += pre.PresolveReductions
			if raw.Status != pre.Status {
				t.Fatalf("%s: raw status %v, presolved %v", label, raw.Status, pre.Status)
			}
			if raw.Status != Optimal {
				continue
			}
			scale := 1 + math.Abs(raw.Objective)
			if d := math.Abs(raw.Objective - pre.Objective); d > 1e-9*scale {
				t.Fatalf("%s: raw objective %v, presolved %v (diff %g)", label, raw.Objective, pre.Objective, d)
			}
			// The postsolved point must satisfy every ORIGINAL row: the
			// postsolve map has to undo each reduction exactly.
			for _, r := range fp.rows {
				ax := 0.0
				for j, c := range r.coeff {
					ax += c * pre.X[j]
				}
				viol := false
				switch r.op {
				case LE:
					viol = ax > r.rhs+1e-7
				case GE:
					viol = ax < r.rhs-1e-7
				default:
					viol = math.Abs(ax-r.rhs) > 1e-7
				}
				if viol {
					t.Fatalf("%s: postsolved x violates row %s: ax=%v %v rhs=%v", label, r.id, ax, r.op, r.rhs)
				}
			}
		}
	}
	if reductions == 0 {
		t.Fatal("presolve never removed anything across 300 fuzzed LPs")
	}
}

// TestPricingRulesAgree is the pricing equivalence gate: Devex and rotating
// partial pricing must reach the same certified optimum on every fuzzed LP
// (pricing is about speed, never the answer), and both must match the dense
// oracle.
func TestPricingRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	nextID := 0
	flavors := []string{"feasible", "feasible", "degenerate"}
	for trial := 0; trial < 200; trial++ {
		flavor := flavors[trial%len(flavors)]
		fp := genFuzz(rng, &nextID, flavor)
		label := fmt.Sprintf("trial %d (%s)", trial, flavor)
		oracle, err := fp.build(Dense).Solve()
		if err != nil {
			t.Fatalf("%s: dense: %v", label, err)
		}
		for _, pr := range []Pricing{PricingDevex, PricingPartial} {
			res, err := fp.buildWith(Revised, PresolveAuto, pr, DualAuto).Solve()
			if err != nil {
				t.Fatalf("%s %v: %v", label, pr, err)
			}
			if res.Status != oracle.Status {
				t.Fatalf("%s: dense status %v, %v status %v", label, oracle.Status, pr, res.Status)
			}
			if res.Status != Optimal {
				continue
			}
			scale := 1 + math.Abs(oracle.Objective)
			if d := math.Abs(oracle.Objective - res.Objective); d > 1e-9*scale {
				t.Fatalf("%s: dense objective %v, %v objective %v (diff %g)", label, oracle.Objective, pr, res.Objective, d)
			}
		}
	}
}

// TestDualMatchesPrimalWarm is the dual-path equivalence gate: a warm solve
// allowed to repair with the dual simplex must reach the same optimum as one
// forced through the primal composite phase 1, on fuzzed rhs-drifted
// re-solves — and the dual path must actually engage (nonzero DualIterations
// over the run).
func TestDualMatchesPrimalWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nextID := 0
	dualIters := 0
	for trial := 0; trial < 200; trial++ {
		fp := genFuzz(rng, &nextID, "feasible")
		first, err := fp.build(Revised).Solve()
		if err != nil || first.Status != Optimal {
			continue
		}
		// Drift only the rhs: the textbook dual-simplex scenario (the basis
		// stays dual feasible, a few basic values stray out of bounds).
		for i := range fp.rows {
			fp.rows[i].rhs *= 1 + 0.05*(2*rng.Float64()-1)
		}
		label := fmt.Sprintf("trial %d", trial)
		viaDual, err := fp.buildWith(Revised, PresolveAuto, PricingAuto, DualOn).SolveFrom(first.Basis)
		if err != nil {
			t.Fatalf("%s: dual: %v", label, err)
		}
		viaPrimal, err := fp.buildWith(Revised, PresolveAuto, PricingAuto, DualOff).SolveFrom(first.Basis)
		if err != nil {
			t.Fatalf("%s: primal: %v", label, err)
		}
		dualIters += viaDual.DualIterations
		if viaPrimal.DualIterations != 0 {
			t.Fatalf("%s: DualOff solve reported %d dual iterations", label, viaPrimal.DualIterations)
		}
		if viaDual.Status != viaPrimal.Status {
			t.Fatalf("%s: dual status %v, primal %v", label, viaDual.Status, viaPrimal.Status)
		}
		if viaDual.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(viaPrimal.Objective)
		if d := math.Abs(viaDual.Objective - viaPrimal.Objective); d > 1e-9*scale {
			t.Fatalf("%s: dual objective %v, primal %v (diff %g)", label, viaDual.Objective, viaPrimal.Objective, d)
		}
	}
	if dualIters == 0 {
		t.Fatal("the dual simplex never took a pivot across 200 rhs-drifted warm solves")
	}
	t.Logf("dual iterations across run: %d", dualIters)
}

// TestRemapCarriesNonBasicAtUpper is the Basis.Remap edge gate for the
// bounded-variable vertex: a column nonbasic at its presolve-derived upper
// bound must survive a remap with its bound status (MappedBasis counts it as
// a candidate), and the mapped solve must match cold. The LP is built so the
// optimum pins two columns at their caps with only one basic structural.
func TestRemapCarriesNonBasicAtUpper(t *testing.T) {
	build := func(ids []ColumnID, obj []float64, caps []float64, budget float64) *Problem {
		p := NewProblem(Maximize)
		p.SetEngine(Revised)
		var terms []Term
		for j, id := range ids {
			p.AddVar(obj[j], string(id))
			// Singleton cap row: presolve converts it to an implicit bound,
			// so at the optimum the saturated columns sit nonbasic AT their
			// upper bound rather than basic against a slack.
			p.AddConstraintRow([]Term{{Var: j, Coeff: 1}}, LE, caps[j], fmt.Sprintf("cap:%s", id))
			terms = append(terms, Term{Var: j, Coeff: 1})
		}
		p.AddConstraintRow(terms, LE, budget, "budget")
		return p
	}
	oldIDs := []ColumnID{"a", "b", "c"}
	// maximize 3a+2b+c, a<=1, b<=2, c<=3, a+b+c<=4: optimum a=1 (at cap),
	// b=2 (at cap), c=1 (basic on the budget row).
	first, err := build(oldIDs, []float64{3, 2, 1}, []float64{1, 2, 3}, 4).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Optimal || math.Abs(first.Objective-8) > 1e-9 {
		t.Fatalf("unexpected first solve: %v obj=%v", first.Status, first.Objective)
	}
	if len(first.Basis.atUpper) == 0 {
		t.Fatalf("optimum pinned columns at caps but Basis.atUpper is empty (cols=%v)", first.Basis.cols)
	}
	// Churn: b departs, d arrives; a and c survive — a was nonbasic at its
	// cap and must carry that status through the remap.
	newIDs := []ColumnID{"a", "c", "d"}
	mb := first.Basis.Remap(oldIDs, newIDs)
	if mb == nil {
		t.Fatal("remap returned nil")
	}
	if len(mb.uppers) == 0 {
		t.Fatalf("no nonbasic-at-upper column survived the remap (cands=%v uppers=%v)", mb.cands, mb.uppers)
	}
	if mb.NumCandidates() != len(mb.cands)+len(mb.uppers) {
		t.Fatalf("NumCandidates %d does not count the %d upper survivors", mb.NumCandidates(), len(mb.uppers))
	}
	next := build(newIDs, []float64{3, 1, 2}, []float64{1, 3, 2}, 4)
	mapped, err := next.SolveFromMapped(mb)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := build(newIDs, []float64{3, 1, 2}, []float64{1, 3, 2}, 4).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Status != Optimal || math.Abs(mapped.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("mapped %v obj=%v, cold %v obj=%v", mapped.Status, mapped.Objective, cold.Status, cold.Objective)
	}
	for j := range cold.X {
		if math.Abs(mapped.X[j]-cold.X[j]) > 1e-9 {
			t.Fatalf("mapped x%d=%v, cold %v", j, mapped.X[j], cold.X[j])
		}
	}
}

// TestBealeCyclingRegression is the anti-cycling audit: Beale's classic
// cycling LP (pure Dantzig pricing loops forever on it) must reach the known
// optimum under every pricing rule on both engines, within a hard iteration
// budget — the degenerate-streak Bland switch is what guarantees
// termination.
func TestBealeCyclingRegression(t *testing.T) {
	beale := func(engine Engine, pricing Pricing) *Problem {
		p := NewProblem(Minimize)
		p.SetEngine(engine)
		p.SetPricing(pricing)
		x1 := p.AddVar(-0.75, "x1")
		x2 := p.AddVar(150, "x2")
		x3 := p.AddVar(-0.02, "x3")
		x4 := p.AddVar(6, "x4")
		p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
		p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
		p.AddConstraint([]Term{{x3, 1}}, LE, 1)
		return p
	}
	for _, engine := range []Engine{Dense, Revised} {
		for _, pricing := range []Pricing{PricingDevex, PricingPartial} {
			res, err := beale(engine, pricing).Solve()
			if err != nil {
				t.Fatalf("%v/%v: %v", engine, pricing, err)
			}
			if res.Status != Optimal {
				t.Fatalf("%v/%v: status %v", engine, pricing, res.Status)
			}
			if math.Abs(res.Objective-(-0.05)) > 1e-9 {
				t.Fatalf("%v/%v: objective %v, want -0.05", engine, pricing, res.Objective)
			}
			// The bound is loose on purpose: the dense tableau only switches
			// to Bland's rule at its stall threshold (stallFactor*(m+n) ≈ 200
			// here), while the revised engine's degenerate-streak counter
			// fires much earlier. Cycling means never terminating at all.
			if res.Iterations > 500 {
				t.Fatalf("%v/%v: %d iterations on a 3-row LP — cycling guard not engaging", engine, pricing, res.Iterations)
			}
		}
	}
}
