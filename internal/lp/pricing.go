package lp

import (
	"os"
	"strings"
)

// Pricing selects the revised engine's rule for choosing the entering
// column. Pricing is about speed, never about the answer: every rule walks to
// the same certified optimum (and the vertex polish makes the reported x
// identical), it just takes a different number of pivots to get there.
type Pricing int

const (
	// PricingAuto (the zero value) follows DefaultPricing.
	PricingAuto Pricing = iota
	// PricingPartial is rotating partial pricing: Dantzig's rule (most
	// negative reduced cost) inside a rotating window of columns. Cheap per
	// iteration, but blind to column geometry — on the long thin allocation
	// LPs it takes many near-degenerate pivots a weighted rule skips.
	PricingPartial
	// PricingDevex is Devex pricing (Harris 1973), the practical
	// approximation of steepest edge: entering columns are scored by
	// d_j^2 / gamma_j, where gamma_j approximates the squared norm of the
	// column's pivoting direction, and the weights are updated from each
	// pivot's BTRAN row. Costs a full pricing scan per iteration but picks
	// directions that make real progress, cutting iteration counts
	// substantially on Gavel's allocation programs.
	PricingDevex
)

func (r Pricing) String() string {
	switch r {
	case PricingAuto:
		return "auto"
	case PricingPartial:
		return "partial"
	case PricingDevex:
		return "devex"
	}
	return "unknown"
}

// DefaultPricing is the rule used by problems with no explicit rule set
// (SetPricing(PricingAuto)). It is initialized from GAVEL_LP_PRICING:
// "partial" selects rotating partial pricing; "devex", "steepest", or
// "steepest-edge" select Devex; unset or unrecognized values select Devex.
var DefaultPricing = pricingFromEnv()

func pricingFromEnv() Pricing {
	switch strings.ToLower(os.Getenv("GAVEL_LP_PRICING")) {
	case "partial":
		return PricingPartial
	case "devex", "steepest", "steepest-edge":
		return PricingDevex
	}
	return PricingDevex
}

// resolvePricing returns the pricing rule this problem will actually use.
func (p *Problem) resolvePricing() Pricing {
	r := p.pricing
	if r == PricingAuto {
		r = DefaultPricing
	}
	if r != PricingPartial {
		r = PricingDevex
	}
	return r
}

// devexReset is the weight magnitude past which the reference framework has
// drifted too far and every weight snaps back to 1 (a fresh reference frame).
const devexReset = 1e7

// devexInit (re)initializes the Devex reference weights to 1.
func (e *revEngine) devexInit() {
	if e.devex == nil {
		return
	}
	for j := range e.devex {
		e.devex[j] = 1
	}
}

// devexUpdate folds one pivot into the reference weights. It must run
// BEFORE the basis arrays and factors absorb the pivot: the pivot is about to
// replace basis position r with column enter, whose FTRAN image under the
// current basis is w (so the pivot element is alpha_q = w[r]). The BTRAN row
// rho = B^-T e_r gives every nonbasic column's alpha_j = rho . a_j, and the
// textbook Devex update is gamma_j = max(gamma_j, (alpha_j/alpha_q)^2 *
// gamma_q). The leaving variable re-enters the nonbasic set with weight
// max(gamma_q/alpha_q^2, 1).
func (e *revEngine) devexUpdate(enter, r int, w []float64) {
	if e.devex == nil {
		return
	}
	alphaQ := w[r]
	if alphaQ == 0 {
		return
	}
	gammaQ := e.devex[enter]
	rho := e.wsZ
	for i := range rho {
		rho[i] = 0
	}
	rho[r] = 1
	e.factor.btran(rho)
	scale := gammaQ / (alphaQ * alphaQ)
	reset := false
	for j := 0; j < e.nTotal; j++ {
		if e.inBasis[j] || j == enter {
			continue
		}
		var a float64
		for _, en := range e.cols[j] {
			a += rho[en.row] * en.val
		}
		if a == 0 {
			continue
		}
		if cand := a * a * scale; cand > e.devex[j] {
			e.devex[j] = cand
			if cand > devexReset {
				reset = true
			}
		}
	}
	if old := e.basis[r]; old >= 0 && old < e.nTotal {
		if scale > 1 {
			e.devex[old] = scale
		} else {
			e.devex[old] = 1
		}
	}
	if reset {
		e.devexInit()
	}
}
