package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a feasible, bounded random LP: maximize a
// non-negative objective under positive LE rows (x = 0 is feasible; positive
// row coefficients on every variable keep the maximum finite).
func randomProblem(rng *rand.Rand, n, m int) *Problem {
	p := NewProblem(Maximize)
	for j := 0; j < n; j++ {
		p.AddVar(rng.Float64(), "")
	}
	for i := 0; i < m; i++ {
		terms := make([]Term, n)
		for j := 0; j < n; j++ {
			terms[j] = Term{Var: j, Coeff: 0.1 + rng.Float64()}
		}
		p.AddConstraint(terms, LE, 1+rng.Float64())
	}
	return p
}

// perturb returns a copy of p with every objective and constraint
// coefficient (and rhs) jittered by up to +-frac, preserving shape.
func perturb(rng *rand.Rand, p *Problem, frac float64) *Problem {
	q := NewProblem(p.sense)
	for j := 0; j < p.NumVars(); j++ {
		q.AddVar(p.obj[j]*jitter(rng, frac), "")
	}
	for _, c := range p.cons {
		terms := make([]Term, len(c.terms))
		for k, t := range c.terms {
			terms[k] = Term{Var: t.Var, Coeff: t.Coeff * jitter(rng, frac)}
		}
		q.AddConstraint(terms, c.op, c.rhs*jitter(rng, frac))
	}
	return q
}

func jitter(rng *rand.Rand, frac float64) float64 {
	return 1 + frac*(2*rng.Float64()-1)
}

// TestWarmStartMatchesCold is the warm-start correctness property: across
// randomized perturbed problems, SolveFrom(prevBasis) and a cold Solve must
// agree on status and objective (within 1e-9 relative).
func TestWarmStartMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	warmStarted, totalWarmIters, totalColdIters := 0, 0, 0
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		m := 1 + rng.Intn(10)
		base := randomProblem(rng, n, m)
		res0, err := base.Solve()
		if err != nil {
			t.Fatalf("trial %d: base solve: %v", trial, err)
		}
		if res0.Status != Optimal {
			t.Fatalf("trial %d: base status %v", trial, res0.Status)
		}
		if res0.Basis == nil {
			t.Fatalf("trial %d: optimal solve returned nil basis", trial)
		}

		next := perturb(rng, base, 0.05)
		cold, err := next.Solve()
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		warm, err := next.SolveFrom(res0.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			scale := 1 + math.Abs(cold.Objective)
			if diff := math.Abs(warm.Objective - cold.Objective); diff > 1e-9*scale {
				t.Fatalf("trial %d: warm objective %v, cold %v (diff %v)",
					trial, warm.Objective, cold.Objective, diff)
			}
		}
		if warm.WarmStarted {
			warmStarted++
			totalWarmIters += warm.Iterations
			totalColdIters += cold.Iterations
		}
	}
	if warmStarted < 150 {
		t.Fatalf("warm start engaged on only %d/200 perturbed solves", warmStarted)
	}
	if totalWarmIters >= totalColdIters {
		t.Errorf("warm starts used %d iterations vs %d cold — no saving", totalWarmIters, totalColdIters)
	}
	t.Logf("warm-started %d/200; iterations warm=%d cold=%d", warmStarted, totalWarmIters, totalColdIters)
}

// TestWarmStartIdenticalProblem re-solves the same problem from its own
// optimal basis: zero iterations, identical solution vector.
func TestWarmStartIdenticalProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		p := randomProblem(rng, 3+rng.Intn(8), 2+rng.Intn(6))
		cold, err := p.Solve()
		if err != nil || cold.Status != Optimal {
			t.Fatalf("trial %d: cold: %v %v", trial, err, cold.Status)
		}
		warm, err := p.SolveFrom(cold.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		if !warm.WarmStarted {
			t.Fatalf("trial %d: identical problem did not warm start", trial)
		}
		if warm.Iterations != 0 {
			t.Errorf("trial %d: re-solve took %d iterations", trial, warm.Iterations)
		}
		for j := range cold.X {
			if math.Abs(warm.X[j]-cold.X[j]) > 1e-9 {
				t.Fatalf("trial %d: X[%d] warm %v cold %v", trial, j, warm.X[j], cold.X[j])
			}
		}
	}
}

// TestWarmStartShapeMismatchFallsBack feeds a basis from a differently
// shaped problem and checks the solver silently runs the cold path.
func TestWarmStartShapeMismatchFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := randomProblem(rng, 3, 2)
	res, err := small.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("small solve: %v %v", err, res.Status)
	}
	big := randomProblem(rng, 5, 4)
	warm, err := big.SolveFrom(res.Basis)
	if err != nil {
		t.Fatalf("mismatched warm solve: %v", err)
	}
	if warm.WarmStarted {
		t.Fatal("shape-mismatched basis should not warm start")
	}
	if warm.Status != Optimal {
		t.Fatalf("fallback status %v", warm.Status)
	}
}

// TestWarmStartInfeasibleSeedFallsBack shrinks an rhs until the previous
// optimal basis is primal infeasible, and checks the cold fallback still
// finds the optimum.
func TestWarmStartInfeasibleSeedFallsBack(t *testing.T) {
	p := NewProblem(Maximize)
	x := p.AddVar(1, "x")
	y := p.AddVar(1, "y")
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 10)
	p.AddConstraint([]Term{{x, 1}}, GE, 4)
	res, err := p.Solve()
	if err != nil || res.Status != Optimal {
		t.Fatalf("base: %v %v", err, res.Status)
	}

	q := NewProblem(Maximize)
	qx := q.AddVar(1, "x")
	qy := q.AddVar(1, "y")
	q.AddConstraint([]Term{{qx, 1}, {qy, 1}}, LE, 2)
	q.AddConstraint([]Term{{qx, 1}}, GE, 4) // basis seeded from rhs=10 is infeasible now
	warm, err := q.SolveFrom(res.Basis)
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.Status != Infeasible {
		t.Fatalf("expected infeasible, got %v", warm.Status)
	}
}
