package assignment

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownAssignment(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(total-5) > 1e-9 {
		t.Fatalf("total = %v, want 5 (assign %v)", total, assign)
	}
}

func TestRectangular(t *testing.T) {
	// 2 rows, 3 cols: rows pick their cheapest distinct columns.
	cost := [][]float64{
		{10, 1, 10},
		{10, 2, 1},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Abs(total-2) > 1e-9 {
		t.Fatalf("total = %v, want 2 (assign %v)", total, assign)
	}
	if assign[0] == assign[1] {
		t.Fatalf("columns not distinct: %v", assign)
	}
}

func TestForbiddenEdges(t *testing.T) {
	cost := [][]float64{
		{Inf, 1},
		{1, Inf},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if assign[0] != 1 || assign[1] != 0 || math.Abs(total-2) > 1e-9 {
		t.Fatalf("assign = %v total = %v", assign, total)
	}
}

func TestNoFeasibleAssignment(t *testing.T) {
	cost := [][]float64{
		{Inf, Inf},
		{1, 1},
	}
	if _, _, err := Solve(cost); err == nil {
		t.Fatal("want infeasibility error")
	}
}

func TestTooManyRows(t *testing.T) {
	cost := [][]float64{{1}, {2}}
	if _, _, err := Solve(cost); err == nil {
		t.Fatal("want rows > cols error")
	}
}

func TestEmpty(t *testing.T) {
	assign, total, err := Solve(nil)
	if err != nil || assign != nil || total != 0 {
		t.Fatalf("empty: %v %v %v", assign, total, err)
	}
}

// Property: on random square matrices the Hungarian result matches brute
// force over all permutations (n <= 6).
func TestPropertyMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 10
			}
		}
		_, total, err := Solve(cost)
		if err != nil {
			return false
		}
		best := math.Inf(1)
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		var rec func(k int, cur float64)
		rec = func(k int, cur float64) {
			if cur >= best {
				return
			}
			if k == n {
				best = cur
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k+1, cur+cost[k][perm[k]])
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0, 0)
		return math.Abs(total-best) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
