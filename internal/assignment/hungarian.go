// Package assignment implements min-cost bipartite matching (the Hungarian
// algorithm with potentials, O(n^3)). It is the substrate for the AlloX
// baseline policy: AlloX minimizes average job completion time on a
// heterogeneous cluster by solving an assignment of jobs to
// (accelerator, position-from-the-end) slots with cost = position x
// processing time.
package assignment

import (
	"fmt"
	"math"
)

// Inf marks a forbidden assignment edge.
var Inf = math.Inf(1)

// Solve returns, for a rows x cols cost matrix with rows <= cols, the
// min-cost assignment of every row to a distinct column. result[i] is the
// column assigned to row i. Entries may be Inf to forbid an edge; if no
// finite-cost assignment exists an error is returned.
func Solve(cost [][]float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if n > m {
		return nil, 0, fmt.Errorf("assignment: rows (%d) exceed cols (%d)", n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("assignment: ragged row %d", i)
		}
	}

	// Classic O(n^3) Hungarian with row/column potentials, 1-indexed
	// internally. Adapted from the standard shortest-augmenting-path form.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (0 = none)
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = Inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := Inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if math.IsInf(delta, 1) {
				return nil, 0, fmt.Errorf("assignment: no feasible assignment (row %d isolated)", i-1)
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		// Augment along the alternating path.
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assign[p[j]-1] = j - 1
		}
	}
	for i := range assign {
		total += cost[i][assign[i]]
	}
	return assign, total, nil
}
