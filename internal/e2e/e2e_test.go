// Package e2e runs the multi-process acceptance for the cluster service:
// real gavel-shard daemons (this test binary re-exec'd in shard-server mode)
// on loopback sockets, driven by the coordinator engine over the versioned
// control plane. The two acceptance properties: a multi-process run is
// byte-identical to the in-process sharded engine on the same trace, and
// killing a shard daemon mid-run recovers its jobs warm on the survivors.
package e2e

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/scheduler"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

const shardHelperEnv = "GAVEL_SHARD_HELPER"

// TestHelperShardDaemon is not a test: re-exec'd with GAVEL_SHARD_HELPER=1
// it becomes a shard daemon process, serving the control plane on an
// ephemeral loopback port (announced on stdout) until killed.
func TestHelperShardDaemon(t *testing.T) {
	if os.Getenv(shardHelperEnv) != "1" {
		t.Skip("helper process, not a test")
	}
	srv := rpc.NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("SHARD_ADDR=%s\n", addr)
	os.Stdout.Sync()
	select {} // serve until the parent kills us
}

// shardDaemon is one spawned shard daemon process.
type shardDaemon struct {
	cmd  *exec.Cmd
	addr string
}

// startShardDaemon re-execs the test binary as a shard daemon and waits for
// it to announce its control-plane address.
func startShardDaemon(t *testing.T) *shardDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperShardDaemon")
	cmd.Env = append(os.Environ(), shardHelperEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn shard daemon: %v", err)
	}
	d := &shardDaemon{cmd: cmd}
	t.Cleanup(func() { d.kill() })

	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "SHARD_ADDR="); ok {
			d.addr = a
			return d
		}
		if msg, ok := strings.CutPrefix(line, "SHARD_ERR="); ok {
			t.Fatalf("shard daemon failed to start: %s", msg)
		}
	}
	t.Fatalf("shard daemon exited without announcing an address")
	return nil
}

func (d *shardDaemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// e2eConfig mirrors the sharded engine's own determinism-test config.
func e2eConfig(numShards, jobs int) simulator.Config {
	return simulator.Config{
		Cluster: cluster.Simulated108(),
		Policy:  &policy.MaxMinFairness{},
		Trace: workload.GenerateTrace(workload.TraceOptions{
			NumJobs: jobs, LambdaPerHour: 12, Seed: 7,
		}),
		NumShards:            numShards,
		RebalanceEveryRounds: 5,
		SpaceSharing:         true,
		Seed:                 7,
	}
}

// fingerprint serializes everything deterministic about a Result (PolicyTime
// is wall-clock and run-local, so it is zeroed).
func fingerprint(t *testing.T, r *simulator.Result) string {
	t.Helper()
	c := *r
	c.PolicyTime = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMultiProcessMatchesInProcess is the deployment acceptance: two real
// shard daemon processes behind the versioned wire protocol produce a
// byte-identical Result to the in-process sharded engine on the same trace.
func TestMultiProcessMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	ref, err := simulator.Run(e2eConfig(2, 24))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, ref)

	d0, d1 := startShardDaemon(t), startShardDaemon(t)
	c0, err := rpc.DialShard(d0.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c0.Close()
	c1, err := rpc.DialShard(d1.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c1.Close()

	cfg := e2eConfig(0, 24)
	cfg.ShardClients = []rpc.ShardClient{c0, c1}
	got, err := simulator.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, got) != want {
		t.Fatal("multi-process run differs from in-process sharded run")
	}
	if got.Recoveries != 0 {
		t.Fatalf("healthy daemons, but Recoveries = %d", got.Recoveries)
	}
}

// restartDriver drives one manual coordinator round against a Service over
// live daemon processes: admissions (two jobs at rounds 0..2, one at round 5),
// a dirty sweep every third round, allocation, round assignment, a snapshot
// every other round, and the sealing EndRound. Returns the post-allocation
// mirror fingerprint.
func restartDriver(t *testing.T, svc *rpc.Service, r int) string {
	t.Helper()
	tput := func(id int) []float64 {
		return []float64{1 + float64(id%5)*0.25, 0.5 + float64(id%3)*0.125}
	}
	info := func(id int) policy.JobInfo {
		return policy.JobInfo{Weight: 1, RemainingSteps: 1000 + float64(id), TotalSteps: 2000, ArrivalSeq: id}
	}
	switch {
	case r < 3:
		for i := 0; i < 2; i++ {
			id := r*2 + i
			if _, err := svc.Admit(id, 1+id%2, tput(id)); err != nil {
				t.Fatalf("round %d: admit %d: %v", r, id, err)
			}
		}
	case r == 5:
		if _, err := svc.Admit(11, 1, tput(11)); err != nil {
			t.Fatalf("round %d: admit: %v", r, err)
		}
	}
	if r > 0 && r%3 == 0 {
		for k := 0; k < svc.NumShards(); k++ {
			if err := svc.MarkDirty(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.AllocateAll(int64(r), info, false); err != nil {
		t.Fatalf("round %d: AllocateAll: %v", r, err)
	}
	if _, err := svc.AssignRound(int64(r), 10, nil); err != nil {
		t.Fatalf("round %d: AssignRound: %v", r, err)
	}
	if r%2 == 0 {
		if err := svc.SnapshotAll(); err != nil {
			t.Fatalf("round %d: SnapshotAll: %v", r, err)
		}
	}
	if err := svc.EndRound(int64(r)); err != nil {
		t.Fatalf("round %d: EndRound: %v", r, err)
	}
	var s strings.Builder
	for k := 0; k < svc.NumShards(); k++ {
		alloc, ids := svc.Alloc(k)
		if alloc == nil {
			fmt.Fprintf(&s, "shard %d: nil\n", k)
			continue
		}
		fmt.Fprintf(&s, "shard %d: ids=%v units=%v x=%v\n", k, ids, alloc.Units, alloc.X)
	}
	return s.String()
}

func restartServiceConfig(journal string) rpc.ServiceConfig {
	return rpc.ServiceConfig{
		Cluster: cluster.Spec{Types: []cluster.AcceleratorType{
			{Name: "v100", Count: 4, PricePerHour: cluster.PriceV100, PerServer: 4},
			{Name: "k80", Count: 4, PricePerHour: cluster.PriceK80, PerServer: 4},
		}},
		Policy:  rpc.PolicySpec{Name: "max_min_fairness"},
		Journal: journal,
	}
}

// TestCoordinatorRestartReplaysJournal is the multi-process durability
// acceptance: a coordinator process dies mid-run (its Service abandoned, its
// client connections severed) while the shard daemon processes keep running.
// A new coordinator over the same journal must replay to the exact pre-crash
// mirror and drive the remaining rounds byte-identically to an uninterrupted
// run against its own fresh daemons.
func TestCoordinatorRestartReplaysJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const rounds = 10
	dial := func(d *shardDaemon) rpc.ShardClient {
		c, err := rpc.DialShard(d.addr)
		if err != nil {
			t.Fatalf("DialShard: %v", err)
		}
		return c
	}

	// Reference: one uninterrupted coordinator over its own daemons.
	var want [rounds]string
	{
		c0, c1 := dial(startShardDaemon(t)), dial(startShardDaemon(t))
		svc, err := rpc.NewService(restartServiceConfig(t.TempDir()+"/ref.wal"), []rpc.ShardClient{c0, c1})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			want[r] = restartDriver(t, svc, r)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted: same schedule, coordinator dies after sealing round 4.
	journal := t.TempDir() + "/crash.wal"
	d0, d1 := startShardDaemon(t), startShardDaemon(t)
	c0, c1 := dial(d0), dial(d1)
	svc, err := rpc.NewService(restartServiceConfig(journal), []rpc.ShardClient{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 4; r++ {
		if got := restartDriver(t, svc, r); got != want[r] {
			t.Fatalf("pre-crash round %d diverged:\n got %s\nwant %s", r, got, want[r])
		}
	}
	// The coordinator process dies: connections drop, no clean Close. Every
	// sealed round is already fsynced in the journal.
	c0.Close()
	c1.Close()
	svc = nil

	// A new coordinator process: re-dial the surviving daemons, replay.
	resumed, err := rpc.NewService(restartServiceConfig(journal), []rpc.ShardClient{dial(d0), dial(d1)})
	if err != nil {
		t.Fatalf("restart over journal: %v", err)
	}
	defer resumed.Close()
	if !resumed.Resumed() || resumed.Round() != 4 {
		t.Fatalf("resumed=%v round=%d, want resumed at round 4", resumed.Resumed(), resumed.Round())
	}
	for r := 5; r < rounds; r++ {
		if got := restartDriver(t, resumed, r); got != want[r] {
			t.Fatalf("post-restart round %d diverged from uninterrupted run:\n got %s\nwant %s", r, got, want[r])
		}
	}
}

// TestShardDaemonKillRecoversWarm kills one shard daemon process mid-run.
// The coordinator must detect the loss, re-route the dead daemon's jobs onto
// the survivor with the last snapshot's seeds, and finish every job — with
// the recovered solves landing remapped (warm), not cold.
func TestShardDaemonKillRecoversWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	d0, d1 := startShardDaemon(t), startShardDaemon(t)
	c0, err := rpc.DialShard(d0.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c0.Close()
	c1, err := rpc.DialShard(d1.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c1.Close()

	cfg := e2eConfig(0, 24)
	cfg.ShardClients = []rpc.ShardClient{c0, c1}
	cfg.SnapshotEveryRounds = 1
	killed := false
	cfg.OnRound = func(now float64, _ *core.Allocation, _ []int, _ []scheduler.Assignment) {
		if !killed && now >= 5*360 {
			killed = true
			d0.kill()
		}
	}

	res, err := simulator.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if res.Recoveries == 0 {
		t.Fatal("daemon process killed but no recovery recorded")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs stranded after daemon kill", res.Unfinished)
	}
	if res.RemappedSolves == 0 {
		t.Fatal("recovery produced no remapped solves")
	}
	for _, st := range res.ShardStats {
		if limit := 2 + st.LPSolves/10; st.ColdSolves > limit {
			t.Fatalf("shard %d: %d cold solves (limit %d) — recovery was not warm",
				st.Shard, st.ColdSolves, limit)
		}
	}
}
