// Package e2e runs the multi-process acceptance for the cluster service:
// real gavel-shard daemons (this test binary re-exec'd in shard-server mode)
// on loopback sockets, driven by the coordinator engine over the versioned
// control plane. The two acceptance properties: a multi-process run is
// byte-identical to the in-process sharded engine on the same trace, and
// killing a shard daemon mid-run recovers its jobs warm on the survivors.
package e2e

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/core"
	"gavel/internal/policy"
	"gavel/internal/rpc"
	"gavel/internal/scheduler"
	"gavel/internal/simulator"
	"gavel/internal/workload"
)

const shardHelperEnv = "GAVEL_SHARD_HELPER"

// TestHelperShardDaemon is not a test: re-exec'd with GAVEL_SHARD_HELPER=1
// it becomes a shard daemon process, serving the control plane on an
// ephemeral loopback port (announced on stdout) until killed.
func TestHelperShardDaemon(t *testing.T) {
	if os.Getenv(shardHelperEnv) != "1" {
		t.Skip("helper process, not a test")
	}
	srv := rpc.NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		fmt.Printf("SHARD_ERR=%v\n", err)
		os.Exit(1)
	}
	fmt.Printf("SHARD_ADDR=%s\n", addr)
	os.Stdout.Sync()
	select {} // serve until the parent kills us
}

// shardDaemon is one spawned shard daemon process.
type shardDaemon struct {
	cmd  *exec.Cmd
	addr string
}

// startShardDaemon re-execs the test binary as a shard daemon and waits for
// it to announce its control-plane address.
func startShardDaemon(t *testing.T) *shardDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperShardDaemon")
	cmd.Env = append(os.Environ(), shardHelperEnv+"=1")
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn shard daemon: %v", err)
	}
	d := &shardDaemon{cmd: cmd}
	t.Cleanup(func() { d.kill() })

	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if a, ok := strings.CutPrefix(line, "SHARD_ADDR="); ok {
			d.addr = a
			return d
		}
		if msg, ok := strings.CutPrefix(line, "SHARD_ERR="); ok {
			t.Fatalf("shard daemon failed to start: %s", msg)
		}
	}
	t.Fatalf("shard daemon exited without announcing an address")
	return nil
}

func (d *shardDaemon) kill() {
	if d.cmd.Process != nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// e2eConfig mirrors the sharded engine's own determinism-test config.
func e2eConfig(numShards, jobs int) simulator.Config {
	return simulator.Config{
		Cluster: cluster.Simulated108(),
		Policy:  &policy.MaxMinFairness{},
		Trace: workload.GenerateTrace(workload.TraceOptions{
			NumJobs: jobs, LambdaPerHour: 12, Seed: 7,
		}),
		NumShards:            numShards,
		RebalanceEveryRounds: 5,
		SpaceSharing:         true,
		Seed:                 7,
	}
}

// fingerprint serializes everything deterministic about a Result (PolicyTime
// is wall-clock and run-local, so it is zeroed).
func fingerprint(t *testing.T, r *simulator.Result) string {
	t.Helper()
	c := *r
	c.PolicyTime = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMultiProcessMatchesInProcess is the deployment acceptance: two real
// shard daemon processes behind the versioned wire protocol produce a
// byte-identical Result to the in-process sharded engine on the same trace.
func TestMultiProcessMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	ref, err := simulator.Run(e2eConfig(2, 24))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, ref)

	d0, d1 := startShardDaemon(t), startShardDaemon(t)
	c0, err := rpc.DialShard(d0.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c0.Close()
	c1, err := rpc.DialShard(d1.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c1.Close()

	cfg := e2eConfig(0, 24)
	cfg.ShardClients = []rpc.ShardClient{c0, c1}
	got, err := simulator.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(t, got) != want {
		t.Fatal("multi-process run differs from in-process sharded run")
	}
	if got.Recoveries != 0 {
		t.Fatalf("healthy daemons, but Recoveries = %d", got.Recoveries)
	}
}

// TestShardDaemonKillRecoversWarm kills one shard daemon process mid-run.
// The coordinator must detect the loss, re-route the dead daemon's jobs onto
// the survivor with the last snapshot's seeds, and finish every job — with
// the recovered solves landing remapped (warm), not cold.
func TestShardDaemonKillRecoversWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	d0, d1 := startShardDaemon(t), startShardDaemon(t)
	c0, err := rpc.DialShard(d0.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c0.Close()
	c1, err := rpc.DialShard(d1.addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c1.Close()

	cfg := e2eConfig(0, 24)
	cfg.ShardClients = []rpc.ShardClient{c0, c1}
	cfg.SnapshotEveryRounds = 1
	killed := false
	cfg.OnRound = func(now float64, _ *core.Allocation, _ []int, _ []scheduler.Assignment) {
		if !killed && now >= 5*360 {
			killed = true
			d0.kill()
		}
	}

	res, err := simulator.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("kill hook never fired")
	}
	if res.Recoveries == 0 {
		t.Fatal("daemon process killed but no recovery recorded")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d jobs stranded after daemon kill", res.Unfinished)
	}
	if res.RemappedSolves == 0 {
		t.Fatal("recovery produced no remapped solves")
	}
	for _, st := range res.ShardStats {
		if limit := 2 + st.LPSolves/10; st.ColdSolves > limit {
			t.Fatalf("shard %d: %d cold solves (limit %d) — recovery was not warm",
				st.Shard, st.ColdSolves, limit)
		}
	}
}
