package chaos

// ClientSpec tests: the spec string round-trips, rejects typos loudly, and
// expands into a deterministic submission stream whose declared rows scale
// with the lie factor — the properties the chaos-smoke CI job leans on to
// reproduce a failing tenant from its spec string alone.

import (
	"reflect"
	"testing"
)

func TestParseClientSpecRoundTrip(t *testing.T) {
	specs := []ClientSpec{
		{Tenant: "flood", Jobs: 40, Seed: 7},
		{Tenant: "liar", Jobs: 4, Seed: 11, SLOClass: 2, Lie: 3, LambdaPerHour: 3600, StepsScale: 0.001},
	}
	for _, cs := range specs {
		got, err := ParseClientSpec(cs.String())
		if err != nil {
			t.Fatalf("parse %q: %v", cs.String(), err)
		}
		if got != cs {
			t.Fatalf("round trip changed: %+v -> %+v", cs, got)
		}
	}
	bad := []string{
		"",
		"jobs=4",                    // missing tenant
		"tenant=a",                  // missing jobs
		"tenant=a,jobs=0",           // non-positive jobs
		"tenant=a,jobs=4,bogus=1",   // unknown key fails loudly
		"tenant=a,jobs=four",        // unparsable int
		"tenant=a,jobs=4,lie=solid", // unparsable float
		"tenant=a,jobs=4,seed",      // not key=value
	}
	for _, s := range bad {
		if _, err := ParseClientSpec(s); err == nil {
			t.Fatalf("parse %q: want error", s)
		}
	}
}

func TestClientSpecSubmissionsDeterministic(t *testing.T) {
	cs := ClientSpec{Tenant: "acme", Jobs: 6, Seed: 5, StepsScale: 0.01}
	a, b := cs.Submissions(), cs.Submissions()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two expansions of the same spec differ")
	}
	if len(a) != 6 {
		t.Fatalf("expanded %d submissions, want 6", len(a))
	}
	keys := map[string]bool{}
	for _, s := range a {
		if s.Tenant != "acme" || s.Key == "" || s.TotalSteps <= 0 {
			t.Fatalf("malformed submission %+v", s)
		}
		if keys[s.Key] {
			t.Fatalf("duplicate idempotency key %q", s.Key)
		}
		keys[s.Key] = true
	}

	// The lie factor scales every declared rate; the jobs are otherwise the
	// same sample.
	liar := cs
	liar.Lie = 3
	l := liar.Submissions()
	for i := range a {
		for j := range a[i].Tput {
			if got, want := l[i].Tput[j], a[i].Tput[j]*3; got != want {
				t.Fatalf("submission %d type %d: lying rate %v, want %v", i, j, got, want)
			}
		}
	}
}
