// Package chaos is the fault-injection plane of the cluster service: a
// deterministic transport wrapper that subjects the coordinator <-> shard
// control plane to seeded drops, delays, duplicates, partitions, and crashes.
//
// The transport wraps an rpc.ShardClient — below the retry layer, above the
// wire — so every injected fault exercises exactly the production error path:
// a dropped call surfaces as CodeUnavailable (transient, retried), a crashed
// shard as CodeShardDown (escalates to Recover), a duplicate re-sends the
// call against the daemon's idempotent surface. Faults are drawn from a
// per-shard rand.Rand seeded from Config.Seed, and every call draws the same
// number of variates whether or not a fault fires, so a fixed seed yields an
// identical fault schedule across runs — the property the chaos tests and the
// CI chaos-smoke job assert. Schedule() returns the injected-fault log for
// exactly that comparison.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"gavel/internal/obs"
	"gavel/internal/rpc"
)

// Config parameterizes one fault-injection schedule. The zero value injects
// nothing (Enabled reports false).
type Config struct {
	// Seed derives every shard's fault stream (shard k streams from
	// Seed*31+k). Two runs with the same Seed, Config, and call sequence see
	// identical faults.
	Seed int64
	// Drop is the probability a call is lost in transit: the daemon never
	// sees it and the caller gets CodeUnavailable.
	Drop float64
	// Dup is the probability an idempotent call is delivered twice (the
	// at-least-once case a lossy network produces via retransmission).
	// Extract, the one non-idempotent call, is never duplicated.
	Dup float64
	// Delay is the probability a call is delayed by MaxDelay before delivery.
	Delay float64
	// MaxDelay is the injected delay (default 10ms when Delay > 0).
	MaxDelay time.Duration
	// PartitionStart / PartitionCalls open a network partition window: calls
	// [PartitionStart, PartitionStart+PartitionCalls) on the shard, counted
	// per shard, all fail with CodeUnavailable. Zero PartitionCalls disables.
	PartitionStart int
	PartitionCalls int
	// CrashAfter, when positive, kills the shard's transport permanently
	// after that many calls: every later call fails with CodeShardDown,
	// exactly what a died daemon process looks like to the coordinator.
	CrashAfter int
}

// Enabled reports whether the config injects any fault at all.
func (c Config) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0 || c.PartitionCalls > 0 || c.CrashAfter > 0
}

// ParseSpec parses the comma-separated knob spec used by flags and CI, e.g.
// "seed=42,drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,partition=40+10,crash=200".
// Unknown keys are errors; an empty spec is the zero Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return c, fmt.Errorf("chaos: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			c.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			c.Drop, err = strconv.ParseFloat(v, 64)
		case "dup":
			c.Dup, err = strconv.ParseFloat(v, 64)
		case "delay":
			c.Delay, err = strconv.ParseFloat(v, 64)
		case "maxdelay":
			c.MaxDelay, err = time.ParseDuration(v)
		case "partition":
			start, calls, ok := strings.Cut(v, "+")
			if !ok {
				return c, fmt.Errorf("chaos: partition wants start+calls, got %q", v)
			}
			if c.PartitionStart, err = strconv.Atoi(start); err == nil {
				c.PartitionCalls, err = strconv.Atoi(calls)
			}
		case "crash":
			c.CrashAfter, err = strconv.Atoi(v)
		default:
			return c, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("chaos: bad value for %q: %v", k, err)
		}
	}
	return c, nil
}

// FaultKind labels one injected fault in the schedule log.
type FaultKind string

const (
	FaultDrop      FaultKind = "drop"
	FaultDup       FaultKind = "dup"
	FaultDelay     FaultKind = "delay"
	FaultPartition FaultKind = "partition"
	FaultCrash     FaultKind = "crash"
)

// Event is one injected fault: which call (1-based, per shard), which method,
// which fault.
type Event struct {
	Call   int
	Method string
	Kind   FaultKind
}

// Transport is a fault-injecting rpc.ShardClient wrapping another. Wrap it
// below rpc.WithRetry so injected transients exercise the retry path:
//
//	client := rpc.WithRetry(chaos.Wrap(inner, cfg, k), pol)
type Transport struct {
	inner rpc.ShardClient
	cfg   Config
	shard int

	mu      sync.Mutex
	rng     *rand.Rand
	calls   int
	crashed bool
	events  []Event

	// faults counts injected faults by kind (SetObs). The counter bumps where
	// the event log appends — under the mutex, after the variate draws — so
	// enabling it cannot shift the rand stream or the schedule.
	faults *obs.CounterVec
}

// Wrap layers the fault schedule over a shard client. A disabled config
// returns the client unchanged.
func Wrap(inner rpc.ShardClient, cfg Config, shard int) rpc.ShardClient {
	if !cfg.Enabled() {
		return inner
	}
	if cfg.Delay > 0 && cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 10 * time.Millisecond
	}
	return &Transport{
		inner: inner,
		cfg:   cfg,
		shard: shard,
		rng:   rand.New(rand.NewSource(cfg.Seed*31 + int64(shard))),
	}
}

// SetObs registers the injected-fault counter
// (gavel_chaos_faults_total{kind}) on the plane's registry. Metrics are
// recorded strictly after the fault decision, so they never perturb the
// seeded schedule.
func (t *Transport) SetObs(p *obs.Plane) {
	if t == nil || p == nil {
		return
	}
	fv := p.Registry().CounterVec("gavel_chaos_faults_total", "Faults injected by the chaos transport, by kind.", "kind")
	for _, k := range []FaultKind{FaultDrop, FaultDup, FaultDelay, FaultPartition, FaultCrash} {
		fv.With(string(k))
	}
	t.mu.Lock()
	t.faults = fv
	t.mu.Unlock()
}

// inject logs one fault in the schedule and its counter (callers hold mu).
func (t *Transport) inject(e Event) {
	t.events = append(t.events, e)
	t.faults.With(string(e.Kind)).Inc()
}

// Schedule returns a copy of the injected-fault log so far. Two runs with the
// same seed and call sequence return equal schedules.
func (t *Transport) Schedule() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// ScheduleString renders the schedule one fault per line — the form the
// determinism tests compare.
func (t *Transport) ScheduleString() string {
	var b strings.Builder
	for _, e := range t.Schedule() {
		fmt.Fprintf(&b, "%d %s %s\n", e.Call, e.Method, e.Kind)
	}
	return b.String()
}

// plan decides this call's faults under the lock, always drawing the same
// three variates so the stream stays aligned across runs regardless of which
// faults fire. The returned closures run outside the lock.
type plan struct {
	err   error // non-nil: fail without delivering
	dup   bool
	delay time.Duration
}

func (t *Transport) plan(method string, idempotent bool) plan {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	call := t.calls
	if t.crashed {
		return plan{err: rpc.Errorf(rpc.CodeShardDown, "chaos: shard %d crashed", t.shard)}
	}
	if t.cfg.CrashAfter > 0 && call > t.cfg.CrashAfter {
		t.crashed = true
		t.inject(Event{Call: call, Method: method, Kind: FaultCrash})
		return plan{err: rpc.Errorf(rpc.CodeShardDown, "chaos: shard %d crashed", t.shard)}
	}
	// Draw all three variates unconditionally: the stream must not depend on
	// which faults fire, or one differing draw would desynchronize the rest
	// of the schedule.
	dropDraw := t.rng.Float64()
	dupDraw := t.rng.Float64()
	delayDraw := t.rng.Float64()
	if t.cfg.PartitionCalls > 0 && call >= t.cfg.PartitionStart && call < t.cfg.PartitionStart+t.cfg.PartitionCalls {
		t.inject(Event{Call: call, Method: method, Kind: FaultPartition})
		return plan{err: rpc.Errorf(rpc.CodeUnavailable, "chaos: shard %d partitioned (call %d)", t.shard, call)}
	}
	if dropDraw < t.cfg.Drop {
		t.inject(Event{Call: call, Method: method, Kind: FaultDrop})
		return plan{err: rpc.Errorf(rpc.CodeUnavailable, "chaos: call %d to shard %d dropped", call, t.shard)}
	}
	var p plan
	if idempotent && dupDraw < t.cfg.Dup {
		t.inject(Event{Call: call, Method: method, Kind: FaultDup})
		p.dup = true
	}
	if delayDraw < t.cfg.Delay {
		t.inject(Event{Call: call, Method: method, Kind: FaultDelay})
		p.delay = t.cfg.MaxDelay
	}
	return p
}

// do runs one call through the fault plan. Hello and Configure are exempt
// (passed through by the methods below): they are setup-plane, and failing
// them would fail construction rather than exercise the round plane.
func (t *Transport) do(method string, idempotent bool, op func() error) error {
	p := t.plan(method, idempotent)
	if p.err != nil {
		return p.err
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.dup {
		if err := op(); err != nil {
			return err
		}
	}
	return op()
}

func (t *Transport) Hello(args rpc.HelloArgs) (rpc.HelloReply, error) { return t.inner.Hello(args) }
func (t *Transport) Configure(cfg rpc.ShardConfig) error              { return t.inner.Configure(cfg) }

func (t *Transport) Install(args rpc.InstallArgs) error {
	return t.do("Install", true, func() error { return t.inner.Install(args) })
}

func (t *Transport) Remove(args rpc.RemoveArgs) error {
	return t.do("Remove", true, func() error { return t.inner.Remove(args) })
}

// Extract is never duplicated: it is the surface's one non-idempotent call.
func (t *Transport) Extract(args rpc.ExtractArgs) (rpc.ExtractReply, error) {
	var reply rpc.ExtractReply
	err := t.do("Extract", false, func() error {
		var e error
		reply, e = t.inner.Extract(args)
		return e
	})
	return reply, err
}

func (t *Transport) Allocate(args rpc.AllocateArgs) (rpc.AllocateReply, error) {
	var reply rpc.AllocateReply
	err := t.do("Allocate", true, func() error {
		var e error
		reply, e = t.inner.Allocate(args)
		return e
	})
	return reply, err
}

func (t *Transport) AssignRound(args rpc.AssignRoundArgs) (rpc.AssignRoundReply, error) {
	var reply rpc.AssignRoundReply
	err := t.do("AssignRound", true, func() error {
		var e error
		reply, e = t.inner.AssignRound(args)
		return e
	})
	return reply, err
}

func (t *Transport) Observe(args rpc.ObserveArgs) error {
	return t.do("Observe", true, func() error { return t.inner.Observe(args) })
}

func (t *Transport) ObserveJob(args rpc.ObserveJobArgs) error {
	return t.do("ObserveJob", true, func() error { return t.inner.ObserveJob(args) })
}

func (t *Transport) Snapshot() (rpc.SnapshotReply, error) {
	var reply rpc.SnapshotReply
	err := t.do("Snapshot", true, func() error {
		var e error
		reply, e = t.inner.Snapshot()
		return e
	})
	return reply, err
}

func (t *Transport) Status() (rpc.ShardStatus, error) {
	var reply rpc.ShardStatus
	err := t.do("Status", true, func() error {
		var e error
		reply, e = t.inner.Status()
		return e
	})
	return reply, err
}

func (t *Transport) Ping() error {
	return t.do("Ping", true, func() error { return t.inner.Ping() })
}

func (t *Transport) Close() error { return t.inner.Close() }
