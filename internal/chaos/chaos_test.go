package chaos

import (
	"testing"
	"time"

	"gavel/internal/rpc"
)

// nopClient is a stub shard transport that succeeds at everything and counts
// how many times each method body actually runs — which is how the dup tests
// distinguish "delivered twice" from "logged twice".
type nopClient struct {
	delivered map[string]int
}

func newNopClient() *nopClient { return &nopClient{delivered: map[string]int{}} }

func (n *nopClient) hit(m string) { n.delivered[m]++ }

func (n *nopClient) Hello(args rpc.HelloArgs) (rpc.HelloReply, error) {
	n.hit("Hello")
	return rpc.HelloReply{}, nil
}
func (n *nopClient) Configure(cfg rpc.ShardConfig) error { n.hit("Configure"); return nil }
func (n *nopClient) Install(args rpc.InstallArgs) error  { n.hit("Install"); return nil }
func (n *nopClient) Remove(args rpc.RemoveArgs) error    { n.hit("Remove"); return nil }
func (n *nopClient) Extract(args rpc.ExtractArgs) (rpc.ExtractReply, error) {
	n.hit("Extract")
	return rpc.ExtractReply{}, nil
}
func (n *nopClient) Allocate(args rpc.AllocateArgs) (rpc.AllocateReply, error) {
	n.hit("Allocate")
	return rpc.AllocateReply{}, nil
}
func (n *nopClient) AssignRound(args rpc.AssignRoundArgs) (rpc.AssignRoundReply, error) {
	n.hit("AssignRound")
	return rpc.AssignRoundReply{}, nil
}
func (n *nopClient) Observe(args rpc.ObserveArgs) error { n.hit("Observe"); return nil }
func (n *nopClient) ObserveJob(args rpc.ObserveJobArgs) error {
	n.hit("ObserveJob")
	return nil
}
func (n *nopClient) Snapshot() (rpc.SnapshotReply, error) {
	n.hit("Snapshot")
	return rpc.SnapshotReply{}, nil
}
func (n *nopClient) Status() (rpc.ShardStatus, error) { n.hit("Status"); return rpc.ShardStatus{}, nil }
func (n *nopClient) Ping() error                      { n.hit("Ping"); return nil }
func (n *nopClient) Close() error                     { return nil }

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("seed=42,drop=0.05,dup=0.01,delay=0.1,maxdelay=20ms,partition=40+10,crash=200")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, Drop: 0.05, Dup: 0.01, Delay: 0.1, MaxDelay: 20 * time.Millisecond,
		PartitionStart: 40, PartitionCalls: 10, CrashAfter: 200,
	}
	if c != want {
		t.Fatalf("ParseSpec = %+v, want %+v", c, want)
	}
	if !c.Enabled() {
		t.Fatal("parsed spec reports disabled")
	}

	c, err = ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("empty spec reports enabled")
	}

	for _, bad := range []string{
		"frobnicate=1",      // unknown key
		"drop",              // not key=value
		"drop=lots",         // bad float
		"partition=40",      // missing +calls
		"partition=x+10",    // bad start
		"maxdelay=20lustra", // bad duration
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// drive pushes a fixed mixed-method call sequence through a client, ignoring
// errors: the shape the determinism tests replay under different seeds.
func drive(c rpc.ShardClient, calls int) {
	for i := 0; i < calls; i++ {
		switch i % 5 {
		case 0:
			c.Ping()
		case 1:
			c.Install(rpc.InstallArgs{JobID: i})
		case 2:
			c.Allocate(rpc.AllocateArgs{Round: int64(i)})
		case 3:
			c.Observe(rpc.ObserveArgs{})
		case 4:
			c.Status()
		}
	}
}

// TestScheduleDeterministic: the acceptance property — a fixed seed reproduces
// the identical fault schedule across two runs; a different seed does not.
func TestScheduleDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.2, Dup: 0.2, Delay: 0.1, MaxDelay: time.Microsecond}
	run := func(cfg Config) string {
		tr := Wrap(newNopClient(), cfg, 3).(*Transport)
		drive(tr, 200)
		return tr.ScheduleString()
	}

	a, b := run(cfg), run(cfg)
	if a == "" {
		t.Fatal("200 calls at drop=0.2 injected no faults")
	}
	if a != b {
		t.Fatalf("same seed produced different schedules:\n--- run 1\n%s--- run 2\n%s", a, b)
	}

	cfg2 := cfg
	cfg2.Seed = 8
	if c := run(cfg2); c == a {
		t.Fatal("different seeds produced identical 200-call schedules")
	}
}

// TestShardStreamsIndependent: each shard draws from its own stream, so two
// shards under one config see different (but individually reproducible) faults.
func TestShardStreamsIndependent(t *testing.T) {
	cfg := Config{Seed: 7, Drop: 0.3}
	run := func(shard int) string {
		tr := Wrap(newNopClient(), cfg, shard).(*Transport)
		drive(tr, 200)
		return tr.ScheduleString()
	}
	if run(0) == run(1) {
		t.Fatal("shards 0 and 1 drew identical fault streams")
	}
}

// TestCrashPermanent: after CrashAfter calls the transport is dead for good —
// every later call fails with CodeShardDown and exactly one crash is logged.
func TestCrashPermanent(t *testing.T) {
	inner := newNopClient()
	tr := Wrap(inner, Config{Seed: 1, CrashAfter: 5}, 0).(*Transport)
	for i := 0; i < 5; i++ {
		if err := tr.Ping(); err != nil {
			t.Fatalf("call %d before crash failed: %v", i+1, err)
		}
	}
	for i := 0; i < 10; i++ {
		err := tr.Ping()
		if rpc.CodeOf(err) != rpc.CodeShardDown {
			t.Fatalf("post-crash call %d returned %v, want CodeShardDown", i+1, err)
		}
	}
	if got := inner.delivered["Ping"]; got != 5 {
		t.Fatalf("daemon saw %d pings after crash at 5", got)
	}
	crashes := 0
	for _, e := range tr.Schedule() {
		if e.Kind == FaultCrash {
			crashes++
		}
	}
	if crashes != 1 {
		t.Fatalf("%d crash events logged, want 1", crashes)
	}
}

// TestPartitionWindow: calls inside [start, start+calls) fail with
// CodeUnavailable; calls on either side of the window go through.
func TestPartitionWindow(t *testing.T) {
	tr := Wrap(newNopClient(), Config{Seed: 1, PartitionStart: 3, PartitionCalls: 2}, 0).(*Transport)
	for i := 1; i <= 6; i++ {
		err := tr.Ping()
		inWindow := i >= 3 && i < 5
		if inWindow && rpc.CodeOf(err) != rpc.CodeUnavailable {
			t.Fatalf("call %d inside partition returned %v, want CodeUnavailable", i, err)
		}
		if !inWindow && err != nil {
			t.Fatalf("call %d outside partition failed: %v", i, err)
		}
	}
	for _, e := range tr.Schedule() {
		if e.Kind != FaultPartition {
			t.Fatalf("unexpected %s event during pure partition config", e.Kind)
		}
	}
}

// TestDupSparesExtract: at dup=1.0 every idempotent call is delivered twice,
// but Extract — the one non-idempotent call — is always delivered exactly once.
func TestDupSparesExtract(t *testing.T) {
	inner := newNopClient()
	tr := Wrap(inner, Config{Seed: 1, Dup: 1.0}, 0).(*Transport)
	tr.Install(rpc.InstallArgs{JobID: 1})
	tr.Ping()
	if _, err := tr.Extract(rpc.ExtractArgs{JobID: 1}); err != nil {
		t.Fatal(err)
	}
	if inner.delivered["Install"] != 2 || inner.delivered["Ping"] != 2 {
		t.Fatalf("idempotent calls delivered %v, want twice each", inner.delivered)
	}
	if inner.delivered["Extract"] != 1 {
		t.Fatalf("Extract delivered %d times, want exactly 1", inner.delivered["Extract"])
	}
	for _, e := range tr.Schedule() {
		if e.Method == "Extract" && e.Kind == FaultDup {
			t.Fatal("Extract was scheduled for duplication")
		}
	}
}

// TestSetupPlaneExempt: Hello and Configure bypass injection entirely — a
// config that drops everything still lets the handshake through.
func TestSetupPlaneExempt(t *testing.T) {
	inner := newNopClient()
	tr := Wrap(inner, Config{Seed: 1, Drop: 1.0}, 0)
	if _, err := tr.Hello(rpc.HelloArgs{Version: rpc.ProtocolVersion}); err != nil {
		t.Fatalf("Hello blocked by chaos: %v", err)
	}
	if err := tr.Configure(rpc.ShardConfig{}); err != nil {
		t.Fatalf("Configure blocked by chaos: %v", err)
	}
	if err := tr.Ping(); rpc.CodeOf(err) != rpc.CodeUnavailable {
		t.Fatalf("round-plane call at drop=1.0 returned %v, want CodeUnavailable", err)
	}
}

// TestWrapDisabled: a zero config is a no-op wrapper, not a transport.
func TestWrapDisabled(t *testing.T) {
	inner := newNopClient()
	if got := Wrap(inner, Config{}, 0); got != rpc.ShardClient(inner) {
		t.Fatal("disabled config did not return the inner client unchanged")
	}
}
