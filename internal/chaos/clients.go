package chaos

// Seeded synthetic tenant clients for the submission plane: a ClientSpec
// describes one tenant's behavior (volume, arrival rate, SLO class, and how
// honestly it declares throughputs) and expands deterministically into the
// exact submission stream. The chaos-smoke CI job and gavel-submit both
// build their flooding and misreporting tenants from these specs, so a
// failure reproduces from the spec string alone.

import (
	"fmt"
	"strconv"
	"strings"

	"gavel/internal/rpc"
	"gavel/internal/workload"
)

// ClientSpec is one synthetic tenant. Lie scales the declared throughputs
// relative to the truth (1 or 0 = honest; 3 = a tenant inflating its rows
// 3x to win allocation share). StepsScale shortens jobs for smoke runs
// (0 = full length).
type ClientSpec struct {
	Tenant        string
	Jobs          int
	Seed          int64
	SLOClass      int
	Lie           float64
	LambdaPerHour float64
	StepsScale    float64
}

// ParseClientSpec parses "tenant=flood,jobs=40,seed=7,slo=0,lie=3,
// lambda=3600,steps=0.001". Only tenant and jobs are required; unknown keys
// are an error so typos fail loudly.
func ParseClientSpec(s string) (ClientSpec, error) {
	var cs ClientSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return cs, fmt.Errorf("chaos: client spec field %q is not key=value", part)
		}
		var err error
		switch k {
		case "tenant":
			cs.Tenant = v
		case "jobs":
			cs.Jobs, err = strconv.Atoi(v)
		case "seed":
			cs.Seed, err = strconv.ParseInt(v, 10, 64)
		case "slo":
			cs.SLOClass, err = strconv.Atoi(v)
		case "lie":
			cs.Lie, err = strconv.ParseFloat(v, 64)
		case "lambda":
			cs.LambdaPerHour, err = strconv.ParseFloat(v, 64)
		case "steps":
			cs.StepsScale, err = strconv.ParseFloat(v, 64)
		default:
			return cs, fmt.Errorf("chaos: unknown client spec key %q", k)
		}
		if err != nil {
			return cs, fmt.Errorf("chaos: client spec %s=%q: %v", k, v, err)
		}
	}
	if cs.Tenant == "" || cs.Jobs <= 0 {
		return cs, fmt.Errorf("chaos: client spec needs tenant= and jobs=")
	}
	return cs, nil
}

// String renders the spec back into ParseClientSpec's format.
func (cs ClientSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tenant=%s,jobs=%d,seed=%d", cs.Tenant, cs.Jobs, cs.Seed)
	if cs.SLOClass != 0 {
		fmt.Fprintf(&b, ",slo=%d", cs.SLOClass)
	}
	if cs.Lie != 0 {
		fmt.Fprintf(&b, ",lie=%s", strconv.FormatFloat(cs.Lie, 'g', -1, 64))
	}
	if cs.LambdaPerHour != 0 {
		fmt.Fprintf(&b, ",lambda=%s", strconv.FormatFloat(cs.LambdaPerHour, 'g', -1, 64))
	}
	if cs.StepsScale != 0 {
		fmt.Fprintf(&b, ",steps=%s", strconv.FormatFloat(cs.StepsScale, 'g', -1, 64))
	}
	return b.String()
}

// Submissions expands the spec into its deterministic submission stream:
// jobs sampled from the workload zoo under the spec's seed, declared
// throughputs = truth x Lie, idempotency keys derived from the tenant name
// and sequence number (so a retried stream dedupes server-side).
func (cs ClientSpec) Submissions() []rpc.SubmitArgs {
	lie := cs.Lie
	if lie <= 0 {
		lie = 1
	}
	scale := cs.StepsScale
	if scale <= 0 {
		scale = 1
	}
	jobs := workload.GenerateTrace(workload.TraceOptions{
		NumJobs:       cs.Jobs,
		LambdaPerHour: cs.LambdaPerHour,
		Seed:          cs.Seed,
	})
	out := make([]rpc.SubmitArgs, 0, len(jobs))
	for i, j := range jobs {
		tput := make([]float64, workload.NumTypes)
		for t := range tput {
			if workload.Fits(j.Config, t) {
				tput[t] = workload.ScaledThroughput(j.Config, t, j.ScaleFactor, true) * lie
			}
		}
		out = append(out, rpc.SubmitArgs{
			Tenant:      cs.Tenant,
			Key:         fmt.Sprintf("%s-%04d", cs.Tenant, i),
			Name:        j.Config.Name(),
			TotalSteps:  j.TotalSteps * scale,
			ScaleFactor: j.ScaleFactor,
			Tput:        tput,
			SLOClass:    cs.SLOClass,
		})
	}
	return out
}
