// Package core implements Gavel's policy framework: allocation matrices over
// scheduling units (single jobs and space-sharing job pairs), effective
// throughput (§3.1), and the shared linear-program constraint structure that
// makes any objective expressible over effective throughput automatically
// heterogeneity-, colocation-, and placement-aware.
package core

import (
	"fmt"
	"math"

	"gavel/internal/lp"
)

// Unit is a scheduling unit: one job, or a pair of jobs sharing a device
// (space sharing, §3.1). Jobs holds indices into the policy input's job
// list; Tput[k][j] is the throughput (iterations/sec) of member k when the
// unit runs on accelerator type j. A zero Tput entry means the unit cannot
// run on that type.
type Unit struct {
	Jobs []int
	Tput [][]float64
	// Key is the unit's stable identity across reset events, derived from
	// the external job IDs it schedules (JobKey/PairKey), not the positions
	// in Jobs. Program uses it to name LP columns so a cached simplex basis
	// can be remapped after arrivals and departures reshuffle positions.
	// Empty is valid and falls back to positional naming (no cross-shape
	// reuse for that column).
	Key string
}

// Single constructs a one-job unit.
func Single(job int, tput []float64) Unit {
	return Unit{Jobs: []int{job}, Tput: [][]float64{tput}}
}

// Pair constructs a two-job space-sharing unit.
func Pair(a, b int, ta, tb []float64) Unit {
	return Unit{Jobs: []int{a, b}, Tput: [][]float64{ta, tb}}
}

// Keyed returns a copy of the unit carrying the given stable identity.
func (u Unit) Keyed(key string) Unit {
	u.Key = key
	return u
}

// JobKey is the stable unit key for the single-job unit of the job with the
// given external ID.
func JobKey(id int) string { return fmt.Sprintf("j%d", id) }

// PairKey is the stable unit key for the space-sharing pair of the jobs with
// the given external IDs (order-insensitive: a pair's LP column means the
// same thing regardless of which member is listed first).
func PairKey(a, b int) string {
	if a > b {
		a, b = b, a
	}
	return fmt.Sprintf("p%d|%d", a, b)
}

// IsPair reports whether the unit is a space-sharing combination.
func (u *Unit) IsPair() bool { return len(u.Jobs) == 2 }

// Contains reports whether the unit includes the given job.
func (u *Unit) Contains(job int) bool { return u.memberIndex(job) >= 0 }

// memberIndex returns the position of job within u.Jobs, or -1.
func (u *Unit) memberIndex(job int) int {
	for k, j := range u.Jobs {
		if j == job {
			return k
		}
	}
	return -1
}

// Allocation is the policy output: X[u][j] is the fraction of wall-clock
// time unit u should spend on accelerator type j.
type Allocation struct {
	Units []Unit
	X     [][]float64
}

// EffectiveThroughput returns throughput(m, X): the time-weighted average
// throughput of job m across its units and accelerator types (§3.1).
func (a *Allocation) EffectiveThroughput(job int) float64 {
	var s float64
	for ui := range a.Units {
		u := &a.Units[ui]
		k := u.memberIndex(job)
		if k < 0 {
			continue
		}
		for j, x := range a.X[ui] {
			if x > 0 {
				s += x * u.Tput[k][j]
			}
		}
	}
	return s
}

// JobTimeFraction returns the total time fraction job m is scheduled for
// (across all its units and types). Valid allocations keep this <= 1.
func (a *Allocation) JobTimeFraction(job int) float64 {
	var s float64
	for ui := range a.Units {
		if a.Units[ui].memberIndex(job) < 0 {
			continue
		}
		for _, x := range a.X[ui] {
			s += x
		}
	}
	return s
}

// Validate checks the allocation against the standard constraints: entries
// in [0,1], per-job time budget <= 1, and per-type worker capacity.
func (a *Allocation) Validate(scaleFactors []int, workers []float64) error {
	numJobs := 0
	for _, u := range a.Units {
		for _, j := range u.Jobs {
			if j+1 > numJobs {
				numJobs = j + 1
			}
		}
	}
	if len(a.X) != len(a.Units) {
		return fmt.Errorf("core: X has %d rows, %d units", len(a.X), len(a.Units))
	}
	const tol = 1e-5
	for ui, row := range a.X {
		for j, x := range row {
			if x < -tol || x > 1+tol {
				return fmt.Errorf("core: X[%d][%d] = %v out of [0,1]", ui, j, x)
			}
		}
	}
	for m := 0; m < numJobs; m++ {
		if f := a.JobTimeFraction(m); f > 1+tol {
			return fmt.Errorf("core: job %d time fraction %v > 1", m, f)
		}
	}
	if len(workers) > 0 {
		used := make([]float64, len(workers))
		for ui, row := range a.X {
			sf := 1.0
			for _, jm := range a.Units[ui].Jobs {
				if jm < len(scaleFactors) && float64(scaleFactors[jm]) > sf {
					sf = float64(scaleFactors[jm])
				}
			}
			for j, x := range row {
				used[j] += x * sf
			}
		}
		for j := range workers {
			if used[j] > workers[j]+tol*10 {
				return fmt.Errorf("core: type %d oversubscribed: %v > %v", j, used[j], workers[j])
			}
		}
	}
	return nil
}

// Program is a partially-built policy LP: variables X[u][j] wired with the
// standard validity constraints. Policies add their objective terms and any
// extra constraints, then Solve.
type Program struct {
	P     *lp.Problem
	Units []Unit
	// XVar[u][j] is the LP variable index of X[u][j], or -1 when the unit
	// cannot run on type j (zero throughput for all members).
	XVar    [][]int
	numJobs int
	colIDs  []lp.ColumnID
}

// NewProgram builds the LP skeleton for the given units under the standard
// constraints (§3.1):
//
//	sum over units containing m, sum over j of X_uj           <= 1   per job m
//	sum over u of X_uj * scaleFactor(u)                       <= W_j per type j
//	X_uj >= 0 (implicit; the per-job budget bounds X_uj <= 1)
//
// scaleFactors is per *job*; a pair unit inherits the max of its members
// (in practice pairs are only formed between single-worker jobs).
func NewProgram(sense lp.Sense, units []Unit, scaleFactors []int, workers []float64) *Program {
	p := lp.NewProblem(sense)
	numTypes := len(workers)
	xv := make([][]int, len(units))
	numJobs := 0
	var colIDs []lp.ColumnID
	for ui := range units {
		u := &units[ui]
		xv[ui] = make([]int, numTypes)
		for _, jm := range u.Jobs {
			if jm+1 > numJobs {
				numJobs = jm + 1
			}
		}
		// Columns are named by the unit's stable key so a basis survives
		// job arrivals/departures; unkeyed units fall back to positional
		// names, which only ever match a problem of identical layout.
		key := u.Key
		if key == "" {
			key = fmt.Sprintf("u%d", ui)
		}
		for j := 0; j < numTypes; j++ {
			usable := false
			for k := range u.Jobs {
				if u.Tput[k][j] > 0 {
					usable = true
					break
				}
			}
			if usable {
				xv[ui][j] = p.AddVar(0, fmt.Sprintf("x[%d][%d]", ui, j))
				colIDs = append(colIDs, lp.ColumnID(fmt.Sprintf("%s@%d", key, j)))
			} else {
				xv[ui][j] = -1
			}
		}
	}

	// Per-job time budget: sum over the job's units of sum_j X_uj <= 1.
	// Rows are labeled by the job's single-unit key so a cached basis can
	// pin this row's state back after the job set changes.
	for m := 0; m < numJobs; m++ {
		var terms []lp.Term
		for ui := range units {
			if units[ui].memberIndex(m) < 0 {
				continue
			}
			for j := 0; j < numTypes; j++ {
				if xv[ui][j] >= 0 {
					terms = append(terms, lp.Term{Var: xv[ui][j], Coeff: 1})
				}
			}
		}
		if len(terms) > 0 {
			// Label only under the documented layout (job m's single unit
			// at index m); any other arrangement gets an anonymous row
			// rather than a wrong identity.
			id := ""
			if m < len(units) && units[m].Key != "" &&
				len(units[m].Jobs) == 1 && units[m].Jobs[0] == m {
				id = "b:" + units[m].Key
			}
			p.AddConstraintRow(terms, lp.LE, 1, id)
		}
	}

	// Per-type worker capacity.
	for j := 0; j < numTypes; j++ {
		var terms []lp.Term
		for ui := range units {
			if xv[ui][j] < 0 {
				continue
			}
			sf := 1.0
			for _, jm := range units[ui].Jobs {
				if jm < len(scaleFactors) && float64(scaleFactors[jm]) > sf {
					sf = float64(scaleFactors[jm])
				}
			}
			terms = append(terms, lp.Term{Var: xv[ui][j], Coeff: sf})
		}
		if len(terms) > 0 {
			p.AddConstraintRow(terms, lp.LE, workers[j], fmt.Sprintf("c:%d", j))
		}
	}

	return &Program{P: p, Units: units, XVar: xv, numJobs: numJobs, colIDs: colIDs}
}

// NumJobs returns the number of distinct jobs across the program's units.
func (pr *Program) NumJobs() int { return pr.numJobs }

// AddVar adds a policy variable (an objective scalar like the max-min floor
// t, or a per-job slack) with a stable column identity, and returns its LP
// index. Policies should derive per-job identities from external job IDs so
// the column survives reshuffles of the active set.
func (pr *Program) AddVar(objCoeff float64, id string) int {
	// Pad positional fallbacks for any variables added behind the
	// program's back first, so the identity lands on the right column
	// regardless of interleaving.
	for len(pr.colIDs) < pr.P.NumVars() {
		pr.colIDs = append(pr.colIDs, lp.ColumnID(fmt.Sprintf("v%d", len(pr.colIDs))))
	}
	v := pr.P.AddVar(objCoeff, id)
	pr.colIDs = append(pr.colIDs, lp.ColumnID(id))
	return v
}

// AddRow adds a policy constraint with a stable row identity, so the row's
// basis state survives cross-shape remapping. Derive per-job identities from
// external job IDs (e.g. "r:<jobID>"), never positions.
func (pr *Program) AddRow(terms []lp.Term, op lp.Op, rhs float64, id string) {
	pr.P.AddConstraintRow(terms, op, rhs, id)
}

// ColumnIDs returns the stable identity of every LP variable, in variable
// order: allocation columns as "<unitKey>@<type>", policy variables as the
// names they were added with. Variables added behind the program's back
// (directly on pr.P) get positional fallbacks, which disables cross-shape
// reuse for them but never affects correctness.
func (pr *Program) ColumnIDs() []lp.ColumnID {
	for len(pr.colIDs) < pr.P.NumVars() {
		pr.colIDs = append(pr.colIDs, lp.ColumnID(fmt.Sprintf("v%d", len(pr.colIDs))))
	}
	return pr.colIDs
}

// ThroughputTerms returns LP terms expressing throughput(m, X) scaled by
// factor: factor * sum over units u containing m of T(u,m,j) * X_uj.
func (pr *Program) ThroughputTerms(job int, factor float64) []lp.Term {
	var terms []lp.Term
	for ui := range pr.Units {
		u := &pr.Units[ui]
		k := u.memberIndex(job)
		if k < 0 {
			continue
		}
		for j, v := range pr.XVar[ui] {
			if v >= 0 && u.Tput[k][j] > 0 {
				terms = append(terms, lp.Term{Var: v, Coeff: factor * u.Tput[k][j]})
			}
		}
	}
	return terms
}

// Extract converts an LP solution vector into an Allocation, clamping tiny
// negative noise to zero.
func (pr *Program) Extract(x []float64) *Allocation {
	numTypes := 0
	if len(pr.XVar) > 0 {
		numTypes = len(pr.XVar[0])
	}
	X := make([][]float64, len(pr.Units))
	for ui := range pr.Units {
		X[ui] = make([]float64, numTypes)
		for j, v := range pr.XVar[ui] {
			if v < 0 {
				continue
			}
			val := x[v]
			if val < 0 {
				val = 0
			}
			if val > 1 {
				val = 1
			}
			X[ui][j] = val
		}
	}
	return &Allocation{Units: pr.Units, X: X}
}

// EqualShareThroughput returns throughput(m, X^equal): the effective
// throughput job m (as a single-job unit with throughputs tput) would see
// under the allocation that gives it time on each type proportional to that
// type's share of the cluster (§4.1). Used to normalize fairness
// objectives so they are comparable across jobs.
func EqualShareThroughput(tput []float64, workers []float64) float64 {
	total := 0.0
	for _, w := range workers {
		total += w
	}
	if total == 0 {
		return 0
	}
	var s float64
	for j, w := range workers {
		s += tput[j] * (w / total)
	}
	return s
}

// MaxThroughput returns max_j tput[j] (throughput on the fastest type for
// this job; the FIFO policy's normalizer).
func MaxThroughput(tput []float64) float64 {
	m := 0.0
	for _, t := range tput {
		if t > m {
			m = t
		}
	}
	return m
}

// Finite reports whether v is a usable throughput (not NaN/Inf, > 0).
func Finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
