package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refState is the from-scratch reference the cache must match: plain maps of
// the same logical state, with units rebuilt from nothing on every query.
type refState struct {
	numTypes int
	tput     map[int][]float64
	sf       map[int]int
	pairs    map[[2]int][2][]float64 // key sorted; [0] = lower id's row
}

func newRefState(numTypes int) *refState {
	return &refState{
		numTypes: numTypes,
		tput:     map[int][]float64{},
		sf:       map[int]int{},
		pairs:    map[[2]int][2][]float64{},
	}
}

func (r *refState) key(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (r *refState) units(ids []int, minGain float64, maxPairs int) []Unit {
	units := make([]Unit, 0, len(ids))
	for m, id := range ids {
		t := r.tput[id]
		if t == nil {
			t = make([]float64, r.numTypes)
		}
		units = append(units, Single(m, t))
	}
	type cand struct {
		a, b int
		gain float64
	}
	var cands []cand
	for a := 0; a < len(ids); a++ {
		if r.sf[ids[a]] > 1 {
			continue
		}
		for b := a + 1; b < len(ids); b++ {
			if r.sf[ids[b]] > 1 {
				continue
			}
			p, ok := r.pairs[r.key(ids[a], ids[b])]
			if !ok {
				continue
			}
			ta, tb := p[0], p[1]
			if ids[a] > ids[b] {
				ta, tb = tb, ta
			}
			best := 0.0
			for t := 0; t < r.numTypes; t++ {
				ia, ib := r.tput[ids[a]][t], r.tput[ids[b]][t]
				if ia > 0 && ib > 0 {
					if g := ta[t]/ia + tb[t]/ib; g > best {
						best = g
					}
				}
			}
			if best > minGain {
				cands = append(cands, cand{a: a, b: b, gain: best})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	count := make([]int, len(ids))
	for _, s := range cands {
		if count[s.a] >= maxPairs || count[s.b] >= maxPairs {
			continue
		}
		count[s.a]++
		count[s.b]++
		p := r.pairs[r.key(ids[s.a], ids[s.b])]
		ta, tb := p[0], p[1]
		if ids[s.a] > ids[s.b] {
			ta, tb = tb, ta
		}
		units = append(units, Pair(s.a, s.b, ta, tb))
	}
	return units
}

func unitsEqual(t *testing.T, got, want []Unit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("unit count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i].Jobs) != len(want[i].Jobs) {
			t.Fatalf("unit %d member count: got %v want %v", i, got[i].Jobs, want[i].Jobs)
		}
		for k := range got[i].Jobs {
			if got[i].Jobs[k] != want[i].Jobs[k] {
				t.Fatalf("unit %d members: got %v want %v", i, got[i].Jobs, want[i].Jobs)
			}
			for j := range got[i].Tput[k] {
				if math.Abs(got[i].Tput[k][j]-want[i].Tput[k][j]) > 1e-12 {
					t.Fatalf("unit %d member %d type %d: got %v want %v",
						i, k, j, got[i].Tput[k][j], want[i].Tput[k][j])
				}
			}
		}
	}
}

// TestThroughputCacheMatchesFromScratch drives the cache through random
// add/remove/observe sequences and asserts Units always matches a
// from-scratch reconstruction of the same logical state.
func TestThroughputCacheMatchesFromScratch(t *testing.T) {
	const numTypes = 3
	rng := rand.New(rand.NewSource(23))
	cache := NewThroughputCache(numTypes)
	ref := newRefState(numTypes)
	var live []int
	nextID := 0

	randTput := func() []float64 {
		t := make([]float64, numTypes)
		for j := range t {
			if rng.Float64() < 0.9 {
				t[j] = 0.5 + 2*rng.Float64()
			}
		}
		return t
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Float64(); {
		case op < 0.35 || len(live) == 0: // add
			id := nextID
			nextID++
			sf := 1
			if rng.Float64() < 0.2 {
				sf = 2 + rng.Intn(3)
			}
			tput := randTput()
			cache.AddJob(id, sf, tput)
			ref.tput[id] = append([]float64(nil), tput...)
			ref.sf[id] = sf
			// Pair the newcomer against every live single-worker job.
			if sf == 1 {
				for _, other := range live {
					if ref.sf[other] > 1 || rng.Float64() < 0.3 {
						continue
					}
					ta, tb := randTput(), randTput()
					cache.SetPair(id, other, ta, tb)
					lo, hi := ta, tb
					if id > other {
						lo, hi = tb, ta
					}
					ref.pairs[ref.key(id, other)] = [2][]float64{
						append([]float64(nil), lo...), append([]float64(nil), hi...)}
				}
			}
			live = append(live, id)
		case op < 0.55: // remove
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			cache.RemoveJob(id)
			delete(ref.tput, id)
			delete(ref.sf, id)
			for key := range ref.pairs {
				if key[0] == id || key[1] == id {
					delete(ref.pairs, key)
				}
			}
		case op < 0.75: // observe isolated
			id := live[rng.Intn(len(live))]
			tput := randTput()
			cache.ObserveJob(id, tput)
			ref.tput[id] = append([]float64(nil), tput...)
		default: // observe one pair entry
			if len(ref.pairs) == 0 {
				continue
			}
			keys := make([][2]int, 0, len(ref.pairs))
			for k := range ref.pairs {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
			})
			key := keys[rng.Intn(len(keys))]
			typ := rng.Intn(numTypes)
			ta, tb := 0.5+rng.Float64(), 0.5+rng.Float64()
			cache.ObservePair(key[0], key[1], typ, ta, tb)
			p := ref.pairs[key]
			lo := append([]float64(nil), p[0]...)
			hi := append([]float64(nil), p[1]...)
			lo[typ], hi[typ] = ta, tb
			ref.pairs[key] = [2][]float64{lo, hi}
		}

		if step%7 == 0 {
			ids := append([]int(nil), live...)
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			unitsEqual(t, cache.Units(ids, 1.05, 4), ref.units(ids, 1.05, 4))
		}
	}
	if cache.Len() != len(live) {
		t.Fatalf("cache holds %d jobs, %d live", cache.Len(), len(live))
	}
}

// TestThroughputCacheRowStability checks that observing a job or pair does
// not mutate previously handed-out rows.
func TestThroughputCacheRowStability(t *testing.T) {
	c := NewThroughputCache(2)
	c.AddJob(1, 1, []float64{1, 2})
	c.AddJob(2, 1, []float64{3, 4})
	c.SetPair(1, 2, []float64{0.6, 1.2}, []float64{1.8, 2.4})

	row := c.JobTput(1)
	ta, tb, _ := c.PairTput(1, 2)
	c.ObserveJob(1, []float64{9, 9})
	c.ObservePair(1, 2, 0, 0.1, 0.2)
	if row[0] != 1 || row[1] != 2 {
		t.Fatalf("isolated row mutated in place: %v", row)
	}
	if ta[0] != 0.6 || tb[0] != 1.8 {
		t.Fatalf("pair rows mutated in place: %v %v", ta, tb)
	}
	if got := c.JobTput(1); got[0] != 9 {
		t.Fatalf("observe lost: %v", got)
	}
	if gta, _, _ := c.PairTput(1, 2); gta[0] != 0.1 {
		t.Fatalf("pair observe lost: %v", gta)
	}
}

// TestUnitsCarryStableKeys checks the column-identity contract: units from
// the cache are keyed by external job IDs (JobKey/PairKey), so the same jobs
// produce the same keys regardless of their positions in the active set, and
// a job's key never collides with another's after churn.
func TestUnitsCarryStableKeys(t *testing.T) {
	c := NewThroughputCache(2)
	for id := 10; id <= 13; id++ {
		c.AddJob(id, 1, []float64{1, 2})
	}
	c.SetPair(10, 12, []float64{0.9, 1.8}, []float64{0.9, 1.8})

	keysOf := func(ids []int) map[string]bool {
		out := map[string]bool{}
		for _, u := range c.Units(ids, 1.05, 4) {
			if u.Key == "" {
				t.Fatalf("cache-built unit %v has no key", u.Jobs)
			}
			if out[u.Key] {
				t.Fatalf("duplicate unit key %q", u.Key)
			}
			out[u.Key] = true
		}
		return out
	}

	before := keysOf([]int{10, 11, 12, 13})
	// 11 departs, 14 arrives, positions reshuffle.
	c.RemoveJob(11)
	c.AddJob(14, 1, []float64{3, 1})
	after := keysOf([]int{13, 10, 12, 14})

	for _, want := range []string{JobKey(10), JobKey(12), JobKey(13), PairKey(10, 12)} {
		if !before[want] || !after[want] {
			t.Fatalf("key %q did not survive churn (before=%v after=%v)", want, before[want], after[want])
		}
	}
	if after[JobKey(11)] {
		t.Fatal("departed job's key still present")
	}
	if !after[JobKey(14)] {
		t.Fatal("arrived job's key missing")
	}
	if PairKey(12, 10) != PairKey(10, 12) {
		t.Fatal("PairKey is order-sensitive")
	}
}

// referenceUnits is the pre-incremental Units algorithm — a full O(n²)
// rescan of every id pair — kept as the oracle for the incremental
// candidate list.
func referenceUnits(c *ThroughputCache, ids []int, minGain float64, maxPairs int) []Unit {
	units := make([]Unit, 0, len(ids))
	for m, id := range ids {
		tput := c.JobTput(id)
		if tput == nil {
			tput = make([]float64, c.NumTypes())
		}
		units = append(units, Single(m, tput).Keyed(JobKey(id)))
	}
	if maxPairs <= 0 {
		return units
	}
	type scored struct {
		a, b int
		gain float64
	}
	var cands []scored
	for a := 0; a < len(ids); a++ {
		if c.ScaleFactor(ids[a]) > 1 {
			continue
		}
		for b := a + 1; b < len(ids); b++ {
			if c.ScaleFactor(ids[b]) > 1 {
				continue
			}
			if g := c.PairGain(ids[a], ids[b]); g > minGain {
				cands = append(cands, scored{a: a, b: b, gain: g})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	pairCount := make([]int, len(ids))
	for _, s := range cands {
		if pairCount[s.a] >= maxPairs || pairCount[s.b] >= maxPairs {
			continue
		}
		pairCount[s.a]++
		pairCount[s.b]++
		ta, tb, _ := c.PairTput(ids[s.a], ids[s.b])
		units = append(units, Pair(s.a, s.b, ta, tb).Keyed(PairKey(ids[s.a], ids[s.b])))
	}
	return units
}

func sameUnitList(a, b []Unit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || len(a[i].Jobs) != len(b[i].Jobs) {
			return false
		}
		for k := range a[i].Jobs {
			if a[i].Jobs[k] != b[i].Jobs[k] {
				return false
			}
		}
	}
	return true
}

// TestUnitsIncrementalMatchesScan drives the cache through randomized
// add/remove/observe/pair mutations and checks after every step that the
// incrementally maintained candidate list assembles exactly the units the
// exhaustive rescan would.
func TestUnitsIncrementalMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const numTypes = 3
	c := NewThroughputCache(numTypes)
	randRow := func() []float64 {
		row := make([]float64, numTypes)
		for i := range row {
			row[i] = rng.Float64() * 5
		}
		return row
	}
	var live []int
	nextID := 0
	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(live) < 4:
			sf := 1
			if rng.Intn(8) == 0 {
				sf = 2
			}
			c.AddJob(nextID, sf, randRow())
			live = append(live, nextID)
			nextID++
		case op < 5:
			i := rng.Intn(len(live))
			c.RemoveJob(live[i])
			live = append(live[:i], live[i+1:]...)
		case op < 7:
			c.ObserveJob(live[rng.Intn(len(live))], randRow())
		case op < 9:
			a, b := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
			c.SetPair(a, b, randRow(), randRow())
		default:
			a, b := live[rng.Intn(len(live))], live[rng.Intn(len(live))]
			c.ObservePair(a, b, rng.Intn(numTypes), rng.Float64()*5, rng.Float64()*5)
		}
		// Query over a random subset, in random order, with varying
		// thresholds and caps.
		ids := append([]int(nil), live...)
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		if len(ids) > 2 {
			ids = ids[:2+rng.Intn(len(ids)-2)]
		}
		minGain := []float64{0, 0.5, 1.05}[rng.Intn(3)]
		maxPairs := rng.Intn(4)
		got := c.Units(ids, minGain, maxPairs)
		want := referenceUnits(c, ids, minGain, maxPairs)
		if !sameUnitList(got, want) {
			t.Fatalf("step %d: units diverged from reference (ids=%v minGain=%v maxPairs=%d)\n got: %d units\nwant: %d units",
				step, ids, minGain, maxPairs, len(got), len(want))
		}
	}
}

// BenchmarkThroughputCacheUnits is the regression benchmark for the
// incremental candidate list: one observed-throughput update per reset,
// then a Units call, at a size where the old full rescan's O(n²) pair
// scoring dominated.
func BenchmarkThroughputCacheUnits(b *testing.B) {
	const n, numTypes = 256, 3
	rng := rand.New(rand.NewSource(5))
	row := func() []float64 {
		r := make([]float64, numTypes)
		for i := range r {
			r[i] = 1 + rng.Float64()
		}
		return r
	}
	c := NewThroughputCache(numTypes)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
		c.AddJob(i, 1, row())
	}
	for i := 0; i < n; i++ {
		for k := 0; k < 4; k++ {
			c.SetPair(i, (i+7*k+1)%n, row(), row())
		}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ObserveJob(ids[i%n], row())
			if got := c.Units(ids, 1.05, 4); len(got) < n {
				b.Fatal("lost the singles")
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.ObserveJob(ids[i%n], row())
			if got := referenceUnits(c, ids, 1.05, 4); len(got) < n {
				b.Fatal("lost the singles")
			}
		}
	})
}
