package core

import "sort"

// ThroughputCache maintains the (job × scheduling-unit) effective-throughput
// matrices a policy input is built from, incrementally under job add/remove
// and throughput observations. Building a policy input used to mean
// re-querying every isolated throughput and re-enumerating every candidate
// space-sharing pair on each reset event; with the cache, a reset touches
// only the rows that actually changed and Units assembles the scheduling
// units from cached values.
//
// Jobs are identified by stable external IDs (trace job IDs), not positions,
// so entries survive arbitrary reorderings of the active set. The cache
// stores values pushed by the caller and never invents estimates; pushing is
// what keeps it provider-agnostic.
type ThroughputCache struct {
	numTypes int
	jobs     map[int]*cachedJob
	pairs    map[[2]int]*cachedPair
}

type cachedJob struct {
	tput        []float64
	scaleFactor int
}

// cachedPair stores the per-type colocated throughputs of a pair, with `lo`
// the member with the smaller job ID.
type cachedPair struct {
	lo, hi []float64
}

// NewThroughputCache returns an empty cache over numTypes accelerator types.
func NewThroughputCache(numTypes int) *ThroughputCache {
	return &ThroughputCache{
		numTypes: numTypes,
		jobs:     map[int]*cachedJob{},
		pairs:    map[[2]int]*cachedPair{},
	}
}

// NumTypes returns the accelerator-type count the cache was built for.
func (c *ThroughputCache) NumTypes() int { return c.numTypes }

// Len returns the number of cached jobs.
func (c *ThroughputCache) Len() int { return len(c.jobs) }

// Has reports whether the job is cached.
func (c *ThroughputCache) Has(id int) bool { _, ok := c.jobs[id]; return ok }

// IDs returns the cached job IDs in ascending order.
func (c *ThroughputCache) IDs() []int {
	ids := make([]int, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AddJob inserts (or overwrites) a job's isolated throughput row. The slice
// is copied.
func (c *ThroughputCache) AddJob(id, scaleFactor int, tput []float64) {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	c.jobs[id] = &cachedJob{tput: append([]float64(nil), tput...), scaleFactor: scaleFactor}
}

// RemoveJob drops a job and every pair involving it.
func (c *ThroughputCache) RemoveJob(id int) {
	if _, ok := c.jobs[id]; !ok {
		return
	}
	delete(c.jobs, id)
	for key := range c.pairs {
		if key[0] == id || key[1] == id {
			delete(c.pairs, key)
		}
	}
}

// ObserveJob replaces a job's isolated throughput row (a measured update).
// Previously handed-out references keep their old values: rows are replaced,
// never mutated in place.
func (c *ThroughputCache) ObserveJob(id int, tput []float64) {
	j, ok := c.jobs[id]
	if !ok {
		return
	}
	j.tput = append([]float64(nil), tput...)
}

// JobTput returns the cached isolated throughput row (shared, read-only),
// or nil when the job is unknown.
func (c *ThroughputCache) JobTput(id int) []float64 {
	if j, ok := c.jobs[id]; ok {
		return j.tput
	}
	return nil
}

// ScaleFactor returns the cached scale factor (0 when unknown).
func (c *ThroughputCache) ScaleFactor(id int) int {
	if j, ok := c.jobs[id]; ok {
		return j.scaleFactor
	}
	return 0
}

func pairIDKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SetPair records the colocated throughput rows of a pair: ta belongs to
// job a, tb to job b. Both slices are copied.
func (c *ThroughputCache) SetPair(a, b int, ta, tb []float64) {
	if a == b {
		return
	}
	key := pairIDKey(a, b)
	if a > b {
		ta, tb = tb, ta
	}
	c.pairs[key] = &cachedPair{
		lo: append([]float64(nil), ta...),
		hi: append([]float64(nil), tb...),
	}
}

// HasPair reports whether the pair has a cached row.
func (c *ThroughputCache) HasPair(a, b int) bool {
	_, ok := c.pairs[pairIDKey(a, b)]
	return ok
}

// PairTput returns the cached colocated throughputs for (a, b), in that
// argument order (shared, read-only).
func (c *ThroughputCache) PairTput(a, b int) (ta, tb []float64, ok bool) {
	p, ok := c.pairs[pairIDKey(a, b)]
	if !ok {
		return nil, nil, false
	}
	if a > b {
		return p.hi, p.lo, true
	}
	return p.lo, p.hi, true
}

// ObservePair updates one type's entry of a cached pair with a measured
// value (ta for job a, tb for job b). Rows are replaced, not mutated, so
// previously handed-out references stay stable.
func (c *ThroughputCache) ObservePair(a, b, typ int, ta, tb float64) {
	p, ok := c.pairs[pairIDKey(a, b)]
	if !ok || typ < 0 || typ >= c.numTypes {
		return
	}
	if a > b {
		ta, tb = tb, ta
	}
	lo := append([]float64(nil), p.lo...)
	hi := append([]float64(nil), p.hi...)
	lo[typ], hi[typ] = ta, tb
	c.pairs[pairIDKey(a, b)] = &cachedPair{lo: lo, hi: hi}
}

// PairGain returns the pair's best combined normalized throughput across
// types: max_t ta[t]/isoA[t] + tb[t]/isoB[t]. A gain above 1 means space
// sharing beats time sharing somewhere; 0 when the pair or either job is
// unknown.
func (c *ThroughputCache) PairGain(a, b int) float64 {
	ta, tb, ok := c.PairTput(a, b)
	if !ok {
		return 0
	}
	ja, jb := c.jobs[a], c.jobs[b]
	if ja == nil || jb == nil {
		return 0
	}
	best := 0.0
	for t := 0; t < c.numTypes; t++ {
		ia, ib := ja.tput[t], jb.tput[t]
		if ia > 0 && ib > 0 {
			if g := ta[t]/ia + tb[t]/ib; g > best {
				best = g
			}
		}
	}
	return best
}

// Units assembles the scheduling units for the given job IDs: the single-job
// unit of ids[m] at index m, followed by cached pair units whose gain
// exceeds minGain, in decreasing gain order (ties broken by position for
// determinism), capped at maxPairs pairs per job. Unit.Jobs indices refer to
// positions within ids, matching the policy input contract. Unknown IDs get
// an all-zero throughput row rather than a panic.
//
// Every unit carries its stable identity (JobKey for singles, PairKey for
// pairs), giving the LP columns built over these units a deterministic,
// job-ID-keyed ordering that survives arrivals and departures — the handle
// policy.SolveContext uses to remap cached simplex bases across job-set
// changes.
func (c *ThroughputCache) Units(ids []int, minGain float64, maxPairs int) []Unit {
	units := make([]Unit, 0, len(ids))
	for m, id := range ids {
		tput := c.JobTput(id)
		if tput == nil {
			tput = make([]float64, c.numTypes)
		}
		units = append(units, Single(m, tput).Keyed(JobKey(id)))
	}
	if maxPairs <= 0 || len(c.pairs) == 0 {
		return units
	}

	type scored struct {
		a, b int // positions within ids
		gain float64
	}
	var cands []scored
	for a := 0; a < len(ids); a++ {
		if c.ScaleFactor(ids[a]) > 1 {
			continue
		}
		for b := a + 1; b < len(ids); b++ {
			if c.ScaleFactor(ids[b]) > 1 {
				continue
			}
			if g := c.PairGain(ids[a], ids[b]); g > minGain {
				cands = append(cands, scored{a: a, b: b, gain: g})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	pairCount := make([]int, len(ids))
	for _, s := range cands {
		if pairCount[s.a] >= maxPairs || pairCount[s.b] >= maxPairs {
			continue
		}
		pairCount[s.a]++
		pairCount[s.b]++
		ta, tb, _ := c.PairTput(ids[s.a], ids[s.b])
		units = append(units, Pair(s.a, s.b, ta, tb).Keyed(PairKey(ids[s.a], ids[s.b])))
	}
	return units
}
