package core

import "sort"

// ThroughputCache maintains the (job × scheduling-unit) effective-throughput
// matrices a policy input is built from, incrementally under job add/remove
// and throughput observations. Building a policy input used to mean
// re-querying every isolated throughput and re-enumerating every candidate
// space-sharing pair on each reset event; with the cache, a reset touches
// only the rows that actually changed and Units assembles the scheduling
// units from cached values.
//
// Jobs are identified by stable external IDs (trace job IDs), not positions,
// so entries survive arbitrary reorderings of the active set. The cache
// stores values pushed by the caller and never invents estimates; pushing is
// what keeps it provider-agnostic.
type ThroughputCache struct {
	numTypes int
	jobs     map[int]*cachedJob
	pairs    map[[2]int]*cachedPair
	// Incremental pair-candidate state: Units used to rebuild and re-sort
	// the full O(n²) scored candidate list on every call even when nothing
	// changed. Instead, scored holds every cached pair with positive gain,
	// sorted by (gain desc, pair key asc), and is patched lazily from the
	// dirty-pair set that mutations maintain; a Units call then only
	// filters the pre-sorted list against the requested job set.
	peers    map[int]map[int]bool // job id -> peer ids with a cached pair
	scored   []pairScore
	inScored map[[2]int]float64 // exact gain each scored entry carries
	dirty    map[[2]int]bool
}

// pairScore is one entry of the sorted candidate list.
type pairScore struct {
	key  [2]int
	gain float64
}

// scoreLess orders candidates by decreasing gain, ties by ascending pair
// key, making the list deterministic and binary-searchable.
func scoreLess(x, y pairScore) bool {
	if x.gain != y.gain {
		return x.gain > y.gain
	}
	if x.key[0] != y.key[0] {
		return x.key[0] < y.key[0]
	}
	return x.key[1] < y.key[1]
}

type cachedJob struct {
	tput        []float64
	scaleFactor int
}

// cachedPair stores the per-type colocated throughputs of a pair, with `lo`
// the member with the smaller job ID.
type cachedPair struct {
	lo, hi []float64
}

// NewThroughputCache returns an empty cache over numTypes accelerator types.
func NewThroughputCache(numTypes int) *ThroughputCache {
	return &ThroughputCache{
		numTypes: numTypes,
		jobs:     map[int]*cachedJob{},
		pairs:    map[[2]int]*cachedPair{},
		peers:    map[int]map[int]bool{},
		inScored: map[[2]int]float64{},
		dirty:    map[[2]int]bool{},
	}
}

// markPairDirty queues one pair for a candidate-list patch.
func (c *ThroughputCache) markPairDirty(key [2]int) { c.dirty[key] = true }

// markJobDirty queues every cached pair involving the job: a new isolated
// throughput row changes all of the job's pair gains.
func (c *ThroughputCache) markJobDirty(id int) {
	for peer := range c.peers[id] {
		c.dirty[pairIDKey(id, peer)] = true
	}
}

// flushDirty patches the sorted candidate list: the k dirty pairs' fresh
// gains are re-scored and sorted, stale entries are dropped in one
// compaction pass, and the two sorted runs are merged — O(p + k·log k) for
// p list entries, with only the k dirty gains recomputed (a per-entry
// splice would make one job's departure cost O(n·p), and a full rebuild
// would re-score every pair).
func (c *ThroughputCache) flushDirty() {
	if len(c.dirty) == 0 {
		return
	}
	fresh := make([]pairScore, 0, len(c.dirty))
	for key := range c.dirty {
		delete(c.inScored, key)
		if g := c.PairGain(key[0], key[1]); g > 0 {
			fresh = append(fresh, pairScore{key: key, gain: g})
			c.inScored[key] = g
		}
	}
	sort.Slice(fresh, func(a, b int) bool { return scoreLess(fresh[a], fresh[b]) })
	kept := make([]pairScore, 0, len(c.scored)+len(fresh))
	for _, s := range c.scored {
		if !c.dirty[s.key] {
			kept = append(kept, s)
		}
	}
	// Merge the two sorted runs back into scored.
	c.scored = c.scored[:0]
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if scoreLess(kept[i], fresh[j]) {
			c.scored = append(c.scored, kept[i])
			i++
		} else {
			c.scored = append(c.scored, fresh[j])
			j++
		}
	}
	c.scored = append(c.scored, kept[i:]...)
	c.scored = append(c.scored, fresh[j:]...)
	c.dirty = map[[2]int]bool{}
}

// NumTypes returns the accelerator-type count the cache was built for.
func (c *ThroughputCache) NumTypes() int { return c.numTypes }

// Len returns the number of cached jobs.
func (c *ThroughputCache) Len() int { return len(c.jobs) }

// Has reports whether the job is cached.
func (c *ThroughputCache) Has(id int) bool { _, ok := c.jobs[id]; return ok }

// IDs returns the cached job IDs in ascending order.
func (c *ThroughputCache) IDs() []int {
	ids := make([]int, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// AddJob inserts (or overwrites) a job's isolated throughput row. The slice
// is copied.
func (c *ThroughputCache) AddJob(id, scaleFactor int, tput []float64) {
	if scaleFactor < 1 {
		scaleFactor = 1
	}
	c.jobs[id] = &cachedJob{tput: append([]float64(nil), tput...), scaleFactor: scaleFactor}
	c.markJobDirty(id)
}

// RemoveJob drops a job and every pair involving it.
func (c *ThroughputCache) RemoveJob(id int) {
	if _, ok := c.jobs[id]; !ok {
		return
	}
	delete(c.jobs, id)
	for peer := range c.peers[id] {
		key := pairIDKey(id, peer)
		delete(c.pairs, key)
		delete(c.peers[peer], id)
		c.markPairDirty(key)
	}
	delete(c.peers, id)
}

// ObserveJob replaces a job's isolated throughput row (a measured update).
// Previously handed-out references keep their old values: rows are replaced,
// never mutated in place.
func (c *ThroughputCache) ObserveJob(id int, tput []float64) {
	j, ok := c.jobs[id]
	if !ok {
		return
	}
	j.tput = append([]float64(nil), tput...)
	c.markJobDirty(id)
}

// JobTput returns the cached isolated throughput row (shared, read-only),
// or nil when the job is unknown.
func (c *ThroughputCache) JobTput(id int) []float64 {
	if j, ok := c.jobs[id]; ok {
		return j.tput
	}
	return nil
}

// ScaleFactor returns the cached scale factor (0 when unknown).
func (c *ThroughputCache) ScaleFactor(id int) int {
	if j, ok := c.jobs[id]; ok {
		return j.scaleFactor
	}
	return 0
}

func pairIDKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// SetPair records the colocated throughput rows of a pair: ta belongs to
// job a, tb to job b. Both slices are copied.
func (c *ThroughputCache) SetPair(a, b int, ta, tb []float64) {
	if a == b {
		return
	}
	key := pairIDKey(a, b)
	if a > b {
		ta, tb = tb, ta
	}
	c.pairs[key] = &cachedPair{
		lo: append([]float64(nil), ta...),
		hi: append([]float64(nil), tb...),
	}
	if c.peers[a] == nil {
		c.peers[a] = map[int]bool{}
	}
	if c.peers[b] == nil {
		c.peers[b] = map[int]bool{}
	}
	c.peers[a][b], c.peers[b][a] = true, true
	c.markPairDirty(key)
}

// HasPair reports whether the pair has a cached row.
func (c *ThroughputCache) HasPair(a, b int) bool {
	_, ok := c.pairs[pairIDKey(a, b)]
	return ok
}

// PairTput returns the cached colocated throughputs for (a, b), in that
// argument order (shared, read-only).
func (c *ThroughputCache) PairTput(a, b int) (ta, tb []float64, ok bool) {
	p, ok := c.pairs[pairIDKey(a, b)]
	if !ok {
		return nil, nil, false
	}
	if a > b {
		return p.hi, p.lo, true
	}
	return p.lo, p.hi, true
}

// ObservePair updates one type's entry of a cached pair with a measured
// value (ta for job a, tb for job b). Rows are replaced, not mutated, so
// previously handed-out references stay stable.
func (c *ThroughputCache) ObservePair(a, b, typ int, ta, tb float64) {
	p, ok := c.pairs[pairIDKey(a, b)]
	if !ok || typ < 0 || typ >= c.numTypes {
		return
	}
	if a > b {
		ta, tb = tb, ta
	}
	lo := append([]float64(nil), p.lo...)
	hi := append([]float64(nil), p.hi...)
	lo[typ], hi[typ] = ta, tb
	c.pairs[pairIDKey(a, b)] = &cachedPair{lo: lo, hi: hi}
	c.markPairDirty(pairIDKey(a, b))
}

// PairGain returns the pair's best combined normalized throughput across
// types: max_t ta[t]/isoA[t] + tb[t]/isoB[t]. A gain above 1 means space
// sharing beats time sharing somewhere; 0 when the pair or either job is
// unknown.
func (c *ThroughputCache) PairGain(a, b int) float64 {
	ta, tb, ok := c.PairTput(a, b)
	if !ok {
		return 0
	}
	ja, jb := c.jobs[a], c.jobs[b]
	if ja == nil || jb == nil {
		return 0
	}
	best := 0.0
	for t := 0; t < c.numTypes; t++ {
		ia, ib := ja.tput[t], jb.tput[t]
		if ia > 0 && ib > 0 {
			if g := ta[t]/ia + tb[t]/ib; g > best {
				best = g
			}
		}
	}
	return best
}

// Units assembles the scheduling units for the given job IDs: the single-job
// unit of ids[m] at index m, followed by cached pair units whose gain
// exceeds minGain, in decreasing gain order (ties broken by position for
// determinism), capped at maxPairs pairs per job. Unit.Jobs indices refer to
// positions within ids, matching the policy input contract. Unknown IDs get
// an all-zero throughput row rather than a panic.
//
// Candidates come from the incrementally maintained scored list (see
// flushDirty), so a call after k mutations re-scores only the k dirty
// pairs (one O(p) compaction-merge over the p cached entries) rather than
// all O(n²) id pairs; a negative minGain takes the legacy exhaustive scan,
// whose semantics (unknown pairs count as gain 0) the list intentionally
// does not reproduce.
//
// Every unit carries its stable identity (JobKey for singles, PairKey for
// pairs), giving the LP columns built over these units a deterministic,
// job-ID-keyed ordering that survives arrivals and departures — the handle
// policy.SolveContext uses to remap cached simplex bases across job-set
// changes.
func (c *ThroughputCache) Units(ids []int, minGain float64, maxPairs int) []Unit {
	units := make([]Unit, 0, len(ids))
	for m, id := range ids {
		tput := c.JobTput(id)
		if tput == nil {
			tput = make([]float64, c.numTypes)
		}
		units = append(units, Single(m, tput).Keyed(JobKey(id)))
	}
	if maxPairs <= 0 || len(c.pairs) == 0 {
		return units
	}

	type scored struct {
		a, b int // positions within ids
		gain float64
	}
	var cands []scored
	if minGain < 0 {
		// A negative threshold admits pairs the cache has never seen
		// (gain 0), which the candidate list deliberately excludes; keep
		// the exhaustive legacy scan for that semantic corner.
		for a := 0; a < len(ids); a++ {
			if c.ScaleFactor(ids[a]) > 1 {
				continue
			}
			for b := a + 1; b < len(ids); b++ {
				if c.ScaleFactor(ids[b]) > 1 {
					continue
				}
				if g := c.PairGain(ids[a], ids[b]); g > minGain {
					cands = append(cands, scored{a: a, b: b, gain: g})
				}
			}
		}
	} else {
		// Filter the incrementally maintained, pre-sorted candidate list
		// against the requested job set: O(matches) after the dirty-pair
		// patch, instead of recomputing O(n²) gains.
		c.flushDirty()
		pos := make(map[int]int, len(ids))
		for m, id := range ids {
			pos[id] = m
		}
		for i := range c.scored {
			s := &c.scored[i]
			if s.gain <= minGain {
				break // sorted by decreasing gain
			}
			a, ok := pos[s.key[0]]
			if !ok || c.ScaleFactor(s.key[0]) > 1 {
				continue
			}
			b, ok := pos[s.key[1]]
			if !ok || c.ScaleFactor(s.key[1]) > 1 {
				continue
			}
			if a > b {
				a, b = b, a
			}
			cands = append(cands, scored{a: a, b: b, gain: s.gain})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].gain != cands[j].gain {
			return cands[i].gain > cands[j].gain
		}
		if cands[i].a != cands[j].a {
			return cands[i].a < cands[j].a
		}
		return cands[i].b < cands[j].b
	})
	pairCount := make([]int, len(ids))
	for _, s := range cands {
		if pairCount[s.a] >= maxPairs || pairCount[s.b] >= maxPairs {
			continue
		}
		pairCount[s.a]++
		pairCount[s.b]++
		ta, tb, _ := c.PairTput(ids[s.a], ids[s.b])
		units = append(units, Pair(s.a, s.b, ta, tb).Keyed(PairKey(ids[s.a], ids[s.b])))
	}
	return units
}
