package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gavel/internal/lp"
)

func TestEffectiveThroughputSingle(t *testing.T) {
	a := &Allocation{
		Units: []Unit{Single(0, []float64{4, 2, 1})},
		X:     [][]float64{{0.5, 0.25, 0}},
	}
	got := a.EffectiveThroughput(0)
	want := 4*0.5 + 2*0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
}

func TestEffectiveThroughputWithPair(t *testing.T) {
	// Job 0 runs alone 40% on type 0 and in a pair 50% on type 1.
	a := &Allocation{
		Units: []Unit{
			Single(0, []float64{4, 2}),
			Single(1, []float64{3, 3}),
			Pair(0, 1, []float64{2, 1.5}, []float64{2, 2}),
		},
		X: [][]float64{{0.4, 0}, {0, 0}, {0, 0.5}},
	}
	got := a.EffectiveThroughput(0)
	want := 4*0.4 + 1.5*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
	if got1 := a.EffectiveThroughput(1); math.Abs(got1-2*0.5) > 1e-12 {
		t.Fatalf("job 1 throughput = %v, want 1.0", got1)
	}
}

func TestJobTimeFraction(t *testing.T) {
	a := &Allocation{
		Units: []Unit{
			Single(0, []float64{1, 1}),
			Pair(0, 1, []float64{1, 1}, []float64{1, 1}),
		},
		X: [][]float64{{0.3, 0.2}, {0.1, 0.25}},
	}
	if f := a.JobTimeFraction(0); math.Abs(f-0.85) > 1e-12 {
		t.Fatalf("fraction = %v, want 0.85", f)
	}
}

func TestValidateCatchesOversubscription(t *testing.T) {
	a := &Allocation{
		Units: []Unit{Single(0, []float64{1}), Single(1, []float64{1})},
		X:     [][]float64{{0.9}, {0.9}},
	}
	if err := a.Validate([]int{1, 1}, []float64{1}); err == nil {
		t.Fatal("want oversubscription error")
	}
	if err := a.Validate([]int{1, 1}, []float64{2}); err != nil {
		t.Fatalf("valid allocation rejected: %v", err)
	}
}

func TestValidateCatchesJobOverBudget(t *testing.T) {
	a := &Allocation{
		Units: []Unit{Single(0, []float64{1, 1})},
		X:     [][]float64{{0.7, 0.7}},
	}
	if err := a.Validate([]int{1}, []float64{5, 5}); err == nil {
		t.Fatal("want per-job budget error")
	}
}

func TestNewProgramInfeasibleTypeGetsNoVar(t *testing.T) {
	units := []Unit{Single(0, []float64{4, 0})}
	pr := NewProgram(lp.Maximize, units, []int{1}, []float64{1, 1})
	if pr.XVar[0][1] != -1 {
		t.Fatal("type with zero throughput should have no variable")
	}
	if pr.XVar[0][0] < 0 {
		t.Fatal("usable type should have a variable")
	}
}

func TestProgramScaleFactorCapacity(t *testing.T) {
	// Two 4-worker jobs on a type with 4 workers: only one can run at a
	// time, so max total time fractions = 1.
	units := []Unit{Single(0, []float64{1}), Single(1, []float64{1})}
	pr := NewProgram(lp.Maximize, units, []int{4, 4}, []float64{4})
	for m := 0; m < 2; m++ {
		for _, tm := range pr.ThroughputTerms(m, 1) {
			pr.P.AddObj(tm.Var, tm.Coeff)
		}
	}
	res, err := pr.P.Solve()
	if err != nil || res.Status != lp.Optimal {
		t.Fatalf("solve: %v %v", err, res)
	}
	if res.Objective > 1+1e-6 {
		t.Fatalf("objective = %v, want <= 1 (scale factor capacity)", res.Objective)
	}
}

// Property: Extract always produces allocations satisfying the validity
// constraints the program was built with, for any LP objective.
func TestPropertyExtractIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nJobs := 1 + rng.Intn(6)
		nTypes := 1 + rng.Intn(3)
		workers := make([]float64, nTypes)
		for j := range workers {
			workers[j] = float64(1 + rng.Intn(4))
		}
		sf := make([]int, nJobs)
		units := make([]Unit, 0, nJobs+3)
		for m := 0; m < nJobs; m++ {
			sf[m] = 1
			if rng.Float64() < 0.3 {
				sf[m] = 1 + rng.Intn(3)
			}
			tput := make([]float64, nTypes)
			for j := range tput {
				if rng.Float64() < 0.85 {
					tput[j] = rng.Float64() * 10
				}
			}
			units = append(units, Single(m, tput))
		}
		// A couple of random pairs between single-worker jobs.
		for p := 0; p < 2 && nJobs >= 2; p++ {
			a, b := rng.Intn(nJobs), rng.Intn(nJobs)
			if a == b || sf[a] > 1 || sf[b] > 1 {
				continue
			}
			ta := make([]float64, nTypes)
			tb := make([]float64, nTypes)
			for j := range ta {
				ta[j] = rng.Float64() * 5
				tb[j] = rng.Float64() * 5
			}
			units = append(units, Pair(a, b, ta, tb))
		}
		pr := NewProgram(lp.Maximize, units, sf, workers)
		// Random objective.
		for v := 0; v < pr.P.NumVars(); v++ {
			pr.P.SetObj(v, rng.Float64())
		}
		res, err := pr.P.Solve()
		if err != nil || res.Status != lp.Optimal {
			return false
		}
		alloc := pr.Extract(res.X)
		return alloc.Validate(sf, workers) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShareThroughput(t *testing.T) {
	// 1 V100 (tput 4) + 1 K80 (tput 1): equal time share on each device.
	got := EqualShareThroughput([]float64{4, 1}, []float64{1, 1})
	if math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("equal share = %v, want 2.5", got)
	}
	// Weighted by worker counts.
	got = EqualShareThroughput([]float64{4, 1}, []float64{1, 3})
	want := 4*0.25 + 1*0.75
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("equal share = %v, want %v", got, want)
	}
}

func TestMaxThroughput(t *testing.T) {
	if MaxThroughput([]float64{1, 5, 3}) != 5 {
		t.Fatal("MaxThroughput")
	}
	if MaxThroughput(nil) != 0 {
		t.Fatal("MaxThroughput(nil)")
	}
}

func TestFinite(t *testing.T) {
	if Finite(0) || Finite(-1) || Finite(math.NaN()) || Finite(math.Inf(1)) {
		t.Fatal("Finite accepts bad values")
	}
	if !Finite(1.5) {
		t.Fatal("Finite rejects 1.5")
	}
}

// TestProgramColumnIDsTrackVariables checks that ColumnIDs names every LP
// variable: keyed units get "<key>@<type>" for usable types only, policy
// variables added via Program.AddVar keep their names, and stragglers added
// behind the program's back get positional fallbacks.
func TestProgramColumnIDsTrackVariables(t *testing.T) {
	units := []Unit{
		Single(0, []float64{2, 0}).Keyed(JobKey(7)), // type 1 unusable
		Single(1, []float64{1, 1}).Keyed(JobKey(9)),
	}
	pr := NewProgram(lp.Maximize, units, []int{1, 1}, []float64{4, 4})
	tv := pr.AddVar(1, "t")
	pr.P.AddVar(0, "untracked")

	ids := pr.ColumnIDs()
	if len(ids) != pr.P.NumVars() {
		t.Fatalf("%d ids for %d vars", len(ids), pr.P.NumVars())
	}
	want := []lp.ColumnID{"j7@0", "j9@0", "j9@1", "t"}
	for i, w := range want {
		if ids[i] != w {
			t.Fatalf("ids[%d] = %q, want %q", i, ids[i], w)
		}
	}
	if tv != 3 {
		t.Fatalf("t variable index %d, want 3", tv)
	}
	if ids[4] == "" {
		t.Fatal("untracked variable got no fallback id")
	}
}
