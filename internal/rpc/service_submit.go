package rpc

// The Service half of the submission plane: the thread-safe client surface
// (Submit / Withdraw / Poll — the only Service methods safe to call
// concurrently with the round loop) and the round-loop integration points
// (ExpireAbandoned, AdmitPending, ObserveMeasured, and the clamp application
// EndRound and replay share). All of it is a no-op pass-through when
// ServiceConfig.Admission is nil.
//
// Liveness accounting is journal-backed by construction: a tenant's
// lastActive clock advances only on journaled contacts (an accepted Submit,
// a client Withdraw, a Poll's recTouch), so the abandoned-client TTL fires
// at the same round on a resumed coordinator as it would have live.

import (
	"fmt"
	"math"
	"sort"
)

// Submit accepts one streamed job into the tenant's ingress queue (or
// dedupes against the idempotency key, or refuses with CodeOverload and a
// retry-after hint). Safe for concurrent use.
func (s *Service) Submit(a SubmitArgs) (SubmitReply, error) {
	if s.ing == nil {
		return SubmitReply{}, Errorf(CodeBadRequest, "submission plane is not enabled on this coordinator")
	}
	if a.Tenant == "" || a.Key == "" {
		return SubmitReply{}, Errorf(CodeBadRequest, "submission needs a tenant and an idempotency key")
	}
	if err := ValidateTput(s.numTypes, a.Tput); err != nil {
		return SubmitReply{}, err
	}
	if math.IsNaN(a.TotalSteps) || math.IsInf(a.TotalSteps, 0) || a.TotalSteps < 0 {
		return SubmitReply{}, Errorf(CodeBadRequest, "total steps %v is not a finite non-negative count", a.TotalSteps)
	}
	if a.ScaleFactor < 1 {
		a.ScaleFactor = 1
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if sub, ok := ing.byKey[submissionKey(a.Tenant, a.Key)]; ok {
		// At-least-once retry of a submission the journal already holds:
		// answer with its current state instead of double-admitting.
		return SubmitReply{JobID: sub.jobID, State: sub.state}, nil
	}
	t := ing.tenantLocked(a.Tenant, ing.round)
	if t.queued >= ing.cfg.MaxQueuePerTenant {
		t.refused++
		ing.decideLocked(ing.round, a.Tenant, a.Key, "refuse",
			fmt.Sprintf("ingress queue full (%d queued)", t.queued))
		return SubmitReply{}, Overloadf(ing.retryAfterLocked(t),
			"tenant %q ingress queue is full (%d queued)", a.Tenant, t.queued)
	}
	js := &journalSubmit{
		Tenant:      a.Tenant,
		Key:         a.Key,
		Name:        a.Name,
		JobID:       ing.nextJobID,
		ScaleFactor: a.ScaleFactor,
		SLOClass:    a.SLOClass,
		TotalSteps:  a.TotalSteps,
		Tput:        append([]float64(nil), a.Tput...),
		Round:       ing.round,
	}
	if err := s.record(&journalRecord{Kind: recSubmit, Submit: js}); err != nil {
		return SubmitReply{}, err
	}
	ing.applySubmitLocked(js)
	return SubmitReply{JobID: js.JobID, State: SubmissionQueued}, nil
}

// Withdraw removes a submission by its idempotency key: queued submissions
// leave immediately, admitted ones are flagged and removed by the next
// AdmitPending pass (Poll shows Withdrawn once that lands). Unknown keys are
// a no-op SubmissionUnknown, so retries are safe. Safe for concurrent use.
func (s *Service) Withdraw(a WithdrawArgs) (WithdrawReply, error) {
	if s.ing == nil {
		return WithdrawReply{}, Errorf(CodeBadRequest, "submission plane is not enabled on this coordinator")
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	sub := ing.byKey[submissionKey(a.Tenant, a.Key)]
	if sub == nil {
		return WithdrawReply{State: SubmissionUnknown}, nil
	}
	switch sub.state {
	case SubmissionDone, SubmissionWithdrawn, SubmissionRejected:
		return WithdrawReply{State: sub.state}, nil
	}
	ref := &journalSubmitRef{Tenant: a.Tenant, Key: a.Key, Reason: withdrawClient, Round: ing.round}
	if err := s.record(&journalRecord{Kind: recWithdraw, Ref: ref}); err != nil {
		return WithdrawReply{}, err
	}
	return WithdrawReply{State: ing.applyWithdrawLocked(ref)}, nil
}

// Poll reports a submission's state and refreshes the tenant's liveness
// clock (journaled at most once per tenant per round). Safe for concurrent
// use.
func (s *Service) Poll(a PollArgs) (PollReply, error) {
	if s.ing == nil {
		return PollReply{}, Errorf(CodeBadRequest, "submission plane is not enabled on this coordinator")
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	rep := PollReply{State: SubmissionUnknown, Shard: -1, Round: ing.round}
	if t, ok := ing.tenants[a.Tenant]; ok && t.lastActive < ing.round {
		ref := &journalSubmitRef{Tenant: a.Tenant, Round: ing.round}
		if err := s.record(&journalRecord{Kind: recTouch, Ref: ref}); err != nil {
			return rep, err
		}
		ing.applyTouchLocked(ref)
	}
	if sub := ing.byKey[submissionKey(a.Tenant, a.Key)]; sub != nil {
		rep.JobID = sub.jobID
		rep.State = sub.state
		rep.Shard = sub.shard
	}
	return rep, nil
}

// ExpireAbandoned withdraws every submission of tenants that have made no
// journaled contact for more than AbandonAfterRounds rounds — the
// crashed-client TTL, so abandoned submissions don't strand residency. The
// flagged admitted jobs are removed by the AdmitPending pass that follows.
// Round-loop only.
func (s *Service) ExpireAbandoned(round int64) error {
	if s.ing == nil || s.ing.cfg.AbandonAfterRounds <= 0 {
		return nil
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ttl := int64(ing.cfg.AbandonAfterRounds)
	for _, name := range ing.order {
		t := ing.tenants[name]
		if round-t.lastActive <= ttl || (t.queued == 0 && t.resident == 0) {
			continue
		}
		var stale []*submission
		for _, sub := range ing.queue {
			if sub.tenant == name {
				stale = append(stale, sub)
			}
		}
		for _, id := range ing.residentIDsLocked(name) {
			if sub := ing.byJob[id]; !sub.withdraw {
				stale = append(stale, sub)
			}
		}
		for _, sub := range stale {
			ref := &journalSubmitRef{Tenant: name, Key: sub.key, Reason: withdrawAbandoned, Round: round}
			if err := s.record(&journalRecord{Kind: recWithdraw, Ref: ref}); err != nil {
				return err
			}
			ing.applyWithdrawLocked(ref)
			ing.decideLocked(round, name, sub.key, "abandon",
				fmt.Sprintf("no client contact since round %d", t.lastActive))
		}
	}
	return nil
}

// AdmitPending is the round loop's queue drain: it removes withdraw-flagged
// admitted jobs, runs the shedding ladder when overload has persisted, then
// admits queued submissions in acceptance order — skipping (deferring, not
// blocking) tenants that are out of tokens or at their resident cap — and
// returns the newly admitted job IDs. Quarantined tenants' fresh jobs are
// installed with their declared rows pre-scaled by the clamp ratio. Round-loop
// only.
func (s *Service) AdmitPending(round int64) ([]int, error) {
	if s.ing == nil {
		return nil, nil
	}
	ing := s.ing
	// Withdrawals first: flagged jobs leave before new work is admitted.
	ing.mu.Lock()
	pend := ing.pendingWithdraw
	ing.pendingWithdraw = nil
	var removals []int
	for _, sub := range pend {
		if sub.state == SubmissionAdmitted && sub.withdraw {
			removals = append(removals, sub.jobID)
		}
	}
	ing.mu.Unlock()
	for _, id := range removals {
		if err := s.Remove(id); err != nil {
			return nil, err
		}
	}
	type cand struct {
		id, sf int
		tput   []float64
	}
	var batch []cand
	ing.mu.Lock()
	if ing.overloadRounds >= ing.cfg.ShedAfterRounds {
		// Escalate from deferring to shedding: reject queued submissions,
		// lowest SLO class first (ties to the most recent arrival, so the
		// oldest work of a class survives longest), until the global queue is
		// back under the high-water mark.
		for len(ing.queue) > ing.cfg.ShedQueueDepth {
			vi := 0
			for i, sub := range ing.queue {
				if sub.sloClass <= ing.queue[vi].sloClass {
					vi = i
				}
			}
			victim := ing.queue[vi]
			ref := &journalSubmitRef{Tenant: victim.tenant, Key: victim.key, Round: round}
			if err := s.record(&journalRecord{Kind: recReject, Ref: ref}); err != nil {
				ing.mu.Unlock()
				return nil, err
			}
			ing.applyRejectLocked(ref)
			ing.decideLocked(round, victim.tenant, victim.key, "shed",
				fmt.Sprintf("overload for %d rounds: queue %d > %d, slo class %d",
					ing.overloadRounds, len(ing.queue)+1, ing.cfg.ShedQueueDepth, victim.sloClass))
		}
	}
	// Candidate selection against tentative per-tenant budgets; the real
	// token/resident consumption happens in noteAdmitted when each install
	// lands (the same hook replay drives from recInstall).
	tokens := map[string]float64{}
	resident := map[string]int{}
	for _, sub := range ing.queue {
		t := ing.tenants[sub.tenant]
		tok, ok := tokens[sub.tenant]
		if !ok {
			tok = t.tokens
		}
		res, ok := resident[sub.tenant]
		if !ok {
			res = t.resident
		}
		if ing.cfg.RatePerRound > 0 && tok < 1 {
			continue
		}
		if ing.cfg.MaxResidentPerTenant > 0 && res >= ing.cfg.MaxResidentPerTenant {
			continue
		}
		row := sub.tput
		if t.quarantined {
			row = make([]float64, len(sub.tput))
			for j, v := range sub.tput {
				row[j] = v * t.ratio
			}
		}
		batch = append(batch, cand{id: sub.jobID, sf: sub.scaleFactor, tput: row})
		tokens[sub.tenant] = tok - 1
		resident[sub.tenant] = res + 1
	}
	ing.mu.Unlock()
	// Installs run outside ing.mu so clients stay responsive; the mirror is
	// round-loop-only state, so no extra locking is needed there.
	var admitted []int
	for _, c := range batch {
		if _, err := s.admitJob(c.id, c.sf, c.tput); err != nil {
			return admitted, err
		}
		admitted = append(admitted, c.id)
	}
	return admitted, nil
}

// ObserveMeasured folds one worker-measured throughput sample (steps/sec on
// accelerator type accType) into the job's journaled EWMA row — the feedback
// the trust review cross-checks declarations against. Non-finite,
// non-positive, or unknown-job samples are ignored. Round-loop only.
func (s *Service) ObserveMeasured(jobID, accType int, rate float64) error {
	if s.ing == nil {
		return nil
	}
	if accType < 0 || accType >= s.numTypes || math.IsNaN(rate) || math.IsInf(rate, 0) || rate <= 0 {
		return nil
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	sub := ing.byJob[jobID]
	if sub == nil || sub.state != SubmissionAdmitted {
		return nil
	}
	m := &journalMeasure{JobID: jobID, Type: accType, Rate: rate}
	if err := s.record(&journalRecord{Kind: recMeasure, Measure: m}); err != nil {
		return err
	}
	ing.applyMeasureLocked(m)
	return nil
}

// applyClamps lands the trust review's effective-throughput rows in the
// mirror (reallocation-triggering when a row actually changed) and, on the
// live path, pushes them to the owning daemons via ObserveJob. Pushes repeat
// every review round while a tenant stays quarantined — the overwrite is
// idempotent, and repetition heals a push a degraded round lost.
func (s *Service) applyClamps(clamps []jobClamp, push bool) error {
	for _, cl := range clamps {
		k, ok := s.shardOf[cl.jobID]
		if !ok {
			continue
		}
		m := s.shards[k]
		old := m.tput[cl.jobID]
		same := len(old) == len(cl.tput)
		for j := 0; same && j < len(old); j++ {
			same = old[j] == cl.tput[j]
		}
		if !same {
			m.tput[cl.jobID] = append([]float64(nil), cl.tput...)
			m.dirty = true
		}
		if push && !m.down {
			if err := s.degradeOrErr(m, m.client.ObserveJob(ObserveJobArgs{JobID: cl.jobID, Tput: cl.tput, Trace: s.curTrace})); err != nil {
				return err
			}
		}
	}
	return nil
}

// SubmissionInfo is one submission's externally visible state — what a
// resuming driver needs to pick its streamed jobs back up.
type SubmissionInfo struct {
	Tenant      string
	Key         string
	Name        string
	JobID       int
	State       SubmissionState
	Shard       int
	TotalSteps  float64
	ScaleFactor int
	SLOClass    int
	Tput        []float64
}

// Submissions returns every known submission ordered by job ID. Safe for
// concurrent use.
func (s *Service) Submissions() []SubmissionInfo {
	if s.ing == nil {
		return nil
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	out := make([]SubmissionInfo, 0, len(ing.byJob))
	for _, id := range sortedJobIDsLocked(ing) {
		sub := ing.byJob[id]
		out = append(out, SubmissionInfo{
			Tenant:      sub.tenant,
			Key:         sub.key,
			Name:        sub.name,
			JobID:       sub.jobID,
			State:       sub.state,
			Shard:       sub.shard,
			TotalSteps:  sub.totalSteps,
			ScaleFactor: sub.scaleFactor,
			SLOClass:    sub.sloClass,
			Tput:        append([]float64(nil), sub.tput...),
		})
	}
	return out
}

func sortedJobIDsLocked(ing *ingress) []int {
	ids := make([]int, 0, len(ing.byJob))
	for id := range ing.byJob {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TenantStats returns per-tenant accounting in first-contact order. Safe for
// concurrent use.
func (s *Service) TenantStats() []TenantStatus {
	if s.ing == nil {
		return nil
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	out := make([]TenantStatus, 0, len(ing.order))
	for _, name := range ing.order {
		t := ing.tenants[name]
		out = append(out, TenantStatus{
			Tenant:      name,
			Submitted:   t.submitted,
			Admitted:    t.admitted,
			Refused:     t.refused,
			Shed:        t.shed,
			Withdrawn:   t.withdrawn,
			Done:        t.done,
			Queued:      t.queued,
			Resident:    t.resident,
			Quarantined: t.quarantined,
			ClampRatio:  t.ratio,
		})
	}
	return out
}

// Decisions returns a copy of the shed/quarantine/abandon decision log. Safe
// for concurrent use.
func (s *Service) Decisions() []AdmissionDecision {
	if s.ing == nil {
		return nil
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return append([]AdmissionDecision(nil), ing.decisions...)
}

// QueueDepth returns the global queued-submission count. Safe for concurrent
// use.
func (s *Service) QueueDepth() int {
	if s.ing == nil {
		return 0
	}
	s.ing.mu.Lock()
	defer s.ing.mu.Unlock()
	return len(s.ing.queue)
}

// QuarantinedJobs counts shard k's resident jobs belonging to quarantined
// tenants — the per-shard quarantine surface ShardStats reporting merges.
// Safe for concurrent use.
func (s *Service) QuarantinedJobs(k int) int {
	if s.ing == nil {
		return 0
	}
	ing := s.ing
	ing.mu.Lock()
	defer ing.mu.Unlock()
	n := 0
	for _, sub := range ing.byJob {
		if sub.state == SubmissionAdmitted && sub.shard == k && ing.tenants[sub.tenant].quarantined {
			n++
		}
	}
	return n
}
