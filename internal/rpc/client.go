package rpc

import (
	"fmt"
	gorpc "net/rpc"
	"time"
)

// ShardClient is the coordinator's handle to one shard daemon. Both
// transports implement it — DialShard over TCP gob, NewLocalShard calling a
// ShardServer in-process — so the Service, the simulator's served engine,
// and the tests drive the identical shard code path regardless of whether
// sockets are involved.
type ShardClient interface {
	Hello(args HelloArgs) (HelloReply, error)
	Configure(cfg ShardConfig) error
	Install(args InstallArgs) error
	Remove(args RemoveArgs) error
	Extract(args ExtractArgs) (ExtractReply, error)
	Allocate(args AllocateArgs) (AllocateReply, error)
	AssignRound(args AssignRoundArgs) (AssignRoundReply, error)
	Observe(args ObserveArgs) error
	ObserveJob(args ObserveJobArgs) error
	Snapshot() (SnapshotReply, error)
	Status() (ShardStatus, error)
	Ping() error
	Close() error
}

// localShardClient drives a ShardServer by direct method call: the
// in-memory transport the simulator and tests use. Identical code path,
// no sockets, no serialization.
type localShardClient struct {
	srv *ShardServer
}

// NewLocalShard returns a fresh unconfigured ShardServer together with an
// in-memory client for it.
func NewLocalShard() (*ShardServer, ShardClient) {
	srv := NewShardServer()
	return srv, &localShardClient{srv: srv}
}

// NewLocalShardClient wraps an existing ShardServer in an in-memory client.
func NewLocalShardClient(srv *ShardServer) ShardClient {
	return &localShardClient{srv: srv}
}

func (c *localShardClient) Hello(args HelloArgs) (HelloReply, error) {
	var reply HelloReply
	err := c.srv.Hello(args, &reply)
	return reply, err
}

func (c *localShardClient) Configure(cfg ShardConfig) error {
	var ack Ack
	return c.srv.Configure(cfg, &ack)
}

func (c *localShardClient) Install(args InstallArgs) error {
	var ack Ack
	return c.srv.Install(args, &ack)
}

func (c *localShardClient) Remove(args RemoveArgs) error {
	var ack Ack
	return c.srv.Remove(args, &ack)
}

func (c *localShardClient) Extract(args ExtractArgs) (ExtractReply, error) {
	var reply ExtractReply
	err := c.srv.Extract(args, &reply)
	return reply, err
}

func (c *localShardClient) Allocate(args AllocateArgs) (AllocateReply, error) {
	var reply AllocateReply
	err := c.srv.Allocate(args, &reply)
	return reply, err
}

func (c *localShardClient) AssignRound(args AssignRoundArgs) (AssignRoundReply, error) {
	var reply AssignRoundReply
	err := c.srv.AssignRound(args, &reply)
	return reply, err
}

func (c *localShardClient) Observe(args ObserveArgs) error {
	var ack Ack
	return c.srv.Observe(args, &ack)
}

func (c *localShardClient) ObserveJob(args ObserveJobArgs) error {
	var ack Ack
	return c.srv.ObserveJob(args, &ack)
}

func (c *localShardClient) Snapshot() (SnapshotReply, error) {
	var reply SnapshotReply
	err := c.srv.Snapshot(SnapshotArgs{}, &reply)
	return reply, err
}

func (c *localShardClient) Status() (ShardStatus, error) {
	var reply ShardStatus
	err := c.srv.Status(StatusArgs{}, &reply)
	return reply, err
}

func (c *localShardClient) Ping() error {
	var ack Ack
	return c.srv.Ping(StatusArgs{}, &ack)
}

func (c *localShardClient) Close() error { return nil }

// netShardClient speaks the shard protocol over TCP gob, bounding every call
// by the policy's per-call deadline.
type netShardClient struct {
	c       *gorpc.Client
	timeout time.Duration
}

// DialShard connects to a shard daemon with the environment's call policy
// (CallPolicyFromEnv: GAVEL_RPC_TIMEOUT deadline, retry-with-backoff on
// transient failures) and performs the version handshake. A version mismatch
// is returned as a CodeVersionMismatch error and the connection is closed.
func DialShard(addr string) (ShardClient, error) {
	return DialShardWith(addr, CallPolicyFromEnv())
}

// DialShardWith is DialShard under an explicit call policy.
func DialShardWith(addr string, pol CallPolicy) (ShardClient, error) {
	c, err := gorpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial shard %s: %w", addr, err)
	}
	nc := WithRetry(&netShardClient{c: c, timeout: pol.Timeout}, pol)
	if _, err := nc.Hello(HelloArgs{Version: ProtocolVersion, Role: "coordinator"}); err != nil {
		c.Close()
		return nil, err
	}
	return nc, nil
}

// call wraps net/rpc Call under the per-call deadline, folding
// transport-level failures (closed connection, EOF: the daemon died) into
// typed CodeShardDown errors and deadline expiry into CodeTimeout, while
// passing server-side typed errors through for ParseError.
func (c *netShardClient) call(method string, args, reply any) error {
	var err error
	if c.timeout > 0 {
		done := c.c.Go(shardServiceName+"."+method, args, reply, make(chan *gorpc.Call, 1))
		timer := time.NewTimer(c.timeout)
		select {
		case call := <-done.Done:
			timer.Stop()
			err = call.Error
		case <-timer.C:
			// The reply, if it ever arrives, is discarded by net/rpc's read
			// loop; the pending-call entry is reclaimed when the connection
			// closes. A daemon that stays hung is escalated by the caller
			// (retries, then the coordinator's degrade/recover ladder).
			return Errorf(CodeTimeout, "%s: no reply within %v", method, c.timeout)
		}
	} else {
		err = c.c.Call(shardServiceName+"."+method, args, reply)
	}
	if err == nil {
		return nil
	}
	if _, isServer := err.(gorpc.ServerError); isServer {
		return err // server-side error string; ParseError recovers the code
	}
	return Errorf(CodeShardDown, "%s: %v", method, err)
}

func (c *netShardClient) Hello(args HelloArgs) (HelloReply, error) {
	var reply HelloReply
	err := c.call("Hello", args, &reply)
	return reply, err
}

func (c *netShardClient) Configure(cfg ShardConfig) error {
	var ack Ack
	return c.call("Configure", cfg, &ack)
}

func (c *netShardClient) Install(args InstallArgs) error {
	var ack Ack
	return c.call("Install", args, &ack)
}

func (c *netShardClient) Remove(args RemoveArgs) error {
	var ack Ack
	return c.call("Remove", args, &ack)
}

func (c *netShardClient) Extract(args ExtractArgs) (ExtractReply, error) {
	var reply ExtractReply
	err := c.call("Extract", args, &reply)
	return reply, err
}

func (c *netShardClient) Allocate(args AllocateArgs) (AllocateReply, error) {
	var reply AllocateReply
	err := c.call("Allocate", args, &reply)
	return reply, err
}

func (c *netShardClient) AssignRound(args AssignRoundArgs) (AssignRoundReply, error) {
	var reply AssignRoundReply
	err := c.call("AssignRound", args, &reply)
	return reply, err
}

func (c *netShardClient) Observe(args ObserveArgs) error {
	var ack Ack
	return c.call("Observe", args, &ack)
}

func (c *netShardClient) ObserveJob(args ObserveJobArgs) error {
	var ack Ack
	return c.call("ObserveJob", args, &ack)
}

func (c *netShardClient) Snapshot() (SnapshotReply, error) {
	var reply SnapshotReply
	err := c.call("Snapshot", SnapshotArgs{}, &reply)
	return reply, err
}

func (c *netShardClient) Status() (ShardStatus, error) {
	var reply ShardStatus
	err := c.call("Status", StatusArgs{}, &reply)
	return reply, err
}

func (c *netShardClient) Ping() error {
	var ack Ack
	return c.call("Ping", StatusArgs{}, &ack)
}

func (c *netShardClient) Close() error { return c.c.Close() }
