package rpc

// Durability and fault-handling tests for the Service: coordinator
// kill-and-restart over a journal (byte-identical resumption), graceful
// degradation under transient Allocate failures, and recovery from
// concurrent shard loss — including destinations that die mid-recovery.

import (
	"fmt"
	"path/filepath"
	"testing"

	"gavel/internal/cluster"
	"gavel/internal/policy"
)

func testClusterSpec() cluster.Spec {
	return cluster.Spec{Types: []cluster.AcceleratorType{
		{Name: "v100", Count: 4, PricePerHour: cluster.PriceV100, PerServer: 4},
		{Name: "k80", Count: 4, PricePerHour: cluster.PriceK80, PerServer: 4},
	}}
}

func testServiceConfig(journal string) ServiceConfig {
	return ServiceConfig{
		Cluster: testClusterSpec(),
		Policy:  PolicySpec{Name: "max_min_fairness"},
		Journal: journal,
	}
}

func testJobInfo(id int) policy.JobInfo {
	return policy.JobInfo{
		Weight:         1,
		RemainingSteps: 1000 + float64(id),
		TotalSteps:     2000,
		ArrivalSeq:     id,
	}
}

// testTput is a deterministic per-job throughput row over the test cluster's
// two accelerator types.
func testTput(id int) []float64 {
	return []float64{1 + float64(id%5)*0.25, 0.5 + float64(id%3)*0.125}
}

// allocFingerprint renders every shard's mirrored allocation — IDs, unit
// shapes, and the full X matrix — into a string. Byte-identical runs produce
// byte-identical fingerprints (float formatting is exact for equal bits).
func allocFingerprint(svc *Service) string {
	var s string
	for k := 0; k < svc.NumShards(); k++ {
		alloc, ids := svc.Alloc(k)
		if alloc == nil {
			s += fmt.Sprintf("shard %d: nil\n", k)
			continue
		}
		s += fmt.Sprintf("shard %d: ids=%v units=%v x=%v\n", k, ids, alloc.Units, alloc.X)
	}
	return s
}

// driveRound runs one manual coordinator round r against svc: admissions for
// r (two jobs land at rounds 0..2, one more at rounds 5 and 7), a dirty-mark
// sweep every third round, allocation, round assignment, a snapshot every
// other round, and the sealing EndRound. Returns the post-allocation
// fingerprint.
func driveRound(t *testing.T, svc *Service, r int) string {
	t.Helper()
	switch {
	case r < 3:
		for i := 0; i < 2; i++ {
			id := r*2 + i
			if _, err := svc.Admit(id, 1+id%2, testTput(id)); err != nil {
				t.Fatalf("round %d: admit %d: %v", r, id, err)
			}
		}
	case r == 5 || r == 7:
		id := 6 + r
		if _, err := svc.Admit(id, 1, testTput(id)); err != nil {
			t.Fatalf("round %d: admit %d: %v", r, id, err)
		}
	}
	if r > 0 && r%3 == 0 {
		for k := 0; k < svc.NumShards(); k++ {
			if err := svc.MarkDirty(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.AllocateAll(int64(r), testJobInfo, false); err != nil {
		t.Fatalf("round %d: AllocateAll: %v", r, err)
	}
	if _, err := svc.AssignRound(int64(r), 10, nil); err != nil {
		t.Fatalf("round %d: AssignRound: %v", r, err)
	}
	if r%2 == 0 {
		if err := svc.SnapshotAll(); err != nil {
			t.Fatalf("round %d: SnapshotAll: %v", r, err)
		}
	}
	if err := svc.EndRound(int64(r)); err != nil {
		t.Fatalf("round %d: EndRound: %v", r, err)
	}
	return allocFingerprint(svc)
}

// TestServiceRestartReplaysByteIdentical is the durability acceptance: a
// coordinator killed after round 5 and restarted over its journal must
// replay to the exact pre-crash mirror and produce byte-identical
// allocations for the remaining rounds, against shard daemons that survived
// the coordinator's death.
func TestServiceRestartReplaysByteIdentical(t *testing.T) {
	const rounds = 12
	dir := t.TempDir()

	// Reference: one uninterrupted run.
	var want [rounds]string
	{
		_, c0 := NewLocalShard()
		_, c1 := NewLocalShard()
		svc, err := NewService(testServiceConfig(filepath.Join(dir, "ref.wal")), []ShardClient{c0, c1})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			want[r] = driveRound(t, svc, r)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Interrupted run: fresh daemons, same schedule, coordinator "killed"
	// after round 5 (the Service value is abandoned without Close — every
	// sealed round is already fsynced).
	journal := filepath.Join(dir, "crash.wal")
	srv0, c0 := NewLocalShard()
	srv1, c1 := NewLocalShard()
	svc, err := NewService(testServiceConfig(journal), []ShardClient{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 5; r++ {
		if got := driveRound(t, svc, r); got != want[r] {
			t.Fatalf("pre-crash round %d diverged from reference:\n got %s\nwant %s", r, got, want[r])
		}
	}
	preCrashJobs := svc.JobShards()
	svc = nil // the crash

	// Restart: a new Service over the same journal and the surviving daemons.
	resumed, err := NewService(testServiceConfig(journal),
		[]ShardClient{NewLocalShardClient(srv0), NewLocalShardClient(srv1)})
	if err != nil {
		t.Fatalf("restart over journal: %v", err)
	}
	defer resumed.Close()
	if !resumed.Resumed() {
		t.Fatal("restarted service did not detect the journal")
	}
	if resumed.Round() != 5 {
		t.Fatalf("resumed at round %d, want 5", resumed.Round())
	}
	if got := allocFingerprint(resumed); got != want[5] {
		t.Fatalf("replayed mirror allocation differs from pre-crash state:\n got %s\nwant %s", got, want[5])
	}
	got := resumed.JobShards()
	if len(got) != len(preCrashJobs) {
		t.Fatalf("replayed %d jobs, had %d before the crash", len(got), len(preCrashJobs))
	}
	for id, k := range preCrashJobs {
		if got[id] != k {
			t.Fatalf("job %d replayed onto shard %d, was on %d", id, got[id], k)
		}
	}
	// A resumed driver re-submits its batch; admission must be idempotent.
	if k, err := resumed.Admit(0, 1, testTput(0)); err != nil || k != preCrashJobs[0] {
		t.Fatalf("re-admitting a resident job: shard %d, err %v", k, err)
	}
	for r := 6; r < rounds; r++ {
		if got := driveRound(t, resumed, r); got != want[r] {
			t.Fatalf("post-restart round %d diverged from uninterrupted run:\n got %s\nwant %s", r, got, want[r])
		}
	}
}

// TestServiceRestartReconcilesBareDaemons covers the double-crash case: the
// coordinator AND a shard daemon restart together. The journal rebuilds the
// mirror; reconcile detects the bare daemon and re-installs its jobs with
// the last snapshot's seeds, so the run continues with every job placed.
func TestServiceRestartReconcilesBareDaemons(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j.wal")
	_, c0 := NewLocalShard()
	srv1, c1 := NewLocalShard()
	svc, err := NewService(testServiceConfig(journal), []ShardClient{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 5; r++ {
		driveRound(t, svc, r)
	}
	jobs := svc.JobShards()
	svc = nil // coordinator crash

	// Shard 0's daemon also restarts, losing all state; shard 1 survives.
	freshSrv0, _ := NewLocalShard()
	resumed, err := NewService(testServiceConfig(journal),
		[]ShardClient{NewLocalShardClient(freshSrv0), NewLocalShardClient(srv1)})
	if err != nil {
		t.Fatalf("restart with a bare daemon: %v", err)
	}
	defer resumed.Close()
	st, err := resumed.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for id, k := range jobs {
		found := false
		for _, j := range st[k].Jobs {
			if j == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("job %d not re-installed on restarted shard %d", id, k)
		}
	}
	for r := 6; r < 9; r++ {
		driveRound(t, resumed, r)
	}
	// Rounds 6..8 admit one more job (round 7) on top of the replayed set.
	if resumed.NumJobs() != len(jobs)+1 {
		t.Fatalf("%d jobs after reconcile, want %d", resumed.NumJobs(), len(jobs)+1)
	}
}

// flakyClient wraps a ShardClient with an injectable per-method fault,
// simulating a slow or dead daemon without sockets.
type flakyClient struct {
	ShardClient
	fail func(method string) error
}

func (c *flakyClient) check(method string) error {
	if c.fail == nil {
		return nil
	}
	return c.fail(method)
}

func (c *flakyClient) Install(args InstallArgs) error {
	if err := c.check("Install"); err != nil {
		return err
	}
	return c.ShardClient.Install(args)
}

func (c *flakyClient) Remove(args RemoveArgs) error {
	if err := c.check("Remove"); err != nil {
		return err
	}
	return c.ShardClient.Remove(args)
}

func (c *flakyClient) Allocate(args AllocateArgs) (AllocateReply, error) {
	if err := c.check("Allocate"); err != nil {
		return AllocateReply{}, err
	}
	return c.ShardClient.Allocate(args)
}

func (c *flakyClient) AssignRound(args AssignRoundArgs) (AssignRoundReply, error) {
	if err := c.check("AssignRound"); err != nil {
		return AssignRoundReply{}, err
	}
	return c.ShardClient.AssignRound(args)
}

func (c *flakyClient) Snapshot() (SnapshotReply, error) {
	if err := c.check("Snapshot"); err != nil {
		return SnapshotReply{}, err
	}
	return c.ShardClient.Snapshot()
}

func (c *flakyClient) Status() (ShardStatus, error) {
	if err := c.check("Status"); err != nil {
		return ShardStatus{}, err
	}
	return c.ShardClient.Status()
}

func (c *flakyClient) Ping() error {
	if err := c.check("Ping"); err != nil {
		return err
	}
	return c.ShardClient.Ping()
}

// TestServiceDegradesThenEscalates drives the degradation ladder: a shard
// whose Allocate fails transiently serves its last allocation (flagged
// stale), and after StaleAfterRounds consecutive stale rounds it escalates
// to down and its jobs recover onto the survivor.
func TestServiceDegradesThenEscalates(t *testing.T) {
	_, inner0 := NewLocalShard()
	_, inner1 := NewLocalShard()
	f1 := &flakyClient{ShardClient: inner1}
	cfg := testServiceConfig("")
	cfg.StaleAfterRounds = 3
	svc, err := NewService(cfg, []ShardClient{inner0, f1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for id := 0; id < 6; id++ {
		if _, err := svc.Admit(id, 1, testTput(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.AllocateAll(0, testJobInfo, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.EndRound(0); err != nil {
		t.Fatal(err)
	}
	oldAlloc, oldIDs := svc.Alloc(1)
	if oldAlloc == nil {
		t.Fatal("shard 1 has no allocation before the fault")
	}

	// Shard 1 goes slow-but-alive: Allocate times out, everything else works.
	f1.fail = func(method string) error {
		if method == "Allocate" {
			return Errorf(CodeTimeout, "injected timeout")
		}
		return nil
	}
	for r := int64(1); r <= 2; r++ {
		for k := 0; k < svc.NumShards(); k++ {
			if err := svc.MarkDirty(k); err != nil {
				t.Fatal(err)
			}
		}
		if err := svc.AllocateAll(r, testJobInfo, false); err != nil {
			t.Fatalf("round %d: AllocateAll should degrade, got %v", r, err)
		}
		if svc.Down(1) {
			t.Fatalf("round %d: shard escalated before StaleAfterRounds", r)
		}
		gotAlloc, gotIDs := svc.Alloc(1)
		if gotAlloc != oldAlloc || fmt.Sprint(gotIDs) != fmt.Sprint(oldIDs) {
			t.Fatalf("round %d: degraded shard did not keep its last allocation", r)
		}
		if svc.StaleAllocs(1) != int(r) {
			t.Fatalf("round %d: StaleAllocs = %d, want %d", r, svc.StaleAllocs(1), r)
		}
		if err := svc.EndRound(r); err != nil {
			t.Fatal(err)
		}
	}
	if svc.DegradedRounds() != 2 {
		t.Fatalf("DegradedRounds = %d, want 2", svc.DegradedRounds())
	}

	// Third consecutive stale round: escalate to down, recover onto shard 0.
	if err := svc.MarkDirty(1); err != nil {
		t.Fatal(err)
	}
	if err := svc.AllocateAll(3, testJobInfo, false); err != nil {
		t.Fatal(err)
	}
	if !svc.Down(1) {
		t.Fatal("shard did not escalate to down after StaleAfterRounds stale rounds")
	}
	migs, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(migs) == 0 || svc.AnyDown() {
		t.Fatalf("recovery after escalation moved %d jobs, AnyDown=%v", len(migs), svc.AnyDown())
	}
	for id, k := range svc.JobShards() {
		if k != 0 {
			t.Fatalf("job %d still on shard %d after recovery", id, k)
		}
	}
}

// TestServiceRecoverConcurrentLoss is the double-failure case: two of three
// daemons die in the same round — including one that fails while being used
// as a recovery destination — and a single Recover pass must land every job
// on the survivor, stranding none.
func TestServiceRecoverConcurrentLoss(t *testing.T) {
	_, inner0 := NewLocalShard()
	_, inner1 := NewLocalShard()
	_, inner2 := NewLocalShard()
	f0 := &flakyClient{ShardClient: inner0}
	f1 := &flakyClient{ShardClient: inner1}
	svc, err := NewService(testServiceConfig(filepath.Join(t.TempDir(), "j.wal")),
		[]ShardClient{f0, f1, inner2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for id := 0; id < 9; id++ {
		if _, err := svc.Admit(id, 1, testTput(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.AllocateAll(0, testJobInfo, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.SnapshotAll(); err != nil {
		t.Fatal(err)
	}
	total := svc.NumJobs()

	// Both daemons die at once, but only shard 0's death has been observed
	// when Recover starts: shard 1 is still marked live, so the pass picks
	// it as the least-loaded destination, watches the install fail, and must
	// recover shard 1's own jobs in the same pass.
	dead := func(string) error { return Errorf(CodeShardDown, "injected death") }
	f0.fail = dead
	if err := svc.AllocateAll(1, testJobInfo, true); err != nil {
		t.Fatal(err)
	}
	if !svc.Down(0) {
		t.Fatal("shard 0 not marked down")
	}
	f1.fail = dead
	migs, err := svc.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if svc.AnyDown() {
		t.Fatal("jobs still stranded on dead shards after Recover")
	}
	if !svc.Down(0) || !svc.Down(1) {
		t.Fatalf("down flags: shard0=%v shard1=%v, want both true", svc.Down(0), svc.Down(1))
	}
	if svc.NumJobs() != total {
		t.Fatalf("%d jobs after concurrent loss, want %d", svc.NumJobs(), total)
	}
	for id, k := range svc.JobShards() {
		if k != 2 {
			t.Fatalf("job %d on shard %d, want survivor 2", id, k)
		}
	}
	if svc.Recoveries() != len(migs) {
		t.Fatalf("Recoveries() = %d, migrations reported = %d", svc.Recoveries(), len(migs))
	}
	// The survivor reallocates over the full job set.
	if err := svc.AllocateAll(2, testJobInfo, false); err != nil {
		t.Fatal(err)
	}
	if _, ids := svc.Alloc(2); len(ids) != total {
		t.Fatalf("survivor allocated over %d jobs, want %d", len(ids), total)
	}
}

// TestServiceTransientMembershipFailureMarksDown: an Install that keeps
// failing transiently (retries exhausted below the Service) cannot be
// degraded around — the shard is marked down and admission re-routes.
func TestServiceTransientMembershipFailureMarksDown(t *testing.T) {
	_, inner0 := NewLocalShard()
	_, inner1 := NewLocalShard()
	f0 := &flakyClient{ShardClient: inner0}
	svc, err := NewService(testServiceConfig(""), []ShardClient{f0, inner1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	f0.fail = func(method string) error {
		if method == "Install" {
			return Errorf(CodeUnavailable, "injected partition")
		}
		return nil
	}
	// Job 0 hash-routes to shard 0, whose Install fails transiently; it must
	// land on shard 1 with shard 0 marked down.
	k, err := svc.Admit(0, 1, testTput(0))
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 || !svc.Down(0) {
		t.Fatalf("admit landed on shard %d (down0=%v), want re-route to 1 with shard 0 down", k, svc.Down(0))
	}
}

// submitFaultConfig is the submission-plane durability config: rationed
// admission so some submissions are still queued when the coordinator dies.
func submitFaultConfig(journal string) ServiceConfig {
	cfg := testServiceConfig(journal)
	cfg.Admission = &AdmissionConfig{RatePerRound: 1, Burst: 1, MaxQueuePerTenant: 8}
	return cfg
}

// ingressFingerprint renders the whole externally visible submission-plane
// state — submissions, tenant accounting, decision log — for byte-identity
// checks across a crash.
func ingressFingerprint(svc *Service) string {
	return fmt.Sprintf("subs=%+v\ntenants=%+v\ndecisions=%+v\n",
		svc.Submissions(), svc.TenantStats(), svc.Decisions())
}

// driveSubmitRound runs one coordinator round with the submission plane in
// the loop: scripted submissions and a withdrawal land by round, the queue
// drains under the token bucket, admitted jobs get measured samples, and the
// round seals. Identical in the reference and crash runs.
func driveSubmitRound(t *testing.T, svc *Service, r int) string {
	t.Helper()
	submitAt := map[int][]SubmitArgs{
		0: {
			{Tenant: "a", Key: "k0", Name: "m0", TotalSteps: 900, ScaleFactor: 1, Tput: testTput(0)},
			{Tenant: "a", Key: "k1", Name: "m1", TotalSteps: 900, ScaleFactor: 1, Tput: testTput(1)},
			{Tenant: "b", Key: "k0", Name: "m2", TotalSteps: 900, ScaleFactor: 2, Tput: testTput(2), SLOClass: 1},
		},
		1: {
			{Tenant: "a", Key: "k2", Name: "m3", TotalSteps: 900, ScaleFactor: 1, Tput: testTput(3)},
			{Tenant: "b", Key: "k1", Name: "m4", TotalSteps: 900, ScaleFactor: 1, Tput: testTput(4)},
		},
	}
	for _, a := range submitAt[r] {
		if _, err := svc.Submit(a); err != nil {
			t.Fatalf("round %d: submit %s/%s: %v", r, a.Tenant, a.Key, err)
		}
	}
	if r == 2 {
		if _, err := svc.Withdraw(WithdrawArgs{Tenant: "a", Key: "k2"}); err != nil {
			t.Fatalf("round %d: withdraw: %v", r, err)
		}
	}
	if err := svc.ExpireAbandoned(int64(r)); err != nil {
		t.Fatalf("round %d: ExpireAbandoned: %v", r, err)
	}
	if _, err := svc.AdmitPending(int64(r)); err != nil {
		t.Fatalf("round %d: AdmitPending: %v", r, err)
	}
	if err := svc.AllocateAll(int64(r), testJobInfo, false); err != nil {
		t.Fatalf("round %d: AllocateAll: %v", r, err)
	}
	if _, err := svc.AssignRound(int64(r), 10, nil); err != nil {
		t.Fatalf("round %d: AssignRound: %v", r, err)
	}
	for _, si := range svc.Submissions() {
		if si.State == SubmissionAdmitted {
			if err := svc.ObserveMeasured(si.JobID, 0, 0.5+float64(si.JobID%3)*0.25); err != nil {
				t.Fatalf("round %d: ObserveMeasured(%d): %v", r, si.JobID, err)
			}
		}
	}
	if r%2 == 0 {
		if err := svc.SnapshotAll(); err != nil {
			t.Fatalf("round %d: SnapshotAll: %v", r, err)
		}
	}
	if err := svc.EndRound(int64(r)); err != nil {
		t.Fatalf("round %d: EndRound: %v", r, err)
	}
	return allocFingerprint(svc) + ingressFingerprint(svc)
}

// TestSubmissionsSurviveCoordinatorCrash is the streaming-plane durability
// acceptance: the coordinator is killed while submissions sit queued but
// unadmitted (the token bucket admits one per tenant per round), and the
// restarted coordinator must replay the ingress byte-identically — queued
// work still queued, dedupe still effective, and the remaining rounds
// producing the exact allocations of an uninterrupted run.
func TestSubmissionsSurviveCoordinatorCrash(t *testing.T) {
	const rounds = 6
	dir := t.TempDir()

	var want [rounds]string
	{
		_, c0 := NewLocalShard()
		_, c1 := NewLocalShard()
		svc, err := NewService(submitFaultConfig(filepath.Join(dir, "ref.wal")), []ShardClient{c0, c1})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			want[r] = driveSubmitRound(t, svc, r)
		}
		if err := svc.Close(); err != nil {
			t.Fatal(err)
		}
	}

	journal := filepath.Join(dir, "crash.wal")
	srv0, c0 := NewLocalShard()
	srv1, c1 := NewLocalShard()
	svc, err := NewService(submitFaultConfig(journal), []ShardClient{c0, c1})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r <= 1; r++ {
		if got := driveSubmitRound(t, svc, r); got != want[r] {
			t.Fatalf("pre-crash round %d diverged:\n got %s\nwant %s", r, got, want[r])
		}
	}
	queued := 0
	for _, si := range svc.Submissions() {
		if si.State == SubmissionQueued {
			queued++
		}
	}
	if queued == 0 {
		t.Fatal("test premise broken: no submissions queued at the crash point")
	}
	preCrash := allocFingerprint(svc) + ingressFingerprint(svc)
	svc = nil // the crash

	resumed, err := NewService(submitFaultConfig(journal),
		[]ShardClient{NewLocalShardClient(srv0), NewLocalShardClient(srv1)})
	if err != nil {
		t.Fatalf("restart over journal: %v", err)
	}
	defer resumed.Close()
	if !resumed.Resumed() {
		t.Fatal("restarted service did not detect the journal")
	}
	if got := allocFingerprint(resumed) + ingressFingerprint(resumed); got != preCrash {
		t.Fatalf("replayed state differs from pre-crash:\n got %s\nwant %s", got, preCrash)
	}
	// A client retrying its stream against the resumed coordinator dedupes.
	rep, err := resumed.Submit(SubmitArgs{
		Tenant: "a", Key: "k0", Name: "m0", TotalSteps: 900, ScaleFactor: 1, Tput: testTput(0),
	})
	if err != nil {
		t.Fatalf("re-submit after resume: %v", err)
	}
	var wantID int
	for _, si := range resumed.Submissions() {
		if si.Tenant == "a" && si.Key == "k0" {
			wantID = si.JobID
		}
	}
	if rep.JobID != wantID {
		t.Fatalf("resumed dedupe assigned job %d, original was %d", rep.JobID, wantID)
	}
	for r := 2; r < rounds; r++ {
		if got := driveSubmitRound(t, resumed, r); got != want[r] {
			t.Fatalf("post-restart round %d diverged:\n got %s\nwant %s", r, got, want[r])
		}
	}
	// Every submission resolved identically: the withdrawn key is withdrawn,
	// the rest admitted.
	for _, si := range resumed.Submissions() {
		switch {
		case si.Tenant == "a" && si.Key == "k2":
			if si.State != SubmissionWithdrawn {
				t.Fatalf("withdrawn submission replayed as %v", si.State)
			}
		case si.State != SubmissionAdmitted:
			t.Fatalf("submission %s/%s ended %v, want admitted", si.Tenant, si.Key, si.State)
		}
	}
}
