// Package rpc is Gavel's control plane for physical deployments: the
// narrow scheduler <-> worker API of §6 carried over Go's net/rpc (the
// stdlib substitution for the paper's gRPC; see DESIGN.md). Workers
// register their accelerator type, lease micro-tasks round by round, renew
// leases near round end, and report measured throughputs, which feed the
// policy's throughput matrix exactly as in the simulator.
package rpc

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"
)

// RegisterArgs announces a worker to the scheduler.
type RegisterArgs struct {
	Addr            string // worker callback address (informational)
	AcceleratorType string // e.g. "v100"
	Server          string // physical server id, for consolidation
}

// RegisterReply returns the assigned worker ID and round length.
type RegisterReply struct {
	WorkerID     int
	RoundSeconds float64
}

// LeaseArgs asks for the next micro-task on a worker.
type LeaseArgs struct {
	WorkerID int
}

// Lease describes one micro-task: run the job for the round, checkpointing
// at the end unless renewed.
type Lease struct {
	JobIDs       []int // one job, or two when space sharing
	RoundSeconds float64
	// Renewed reports whether the same job keeps the worker next round
	// (the GavelIterator's lease-renewal check, §6).
	Renewed bool
	// Empty means no work this round.
	Empty bool
}

// ThroughputReport feeds a measured throughput back to the scheduler.
type ThroughputReport struct {
	WorkerID int
	JobID    int
	// StepsPerSecond measured over the micro-task.
	StepsPerSecond float64
}

// Ack is an empty RPC reply.
type Ack struct{}

// JobSpec is the unit of work submitted to the scheduler daemon.
type JobSpec struct {
	JobID      int
	Name       string
	TotalSteps float64
	// ThroughputHint maps accelerator type -> steps/sec; measured values
	// override hints as rounds complete.
	ThroughputHint map[string]float64
}

// Scheduler is the RPC server half: it tracks workers and runnable jobs
// and hands out leases per round, using received-time priorities like the
// in-process mechanism. It is deliberately small — the heavy lifting
// (policies, the full mechanism) is reused from the core library by the
// daemon in cmd/gavel-sched; this type provides the wire surface plus a
// self-contained priority scheduler good enough for the lease protocol
// tests and the quickstart physical deployment.
type Scheduler struct {
	mu           sync.Mutex
	roundSeconds float64

	nextWorker int
	workers    map[int]*workerState

	jobs map[int]*jobClientState

	listener net.Listener
	server   *rpc.Server
}

type workerState struct {
	id      int
	accType string
	server  string
	current int // job id leased this round, -1 none
}

type jobClientState struct {
	spec     JobSpec
	steps    float64
	received map[string]float64 // seconds per accelerator type
	measured map[string]float64 // steps/sec per accelerator type
	done     bool
}

// NewScheduler creates a scheduler with the given round length.
func NewScheduler(roundSeconds float64) *Scheduler {
	if roundSeconds <= 0 {
		roundSeconds = 360
	}
	return &Scheduler{
		roundSeconds: roundSeconds,
		workers:      map[int]*workerState{},
		jobs:         map[int]*jobClientState{},
	}
}

// Serve starts listening on addr ("host:port"); it returns the bound
// address (useful with ":0").
func (s *Scheduler) Serve(addr string) (string, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Gavel", &schedulerRPC{s: s}); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = ln
	s.server = srv
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener != nil {
		return s.listener.Close()
	}
	return nil
}

// Submit adds a job to the runnable set.
func (s *Scheduler) Submit(spec JobSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[spec.JobID] = &jobClientState{
		spec:     spec,
		received: map[string]float64{},
		measured: map[string]float64{},
	}
}

// JobDone reports whether the job has completed all steps.
func (s *Scheduler) JobDone(jobID int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	return ok && j.done
}

// Throughput returns the scheduler's current steps/sec belief for a job on
// an accelerator type (measurement if present, else hint).
func (s *Scheduler) Throughput(jobID int, accType string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return 0
	}
	if v, ok := j.measured[accType]; ok {
		return v
	}
	return j.spec.ThroughputHint[accType]
}

// schedulerRPC is the exported RPC surface.
type schedulerRPC struct{ s *Scheduler }

// RegisterWorker implements the worker-registration RPC.
func (r *schedulerRPC) RegisterWorker(args RegisterArgs, reply *RegisterReply) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.AcceleratorType == "" {
		return errors.New("rpc: worker must declare an accelerator type")
	}
	id := s.nextWorker
	s.nextWorker++
	s.workers[id] = &workerState{id: id, accType: args.AcceleratorType, server: args.Server, current: -1}
	*reply = RegisterReply{WorkerID: id, RoundSeconds: s.roundSeconds}
	return nil
}

// LeaseMicroTask hands the next micro-task to a worker. The job picked is
// the runnable job with the least attained service on the worker's
// accelerator type (a worker-pull variant of the round mechanism: exact
// allocation tracking lives in cmd/gavel-sched, which drives this same
// wire surface with policy output).
func (r *schedulerRPC) LeaseMicroTask(args LeaseArgs, reply *Lease) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.workers[args.WorkerID]
	if !ok {
		return fmt.Errorf("rpc: unknown worker %d", args.WorkerID)
	}
	// Free the previous lease.
	prev := w.current
	w.current = -1

	leased := map[int]bool{}
	for _, ws := range s.workers {
		if ws.current >= 0 {
			leased[ws.current] = true
		}
	}
	type cand struct {
		id   int
		recv float64
	}
	var cands []cand
	for id, j := range s.jobs {
		if j.done || leased[id] {
			continue
		}
		total := 0.0
		for _, v := range j.received {
			total += v
		}
		cands = append(cands, cand{id: id, recv: total})
	}
	if len(cands) == 0 {
		*reply = Lease{Empty: true, RoundSeconds: s.roundSeconds}
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].recv != cands[b].recv {
			return cands[a].recv < cands[b].recv
		}
		return cands[a].id < cands[b].id
	})
	pick := cands[0].id
	w.current = pick
	s.jobs[pick].received[w.accType] += s.roundSeconds
	*reply = Lease{
		JobIDs:       []int{pick},
		RoundSeconds: s.roundSeconds,
		Renewed:      pick == prev,
	}
	return nil
}

// ReportThroughput records a measured throughput and job progress.
func (r *schedulerRPC) ReportThroughput(rep ThroughputReport, _ *Ack) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.workers[rep.WorkerID]
	if !ok {
		return fmt.Errorf("rpc: unknown worker %d", rep.WorkerID)
	}
	j, ok := s.jobs[rep.JobID]
	if !ok {
		return fmt.Errorf("rpc: unknown job %d", rep.JobID)
	}
	j.measured[w.accType] = rep.StepsPerSecond
	j.steps += rep.StepsPerSecond * s.roundSeconds
	if j.steps >= j.spec.TotalSteps {
		j.done = true
	}
	return nil
}

// Client is the worker-side handle.
type Client struct {
	c        *rpc.Client
	WorkerID int
	Round    time.Duration
}

// Dial connects a worker to the scheduler and registers it.
func Dial(addr string, reg RegisterArgs) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var reply RegisterReply
	if err := c.Call("Gavel.RegisterWorker", reg, &reply); err != nil {
		c.Close()
		return nil, err
	}
	return &Client{
		c:        c,
		WorkerID: reply.WorkerID,
		Round:    time.Duration(reply.RoundSeconds * float64(time.Second)),
	}, nil
}

// Lease requests the next micro-task.
func (c *Client) Lease() (*Lease, error) {
	var l Lease
	if err := c.c.Call("Gavel.LeaseMicroTask", LeaseArgs{WorkerID: c.WorkerID}, &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Report sends a measured throughput.
func (c *Client) Report(jobID int, stepsPerSecond float64) error {
	var ack Ack
	return c.c.Call("Gavel.ReportThroughput",
		ThroughputReport{WorkerID: c.WorkerID, JobID: jobID, StepsPerSecond: stepsPerSecond}, &ack)
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }
