package rpc

// This file is the scheduler <-> worker lease plane of §6: workers register
// their accelerator type, lease micro-tasks round by round, and report
// measured throughputs. Protocol version 2 added the handshake and typed
// errors; an unversioned (v1) worker's Register decodes with Version 0 and
// is rejected with CodeVersionMismatch instead of garbling state.

import (
	"fmt"
	"net"
	gorpc "net/rpc"
	"sort"
	"strings"
	"sync"
	"time"

	"gavel/internal/obs"
)

// RegisterArgs announces a worker to the scheduler.
type RegisterArgs struct {
	// Version is the worker's protocol version; see CheckVersion.
	Version         int
	Addr            string // worker callback address (informational)
	AcceleratorType string // e.g. "v100"
	Server          string // physical server id, for consolidation
}

// RegisterReply returns the assigned worker ID, round length, and the
// scheduler's protocol version.
type RegisterReply struct {
	Version      int
	WorkerID     int
	RoundSeconds float64
}

// LeaseArgs asks for the next micro-task on a worker.
type LeaseArgs struct {
	WorkerID int
}

// Lease describes one micro-task: run the job for the round, checkpointing
// at the end unless renewed.
type Lease struct {
	JobIDs       []int // one job, or two when space sharing
	RoundSeconds float64
	// Renewed reports whether the same job keeps the worker next round
	// (the GavelIterator's lease-renewal check, §6).
	Renewed bool
	// Empty means no work this round.
	Empty bool
}

// ThroughputReport feeds a measured throughput back to the scheduler.
type ThroughputReport struct {
	WorkerID int
	JobID    int
	// StepsPerSecond measured over the micro-task.
	StepsPerSecond float64
}

// JobSpec is the unit of work submitted to the scheduler daemon.
type JobSpec struct {
	JobID      int
	Name       string
	TotalSteps float64
	// ThroughputHint maps accelerator type -> steps/sec; measured values
	// override hints as rounds complete.
	ThroughputHint map[string]float64
}

// WorkerInfo is one registered worker's identity, for daemons that build
// their cluster view from registrations.
type WorkerInfo struct {
	ID              int
	AcceleratorType string
	Server          string
}

// LeaseSource supplies leases for registered workers, letting a daemon drive
// the wire surface from real policy output — the coordinator's merged round
// assignments — instead of the built-in least-attained-service fallback.
// NextLease returns the job IDs the worker should run this round (empty =
// idle). Implementations are called under the scheduler's lock and must not
// call back into it.
type LeaseSource interface {
	NextLease(workerID int, accType, server string) []int
}

// Scheduler is the lease-plane server: it tracks workers and runnable jobs
// and hands out leases per round. Leases expire: a worker that stops calling
// (crashed, partitioned) loses its lease one round after it was granted, and
// the job returns to the runnable set — without this, a dead worker strands
// its job forever. The built-in lease policy is least attained service; a
// daemon with a real coordinator installs a LeaseSource and drives the same
// wire surface from policy output.
type Scheduler struct {
	mu           sync.Mutex
	roundSeconds float64

	nextWorker int
	workers    map[int]*workerState

	jobs   map[int]*jobClientState
	source LeaseSource

	// clock is injectable for lease-expiry tests.
	clock func() time.Time

	srv *tcpServer

	// Telemetry (SetObs; nil instruments no-op when observability is off).
	leases   *obs.Counter // gavel_leases_granted_total
	empties  *obs.Counter // gavel_leases_empty_total
	expiries *obs.Counter // gavel_lease_expiries_total
	reports  *obs.Counter // gavel_step_reports_total
}

type workerState struct {
	id      int
	accType string
	server  string
	current int       // job id leased this round, -1 none
	leaseAt time.Time // when the current lease was granted
}

type jobClientState struct {
	spec     JobSpec
	steps    float64
	received map[string]float64 // seconds per accelerator type
	measured map[string]float64 // steps/sec per accelerator type
	done     bool
}

// NewScheduler creates a scheduler with the given round length.
func NewScheduler(roundSeconds float64) *Scheduler {
	if roundSeconds <= 0 {
		roundSeconds = 360
	}
	return &Scheduler{
		roundSeconds: roundSeconds,
		workers:      map[int]*workerState{},
		jobs:         map[int]*jobClientState{},
		clock:        time.Now,
	}
}

// SetObs registers the lease plane's instruments: lease grant/empty/expiry
// counters, throughput-report counter, and live worker/runnable-job gauges
// (sampled at scrape time under the scheduler's own lock).
func (s *Scheduler) SetObs(p *obs.Plane) {
	if s == nil || p == nil {
		return
	}
	reg := p.Registry()
	s.mu.Lock()
	s.leases = reg.Counter("gavel_leases_granted_total", "Micro-task leases granted to workers.")
	s.empties = reg.Counter("gavel_leases_empty_total", "Lease requests answered with no work.")
	s.expiries = reg.Counter("gavel_lease_expiries_total", "Leases expired because the holder went silent for a round.")
	s.reports = reg.Counter("gavel_step_reports_total", "Worker throughput reports folded into job progress.")
	s.mu.Unlock()
	reg.GaugeFunc("gavel_workers_registered", "Workers registered with the lease plane.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.workers))
	})
	reg.GaugeFunc("gavel_jobs_runnable", "Jobs submitted to the lease plane and not yet done.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, j := range s.jobs {
			if !j.done {
				n++
			}
		}
		return float64(n)
	})
}

// StatusText renders the lease plane's worker and job tables for /statusz.
// Safe for concurrent use.
func (s *Scheduler) StatusText() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "workers %d  jobs %d\n", len(s.workers), len(s.jobs))
	ids := make([]int, 0, len(s.workers))
	for id := range s.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := s.workers[id]
		fmt.Fprintf(&b, "worker %d  type %s  server %s  leased job %d\n", w.id, w.accType, w.server, w.current)
	}
	jids := make([]int, 0, len(s.jobs))
	for id := range s.jobs {
		jids = append(jids, id)
	}
	sort.Ints(jids)
	for _, id := range jids {
		j := s.jobs[id]
		fmt.Fprintf(&b, "job %d  steps %.0f/%.0f  done %v\n", id, j.steps, j.spec.TotalSteps, j.done)
	}
	return b.String()
}

// SetLeaseSource installs a lease policy, replacing the built-in
// least-attained-service fallback. Pass nil to restore the fallback.
func (s *Scheduler) SetLeaseSource(src LeaseSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.source = src
}

// leaseServiceName is the net/rpc service name of the lease plane.
const leaseServiceName = "Gavel"

// Serve starts listening on addr ("host:port"); it returns the bound
// address (useful with ":0").
func (s *Scheduler) Serve(addr string) (string, error) {
	srv := gorpc.NewServer()
	if err := srv.RegisterName(leaseServiceName, &schedulerRPC{s: s}); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.srv = newTCPServer(ln, srv)
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Close stops the listener and tears down every in-flight connection,
// joining their ServeConn goroutines.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.close()
}

// Submit adds a job to the runnable set.
func (s *Scheduler) Submit(spec JobSpec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[spec.JobID] = &jobClientState{
		spec:     spec,
		received: map[string]float64{},
		measured: map[string]float64{},
	}
}

// JobDone reports whether the job has completed all steps.
func (s *Scheduler) JobDone(jobID int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	return ok && j.done
}

// Steps returns the job's accumulated training steps.
func (s *Scheduler) Steps(jobID int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return 0
	}
	return j.steps
}

// Throughput returns the scheduler's current steps/sec belief for a job on
// an accelerator type (measurement if present, else hint).
func (s *Scheduler) Throughput(jobID int, accType string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok {
		return 0
	}
	if v, ok := j.measured[accType]; ok {
		return v
	}
	return j.spec.ThroughputHint[accType]
}

// Measured returns a copy of the job's measured steps/sec per accelerator
// type — what workers actually reported, as opposed to what the submitter
// declared. The coordinator feeds these into the submission plane's trust
// review between rounds.
func (s *Scheduler) Measured(jobID int) map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[jobID]
	if !ok || len(j.measured) == 0 {
		return nil
	}
	out := make(map[string]float64, len(j.measured))
	for k, v := range j.measured {
		out[k] = v
	}
	return out
}

// Workers returns the registered workers sorted by ID.
func (s *Scheduler) Workers() []WorkerInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]WorkerInfo, 0, len(s.workers))
	for _, w := range s.workers {
		out = append(out, WorkerInfo{ID: w.id, AcceleratorType: w.accType, Server: w.server})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// leaseTTL is how long a granted lease is honored without renewal: one round
// (the lease's own duration). A worker that neither renews nor reports
// within it is presumed dead and its job returns to the runnable set.
func (s *Scheduler) leaseTTL() time.Duration {
	return time.Duration(s.roundSeconds * float64(time.Second))
}

// expireLeases (callers hold mu) frees every lease older than the TTL.
func (s *Scheduler) expireLeases() {
	now := s.clock()
	for _, w := range s.workers {
		if w.current >= 0 && now.Sub(w.leaseAt) > s.leaseTTL() {
			w.current = -1
			s.expiries.Inc()
		}
	}
}

// schedulerRPC is the exported RPC surface.
type schedulerRPC struct{ s *Scheduler }

// Hello is the protocol handshake.
func (r *schedulerRPC) Hello(args HelloArgs, reply *HelloReply) error {
	if err := CheckVersion(args.Version); err != nil {
		return err
	}
	*reply = HelloReply{Version: ProtocolVersion}
	return nil
}

// RegisterWorker implements the worker-registration RPC.
func (r *schedulerRPC) RegisterWorker(args RegisterArgs, reply *RegisterReply) error {
	if err := CheckVersion(args.Version); err != nil {
		return err
	}
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if args.AcceleratorType == "" {
		return Errorf(CodeBadRequest, "worker must declare an accelerator type")
	}
	id := s.nextWorker
	s.nextWorker++
	s.workers[id] = &workerState{id: id, accType: args.AcceleratorType, server: args.Server, current: -1}
	*reply = RegisterReply{Version: ProtocolVersion, WorkerID: id, RoundSeconds: s.roundSeconds}
	return nil
}

// LeaseMicroTask hands the next micro-task to a worker. With a LeaseSource
// installed, the lease comes from it (the coordinator's round assignments);
// otherwise the fallback picks the runnable job with the least attained
// service on the worker's accelerator type. Either way, unrenewed leases
// expire after one round so crashed workers cannot strand jobs.
func (r *schedulerRPC) LeaseMicroTask(args LeaseArgs, reply *Lease) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.workers[args.WorkerID]
	if !ok {
		return Errorf(CodeUnknownWorker, "unknown worker %d", args.WorkerID)
	}
	// Free the previous lease and any lease whose holder went silent.
	prev := w.current
	w.current = -1
	s.expireLeases()

	if s.source != nil {
		ids := s.source.NextLease(w.id, w.accType, w.server)
		if len(ids) == 0 {
			s.empties.Inc()
			*reply = Lease{Empty: true, RoundSeconds: s.roundSeconds}
			return nil
		}
		s.leases.Inc()
		w.current = ids[0]
		w.leaseAt = s.clock()
		if j, ok := s.jobs[ids[0]]; ok {
			j.received[w.accType] += s.roundSeconds
		}
		*reply = Lease{
			JobIDs:       append([]int(nil), ids...),
			RoundSeconds: s.roundSeconds,
			Renewed:      prev == ids[0],
		}
		return nil
	}

	leased := map[int]bool{}
	for _, ws := range s.workers {
		if ws.current >= 0 {
			leased[ws.current] = true
		}
	}
	type cand struct {
		id   int
		recv float64
	}
	var cands []cand
	for id, j := range s.jobs {
		if j.done || leased[id] {
			continue
		}
		total := 0.0
		for _, v := range j.received {
			total += v
		}
		cands = append(cands, cand{id: id, recv: total})
	}
	if len(cands) == 0 {
		s.empties.Inc()
		*reply = Lease{Empty: true, RoundSeconds: s.roundSeconds}
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].recv != cands[b].recv {
			return cands[a].recv < cands[b].recv
		}
		return cands[a].id < cands[b].id
	})
	pick := cands[0].id
	s.leases.Inc()
	w.current = pick
	w.leaseAt = s.clock()
	s.jobs[pick].received[w.accType] += s.roundSeconds
	*reply = Lease{
		JobIDs:       []int{pick},
		RoundSeconds: s.roundSeconds,
		Renewed:      pick == prev,
	}
	return nil
}

// ReportThroughput records a measured throughput and job progress.
func (r *schedulerRPC) ReportThroughput(rep ThroughputReport, _ *Ack) error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.workers[rep.WorkerID]
	if !ok {
		return Errorf(CodeUnknownWorker, "unknown worker %d", rep.WorkerID)
	}
	j, ok := s.jobs[rep.JobID]
	if !ok {
		return Errorf(CodeUnknownJob, "unknown job %d", rep.JobID)
	}
	// A report is also a liveness signal: refresh the lease clock.
	if w.current == rep.JobID {
		w.leaseAt = s.clock()
	}
	s.reports.Inc()
	j.measured[w.accType] = rep.StepsPerSecond
	j.steps += rep.StepsPerSecond * s.roundSeconds
	if j.steps >= j.spec.TotalSteps {
		j.done = true
	}
	return nil
}

// Client is the worker-side handle.
type Client struct {
	c        *gorpc.Client
	WorkerID int
	Round    time.Duration
}

// Dial connects a worker to the scheduler, performs the version handshake,
// and registers it.
func Dial(addr string, reg RegisterArgs) (*Client, error) {
	c, err := gorpc.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var hello HelloReply
	if err := c.Call(leaseServiceName+".Hello", HelloArgs{Version: ProtocolVersion, Role: "worker"}, &hello); err != nil {
		c.Close()
		return nil, err
	}
	reg.Version = ProtocolVersion
	var reply RegisterReply
	if err := c.Call(leaseServiceName+".RegisterWorker", reg, &reply); err != nil {
		c.Close()
		return nil, err
	}
	return &Client{
		c:        c,
		WorkerID: reply.WorkerID,
		Round:    time.Duration(reply.RoundSeconds * float64(time.Second)),
	}, nil
}

// Lease requests the next micro-task.
func (c *Client) Lease() (*Lease, error) {
	var l Lease
	if err := c.c.Call(leaseServiceName+".LeaseMicroTask", LeaseArgs{WorkerID: c.WorkerID}, &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Report sends a measured throughput.
func (c *Client) Report(jobID int, stepsPerSecond float64) error {
	var ack Ack
	return c.c.Call(leaseServiceName+".ReportThroughput",
		ThroughputReport{WorkerID: c.WorkerID, JobID: jobID, StepsPerSecond: stepsPerSecond}, &ack)
}

// Close tears down the connection.
func (c *Client) Close() error { return c.c.Close() }
