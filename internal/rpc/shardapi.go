package rpc

import (
	"time"

	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// This file is the wire vocabulary of the coordinator <-> shard protocol.
// Every message is a plain exported struct so it rides gob unchanged; floats
// cross the wire bit-exactly (gob encodes float64 as its IEEE bits), which
// is what makes the served engine byte-identical to the in-process one.

// PolicySpec names a policy by its catalog name so a coordinator can
// configure remote shard daemons without shipping code. The names are the
// policies' own Name() strings; PolicyFromSpec builds the instance.
type PolicySpec struct {
	Name string
	// EnforceSLOs applies to "min_cost" (the cost policy's SLO variant).
	EnforceSLOs bool
}

// PolicyFromSpec instantiates the named policy. Only LP-catalog policies
// that are safe for the sharded engine are registered; unknown names return
// a CodeUnknownPolicy error.
func PolicyFromSpec(spec PolicySpec) (policy.Policy, error) {
	switch spec.Name {
	case "max_min_fairness":
		return &policy.MaxMinFairness{}, nil
	case "max_min_fairness_priorities":
		return &policy.MaxMinFairness{UsePriorities: true}, nil
	case "fifo":
		return policy.FIFO{}, nil
	case "shortest_job_first":
		return policy.ShortestJobFirst{}, nil
	case "min_makespan":
		return policy.Makespan{}, nil
	case "finish_time_fairness":
		return &policy.FinishTimeFairness{}, nil
	case "min_cost":
		return &policy.MinCost{EnforceSLOs: spec.EnforceSLOs}, nil
	case "max_total_throughput":
		return policy.MaxTotalThroughput{}, nil
	}
	return nil, Errorf(CodeUnknownPolicy, "no registered policy %q", spec.Name)
}

// SpecForPolicy reverses PolicyFromSpec for instances of registered
// policies, so a caller holding a policy.Policy (the simulator) can
// configure remote daemons. ok is false for unregistered policies — those
// can only run in-process.
func SpecForPolicy(p policy.Policy) (PolicySpec, bool) {
	switch v := p.(type) {
	case *policy.MaxMinFairness:
		if v.UsePriorities {
			return PolicySpec{Name: "max_min_fairness_priorities"}, true
		}
		return PolicySpec{Name: "max_min_fairness"}, true
	case policy.FIFO:
		return PolicySpec{Name: "fifo"}, true
	case policy.ShortestJobFirst:
		return PolicySpec{Name: "shortest_job_first"}, true
	case policy.Makespan:
		return PolicySpec{Name: "min_makespan"}, true
	case *policy.FinishTimeFairness:
		return PolicySpec{Name: "finish_time_fairness"}, true
	case *policy.MinCost:
		return PolicySpec{Name: "min_cost", EnforceSLOs: v.EnforceSLOs}, true
	case policy.MaxTotalThroughput:
		return PolicySpec{Name: "max_total_throughput"}, true
	}
	return PolicySpec{}, false
}

// ShardConfig is the coordinator's configuration push to one shard daemon
// (OPA bundle-style: daemons start bare and receive their identity over the
// control plane). WorkerInts is the daemon's slice of the cluster's per-type
// devices, computed with cluster.SplitWorkerCounts so the slices partition
// the global budget.
type ShardConfig struct {
	Index      int
	WorkerInts []int
	PerServer  []int
	Prices     []float64
	Policy     PolicySpec
	// LP carries the solver knobs, resolved once coordinator-side so every
	// daemon solves with identical settings regardless of its local
	// environment.
	LP lp.Options
	// ColdSolves disables the daemon's solve context (benchmark baseline).
	ColdSolves bool
	// PairGainThreshold / MaxPairsPerJob parameterize space-sharing pair
	// candidates exactly as in cluster.CoordinatorConfig.
	PairGainThreshold float64
	MaxPairsPerJob    int
}

// PairRows is one space-sharing pair's throughput rows (Ta for job A, Tb for
// job B, indexed by accelerator type). Shards apply them HasPair-gated, so
// senders may transmit candidates unconditionally.
type PairRows struct {
	A, B   int
	Ta, Tb []float64
}

// InstallArgs admits one job into a shard: a fresh arrival, the receiving
// half of a rebalance migration, or a crash recovery re-route. Seeds, when
// present, carry warm-start state (the source shard's or the coordinator's
// last snapshot of the dead shard); the daemon imports them only when its
// own context has none, mirroring the in-process coordinator's
// AdoptSeedsFrom gate, so the next solve lands remapped rather than cold.
type InstallArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace       string
	JobID       int
	ScaleFactor int
	Tput        []float64
	Pairs       []PairRows
	Seeds       []policy.Seed
	// Migrated distinguishes a rebalance/recovery move (MigratedIn++) from a
	// fresh arrival (Admitted++) in the shard's accounting.
	Migrated bool
}

// RemoveArgs drops a completed job.
type RemoveArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace string
	JobID int
}

// ExtractArgs removes one job for migration, returning its throughput row
// and the source's warm seeds in the reply.
type ExtractArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace string
	JobID int
}

// ExtractReply is the migration payload: everything the destination needs to
// Install the job warm.
type ExtractReply struct {
	ScaleFactor int
	Tput        []float64
	Seeds       []policy.Seed
}

// AllocateArgs asks the shard to recompute its allocation over its resident
// jobs. Infos carries the coordinator-side view of each job (weights,
// remaining work, elapsed time, SLOs) keyed by JobInfo.ID; the shard
// overwrites Tput/ScaleFactor/NumActiveJobs from its own state exactly as
// the in-process Shard.Allocate does. Round stamps the request for logging;
// the protocol itself is synchronous per round.
type AllocateArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace string
	Round int64
	Infos []policy.JobInfo
}

// AllocateReply returns the shard's allocation in full: the resident job IDs
// in admission order (the unit-local index space), the scheduling units, and
// the time-fraction matrix. The coordinator needs the real allocation — not
// a summary — to apply round progress and merge budgets exactly like the
// in-process engine.
type AllocateReply struct {
	IDs   []int
	Units []core.Unit
	X     [][]float64
}

// AssignRoundArgs runs one mechanism round over the shard's current
// allocation. SkipJobs lists job IDs that must not run (finished since the
// allocation was computed).
type AssignRoundArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace        string
	Round        int64
	RoundSeconds float64
	SkipJobs     []int
}

// AssignRoundReply returns the round's assignments; UnitIdx indexes into the
// last AllocateReply's Units.
type AssignRoundReply struct {
	Assigns []scheduler.Assignment
}

// ObserveArgs feeds measured pair throughputs back into the shard's cache
// after a round executes, batched in observation order so the cache replays
// them exactly as an in-process run would.
type ObserveArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace string
	Obs   []PairObservation
}

// PairObservation is one measured pair throughput.
type PairObservation struct {
	A, B, Type int
	Ta, Tb     float64
}

// ObserveJobArgs overwrites one resident job's isolated throughput row with
// measured (or clamped) values — the trust review's feedback push. Daemons
// treat it as an advisory idempotent update: unknown job IDs are a no-op, so
// a push racing a departure is harmless and retries are safe.
type ObserveJobArgs struct {
	// Trace is the round trace ID minted by the coordinator
	// (obs.RoundTrace); shards tag their spans with it so per-round traces
	// join across processes. Empty when observability is off.
	Trace string
	JobID int
	Tput  []float64
}

// SnapshotArgs requests the shard's recovery snapshot.
type SnapshotArgs struct{}

// SnapshotReply is the periodic basis/throughput snapshot the coordinator
// stores per shard: the warm seeds (label, column IDs, serialized basis) and
// the shard's accounting. If the daemon later dies, the coordinator
// re-routes its jobs from its own membership mirror and hands these seeds to
// the destinations, so the recovered jobs' first solves are Basis.Remap
// repairs, not cold restarts — and Status keeps the dead shard's solve work
// countable in the merged result.
type SnapshotReply struct {
	Seeds  []policy.Seed
	Status ShardStatus
}

// StatusArgs requests the shard's accounting.
type StatusArgs struct{}

// ShardStatus is one shard daemon's accounting snapshot: the wire form of
// cluster.ShardStats plus the policy-call counters the simulator merges.
type ShardStatus struct {
	Index       int
	Jobs        []int // resident job IDs in admission order
	Admitted    int
	MigratedIn  int
	MigratedOut int
	PolicyCalls int
	PolicyTime  time.Duration
	Solve       policy.SolveStats
}

// Ack is the empty reply.
type Ack struct{}
