package rpc

// Transport-level fault tests: per-call deadlines against hung daemons,
// retry policy behavior, and goroutine-leak assertions for every server and
// client teardown path (no goleak dependency: runtime.NumGoroutine polling
// against a pre-test baseline).

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// TestCallTimeoutAgainstHungServer dials a raw TCP listener that accepts
// connections but never speaks net/rpc: without a deadline the handshake
// would block forever; with one it must fail fast with CodeTimeout.
func TestCallTimeoutAgainstHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, say nothing
		}
	}()

	pol := CallPolicy{Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond}
	start := time.Now()
	_, err = DialShardWith(ln.Addr().String(), pol)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial against a hung server succeeded")
	}
	if CodeOf(err) != CodeTimeout {
		t.Fatalf("error code = %v, want %v (err: %v)", CodeOf(err), CodeTimeout, err)
	}
	// One attempt + one retry at 50ms each, plus jittered backoff: well
	// under a second unless the deadline is broken.
	if elapsed > 2*time.Second {
		t.Fatalf("timed-out dial took %v; deadline not enforced", elapsed)
	}
}

// TestRetryRecoversTransient: a call that fails transiently recovers within
// the retry budget; a call that keeps failing surfaces the transient error;
// non-transient errors are never retried.
func TestRetryRecoversTransient(t *testing.T) {
	_, inner := NewLocalShard()
	calls := 0
	var inject func() error
	f := &flakyClient{ShardClient: inner, fail: func(method string) error {
		if method != "Ping" {
			return nil
		}
		calls++
		return inject()
	}}
	c := WithRetry(f, CallPolicy{Retries: 2, Backoff: time.Microsecond})

	inject = func() error {
		if calls < 3 {
			return Errorf(CodeUnavailable, "drop %d", calls)
		}
		return nil
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("retry did not recover a transient failure: %v", err)
	}
	if calls != 3 {
		t.Fatalf("%d attempts, want 3 (1 + 2 retries)", calls)
	}

	calls, inject = 0, func() error { return Errorf(CodeTimeout, "always") }
	if err := c.Ping(); CodeOf(err) != CodeTimeout {
		t.Fatalf("exhausted retries returned %v, want CodeTimeout", err)
	}
	if calls != 3 {
		t.Fatalf("%d attempts on persistent transient, want 3", calls)
	}

	calls, inject = 0, func() error { return Errorf(CodeShardDown, "dead") }
	if err := c.Ping(); CodeOf(err) != CodeShardDown {
		t.Fatalf("non-transient error returned %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-transient error was retried (%d attempts)", calls)
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// baseline (plus slack for runtime background threads), failing the test if
// it never does: the leak assertion.
func waitGoroutines(t *testing.T, baseline int, context string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s leaked goroutines: %d running, baseline %d\n%s",
				context, runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShardServerCloseLeaksNothing: Serve, connect, make calls, then Close
// with the client still attached — every accept-loop and per-connection
// goroutine must exit.
func TestShardServerCloseLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialShard(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Abrupt teardown order: server first, with the connection still open.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitGoroutines(t, baseline, "ShardServer.Close")
}

// TestShardServerAbortedConnectionsLeakNothing: connections that die
// mid-session (the chaos crash case) must not strand ServeConn goroutines.
func TestShardServerAbortedConnectionsLeakNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write([]byte("not a gob stream"))
		conn.Close()
	}
	c, err := DialShard(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline, "aborted connections")
}

// TestSchedulerCloseLeaksNothing: the lease plane's Serve/Close cycle with a
// live worker connection attached.
func TestSchedulerCloseLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sched := NewScheduler(1)
	addr, err := sched.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitGoroutines(t, baseline, "Scheduler.Close")
}

// TestServiceCloseLeaksNothing: a journaled Service over TCP daemons,
// exercised and closed — clients, journal, and server teardown all joined.
func TestServiceCloseLeaksNothing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	var servers []*ShardServer
	var clients []ShardClient
	for i := 0; i < 2; i++ {
		srv := NewShardServer()
		addr, err := srv.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		c, err := DialShard(addr)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		clients = append(clients, c)
	}
	svc, err := NewService(testServiceConfig(t.TempDir()+"/j.wal"), clients)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Admit(0, 1, testTput(0)); err != nil {
		t.Fatal(err)
	}
	if err := svc.AllocateAll(0, testJobInfo, false); err != nil {
		t.Fatal(err)
	}
	if err := svc.EndRound(0); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	waitGoroutines(t, baseline, "Service.Close")
}
