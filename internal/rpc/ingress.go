package rpc

// This file is the submission plane's admission engine: the per-tenant
// ingress queues, quotas, token buckets, overload ladder, and the
// declared-vs-measured trust review behind Service.Submit / Withdraw / Poll.
//
// The ingress is the one part of the Service that IS safe for concurrent
// use: Submit/Withdraw/Poll arrive on RPC handler goroutines while the round
// loop runs, so everything here is guarded by ing.mu and never touches the
// shard mirror. The round loop moves work across the boundary at two points
// only — AdmitPending (queue -> mirror installs) and EndRound (token refill,
// overload evaluation, trust review) — and every state change either has its
// own journal record (recSubmit, recReject, recWithdraw, recTouch,
// recMeasure) or is a deterministic function of them replayed at round
// boundaries, so a resumed coordinator rebuilds the exact pre-crash ingress.
//
// Lock order: ing.mu may be held while appending to the journal (the journal
// has its own mutex); the converse never happens. Methods suffixed Locked
// require ing.mu; the rest take it themselves.

import (
	"math"
	"sort"
	"sync"

	"gavel/internal/obs"
)

// submission tracks one client-submitted job through its lifecycle.
type submission struct {
	tenant, key string
	jobID       int
	name        string
	totalSteps  float64
	scaleFactor int
	tput        []float64 // declared isolated throughput row
	sloClass    int

	state SubmissionState
	shard int   // placement while admitted (-1 otherwise)
	round int64 // round the submission was accepted

	// withdraw marks an admitted submission for removal by the next
	// AdmitPending pass (withdrawals of queued submissions act immediately).
	withdraw bool

	// measured is the EWMA of worker-reported throughputs per accelerator
	// type; seen marks which types have at least one sample. Both feed the
	// trust review.
	measured []float64
	seen     []bool
}

// tenantState is one tenant's quota, liveness, and trust state.
type tenantState struct {
	name   string
	queued int // submissions waiting in the ingress queue
	// resident counts admitted-and-running jobs (the MaxResidentPerTenant
	// quota's numerator).
	resident int
	// tokens is the admission token bucket: refilled by RatePerRound at each
	// EndRound, one consumed per admission. Starts full at Burst.
	tokens float64
	// lastActive is the last round the tenant contacted the coordinator
	// (Submit, Withdraw, or Poll) — the abandoned-client TTL's clock.
	lastActive int64

	// divergent counts consecutive trust reviews whose worst
	// declared/measured ratio exceeded QuarantineDivergence; at
	// QuarantineAfterRounds the tenant is quarantined and ratio fixes the
	// clamp factor for not-yet-measured types.
	divergent   int
	quarantined bool
	ratio       float64

	// Lifetime accounting (TenantStatus). refused counts edge rejections
	// (queue full) — live-only observability, deliberately not journaled.
	submitted, admitted, refused, shed, withdrawn, done int
}

// AdmissionDecision is one entry of the shed/quarantine decision log, the
// observability artifact CI uploads.
type AdmissionDecision struct {
	Round  int64
	Tenant string
	Key    string // empty for tenant-level decisions
	Action string // "refuse", "shed", "quarantine", "abandon"
	Detail string
}

// TenantStatus is one tenant's externally visible accounting.
type TenantStatus struct {
	Tenant      string
	Submitted   int // accepted into the queue
	Admitted    int // installed on a shard
	Refused     int // refused at the edge with CodeOverload (live-only count)
	Shed        int // rejected by the overload ladder
	Withdrawn   int // withdrawn by the client or the abandoned-client TTL
	Done        int // completed
	Queued      int // currently waiting
	Resident    int // currently admitted
	Quarantined bool
	// ClampRatio is the declared-row scale applied to a quarantined tenant's
	// unmeasured types (1 when not quarantined).
	ClampRatio float64
}

// jobClamp is one trust-review output: the effective throughput row job
// jobID must be scheduled with from now on.
type jobClamp struct {
	jobID int
	tput  []float64
}

// ingress is the submission plane's state. All fields are guarded by mu.
type ingress struct {
	mu       sync.Mutex
	cfg      AdmissionConfig
	numTypes int

	nextJobID int // coordinator-assigned job IDs, journaled via recSubmit

	queue   []*submission          // queued submissions in acceptance order
	byKey   map[string]*submission // "tenant\x00key" -> submission
	byJob   map[int]*submission
	tenants map[string]*tenantState
	order   []string // tenant names in first-contact order (deterministic)

	// pendingWithdraw holds admitted submissions flagged for removal; the
	// next AdmitPending drains it. Entries may be stale (already resolved) —
	// the drain re-checks state.
	pendingWithdraw []*submission

	round          int64 // last sealed round (mirrors Service.round)
	overloadRounds int   // consecutive rounds the global queue sat above ShedQueueDepth

	decisions []AdmissionDecision

	// dec counts every admission decision by action
	// (gavel_admission_decisions_total{action}); incremented at the same
	// choke point that feeds the decision log, including during journal
	// replay, so post-resume counters match the rebuilt ingress state.
	dec *obs.CounterVec
}

func newIngress(cfg AdmissionConfig, numTypes int) *ingress {
	cfg = cfg.withDefaults()
	return &ingress{
		cfg:       cfg,
		numTypes:  numTypes,
		nextJobID: cfg.JobIDBase,
		byKey:     map[string]*submission{},
		byJob:     map[int]*submission{},
		tenants:   map[string]*tenantState{},
	}
}

func submissionKey(tenant, key string) string { return tenant + "\x00" + key }

// tenantLocked returns (creating if needed) the tenant's state. New tenants
// start with a full token bucket.
func (ing *ingress) tenantLocked(name string, round int64) *tenantState {
	if t, ok := ing.tenants[name]; ok {
		return t
	}
	t := &tenantState{name: name, tokens: ing.cfg.Burst, lastActive: round, ratio: 1}
	ing.tenants[name] = t
	ing.order = append(ing.order, name)
	return t
}

func (ing *ingress) decideLocked(round int64, tenant, key, action, detail string) {
	ing.decisions = append(ing.decisions, AdmissionDecision{
		Round: round, Tenant: tenant, Key: key, Action: action, Detail: detail,
	})
	ing.dec.With(action).Inc()
}

// setObs registers the submission plane's instruments: the decision counters
// (children pre-registered at zero so scrapes see the full action
// vocabulary) and scrape-time gauges over the queue. The gauge closures take
// ing.mu themselves — the ingress is the concurrent-safe part of the
// Service, so sampling live state here is sound.
func (ing *ingress) setObs(p *obs.Plane) {
	if ing == nil || p == nil {
		return
	}
	reg := p.Registry()
	dec := reg.CounterVec("gavel_admission_decisions_total", "Admission-control decisions by action.", "action")
	for _, a := range []string{"refuse", "shed", "quarantine", "abandon"} {
		dec.With(a)
	}
	ing.mu.Lock()
	ing.dec = dec
	ing.mu.Unlock()
	reg.GaugeFunc("gavel_ingress_queue_depth", "Submissions waiting in the ingress queue.", func() float64 {
		ing.mu.Lock()
		defer ing.mu.Unlock()
		return float64(len(ing.queue))
	})
	reg.GaugeFunc("gavel_ingress_tenants", "Tenants that have contacted the coordinator.", func() float64 {
		ing.mu.Lock()
		defer ing.mu.Unlock()
		return float64(len(ing.tenants))
	})
	reg.GaugeFunc("gavel_ingress_quarantined_tenants", "Tenants currently quarantined by the trust review.", func() float64 {
		ing.mu.Lock()
		defer ing.mu.Unlock()
		n := 0
		for _, t := range ing.tenants {
			if t.quarantined {
				n++
			}
		}
		return float64(n)
	})
}

// dequeueLocked removes sub from the waiting queue (identity match).
func (ing *ingress) dequeueLocked(sub *submission) {
	for i, q := range ing.queue {
		if q == sub {
			ing.queue = append(ing.queue[:i], ing.queue[i+1:]...)
			return
		}
	}
}

// applySubmitLocked accepts one submission into the queue — the shared
// write-side of Service.Submit and recSubmit replay.
func (ing *ingress) applySubmitLocked(js *journalSubmit) {
	t := ing.tenantLocked(js.Tenant, js.Round)
	sub := &submission{
		tenant:      js.Tenant,
		key:         js.Key,
		jobID:       js.JobID,
		name:        js.Name,
		totalSteps:  js.TotalSteps,
		scaleFactor: js.ScaleFactor,
		tput:        append([]float64(nil), js.Tput...),
		sloClass:    js.SLOClass,
		state:       SubmissionQueued,
		shard:       -1,
		round:       js.Round,
	}
	ing.byKey[submissionKey(js.Tenant, js.Key)] = sub
	ing.byJob[js.JobID] = sub
	ing.queue = append(ing.queue, sub)
	t.queued++
	t.submitted++
	if js.Round > t.lastActive {
		t.lastActive = js.Round
	}
	if js.JobID >= ing.nextJobID {
		ing.nextJobID = js.JobID + 1
	}
}

// applyRejectLocked sheds one queued submission — the write-side of the
// overload ladder and recReject replay.
func (ing *ingress) applyRejectLocked(ref *journalSubmitRef) {
	sub := ing.byKey[submissionKey(ref.Tenant, ref.Key)]
	if sub == nil || sub.state != SubmissionQueued {
		return
	}
	ing.dequeueLocked(sub)
	sub.state = SubmissionRejected
	t := ing.tenantLocked(ref.Tenant, ref.Round)
	t.queued--
	t.shed++
}

// applyWithdrawLocked withdraws one submission: queued submissions leave
// immediately, admitted ones are flagged for the next AdmitPending pass.
// Shared by Service.Withdraw, ExpireAbandoned, and recWithdraw replay.
func (ing *ingress) applyWithdrawLocked(ref *journalSubmitRef) SubmissionState {
	sub := ing.byKey[submissionKey(ref.Tenant, ref.Key)]
	if sub == nil {
		return SubmissionUnknown
	}
	t := ing.tenantLocked(ref.Tenant, ref.Round)
	if ref.Round > t.lastActive && ref.Reason == withdrawClient {
		t.lastActive = ref.Round
	}
	switch sub.state {
	case SubmissionQueued:
		ing.dequeueLocked(sub)
		sub.state = SubmissionWithdrawn
		t.queued--
		t.withdrawn++
	case SubmissionAdmitted:
		if !sub.withdraw {
			sub.withdraw = true
			ing.pendingWithdraw = append(ing.pendingWithdraw, sub)
		}
	}
	return sub.state
}

// applyTouchLocked advances a tenant's liveness clock — the write-side of
// Poll and recTouch replay.
func (ing *ingress) applyTouchLocked(ref *journalSubmitRef) {
	if t, ok := ing.tenants[ref.Tenant]; ok && ref.Round > t.lastActive {
		t.lastActive = ref.Round
	}
}

// applyMeasureLocked folds one worker-measured throughput sample into the
// job's EWMA row — the write-side of ObserveMeasured and recMeasure replay.
func (ing *ingress) applyMeasureLocked(m *journalMeasure) {
	sub := ing.byJob[m.JobID]
	if sub == nil || m.Type < 0 || m.Type >= ing.numTypes {
		return
	}
	if sub.measured == nil {
		sub.measured = make([]float64, ing.numTypes)
		sub.seen = make([]bool, ing.numTypes)
	}
	if !sub.seen[m.Type] {
		sub.measured[m.Type] = m.Rate
		sub.seen[m.Type] = true
	} else {
		a := ing.cfg.MeasuredAlpha
		sub.measured[m.Type] = a*m.Rate + (1-a)*sub.measured[m.Type]
	}
}

// noteAdmitted is the mirror-install hook: a job landing on a shard moves its
// submission to Admitted and consumes an admission token. Re-installs from
// migration or recovery just update the placement; the transient
// Done/Withdrawn a migration's remove-then-install produces is revived here
// (both live and replay walk the identical sequence).
func (ing *ingress) noteAdmitted(jobID, shard int) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	sub := ing.byJob[jobID]
	if sub == nil {
		return
	}
	t := ing.tenants[sub.tenant]
	switch sub.state {
	case SubmissionQueued:
		ing.dequeueLocked(sub)
		sub.state = SubmissionAdmitted
		sub.shard = shard
		t.queued--
		t.resident++
		t.admitted++
		if ing.cfg.RatePerRound > 0 {
			if t.tokens -= 1; t.tokens < 0 {
				t.tokens = 0
			}
		}
	case SubmissionDone, SubmissionWithdrawn:
		if sub.state == SubmissionDone {
			t.done--
		} else {
			t.withdrawn--
			sub.withdraw = true
		}
		sub.state = SubmissionAdmitted
		sub.shard = shard
		t.resident++
		if sub.withdraw {
			ing.pendingWithdraw = append(ing.pendingWithdraw, sub)
		}
	case SubmissionAdmitted:
		sub.shard = shard
	}
}

// noteRemoved is the mirror-remove hook: a job leaving its placement
// entirely resolves its submission to Done (or Withdrawn, when flagged).
func (ing *ingress) noteRemoved(jobID int) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	sub := ing.byJob[jobID]
	if sub == nil || sub.state != SubmissionAdmitted {
		return
	}
	t := ing.tenants[sub.tenant]
	t.resident--
	sub.shard = -1
	if sub.withdraw {
		sub.state = SubmissionWithdrawn
		t.withdrawn++
	} else {
		sub.state = SubmissionDone
		t.done++
	}
}

// residentIDsLocked returns tenant t's admitted job IDs in ascending order —
// the deterministic iteration the trust review and clamp pushes need.
func (ing *ingress) residentIDsLocked(tenant string) []int {
	var ids []int
	for id, sub := range ing.byJob {
		if sub.tenant == tenant && sub.state == SubmissionAdmitted {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// endRound advances the ingress clock at a round boundary: refill the token
// buckets, evaluate the overload ladder, and run the declared-vs-measured
// trust review. Returns the effective-throughput clamps for every job of a
// quarantined tenant (measured EWMA where sampled, declared x ratio where
// not). Called from the live EndRound and from recRound replay — it journals
// nothing and draws only on journaled state, which is what keeps a resumed
// coordinator's ingress byte-identical.
func (ing *ingress) endRound(r int64) []jobClamp {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	ing.round = r
	if ing.cfg.RatePerRound > 0 {
		for _, name := range ing.order {
			t := ing.tenants[name]
			if t.tokens += ing.cfg.RatePerRound; t.tokens > ing.cfg.Burst {
				t.tokens = ing.cfg.Burst
			}
		}
	}
	if len(ing.queue) > ing.cfg.ShedQueueDepth {
		ing.overloadRounds++
	} else {
		ing.overloadRounds = 0
	}
	var clamps []jobClamp
	for _, name := range ing.order {
		t := ing.tenants[name]
		maxDiv := 0.0
		for _, id := range ing.residentIDsLocked(name) {
			sub := ing.byJob[id]
			for j := 0; j < ing.numTypes && sub.seen != nil; j++ {
				if sub.seen[j] && sub.measured[j] > 0 && sub.tput[j] > 0 {
					if div := sub.tput[j] / sub.measured[j]; div > maxDiv {
						maxDiv = div
					}
				}
			}
		}
		if maxDiv > ing.cfg.QuarantineDivergence {
			t.divergent++
		} else {
			t.divergent = 0
		}
		if !t.quarantined && t.divergent >= ing.cfg.QuarantineAfterRounds {
			t.quarantined = true
			t.ratio = 1 / maxDiv
			ing.decideLocked(r, name, "", "quarantine",
				"declared/measured divergence persisted; rows clamped to measured")
		}
		if t.quarantined {
			for _, id := range ing.residentIDsLocked(name) {
				sub := ing.byJob[id]
				row := make([]float64, ing.numTypes)
				for j := range row {
					if sub.seen != nil && sub.seen[j] {
						row[j] = sub.measured[j]
					} else {
						row[j] = sub.tput[j] * t.ratio
					}
				}
				clamps = append(clamps, jobClamp{jobID: id, tput: row})
			}
		}
	}
	return clamps
}

// retryAfterLocked is the backpressure hint for tenant t: how many rounds
// until the token bucket plausibly clears the tenant's backlog.
func (ing *ingress) retryAfterLocked(t *tenantState) int {
	if ing.cfg.RatePerRound <= 0 {
		return 1
	}
	return int(math.Ceil(float64(t.queued) / ing.cfg.RatePerRound))
}
