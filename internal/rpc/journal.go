package rpc

// This file is the coordinator's durability plane: a versioned write-ahead
// log of every mirror mutation the Service makes — admissions, removals,
// migrations, recoveries, down-markings, per-shard allocations, and the
// periodic seed snapshots — so a restarted coordinator can replay the log
// and resume with the exact pre-crash mirror, warm bases included.
//
// Records are appended through a buffered writer and fsynced in batches at
// round boundaries (Service.EndRound): the round is the durability unit,
// matching the protocol's round-synchronous batching. Each record is framed
// as [4-byte length][4-byte crc32][gob payload], every frame a standalone
// gob stream, so a torn tail write — the crash case — is detected by length
// or checksum, the log is truncated at the last intact frame, and replay
// proceeds from what was durably committed. Warm seeds ride the same
// versioned gob wire forms as the control plane itself (lp.Basis's
// basisWire), so a journaled snapshot is exactly as usable as a live one.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"gavel/internal/core"
	"gavel/internal/obs"
	"gavel/internal/policy"
)

// JournalVersion stamps the log's record vocabulary. A journal written by an
// incompatible build is rejected at open, not misreplayed. Version 2 added
// the submission-plane records (recSubmit through recMeasure).
const JournalVersion = 2

// recordKind tags the journal's record union.
type recordKind uint8

const (
	recConfig    recordKind = iota + 1 // first record of every journal
	recInstall                         // job landed on a shard (admit/migrate/recover)
	recRemove                          // job left a shard (departure or migration source)
	recDown                            // shard marked dead
	recDirty                           // shard marked stale by the driver
	recAlloc                           // shard's allocation recomputed
	recSnapshot                        // shard's seeds + status pulled
	recRebalance                       // a rebalance pass moved >= 1 job
	recDegrade                         // shard's allocation went stale (transient failure)
	recRound                           // round boundary (fsync batch point)
	recSubmit                          // submission accepted into the ingress queue
	recReject                          // queued submission shed by the overload ladder
	recWithdraw                        // submission withdrawn (client or abandoned-TTL)
	recTouch                           // tenant liveness advanced by a Poll
	recMeasure                         // one worker-measured throughput sample
)

// installReason distinguishes the three ways a job lands on a shard, so
// replay rebuilds the migration/recovery counters exactly.
type installReason uint8

const (
	reasonAdmit installReason = iota
	reasonMigrate
	reasonRecover
)

// journalRecord is the tagged union written to the log. Exactly the fields
// for the active Kind are set; gob omits the nil rest.
type journalRecord struct {
	Kind recordKind

	Config   *journalConfig
	Install  *journalInstall
	Remove   *journalRemove
	Shard    int // recDown, recDirty, recSnapshot, recDegrade target
	Alloc    *journalAlloc
	Snapshot *journalSnapshot
	Round    int64 // recRound
	Degraded bool  // recRound: some shard ran degraded this round
	Submit   *journalSubmit
	Ref      *journalSubmitRef // recReject, recWithdraw, recTouch target
	Measure  *journalMeasure
}

// journalConfig is the log's header record: enough identity to refuse
// replaying a journal into a differently-shaped service.
type journalConfig struct {
	Version   int
	NumShards int
	Policy    PolicySpec
	Route     int
}

type journalInstall struct {
	Shard       int
	JobID       int
	ScaleFactor int
	Tput        []float64
	Reason      installReason
}

type journalRemove struct {
	Shard int
	JobID int
}

type journalAlloc struct {
	Shard int
	IDs   []int
	Units []core.Unit
	X     [][]float64
}

type journalSnapshot struct {
	Shard  int
	Seeds  []policy.Seed
	Status ShardStatus
}

// journalSubmit is one accepted submission: everything needed to rebuild the
// queued entry and the coordinator-assigned job-ID counter on replay.
type journalSubmit struct {
	Tenant      string
	Key         string
	Name        string
	JobID       int
	ScaleFactor int
	SLOClass    int
	TotalSteps  float64
	Tput        []float64
	Round       int64
}

// withdrawReason distinguishes client withdrawals from abandoned-client TTL
// expiry (only client contact advances the liveness clock on replay).
type withdrawReason uint8

const (
	withdrawClient withdrawReason = iota
	withdrawAbandoned
)

// journalSubmitRef names an existing submission (recReject, recWithdraw) or
// a tenant (recTouch, with an empty Key).
type journalSubmitRef struct {
	Tenant string
	Key    string
	Reason withdrawReason
	Round  int64
}

// journalMeasure is one worker-measured throughput sample; replay re-folds
// it through the same EWMA as the live path.
type journalMeasure struct {
	JobID int
	Type  int
	Rate  float64
}

// journal is an append-only framed record log with batched fsync. The mutex
// serializes the submission plane's RPC-goroutine appends (recSubmit,
// recWithdraw, recTouch) against the round loop's; it is always acquired
// after ing.mu when both are held.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer

	// Telemetry (setObs): append/commit counters, appended bytes, and the
	// fsync latency histogram — the signal that shows a slow disk stalling
	// round seals.
	reg      *obs.Registry
	appends  *obs.Counter
	commits  *obs.Counter
	bytes    *obs.Counter
	fsyncSec *obs.Histogram
}

// setObs registers the journal's instruments on the plane's registry.
func (j *journal) setObs(p *obs.Plane) {
	if j == nil || p == nil {
		return
	}
	reg := p.Registry()
	j.mu.Lock()
	j.reg = reg
	j.appends = reg.Counter("gavel_journal_appends_total", "Records appended to the write-ahead journal.")
	j.commits = reg.Counter("gavel_journal_fsyncs_total", "Journal commit batches fsynced (one per sealed round).")
	j.bytes = reg.Counter("gavel_journal_bytes_total", "Framed bytes appended to the journal.")
	j.fsyncSec = reg.Histogram("gavel_journal_fsync_seconds", "Flush+fsync latency per journal commit.", obs.DurationBuckets)
	j.mu.Unlock()
}

// openJournal opens (or creates) the log at path, replays every intact
// record, truncates any torn tail so appends restart from a clean frame
// boundary, and returns the journal positioned for appending.
func openJournal(path string) (*journal, []journalRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("rpc: open journal: %w", err)
	}
	recs, good, err := readJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("rpc: truncate journal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &journal{f: f, w: bufio.NewWriterSize(f, 1<<16)}, recs, nil
}

// readJournal decodes records until EOF or the first damaged frame,
// returning the records and the byte offset of the last intact frame's end.
func readJournal(f *os.File) ([]journalRecord, int64, error) {
	r := bufio.NewReaderSize(f, 1<<16)
	var (
		recs []journalRecord
		good int64
		hdr  [8]byte
	)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, good, nil // clean end or torn length header
			}
			return nil, 0, fmt.Errorf("rpc: read journal: %w", err)
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n == 0 || n > 1<<30 {
			return recs, good, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, good, nil // torn payload
			}
			return nil, 0, fmt.Errorf("rpc: read journal: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, nil // torn or bit-rotted frame
		}
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			return nil, 0, fmt.Errorf("rpc: decode journal record %d: %w", len(recs), err)
		}
		if len(recs) == 0 {
			if rec.Kind != recConfig || rec.Config == nil {
				return nil, 0, fmt.Errorf("rpc: journal does not start with a config record")
			}
			if rec.Config.Version != JournalVersion {
				return nil, 0, fmt.Errorf("rpc: journal version %d, this build speaks %d",
					rec.Config.Version, JournalVersion)
			}
		}
		recs = append(recs, rec)
		good += int64(8 + n)
	}
}

// append frames one record into the write buffer. Durability waits for the
// next commit; ordering is already fixed here.
func (j *journal) append(rec *journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return fmt.Errorf("rpc: encode journal record: %w", err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(buf.Len()))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(buf.Bytes()))
	if _, err := j.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("rpc: append journal record: %w", err)
	}
	if _, err := j.w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("rpc: append journal record: %w", err)
	}
	j.appends.Inc()
	j.bytes.Add(8 + buf.Len())
	return nil
}

// commit flushes the buffered records and fsyncs: everything appended so far
// survives a crash after commit returns.
func (j *journal) commit() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := j.reg.Now()
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("rpc: flush journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("rpc: fsync journal: %w", err)
	}
	j.commits.Inc()
	j.fsyncSec.Observe(j.reg.Since(start))
	return nil
}

// close commits and releases the file.
func (j *journal) close() error {
	if err := j.commit(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
