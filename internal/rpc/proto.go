// Package rpc is Gavel's control plane for physical deployments. It carries
// two protocols over Go's net/rpc (the stdlib substitution for the paper's
// gRPC; see DESIGN.md):
//
//   - the scheduler <-> worker lease protocol of §6 (rpc.go): workers
//     register their accelerator type, lease micro-tasks round by round, and
//     report measured throughputs;
//   - the coordinator <-> shard protocol (shardapi.go, shardserver.go,
//     service.go): a remote coordinator drives shard daemons — each owning
//     one partition of the cluster and running the full in-process machinery
//     of internal/cluster — through round-synchronized Allocate/AssignRound
//     calls, admission and migration messages that carry warm LP bases, and
//     periodic basis snapshots that let a crashed daemon's jobs recover warm
//     on the survivors.
//
// Both protocols are versioned: every connection opens with a handshake and
// a version mismatch is a typed error, not a garbled gob stream. Round
// boundaries are the batching unit of the wire protocol (Obladi-style
// epochs), which is what lets the served engine stay byte-deterministic with
// the in-process one: everything inside a round is a pure function of the
// shard's state, and the coordinator serializes state changes between
// rounds.
package rpc

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
)

// ProtocolVersion is the control-plane protocol spoken by this build.
// Version 1 was the seed's unversioned lease-only protocol; version 2 added
// the handshake, typed errors, and the coordinator <-> shard surface;
// version 3 added the client submission plane (Submit/Withdraw/Poll, the
// CodeOverload backpressure class, and the shard ObserveJob row update).
const ProtocolVersion = 3

// MinProtocolVersion is the oldest peer version this build accepts. Version 3
// changed the ShardClient surface (ObserveJob) and the error-code vocabulary,
// so older peers are rejected — every peer in a deployment ships from the
// same tree.
const MinProtocolVersion = 3

// ErrorCode classifies control-plane failures so callers can branch on the
// failure class instead of matching error strings.
type ErrorCode int

const (
	// CodeUnknown tags errors that did not originate as a typed Error.
	CodeUnknown ErrorCode = iota
	// CodeVersionMismatch: the peer speaks an incompatible protocol version.
	CodeVersionMismatch
	// CodeBadRequest: the message was structurally invalid.
	CodeBadRequest
	// CodeNotConfigured: the shard daemon has not received Configure yet.
	CodeNotConfigured
	// CodeAlreadyConfigured: a second Configure tried to change the shard's
	// identity.
	CodeAlreadyConfigured
	// CodeUnknownWorker: the worker ID is not registered.
	CodeUnknownWorker
	// CodeUnknownJob: the job ID is not resident.
	CodeUnknownJob
	// CodeUnknownPolicy: the policy spec names no registered policy.
	CodeUnknownPolicy
	// CodeNoAllocation: AssignRound was called before any Allocate.
	CodeNoAllocation
	// CodeShardDown: a shard daemon stopped answering (connection-level
	// failures are folded into this code by the client wrappers).
	CodeShardDown
	// CodeInternal: the shard's engine failed (LP error, budget violation).
	CodeInternal
	// CodeTimeout: a call exceeded its per-call deadline. Transient — the
	// daemon may be slow but alive, so the retry layer re-sends and the
	// coordinator degrades (proceeds on the last allocation) rather than
	// recovering immediately.
	CodeTimeout
	// CodeUnavailable: the message was lost in transit (the chaos plane's
	// injected drops and partitions use this code). Transient, like
	// CodeTimeout.
	CodeUnavailable
	// CodeOverload: the submission plane refused new work — a tenant's
	// ingress queue is full or its quota is exhausted. Deliberately NOT
	// transient: an immediate retry would be re-refused; the error message
	// carries a "retry-after=N" rounds hint (RetryAfter) and well-behaved
	// clients back off by it.
	CodeOverload
)

func (c ErrorCode) String() string {
	switch c {
	case CodeVersionMismatch:
		return "version-mismatch"
	case CodeBadRequest:
		return "bad-request"
	case CodeNotConfigured:
		return "not-configured"
	case CodeAlreadyConfigured:
		return "already-configured"
	case CodeUnknownWorker:
		return "unknown-worker"
	case CodeUnknownJob:
		return "unknown-job"
	case CodeUnknownPolicy:
		return "unknown-policy"
	case CodeNoAllocation:
		return "no-allocation"
	case CodeShardDown:
		return "shard-down"
	case CodeInternal:
		return "internal"
	case CodeTimeout:
		return "timeout"
	case CodeUnavailable:
		return "unavailable"
	case CodeOverload:
		return "overload"
	}
	return "unknown"
}

// IsTransient reports whether the failure class is worth retrying: the call
// may have been lost (dropped, partitioned) or merely slow (deadline), and
// re-sending it against the same daemon can succeed. CodeShardDown is NOT
// transient — the connection itself is dead, and the correct escalation is
// the coordinator's Recover path, not a retry.
func IsTransient(c ErrorCode) bool {
	return c == CodeTimeout || c == CodeUnavailable
}

// Error is a typed control-plane error. net/rpc flattens server-side errors
// to strings on the wire, so Error renders itself with a parsable prefix and
// CodeOf recovers the code client-side — the standard trick for typed errors
// over stdlib rpc.
type Error struct {
	Code ErrorCode
	Msg  string
}

// Errorf builds a typed error.
func Errorf(code ErrorCode, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Error implements error with the wire-parsable "gavelrpc[N]: msg" form.
func (e *Error) Error() string {
	return fmt.Sprintf("gavelrpc[%d]: %s", int(e.Code), e.Msg)
}

var wireErrRe = regexp.MustCompile(`^gavelrpc\[(\d+)\]: (.*)$`)

// ParseError recovers a typed Error from an error that crossed the wire as a
// string. Errors without the wire prefix come back with CodeUnknown.
func ParseError(err error) *Error {
	if err == nil {
		return nil
	}
	var typed *Error
	if errors.As(err, &typed) {
		return typed
	}
	if m := wireErrRe.FindStringSubmatch(err.Error()); m != nil {
		n, _ := strconv.Atoi(m[1])
		return &Error{Code: ErrorCode(n), Msg: m[2]}
	}
	return &Error{Code: CodeUnknown, Msg: err.Error()}
}

// CodeOf extracts the error code, CodeUnknown for nil or untyped errors.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return CodeUnknown
	}
	return ParseError(err).Code
}

// HelloArgs opens every control-plane connection: the caller announces its
// protocol version and role before any other call.
type HelloArgs struct {
	Version int
	// Role is informational ("coordinator", "worker", "test"), logged by the
	// server.
	Role string
}

// HelloReply acknowledges the handshake with the server's version.
type HelloReply struct {
	Version int
}

// CheckVersion is the server half of the handshake.
func CheckVersion(v int) error {
	if v < MinProtocolVersion || v > ProtocolVersion {
		return Errorf(CodeVersionMismatch,
			"peer speaks protocol %d, this build accepts %d..%d", v, MinProtocolVersion, ProtocolVersion)
	}
	return nil
}
