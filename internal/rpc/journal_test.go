package rpc

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTestJournal(t *testing.T, path string, recs ...*journalRecord) {
	t.Helper()
	j, got, err := openJournal(path)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(got))
	}
	for _, rec := range recs {
		if err := j.append(rec); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func testConfigRecord() *journalRecord {
	return &journalRecord{Kind: recConfig, Config: &journalConfig{
		Version:   JournalVersion,
		NumShards: 2,
		Policy:    PolicySpec{Name: "max_min_fairness"},
	}}
}

// TestJournalRoundTrip writes a record of every kind and replays them intact.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeTestJournal(t, path,
		testConfigRecord(),
		&journalRecord{Kind: recInstall, Install: &journalInstall{Shard: 1, JobID: 7, ScaleFactor: 2, Tput: []float64{1.5, 0.25}, Reason: reasonMigrate}},
		&journalRecord{Kind: recDirty, Shard: 1},
		&journalRecord{Kind: recAlloc, Alloc: &journalAlloc{Shard: 0, IDs: []int{7}, X: [][]float64{{0.5, 0.5}}}},
		&journalRecord{Kind: recDown, Shard: 0},
		&journalRecord{Kind: recRemove, Remove: &journalRemove{Shard: 1, JobID: 7}},
		&journalRecord{Kind: recDegrade, Shard: 1},
		&journalRecord{Kind: recRound, Round: 3, Degraded: true},
	)

	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.close()
	if len(recs) != 8 {
		t.Fatalf("replayed %d records, want 8", len(recs))
	}
	if recs[0].Kind != recConfig || recs[0].Config.NumShards != 2 {
		t.Fatalf("bad config record: %+v", recs[0])
	}
	in := recs[1].Install
	if recs[1].Kind != recInstall || in.JobID != 7 || in.ScaleFactor != 2 || in.Reason != reasonMigrate ||
		len(in.Tput) != 2 || in.Tput[0] != 1.5 {
		t.Fatalf("bad install record: %+v", in)
	}
	if recs[7].Kind != recRound || recs[7].Round != 3 || !recs[7].Degraded {
		t.Fatalf("bad round record: %+v", recs[7])
	}
}

// TestJournalTornTailTruncates simulates a crash mid-append: a journal with a
// partial final frame must replay every intact record and truncate the tail
// so the next append starts at a clean frame boundary.
func TestJournalTornTailTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeTestJournal(t, path,
		testConfigRecord(),
		&journalRecord{Kind: recRound, Round: 1},
	)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: a plausible length header plus half a payload.
	torn := append(append([]byte(nil), intact...), 0, 0, 0, 40, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("open torn journal: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records from torn journal, want 2", len(recs))
	}
	if err := j.append(&journalRecord{Kind: recRound, Round: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j, recs, err = openJournal(path)
	if err != nil {
		t.Fatalf("reopen after truncate+append: %v", err)
	}
	defer j.close()
	if len(recs) != 3 || recs[2].Round != 2 {
		t.Fatalf("post-truncation append did not replay: %d records", len(recs))
	}
}

// TestJournalCorruptFrameStopsReplay flips a payload byte in the middle of
// the log: replay must stop at the damage (treating everything after as
// lost), not decode garbage.
func TestJournalCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeTestJournal(t, path, testConfigRecord(), &journalRecord{Kind: recRound, Round: 1})
	short, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the second frame's payload (first frame is the
	// config record; its frame length is at the head).
	data := append([]byte(nil), short...)
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs, err := openJournal(path)
	if err != nil {
		t.Fatalf("open corrupt journal: %v", err)
	}
	defer j.close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records past a corrupt frame, want 1", len(recs))
	}
}

// TestJournalVersionMismatchRejected: a journal from an incompatible build
// must be rejected at open, not misreplayed.
func TestJournalVersionMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeTestJournal(t, path, &journalRecord{Kind: recConfig, Config: &journalConfig{
		Version: JournalVersion + 1, NumShards: 2,
	}})
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("journal with a future version opened without error")
	}
}

// TestJournalBadHeaderRejected: a log not starting with a config record is
// not a journal.
func TestJournalBadHeaderRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	writeTestJournal(t, path, &journalRecord{Kind: recRound, Round: 1})
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("journal without a config header opened without error")
	}
}
