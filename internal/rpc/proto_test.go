package rpc

import (
	"bytes"
	"encoding/gob"
	gorpc "net/rpc"
	"reflect"
	"testing"
	"time"

	"gavel/internal/core"
	"gavel/internal/lp"
	"gavel/internal/policy"
	"gavel/internal/scheduler"
)

// solveBasis produces a real warm-start basis by solving a small LP, so the
// wire test exercises the exact payload shard daemons exchange.
func solveBasis(t *testing.T) *lp.Basis {
	t.Helper()
	p := lp.NewProblem(lp.Maximize)
	x := p.AddVar(3, "x")
	y := p.AddVar(2, "y")
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 4)
	p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 3}}, lp.LE, 6)
	res, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Basis == nil {
		t.Fatal("solve returned no basis")
	}
	return res.Basis
}

// roundTrip gob-encodes v and decodes it into a fresh value of the same
// type, exactly as net/rpc moves it, returning the decoded value.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	out := reflect.New(reflect.TypeOf(v).Elem())
	if err := gob.NewDecoder(&buf).Decode(out.Interface()); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return out.Interface()
}

// TestWireRoundTripAllMessages pushes every control-plane message type
// through a gob round trip with populated fields — including a real
// serialized lp.Basis inside policy.Seed — and demands the decoded value be
// deeply equal to the original. A field that stops surviving the trip (new
// unexported state, a type gob cannot move) fails here, not in a daemon.
func TestWireRoundTripAllMessages(t *testing.T) {
	basis := solveBasis(t)
	seeds := []policy.Seed{{
		Label: "throughput",
		IDs:   []lp.ColumnID{"j1", "j2"},
		Basis: basis,
	}}
	msgs := []any{
		&HelloArgs{Version: 2, Role: "coordinator"},
		&HelloReply{Version: 2},
		&RegisterArgs{Version: 2, Addr: "w:1", AcceleratorType: "v100", Server: "s0"},
		&RegisterReply{Version: 2, WorkerID: 3, RoundSeconds: 360},
		&LeaseArgs{WorkerID: 3},
		&Lease{JobIDs: []int{7, 9}, RoundSeconds: 360, Renewed: true},
		&ThroughputReport{WorkerID: 3, JobID: 7, StepsPerSecond: 41.25},
		&JobSpec{JobID: 7, Name: "resnet", TotalSteps: 5e4, ThroughputHint: map[string]float64{"v100": 40}},
		&ShardConfig{
			Index: 1, WorkerInts: []int{4, 2, 2}, PerServer: []int{4},
			Prices: []float64{3.1, 0.9, 0.7}, Policy: PolicySpec{Name: "max_min_fairness"},
			LP:                lp.Options{Engine: lp.Revised},
			PairGainThreshold: 1.25, MaxPairsPerJob: 8,
		},
		&InstallArgs{
			JobID: 7, ScaleFactor: 2, Tput: []float64{40, 20, 10},
			Pairs:    []PairRows{{A: 7, B: 9, Ta: []float64{18, 9, 4.5}, Tb: []float64{12, 6, 3}}},
			Seeds:    seeds,
			Migrated: true,
		},
		&RemoveArgs{JobID: 7},
		&ExtractArgs{JobID: 7},
		&ExtractReply{ScaleFactor: 2, Tput: []float64{40, 20, 10}, Seeds: seeds},
		&AllocateArgs{Round: 12, Infos: []policy.JobInfo{{ID: 7, Weight: 2, RemainingSteps: 100, Elapsed: 720}}},
		&AllocateReply{IDs: []int{7, 9}, Units: []core.Unit{{Jobs: []int{7}}}, X: [][]float64{{0.5, 0.25, 0.25}}},
		&AssignRoundArgs{Round: 12, RoundSeconds: 360, SkipJobs: []int{9}},
		&AssignRoundReply{Assigns: []scheduler.Assignment{{UnitIdx: 0, Type: 1}}},
		&ObserveArgs{Obs: []PairObservation{{A: 7, B: 9, Type: 0, Ta: 17.5, Tb: 11.25}}},
		&SnapshotReply{Seeds: seeds, Status: ShardStatus{Index: 1, Jobs: []int{7, 9}, Admitted: 2, PolicyTime: time.Second}},
		&ShardStatus{Index: 1, Jobs: []int{7}, Admitted: 3, MigratedIn: 1, MigratedOut: 2, PolicyCalls: 4},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T did not survive the wire:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

// TestBasisSurvivesWire checks the serialized basis is not just equal but
// usable: warm-starting from the decoded basis must behave exactly like
// warm-starting from the original.
func TestBasisSurvivesWire(t *testing.T) {
	orig := solveBasis(t)
	decoded := roundTrip(t, orig).(*lp.Basis)
	if !reflect.DeepEqual(decoded, orig) {
		t.Fatalf("basis mutated in flight:\n got %+v\nwant %+v", decoded, orig)
	}
	if decoded.NumRows() != orig.NumRows() || decoded.NumVars() != orig.NumVars() {
		t.Fatalf("basis shape changed: %d/%d vs %d/%d rows/vars",
			decoded.NumRows(), decoded.NumVars(), orig.NumRows(), orig.NumVars())
	}

	build := func() *lp.Problem {
		p := lp.NewProblem(lp.Maximize)
		x := p.AddVar(3, "x")
		y := p.AddVar(2, "y")
		p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.LE, 4)
		p.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 3}}, lp.LE, 6)
		return p
	}
	fromOrig, err := build().SolveFrom(orig)
	if err != nil {
		t.Fatalf("SolveFrom(original): %v", err)
	}
	fromWire, err := build().SolveFrom(decoded)
	if err != nil {
		t.Fatalf("SolveFrom(decoded): %v", err)
	}
	if fromOrig.Objective != fromWire.Objective || fromOrig.WarmStarted != fromWire.WarmStarted {
		t.Fatalf("decoded basis solves differently: obj %v warm %v vs obj %v warm %v",
			fromWire.Objective, fromWire.WarmStarted, fromOrig.Objective, fromOrig.WarmStarted)
	}
}

// TestShardHandshake drives the version gate of the shard surface over a
// real socket: current version accepted, version 0 (an unversioned v1 peer)
// rejected with the typed code.
func TestShardHandshake(t *testing.T) {
	srv := NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	c, err := gorpc.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var reply HelloReply
	if err := c.Call("GavelShard.Hello", HelloArgs{Version: ProtocolVersion, Role: "test"}, &reply); err != nil {
		t.Fatalf("Hello at current version: %v", err)
	}
	if reply.Version != ProtocolVersion {
		t.Fatalf("server version = %d, want %d", reply.Version, ProtocolVersion)
	}

	err = c.Call("GavelShard.Hello", HelloArgs{Version: 0}, &reply)
	if CodeOf(err) != CodeVersionMismatch {
		t.Fatalf("Hello at version 0: err = %v (code %v), want CodeVersionMismatch", err, CodeOf(err))
	}
}

// TestTypedErrorsCrossTheWire verifies the gavelrpc[N] prefix survives
// net/rpc's error-to-string flattening: a typed server-side error comes back
// with its code recoverable via CodeOf.
func TestTypedErrorsCrossTheWire(t *testing.T) {
	srv := NewShardServer()
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	c, err := DialShard(addr)
	if err != nil {
		t.Fatalf("DialShard: %v", err)
	}
	defer c.Close()

	// Install before Configure: the daemon has no identity yet.
	err = c.Install(InstallArgs{JobID: 1, ScaleFactor: 1, Tput: []float64{1}})
	if CodeOf(err) != CodeNotConfigured {
		t.Fatalf("Install on bare daemon: err = %v (code %v), want CodeNotConfigured", err, CodeOf(err))
	}
	// And the parsed form retains the message.
	if p := ParseError(err); p.Msg == "" {
		t.Fatalf("parsed error lost its message: %+v", p)
	}
}

// TestLeaseHandshakeRejectsUnversionedWorker: a v1 worker (no Version field,
// decodes as 0) must be turned away at registration, not garbled later.
func TestLeaseHandshakeRejectsUnversionedWorker(t *testing.T) {
	s := NewScheduler(1)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()

	c, err := gorpc.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	var reply RegisterReply
	err = c.Call("Gavel.RegisterWorker", RegisterArgs{AcceleratorType: "v100"}, &reply)
	if CodeOf(err) != CodeVersionMismatch {
		t.Fatalf("unversioned register: err = %v (code %v), want CodeVersionMismatch", err, CodeOf(err))
	}
}

// TestLeaseExpiry: a worker that stops calling loses its lease one round
// after it was granted, so its job returns to the runnable set instead of
// being stranded (the crashed-worker bug).
func TestLeaseExpiry(t *testing.T) {
	s := NewScheduler(1) // 1-second rounds -> 1-second TTL
	now := time.Unix(100, 0)
	s.clock = func() time.Time { return now }
	s.Submit(JobSpec{JobID: 1, TotalSteps: 1e9})
	r := &schedulerRPC{s: s}

	var w0, w1 RegisterReply
	if err := r.RegisterWorker(RegisterArgs{Version: ProtocolVersion, AcceleratorType: "v100"}, &w0); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterWorker(RegisterArgs{Version: ProtocolVersion, AcceleratorType: "v100"}, &w1); err != nil {
		t.Fatal(err)
	}

	var l Lease
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w0.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if l.Empty || l.JobIDs[0] != 1 {
		t.Fatalf("worker 0 lease = %+v, want job 1", l)
	}

	// While the lease is fresh, the other worker must not get the job.
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w1.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if !l.Empty {
		t.Fatalf("job double-leased while held: %+v", l)
	}

	// Worker 0 goes silent past the TTL: the lease expires and worker 1
	// inherits the job.
	now = now.Add(1500 * time.Millisecond)
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w1.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if l.Empty || l.JobIDs[0] != 1 {
		t.Fatalf("expired lease not reassigned: %+v", l)
	}
}

// TestReportRefreshesLease: progress reports are liveness signals — a worker
// that reports within the TTL keeps its lease even without re-leasing.
func TestReportRefreshesLease(t *testing.T) {
	s := NewScheduler(1)
	now := time.Unix(100, 0)
	s.clock = func() time.Time { return now }
	s.Submit(JobSpec{JobID: 1, TotalSteps: 1e9})
	r := &schedulerRPC{s: s}

	var w0, w1 RegisterReply
	if err := r.RegisterWorker(RegisterArgs{Version: ProtocolVersion, AcceleratorType: "v100"}, &w0); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterWorker(RegisterArgs{Version: ProtocolVersion, AcceleratorType: "v100"}, &w1); err != nil {
		t.Fatal(err)
	}

	var l Lease
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w0.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	now = now.Add(900 * time.Millisecond)
	var ack Ack
	if err := r.ReportThroughput(ThroughputReport{WorkerID: w0.WorkerID, JobID: 1, StepsPerSecond: 5}, &ack); err != nil {
		t.Fatal(err)
	}
	// 1.8s after grant but only 0.9s after the report: still held.
	now = now.Add(900 * time.Millisecond)
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w1.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if !l.Empty {
		t.Fatalf("lease expired despite liveness report: %+v", l)
	}
}

// fixedSource leases a fixed plan: worker ID -> job IDs.
type fixedSource map[int][]int

func (f fixedSource) NextLease(workerID int, _, _ string) []int { return f[workerID] }

// TestLeaseSourceDrivesLeases: with a LeaseSource installed (the daemon
// coordinator's round assignments), leases come from it instead of the
// least-attained-service fallback, with renewal detection intact.
func TestLeaseSourceDrivesLeases(t *testing.T) {
	s := NewScheduler(1)
	s.Submit(JobSpec{JobID: 5, TotalSteps: 1e9})
	s.Submit(JobSpec{JobID: 8, TotalSteps: 1e9})
	s.SetLeaseSource(fixedSource{0: {8}})
	r := &schedulerRPC{s: s}

	var w0 RegisterReply
	if err := r.RegisterWorker(RegisterArgs{Version: ProtocolVersion, AcceleratorType: "v100"}, &w0); err != nil {
		t.Fatal(err)
	}
	var l Lease
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w0.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if l.Empty || l.JobIDs[0] != 8 {
		t.Fatalf("lease = %+v, want job 8 from the source (fallback would pick 5)", l)
	}
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w0.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if !l.Renewed {
		t.Fatalf("same job from source not marked renewed: %+v", l)
	}
	// Removing the source restores the fallback.
	s.SetLeaseSource(nil)
	if err := r.LeaseMicroTask(LeaseArgs{WorkerID: w0.WorkerID}, &l); err != nil {
		t.Fatal(err)
	}
	if l.Empty {
		t.Fatalf("fallback not restored: %+v", l)
	}
}

// TestSchedulerCloseStopsServing: Close tears down live connections (joining
// their ServeConn goroutines), so a held client errors instead of hanging.
func TestSchedulerCloseStopsServing(t *testing.T) {
	s := NewScheduler(1)
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	c, err := Dial(addr, RegisterArgs{AcceleratorType: "v100"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := c.Lease(); err == nil {
		t.Fatal("lease succeeded over a closed scheduler")
	}
}

// TestPolicySpecRoundTrip: every catalog policy must survive
// SpecForPolicy -> PolicyFromSpec -> SpecForPolicy unchanged, or a
// coordinator cannot faithfully configure remote daemons.
func TestPolicySpecRoundTrip(t *testing.T) {
	names := []string{
		"max_min_fairness", "max_min_fairness_priorities", "fifo",
		"shortest_job_first", "min_makespan", "finish_time_fairness",
		"min_cost", "max_total_throughput",
	}
	for _, name := range names {
		spec := PolicySpec{Name: name}
		p, err := PolicyFromSpec(spec)
		if err != nil {
			t.Fatalf("PolicyFromSpec(%q): %v", name, err)
		}
		back, ok := SpecForPolicy(p)
		if !ok || back != spec {
			t.Fatalf("spec round trip %q -> %T -> %+v (ok=%v)", name, p, back, ok)
		}
	}
	if _, err := PolicyFromSpec(PolicySpec{Name: "nope"}); CodeOf(err) != CodeUnknownPolicy {
		t.Fatalf("unknown policy: code %v, want CodeUnknownPolicy", CodeOf(err))
	}
}
