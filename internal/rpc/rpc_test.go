package rpc

import (
	"testing"
)

func startScheduler(t *testing.T) (*Scheduler, string) {
	t.Helper()
	s := NewScheduler(1) // 1-second rounds keep tests fast
	addr, err := s.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestRegisterAndLease(t *testing.T) {
	s, addr := startScheduler(t)
	s.Submit(JobSpec{JobID: 1, Name: "resnet", TotalSteps: 100,
		ThroughputHint: map[string]float64{"v100": 10}})

	c, err := Dial(addr, RegisterArgs{AcceleratorType: "v100", Server: "srv0"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	lease, err := c.Lease()
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if lease.Empty || len(lease.JobIDs) != 1 || lease.JobIDs[0] != 1 {
		t.Fatalf("lease = %+v, want job 1", lease)
	}
	// Second lease immediately: the same job should be renewed (it is the
	// only one).
	lease2, err := c.Lease()
	if err != nil {
		t.Fatalf("Lease 2: %v", err)
	}
	if !lease2.Renewed {
		t.Fatalf("lease not renewed: %+v", lease2)
	}
}

func TestLeaseLeastAttainedService(t *testing.T) {
	s, addr := startScheduler(t)
	s.Submit(JobSpec{JobID: 1, TotalSteps: 1e9})
	s.Submit(JobSpec{JobID: 2, TotalSteps: 1e9})

	c, err := Dial(addr, RegisterArgs{AcceleratorType: "k80"})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	first, _ := c.Lease()
	second, _ := c.Lease()
	if first.JobIDs[0] == second.JobIDs[0] {
		t.Fatalf("scheduler did not alternate by attained service: %v then %v", first.JobIDs, second.JobIDs)
	}
}

func TestNoDoubleLeaseAcrossWorkers(t *testing.T) {
	s, addr := startScheduler(t)
	s.Submit(JobSpec{JobID: 7, TotalSteps: 1e9})

	c1, err := Dial(addr, RegisterArgs{AcceleratorType: "v100"})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(addr, RegisterArgs{AcceleratorType: "p100"})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	l1, _ := c1.Lease()
	l2, _ := c2.Lease()
	if !l1.Empty && !l2.Empty {
		t.Fatalf("job leased to two workers at once: %v / %v", l1, l2)
	}
}

func TestReportDrivesCompletion(t *testing.T) {
	s, addr := startScheduler(t)
	s.Submit(JobSpec{JobID: 3, TotalSteps: 50})

	c, err := Dial(addr, RegisterArgs{AcceleratorType: "v100"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Lease(); err != nil {
		t.Fatal(err)
	}
	// 60 steps/sec over a 1-second round completes the 50-step job.
	if err := c.Report(3, 60); err != nil {
		t.Fatalf("Report: %v", err)
	}
	if !s.JobDone(3) {
		t.Fatal("job should be complete")
	}
	if got := s.Throughput(3, "v100"); got != 60 {
		t.Fatalf("measured throughput = %v, want 60", got)
	}
	lease, err := c.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if !lease.Empty {
		t.Fatalf("completed job leased again: %+v", lease)
	}
}

func TestRegisterRequiresType(t *testing.T) {
	_, addr := startScheduler(t)
	if _, err := Dial(addr, RegisterArgs{}); err == nil {
		t.Fatal("want error for missing accelerator type")
	}
}
